# MDV build/test/benchmark driver.

GO ?= go

.PHONY: all build vet test test-race cover bench bench-quick figures examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Quick pass over every figure benchmark (one batch per configuration).
bench-quick:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Full testing.B run (slower; engines are cached per configuration).
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the paper's figures (paper-scale rule bases; see
# cmd/mdvbench -h for scales and figure selection).
figures:
	$(GO) run ./cmd/mdvbench -fig all -reps 3

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/objectglobe
	$(GO) run ./examples/marketplace
	$(GO) run ./examples/federation

clean:
	$(GO) clean ./...
