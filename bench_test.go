// Benchmarks regenerating the paper's performance figures (§4).
//
// Methodology, following the paper: a rule base of one type is registered
// once; each benchmark iteration then registers one batch of RDF documents
// (each shaped like Figure 1: one CycleProvider plus one ServerInformation)
// and the reported time is the filter cost of that batch. The metric
// "us/doc" is the paper's average registration time of a single document
// (overall runtime divided by batch size).
//
// Engines are cached per configuration across iterations, so the rule-base
// setup cost is excluded — only the filter run is measured, as in the
// paper. Two caveats of the testing.B harness, both avoided by
// cmd/mdvbench (which prepares a fresh engine per measurement cell and is
// the authoritative reproduction driver):
//
//   - results accumulate across iterations, so high-match workloads (COMP)
//     see growing materializations at large -benchtime;
//   - OID documents match their paired rules only in the first iteration
//     (later iterations register fresh URIs; the measured triggering cost
//     is identical either way).
//
// Run with -benchtime=1x for paper-style single-shot measurements.
//
//	Figure 11: OID rules, rule base 10,000 and 100,000
//	Figure 12: PATH rules, rule base 1,000 and 10,000
//	Figure 13: COMP rules (10% match), rule base 1,000 and 10,000
//	Figure 14: JOIN rules, rule base 1,000 and 10,000
//	Figure 15: COMP rules, 10,000-rule base, match % in {1, 5, 10, 20}
//
// Additional benchmarks cover the design-choice ablations (rule groups,
// dependency-graph sharing) and the naive evaluate-every-rule baseline the
// filter is designed to beat.
package mdv_test

import (
	"fmt"
	"sync"
	"testing"

	"mdv/internal/core"
	"mdv/internal/rdf"
	"mdv/internal/workload"
)

// benchConfig identifies one cached engine setup.
type benchConfig struct {
	typ      workload.RuleType
	ruleBase int
	pct      float64 // COMP match percentage (0..1)
	opts     core.Options
}

type benchState struct {
	engine *core.Engine
	gen    workload.Generator
	offset int // next fresh document index
}

var (
	benchMu    sync.Mutex
	benchCache = map[benchConfig]*benchState{}
)

// getState returns (building on first use) the engine with the config's
// rule base registered.
func getState(b *testing.B, cfg benchConfig) *benchState {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if st, ok := benchCache[cfg]; ok {
		return st
	}
	gen := workload.Generator{Type: cfg.typ, RuleBase: cfg.ruleBase, MatchPercent: cfg.pct}
	engine, err := core.NewEngineWithOptions(workload.Schema(), cfg.opts)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < gen.RuleBase; i++ {
		if _, _, err := engine.Subscribe("lmr", gen.Rule(i)); err != nil {
			b.Fatal(err)
		}
	}
	st := &benchState{engine: engine, gen: gen, offset: 0}
	benchCache[cfg] = st
	return st
}

// runBatches is the shared measurement loop: each iteration registers one
// batch of fresh documents. All batches are generated up front, outside the
// timed region, so us/doc measures only the filter.
func runBatches(b *testing.B, cfg benchConfig, batch int) {
	st := getState(b, cfg)
	batches := make([][]*rdf.Document, b.N)
	for i := range batches {
		batches[i] = st.gen.Batch(st.offset, batch)
		st.offset += batch
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.engine.RegisterDocuments(batches[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perDoc := float64(b.Elapsed().Nanoseconds()) / float64(b.N*batch) / 1e3
	b.ReportMetric(perDoc, "us/doc")
}

var batchSizes = []int{1, 10, 100, 1000}

// BenchmarkFig11OID — Figure 11: OID rules; the rule base size must not
// influence the runtime (EQ triggering rules resolve via the value index).
func BenchmarkFig11OID(b *testing.B) {
	for _, ruleBase := range []int{10000, 100000} {
		for _, batch := range batchSizes {
			b.Run(fmt.Sprintf("rules=%d/batch=%d", ruleBase, batch), func(b *testing.B) {
				runBatches(b, benchConfig{typ: workload.OID, ruleBase: ruleBase}, batch)
			})
		}
	}
}

// BenchmarkFig12PATH — Figure 12: PATH rules require decomposition and join
// evaluation; cost depends on the rule base size (numeric constants are
// reconverted, so the triggering join scans the per-property rule set).
func BenchmarkFig12PATH(b *testing.B) {
	for _, ruleBase := range []int{1000, 10000} {
		for _, batch := range batchSizes {
			b.Run(fmt.Sprintf("rules=%d/batch=%d", ruleBase, batch), func(b *testing.B) {
				runBatches(b, benchConfig{typ: workload.PATH, ruleBase: ruleBase}, batch)
			})
		}
	}
}

// BenchmarkFig13COMP — Figure 13: COMP rules with 10% of the rule base
// matching every document.
func BenchmarkFig13COMP(b *testing.B) {
	for _, ruleBase := range []int{1000, 10000} {
		for _, batch := range batchSizes {
			b.Run(fmt.Sprintf("rules=%d/batch=%d", ruleBase, batch), func(b *testing.B) {
				runBatches(b, benchConfig{typ: workload.COMP, ruleBase: ruleBase, pct: 0.10}, batch)
			})
		}
	}
}

// BenchmarkFig14JOIN — Figure 14: JOIN rules (three predicates, two of them
// shared across the whole rule base).
func BenchmarkFig14JOIN(b *testing.B) {
	for _, ruleBase := range []int{1000, 10000} {
		for _, batch := range batchSizes {
			b.Run(fmt.Sprintf("rules=%d/batch=%d", ruleBase, batch), func(b *testing.B) {
				runBatches(b, benchConfig{typ: workload.JOIN, ruleBase: ruleBase}, batch)
			})
		}
	}
}

// BenchmarkFig15COMPPct — Figure 15: a 10,000-rule COMP base with varying
// matched percentage; higher percentages cost uniformly more.
func BenchmarkFig15COMPPct(b *testing.B) {
	for _, pct := range []float64{0.01, 0.05, 0.10, 0.20} {
		for _, batch := range []int{1, 10, 100, 1000} {
			b.Run(fmt.Sprintf("pct=%d/batch=%d", int(pct*100), batch), func(b *testing.B) {
				runBatches(b, benchConfig{typ: workload.COMP, ruleBase: 10000, pct: pct}, batch)
			})
		}
	}
}

// BenchmarkAblationRuleGroups measures the §3.3.3 rule-group optimization:
// the same PATH workload with grouped vs. individually evaluated join
// rules.
func BenchmarkAblationRuleGroups(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts core.Options
	}{
		{"grouped", core.Options{}},
		{"ungrouped", core.Options{DisableRuleGroups: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			runBatches(b, benchConfig{typ: workload.PATH, ruleBase: 1000, opts: mode.opts}, 10)
		})
	}
}

// BenchmarkAblationSharing measures the §3.3.2 dependency-graph merge: the
// JOIN workload shares its contains- and cpu-triggering rules across the
// base; with sharing disabled every rule keeps private copies.
func BenchmarkAblationSharing(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts core.Options
	}{
		{"shared", core.Options{}},
		{"unshared", core.Options{DisableSharing: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			runBatches(b, benchConfig{typ: workload.JOIN, ruleBase: 1000, opts: mode.opts}, 10)
		})
	}
}

// BenchmarkBaselineNaive compares the filter against the strawman that
// re-evaluates every subscription rule on each registration (§3's
// motivation). Same PATH workload, same batch size.
func BenchmarkBaselineNaive(b *testing.B) {
	const ruleBase = 1000
	const batch = 10
	b.Run("filter", func(b *testing.B) {
		runBatches(b, benchConfig{typ: workload.PATH, ruleBase: ruleBase}, batch)
	})
	b.Run("naive", func(b *testing.B) {
		gen := workload.Generator{Type: workload.PATH, RuleBase: ruleBase}
		naive, err := workload.NewBaseline(workload.Schema())
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < ruleBase; i++ {
			if err := naive.Subscribe(gen.Rule(i)); err != nil {
				b.Fatal(err)
			}
		}
		batches := make([][]*rdf.Document, b.N)
		for i := range batches {
			batches[i] = gen.Batch(i*batch, batch)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := naive.Register(batches[i]); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		perDoc := float64(b.Elapsed().Nanoseconds()) / float64(b.N*batch) / 1e3
		b.ReportMetric(perDoc, "us/doc")
	})
}

// BenchmarkSubscribe measures rule registration itself (decomposition,
// dependency-graph merge, initialization).
func BenchmarkSubscribe(b *testing.B) {
	for _, typ := range []workload.RuleType{workload.OID, workload.PATH, workload.JOIN} {
		b.Run(typ.String(), func(b *testing.B) {
			gen := workload.Generator{Type: typ, RuleBase: 1 << 30}
			engine, err := core.NewEngine(workload.Schema())
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := engine.Subscribe("lmr", gen.Rule(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
