// Concurrency figures (DESIGN.md §8): aggregate query throughput against
// reader goroutine count, and the pipelined publish stage against
// sequential filter+delivery. These mirror BenchmarkConcurrentQuery and
// BenchmarkPublishPipelined in the root package, but with mdvbench's
// fresh-setup-per-cell methodology and -json records.
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mdv/internal/core"
	"mdv/internal/lmr"
	"mdv/internal/provider"
	"mdv/internal/rdf"
	"mdv/internal/workload"
)

// cqQuery is a single-table scan matching 11 of the cached documents
// (host39 plus host390..host399 when 400 documents are cached); the
// writer only rewrites synthValue, so the result set is stable.
const cqQuery = `search CycleProvider c register c where c.serverHost contains 'host39'`

// rewriteDoc rewrites document i with a fresh synthValue so every writer
// registration produces a real changeset without changing which documents
// cqQuery matches.
func rewriteDoc(i, v int) *rdf.Document {
	doc := rdf.NewDocument(fmt.Sprintf("doc%d.rdf", i))
	host := doc.NewResource("host", "CycleProvider")
	host.Add("serverHost", rdf.Lit(fmt.Sprintf("host%d.uni-passau.de", i)))
	host.Add("serverPort", rdf.Lit("5874"))
	host.Add("synthValue", rdf.Lit(fmt.Sprint(v)))
	host.Add("serverInformation", rdf.Ref(doc.QualifyID("info")))
	info := doc.NewResource("info", "ServerInformation")
	info.Add("memory", rdf.Lit(fmt.Sprint(i)))
	info.Add("cpu", rdf.Lit("600"))
	return doc
}

// figureConcurrent measures aggregate LMR query throughput at 1/2/4/8
// reader goroutines, with and without a concurrent writer re-registering
// documents. The read path takes only shared locks; on multi-core
// hardware the readonly column scales with readers until cores saturate,
// and on any hardware neither extra readers nor the writer may collapse
// throughput.
func figureConcurrent(div, reps int) {
	docs := 400 / div
	queries := 200 * reps
	prov, err := provider.New("mdp", workload.Schema())
	if err != nil {
		panic(err)
	}
	node, err := lmr.New("lmr", workload.Schema(), prov)
	if err != nil {
		panic(err)
	}
	if _, err := node.AddSubscription(
		`search CycleProvider c register c where c.serverPort >= 0`); err != nil {
		panic(err)
	}
	gen := workload.Generator{Type: workload.PATH}
	if err := prov.RegisterDocuments(gen.Batch(0, docs)); err != nil {
		panic(err)
	}

	fmt.Printf("\nConcurrency — aggregate LMR query throughput (%d cached documents, %d queries per cell)\n", docs, queries)
	fmt.Printf("%-8s  %-22s  %-22s\n", "readers", "readonly (us/query)", "with writer (us/query)")
	for _, readers := range []int{1, 2, 4, 8} {
		fmt.Printf("%-8d", readers)
		for _, withWriter := range []bool{false, true} {
			stop := make(chan struct{})
			var wwg sync.WaitGroup
			if withWriter {
				wwg.Add(1)
				go func() {
					defer wwg.Done()
					for v := 0; ; v++ {
						select {
						case <-stop:
							return
						default:
						}
						if err := prov.RegisterDocument(rewriteDoc(v%(docs/8), v)); err != nil {
							panic(err)
						}
						time.Sleep(500 * time.Microsecond)
					}
				}()
			}
			var wg sync.WaitGroup
			t0 := time.Now()
			for r := 0; r < readers; r++ {
				n := queries / readers
				if r < queries%readers {
					n++
				}
				wg.Add(1)
				go func(n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						if _, err := node.Query(cqQuery); err != nil {
							panic(err)
						}
					}
				}(n)
			}
			wg.Wait()
			elapsed := time.Since(t0)
			close(stop)
			wwg.Wait()
			us := float64(elapsed.Microseconds()) / float64(queries)
			qps := float64(queries) / elapsed.Seconds()
			fmt.Printf("  %-9.1f %9.0f/s", us, qps)
			label := "readonly"
			if withWriter {
				label = "writer"
			}
			records = append(records, record{
				Figure: "concurrent", Label: label, RuleType: "QUERY",
				Batch: readers, UsPerDoc: us, Reps: reps,
			})
		}
		fmt.Println()
	}
}

// figurePipeline compares sequential filter+delivery against the
// turnstile pipeline: a subscriber needing ~10ms per changeset, documents
// registered in batches of 40 over a PATH rule base. Delivery cost is
// wall-time (a blocked peer), not CPU, so the pipelined column approaches
// max(filter, delivery) instead of their sum — on single-proc machines
// GOMAXPROCS is raised to 2 so the sleeping deliverer's timer wakeup does
// not have to wait out the running filter chunk.
func figurePipeline(div, reps int) {
	const batch = 40
	const deliveryCost = 10 * time.Millisecond
	ruleBase := 1000 / div
	ops := 20 * reps
	if runtime.GOMAXPROCS(0) < 2 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	}

	fmt.Printf("\nPipeline — per-registration cost, batches of %d over a %d-rule PATH base, %.0fms delivery\n",
		batch, ruleBase, float64(deliveryCost.Milliseconds()))
	fmt.Printf("%-12s  %-12s  %-12s   (per op / per doc)\n", "mode", "us/op", "us/doc")
	for _, mode := range []struct {
		name    string
		writers int
		deliver bool
	}{
		{"filterOnly", 1, false},
		{"sequential", 1, true},
		{"pipelined", 4, true},
	} {
		prov, err := provider.New("mdp", workload.Schema())
		if err != nil {
			panic(err)
		}
		gen := workload.Generator{Type: workload.PATH, RuleBase: ruleBase}
		for i := 0; i < ruleBase; i++ {
			if _, _, err := prov.Subscribe("rules", gen.Rule(i)); err != nil {
				panic(err)
			}
		}
		if mode.deliver {
			if err := prov.Attach("lmr", func(uint64, bool, *core.Changeset) error {
				time.Sleep(deliveryCost)
				return nil
			}); err != nil {
				panic(err)
			}
			if _, _, err := prov.Subscribe("lmr",
				`search CycleProvider c register c where c.serverPort >= 0`); err != nil {
				panic(err)
			}
		}
		var next int64 = int64(ruleBase)
		var wg sync.WaitGroup
		t0 := time.Now()
		for w := 0; w < mode.writers; w++ {
			n := ops / mode.writers
			if w < ops%mode.writers {
				n++
			}
			wg.Add(1)
			go func(n int) {
				defer wg.Done()
				for i := 0; i < n; i++ {
					base := atomic.AddInt64(&next, batch) - batch
					if err := prov.RegisterDocuments(gen.Batch(int(base), batch)); err != nil {
						panic(err)
					}
				}
			}(n)
		}
		wg.Wait()
		usPerOp := float64(time.Since(t0).Microseconds()) / float64(ops)
		fmt.Printf("%-12s  %-12.0f  %-12.1f\n", mode.name, usPerOp, usPerOp/batch)
		records = append(records, record{
			Figure: "pipeline", Label: mode.name, RuleType: workload.PATH.String(),
			Rules: ruleBase, Batch: batch, UsPerDoc: usPerOp / batch, Reps: reps,
		})
	}
}
