package main

import (
	"fmt"
	"runtime"

	"mdv/internal/core"
	"mdv/internal/workload"
)

// figureShards measures partition-parallel triggering: publish cost per
// document with the filter engine sharded 1/2/4/8 ways against the serial
// ablation, for the triggering-heavy rule shapes at the paper's largest
// rule bases. shards=1 shares the serial code path's cost (the shard set is
// not built below two shards), so its column doubles as the overhead check;
// the speedup columns only separate on a multi-core host (GOMAXPROCS
// bounds the useful shard count).
func figureShards(div int, batches []int) {
	fmt.Printf("\nSharded triggering — GOMAXPROCS=%d\n", runtime.GOMAXPROCS(0))
	for _, typ := range []workload.RuleType{workload.PATH, workload.JOIN, workload.COMP} {
		rb := 10000 / div
		gen := workload.Generator{Type: typ, RuleBase: rb}
		if typ == workload.COMP {
			gen.MatchPercent = 0.10
		}
		cfgs := []config{
			{label: "serial", gen: gen, opts: core.Options{DisableShardedTriggering: true}},
		}
		for _, n := range []int{1, 2, 4, 8} {
			cfgs = append(cfgs, config{
				label: fmt.Sprintf("shards=%-8d", n),
				gen:   gen,
				opts:  core.Options{Shards: n},
			})
		}
		figure("shards", fmt.Sprintf("Sharded triggering — %s rules, %d-rule base", typ, rb),
			cfgs, capBatches(batches, 100))
	}
}
