// mdvbench regenerates the performance experiments of the paper's §4
// (Figures 11-15) plus the ablation, baseline, and concurrency
// comparisons described in DESIGN.md. For every figure it prints the series the paper plots: the
// average registration time of a single RDF document (total filter runtime
// of a batch divided by the batch size) against the batch size, for each
// rule base configuration.
//
// Methodology, as in the paper: every measurement cell (rule type, rule
// base size, batch size) starts from a freshly prepared engine with the
// rule base registered but no documents, so measurements are independent —
// in particular, COMP's large materialization growth from one measurement
// cannot bleed into the next. Rule-base preparation is excluded from the
// measured time. With -reps > 1 the median of the repetitions is reported
// (each repetition registers a distinct batch into the same fresh engine,
// which matches the paper's "overall runtime / batch size" averaging).
//
// Usage:
//
//	mdvbench -fig all            # everything, paper-scale rule bases
//	mdvbench -fig 12 -scale small -reps 3
//
// Scales: "paper" uses the paper's rule base sizes (OID up to 100,000;
// PATH/COMP/JOIN up to 10,000); "small" divides them by 10 for quick runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"mdv/internal/core"
	"mdv/internal/workload"
)

var (
	figFlag   = flag.String("fig", "all", "figure to reproduce: 11|12|13|14|15|ablation|baseline|concurrent|pipeline|replicated|fanout|shards|text|all")
	scaleFlag = flag.String("scale", "paper", "rule base scale: paper|small")
	repsFlag  = flag.Int("reps", 1, "repetitions per measurement (median reported)")
	batchFlag = flag.String("batches", "1,2,5,10,20,50,100,200,500,1000", "comma-separated batch sizes")
	jsonFlag  = flag.String("json", "", "write measurements as a JSON array to this path")
)

// record is one measurement cell in the -json output.
type record struct {
	Figure   string  `json:"figure"`
	Label    string  `json:"label"`
	RuleType string  `json:"rule_type"`
	Rules    int     `json:"rules"`
	Pct      float64 `json:"pct"`
	Batch    int     `json:"batch"`
	UsPerDoc float64 `json:"us_per_doc"`
	Reps     int     `json:"reps"`
}

var records []record

func writeJSON(path string) {
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		panic(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "mdvbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "mdvbench: wrote %d records to %s\n", len(records), path)
}

func main() {
	flag.Parse()
	batches := parseBatches(*batchFlag)
	div := 1
	if *scaleFlag == "small" {
		div = 10
	}

	figs := strings.Split(*figFlag, ",")
	run := func(name string) bool {
		if *figFlag == "all" {
			return true
		}
		for _, f := range figs {
			if strings.TrimSpace(f) == name {
				return true
			}
		}
		return false
	}

	if run("11") {
		figure("11", "Figure 11 — OID rules: avg registration time per document",
			configsFor(workload.OID, 0, []int{10000 / div, 100000 / div}), batches)
	}
	if run("12") {
		figure("12", "Figure 12 — PATH rules: avg registration time per document",
			configsFor(workload.PATH, 0, []int{1000 / div, 10000 / div}), batches)
	}
	if run("13") {
		figure("13", "Figure 13 — COMP rules (10% of rule base matches)",
			configsFor(workload.COMP, 0.10, []int{1000 / div, 10000 / div}), batches)
	}
	if run("14") {
		figure("14", "Figure 14 — JOIN rules: avg registration time per document",
			configsFor(workload.JOIN, 0, []int{1000 / div, 10000 / div}), batches)
	}
	if run("15") {
		var cfgs []config
		for _, pct := range []float64{0.01, 0.05, 0.10, 0.20} {
			cfgs = append(cfgs, config{
				label: fmt.Sprintf("pct=%-10.0f", pct*100),
				gen:   workload.Generator{Type: workload.COMP, RuleBase: 10000 / div, MatchPercent: pct},
			})
		}
		figure("15", fmt.Sprintf("Figure 15 — %d COMP rules: varying batch size and matched percentage", 10000/div), cfgs, batches)
	}
	if run("ablation") {
		cfgs := []config{
			{label: "PATH grouped", gen: workload.Generator{Type: workload.PATH, RuleBase: 1000 / div}},
			{label: "PATH ungrouped", gen: workload.Generator{Type: workload.PATH, RuleBase: 1000 / div},
				opts: core.Options{DisableRuleGroups: true}},
			{label: "JOIN shared", gen: workload.Generator{Type: workload.JOIN, RuleBase: 1000 / div}},
			{label: "JOIN unshared", gen: workload.Generator{Type: workload.JOIN, RuleBase: 1000 / div},
				opts: core.Options{DisableSharing: true}},
		}
		// The unshared JOIN configuration costs seconds per document (that
		// is the point of the ablation); cap its batches so the sweep stays
		// tractable.
		figure("ablation", "Ablation — rule groups (§3.3.3) and dependency-graph sharing (§3.3.2)", cfgs,
			capBatches(batches, 20))

		// Typed operator indexes (§3.3.4) vs. CAST reconversion at the
		// paper's largest comparison-heavy rule bases, where the CAST path's
		// linear triggering scans dominate.
		typedCfgs := []config{
			{label: "PATH typed", gen: workload.Generator{Type: workload.PATH, RuleBase: 10000 / div}},
			{label: "PATH cast", gen: workload.Generator{Type: workload.PATH, RuleBase: 10000 / div},
				opts: core.Options{DisableTypedIndexes: true}},
			{label: "JOIN typed", gen: workload.Generator{Type: workload.JOIN, RuleBase: 10000 / div}},
			{label: "JOIN cast", gen: workload.Generator{Type: workload.JOIN, RuleBase: 10000 / div},
				opts: core.Options{DisableTypedIndexes: true}},
		}
		figure("ablation", "Ablation — typed operator indexes (§3.3.4) vs. CAST reconversion", typedCfgs,
			capBatches(batches, 100))
	}
	if run("baseline") {
		// The naive baseline costs ~100 ms/doc at a 1,000-rule base; cap
		// its batches as well.
		baseline(1000/div, capBatches(batches, 100))
	}
	if run("concurrent") {
		figureConcurrent(div, *repsFlag)
	}
	if run("pipeline") {
		figurePipeline(div, *repsFlag)
	}
	if run("replicated") {
		figureReplicated(div, *repsFlag)
	}
	if run("fanout") {
		figureFanout(div, *repsFlag)
	}
	if run("shards") {
		figureShards(div, batches)
	}
	if run("text") {
		// Contains-rule substring index (textindex.go) vs. the per-rule
		// CONTAINS scan ablation, mirroring the typed-vs-CAST comparison.
		var cfgs []config
		for _, rb := range []int{100 / div, 1000 / div, 10000 / div} {
			gen := workload.Generator{Type: workload.TEXT, RuleBase: rb}
			cfgs = append(cfgs,
				config{label: fmt.Sprintf("idx rules=%-6d", rb), gen: gen},
				config{label: fmt.Sprintf("scan rules=%-5d", rb), gen: gen,
					opts: core.Options{DisableTextIndex: true}})
		}
		figure("text", "TEXT — contains rules: substring index vs. per-rule CONTAINS scans", cfgs,
			capBatches(batches, 100))
	}
	if *jsonFlag != "" {
		writeJSON(*jsonFlag)
	}
}

type config struct {
	label string
	gen   workload.Generator
	opts  core.Options
}

func configsFor(typ workload.RuleType, pct float64, ruleBases []int) []config {
	var out []config
	for _, rb := range ruleBases {
		out = append(out, config{
			label: fmt.Sprintf("rules=%-9d", rb),
			gen:   workload.Generator{Type: typ, RuleBase: rb, MatchPercent: pct},
		})
	}
	return out
}

// capBatches limits a batch list to sizes <= max (for deliberately slow
// comparison configurations).
func capBatches(batches []int, max int) []int {
	var out []int
	for _, b := range batches {
		if b <= max {
			out = append(out, b)
		}
	}
	return out
}

func parseBatches(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &n); err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "mdvbench: bad batch size %q\n", part)
			os.Exit(2)
		}
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// setup builds a fresh engine with the generator's rule base registered.
func setup(gen workload.Generator, opts core.Options) *core.Engine {
	engine, err := core.NewEngineWithOptions(workload.Schema(), opts)
	if err != nil {
		panic(err)
	}
	t0 := time.Now()
	for i := 0; i < gen.RuleBase; i++ {
		if _, _, err := engine.Subscribe("lmr", gen.Rule(i)); err != nil {
			panic(err)
		}
	}
	fmt.Fprintf(os.Stderr, "mdvbench: %s %d-rule base ready in %v\n",
		gen.Type, gen.RuleBase, time.Since(t0).Round(time.Millisecond))
	return engine
}

// measureCell prepares a fresh engine, registers one small untimed warm-up
// batch (touching code paths once so lazily built state — prepared
// statements, index structure growth — does not land in the first
// measurement; capped well below the measured batch so high-match
// workloads, whose cost grows with accumulated materialization, are not
// distorted), then registers reps distinct timed batches and returns the
// median per-document time in microseconds. The engines of previous cells
// are garbage before each measurement; collect them so one cell's heap
// does not tax the next cell's allocations.
func measureCell(cfg config, batch, reps int) float64 {
	engine := setup(cfg.gen, cfg.opts)
	runtime.GC()
	times := make([]float64, 0, reps)
	offset := 0
	warmN := batch
	if warmN > 16 {
		warmN = 16
	}
	warm := cfg.gen.Batch(offset, warmN)
	offset += warmN
	if _, err := engine.RegisterDocuments(warm); err != nil {
		panic(err)
	}
	for r := 0; r < reps; r++ {
		docs := cfg.gen.Batch(offset, batch)
		offset += batch
		t0 := time.Now()
		if _, err := engine.RegisterDocuments(docs); err != nil {
			panic(err)
		}
		times = append(times, float64(time.Since(t0).Microseconds())/float64(batch))
	}
	sort.Float64s(times)
	return times[len(times)/2]
}

func figure(id, title string, cfgs []config, batches []int) {
	fmt.Printf("\n%s\n", title)
	fmt.Printf("%-8s", "batch")
	for _, c := range cfgs {
		fmt.Printf("  %-15s", c.label)
	}
	fmt.Println("   (us/doc)")
	for _, batch := range batches {
		fmt.Printf("%-8d", batch)
		for _, c := range cfgs {
			us := measureCell(c, batch, *repsFlag)
			fmt.Printf("  %-15.1f", us)
			records = append(records, record{
				Figure:   id,
				Label:    strings.TrimSpace(c.label),
				RuleType: c.gen.Type.String(),
				Rules:    c.gen.RuleBase,
				Pct:      c.gen.MatchPercent,
				Batch:    batch,
				UsPerDoc: us,
				Reps:     *repsFlag,
			})
		}
		fmt.Println()
		os.Stdout.Sync()
	}
}

func baseline(ruleBase int, batches []int) {
	fmt.Printf("\nBaseline — filter algorithm vs. naive evaluate-every-rule, PATH rules, %d-rule base\n", ruleBase)
	gen := workload.Generator{Type: workload.PATH, RuleBase: ruleBase}
	fmt.Printf("%-8s  %-15s  %-15s   (us/doc)\n", "batch", "filter", "naive")
	for _, batch := range batches {
		filterUS := measureCell(config{gen: gen}, batch, *repsFlag)

		naive, err := workload.NewBaseline(workload.Schema())
		if err != nil {
			panic(err)
		}
		for i := 0; i < ruleBase; i++ {
			if err := naive.Subscribe(gen.Rule(i)); err != nil {
				panic(err)
			}
		}
		naiveTimes := make([]float64, 0, *repsFlag)
		offset := 0
		for r := 0; r < *repsFlag; r++ {
			docs := gen.Batch(offset, batch)
			offset += batch
			t0 := time.Now()
			if _, err := naive.Register(docs); err != nil {
				panic(err)
			}
			naiveTimes = append(naiveTimes, float64(time.Since(t0).Microseconds())/float64(batch))
		}
		sort.Float64s(naiveTimes)
		naiveUS := naiveTimes[len(naiveTimes)/2]
		fmt.Printf("%-8d  %-15.1f  %-15.1f\n", batch, filterUS, naiveUS)
		records = append(records,
			record{Figure: "baseline", Label: "filter", RuleType: gen.Type.String(),
				Rules: ruleBase, Batch: batch, UsPerDoc: filterUS, Reps: *repsFlag},
			record{Figure: "baseline", Label: "naive", RuleType: gen.Type.String(),
				Rules: ruleBase, Batch: batch, UsPerDoc: naiveUS, Reps: *repsFlag})
	}
}
