// Replication figure (DESIGN.md §10): aggregate provider read throughput
// against reader count, comparing every read hitting the single primary
// with the same reads fanned across its read replicas, while a writer
// publishes continuously. Alongside throughput it reports the steady-state
// replication health: how many sequences the followers trail the primary
// and the stream propagation delay of the last applied record.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"mdv/internal/client"
	"mdv/internal/provider"
	"mdv/internal/replica"
	"mdv/internal/workload"
)

// figureReplicated boots one durable primary and two read replicas over
// loopback TCP, caches a document set, and measures Browse throughput at
// 1/2/4/8 reader goroutines — all readers on the primary vs. round-robin
// across the replicas — with a concurrent writer re-registering documents
// so the replication stream carries a steady load.
func figureReplicated(div, reps int) {
	const nReplicas = 2
	docs := 400 / div
	queries := 200 * reps

	dir, err := os.MkdirTemp("", "mdvbench-replicated-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	primary, err := provider.OpenDurable("primary", workload.Schema(),
		filepath.Join(dir, "primary"), provider.DurableOptions{})
	if err != nil {
		panic(err)
	}
	defer primary.Close()
	primaryAddr, err := primary.Serve("127.0.0.1:0")
	if err != nil {
		panic(err)
	}

	gen := workload.Generator{Type: workload.PATH}
	if err := primary.RegisterDocuments(gen.Batch(0, docs)); err != nil {
		panic(err)
	}

	var followers []*replica.Follower
	var replicaAddrs []string
	for i := 0; i < nReplicas; i++ {
		rp, err := provider.OpenDurable(fmt.Sprintf("r%d", i+1), workload.Schema(),
			filepath.Join(dir, fmt.Sprintf("replica%d", i+1)),
			provider.DurableOptions{Replica: true})
		if err != nil {
			panic(err)
		}
		defer rp.Close()
		fol, err := replica.Start(rp, replica.Options{Primary: primaryAddr})
		if err != nil {
			panic(err)
		}
		defer fol.Close()
		addr, err := rp.Serve("127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		followers = append(followers, fol)
		replicaAddrs = append(replicaAddrs, addr)
		for deadline := time.Now().Add(30 * time.Second); rp.LogSeq() != primary.LogSeq(); {
			if time.Now().After(deadline) {
				panic("mdvbench: replica did not converge")
			}
			time.Sleep(time.Millisecond)
		}
	}

	dial := func(addrs []string) []*client.MDP {
		out := make([]*client.MDP, len(addrs))
		for i, a := range addrs {
			c, err := client.DialMDPConfig(a, client.Config{CallTimeout: 30 * time.Second})
			if err != nil {
				panic(err)
			}
			out[i] = c
		}
		return out
	}
	primaryClients := dial([]string{primaryAddr})
	replicaClients := dial(replicaAddrs)
	defer func() {
		for _, c := range append(primaryClients, replicaClients...) {
			c.Close()
		}
	}()

	browse := func(c *client.MDP) {
		if _, err := c.Browse("CycleProvider", "host39"); err != nil {
			panic(err)
		}
	}

	fmt.Printf("\nReplication — provider read throughput, primary vs. %d replicas (%d cached documents, %d reads per cell, writer on)\n",
		nReplicas, docs, queries)
	fmt.Printf("%-8s  %-22s  %-22s\n", "readers", "primary (us/read)", fmt.Sprintf("%d replicas (us/read)", nReplicas))
	for _, readers := range []int{1, 2, 4, 8} {
		fmt.Printf("%-8d", readers)
		for _, targets := range [][]*client.MDP{primaryClients, replicaClients} {
			stop := make(chan struct{})
			var wwg sync.WaitGroup
			wwg.Add(1)
			go func() {
				defer wwg.Done()
				for v := 0; ; v++ {
					select {
					case <-stop:
						return
					default:
					}
					if err := primary.RegisterDocument(rewriteDoc(v%(docs/8), v)); err != nil {
						panic(err)
					}
					time.Sleep(500 * time.Microsecond)
				}
			}()
			var wg sync.WaitGroup
			t0 := time.Now()
			for r := 0; r < readers; r++ {
				n := queries / readers
				if r < queries%readers {
					n++
				}
				wg.Add(1)
				go func(r, n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						browse(targets[(r+i)%len(targets)])
					}
				}(r, n)
			}
			wg.Wait()
			elapsed := time.Since(t0)
			close(stop)
			wwg.Wait()
			us := float64(elapsed.Microseconds()) / float64(queries)
			qps := float64(queries) / elapsed.Seconds()
			fmt.Printf("  %-9.1f %9.0f/s", us, qps)
			label := "primary"
			if len(targets) > 1 {
				label = fmt.Sprintf("replicas=%d", len(targets))
			}
			records = append(records, record{
				Figure: "replicated", Label: label, RuleType: "BROWSE",
				Batch: readers, UsPerDoc: us, Reps: reps,
			})
		}
		fmt.Println()
	}

	// Steady-state replication health after the full read/write load: how
	// far the followers trail the primary's log and the propagation delay
	// of the last record each applied.
	var maxLagSeqs uint64
	for _, fd := range primary.Followers() {
		if fd.LagSeqs > maxLagSeqs {
			maxLagSeqs = fd.LagSeqs
		}
	}
	var maxPropUS float64
	for _, fol := range followers {
		if us := float64(fol.Lag().Microseconds()); us > maxPropUS {
			maxPropUS = us
		}
	}
	fmt.Printf("steady-state lag: %d seqs behind, last-record propagation %.0f us\n", maxLagSeqs, maxPropUS)
	records = append(records,
		record{Figure: "replicated", Label: "lag_seqs", RuleType: "LAG", UsPerDoc: float64(maxLagSeqs), Reps: reps},
		record{Figure: "replicated", Label: "propagation_us", RuleType: "LAG", UsPerDoc: maxPropUS, Reps: reps})
}
