// Fan-out figure (DESIGN.md §12): per-publish delivery cost against
// subscriber count when interests coalesce. With N subscribers sharing G
// interest groups, the coalesced path builds G changesets, appends G
// changelog records, and encodes G wire frames per publish; the ablation
// (DisableInterestCoalescing) pays all three per subscriber. The figure
// sweeps 1/10/100 wire-attached subscribers over shared and distinct rule
// sets and reports publish-path microseconds per document (normalize by the
// subscriber count for us/doc-per-subscriber) plus bytes on the wire per
// subscriber per document.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"mdv/internal/changelog"
	"mdv/internal/client"
	"mdv/internal/core"
	"mdv/internal/provider"
	"mdv/internal/rdf"
	"mdv/internal/workload"
)

// fanoutMode is one measurement series of the fan-out figure.
type fanoutMode struct {
	label string
	// distinct gives every subscriber its own rule (no coalescible
	// sharing); otherwise subscribers share min(N, 10) rules round-robin.
	distinct bool
	opts     core.Options
}

// fanoutPayload sizes the strong-closure payload resource every round's
// upserts carry (paper §2.4: strong-reference closures always travel with
// the matching resource). The payload is registered once and never changes,
// so the per-round filter work stays small while every changeset build,
// changelog record, and wire frame pays the closure's full weight — the
// costs that scale per subscriber without coalescing and per group with it.
const fanoutPayload = 64 << 10

// figureFanout measures the publish path — filter run, changeset builds,
// changelog appends, frame encodes, and fan-out enqueue — per registered
// document as the number of wire subscribers grows. Documents change every
// round (a static re-registration publishes nothing), the changelog runs
// without fsyncs so disk latency is excluded, and each round's deliveries
// are drained outside the timed section so subscriber-side decode does not
// pollute the publish-path measurement.
func figureFanout(div, reps int) {
	rounds := 10 * reps
	if div > 1 {
		rounds = 5 * reps
	}
	modes := []fanoutMode{
		{label: "shared coalesced"},
		{label: "shared ablation", opts: core.Options{DisableInterestCoalescing: true}},
		{label: "distinct rules", distinct: true},
	}

	// Throwaway cell: warms the process (SQL engine, JSON encoder, listener
	// paths) so the table's first real cell is not cold-start inflated.
	fanoutCell(1, 1, modes[0])

	fmt.Printf("\nFan-out — interest-group coalesced delivery, PATH rules, %dKiB closure payload, %d rounds (us/doc | bytes/sub/doc)\n",
		fanoutPayload>>10, rounds)
	fmt.Printf("%-8s", "subs")
	for _, m := range modes {
		fmt.Printf("  %-24s", m.label)
	}
	fmt.Println()
	for _, subs := range []int{1, 10, 100} {
		fmt.Printf("%-8d", subs)
		for _, m := range modes {
			us, bytesPer := fanoutCell(subs, rounds, m)
			fmt.Printf("  %-10.1f %-12.1f", us, bytesPer)
			records = append(records,
				record{Figure: "fanout", Label: m.label, RuleType: "PATH",
					Rules: fanoutGroups(subs), Batch: subs, UsPerDoc: us, Reps: reps},
				record{Figure: "fanout", Label: m.label + " bytes/sub/doc", RuleType: "PATH",
					Rules: fanoutGroups(subs), Batch: subs, UsPerDoc: bytesPer, Reps: reps})
		}
		fmt.Println()
		os.Stdout.Sync()
	}
}

// fanoutGroups is the shared-mode interest-group count for N subscribers.
func fanoutGroups(subs int) int {
	if subs < 10 {
		return subs
	}
	return 10
}

// fanoutSchema is the workload schema plus a payload class reached from
// CycleProvider over a strong reference.
func fanoutSchema() *rdf.Schema {
	s := workload.Schema()
	s.MustAddProperty("CycleProvider", rdf.PropertyDef{
		Name: "blob", Type: rdf.TypeResource, RefClass: "Payload", RefKind: rdf.StrongRef})
	s.MustAddProperty("Payload", rdf.PropertyDef{Name: "data", Type: rdf.TypeString})
	return s
}

// fanoutBenchDoc is the PATH-workload document i (rule i matches it via
// serverInformation.memory = i) with a round-stamped serverPort, so every
// round's registration actually changes the document and publishes, plus a
// strong reference to the shared payload resource.
func fanoutBenchDoc(i, round int) *rdf.Document {
	doc := rdf.NewDocument(fmt.Sprintf("doc%d.rdf", i))
	host := doc.NewResource("host", "CycleProvider")
	host.Add("serverHost", rdf.Lit(fmt.Sprintf("host%d.uni-passau.de", i)))
	host.Add("serverPort", rdf.Lit(fmt.Sprint(1000+round)))
	host.Add("serverInformation", rdf.Ref(doc.QualifyID("info")))
	host.Add("blob", rdf.Ref("blob.rdf#data"))
	info := doc.NewResource("info", "ServerInformation")
	info.Add("memory", rdf.Lit(fmt.Sprint(i)))
	info.Add("cpu", rdf.Lit("600"))
	return doc
}

// fanoutCell boots a fresh durable MDP, attaches subs wire subscribers, and
// times the RegisterDocuments publish path over rounds of G-document
// batches, draining deliveries between rounds. It returns publish-path
// microseconds per registered document and wire bytes received per
// subscriber per document.
func fanoutCell(subs, rounds int, m fanoutMode) (usPerDoc, bytesPerSubDoc float64) {
	// Cells run back to back in one process; collect the previous cell's
	// garbage now so its GC debt is not charged to this cell's timed rounds.
	runtime.GC()
	groups := fanoutGroups(subs)
	gen := workload.Generator{Type: workload.PATH, RuleBase: subs}

	dir, err := os.MkdirTemp("", "mdvbench-fanout-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	prov, err := provider.OpenDurable("mdp", fanoutSchema(), filepath.Join(dir, "mdp"),
		provider.DurableOptions{Sync: changelog.SyncNone, EngineOptions: m.opts})
	if err != nil {
		panic(err)
	}
	defer prov.Close()
	// The payload is registered once, before any subscriptions: it matches
	// no rule, but every round's upserts carry it in their strong closure.
	blob := rdf.NewDocument("blob.rdf")
	blob.NewResource("data", "Payload").Add("data", rdf.Lit(strings.Repeat("x", fanoutPayload)))
	if err := prov.RegisterDocuments([]*rdf.Document{blob}); err != nil {
		panic(err)
	}
	addr, err := prov.Serve("127.0.0.1:0")
	if err != nil {
		panic(err)
	}

	// Subscriber j: shared mode uses rule j%G (N/G members per interest
	// group); distinct mode uses rule j (every group is a singleton, and
	// only the owners of the G registered documents receive pushes).
	clients := make([]*client.MDP, subs)
	applied := make([]atomic.Uint64, subs)
	expects := make([]int, subs)
	for j := 0; j < subs; j++ {
		cli, err := client.DialMDPConfig(addr, client.Config{CallTimeout: 30 * time.Second})
		if err != nil {
			panic(err)
		}
		defer cli.Close()
		clients[j] = cli
		name := fmt.Sprintf("lmr-%d", j)
		rule := gen.Rule(j % groups)
		expects[j] = 1
		if m.distinct {
			rule = gen.Rule(j)
			if j >= groups {
				expects[j] = 0
			}
		}
		j := j
		if err := cli.Attach(name, func(_ uint64, _ bool, _ *core.Changeset) error {
			applied[j].Add(1)
			return nil
		}); err != nil {
			panic(err)
		}
		if _, _, err := cli.Subscribe(name, rule); err != nil {
			panic(err)
		}
	}

	register := func(round int) time.Duration {
		docs := make([]*rdf.Document, groups)
		for i := range docs {
			docs[i] = fanoutBenchDoc(i, round)
		}
		t0 := time.Now()
		if err := prov.RegisterDocuments(docs); err != nil {
			panic(err)
		}
		return time.Since(t0)
	}
	waitApplied := func(target int) {
		deadline := time.Now().Add(120 * time.Second)
		for j := range applied {
			want := uint64(target * expects[j])
			for applied[j].Load() < want {
				if time.Now().After(deadline) {
					panic("mdvbench: fan-out deliveries did not converge")
				}
				time.Sleep(50 * time.Microsecond)
			}
		}
	}

	// Warm-up round: initial upserts (cold caches, first-match inserts)
	// are excluded from the measured steady-state update rounds.
	register(0)
	waitApplied(1)
	var bytesBefore uint64
	for _, cli := range clients {
		bytesBefore += cli.BytesRead()
	}

	var publish time.Duration
	for r := 1; r <= rounds; r++ {
		publish += register(r)
		// Drain outside the timed section: subscriber decode is receiver
		// cost, not per-publish cost, and on small machines it would
		// otherwise dominate both series equally and mask the ratio.
		waitApplied(r + 1)
	}

	var bytesAfter uint64
	for _, cli := range clients {
		bytesAfter += cli.BytesRead()
	}
	docs := float64(rounds * groups)
	usPerDoc = float64(publish.Microseconds()) / docs
	bytesPerSubDoc = float64(bytesAfter-bytesBefore) / float64(subs) / docs
	return usPerDoc, bytesPerSubDoc
}
