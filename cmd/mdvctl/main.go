// mdvctl is the MDV command-line client for administrators and users.
//
// Metadata administration (against an MDP):
//
//	mdvctl register  -mdp host:7171 doc1.rdf [doc2.rdf ...]
//	mdvctl delete    -mdp host:7171 -uri doc1.rdf
//	mdvctl browse    -mdp host:7171 -class CycleProvider [-contains passau]
//	mdvctl get       -mdp host:7171 -uri doc1.rdf
//	mdvctl stats     -mdp host:7171
//	mdvctl delivery  -mdp host:7171
//	mdvctl metrics   -mdp host:7171   (or -lmr host:7272)
//	mdvctl topology  -mdp host:7171
//	mdvctl promote   -mdp host:7172   (failover: make this replica the primary)
//
// Repository access (against an LMR):
//
//	mdvctl query     -lmr host:7272 "search CycleProvider c register c"
//	mdvctl subscribe -lmr host:7272 "search CycleProvider c register c where ..."
//	mdvctl unsubscribe -lmr host:7272 -id 3
//	mdvctl resources -lmr host:7272 [-class CycleProvider]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"text/tabwriter"
	"time"

	"mdv/mdv"
)

func usage() {
	fmt.Fprintln(os.Stderr, `usage: mdvctl <command> [flags] [args]

commands against a metadata provider (-mdp host:port):
  register   register RDF document files
  delete     delete a document by URI (-uri)
  browse     list resources of a class (-class, optional -contains)
  get        print a registered document (-uri)
  stats      print engine counters (plus the metrics registry when enabled)
  delivery   print per-subscriber delivery health (queues, drops, heartbeat RTT, lag)
  metrics    print the node's Prometheus metrics text (-mdp or -lmr)
  topology   print the node's cluster view: role, epoch, primary, follower lag
  promote    promote a replica to primary of a new epoch (failover)

commands against a repository (-lmr host:port):
  query        evaluate an MDV query
  subscribe    add a subscription rule
  unsubscribe  remove a subscription (-id)
  resources    list cached resources (optional -class)`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	mdpAddr := fs.String("mdp", "", "metadata provider address")
	lmrAddr := fs.String("lmr", "", "repository address")
	uri := fs.String("uri", "", "document URI")
	class := fs.String("class", "", "resource class")
	contains := fs.String("contains", "", "substring filter")
	subID := fs.Int64("id", 0, "subscription id")
	epoch := fs.Uint64("epoch", 0, "stamp writes with this replication term (exercises the epoch fence; 0 = unstamped)")
	fs.Parse(os.Args[2:])
	args := fs.Args()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "mdvctl: %v\n", err)
		os.Exit(1)
	}
	needMDP := func() *mdv.ProviderClient {
		if *mdpAddr == "" {
			fail(fmt.Errorf("%s requires -mdp", cmd))
		}
		c, err := mdv.DialProvider(*mdpAddr)
		if err != nil {
			fail(err)
		}
		return c
	}
	needLMR := func() *mdv.RepositoryClient {
		if *lmrAddr == "" {
			fail(fmt.Errorf("%s requires -lmr", cmd))
		}
		c, err := mdv.DialRepository(*lmrAddr)
		if err != nil {
			fail(err)
		}
		return c
	}

	switch cmd {
	case "register":
		if len(args) == 0 {
			fail(fmt.Errorf("register requires document files"))
		}
		c := needMDP()
		defer c.Close()
		if *epoch != 0 {
			c.SetWriteEpoch(*epoch)
		}
		var docs []*mdv.Document
		for _, path := range args {
			f, err := os.Open(path)
			if err != nil {
				fail(err)
			}
			// The document URI is the file's base name unless the document
			// declares resources via rdf:about.
			doc, err := mdv.ParseDocument(filepath.Base(path), f)
			f.Close()
			if err != nil {
				fail(fmt.Errorf("%s: %w", path, err))
			}
			docs = append(docs, doc)
		}
		if err := c.RegisterDocuments(docs); err != nil {
			fail(err)
		}
		fmt.Printf("registered %d document(s)\n", len(docs))

	case "delete":
		if *uri == "" {
			fail(fmt.Errorf("delete requires -uri"))
		}
		c := needMDP()
		defer c.Close()
		if err := c.DeleteDocument(*uri); err != nil {
			fail(err)
		}
		fmt.Printf("deleted %s\n", *uri)

	case "browse":
		if *class == "" {
			fail(fmt.Errorf("browse requires -class"))
		}
		c := needMDP()
		defer c.Close()
		rs, err := c.Browse(*class, *contains)
		if err != nil {
			fail(err)
		}
		printResources(rs)

	case "get":
		if *uri == "" {
			fail(fmt.Errorf("get requires -uri"))
		}
		c := needMDP()
		defer c.Close()
		doc, err := c.GetDocument(*uri)
		if err != nil {
			fail(err)
		}
		if err := mdv.WriteDocument(os.Stdout, doc); err != nil {
			fail(err)
		}

	case "stats":
		c := needMDP()
		defer c.Close()
		st, err := c.Stats()
		if err != nil {
			fail(err)
		}
		if ds, err := c.DeliveryStats(); err == nil && ds.Role != "" {
			fmt.Printf("role:                  %s\n", ds.Role)
		}
		fmt.Printf("documents registered:  %d\n", st.DocumentsRegistered)
		fmt.Printf("resources registered:  %d\n", st.ResourcesRegistered)
		fmt.Printf("filter runs:           %d\n", st.FilterRuns)
		fmt.Printf("filter iterations:     %d\n", st.FilterIterations)
		fmt.Printf("triggering matches:    %d\n", st.TriggeringMatches)
		fmt.Printf("join evaluations:      %d\n", st.JoinEvaluations)
		fmt.Printf("join matches:          %d\n", st.JoinMatches)
		fmt.Printf("atomic rules created:  %d\n", st.AtomicRulesCreated)
		fmt.Printf("atomic rules shared:   %d\n", st.AtomicRulesShared)
		// A provider run with -metrics also serves its full registry; print
		// it when present (the same text /metrics exposes).
		if text, err := c.Metrics(); err == nil && text != "" {
			fmt.Printf("\n# metrics registry\n%s", text)
		}

	case "metrics":
		// Raw Prometheus text from either tier (empty if metrics disabled).
		var text string
		var err error
		switch {
		case *mdpAddr != "":
			c := needMDP()
			defer c.Close()
			text, err = c.Metrics()
		case *lmrAddr != "":
			c := needLMR()
			defer c.Close()
			text, err = c.Metrics()
		default:
			fail(fmt.Errorf("metrics requires -mdp or -lmr"))
		}
		if err != nil {
			fail(err)
		}
		if text == "" {
			fmt.Println("(metrics not enabled on the node)")
		} else {
			fmt.Print(text)
		}

	case "delivery":
		c := needMDP()
		defer c.Close()
		ds, err := c.DeliveryStats()
		if err != nil {
			fail(err)
		}
		printDelivery(ds)

	case "topology":
		c := needMDP()
		defer c.Close()
		topo, err := c.Topology()
		if err != nil {
			fail(err)
		}
		printTopology(topo)

	case "promote":
		c := needMDP()
		defer c.Close()
		newEpoch, err := c.Promote()
		if err != nil {
			fail(err)
		}
		fmt.Printf("promoted: node is primary at epoch %d\n", newEpoch)

	case "query":
		if len(args) != 1 {
			fail(fmt.Errorf("query requires exactly one query string"))
		}
		c := needLMR()
		defer c.Close()
		rs, err := c.Query(args[0])
		if err != nil {
			fail(err)
		}
		printResources(rs)

	case "subscribe":
		if len(args) != 1 {
			fail(fmt.Errorf("subscribe requires exactly one rule string"))
		}
		c := needLMR()
		defer c.Close()
		id, err := c.AddSubscription(args[0])
		if err != nil {
			fail(err)
		}
		fmt.Printf("subscription %d registered\n", id)

	case "unsubscribe":
		if *subID == 0 {
			fail(fmt.Errorf("unsubscribe requires -id"))
		}
		c := needLMR()
		defer c.Close()
		if err := c.RemoveSubscription(*subID); err != nil {
			fail(err)
		}
		fmt.Printf("subscription %d removed\n", *subID)

	case "resources":
		c := needLMR()
		defer c.Close()
		rs, err := c.Resources(*class)
		if err != nil {
			fail(err)
		}
		printResources(rs)

	default:
		usage()
	}
}

func printTopology(topo *mdv.TopologyView) {
	fmt.Printf("node:    %s\n", topo.Name)
	fmt.Printf("role:    %s\n", topo.Role)
	fmt.Printf("epoch:   %d\n", topo.Epoch)
	fmt.Printf("log seq: %d\n", topo.LogSeq)
	if topo.Role == "replica" {
		primary := topo.Primary
		if primary == "" {
			primary = "(unknown)"
		}
		proxy := "down (writes degrade to retryable no-primary errors)"
		if topo.ProxyUp {
			proxy = "up"
		}
		fmt.Printf("primary: %s\n", primary)
		fmt.Printf("proxy:   %s\n", proxy)
	}
	if len(topo.Followers) > 0 {
		fmt.Println()
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "FOLLOWER\tCONNECTED\tSTREAMED\tACKED\tLAG")
		for _, f := range topo.Followers {
			fmt.Fprintf(w, "%s\t%t\t%d\t%d\t%d\n",
				f.Follower, f.Connected, f.StreamedSeq, f.AckedSeq, f.LagSeqs)
		}
		w.Flush()
	} else if topo.Role == "primary" {
		fmt.Println("(no followers)")
	}
}

func printDelivery(ds *mdv.DeliveryStats) {
	if ds.Role != "" {
		fmt.Printf("role:              %s\n", ds.Role)
	}
	fmt.Printf("published log seq: %d\n", ds.LogSeq)
	if len(ds.Subscribers) == 0 {
		fmt.Println("(no subscribers)")
	} else {
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "SUBSCRIBER\tCONNS\tQUEUE\tENQUEUED\tDROPPED\tDISCONNECTS\tPUBLISHED\tACKED\tLAG\tRTT\tIDLE")
		for _, s := range ds.Subscribers {
			fmt.Fprintf(w, "%s\t%d\t%d/%d\t%d\t%d\t%d\t%d\t%d\t%d\t%s\t%s\n",
				s.Subscriber, s.Conns, s.QueueDepth, s.QueueCap, s.Enqueued,
				s.Dropped, s.Disconnects, s.PublishedSeq, s.AckedSeq, s.Lag,
				time.Duration(s.RTTMicros)*time.Microsecond,
				time.Duration(s.IdleMillis)*time.Millisecond)
		}
		w.Flush()
	}
	if len(ds.Followers) > 0 {
		fmt.Println()
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "FOLLOWER\tCONNECTED\tSTREAMED\tACKED\tLAG")
		for _, f := range ds.Followers {
			fmt.Fprintf(w, "%s\t%t\t%d\t%d\t%d\n",
				f.Follower, f.Connected, f.StreamedSeq, f.AckedSeq, f.LagSeqs)
		}
		w.Flush()
	}
}

func printResources(rs []*mdv.Resource) {
	if len(rs) == 0 {
		fmt.Println("(no resources)")
		return
	}
	for _, r := range rs {
		fmt.Printf("%s  [%s]\n", r.URIRef, r.Class)
		for _, p := range r.Props {
			kind := ""
			if p.Value.Kind != 0 {
				kind = " ->"
			}
			fmt.Printf("    %-20s%s %s\n", p.Name, kind, strings.TrimSpace(p.Value.String()))
		}
	}
	fmt.Printf("%d resource(s)\n", len(rs))
}
