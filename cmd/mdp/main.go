// mdp runs a Metadata Provider (MDP): an MDV backbone node serving the
// wire protocol. Peers form a fully replicating backbone.
//
// Usage:
//
//	mdp -addr :7171 -name mdp1 -schema schema.rdf [-peer host:port ...]
//
// The schema file uses the RDF Schema serialization accepted by
// rdf.ParseSchema (see the repository README for an example).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"mdv/mdv"
)

type peerList []string

func (p *peerList) String() string { return fmt.Sprint(*p) }
func (p *peerList) Set(v string) error {
	*p = append(*p, v)
	return nil
}

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7171", "listen address")
		name       = flag.String("name", "mdp", "provider name")
		schemaPath = flag.String("schema", "", "path to the RDF schema file (required)")
		snapshot   = flag.String("snapshot", "", "snapshot file: loaded at startup if present, written on shutdown")
		peers      peerList
	)
	flag.Var(&peers, "peer", "backbone peer address (repeatable)")
	flag.Parse()

	if *schemaPath == "" {
		fmt.Fprintln(os.Stderr, "mdp: -schema is required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*schemaPath)
	if err != nil {
		log.Fatalf("mdp: open schema: %v", err)
	}
	schema, err := mdv.ParseSchema(f)
	f.Close()
	if err != nil {
		log.Fatalf("mdp: parse schema: %v", err)
	}

	var prov *mdv.Provider
	if *snapshot != "" {
		if sf, err := os.Open(*snapshot); err == nil {
			engine, lerr := mdv.LoadEngine(sf, schema)
			sf.Close()
			if lerr != nil {
				log.Fatalf("mdp: load snapshot: %v", lerr)
			}
			prov = mdv.NewProviderFromEngine(*name, engine)
			log.Printf("mdp: restored snapshot %s (%d documents)", *snapshot, engineDocs(engine))
		}
	}
	if prov == nil {
		var err error
		prov, err = mdv.NewProvider(*name, schema)
		if err != nil {
			log.Fatalf("mdp: %v", err)
		}
	}
	listenAddr, err := prov.Serve(*addr)
	if err != nil {
		log.Fatalf("mdp: serve: %v", err)
	}
	log.Printf("mdp %q listening on %s (schema: %d classes)", *name, listenAddr, len(schema.Classes()))

	for _, peerAddr := range peers {
		peer, err := mdv.DialProvider(peerAddr)
		if err != nil {
			log.Fatalf("mdp: dial peer %s: %v", peerAddr, err)
		}
		prov.AddPeer(peer)
		log.Printf("mdp: replicating to peer %s", peerAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("mdp: shutting down")
	if *snapshot != "" {
		tmp := *snapshot + ".tmp"
		f, err := os.Create(tmp)
		if err != nil {
			log.Printf("mdp: snapshot: %v", err)
		} else if err := prov.SaveSnapshot(f); err != nil {
			f.Close()
			log.Printf("mdp: snapshot: %v", err)
		} else {
			f.Close()
			if err := os.Rename(tmp, *snapshot); err != nil {
				log.Printf("mdp: snapshot: %v", err)
			} else {
				log.Printf("mdp: snapshot written to %s", *snapshot)
			}
		}
	}
	prov.Close()
}

func engineDocs(engine *mdv.Engine) int {
	uris, err := engine.DocumentURIs()
	if err != nil {
		return -1
	}
	return len(uris)
}
