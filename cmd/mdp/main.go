// mdp runs a Metadata Provider (MDP): an MDV backbone node serving the
// wire protocol. Peers form a fully replicating backbone.
//
// Usage:
//
//	mdp -addr :7171 -name mdp1 -schema schema.rdf [-peer host:port ...]
//	mdp -addr :7171 -name mdp1 -schema schema.rdf -data /var/lib/mdp \
//	    [-wal-sync group|always|none] [-snapshot-interval 5m]
//	mdp -addr :7172 -name mdp2 -schema schema.rdf -data /var/lib/mdp2 \
//	    -replica-of primary:7171
//
// With -data the provider is durable: every acknowledged operation is
// written to a write-ahead changelog before it is applied, snapshots are
// taken periodically (-snapshot-interval) and on SIGTERM, and reconnecting
// LMRs resume the changeset stream from their acknowledged sequence.
//
// With -replica-of the node runs as a read replica of the named primary:
// it streams the primary's changelog into its own durable copy
// (bootstrapping from a shipped snapshot when it has fallen behind the
// primary's log retention), serves the full read path — subscriptions,
// queries, browsing, changeset resume — and proxies write operations to
// the primary. Requires -data; incompatible with -peer.
//
// Failover (DESIGN.md §11): repeat -cluster with every endpoint that may
// be or become the primary. A replica then re-points automatically after
// a promotion (operator `mdvctl promote`, or the opt-in -auto-promote
// deadman), and a restarting ex-primary probes the cluster before serving:
// if a higher-epoch primary exists it rejoins as a follower, repairing any
// divergent log tail via a forced snapshot resync, and fences every write
// stamped with its dead term.
//
// The schema file uses the RDF Schema serialization accepted by
// rdf.ParseSchema (see the repository README for an example).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"mdv/mdv"
)

type peerList []string

func (p *peerList) String() string { return fmt.Sprint(*p) }
func (p *peerList) Set(v string) error {
	*p = append(*p, v)
	return nil
}

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7171", "listen address")
		name       = flag.String("name", "mdp", "provider name")
		schemaPath = flag.String("schema", "", "path to the RDF schema file (required)")
		snapshot   = flag.String("snapshot", "", "snapshot file: loaded at startup if present, written on shutdown (non-durable mode)")
		dataDir    = flag.String("data", "", "durable data directory (snapshot + write-ahead changelog); enables durable mode")
		walSync    = flag.String("wal-sync", "group", "changelog durability: group (batched fsync), always (fsync per op), none")
		snapEvery  = flag.Duration("snapshot-interval", 5*time.Minute, "durable mode: interval between snapshot+changelog-truncation passes (0 disables)")
		heartbeat  = flag.Duration("heartbeat", 5*time.Second, "heartbeat ping interval; peers silent for 3x this are disconnected (0 disables)")
		ioTimeout  = flag.Duration("io-timeout", 10*time.Second, "per-message write deadline on subscriber connections (0 disables)")
		sendQueue  = flag.Int("send-queue", 256, "bounded per-subscriber send queue; overflow disconnects the subscriber")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; also enables mutex/block profiling; empty disables)")
		shards     = flag.Int("shards", runtime.GOMAXPROCS(0), "triggering shards of the filter engine (1 = serial engine)")
		noSharding = flag.Bool("no-sharded-triggering", false, "ablation: force the serial triggering path regardless of -shards")
		noTextIdx  = flag.Bool("no-text-index", false, "ablation: per-rule CONTAINS scans instead of the contains-rule substring index")
		metricsOn  = flag.String("metrics", "", "serve Prometheus /metrics on this address (e.g. localhost:6060; shares the pprof mux; empty disables)")
		slowThresh = flag.Duration("slow-threshold", 0, "log publishes slower than this, with the dominating rule groups and statements (0 disables)")
		replicaOf  = flag.String("replica-of", "", "run as a read replica of the primary MDP at this address (requires -data)")
		advertise  = flag.String("advertise", "", "identity announced to the primary's follower stats (default: -name)")
		advAddr    = flag.String("advertise-addr", "", "address other nodes should use to reach this one (default: the bound listen address)")
		autoProm   = flag.Duration("auto-promote", 0, "replica deadman: self-promote after this long without any reachable primary, if most caught-up among -cluster peers (0 disables)")
		peers      peerList
		cluster    peerList
	)
	flag.Var(&peers, "peer", "backbone peer address (repeatable)")
	flag.Var(&cluster, "cluster", "replication cluster candidate endpoint (repeatable): every node that may be or become the primary; enables startup rejoin probing and failover re-pointing")
	flag.Parse()

	if *schemaPath == "" {
		fmt.Fprintln(os.Stderr, "mdp: -schema is required")
		flag.Usage()
		os.Exit(2)
	}
	if *replicaOf != "" && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "mdp: -replica-of requires -data (a replica keeps its own changelog copy)")
		os.Exit(2)
	}
	if *replicaOf != "" && len(peers) > 0 {
		fmt.Fprintln(os.Stderr, "mdp: -replica-of and -peer are mutually exclusive (a replica proxies writes to its primary)")
		os.Exit(2)
	}
	var syncPolicy mdv.SyncPolicy
	switch *walSync {
	case "group":
		syncPolicy = mdv.SyncGroup
	case "always":
		syncPolicy = mdv.SyncAlways
	case "none":
		syncPolicy = mdv.SyncNone
	default:
		fmt.Fprintf(os.Stderr, "mdp: unknown -wal-sync %q (want group, always, or none)\n", *walSync)
		os.Exit(2)
	}
	if *pprofAddr != "" {
		// Contended-lock visibility: sample one in 100 mutex contention
		// events and blocking events of ~100µs and up, so the per-shard
		// statement locks and the engine lock show up in the mutex/block
		// profiles (see the README capture recipe).
		runtime.SetMutexProfileFraction(100)
		runtime.SetBlockProfileRate(100_000)
		go func() {
			log.Printf("mdp: pprof listening on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("mdp: pprof: %v", err)
			}
		}()
	}
	f, err := os.Open(*schemaPath)
	if err != nil {
		log.Fatalf("mdp: open schema: %v", err)
	}
	schema, err := mdv.ParseSchema(f)
	f.Close()
	if err != nil {
		log.Fatalf("mdp: parse schema: %v", err)
	}

	engOpts := mdv.EngineOptions{Shards: *shards, DisableShardedTriggering: *noSharding, DisableTextIndex: *noTextIdx}

	var prov *mdv.Provider
	if *dataDir != "" {
		var stats *mdv.RecoveryStats
		var err error
		prov, stats, err = mdv.OpenDurableProviderWithStats(*name, schema, *dataDir,
			mdv.DurableOptions{Sync: syncPolicy, Replica: *replicaOf != "", EngineOptions: engOpts})
		if err != nil {
			log.Fatalf("mdp: open durable store: %v", err)
		}
		log.Printf("mdp: durable store %s (snapshot seq %d, %d ops replayed, %d skipped, log seq %d)",
			*dataDir, stats.SnapshotSeq, stats.Replayed, stats.Skipped, prov.LogSeq())
	}
	if prov == nil && *snapshot != "" {
		if sf, err := os.Open(*snapshot); err == nil {
			engine, lerr := mdv.LoadEngineWithOptions(sf, schema, engOpts)
			sf.Close()
			if lerr != nil {
				log.Fatalf("mdp: load snapshot: %v", lerr)
			}
			prov = mdv.NewProviderFromEngine(*name, engine)
			log.Printf("mdp: restored snapshot %s (%d documents)", *snapshot, engineDocs(engine))
		}
	}
	if prov == nil {
		var err error
		prov, err = mdv.NewProviderWithOptions(*name, schema, engOpts)
		if err != nil {
			log.Fatalf("mdp: %v", err)
		}
	}
	var reg *mdv.MetricsRegistry
	if *metricsOn != "" {
		reg = mdv.NewMetricsRegistry()
		prov.EnableMetrics(reg)
		http.Handle("/metrics", reg.Handler())
		if *metricsOn == *pprofAddr {
			// The pprof listener already serves the default mux.
			log.Printf("mdp: metrics on http://%s/metrics (pprof mux)", *metricsOn)
		} else {
			go func() {
				log.Printf("mdp: metrics listening on http://%s/metrics", *metricsOn)
				if err := http.ListenAndServe(*metricsOn, nil); err != nil {
					log.Printf("mdp: metrics: %v", err)
				}
			}()
		}
	}
	if *slowThresh > 0 {
		prov.Engine().SetSlowOpLog(*slowThresh, log.Printf)
	}
	wireCfg := mdv.WireConfig{
		HeartbeatInterval: *heartbeat,
		IdleTimeout:       3 * *heartbeat,
		WriteTimeout:      *ioTimeout,
		SendQueue:         *sendQueue,
	}
	peerCfg := mdv.ClientConfig{
		Heartbeat:    *heartbeat,
		IdleTimeout:  3 * *heartbeat,
		WriteTimeout: *ioTimeout,
		CallTimeout:  30 * time.Second,
	}

	// Startup rejoin probe: a durable node restarting from an old primary's
	// state may have been deposed while it was down. If any -cluster
	// candidate serves a HIGHER epoch, step down before serving a single
	// request — the stale node must never ack a write of its dead term —
	// and follow that primary instead (repairing a divergent log tail via
	// forced snapshot resync).
	followPrimary := *replicaOf
	if *dataDir != "" && followPrimary == "" && len(cluster) > 0 && !prov.Replica() {
		if paddr, topo := mdv.ProbeForPrimary(cluster, peerCfg); topo != nil && topo.Epoch > prov.Epoch() {
			log.Printf("mdp: cluster primary %s serves epoch %d > local %d; rejoining as follower",
				paddr, topo.Epoch, prov.Epoch())
			prov.ObserveEpoch(topo.Epoch, paddr)
			followPrimary = paddr
		}
	}

	followerName := *advertise
	if followerName == "" {
		followerName = *name
	}
	// startFollower (re)starts the replication session toward a primary.
	// It runs at startup for -replica-of / a rejoin, and again from
	// OnDemote when a serving primary learns it has been deposed.
	var folMu sync.Mutex
	var follower *mdv.Follower
	var folMetrics sync.Once
	startFollower := func(primaryAddr string) error {
		folMu.Lock()
		defer folMu.Unlock()
		if follower != nil {
			follower.Close()
		}
		fol, err := mdv.StartFollower(prov, mdv.FollowerOptions{
			Name:        followerName,
			Primary:     primaryAddr,
			Primaries:   cluster,
			AutoPromote: *autoProm,
			Client:      peerCfg,
			Logf:        log.Printf,
		})
		if err != nil {
			return err
		}
		follower = fol
		if reg != nil {
			folMetrics.Do(func() { fol.EnableMetrics(reg) })
		}
		log.Printf("mdp: replicating from primary %s (as %q, local tail %d)",
			primaryAddr, followerName, prov.LogSeq())
		return nil
	}
	prov.OnDemote = func(epoch uint64, newPrimary string) {
		log.Printf("mdp: stepped down: observed epoch %d (local term is dead)", epoch)
		if newPrimary == "" && len(cluster) > 0 {
			if paddr, topo := mdv.ProbeForPrimary(cluster, peerCfg); topo != nil {
				newPrimary = paddr
			}
		}
		if newPrimary == "" {
			log.Printf("mdp: no reachable primary to follow after step-down; serving reads, degrading writes")
			return
		}
		if err := startFollower(newPrimary); err != nil {
			log.Printf("mdp: start replication after step-down: %v", err)
		}
	}

	listenAddr, err := prov.ServeConfig(*addr, wireCfg)
	if err != nil {
		log.Fatalf("mdp: serve: %v", err)
	}
	if *advAddr != "" {
		prov.SetAdvertiseAddr(*advAddr)
	}
	log.Printf("mdp %q listening on %s (schema: %d classes, role %s, epoch %d, engine shards %d)",
		*name, listenAddr, len(schema.Classes()), prov.Role(), prov.Epoch(), prov.Engine().ShardCount())

	if followPrimary != "" {
		if err := startFollower(followPrimary); err != nil {
			log.Fatalf("mdp: start replication: %v", err)
		}
	}

	for _, peerAddr := range peers {
		peer, err := mdv.DialProviderWithConfig(peerAddr, peerCfg)
		if err != nil {
			log.Fatalf("mdp: dial peer %s: %v", peerAddr, err)
		}
		prov.AddPeer(peer)
		log.Printf("mdp: replicating to peer %s", peerAddr)
	}

	var stopSnapshots chan struct{}
	if *dataDir != "" && *snapEvery > 0 {
		stopSnapshots = make(chan struct{})
		go func() {
			t := time.NewTicker(*snapEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := prov.Compact(); err != nil {
						log.Printf("mdp: periodic snapshot: %v", err)
					} else {
						log.Printf("mdp: snapshot written (log seq %d)", prov.LogSeq())
					}
				case <-stopSnapshots:
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("mdp: shutting down")
	folMu.Lock()
	if follower != nil {
		follower.Close()
	}
	folMu.Unlock()
	if stopSnapshots != nil {
		close(stopSnapshots)
	}
	if *dataDir != "" {
		if err := prov.Compact(); err != nil {
			log.Printf("mdp: final snapshot: %v", err)
		} else {
			log.Printf("mdp: final snapshot written (log seq %d)", prov.LogSeq())
		}
	}
	if *snapshot != "" && *dataDir == "" {
		tmp := *snapshot + ".tmp"
		f, err := os.Create(tmp)
		if err != nil {
			log.Printf("mdp: snapshot: %v", err)
		} else if err := prov.SaveSnapshot(f); err != nil {
			f.Close()
			log.Printf("mdp: snapshot: %v", err)
		} else {
			f.Close()
			if err := os.Rename(tmp, *snapshot); err != nil {
				log.Printf("mdp: snapshot: %v", err)
			} else {
				log.Printf("mdp: snapshot written to %s", *snapshot)
			}
		}
	}
	prov.Close()
}

func engineDocs(engine *mdv.Engine) int {
	uris, err := engine.DocumentURIs()
	if err != nil {
		return -1
	}
	return len(uris)
}
