// mdp runs a Metadata Provider (MDP): an MDV backbone node serving the
// wire protocol. Peers form a fully replicating backbone.
//
// Usage:
//
//	mdp -addr :7171 -name mdp1 -schema schema.rdf [-peer host:port ...]
//	mdp -addr :7171 -name mdp1 -schema schema.rdf -data /var/lib/mdp \
//	    [-wal-sync group|always|none] [-snapshot-interval 5m]
//	mdp -addr :7172 -name mdp2 -schema schema.rdf -data /var/lib/mdp2 \
//	    -replica-of primary:7171
//
// With -data the provider is durable: every acknowledged operation is
// written to a write-ahead changelog before it is applied, snapshots are
// taken periodically (-snapshot-interval) and on SIGTERM, and reconnecting
// LMRs resume the changeset stream from their acknowledged sequence.
//
// With -replica-of the node runs as a read replica of the named primary:
// it streams the primary's changelog into its own durable copy
// (bootstrapping from a shipped snapshot when it has fallen behind the
// primary's log retention), serves the full read path — subscriptions,
// queries, browsing, changeset resume — and proxies write operations to
// the primary. Requires -data; incompatible with -peer.
//
// The schema file uses the RDF Schema serialization accepted by
// rdf.ParseSchema (see the repository README for an example).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mdv/mdv"
)

type peerList []string

func (p *peerList) String() string { return fmt.Sprint(*p) }
func (p *peerList) Set(v string) error {
	*p = append(*p, v)
	return nil
}

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7171", "listen address")
		name       = flag.String("name", "mdp", "provider name")
		schemaPath = flag.String("schema", "", "path to the RDF schema file (required)")
		snapshot   = flag.String("snapshot", "", "snapshot file: loaded at startup if present, written on shutdown (non-durable mode)")
		dataDir    = flag.String("data", "", "durable data directory (snapshot + write-ahead changelog); enables durable mode")
		walSync    = flag.String("wal-sync", "group", "changelog durability: group (batched fsync), always (fsync per op), none")
		snapEvery  = flag.Duration("snapshot-interval", 5*time.Minute, "durable mode: interval between snapshot+changelog-truncation passes (0 disables)")
		heartbeat  = flag.Duration("heartbeat", 5*time.Second, "heartbeat ping interval; peers silent for 3x this are disconnected (0 disables)")
		ioTimeout  = flag.Duration("io-timeout", 10*time.Second, "per-message write deadline on subscriber connections (0 disables)")
		sendQueue  = flag.Int("send-queue", 256, "bounded per-subscriber send queue; overflow disconnects the subscriber")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty disables)")
		metricsOn  = flag.String("metrics", "", "serve Prometheus /metrics on this address (e.g. localhost:6060; shares the pprof mux; empty disables)")
		slowThresh = flag.Duration("slow-threshold", 0, "log publishes slower than this, with the dominating rule groups and statements (0 disables)")
		replicaOf  = flag.String("replica-of", "", "run as a read replica of the primary MDP at this address (requires -data)")
		advertise  = flag.String("advertise", "", "identity announced to the primary's follower stats (default: -name)")
		peers      peerList
	)
	flag.Var(&peers, "peer", "backbone peer address (repeatable)")
	flag.Parse()

	if *schemaPath == "" {
		fmt.Fprintln(os.Stderr, "mdp: -schema is required")
		flag.Usage()
		os.Exit(2)
	}
	if *replicaOf != "" && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "mdp: -replica-of requires -data (a replica keeps its own changelog copy)")
		os.Exit(2)
	}
	if *replicaOf != "" && len(peers) > 0 {
		fmt.Fprintln(os.Stderr, "mdp: -replica-of and -peer are mutually exclusive (a replica proxies writes to its primary)")
		os.Exit(2)
	}
	var syncPolicy mdv.SyncPolicy
	switch *walSync {
	case "group":
		syncPolicy = mdv.SyncGroup
	case "always":
		syncPolicy = mdv.SyncAlways
	case "none":
		syncPolicy = mdv.SyncNone
	default:
		fmt.Fprintf(os.Stderr, "mdp: unknown -wal-sync %q (want group, always, or none)\n", *walSync)
		os.Exit(2)
	}
	if *pprofAddr != "" {
		go func() {
			log.Printf("mdp: pprof listening on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("mdp: pprof: %v", err)
			}
		}()
	}
	f, err := os.Open(*schemaPath)
	if err != nil {
		log.Fatalf("mdp: open schema: %v", err)
	}
	schema, err := mdv.ParseSchema(f)
	f.Close()
	if err != nil {
		log.Fatalf("mdp: parse schema: %v", err)
	}

	var prov *mdv.Provider
	if *dataDir != "" {
		var stats *mdv.RecoveryStats
		var err error
		prov, stats, err = mdv.OpenDurableProviderWithStats(*name, schema, *dataDir,
			mdv.DurableOptions{Sync: syncPolicy, Replica: *replicaOf != ""})
		if err != nil {
			log.Fatalf("mdp: open durable store: %v", err)
		}
		log.Printf("mdp: durable store %s (snapshot seq %d, %d ops replayed, %d skipped, log seq %d)",
			*dataDir, stats.SnapshotSeq, stats.Replayed, stats.Skipped, prov.LogSeq())
	}
	if prov == nil && *snapshot != "" {
		if sf, err := os.Open(*snapshot); err == nil {
			engine, lerr := mdv.LoadEngine(sf, schema)
			sf.Close()
			if lerr != nil {
				log.Fatalf("mdp: load snapshot: %v", lerr)
			}
			prov = mdv.NewProviderFromEngine(*name, engine)
			log.Printf("mdp: restored snapshot %s (%d documents)", *snapshot, engineDocs(engine))
		}
	}
	if prov == nil {
		var err error
		prov, err = mdv.NewProvider(*name, schema)
		if err != nil {
			log.Fatalf("mdp: %v", err)
		}
	}
	var reg *mdv.MetricsRegistry
	if *metricsOn != "" {
		reg = mdv.NewMetricsRegistry()
		prov.EnableMetrics(reg)
		http.Handle("/metrics", reg.Handler())
		if *metricsOn == *pprofAddr {
			// The pprof listener already serves the default mux.
			log.Printf("mdp: metrics on http://%s/metrics (pprof mux)", *metricsOn)
		} else {
			go func() {
				log.Printf("mdp: metrics listening on http://%s/metrics", *metricsOn)
				if err := http.ListenAndServe(*metricsOn, nil); err != nil {
					log.Printf("mdp: metrics: %v", err)
				}
			}()
		}
	}
	if *slowThresh > 0 {
		prov.Engine().SetSlowOpLog(*slowThresh, log.Printf)
	}
	wireCfg := mdv.WireConfig{
		HeartbeatInterval: *heartbeat,
		IdleTimeout:       3 * *heartbeat,
		WriteTimeout:      *ioTimeout,
		SendQueue:         *sendQueue,
	}
	listenAddr, err := prov.ServeConfig(*addr, wireCfg)
	if err != nil {
		log.Fatalf("mdp: serve: %v", err)
	}
	log.Printf("mdp %q listening on %s (schema: %d classes, role %s)",
		*name, listenAddr, len(schema.Classes()), prov.Role())

	peerCfg := mdv.ClientConfig{
		Heartbeat:    *heartbeat,
		IdleTimeout:  3 * *heartbeat,
		WriteTimeout: *ioTimeout,
	}

	var follower *mdv.Follower
	if *replicaOf != "" {
		followerName := *advertise
		if followerName == "" {
			followerName = *name
		}
		follower, err = mdv.StartFollower(prov, mdv.FollowerOptions{
			Name:    followerName,
			Primary: *replicaOf,
			Client:  peerCfg,
			Logf:    log.Printf,
		})
		if err != nil {
			log.Fatalf("mdp: start replication: %v", err)
		}
		if reg != nil {
			follower.EnableMetrics(reg)
		}
		log.Printf("mdp: replicating from primary %s (as %q, local tail %d)",
			*replicaOf, followerName, prov.LogSeq())
	}

	for _, peerAddr := range peers {
		peer, err := mdv.DialProviderWithConfig(peerAddr, peerCfg)
		if err != nil {
			log.Fatalf("mdp: dial peer %s: %v", peerAddr, err)
		}
		prov.AddPeer(peer)
		log.Printf("mdp: replicating to peer %s", peerAddr)
	}

	var stopSnapshots chan struct{}
	if *dataDir != "" && *snapEvery > 0 {
		stopSnapshots = make(chan struct{})
		go func() {
			t := time.NewTicker(*snapEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := prov.Compact(); err != nil {
						log.Printf("mdp: periodic snapshot: %v", err)
					} else {
						log.Printf("mdp: snapshot written (log seq %d)", prov.LogSeq())
					}
				case <-stopSnapshots:
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("mdp: shutting down")
	if follower != nil {
		follower.Close()
	}
	if stopSnapshots != nil {
		close(stopSnapshots)
	}
	if *dataDir != "" {
		if err := prov.Compact(); err != nil {
			log.Printf("mdp: final snapshot: %v", err)
		} else {
			log.Printf("mdp: final snapshot written (log seq %d)", prov.LogSeq())
		}
	}
	if *snapshot != "" && *dataDir == "" {
		tmp := *snapshot + ".tmp"
		f, err := os.Create(tmp)
		if err != nil {
			log.Printf("mdp: snapshot: %v", err)
		} else if err := prov.SaveSnapshot(f); err != nil {
			f.Close()
			log.Printf("mdp: snapshot: %v", err)
		} else {
			f.Close()
			if err := os.Rename(tmp, *snapshot); err != nil {
				log.Printf("mdp: snapshot: %v", err)
			} else {
				log.Printf("mdp: snapshot written to %s", *snapshot)
			}
		}
	}
	prov.Close()
}

func engineDocs(engine *mdv.Engine) int {
	uris, err := engine.DocumentURIs()
	if err != nil {
		return -1
	}
	return len(uris)
}
