// lmr runs a Local Metadata Repository (LMR): the MDV middle-tier cache.
// It connects to a Metadata Provider, registers the subscription rules
// given in the rules file (one rule per line; blank lines and lines
// starting with # are ignored), receives published changesets, and serves
// the MDV query language to local applications.
//
// Usage:
//
//	lmr -addr :7272 -name lmr1 -mdp host:7171 -schema schema.rdf [-rules rules.mdv]
//	lmr -addr :7272 -name lmr1 -mdp primary:7171 -mdp replica:7172 -schema schema.rdf
//
// -mdp is repeatable: give the primary and its replicas and the LMR fails
// over between them — if the connected provider dies, the reconnect
// supervisor rotates to the next endpoint that answers. Replicas serve
// the full read path and proxy writes to the primary, so any endpoint is
// a full substitute.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"mdv/mdv"
)

type endpointList []string

func (e *endpointList) String() string { return strings.Join(*e, ",") }
func (e *endpointList) Set(v string) error {
	*e = append(*e, v)
	return nil
}

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7272", "listen address for clients")
		name       = flag.String("name", "lmr", "repository name (subscriber identity)")
		schemaPath = flag.String("schema", "", "path to the RDF schema file (required)")
		rulesPath  = flag.String("rules", "", "path to a subscription rules file (optional)")
		heartbeat  = flag.Duration("heartbeat", 5*time.Second, "heartbeat ping interval; a provider silent for 3x this is declared dead (0 disables)")
		ioTimeout  = flag.Duration("io-timeout", 10*time.Second, "per-message write deadline and default request timeout (0 disables)")
		sendQueue  = flag.Int("send-queue", 256, "bounded per-client send queue on the LMR's own server")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6061; also enables mutex/block profiling; empty disables)")
		metricsOn  = flag.String("metrics", "", "serve Prometheus /metrics on this address (e.g. localhost:6061; shares the pprof mux; empty disables)")
		mdps       endpointList
	)
	flag.Var(&mdps, "mdp", "metadata provider address (repeatable: primary first, then replicas for failover; at least one required)")
	flag.Parse()

	if len(mdps) == 0 || *schemaPath == "" {
		fmt.Fprintln(os.Stderr, "lmr: -mdp and -schema are required")
		flag.Usage()
		os.Exit(2)
	}
	if *pprofAddr != "" {
		// Match cmd/mdp: sample mutex contention and blocking so lock waits
		// in the delivery path are visible in the mutex/block profiles.
		runtime.SetMutexProfileFraction(100)
		runtime.SetBlockProfileRate(100_000)
		go func() {
			log.Printf("lmr: pprof listening on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("lmr: pprof: %v", err)
			}
		}()
	}
	f, err := os.Open(*schemaPath)
	if err != nil {
		log.Fatalf("lmr: open schema: %v", err)
	}
	schema, err := mdv.ParseSchema(f)
	f.Close()
	if err != nil {
		log.Fatalf("lmr: parse schema: %v", err)
	}

	cliCfg := mdv.ClientConfig{
		Heartbeat:    *heartbeat,
		IdleTimeout:  3 * *heartbeat,
		WriteTimeout: *ioTimeout,
		CallTimeout:  *ioTimeout,
	}

	// All provider endpoints go through one sticky rotating dialer; the
	// initial dial retries transient failures with jittered backoff so an
	// LMR started moments before its providers still comes up.
	dialer, err := mdv.NewMultiDialer(mdps, cliCfg)
	if err != nil {
		log.Fatalf("lmr: %v", err)
	}
	var prov *mdv.ProviderClient
	dialBackoff := &mdv.Backoff{}
	err = mdv.Retry(context.Background(), dialBackoff, 5, mdv.IsRetryable, func() error {
		var derr error
		prov, derr = dialer.Dial()
		return derr
	})
	if err != nil {
		log.Fatalf("lmr: dial provider: %v", err)
	}
	log.Printf("lmr: connected to provider (cluster epoch %d)", dialer.Epoch())
	node, err := mdv.NewRepositoryNode(*name, schema, prov)
	if err != nil {
		log.Fatalf("lmr: %v", err)
	}
	if *metricsOn != "" {
		reg := mdv.NewMetricsRegistry()
		node.EnableMetrics(reg)
		http.Handle("/metrics", reg.Handler())
		if *metricsOn == *pprofAddr {
			// The pprof listener already serves the default mux.
			log.Printf("lmr: metrics on http://%s/metrics (pprof mux)", *metricsOn)
		} else {
			go func() {
				log.Printf("lmr: metrics listening on http://%s/metrics", *metricsOn)
				if err := http.ListenAndServe(*metricsOn, nil); err != nil {
					log.Printf("lmr: metrics: %v", err)
				}
			}()
		}
	}

	if *rulesPath != "" {
		rf, err := os.Open(*rulesPath)
		if err != nil {
			log.Fatalf("lmr: open rules: %v", err)
		}
		sc := bufio.NewScanner(rf)
		n := 0
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			id, err := node.AddSubscription(line)
			if err != nil {
				log.Fatalf("lmr: subscribe %q: %v", line, err)
			}
			log.Printf("lmr: subscription %d: %s", id, line)
			n++
		}
		rf.Close()
		if err := sc.Err(); err != nil {
			log.Fatalf("lmr: read rules: %v", err)
		}
		log.Printf("lmr: %d subscriptions registered, cache holds %d resources",
			n, node.Repository().Len())
	}

	listenAddr, err := node.ServeConfig(*addr, mdv.WireConfig{
		HeartbeatInterval: *heartbeat,
		IdleTimeout:       3 * *heartbeat,
		WriteTimeout:      *ioTimeout,
		SendQueue:         *sendQueue,
	})
	if err != nil {
		log.Fatalf("lmr: serve: %v", err)
	}
	log.Printf("lmr %q listening on %s (providers %s)", *name, listenAddr, mdps.String())

	// Resume against a durable MDP: catch up on changesets published while
	// this LMR was down (no-op against a non-durable provider).
	if seq, err := node.Resume(); err != nil {
		log.Printf("lmr: resume: %v", err)
	} else if seq > 0 {
		log.Printf("lmr: resumed changeset stream (current to seq %d)", seq)
	}

	// Reconnect supervisor: when the provider connection drops, redial with
	// backoff, re-attach, and resume the stream from the last applied
	// sequence. A durable MDP replays the missed changesets; a restarted
	// non-durable one falls back to a full-state reset. The supervisor owns
	// the provider handle from here on and closes it on shutdown.
	stop := make(chan struct{})
	supDone := make(chan struct{})
	go func() {
		defer close(supDone)
		node.Supervise(stop, prov, mdv.SuperviseConfig{
			Dial: func() (mdv.ReconnectableProvider, error) {
				return dialer.Dial()
			},
			Retryable: mdv.IsRetryable,
			Logf:      log.Printf,
		})
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("lmr: shutting down")
	close(stop)
	node.Close()
	<-supDone
}
