module mdv

go 1.24
