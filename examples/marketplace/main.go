// Electronic-marketplace scenario (paper §1: "electronic marketplaces ...
// creating a growing demand for effective management of resources"). Web
// services register offers that strongly reference merchant records; two
// regional repositories subscribe to different market segments. The example
// walks through the trickier parts of cache maintenance: shared
// strong-reference closures, updates that move an offer between segments,
// closure-only updates, unsubscription, and the garbage collector.
package main

import (
	"fmt"
	"log"

	"mdv/mdv"
)

func marketSchema() *mdv.Schema {
	s := mdv.NewSchema()
	s.MustAddProperty("Offer", mdv.PropertyDef{Name: "category", Type: mdv.TypeString})
	s.MustAddProperty("Offer", mdv.PropertyDef{Name: "price", Type: mdv.TypeFloat})
	s.MustAddProperty("Offer", mdv.PropertyDef{Name: "title", Type: mdv.TypeString})
	s.MustAddProperty("Offer", mdv.PropertyDef{
		Name: "soldBy", Type: mdv.TypeResource, RefClass: "Merchant", RefKind: mdv.StrongRef})
	s.MustAddProperty("Merchant", mdv.PropertyDef{Name: "name", Type: mdv.TypeString})
	s.MustAddProperty("Merchant", mdv.PropertyDef{Name: "rating", Type: mdv.TypeFloat})
	// Related offers are weak: browsing hints, never transmitted.
	s.MustAddProperty("Offer", mdv.PropertyDef{
		Name: "related", Type: mdv.TypeResource, RefClass: "Offer",
		RefKind: mdv.WeakRef, SetValued: true})
	return s
}

func merchantDoc(id, name string, rating float64) *mdv.Document {
	doc := mdv.NewDocument("market/merchant-" + id + ".rdf")
	m := doc.NewResource(id, "Merchant")
	m.Add("name", mdv.Lit(name))
	m.Add("rating", mdv.Lit(fmt.Sprint(rating)))
	return doc
}

func offerDoc(id, category, title string, price float64, merchantRef string) *mdv.Document {
	doc := mdv.NewDocument("market/offer-" + id + ".rdf")
	o := doc.NewResource(id, "Offer")
	o.Add("category", mdv.Lit(category))
	o.Add("title", mdv.Lit(title))
	o.Add("price", mdv.Lit(fmt.Sprint(price)))
	o.Add("soldBy", mdv.Ref(merchantRef))
	return doc
}

func dumpCache(label string, repo *mdv.RepositoryNode) {
	offers, _ := repo.Resources("Offer")
	merchants, _ := repo.Resources("Merchant")
	fmt.Printf("%-22s offers=%d merchants=%d\n", label+":", len(offers), len(merchants))
}

func main() {
	schema := marketSchema()
	market, err := mdv.NewProvider("mdp-market", schema)
	if err != nil {
		log.Fatal(err)
	}

	books, err := mdv.NewRepositoryNode("lmr-books", schema, market)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := books.AddSubscription(
		`search Offer o register o where o.category = 'books'`); err != nil {
		log.Fatal(err)
	}
	bargains, err := mdv.NewRepositoryNode("lmr-bargains", schema, market)
	if err != nil {
		log.Fatal(err)
	}
	bargainSub, err := bargains.AddSubscription(
		`search Offer o register o where o.price < 10 and o.soldBy.rating >= 4`)
	if err != nil {
		log.Fatal(err)
	}

	// Merchants and offers appear on the marketplace.
	fmt.Println("== marketplace fills up ==")
	for _, doc := range []*mdv.Document{
		merchantDoc("acme", "ACME Trading", 4.5),
		merchantDoc("cheapo", "Cheapo Inc", 2.0),
		offerDoc("b1", "books", "Distributed Systems", 45.00, "market/merchant-acme.rdf#acme"),
		offerDoc("b2", "books", "Pocket RDF", 8.50, "market/merchant-acme.rdf#acme"),
		offerDoc("g1", "games", "Chess Set", 9.00, "market/merchant-acme.rdf#acme"),
		offerDoc("g2", "games", "Dice", 3.00, "market/merchant-cheapo.rdf#cheapo"), // low rating
	} {
		if err := market.RegisterDocument(doc); err != nil {
			log.Fatal(err)
		}
	}
	dumpCache("books repo", books)       // b1, b2 + acme closure
	dumpCache("bargains repo", bargains) // b2, g1 + acme closure

	// The shared closure: both repositories hold the ACME merchant record
	// because their offers strongly reference it.
	fmt.Println("\n== merchant record update (closure-only) ==")
	if err := market.RegisterDocument(merchantDoc("acme", "ACME Trading Ltd.", 4.8)); err != nil {
		log.Fatal(err)
	}
	for _, repo := range []*mdv.RepositoryNode{books, bargains} {
		m, _ := repo.Query(`search Merchant m register m where m.name contains 'Ltd'`)
		fmt.Printf("%s sees updated merchant: %v\n", repo.Name(), len(m) == 1)
	}

	// A price hike moves an offer out of the bargains segment but not out
	// of the books segment — the classic partial-removal case of §3.5.
	fmt.Println("\n== Pocket RDF price rises to 19.90 ==")
	if err := market.RegisterDocument(
		offerDoc("b2", "books", "Pocket RDF", 19.90, "market/merchant-acme.rdf#acme")); err != nil {
		log.Fatal(err)
	}
	dumpCache("books repo", books)       // still b1, b2
	dumpCache("bargains repo", bargains) // only g1 left

	// The merchant's rating collapses: the remaining bargain loses its
	// soldBy.rating >= 4 support through the *referenced* resource.
	fmt.Println("\n== ACME rating drops to 1.0 ==")
	if err := market.RegisterDocument(merchantDoc("acme", "ACME Trading Ltd.", 1.0)); err != nil {
		log.Fatal(err)
	}
	dumpCache("books repo", books)       // category rule unaffected
	dumpCache("bargains repo", bargains) // empty; closure GC'd too

	// An offer is withdrawn entirely.
	fmt.Println("\n== Distributed Systems withdrawn ==")
	if err := market.DeleteDocument("market/offer-b1.rdf"); err != nil {
		log.Fatal(err)
	}
	dumpCache("books repo", books)

	// The bargains repository changes its mind and unsubscribes; the
	// garbage collector clears whatever the subscription held.
	fmt.Println("\n== bargains repo unsubscribes ==")
	if err := bargains.RemoveSubscription(bargainSub); err != nil {
		log.Fatal(err)
	}
	dumpCache("bargains repo", bargains)

	st := books.Repository().Stats()
	fmt.Printf("\nbooks repo lifetime stats: %d upserts, %d removals, %d forced deletes, %d GC drops\n",
		st.UpsertsApplied, st.RemovalsApplied, st.ForcedDeletes, st.ResourcesDropped)
}
