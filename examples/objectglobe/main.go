// ObjectGlobe scenario: MDV serving its original client, the ObjectGlobe
// distributed query processor (paper §1). The open marketplace has three
// supplier kinds — data providers, function providers, and cycle providers.
// A query optimizer at some site keeps a local repository of candidate
// suppliers for its workloads and discovers execution sites with local
// metadata queries, while providers come, go, and change capacity.
package main

import (
	"fmt"
	"log"

	"mdv/mdv"
)

func objectGlobeSchema() *mdv.Schema {
	s := mdv.NewSchema()
	// Cycle providers execute query operators.
	s.MustAddProperty("CycleProvider", mdv.PropertyDef{Name: "serverHost", Type: mdv.TypeString})
	s.MustAddProperty("CycleProvider", mdv.PropertyDef{Name: "serverPort", Type: mdv.TypeInteger})
	s.MustAddProperty("CycleProvider", mdv.PropertyDef{
		Name: "serverInformation", Type: mdv.TypeResource,
		RefClass: "ServerInformation", RefKind: mdv.StrongRef})
	s.MustAddProperty("ServerInformation", mdv.PropertyDef{Name: "memory", Type: mdv.TypeInteger})
	s.MustAddProperty("ServerInformation", mdv.PropertyDef{Name: "cpu", Type: mdv.TypeInteger})
	// Function providers offer query operators.
	s.MustAddProperty("FunctionProvider", mdv.PropertyDef{Name: "operator", Type: mdv.TypeString, SetValued: true})
	s.MustAddProperty("FunctionProvider", mdv.PropertyDef{Name: "codeBase", Type: mdv.TypeString})
	s.MustAddProperty("FunctionProvider", mdv.PropertyDef{
		Name: "hostedBy", Type: mdv.TypeResource, RefClass: "CycleProvider", RefKind: mdv.WeakRef})
	// Data providers supply data.
	s.MustAddProperty("DataProvider", mdv.PropertyDef{Name: "theme", Type: mdv.TypeString, SetValued: true})
	s.MustAddProperty("DataProvider", mdv.PropertyDef{Name: "sizeMB", Type: mdv.TypeInteger})
	return s
}

func cycleProviderDoc(i, memMB, cpuMHz int, domain string) *mdv.Document {
	doc := mdv.NewDocument(fmt.Sprintf("og/cycle%d.rdf", i))
	host := doc.NewResource("host", "CycleProvider")
	host.Add("serverHost", mdv.Lit(fmt.Sprintf("exec%02d.%s", i, domain)))
	host.Add("serverPort", mdv.Lit("5874"))
	host.Add("serverInformation", mdv.Ref(doc.QualifyID("info")))
	info := doc.NewResource("info", "ServerInformation")
	info.Add("memory", mdv.Lit(fmt.Sprint(memMB)))
	info.Add("cpu", mdv.Lit(fmt.Sprint(cpuMHz)))
	return doc
}

func functionProviderDoc(i int, ops ...string) *mdv.Document {
	doc := mdv.NewDocument(fmt.Sprintf("og/func%d.rdf", i))
	fp := doc.NewResource("fp", "FunctionProvider")
	for _, op := range ops {
		fp.Add("operator", mdv.Lit(op))
	}
	fp.Add("codeBase", mdv.Lit(fmt.Sprintf("http://functions.example.org/%d.jar", i)))
	return doc
}

func dataProviderDoc(i, sizeMB int, themes ...string) *mdv.Document {
	doc := mdv.NewDocument(fmt.Sprintf("og/data%d.rdf", i))
	dp := doc.NewResource("dp", "DataProvider")
	for _, th := range themes {
		dp.Add("theme", mdv.Lit(th))
	}
	dp.Add("sizeMB", mdv.Lit(fmt.Sprint(sizeMB)))
	return doc
}

func main() {
	schema := objectGlobeSchema()
	backbone, err := mdv.NewProvider("mdp-backbone", schema)
	if err != nil {
		log.Fatal(err)
	}

	// The optimizer's site runs an LMR caching only the suppliers its
	// workloads can use: beefy cycle providers in its own domain, join
	// operators, and sports data.
	optimizer, err := mdv.NewRepositoryNode("lmr-optimizer", schema, backbone)
	if err != nil {
		log.Fatal(err)
	}
	for _, rule := range []string{
		`search CycleProvider c register c
		   where c.serverHost contains 'uni-passau.de'
		     and c.serverInformation.memory >= 256`,
		`search FunctionProvider f register f where f.operator? = 'join'`,
		`search DataProvider d register d where d.theme? = 'sports' and d.sizeMB >= 100`,
	} {
		if _, err := optimizer.AddSubscription(rule); err != nil {
			log.Fatal(err)
		}
	}

	// Suppliers register at the backbone over time.
	fmt.Println("== suppliers registering ==")
	for i, doc := range []*mdv.Document{
		cycleProviderDoc(1, 512, 800, "uni-passau.de"),
		cycleProviderDoc(2, 128, 600, "uni-passau.de"), // too little memory
		cycleProviderDoc(3, 1024, 900, "tum.de"),       // wrong domain
		functionProviderDoc(1, "join", "sort"),
		functionProviderDoc(2, "scan"),
		dataProviderDoc(1, 250, "sports", "news"),
		dataProviderDoc(2, 50, "sports"), // too small
	} {
		if err := backbone.RegisterDocument(doc); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("registered %s (cache now %d resources)\n", doc.URI, optimizer.Repository().Len())
		_ = i
	}

	// Discovery: plan a join over sports data — everything answered from
	// the local cache.
	fmt.Println("\n== optimizer discovery queries (local) ==")
	execSites, err := optimizer.Query(`
		search CycleProvider c register c where c.serverInformation.cpu >= 700`)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range execSites {
		h, _ := r.Get("serverHost")
		fmt.Printf("execution site: %s\n", h.String())
	}
	joinImpls, err := optimizer.Query(`
		search FunctionProvider f register f where f.operator? = 'join'`)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range joinImpls {
		cb, _ := r.Get("codeBase")
		fmt.Printf("join operator from: %s\n", cb.String())
	}
	data, err := optimizer.Query(`
		search DataProvider d register d where d.theme? = 'sports'`)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range data {
		sz, _ := r.Get("sizeMB")
		fmt.Printf("sports data source: %s (%s MB)\n", r.URIRef, sz.String())
	}

	// A provider upgrades its hardware: the update is pushed and the
	// repository sees the new capacity immediately.
	fmt.Println("\n== provider 2 upgrades to 512 MB ==")
	upgraded := cycleProviderDoc(2, 512, 600, "uni-passau.de")
	if err := backbone.RegisterDocument(upgraded); err != nil {
		log.Fatal(err)
	}
	sites, _ := optimizer.Query(`search CycleProvider c register c`)
	fmt.Printf("cached cycle providers after upgrade: %d\n", len(sites))

	// A provider leaves the marketplace.
	fmt.Println("\n== provider 1 retires ==")
	if err := backbone.DeleteDocument("og/cycle1.rdf"); err != nil {
		log.Fatal(err)
	}
	sites, _ = optimizer.Query(`search CycleProvider c register c`)
	fmt.Printf("cached cycle providers after retirement: %d\n", len(sites))

	// The optimizer also tracks private, site-local endpoints that must
	// never reach the public backbone.
	private := mdv.NewDocument("og/private.rdf")
	pr := private.NewResource("gpu", "CycleProvider")
	pr.Add("serverHost", mdv.Lit("gpu.lab.internal"))
	pr.Add("serverPort", mdv.Lit("9999"))
	if err := optimizer.RegisterLocalDocument(private); err != nil {
		log.Fatal(err)
	}
	local, _ := optimizer.Query(`search CycleProvider c register c where c.serverHost contains 'internal'`)
	public, _ := backbone.Browse("CycleProvider", "internal")
	fmt.Printf("\nprivate endpoints visible locally: %d, at the backbone: %d\n", len(local), len(public))
}
