// Quickstart: the smallest end-to-end MDV setup — one metadata provider,
// one local repository subscribing with a rule, one registered document,
// and a local query over the replicated cache.
package main

import (
	"fmt"
	"log"
	"strings"

	"mdv/mdv"
)

// The RDF document of the paper's Figure 1.
const figure1 = `<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#">
  <CycleProvider rdf:ID="host">
    <serverHost>pirates.uni-passau.de</serverHost>
    <serverPort>5874</serverPort>
    <serverInformation>
      <ServerInformation rdf:ID="info">
        <memory>92</memory>
        <cpu>600</cpu>
      </ServerInformation>
    </serverInformation>
  </CycleProvider>
</rdf:RDF>`

func main() {
	// 1. Define the schema (classes and typed properties; the reference
	//    from CycleProvider to ServerInformation is strong, so referenced
	//    resources travel with their referrer).
	schema := mdv.NewSchema()
	schema.MustAddProperty("CycleProvider", mdv.PropertyDef{Name: "serverHost", Type: mdv.TypeString})
	schema.MustAddProperty("CycleProvider", mdv.PropertyDef{Name: "serverPort", Type: mdv.TypeInteger})
	schema.MustAddProperty("CycleProvider", mdv.PropertyDef{
		Name: "serverInformation", Type: mdv.TypeResource,
		RefClass: "ServerInformation", RefKind: mdv.StrongRef})
	schema.MustAddProperty("ServerInformation", mdv.PropertyDef{Name: "memory", Type: mdv.TypeInteger})
	schema.MustAddProperty("ServerInformation", mdv.PropertyDef{Name: "cpu", Type: mdv.TypeInteger})

	// 2. Start a metadata provider (backbone node) and a local repository.
	provider, err := mdv.NewProvider("mdp-passau", schema)
	if err != nil {
		log.Fatal(err)
	}
	repo, err := mdv.NewRepositoryNode("lmr-lab", schema, provider)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Subscribe with the rule of the paper's Example 1: cycle providers
	//    in the uni-passau.de domain with more than 64 MB of memory.
	subID, err := repo.AddSubscription(`
		search CycleProvider c register c
		where c.serverHost contains 'uni-passau.de'
		  and c.serverInformation.memory > 64`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("subscribed (id %d)\n", subID)

	// 4. Register the Figure 1 document at the provider. The filter
	//    algorithm matches it against the subscription and pushes it (plus
	//    the strongly referenced ServerInformation) to the repository.
	doc, err := mdv.ParseDocument("doc.rdf", strings.NewReader(figure1))
	if err != nil {
		log.Fatal(err)
	}
	if err := provider.RegisterDocument(doc); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered %s; repository now caches %d resources\n",
		doc.URI, repo.Repository().Len())

	// 5. Query locally — no round trip to the provider.
	results, err := repo.Query(`
		search CycleProvider c register c where c.serverInformation.cpu >= 500`)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		host, _ := r.Get("serverHost")
		fmt.Printf("local query hit: %s (serverHost=%s)\n", r.URIRef, host.String())
	}

	// 6. Update the document: memory drops below the threshold, so the
	//    provider publishes a removal and the repository's garbage
	//    collector evicts the resource and its closure.
	updated := doc.Clone()
	info, _ := updated.Find("doc.rdf#info")
	info.Set("memory", mdv.Lit("32"))
	if err := provider.RegisterDocument(updated); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after update: repository caches %d resources\n", repo.Repository().Len())
}
