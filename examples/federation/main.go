// Federation: the full 3-tier architecture of paper Figure 2 over real TCP
// sockets. Two metadata providers form a replicating backbone; two local
// repositories in different "regions" connect to different providers; an
// administration client registers metadata at one provider; application
// clients query their nearest repository. Everything any application sees
// travelled: admin -> MDP1 -> (replication) -> MDP2 -> (publish) -> LMR ->
// (query) -> client.
package main

import (
	"fmt"
	"log"
	"time"

	"mdv/mdv"
)

func schema() *mdv.Schema {
	s := mdv.NewSchema()
	s.MustAddProperty("CycleProvider", mdv.PropertyDef{Name: "serverHost", Type: mdv.TypeString})
	s.MustAddProperty("CycleProvider", mdv.PropertyDef{Name: "region", Type: mdv.TypeString})
	s.MustAddProperty("CycleProvider", mdv.PropertyDef{
		Name: "serverInformation", Type: mdv.TypeResource,
		RefClass: "ServerInformation", RefKind: mdv.StrongRef})
	s.MustAddProperty("ServerInformation", mdv.PropertyDef{Name: "memory", Type: mdv.TypeInteger})
	return s
}

func doc(i int, region string, memory int) *mdv.Document {
	d := mdv.NewDocument(fmt.Sprintf("fed/provider%d.rdf", i))
	cp := d.NewResource("cp", "CycleProvider")
	cp.Add("serverHost", mdv.Lit(fmt.Sprintf("node%02d.%s.example.org", i, region)))
	cp.Add("region", mdv.Lit(region))
	cp.Add("serverInformation", mdv.Ref(d.QualifyID("si")))
	si := d.NewResource("si", "ServerInformation")
	si.Add("memory", mdv.Lit(fmt.Sprint(memory)))
	return d
}

func waitFor(cond func() bool) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func main() {
	sch := schema()

	// Backbone: two MDPs serving on ephemeral TCP ports, replicating to
	// each other over the wire.
	mdpEU, err := mdv.NewProvider("mdp-eu", sch)
	if err != nil {
		log.Fatal(err)
	}
	addrEU, err := mdpEU.Serve("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer mdpEU.Close()
	mdpUS, err := mdv.NewProvider("mdp-us", sch)
	if err != nil {
		log.Fatal(err)
	}
	addrUS, err := mdpUS.Serve("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer mdpUS.Close()

	peerUS, err := mdv.DialProvider(addrUS)
	if err != nil {
		log.Fatal(err)
	}
	defer peerUS.Close()
	mdpEU.AddPeer(peerUS)
	peerEU, err := mdv.DialProvider(addrEU)
	if err != nil {
		log.Fatal(err)
	}
	defer peerEU.Close()
	mdpUS.AddPeer(peerEU)
	fmt.Printf("backbone: mdp-eu@%s <-> mdp-us@%s\n", addrEU, addrUS)

	// Middle tier: each region's repository connects to its provider over
	// the wire and subscribes to its region's metadata.
	connEU, err := mdv.DialProvider(addrEU)
	if err != nil {
		log.Fatal(err)
	}
	defer connEU.Close()
	lmrEU, err := mdv.NewRepositoryNode("lmr-eu", sch, connEU)
	if err != nil {
		log.Fatal(err)
	}
	lmrEUAddr, err := lmrEU.Serve("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer lmrEU.Close()

	connUS, err := mdv.DialProvider(addrUS)
	if err != nil {
		log.Fatal(err)
	}
	defer connUS.Close()
	lmrUS, err := mdv.NewRepositoryNode("lmr-us", sch, connUS)
	if err != nil {
		log.Fatal(err)
	}
	lmrUSAddr, err := lmrUS.Serve("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer lmrUS.Close()

	if _, err := lmrEU.AddSubscription(
		`search CycleProvider c register c where c.region = 'eu'`); err != nil {
		log.Fatal(err)
	}
	if _, err := lmrUS.AddSubscription(
		`search CycleProvider c register c where c.region = 'us'`); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repositories: lmr-eu@%s (at mdp-eu), lmr-us@%s (at mdp-us)\n", lmrEUAddr, lmrUSAddr)

	// Administration: one client registers all metadata at mdp-eu only.
	admin, err := mdv.DialProvider(addrEU)
	if err != nil {
		log.Fatal(err)
	}
	defer admin.Close()
	for i := 1; i <= 6; i++ {
		region := "eu"
		if i%2 == 0 {
			region = "us"
		}
		if err := admin.RegisterDocument(doc(i, region, 128*i)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("admin registered 6 documents at mdp-eu")

	// The us documents reach lmr-us through backbone replication.
	waitFor(func() bool { return lmrUS.Repository().Len() >= 6 }) // 3 cp + 3 si
	waitFor(func() bool { return lmrEU.Repository().Len() >= 6 })

	// Application clients query their regional repository over the wire.
	for _, tier := range []struct{ name, addr, q string }{
		{"app-eu", lmrEUAddr, `search CycleProvider c register c where c.serverInformation.memory >= 256`},
		{"app-us", lmrUSAddr, `search CycleProvider c register c where c.serverInformation.memory >= 256`},
	} {
		app, err := mdv.DialRepository(tier.addr)
		if err != nil {
			log.Fatal(err)
		}
		rs, err := app.Query(tier.q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s query hits:\n", tier.name)
		for _, r := range rs {
			h, _ := r.Get("serverHost")
			fmt.Printf("  %s\n", h.String())
		}
		app.Close()
	}

	// A document registered at the OTHER provider still reaches every
	// region (full backbone replication).
	fmt.Println("late registration at mdp-us:")
	admin2, err := mdv.DialProvider(addrUS)
	if err != nil {
		log.Fatal(err)
	}
	defer admin2.Close()
	if err := admin2.RegisterDocument(doc(7, "eu", 1024)); err != nil {
		log.Fatal(err)
	}
	waitFor(func() bool { return lmrEU.Repository().Has("fed/provider7.rdf#cp") })
	rs, err := lmrEU.Query(`search CycleProvider c register c where c.serverInformation.memory = 1024`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  visible at lmr-eu: %v\n", len(rs) == 1)
}
