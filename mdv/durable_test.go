package mdv_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"mdv/mdv"
)

func durableSchema(t *testing.T) *mdv.Schema {
	t.Helper()
	schema, err := mdv.ParseSchema(strings.NewReader(schemaXML))
	if err != nil {
		t.Fatal(err)
	}
	return schema
}

func hostDoc(i int) *mdv.Document {
	doc := mdv.NewDocument(fmt.Sprintf("host%d.rdf", i))
	doc.NewResource("cp", "CycleProvider").
		Add("serverHost", mdv.Lit(fmt.Sprintf("node%d.uni-passau.de", i)))
	return doc
}

// fingerprint summarizes a repository's cached resources for differential
// comparison: URI, class, and sorted property dump of every resource.
func fingerprint(t *testing.T, node *mdv.RepositoryNode) string {
	t.Helper()
	rs, err := node.Resources("")
	if err != nil {
		t.Fatal(err)
	}
	lines := make([]string, 0, len(rs))
	for _, r := range rs {
		props := make([]string, 0, len(r.Props))
		for _, p := range r.Props {
			props = append(props, p.Name+"="+p.Value.String())
		}
		sort.Strings(props)
		lines = append(lines, r.URIRef+"|"+r.Class+"|"+strings.Join(props, ","))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

const hostRule = `search CycleProvider c register c where c.serverHost contains 'uni-passau.de'`

// TestDurableResumeOverTCP is the differential acceptance test: an LMR
// that loses its provider connection mid-stream and reconnects with resume
// must converge to exactly the cache of an LMR that never disconnected.
func TestDurableResumeOverTCP(t *testing.T) {
	schema := durableSchema(t)
	prov, err := mdv.OpenDurableProvider("mdp", schema, t.TempDir(), mdv.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer prov.Close()
	addr, err := prov.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	newNode := func(name string) (*mdv.RepositoryNode, *mdv.ProviderClient) {
		t.Helper()
		pc, err := mdv.DialProvider(addr)
		if err != nil {
			t.Fatal(err)
		}
		node, err := mdv.NewRepositoryNode(name, schema, pc)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := node.AddSubscription(hostRule); err != nil {
			t.Fatal(err)
		}
		return node, pc
	}
	steady, _ := newNode("steady")
	flaky, flakyConn := newNode("flaky")

	for i := 0; i < 4; i++ {
		if err := prov.RegisterDocument(hostDoc(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "initial batch at both nodes", func() bool {
		return steady.Repository().Len() == 4 && flaky.Repository().Len() == 4
	})

	// The flaky LMR loses its connection; publishing continues without it.
	flakyConn.Close()
	for i := 4; i < 8; i++ {
		if err := prov.RegisterDocument(hostDoc(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := prov.DeleteDocument("host1.rdf"); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "steady node caught up", func() bool {
		return steady.Repository().Len() == 7
	})
	if flaky.Repository().Len() != 4 {
		t.Fatalf("flaky cache = %d resources while disconnected, want the stale 4", flaky.Repository().Len())
	}

	// Reconnect with a fresh connection: the durable provider replays the
	// missed changesets past the node's cursor.
	pc2, err := mdv.DialProvider(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer pc2.Close()
	if err := flaky.Reconnect(pc2); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "flaky node converged", func() bool {
		return flaky.Repository().Len() == steady.Repository().Len()
	})
	if got, want := fingerprint(t, flaky), fingerprint(t, steady); got != want {
		t.Errorf("diverged after resume:\nflaky:\n%s\nsteady:\n%s", got, want)
	}
	if flaky.Repository().Stats().Resets != 0 {
		t.Errorf("gap-free resume used %d resets, want replay only", flaky.Repository().Stats().Resets)
	}

	// Later publishes reach the reconnected node through the new channel.
	if err := prov.RegisterDocument(hostDoc(100)); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "post-reconnect publish", func() bool {
		return flaky.Repository().Has("host100.rdf#cp")
	})
}

// TestDurableProviderRestartOverTCP is the crash acceptance test: every
// operation the provider acknowledged before being abandoned (no shutdown,
// no snapshot — the kill -9 model) survives into a recovered provider, and
// a reconnecting LMR converges on the recovered state.
func TestDurableProviderRestartOverTCP(t *testing.T) {
	schema := durableSchema(t)
	dir := t.TempDir()
	prov, err := mdv.OpenDurableProvider("mdp", schema, dir, mdv.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := prov.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pc, err := mdv.DialProvider(addr)
	if err != nil {
		t.Fatal(err)
	}
	node, err := mdv.NewRepositoryNode("lmr", schema, pc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.AddSubscription(hostRule); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := prov.RegisterDocument(hostDoc(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "pre-crash publishes", func() bool {
		return node.Repository().Len() == 6
	})

	// Crash: tear down the provider with no snapshot (no Compact), so
	// recovery must come from the changelog alone. Close only frees the
	// server and file handles; every acknowledged operation was fsynced
	// before its call returned (TestDurableCrashRecovery in
	// internal/provider covers the Close-free kill -9 variant).
	prov.Close()

	prov2, stats, err := mdv.OpenDurableProviderWithStats("mdp", schema, dir, mdv.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer prov2.Close()
	if stats.Replayed == 0 {
		t.Fatalf("recovery stats = %+v, want replayed operations", stats)
	}
	uris, err := prov2.Engine().DocumentURIs()
	if err != nil {
		t.Fatal(err)
	}
	if len(uris) != 6 {
		t.Fatalf("recovered provider has %d documents, want 6 (zero acknowledged-op loss)", len(uris))
	}
	subs, err := prov2.Engine().Subscriptions()
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 1 || subs[0].Subscriber != "lmr" {
		t.Fatalf("recovered subscriptions = %+v", subs)
	}

	addr2, err := prov2.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pc2, err := mdv.DialProvider(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer pc2.Close()
	if err := node.Reconnect(pc2); err != nil {
		t.Fatal(err)
	}
	if err := prov2.RegisterDocument(hostDoc(50)); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "reconnected node converged on recovered provider", func() bool {
		return node.Repository().Len() == 7 && node.Repository().Has("host50.rdf#cp")
	})
}
