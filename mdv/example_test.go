package mdv_test

import (
	"fmt"

	"mdv/mdv"
)

// Example demonstrates the core publish & subscribe loop: subscribe with a
// rule, register a document, query the replicated cache locally.
func Example() {
	schema := mdv.NewSchema()
	schema.MustAddProperty("CycleProvider", mdv.PropertyDef{Name: "serverHost", Type: mdv.TypeString})
	schema.MustAddProperty("CycleProvider", mdv.PropertyDef{Name: "serverPort", Type: mdv.TypeInteger})

	provider, _ := mdv.NewProvider("mdp", schema)
	repo, _ := mdv.NewRepositoryNode("lmr", schema, provider)
	repo.AddSubscription(`search CycleProvider c register c where c.serverHost contains 'uni-passau.de'`)

	doc := mdv.NewDocument("doc.rdf")
	cp := doc.NewResource("host", "CycleProvider")
	cp.Add("serverHost", mdv.Lit("pirates.uni-passau.de"))
	cp.Add("serverPort", mdv.Lit("5874"))
	provider.RegisterDocument(doc)

	results, _ := repo.Query(`search CycleProvider c register c where c.serverPort = 5874`)
	for _, r := range results {
		host, _ := r.Get("serverHost")
		fmt.Println(r.URIRef, host.String())
	}
	// Output: doc.rdf#host pirates.uni-passau.de
}

// ExampleNewBatcher shows periodic batch registration: documents queue and
// flush through the filter together.
func ExampleNewBatcher() {
	schema := mdv.NewSchema()
	schema.MustAddProperty("Service", mdv.PropertyDef{Name: "kind", Type: mdv.TypeString})

	provider, _ := mdv.NewProvider("mdp", schema)
	batcher := mdv.NewBatcher(provider, 3, 0) // flush every 3 documents

	for i := 1; i <= 3; i++ {
		doc := mdv.NewDocument(fmt.Sprintf("svc%d.rdf", i))
		doc.NewResource("s", "Service").Add("kind", mdv.Lit("cache"))
		batcher.Register(doc)
	}
	batcher.Close()
	rs, _ := provider.Browse("Service", "")
	fmt.Println(len(rs), "services registered")
	// Output: 3 services registered
}
