// Package mdv is the public API of the MDV distributed metadata management
// system, a reproduction of Keidl, Kreutz, Kemper, Kossmann: "A Publish &
// Subscribe Architecture for Distributed Metadata Management" (ICDE 2002).
//
// MDV has a 3-tier architecture:
//
//   - Providers (MDPs) form the backbone: they store global RDF metadata,
//     replicate registrations among each other, and run the paper's
//     publish & subscribe filter algorithm on every registration, update,
//     and deletion.
//   - Repositories (LMRs) are middle-tier caches close to applications.
//     They subscribe with rules written in the MDV rule language; the
//     provider pushes exactly the matching resources (plus their
//     strong-reference closures) and keeps them up to date.
//   - Clients query a repository with the MDV query language; queries are
//     evaluated purely on the local cache.
//
// # Quick start
//
//	schema := mdv.NewSchema()
//	schema.MustAddProperty("CycleProvider", mdv.PropertyDef{Name: "serverHost", Type: mdv.TypeString})
//
//	mdp, _ := mdv.NewProvider("mdp1", schema)
//	node, _ := mdv.NewRepositoryNode("lmr1", schema, mdp)
//	node.AddSubscription(`search CycleProvider c register c where c.serverHost contains 'uni-passau.de'`)
//
//	doc, _ := mdv.ParseDocument("doc.rdf", xmlReader)
//	mdp.RegisterDocument(doc) // pushed to the repository automatically
//
//	results, _ := node.Query(`search CycleProvider c register c`)
//
// The same components run over TCP: Provider.Serve / RepositoryNode.Serve
// start servers, and DialProvider / DialRepository return network clients.
// A network provider client satisfies the same interface the repository
// node needs, so the wiring is identical in-process and across machines.
package mdv

import (
	"io"
	"time"

	"mdv/internal/backoff"
	"mdv/internal/changelog"
	"mdv/internal/client"
	"mdv/internal/core"
	"mdv/internal/lmr"
	"mdv/internal/metrics"
	"mdv/internal/provider"
	"mdv/internal/rdf"
	"mdv/internal/replica"
	"mdv/internal/wire"
)

// Re-exported metadata model types.
type (
	// Document is an RDF document: a URI plus resources.
	Document = rdf.Document
	// Resource is one RDF resource with its class and properties.
	Resource = rdf.Resource
	// Property is one (name, value) pair of a resource.
	Property = rdf.Property
	// Value is a property value: literal or resource reference.
	Value = rdf.Value
	// Schema declares the classes metadata must conform to.
	Schema = rdf.Schema
	// PropertyDef declares one property of a schema class.
	PropertyDef = rdf.PropertyDef
	// Statement is one decomposed metadata atom (an RDF triple with class).
	Statement = rdf.Statement
)

// Property value and reference kinds.
const (
	TypeString   = rdf.TypeString
	TypeInteger  = rdf.TypeInteger
	TypeFloat    = rdf.TypeFloat
	TypeBoolean  = rdf.TypeBoolean
	TypeResource = rdf.TypeResource

	StrongRef = rdf.StrongRef
	WeakRef   = rdf.WeakRef
)

// Lit makes a literal property value.
func Lit(s string) Value { return rdf.Lit(s) }

// Ref makes a resource-reference property value.
func Ref(uriRef string) Value { return rdf.Ref(uriRef) }

// NewSchema creates an empty schema.
func NewSchema() *Schema { return rdf.NewSchema() }

// NewDocument creates an empty RDF document with the given URI.
func NewDocument(uri string) *Document { return rdf.NewDocument(uri) }

// ParseDocument parses an RDF/XML document.
func ParseDocument(uri string, r io.Reader) (*Document, error) {
	return rdf.ParseDocument(uri, r)
}

// ParseDocumentString parses an RDF/XML document from a string.
func ParseDocumentString(uri, src string) (*Document, error) {
	return rdf.ParseDocumentString(uri, src)
}

// WriteDocument serializes a document as RDF/XML.
func WriteDocument(w io.Writer, doc *Document) error { return rdf.WriteDocument(w, doc) }

// ParseSchema reads a schema from its RDF Schema serialization.
func ParseSchema(r io.Reader) (*Schema, error) { return rdf.ParseSchema(r) }

// Publish & subscribe types.
type (
	// Changeset is what a provider publishes to one subscriber.
	Changeset = core.Changeset
	// Upsert is a delivered resource with its subscription credits and
	// strong-reference closure.
	Upsert = core.Upsert
	// Removal revokes one subscription's credit on a resource.
	Removal = core.Removal
	// EngineStats counts filter work (for experiments).
	EngineStats = core.Stats
	// EngineOptions tunes the filter engine (ablation switches).
	EngineOptions = core.Options
)

// Provider is a Metadata Provider (MDP): a backbone node running the
// publish & subscribe filter.
type Provider = provider.Provider

// NewProvider creates an MDP with a fresh metadata store.
func NewProvider(name string, schema *Schema) (*Provider, error) {
	return provider.New(name, schema)
}

// NewProviderWithOptions creates an MDP with explicit engine options.
func NewProviderWithOptions(name string, schema *Schema, opts EngineOptions) (*Provider, error) {
	return provider.NewWithOptions(name, schema, opts)
}

// Engine is the publish & subscribe filter engine of a provider (exposed
// for snapshots and experiments).
type Engine = core.Engine

// LoadEngine restores a filter engine from a snapshot written by
// Provider.SaveSnapshot.
func LoadEngine(r io.Reader, schema *Schema) (*Engine, error) {
	return core.Load(r, schema)
}

// LoadEngineWithOptions is LoadEngine with explicit engine options
// (snapshots carry no shard or ablation configuration; the loaded engine
// rebuilds derived state such as its shard map from the canonical tables).
func LoadEngineWithOptions(r io.Reader, schema *Schema, opts EngineOptions) (*Engine, error) {
	return core.LoadWithOptions(r, schema, opts)
}

// NewProviderFromEngine wraps a restored engine as a provider.
func NewProviderFromEngine(name string, engine *Engine) *Provider {
	return provider.NewFromEngine(name, engine)
}

// Durable provider mode: a write-ahead changelog makes every acknowledged
// operation crash-safe and lets reconnecting repositories resume the
// changeset stream (see internal/provider durable mode).
type (
	// DurableOptions tune a durable provider's changelog.
	DurableOptions = provider.DurableOptions
	// RecoveryStats report what OpenDurableProvider replayed at startup.
	RecoveryStats = provider.RecoveryStats
	// SyncPolicy selects when the changelog fsyncs.
	SyncPolicy = changelog.SyncPolicy
)

// Changelog durability policies.
const (
	// SyncGroup batches concurrent operations into shared fsyncs (default).
	SyncGroup = changelog.SyncGroup
	// SyncAlways fsyncs every append before acknowledging it.
	SyncAlways = changelog.SyncAlways
	// SyncNone never fsyncs explicitly (crash durability up to the OS).
	SyncNone = changelog.SyncNone
)

// ErrNotDurable is returned by durable-only operations (e.g. Compact) on a
// provider without a changelog.
var ErrNotDurable = provider.ErrNotDurable

// OpenDurableProvider opens (or creates) a durable MDP rooted at dir. It
// loads the latest snapshot, replays the changelog tail past it, and
// returns a provider whose every acknowledged operation survives kill -9.
func OpenDurableProvider(name string, schema *Schema, dir string, opts DurableOptions) (*Provider, error) {
	return provider.OpenDurable(name, schema, dir, opts)
}

// OpenDurableProviderWithStats is OpenDurableProvider, also reporting how
// much recovery work startup performed.
func OpenDurableProviderWithStats(name string, schema *Schema, dir string, opts DurableOptions) (*Provider, *RecoveryStats, error) {
	return provider.OpenDurableWithStats(name, schema, dir, opts)
}

// Replication (DESIGN.md §10): a primary MDP streams its changelog to
// follower MDPs, which serve the full read path (subscriptions, queries,
// browsing) and proxy writes back to the primary. LMRs given several
// endpoints fail over between them.
type (
	// Follower runs the replica side of MDP replication: it streams the
	// primary's changelog into a provider opened with
	// DurableOptions.Replica, bootstrapping from a shipped snapshot when
	// its local log copy has fallen behind the primary's retention.
	Follower = replica.Follower
	// FollowerOptions tune a follower: primary address, announced name,
	// ack cadence, reconnect backoff.
	FollowerOptions = replica.Options
	// FollowerDelivery is one follower's stream health as the primary
	// reports it (DeliveryStats.Followers).
	FollowerDelivery = wire.FollowerDelivery
	// MultiDialer dials an MDP from a list of endpoints (primary +
	// replicas), sticking with the last healthy one and rotating on
	// failure; plug its Dial into SuperviseConfig for LMR failover.
	MultiDialer = client.MultiDialer
)

// StartFollower begins replicating prov (opened with
// DurableOptions.Replica) from the primary.
func StartFollower(prov *Provider, opts FollowerOptions) (*Follower, error) {
	return replica.Start(prov, opts)
}

// NewMultiDialer builds a provider dialer over several endpoints.
func NewMultiDialer(addrs []string, cfg ClientConfig) (*MultiDialer, error) {
	return client.NewMultiDialer(addrs, cfg)
}

// ErrNotPrimary is returned for writes against a replica that has no live
// primary connection to proxy them to.
var ErrNotPrimary = provider.ErrNotPrimary

// Epoch-fenced failover (DESIGN.md §11): promotions bump a durable
// replication term; stale-term traffic is fenced, a resurrected old
// primary self-demotes and repairs its divergent tail, and writes against
// a primary-less cluster degrade to a typed retryable error.
type (
	// TopologyView is one node's view of the cluster: its role and epoch,
	// the primary it knows, and (on a primary) per-follower stream lag.
	TopologyView = wire.TopologyResponse
	// NoPrimaryError is the typed, retryable error writes return while the
	// cluster has no reachable primary; it carries the last-known topology
	// so the caller knows where to look next. errors.Is(err, ErrNotPrimary)
	// still matches it.
	NoPrimaryError = provider.NoPrimaryError
	// FencedWriteError rejects a request stamped with a replication term
	// the receiving node is no longer serving.
	FencedWriteError = provider.FencedWriteError
)

// IsNoPrimary reports whether err (local or remote) means the cluster had
// no reachable primary — retry after the failover completes.
func IsNoPrimary(err error) bool { return provider.IsNoPrimary(err) }

// IsFenced reports whether err (local or remote) is an epoch-fence
// rejection: the write was stamped with a dead term and must not be
// retried against the same history.
func IsFenced(err error) bool { return provider.IsFenced(err) }

// ProbeForPrimary probes each endpoint and returns the address and
// topology of the highest-epoch node currently serving as primary ("" and
// nil when none answers as one).
func ProbeForPrimary(addrs []string, cfg ClientConfig) (string, *TopologyView) {
	return replica.ProbeForPrimary(addrs, cfg)
}

// Batcher queues registrations and flushes them through the filter in
// batches (size- or delay-triggered), the deployment policy the paper's
// batch-size experiments inform.
type Batcher = provider.Batcher

// NewBatcher creates a batching registrar in front of a provider.
func NewBatcher(p *Provider, maxBatch int, maxDelay time.Duration) *Batcher {
	return provider.NewBatcher(p, maxBatch, maxDelay)
}

// RepositoryNode is a Local Metadata Repository (LMR): the middle-tier
// cache with local query processing.
type RepositoryNode = lmr.Node

// ProviderAPI is the provider interface a repository node needs; both
// *Provider and *ProviderClient satisfy it.
type ProviderAPI = lmr.ProviderAPI

// NewRepositoryNode creates an LMR connected to the given provider (either
// an in-process *Provider or a *ProviderClient).
func NewRepositoryNode(name string, schema *Schema, prov ProviderAPI) (*RepositoryNode, error) {
	return lmr.New(name, schema, prov)
}

// ReconnectableProvider is the provider handle RepositoryNode.Supervise
// manages; *ProviderClient implements it.
type ReconnectableProvider = lmr.ReconnectableProvider

// SuperviseConfig configures RepositoryNode.Supervise, the reconnect loop
// that redials a lost provider connection with jittered backoff and
// resumes the changeset stream.
type SuperviseConfig = lmr.SuperviseConfig

// ProviderClient is a network client to a remote MDP.
type ProviderClient = client.MDP

// DialProvider connects to a provider's wire server.
func DialProvider(addr string) (*ProviderClient, error) { return client.DialMDP(addr) }

// RepositoryClient is a network client to a remote LMR.
type RepositoryClient = client.LMR

// DialRepository connects to a repository node's wire server.
func DialRepository(addr string) (*RepositoryClient, error) { return client.DialLMR(addr) }

// Fault-tolerant delivery (DESIGN.md §7): heartbeats, I/O deadlines,
// bounded per-subscriber send queues, and retry classification.
type (
	// WireConfig tunes a wire server's fault tolerance: heartbeat
	// interval, idle and write deadlines, and the per-connection send
	// queue bound. The zero value uses the package defaults
	// (Provider.ServeConfig / RepositoryNode.ServeConfig accept it).
	WireConfig = wire.Config
	// ClientConfig tunes a network client's fault tolerance: heartbeat
	// interval, idle and write deadlines, and a default per-call timeout.
	ClientConfig = client.Config
	// DeliveryStats reports per-subscriber delivery health from an MDP
	// (ProviderClient.DeliveryStats, or the provider's DeliveryStats).
	DeliveryStats = wire.DeliveryStatsResponse
	// SubscriberDelivery is one subscriber's delivery counters: queue
	// depth, drops, disconnects, heartbeat RTT, and publish lag.
	SubscriberDelivery = wire.SubscriberDelivery
	// Backoff computes jittered exponential retry delays; its zero value
	// is ready to use. Both the LMR reconnect loop and Retry use it.
	Backoff = backoff.Backoff
)

// DialProviderWithConfig connects to a provider's wire server with
// explicit fault-tolerance settings.
func DialProviderWithConfig(addr string, cfg ClientConfig) (*ProviderClient, error) {
	return client.DialMDPConfig(addr, cfg)
}

// DialRepositoryWithConfig connects to a repository node's wire server
// with explicit fault-tolerance settings.
func DialRepositoryWithConfig(addr string, cfg ClientConfig) (*RepositoryClient, error) {
	return client.DialLMRConfig(addr, cfg)
}

// Observability (DESIGN.md §9): a dependency-free metrics registry with
// Prometheus text exposition. Provider.EnableMetrics and
// RepositoryNode.EnableMetrics attach a node and everything below it;
// Registry.Handler serves /metrics; ProviderClient.Metrics and
// RepositoryClient.Metrics fetch the rendered text over the wire.
type MetricsRegistry = metrics.Registry

// NewMetricsRegistry creates an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// IsRetryable reports whether err is a transient transport failure worth
// retrying on a fresh connection, as opposed to an application error
// reported by the remote handler (which a retry would only repeat).
func IsRetryable(err error) bool { return client.IsRetryable(err) }

// Retry runs fn until it succeeds, fails with a non-retryable error, the
// attempt budget is exhausted (0 = unlimited), or ctx is done, sleeping a
// jittered backoff between attempts.
var Retry = backoff.Retry
