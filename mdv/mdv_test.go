package mdv_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"mdv/mdv"
)

const schemaXML = `<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#">
  <Class rdf:ID="CycleProvider"/>
  <Class rdf:ID="ServerInformation"/>
  <Property rdf:ID="p1">
    <name>serverHost</name>
    <domain rdf:resource="#CycleProvider"/>
    <range rdf:resource="http://www.w3.org/2000/01/rdf-schema#Literal"/>
  </Property>
  <Property rdf:ID="p2">
    <name>serverInformation</name>
    <domain rdf:resource="#CycleProvider"/>
    <range rdf:resource="#ServerInformation"/>
    <referenceType>strong</referenceType>
  </Property>
  <Property rdf:ID="p3">
    <name>memory</name>
    <domain rdf:resource="#ServerInformation"/>
    <range rdf:resource="http://www.w3.org/2000/01/rdf-schema#Literal"/>
    <literalType>integer</literalType>
  </Property>
</rdf:RDF>`

const docXML = `<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#">
  <CycleProvider rdf:ID="host">
    <serverHost>pirates.uni-passau.de</serverHost>
    <serverInformation>
      <ServerInformation rdf:ID="info"><memory>92</memory></ServerInformation>
    </serverInformation>
  </CycleProvider>
</rdf:RDF>`

// TestPublicAPIEndToEnd drives the whole system through the public facade
// only: schema from RDFS XML, provider, repository, subscription, document
// registration, local query, snapshot, restore.
func TestPublicAPIEndToEnd(t *testing.T) {
	schema, err := mdv.ParseSchema(strings.NewReader(schemaXML))
	if err != nil {
		t.Fatal(err)
	}
	prov, err := mdv.NewProvider("mdp", schema)
	if err != nil {
		t.Fatal(err)
	}
	node, err := mdv.NewRepositoryNode("lmr", schema, prov)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.AddSubscription(
		`search CycleProvider c register c where c.serverInformation.memory > 64`); err != nil {
		t.Fatal(err)
	}
	doc, err := mdv.ParseDocumentString("doc.rdf", docXML)
	if err != nil {
		t.Fatal(err)
	}
	if err := prov.RegisterDocument(doc); err != nil {
		t.Fatal(err)
	}
	rs, err := node.Query(`search CycleProvider c register c`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].URIRef != "doc.rdf#host" {
		t.Fatalf("query = %v", rs)
	}

	// Snapshot the provider and restore into a fresh one; a new repository
	// subscribing there receives the same state.
	var buf bytes.Buffer
	if err := prov.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	engine, err := mdv.LoadEngine(&buf, schema)
	if err != nil {
		t.Fatal(err)
	}
	prov2 := mdv.NewProviderFromEngine("mdp2", engine)
	node2, err := mdv.NewRepositoryNode("lmr2", schema, prov2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node2.AddSubscription(`search CycleProvider c register c`); err != nil {
		t.Fatal(err)
	}
	if !node2.Repository().Has("doc.rdf#host") {
		t.Error("restored provider lost metadata")
	}
}

// TestPublicAPIWire drives the networked path through the facade.
func TestPublicAPIWire(t *testing.T) {
	schema, err := mdv.ParseSchema(strings.NewReader(schemaXML))
	if err != nil {
		t.Fatal(err)
	}
	prov, err := mdv.NewProvider("mdp", schema)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := prov.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer prov.Close()

	conn, err := mdv.DialProvider(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	node, err := mdv.NewRepositoryNode("lmr", schema, conn)
	if err != nil {
		t.Fatal(err)
	}
	lmrAddr, err := node.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	if _, err := node.AddSubscription(`search CycleProvider c register c`); err != nil {
		t.Fatal(err)
	}
	admin, err := mdv.DialProvider(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	doc, _ := mdv.ParseDocumentString("doc.rdf", docXML)
	if err := admin.RegisterDocument(doc); err != nil {
		t.Fatal(err)
	}

	app, err := mdv.DialRepository(lmrAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		rs, err := app.Query(`search CycleProvider c register c`)
		if err != nil {
			t.Fatal(err)
		}
		if len(rs) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("resource never arrived: %v", rs)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
