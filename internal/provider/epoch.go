// Epoch-fenced failover: every durable provider serves one replication
// term (epoch) at a time. A promotion bumps the term and appends it to the
// changelog as the first record of the new reign, so the term change is
// durable, replicates verbatim, and totally orders against the writes it
// fences. Every replication message and every epoch-stamped write carries
// its sender's term; a node that sees proof of a higher term than its own
// steps down (if primary) or re-points (if replica), and traffic stamped
// with a lower term is rejected — the fence that keeps a resurrected stale
// primary from ever acknowledging a write.
//
// There is no election quorum: promotion is an operator action (mdvctl
// promote) or an opt-in deadman timer (see internal/replica). The fence
// therefore guards the resurrection case — a primary that DIED and came
// back after a promotion can never ack a write at its stale term — not the
// live-partition case, which asynchronous replication without leases
// cannot close (see DESIGN.md §11).
package provider

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"mdv/internal/wire"
)

// Epoch returns the replication term this provider is serving. Durable
// providers are born at epoch 1; promotions and observed higher terms
// raise it, nothing ever lowers it.
func (p *Provider) Epoch() uint64 { return p.epoch.Load() }

// FencedWrites returns how many requests the epoch fence has rejected.
func (p *Provider) FencedWrites() uint64 { return p.fencedWrites.Load() }

// Promotions returns how many times this node has been promoted to primary.
func (p *Provider) Promotions() uint64 { return p.promotions.Load() }

// ResyncPending reports whether this node demoted itself with a possibly
// divergent log tail and has not yet repaired it: its next bootstrap must
// force a snapshot regardless of how current the tail looks.
func (p *Provider) ResyncPending() bool { return p.resyncPending.Load() }

// bumpEpoch raises the epoch to e if it is higher, and reports whether it
// did. The epoch is monotone: concurrent bumps settle on the maximum.
func (p *Provider) bumpEpoch(e uint64) bool {
	for {
		cur := p.epoch.Load()
		if e <= cur {
			return false
		}
		if p.epoch.CompareAndSwap(cur, e) {
			return true
		}
	}
}

// SetReplicationStopper installs the function Promote uses to halt this
// node's replication session (the follower subsystem registers its halt).
// The stopper must not wait for in-flight applies to finish — Promote may
// be invoked from within the session itself.
func (p *Provider) SetReplicationStopper(stop func()) {
	p.mu.Lock()
	p.stopReplication = stop
	p.mu.Unlock()
}

// SetTopologyHint records the last-known primary address and the candidate
// endpoints (the follower subsystem keeps it current). The hint rides on
// NoPrimaryError so a degraded client learns where to look next, and on
// topology responses.
func (p *Provider) SetTopologyHint(primary string, peers []string) {
	p.mu.Lock()
	p.primaryHint = primary
	p.peersHint = append([]string(nil), peers...)
	p.mu.Unlock()
}

// PrimaryHint returns the last-known primary address ("" if none).
func (p *Provider) PrimaryHint() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.primaryHint
}

// Promote turns this replica into the primary of a new epoch: the
// replication session is halted, epoch+1 is appended to the changelog as
// an epoch record (fsynced before Promote returns), and the node starts
// accepting writes. Idempotent on a node that is already primary. The
// caller is responsible for having picked a sensible candidate — promotion
// does not check lag, and any writes the old primary had not replicated
// here are gone from this history (the old primary repairs its divergent
// tail via snapshot resync when it rejoins).
func (p *Provider) Promote() (uint64, error) {
	if p.dur == nil {
		return 0, ErrNotDurable
	}
	if !p.replica.Load() {
		return p.epoch.Load(), nil
	}
	// Halt the replication session before taking the publish lock: the
	// session's apply path needs pubMu to drain, and after the halt no
	// streamed record or snapshot install can land mid-flip (both recheck
	// the role under pubMu).
	p.mu.Lock()
	stop := p.stopReplication
	p.mu.Unlock()
	if stop != nil {
		stop()
	}
	p.lockPub()
	if !p.replica.Load() {
		epoch := p.epoch.Load()
		p.unlockPub()
		return epoch, nil
	}
	newEpoch := p.epoch.Load() + 1
	payload, err := json.Marshal(&logRecord{Kind: recEpoch, Epoch: newEpoch})
	if err != nil {
		p.unlockPub()
		return 0, fmt.Errorf("provider: marshal epoch record: %w", err)
	}
	seq, err := p.dur.log.Append(payload)
	if err != nil {
		p.unlockPub()
		return 0, err
	}
	p.epoch.Store(newEpoch)
	p.replica.Store(false)
	p.resyncPending.Store(false)
	p.mu.Lock()
	p.proxy = nil
	p.stopReplication = nil
	p.primaryHint = p.advertise
	p.mu.Unlock()
	p.unlockPub()
	// The group-commit fsync happens outside pubMu like any write's; a
	// write admitted at the new epoch commits at or after the epoch record
	// (it is ordered behind it in the log), never before.
	if err := p.dur.log.WaitDurable(seq); err != nil {
		return 0, err
	}
	p.promotions.Add(1)
	return newEpoch, nil
}

// ObserveEpoch folds in external proof that term epoch exists, led by
// primary (may be "" when the observer does not know). A primary that
// learns of a higher term demotes itself: it stops accepting writes
// (fencing every in-flight and future write of its stale term), drops its
// follower streams, marks its log tail suspect (resyncPending), and fires
// OnDemote so the supervisor can start a follower session toward the new
// primary. On a replica, the epoch and primary hint just advance. Returns
// whether the call demoted a primary.
func (p *Provider) ObserveEpoch(epoch uint64, primary string) bool {
	if primary != "" {
		p.mu.Lock()
		p.primaryHint = primary
		p.mu.Unlock()
	}
	if epoch == 0 || p.dur == nil {
		return false
	}
	if !p.bumpEpoch(epoch) {
		return false
	}
	if !p.replica.CompareAndSwap(false, true) {
		return false // already a replica; nothing to step down from
	}
	p.resyncPending.Store(true)
	p.dropFollowerStreams()
	if cb := p.OnDemote; cb != nil {
		go cb(epoch, primary)
	}
	return true
}

// dropFollowerStreams hangs up every follower replication stream (the
// demoted node serves no more records of its dead term; followers re-dial
// and find the new primary via their candidate list).
func (p *Provider) dropFollowerStreams() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, fs := range p.followers {
		if fs.reader != nil {
			fs.reader.Close()
			fs.reader = nil
		}
		if fs.conn != nil {
			fs.conn.Close()
			fs.conn = nil
		}
		fs.connected = false
	}
}

// fencedMarker appears in every fence rejection so the classification
// survives the wire (RemoteError flattens types to a message).
const fencedMarker = "epoch fence"

// FencedWriteError rejects a request stamped with an epoch this node is
// not serving.
type FencedWriteError struct {
	ReqEpoch uint64 // the stamp the request carried
	OwnEpoch uint64 // the term this node serves
}

func (e *FencedWriteError) Error() string {
	return fmt.Sprintf("provider: %s: request stamped epoch %d rejected by node at epoch %d",
		fencedMarker, e.ReqEpoch, e.OwnEpoch)
}

// IsFenced reports whether err (local or remote) is an epoch-fence
// rejection.
func IsFenced(err error) bool {
	var fe *FencedWriteError
	if errors.As(err, &fe) {
		return true
	}
	var re *wire.RemoteError
	return errors.As(err, &re) && strings.Contains(re.Msg, fencedMarker)
}

// fenceWrite admits or rejects one write-path request by its epoch stamp.
// Unstamped requests (epoch 0) pass — epochs are opt-in for writers — and
// so do stamps matching this node's term. Any other stamp is fenced and
// counted; a HIGHER stamp additionally proves this node is stale, so it
// steps down before rejecting (the write was never applied either way).
func (p *Provider) fenceWrite(reqEpoch uint64) error {
	if reqEpoch == 0 {
		return nil
	}
	own := p.epoch.Load()
	if reqEpoch == own {
		return nil
	}
	p.fencedWrites.Add(1)
	if reqEpoch > own {
		p.ObserveEpoch(reqEpoch, "")
	}
	return &FencedWriteError{ReqEpoch: reqEpoch, OwnEpoch: own}
}

// fencePeer screens replication requests (snapshot/stream negotiation). A
// peer announcing a LOWER term is fine — it is a follower catching up and
// will adopt this node's term from the stream. A peer announcing a higher
// term outranks this node: if it is still acting as primary it steps down,
// and the request is refused so the peer re-points.
func (p *Provider) fencePeer(peerEpoch uint64) error {
	if peerEpoch == 0 {
		return nil
	}
	own := p.epoch.Load()
	if peerEpoch <= own {
		return nil
	}
	p.ObserveEpoch(peerEpoch, "")
	return fmt.Errorf("provider: %s: peer at epoch %d outranks this node's epoch %d; stepping down",
		fencedMarker, peerEpoch, own)
}

// CheckStreamEpoch screens one streamed replication record on the follower
// side. Records stamped below the follower's term come from a deposed
// primary that does not know it yet; the session is torn down rather than
// let a stale record into the verbatim log copy.
func (p *Provider) CheckStreamEpoch(epoch uint64) error {
	if epoch == 0 {
		return nil
	}
	own := p.epoch.Load()
	if epoch >= own {
		return nil
	}
	p.fencedWrites.Add(1)
	return fmt.Errorf("provider: %s: stream record stamped epoch %d below local epoch %d",
		fencedMarker, epoch, own)
}

// noPrimaryMarker appears in every NoPrimaryError so remote callers can
// classify the flattened message.
const noPrimaryMarker = "no primary reachable"

// NoPrimaryError is the graceful-degradation signal: a replica received a
// write but has no live primary to proxy it to. It is retryable — reads
// keep working, and the write will succeed once a promotion lands — and it
// carries the last-known topology so the caller knows where to look.
type NoPrimaryError struct {
	Epoch       uint64   // the replica's current term
	LastPrimary string   // last-known primary address ("" if never known)
	Peers       []string // candidate endpoints, if the node knows any
}

func (e *NoPrimaryError) Error() string {
	msg := fmt.Sprintf("provider: %s to proxy write to (replica at epoch %d)", noPrimaryMarker, e.Epoch)
	if e.LastPrimary != "" {
		msg += "; last known primary " + e.LastPrimary
	}
	if len(e.Peers) > 0 {
		msg += "; candidates " + strings.Join(e.Peers, ",")
	}
	return msg
}

// Is keeps errors.Is(err, ErrNotPrimary) working for pre-epoch callers.
func (e *NoPrimaryError) Is(target error) bool { return target == ErrNotPrimary }

// IsNoPrimary reports whether err (local or remote) is a replica's
// "no primary reachable" degradation signal.
func IsNoPrimary(err error) bool {
	var np *NoPrimaryError
	if errors.As(err, &np) {
		return true
	}
	var re *wire.RemoteError
	return errors.As(err, &re) && strings.Contains(re.Msg, noPrimaryMarker)
}

func (p *Provider) noPrimaryErr() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return &NoPrimaryError{
		Epoch:       p.epoch.Load(),
		LastPrimary: p.primaryHint,
		Peers:       append([]string(nil), p.peersHint...),
	}
}

// Topology reports this node's view of the cluster in one response: its
// role and term, the primary address it believes in, and (on a primary)
// per-follower stream positions for lag math.
func (p *Provider) Topology() *wire.TopologyResponse {
	resp := &wire.TopologyResponse{
		Name:  p.name,
		Role:  p.Role(),
		Epoch: p.Epoch(),
	}
	if p.dur != nil {
		resp.LogSeq = p.dur.log.LastSeq()
	}
	p.mu.Lock()
	adv, hint := p.advertise, p.primaryHint
	proxyUp := p.proxy != nil
	p.mu.Unlock()
	if resp.Role == "primary" {
		resp.Primary = adv
		resp.Followers = p.DeliveryStats().Followers
	} else {
		resp.Primary = hint
		resp.ProxyUp = proxyUp
	}
	return resp
}
