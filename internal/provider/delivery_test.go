package provider

import (
	"fmt"
	"testing"

	"mdv/internal/core"
)

// TestDeliveryFailureDoesNotFailRegistration: a broken subscriber must not
// block metadata administration; the failure is observable via
// OnDeliveryError.
func TestDeliveryFailureDoesNotFailRegistration(t *testing.T) {
	p, err := New("mdp", batcherSchema())
	if err != nil {
		t.Fatal(err)
	}
	var failures []string
	p.OnDeliveryError = func(subscriber string, err error) {
		failures = append(failures, subscriber)
	}
	p.Attach("broken", func(uint64, bool, *core.Changeset) error {
		return fmt.Errorf("cache on fire")
	})
	var delivered int
	p.Attach("healthy", func(uint64, bool, *core.Changeset) error {
		delivered++
		return nil
	})
	for _, sub := range []string{"broken", "healthy"} {
		if _, _, err := p.Subscribe(sub, `search CycleProvider c register c`); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.RegisterDocument(batcherDoc(1, 80)); err != nil {
		t.Fatalf("registration failed due to broken subscriber: %v", err)
	}
	if len(failures) != 1 || failures[0] != "broken" {
		t.Errorf("failures = %v", failures)
	}
	if delivered != 1 {
		t.Errorf("healthy subscriber received %d changesets", delivered)
	}
	// The metadata is committed regardless.
	if p.Engine().ResourceCount() != 1 {
		t.Errorf("resources = %d", p.Engine().ResourceCount())
	}
}
