package provider

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mdv/internal/core"
)

// TestDeliveryOrderSurvivesPipelining proves the §2.2 ordering guarantee
// holds with delivery outside pubMu: under concurrent registrations, a
// subscriber observes changelog sequences strictly increasing and never
// two deliveries overlapping in time (the turnstile serializes the
// delivery stage in publish order).
func TestDeliveryOrderSurvivesPipelining(t *testing.T) {
	p, err := OpenDurable("mdp", batcherSchema(), t.TempDir(), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var mu sync.Mutex
	var seqs []uint64
	var inFlight atomic.Int32
	p.Attach("lmr", func(seq uint64, reset bool, cs *core.Changeset) error {
		if inFlight.Add(1) != 1 {
			t.Error("overlapping deliveries to one subscriber")
		}
		defer inFlight.Add(-1)
		mu.Lock()
		seqs = append(seqs, seq)
		mu.Unlock()
		return nil
	})
	if _, _, err := p.Subscribe("lmr", durRule); err != nil {
		t.Fatal(err)
	}

	const writers = 8
	const docsPerWriter = 10
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < docsPerWriter; i++ {
				if err := p.RegisterDocument(batcherDoc(w*docsPerWriter+i, 80)); err != nil {
					t.Errorf("register: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(seqs) != writers*docsPerWriter {
		t.Fatalf("delivered %d changesets, want %d", len(seqs), writers*docsPerWriter)
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("sequence order violated at delivery %d: %d after %d", i, seqs[i], seqs[i-1])
		}
	}
}

// TestPublishPipelineOverlapsDelivery proves registration N+1's filter run
// proceeds while registration N's delivery fan-out is still in flight: the
// engine work no longer serializes behind a blocked subscriber.
func TestPublishPipelineOverlapsDelivery(t *testing.T) {
	p, err := New("mdp", batcherSchema())
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	var order []string
	var mu sync.Mutex
	p.Attach("lmr", func(_ uint64, _ bool, cs *core.Changeset) error {
		mu.Lock()
		order = append(order, cs.Upserts[0].Resource.URIRef)
		mu.Unlock()
		once.Do(func() {
			close(entered)
			<-release
		})
		return nil
	})
	if _, _, err := p.Subscribe("lmr", durRule); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 2)
	go func() { done <- p.RegisterDocument(batcherDoc(0, 80)) }()
	<-entered // registration 0 is mid-delivery, outside pubMu
	go func() { done <- p.RegisterDocument(batcherDoc(1, 81)) }()

	// Registration 1's engine run must complete while registration 0's
	// delivery is still blocked; its delivery then waits its turn.
	deadline := time.After(5 * time.Second)
	for p.Engine().Stats().DocumentsRegistered < 2 {
		select {
		case <-deadline:
			t.Fatal("second registration's filter run did not overlap the first's delivery")
		case <-time.After(time.Millisecond):
		}
	}
	close(release)
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{"b0.rdf#cp", "b1.rdf#cp"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("delivery order %v, want %v", order, want)
	}
}
