// Durable MDP mode: a write-ahead changelog makes every acknowledged
// input operation crash-safe, and publish records in the same log let a
// reconnecting LMR resume the changeset stream from its acknowledged
// sequence number.
//
// Protocol invariants:
//
//   - Input operations (register/delete document, subscribe/unsubscribe)
//     are appended to the log BEFORE they are applied to the engine, in
//     pubMu order, so the log order equals the apply order and replay is
//     deterministic.
//   - The resulting per-subscriber changesets are appended as publish
//     records right after the apply, still under pubMu, so they share the
//     operation's group-commit fsync.
//   - An operation is acknowledged to the caller only after WaitDurable:
//     anything a client saw succeed survives kill -9.
//   - No sequence is handed to a subscriber (as a push or resume cursor)
//     until a fsynced delivered-watermark record covers it (claimed
//     watermarkChunk ahead, so the extra fsync is rare). Recovery reserves
//     the claimed range past the recovered tail and forces cursors inside
//     it to reset: their pushes were delivered but the records died with
//     the crash.
//   - Changeset application at the LMR is idempotent, so recovery and
//     resume may replay duplicates freely (at-least-once delivery).
//
// Recovery: load the snapshot (whose header records the log sequence it
// covers), then re-apply the logged operations past it. Re-applying
// regenerates the publish sets; they are re-appended as fresh publish
// records so later resumes see them. Operations that fail during replay
// failed identically when first applied (the engine is deterministic and
// operations are logged even when their application errors), so replay
// skips them.
package provider

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"mdv/internal/changelog"
	"mdv/internal/core"
	"mdv/internal/rdf"
	"mdv/internal/wire"
)

// Changelog record kinds. Op records precede their application; pub
// records follow it; ack records are advisory bookkeeping for truncation;
// watermark records durably bound how far deliveries may have gotten.
const (
	recRegister    = "register"
	recDelete      = "delete"
	recSubscribe   = "subscribe"
	recUnsubscribe = "unsubscribe"
	recNamedRule   = "named_rule"
	recPub         = "pub"
	// recPubGroup is a publish record shared by an interest group: one
	// changeset, one sequence, several member subscribers. Single-member
	// groups keep writing recPub, so logs produced with coalescing enabled
	// remain readable by the per-subscriber replay path and vice versa.
	recPubGroup  = "pub_group"
	recAck       = "ack"
	recWatermark = "watermark"
	// recEpoch marks an epoch bump: a promotion appends it as the first
	// record of the new term, so the term change is durable, totally ordered
	// with the writes it fences, and replicates to followers verbatim.
	recEpoch = "epoch"
)

// logRecord is the JSON payload of one changelog record.
type logRecord struct {
	Kind       string     `json:"kind"`
	Docs       []wire.Doc `json:"docs,omitempty"`       // register
	URI        string     `json:"uri,omitempty"`        // delete
	Subscriber string     `json:"subscriber,omitempty"` // subscribe, pub, ack
	// Subscribers lists an interest group's members on pub_group records;
	// every member's cursor advances over the record's single sequence.
	Subscribers []string `json:"subscribers,omitempty"` // pub_group
	Rule        string   `json:"rule,omitempty"`        // subscribe, named_rule
	Name        string   `json:"name,omitempty"`        // named_rule
	SubID       int64    `json:"sub_id,omitempty"`      // unsubscribe
	AckSeq      uint64   `json:"ack_seq,omitempty"`     // ack
	Watermark   uint64   `json:"watermark,omitempty"`   // watermark
	// Lost carries the crash-lost sequence ranges (inclusive) on watermark
	// records, so a second crash cannot forget that a range's pushes were
	// delivered but their records died. Consolidated records (written by
	// recovery and Compact) carry the full list.
	Lost      [][2]uint64     `json:"lost,omitempty"`      // watermark
	Changeset *core.Changeset `json:"changeset,omitempty"` // pub
	Epoch     uint64          `json:"epoch,omitempty"`     // epoch
}

// durableState is the changelog side of a durable provider.
type durableState struct {
	log *changelog.Log
	dir string
	// acked tracks each subscriber's highest acknowledged publish
	// sequence (guarded by Provider.mu); the truncation watermark is the
	// minimum over all subscribers with live subscriptions.
	acked map[string]uint64

	// claim is the delivered-watermark durably recorded in the log: no
	// push with a sequence above it has ever been handed to a subscriber.
	// Guarded by Provider.pubMu (all delivery happens under it).
	claim uint64

	// lost holds the [lo, hi] sequence ranges (inclusive) whose records
	// died unsynced in past crashes. Pushes in them may have reached
	// subscribers before the crash, but the records backing them no longer
	// exist, so a cursor inside any range must take a full-state reset.
	// The list is persisted in watermark records (and re-persisted by
	// recovery and Compact), so it survives repeated crashes and
	// truncation. Guarded by Provider.pubMu.
	lost [][2]uint64

	// streamFloor is the lowest sequence from which a replica's local log
	// copy is known contiguous. A mid-life snapshot install leaves the
	// local records below its coverage missing, so Resume must not claim a
	// gap-free replay across the floor. 0 on primaries. Guarded by
	// Provider.pubMu.
	streamFloor uint64
	// catchup is the replica Resume catch-up bound (see
	// DurableOptions.CatchupWait); immutable after open.
	catchup time.Duration
}

// inLost reports whether seq falls inside a crash-lost sequence range.
func (d *durableState) inLost(seq uint64) bool {
	for _, r := range d.lost {
		if seq >= r[0] && seq <= r[1] {
			return true
		}
	}
	return false
}

// addLost records a crash-lost range, deduplicating exact repeats (each
// consolidated watermark record carries the full list, so recovery scans
// see every range many times).
func (d *durableState) addLost(lo, hi uint64) {
	for _, r := range d.lost {
		if r[0] == lo && r[1] == hi {
			return
		}
	}
	d.lost = append(d.lost, [2]uint64{lo, hi})
}

// replayBatchLimit bounds how many replayed changesets coalesce into one
// batched push: enough to amortize frame and queue overhead, small enough
// to keep each frame far from MaxMessageSize and the receiver's apply
// granularity fine.
const replayBatchLimit = 128

func containsString(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// watermarkChunk is how far past the triggering sequence a delivered-
// watermark record claims. Claiming ahead amortizes the watermark's fsync
// to one per chunk of sequence numbers; the cost is up to a chunk of
// sequence numbers burned per recovery (uint64 never runs out).
const watermarkChunk = 1024

// DurableOptions tune a durable provider.
type DurableOptions struct {
	// SegmentSize is the changelog segment rotation threshold.
	SegmentSize int64
	// Sync selects the changelog durability policy (default group commit).
	Sync changelog.SyncPolicy
	// GroupWindow bounds how long a group commit holds its fsync while
	// more operations are queued on the publish lock, letting them share
	// it. Serial callers never wait (nothing is queued). Zero means the
	// 2ms default; negative disables the window.
	GroupWindow time.Duration
	// Replica opens the provider as a follower MDP: its engine is driven
	// by replicated changelog records (see ApplyReplicated), writes are
	// proxied to the primary, and recovery never appends to the local log
	// copy (it must stay a verbatim prefix of the primary's log).
	Replica bool
	// CatchupWait bounds how long a replica's Resume waits for the
	// replicated stream to reach a subscriber's cursor before falling back
	// to a full-state reset (an LMR can be ahead of a freshly restarted
	// replica that has not caught up yet). Zero means 10s.
	CatchupWait time.Duration
	// EngineOptions configure the filter engine when the provider opens
	// without a snapshot (benchmarks use DisableInterestCoalescing for the
	// fan-out ablation). A snapshot-restored engine keeps default options.
	EngineOptions core.Options
}

// defaultGroupWindow is the fsync commit window under load. At ~2ms a
// saturated provider amortizes each fsync over several registration
// batches while a registration's worst-case extra latency stays small
// against the network round trip it already pays.
const defaultGroupWindow = 2 * time.Millisecond

// RecoveryStats reports what OpenDurable replayed.
type RecoveryStats struct {
	SnapshotSeq uint64 // log sequence the loaded snapshot covered (0 = none)
	Replayed    int    // operations re-applied from the log tail
	Skipped     int    // logged operations whose application failed (they failed identically before the crash)
}

// ErrNotDurable is returned by durable-only operations on an in-memory
// provider.
var ErrNotDurable = errors.New("provider: not a durable provider (no changelog)")

const (
	snapshotFile = "snapshot.db"
	// snapshotMagicV1 headers carry only the covered log sequence; V2 (since
	// epochs) adds the epoch the snapshot was taken at. Both are readable.
	snapshotMagicV1 = "MDVSNAP1"
	snapshotMagicV2 = "MDVSNAP2"
	walDir          = "wal"
)

// OpenDurable opens (or creates) a durable MDP rooted at dir: it loads the
// latest snapshot if present, replays the changelog tail past it, and
// returns a provider whose every acknowledged operation survives a crash.
func OpenDurable(name string, schema *rdf.Schema, dir string, opts DurableOptions) (*Provider, error) {
	p, _, err := OpenDurableWithStats(name, schema, dir, opts)
	return p, err
}

// OpenDurableWithStats is OpenDurable, also reporting recovery work.
func OpenDurableWithStats(name string, schema *rdf.Schema, dir string, opts DurableOptions) (*Provider, *RecoveryStats, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("provider: %w", err)
	}
	stats := &RecoveryStats{}
	var engine *core.Engine
	var snapEpoch uint64
	snapPath := filepath.Join(dir, snapshotFile)
	if f, err := os.Open(snapPath); err == nil {
		snapSeq, epoch, eng, lerr := readSnapshot(f, schema, opts.EngineOptions)
		f.Close()
		if lerr != nil {
			return nil, nil, fmt.Errorf("provider: load snapshot: %w", lerr)
		}
		engine = eng
		stats.SnapshotSeq = snapSeq
		snapEpoch = epoch
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("provider: %w", err)
	}
	if engine == nil {
		var err error
		engine, err = core.NewEngineWithOptions(schema, opts.EngineOptions)
		if err != nil {
			return nil, nil, err
		}
	}
	window := opts.GroupWindow
	switch {
	case window == 0:
		window = defaultGroupWindow
	case window < 0:
		window = 0
	}
	p := NewFromEngine(name, engine)
	p.replica.Store(opts.Replica)
	p.bumpEpoch(snapEpoch)
	log, err := changelog.Open(filepath.Join(dir, walDir), changelog.Options{
		SegmentSize: opts.SegmentSize,
		Sync:        opts.Sync,
		GroupWindow: window,
		Busy:        func() bool { return p.pubPending.Load() > 0 },
	})
	if err != nil {
		return nil, nil, err
	}
	p.dur = &durableState{log: log, dir: dir, acked: map[string]uint64{}, catchup: opts.CatchupWait}
	if err := p.recover(stats); err != nil {
		log.Close()
		return nil, nil, err
	}
	return p, stats, nil
}

// Durable reports whether the provider runs with a changelog.
func (p *Provider) Durable() bool { return p.dur != nil }

// LogSeq returns the changelog's last appended sequence (0 if not durable).
func (p *Provider) LogSeq() uint64 {
	if p.dur == nil {
		return 0
	}
	return p.dur.log.LastSeq()
}

// ReplayLog streams the raw changelog records from sequence from (tests
// and tooling use it to compare replicas' log copies byte for byte — the
// replication invariant is a verbatim prefix). The payload slice is only
// valid during the callback.
func (p *Provider) ReplayLog(from uint64, fn func(seq uint64, payload []byte) error) error {
	if p.dur == nil {
		return ErrNotDurable
	}
	return p.dur.log.Replay(from, fn)
}

// logOpLocked appends one input-operation record; caller holds pubMu. On a
// non-durable provider it is a no-op returning sequence 0.
func (p *Provider) logOpLocked(rec *logRecord) (uint64, error) {
	if p.dur == nil {
		return 0, nil
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return 0, fmt.Errorf("provider: marshal log record: %w", err)
	}
	return p.dur.log.Append(payload)
}

// appendPubLocked appends one publish record for an interest group; caller
// holds pubMu. Single-member groups write the legacy per-subscriber record
// kind, so an uncoalesced log is byte-compatible with pre-group builds.
func (p *Provider) appendPubLocked(members []string, cs *core.Changeset) (uint64, error) {
	if len(members) == 1 {
		return p.logOpLocked(&logRecord{Kind: recPub, Subscriber: members[0], Changeset: cs})
	}
	return p.logOpLocked(&logRecord{Kind: recPubGroup, Subscribers: members, Changeset: cs})
}

// claimDeliveredLocked makes the durable delivered-watermark cover seq;
// the caller holds pubMu and is about to hand seq to a subscriber (as a
// push or as a resume cursor). Pushes are delivered before the operation's
// group-commit fsync returns, so a crash can lose the records behind
// sequences a subscriber already applied; the watermark tells the next
// recovery how far deliveries may have gotten, so it keeps reused numbers
// away from subscriber cursors and resets cursors inside the lost range.
// Claims run watermarkChunk ahead, so the extra fsync amortizes to one per
// chunk of sequences; within a chunk this is a no-op.
func (p *Provider) claimDeliveredLocked(seq uint64) error {
	d := p.dur
	if d == nil || seq == 0 || seq <= d.claim {
		return nil
	}
	if p.replica.Load() {
		// A replica appends nothing: the primary claimed this sequence
		// before handing it out, and its watermark records arrive in the
		// stream. A replica crash loses no delivered sequences anyway —
		// the primary re-streams whatever the local tail is missing.
		return nil
	}
	claim := seq + watermarkChunk
	if err := p.appendWatermarkLocked(claim); err != nil {
		return err
	}
	d.claim = claim
	return nil
}

// appendWatermarkLocked appends one watermark record claiming delivery
// coverage up to claim — always carrying the full crash-lost range list, so
// any single surviving watermark record reconstructs the whole delivered-
// watermark state — and waits for its fsync. The caller holds pubMu (or
// runs recovery, before the provider is shared).
func (p *Provider) appendWatermarkLocked(claim uint64) error {
	payload, err := json.Marshal(&logRecord{Kind: recWatermark, Watermark: claim, Lost: p.dur.lost})
	if err != nil {
		return fmt.Errorf("provider: marshal watermark record: %w", err)
	}
	wseq, err := p.dur.log.Append(payload)
	if err != nil {
		return err
	}
	return p.dur.log.WaitDurable(wseq)
}

// awaitDurable blocks until the given sequence is fsynced (group commit).
// The wait happens outside pubMu, so concurrent operations keep appending
// and share the leader's fsync.
func (p *Provider) awaitDurable(seq uint64) error {
	if p.dur == nil || seq == 0 {
		return nil
	}
	return p.dur.log.WaitDurable(seq)
}

// recover replays the changelog tail past the snapshot. It runs before the
// provider is shared, so no locks are needed.
func (p *Provider) recover(stats *RecoveryStats) error {
	// The snapshot must meet the retained log: if the oldest retained
	// record starts past the snapshot's coverage, the operations in
	// between are gone — e.g. an old snapshot file resurfaced after a
	// crash swallowed the rename while Compact had already truncated the
	// covering segments. Replaying would silently skip them; fail loudly.
	if oldest := p.dur.log.OldestSeq(); oldest > stats.SnapshotSeq+1 {
		return fmt.Errorf("provider: changelog starts at seq %d but the snapshot covers only up to %d: operations in between are lost",
			oldest, stats.SnapshotSeq)
	}
	type op struct {
		seq uint64
		rec logRecord
	}
	var ops []op
	var claim uint64
	// Phase 1: scan the whole retained log. Collect the operations past
	// the snapshot to re-apply, the ack watermarks (acks recorded before
	// the snapshot sequence may not have been truncated yet), and the
	// delivered-watermark claim; publish records need no replay here (they
	// are read on demand by Resume).
	err := p.dur.log.Replay(p.dur.log.OldestSeq(), func(seq uint64, payload []byte) error {
		var rec logRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			if seq <= stats.SnapshotSeq {
				return nil // tolerated: pre-snapshot ops are not needed for state
			}
			return fmt.Errorf("provider: changelog record %d: %w", seq, err)
		}
		switch rec.Kind {
		case recRegister, recDelete, recSubscribe, recUnsubscribe, recNamedRule:
			if seq > stats.SnapshotSeq {
				ops = append(ops, op{seq: seq, rec: rec})
			}
		case recAck:
			if rec.AckSeq > p.dur.acked[rec.Subscriber] {
				p.dur.acked[rec.Subscriber] = rec.AckSeq
			}
		case recWatermark:
			if rec.Watermark > claim {
				claim = rec.Watermark
			}
			for _, r := range rec.Lost {
				p.dur.addLost(r[0], r[1])
			}
		case recEpoch:
			p.bumpEpoch(rec.Epoch)
		}
		return nil
	})
	if err != nil {
		return err
	}
	// Both the snapshot and the delivered-watermark can claim coverage
	// past the recovered tail: ack records are appended without awaiting
	// durability, and pushes reach subscribers before their group-commit
	// fsync returns, so an unsynced tail dies with a crash after its
	// sequences were already handed out. Reserve the claimed range — a new
	// record reusing a lost number would be skipped by the next recovery
	// as already-covered (losing an acknowledged operation) or skipped by
	// a subscriber as a duplicate (losing an update). Remember the range:
	// a cursor inside it refers to pushes whose records no longer exist,
	// so Resume must force a full-state reset.
	tail := p.dur.log.LastSeq()
	if p.replica.Load() {
		// A follower's log must stay a verbatim prefix of the primary's:
		// recovery appends nothing — no watermark re-append, no regenerated
		// publish records — and reserves only the snapshot coverage, never
		// the delivered-watermark claim (the claim runs watermarkChunk ahead
		// of real records; reserving it would make the follower skip
		// genuinely new streamed records as duplicates). Records between the
		// old tail and an installed snapshot's coverage are not lost — the
		// primary re-streams anything missing — so there is no lost range to
		// record either; the snapshot floor just bounds gap-free resumes.
		if stats.SnapshotSeq > tail {
			if err := p.dur.log.Reserve(stats.SnapshotSeq); err != nil {
				return err
			}
			p.dur.streamFloor = stats.SnapshotSeq
		}
		p.dur.claim = claim
		for _, o := range ops {
			if _, err := p.replayOp(&o.rec); err != nil {
				stats.Skipped++
				continue
			}
			stats.Replayed++
		}
		return nil
	}
	floor := stats.SnapshotSeq
	if claim > floor {
		floor = claim
	}
	if floor > tail {
		if err := p.dur.log.Reserve(floor); err != nil {
			return err
		}
		p.dur.addLost(tail+1, floor)
	}
	p.dur.claim = claim
	// Re-persist the consolidated delivered-watermark state at the log tail.
	// Without this, the newly computed lost range lives only in memory (a
	// second crash would forget that its pushes were delivered), and a later
	// Compact could truncate the segment holding the only watermark record —
	// leaving the next recovery with claim 0 and the delivered-but-unsynced
	// range back in circulation.
	if claim > 0 || len(p.dur.lost) > 0 {
		if err := p.appendWatermarkLocked(claim); err != nil {
			return err
		}
	}
	// Phase 2: re-apply in log order. Appending the regenerated publish
	// records happens after the scan, so the replay iterator never chases
	// its own appends.
	for _, o := range ops {
		ps, err := p.replayOp(&o.rec)
		if err != nil {
			// The operation failed identically when first applied (ops are
			// logged before application; the engine is deterministic).
			stats.Skipped++
			continue
		}
		stats.Replayed++
		if ps != nil {
			for _, g := range ps.GroupList() {
				if _, err := p.appendPubLocked(g.Members, g.Changeset); err != nil {
					return err
				}
			}
		}
	}
	return p.dur.log.Sync()
}

// replayOp applies one logged input operation to the engine.
func (p *Provider) replayOp(rec *logRecord) (*core.PublishSet, error) {
	switch rec.Kind {
	case recRegister:
		docs, err := decodeDocs(rec.Docs)
		if err != nil {
			return nil, err
		}
		return p.Engine().RegisterDocuments(docs)
	case recDelete:
		return p.Engine().DeleteDocument(rec.URI)
	case recSubscribe:
		_, initial, err := p.Engine().Subscribe(rec.Subscriber, rec.Rule)
		if err != nil {
			return nil, err
		}
		if initial == nil || initial.Empty() {
			return nil, nil
		}
		return core.NewSingleSubscriberSet(rec.Subscriber, initial), nil
	case recUnsubscribe:
		return nil, p.Engine().Unsubscribe(rec.SubID)
	case recNamedRule:
		return nil, p.Engine().RegisterNamedRule(rec.Name, rec.Rule)
	default:
		return nil, fmt.Errorf("provider: unknown op kind %q", rec.Kind)
	}
}

// Ack records that the subscriber has applied all pushes up to seq; it
// advances the truncation watermark. Acks are advisory: they are appended
// to the changelog without waiting for an fsync.
func (p *Provider) Ack(subscriber string, seq uint64) error {
	if p.dur == nil || seq == 0 {
		return nil
	}
	p.mu.Lock()
	if seq <= p.dur.acked[subscriber] {
		p.mu.Unlock()
		return nil
	}
	p.dur.acked[subscriber] = seq
	p.mu.Unlock()
	if p.replica.Load() {
		// Local bookkeeping only: the ack gates this replica's own log
		// truncation, but is never appended to the verbatim log copy.
		return nil
	}
	payload, err := json.Marshal(&logRecord{Kind: recAck, Subscriber: subscriber, AckSeq: seq})
	if err != nil {
		return err
	}
	_, err = p.dur.log.Append(payload)
	return err
}

// Resume re-delivers every publish record for the subscriber with a
// sequence past fromSeq, in order, through the subscriber's attached
// channels, and returns the sequence the subscriber is then current to.
// If the changelog can no longer prove a gap-free replay (truncated past
// fromSeq, fromSeq ahead of the log, or fromSeq inside the sequence range
// a crash swallowed after its pushes were already delivered), it instead
// delivers one full-state reset changeset rebuilding the subscriber's
// cache from the live match sets.
// On a non-durable provider Resume is a no-op returning 0.
func (p *Provider) Resume(subscriber string, fromSeq uint64) (uint64, error) {
	if p.dur == nil {
		return 0, nil
	}
	// A subscriber failing over to a replica can be AHEAD of it: the
	// primary pushed (and the LMR applied) sequences the replicated stream
	// has not delivered here yet. Wait briefly for the stream to catch up —
	// outside pubMu, which ApplyReplicated needs to make progress — and
	// fall back to a full-state reset if it cannot (e.g. the primary died
	// before shipping those records to anyone).
	if p.replica.Load() && fromSeq > p.dur.log.LastSeq() {
		bound := p.dur.catchup
		if bound <= 0 {
			bound = 10 * time.Second
		}
		deadline := time.Now().Add(bound)
		for p.dur.log.LastSeq() < fromSeq && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
	}
	// Collect the replay (or the reset fill) under pubMu — it must match
	// the log position exactly — then deliver through the turnstile like
	// any publish, so the replay slots into the total order without
	// blocking concurrent registrations during its fan-out.
	p.pubMu.Lock()
	latest := p.dur.log.LastSeq()
	// A cursor inside the crash-lost range points at pushes whose records
	// no longer exist (they were delivered, then died unsynced): the
	// subscriber holds state the provider cannot account for, so only a
	// reset restores convergence.
	lost := p.dur.inLost(fromSeq)
	if fromSeq == latest && !lost {
		p.pubMu.Unlock()
		return latest, nil // already current
	}
	// latest becomes the subscriber's new cursor; it must be claimed like
	// any delivered sequence before it is handed out.
	if err := p.claimDeliveredLocked(latest); err != nil {
		p.pubMu.Unlock()
		return 0, err
	}
	gapFree := !lost && fromSeq < latest && fromSeq+1 >= p.dur.log.OldestSeq() &&
		fromSeq >= p.dur.streamFloor
	var dels []delivery
	if !gapFree {
		fill, err := p.Engine().ResubscribeFill(subscriber)
		if err != nil {
			p.pubMu.Unlock()
			return 0, err
		}
		dels = append(dels, delivery{subs: []string{subscriber}, seq: latest, reset: true, cs: fill, sync: true})
	} else {
		// Consecutive replay records for the cursor coalesce into batched
		// pushes (bounded by replayBatchLimit), so a long catch-up pays one
		// frame and one queue slot per batch instead of per record.
		var batch []wire.ChangesetPush
		flush := func() {
			switch len(batch) {
			case 0:
			case 1:
				dels = append(dels, delivery{subs: []string{subscriber},
					seq: batch[0].Seq, cs: batch[0].Changeset, sync: true})
				batch = nil
			default:
				dels = append(dels, delivery{subs: []string{subscriber},
					seq: batch[len(batch)-1].Seq, batch: batch, sync: true})
				p.replayCoalescedRecords.Add(uint64(len(batch)))
				p.replayCoalescedBatches.Add(1)
				batch = nil
			}
		}
		err := p.dur.log.Replay(fromSeq+1, func(seq uint64, payload []byte) error {
			var rec logRecord
			if err := json.Unmarshal(payload, &rec); err != nil {
				return fmt.Errorf("provider: changelog record %d: %w", seq, err)
			}
			mine := rec.Changeset != nil &&
				(rec.Kind == recPub && rec.Subscriber == subscriber ||
					rec.Kind == recPubGroup && containsString(rec.Subscribers, subscriber))
			if !mine {
				return nil
			}
			// Replays block on queue backpressure (sync) rather than drop:
			// the backlog can exceed any queue bound, and the resuming
			// subscriber is actively draining it.
			batch = append(batch, wire.ChangesetPush{Seq: seq, Changeset: rec.Changeset})
			if len(batch) >= replayBatchLimit {
				flush()
			}
			return nil
		})
		if err != nil {
			p.pubMu.Unlock()
			return 0, err
		}
		flush()
	}
	t := p.turn.ticket()
	p.pubMu.Unlock()
	p.deliverInTurn(t, dels)
	return latest, nil
}

// Compact writes a snapshot covering the current changelog sequence, then
// removes changelog segments that are both covered by the snapshot and
// acknowledged by every subscriber with live subscriptions. Registrations
// are quiesced for the duration of the snapshot write.
func (p *Provider) Compact() error {
	if p.dur == nil {
		return ErrNotDurable
	}
	p.pubMu.Lock()
	seq := p.dur.log.LastSeq()
	err := writeSnapshotFile(filepath.Join(p.dur.dir, snapshotFile), seq, p.Epoch(), p.Engine())
	if err == nil && !p.replica.Load() && (p.dur.claim > 0 || len(p.dur.lost) > 0) {
		// The truncation below may drop the segment holding the latest
		// watermark record; re-establish the delivered-watermark state at
		// the tail first, or a post-compaction crash would recover with
		// claim 0 and put delivered-but-unsynced sequences back in
		// circulation.
		err = p.appendWatermarkLocked(p.dur.claim)
	}
	p.pubMu.Unlock()
	if err != nil {
		return err
	}
	watermark, err := p.truncationWatermark(seq)
	if err != nil {
		return err
	}
	_, err = p.dur.log.TruncateBelow(watermark + 1)
	return err
}

// truncationWatermark computes the highest sequence safe to drop: the
// minimum of the snapshot coverage and every live subscriber's ack.
// Subscribers that have never acknowledged anything pin the log
// (watermark 0) until they do.
func (p *Provider) truncationWatermark(snapSeq uint64) (uint64, error) {
	subs, err := p.Engine().Subscriptions()
	if err != nil {
		return 0, err
	}
	watermark := snapSeq
	p.mu.Lock()
	defer p.mu.Unlock()
	// Connected followers pin truncation too: dropping records they have
	// not acknowledged would force them into a full snapshot re-bootstrap.
	// Disconnected ones do not (a dead follower must not pin the log
	// forever); they re-bootstrap if truncation outran them.
	for _, fs := range p.followers {
		if fs.connected && fs.acked < watermark {
			watermark = fs.acked
		}
	}
	seen := map[string]bool{}
	for _, s := range subs {
		if seen[s.Subscriber] {
			continue
		}
		seen[s.Subscriber] = true
		if acked := p.dur.acked[s.Subscriber]; acked < watermark {
			watermark = acked
		}
	}
	return watermark, nil
}

// writeSnapshotFile writes header (magic + covered log sequence + epoch)
// and the engine state, atomically (temp file, fsync, rename).
func writeSnapshotFile(path string, seq, epoch uint64, engine *core.Engine) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	w := bufio.NewWriter(f)
	if err := writeSnapshot(w, seq, epoch, engine); err != nil {
		return fail(err)
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	// The rename must be durable before the caller truncates the WAL
	// segments the previous snapshot depended on: without the directory
	// fsync a crash can resurface the old snapshot with its covering
	// segments already gone.
	syncDir(filepath.Dir(path))
	return nil
}

// syncDir fsyncs a directory so a renamed snapshot's entry is durable.
// Best-effort: some platforms cannot fsync directories.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// writeSnapshot serializes header (magic + covered log sequence + epoch)
// and the engine state to w. Shipped bootstrap snapshots and the snapshot
// file use the identical format, so a follower persists the received bytes
// verbatim.
func writeSnapshot(w io.Writer, seq, epoch uint64, engine *core.Engine) error {
	if _, err := io.WriteString(w, snapshotMagicV2); err != nil {
		return err
	}
	var hdr [16]byte
	binary.BigEndian.PutUint64(hdr[:8], seq)
	binary.BigEndian.PutUint64(hdr[8:], epoch)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	return engine.Save(w)
}

// readSnapshot parses a snapshot written by writeSnapshotFile, either
// format version. V1 snapshots (pre-epoch) report epoch 0; the caller
// treats that as "epoch unknown" and keeps its default. The engine options
// configure the restored engine (snapshots carry no shard or ablation
// state; shard maps are rebuilt from the canonical tables).
func readSnapshot(r io.Reader, schema *rdf.Schema, opts core.Options) (uint64, uint64, *core.Engine, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagicV2))
	if _, err := io.ReadFull(br, magic); err != nil {
		return 0, 0, nil, err
	}
	if string(magic) != snapshotMagicV1 && string(magic) != snapshotMagicV2 {
		return 0, 0, nil, fmt.Errorf("not an MDV durable snapshot (bad magic %q)", magic)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	seq := binary.BigEndian.Uint64(hdr[:])
	var epoch uint64
	if string(magic) == snapshotMagicV2 {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return 0, 0, nil, err
		}
		epoch = binary.BigEndian.Uint64(hdr[:])
	}
	engine, err := core.LoadWithOptions(br, schema, opts)
	if err != nil {
		return 0, 0, nil, err
	}
	return seq, epoch, engine, nil
}
