package provider

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"mdv/internal/changelog"
	"mdv/internal/core"
	"mdv/internal/rdf"
)

// BenchmarkPublishDurable measures the cost of durability on the
// registration path: an in-memory provider (no WAL) against a durable one
// fsyncing every operation (SyncAlways) and one batching concurrent
// operations into shared fsyncs (SyncGroup, the default). Registrations
// run from concurrent callers; docs1 registers one document per call,
// docs16 a batch of 16 (the paper's deployment model — registrations
// arrive batched; one changelog record and one shared fsync cover the
// whole batch). One op is one RegisterDocuments call.
func BenchmarkPublishDurable(b *testing.B) {
	bench := func(b *testing.B, p *Provider, batch int) {
		b.Helper()
		defer p.Close()
		p.Attach("lmr", func(uint64, bool, *core.Changeset) error { return nil })
		if _, _, err := p.Subscribe("lmr", durRule); err != nil {
			b.Fatal(err)
		}
		// Cycle through a bounded, pre-populated URI space so every variant
		// measures the same steady state: per-document filter cost depends
		// on the number of registered documents, and unbounded growth (or
		// first-registration table building) would skew variants that run
		// different iteration counts.
		const uriSpace = 1024
		for i := 0; i < uriSpace; i += 64 {
			docs := make([]*rdf.Document, 64)
			for j := range docs {
				docs[j] = batcherDoc(i+j, 80)
			}
			if err := p.RegisterDocuments(docs); err != nil {
				b.Fatal(err)
			}
		}
		// Eight concurrent registrars regardless of core count: group
		// commit amortizes fsyncs across CONCURRENT operations, and the
		// filter work is serialized under pubMu anyway, so the benchmark
		// models the deployment (many providers registering at one MDP)
		// rather than the host's parallelism.
		if par := 8 / runtime.GOMAXPROCS(0); par > 1 {
			b.SetParallelism(par)
		}
		var syncs0 uint64
		if p.dur != nil {
			syncs0 = p.dur.log.SyncCount()
		}
		var n int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				docs := make([]*rdf.Document, batch)
				for j := range docs {
					// Vary the port so every re-registration changes the
					// document: each doc yields a real changeset, so the
					// publish path (and its WAL pub records) is exercised,
					// not just the no-op re-registration fast path.
					v := atomic.AddInt64(&n, 1)
					docs[j] = batcherDoc(int(v%uriSpace), int(v%9000)+1)
				}
				if err := p.RegisterDocuments(docs); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(batch)*int64(b.N)), "ns/doc")
		if p.dur != nil {
			b.ReportMetric(float64(p.dur.log.SyncCount()-syncs0)/float64(b.N), "fsyncs/op")
		}
	}

	variants := []struct {
		name string
		open func(b *testing.B) *Provider
	}{
		{"no-wal", func(b *testing.B) *Provider {
			p, err := New("mdp", batcherSchema())
			if err != nil {
				b.Fatal(err)
			}
			return p
		}},
		{"wal-always", func(b *testing.B) *Provider {
			p, err := OpenDurable("mdp", batcherSchema(), b.TempDir(), DurableOptions{Sync: changelog.SyncAlways})
			if err != nil {
				b.Fatal(err)
			}
			return p
		}},
		{"wal-group", func(b *testing.B) *Provider {
			p, err := OpenDurable("mdp", batcherSchema(), b.TempDir(), DurableOptions{Sync: changelog.SyncGroup})
			if err != nil {
				b.Fatal(err)
			}
			return p
		}},
		// Ablation: full WAL serialization and buffered writes, no fsync.
		// The gap between wal-none and no-wal is the record-encoding CPU
		// cost; the gap between wal-group and wal-none is the fsync cost.
		{"wal-none", func(b *testing.B) *Provider {
			p, err := OpenDurable("mdp", batcherSchema(), b.TempDir(), DurableOptions{Sync: changelog.SyncNone})
			if err != nil {
				b.Fatal(err)
			}
			return p
		}},
	}
	for _, batch := range []int{1, 16} {
		for _, v := range variants {
			b.Run(fmt.Sprintf("docs%d/%s", batch, v.name), func(b *testing.B) {
				bench(b, v.open(b), batch)
			})
		}
	}
}
