// Package provider implements the Metadata Provider (MDP) tier of MDV
// (paper §2.2): the backbone node that stores global metadata, runs the
// publish & subscribe filter on registrations, publishes changesets to
// attached LMRs, and replicates registrations to its backbone peers (a flat
// hierarchy with full replication).
package provider

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"

	"mdv/internal/core"
	"mdv/internal/rdf"
	"mdv/internal/wire"
)

// Peer is another MDP the provider replicates registrations to. Both
// in-process providers and network clients implement it.
type Peer interface {
	ReplicateDocuments(docs []wire.Doc) error
	ReplicateDelete(uri string) error
}

// Provider is one MDP node.
type Provider struct {
	name   string
	engine *core.Engine

	mu sync.Mutex
	// attached holds in-process delivery callbacks per subscriber;
	// wireAttach holds push connections of wire-attached subscribers.
	attached   map[string][]func(*core.Changeset) error
	wireAttach map[string][]*wire.ServerConn
	peers      []Peer

	// OnDeliveryError, if set, observes changeset delivery failures
	// (broken subscribers). Delivery failures never fail the registration
	// that produced the changeset: the metadata is committed either way,
	// and a crashed LMR re-subscribes to recover.
	OnDeliveryError func(subscriber string, err error)

	// pubMu imposes a total order on everything a subscriber observes:
	// registrations/deletions hold it across the engine run and the
	// delivery of the resulting changesets, and Subscribe holds it across
	// rule registration and the delivery of the initial cache fill. Without
	// it, a changeset computed after a subscription could be delivered
	// before the subscription's initial fill and be overwritten by stale
	// data.
	pubMu sync.Mutex

	server *wire.Server
}

// New creates an MDP with a fresh filter engine.
func New(name string, schema *rdf.Schema) (*Provider, error) {
	return NewWithOptions(name, schema, core.Options{})
}

// NewWithOptions creates an MDP with explicit engine options.
func NewWithOptions(name string, schema *rdf.Schema, opts core.Options) (*Provider, error) {
	engine, err := core.NewEngineWithOptions(schema, opts)
	if err != nil {
		return nil, err
	}
	return NewFromEngine(name, engine), nil
}

// NewFromEngine wraps an existing engine (e.g. one restored from a
// snapshot via core.Load) as a provider.
func NewFromEngine(name string, engine *core.Engine) *Provider {
	return &Provider{
		name:       name,
		engine:     engine,
		attached:   map[string][]func(*core.Changeset) error{},
		wireAttach: map[string][]*wire.ServerConn{},
	}
}

// SaveSnapshot writes the provider's full engine state. Registrations are
// quiesced for the duration (the engine serializes with its own lock).
func (p *Provider) SaveSnapshot(w io.Writer) error {
	return p.engine.Save(w)
}

// Name returns the provider's name.
func (p *Provider) Name() string { return p.name }

// Engine exposes the filter engine (tests, benchmarks).
func (p *Provider) Engine() *core.Engine { return p.engine }

// AddPeer registers a backbone peer for replication.
func (p *Provider) AddPeer(peer Peer) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.peers = append(p.peers, peer)
}

// Attach registers a delivery callback for a subscriber. Every published
// changeset addressed to that subscriber is passed to apply. In-process
// LMRs attach a direct function; the wire server attaches a push wrapper.
func (p *Provider) Attach(subscriber string, apply func(*core.Changeset) error) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.attached[subscriber] = append(p.attached[subscriber], apply)
	return nil
}

// Detach removes all delivery callbacks of a subscriber.
func (p *Provider) Detach(subscriber string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.attached, subscriber)
	delete(p.wireAttach, subscriber)
}

// attachWire registers a wire connection as a subscriber's push channel.
func (p *Provider) attachWire(subscriber string, conn *wire.ServerConn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.wireAttach[subscriber] = append(p.wireAttach[subscriber], conn)
}

// publishLocked fans a publish set out to the attached subscribers. The
// caller must hold pubMu. Delivery failures are reported through
// OnDeliveryError and the failing wire channel is detached; they do not
// fail the registration (the metadata is already committed).
func (p *Provider) publishLocked(ps *core.PublishSet) error {
	if ps == nil {
		return nil
	}
	p.mu.Lock()
	type delivery struct {
		subscriber string
		fn         func(*core.Changeset) error
		cs         *core.Changeset
	}
	var deliveries []delivery
	for subscriber, cs := range ps.Changesets {
		if cs.Empty() {
			continue
		}
		for _, fn := range p.attached[subscriber] {
			deliveries = append(deliveries, delivery{subscriber: subscriber, fn: fn, cs: cs})
		}
		for _, conn := range p.wireAttach[subscriber] {
			c := conn
			sub := subscriber
			deliveries = append(deliveries, delivery{
				subscriber: subscriber,
				fn: func(cs *core.Changeset) error {
					if err := c.Notify(wire.KindChangeset, cs); err != nil {
						p.detachConn(sub, c)
						return err
					}
					return nil
				},
				cs: cs,
			})
		}
	}
	p.mu.Unlock()
	for _, d := range deliveries {
		if err := d.fn(d.cs); err != nil && p.OnDeliveryError != nil {
			p.OnDeliveryError(d.subscriber, err)
		}
	}
	return nil
}

// RegisterDocument registers one document. See RegisterDocuments.
func (p *Provider) RegisterDocument(doc *rdf.Document) error {
	return p.RegisterDocuments([]*rdf.Document{doc})
}

// RegisterDocuments registers a batch: runs the filter, publishes the
// resulting changesets, and replicates the batch to backbone peers.
func (p *Provider) RegisterDocuments(docs []*rdf.Document) error {
	return p.registerDocuments(docs, false)
}

// ReplicateDocuments applies a batch forwarded by a backbone peer (not
// forwarded again; the backbone is a full mesh).
func (p *Provider) ReplicateDocuments(wdocs []wire.Doc) error {
	docs, err := decodeDocs(wdocs)
	if err != nil {
		return err
	}
	return p.registerDocuments(docs, true)
}

func (p *Provider) registerDocuments(docs []*rdf.Document, replicated bool) error {
	p.pubMu.Lock()
	ps, err := p.engine.RegisterDocuments(docs)
	if err != nil {
		p.pubMu.Unlock()
		return err
	}
	err = p.publishLocked(ps)
	p.pubMu.Unlock()
	if err != nil {
		return err
	}
	if replicated {
		return nil
	}
	return p.forEachPeer(func(peer Peer) error {
		return peer.ReplicateDocuments(encodeDocs(docs))
	})
}

// DeleteDocument removes a document, publishes, and replicates the delete.
func (p *Provider) DeleteDocument(uri string) error {
	return p.deleteDocument(uri, false)
}

// ReplicateDelete applies a peer-forwarded document deletion.
func (p *Provider) ReplicateDelete(uri string) error {
	return p.deleteDocument(uri, true)
}

func (p *Provider) deleteDocument(uri string, replicated bool) error {
	p.pubMu.Lock()
	ps, err := p.engine.DeleteDocument(uri)
	if err != nil {
		p.pubMu.Unlock()
		return err
	}
	err = p.publishLocked(ps)
	p.pubMu.Unlock()
	if err != nil {
		return err
	}
	if replicated {
		return nil
	}
	return p.forEachPeer(func(peer Peer) error {
		return peer.ReplicateDelete(uri)
	})
}

func (p *Provider) forEachPeer(fn func(Peer) error) error {
	p.mu.Lock()
	peers := append([]Peer(nil), p.peers...)
	p.mu.Unlock()
	var errs []string
	for _, peer := range peers {
		if err := fn(peer); err != nil {
			errs = append(errs, err.Error())
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("provider: replication: %s", strings.Join(errs, "; "))
	}
	return nil
}

// Subscribe registers a subscription and returns its id and the initial
// cache fill. If the subscriber has attached delivery channels, the initial
// fill is additionally delivered through them, in order with all other
// published changesets; attached callers (LMR nodes) must therefore NOT
// apply the returned changeset themselves.
func (p *Provider) Subscribe(subscriber, rule string) (int64, *core.Changeset, error) {
	p.pubMu.Lock()
	defer p.pubMu.Unlock()
	subID, initial, err := p.engine.Subscribe(subscriber, rule)
	if err != nil {
		return 0, nil, err
	}
	if initial != nil && !initial.Empty() {
		ps := &core.PublishSet{Changesets: map[string]*core.Changeset{subscriber: initial}}
		if err := p.publishLocked(ps); err != nil {
			return 0, nil, err
		}
	}
	return subID, initial, nil
}

// Unsubscribe removes a subscription.
func (p *Provider) Unsubscribe(subID int64) error {
	return p.engine.Unsubscribe(subID)
}

// Browse lists resources of a class (paper §2.2's user browsing at an MDP).
func (p *Provider) Browse(class, contains string) ([]*rdf.Resource, error) {
	return p.engine.Browse(class, contains)
}

// GetDocument returns a registered document.
func (p *Provider) GetDocument(uri string) (*rdf.Document, error) {
	return p.engine.StoredDocument(uri)
}

// RegisterNamedRule stores a rule usable as a search extension.
func (p *Provider) RegisterNamedRule(name, rule string) error {
	return p.engine.RegisterNamedRule(name, rule)
}

func encodeDocs(docs []*rdf.Document) []wire.Doc {
	out := make([]wire.Doc, len(docs))
	for i, d := range docs {
		out[i] = wire.Doc{URI: d.URI, XML: rdf.DocumentString(d)}
	}
	return out
}

func decodeDocs(wdocs []wire.Doc) ([]*rdf.Document, error) {
	docs := make([]*rdf.Document, len(wdocs))
	for i, wd := range wdocs {
		d, err := rdf.ParseDocumentString(wd.URI, wd.XML)
		if err != nil {
			return nil, err
		}
		docs[i] = d
	}
	return docs, nil
}

// Serve starts the provider's wire server on addr ("host:0" for an
// ephemeral port). The returned address is the actual listen address.
func (p *Provider) Serve(addr string) (string, error) {
	srv, err := wire.NewServer(addr, p.handle)
	if err != nil {
		return "", err
	}
	srv.OnDisconnect = func(conn *wire.ServerConn) {
		if tag, ok := conn.Tag.Load().(string); ok && tag != "" {
			p.detachConn(tag, conn)
		}
	}
	p.mu.Lock()
	p.server = srv
	p.mu.Unlock()
	return srv.Addr(), nil
}

// Close stops the wire server, if running.
func (p *Provider) Close() error {
	p.mu.Lock()
	srv := p.server
	p.server = nil
	p.mu.Unlock()
	if srv != nil {
		return srv.Close()
	}
	return nil
}

// detachConn drops a disconnected push channel.
func (p *Provider) detachConn(subscriber string, conn *wire.ServerConn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	list := p.wireAttach[subscriber]
	for i, c := range list {
		if c == conn {
			p.wireAttach[subscriber] = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(p.wireAttach[subscriber]) == 0 {
		delete(p.wireAttach, subscriber)
	}
}

func (p *Provider) handle(conn *wire.ServerConn, kind string, body json.RawMessage) (interface{}, error) {
	switch kind {
	case wire.KindRegisterDocuments:
		var req wire.RegisterDocumentsRequest
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		docs, err := decodeDocs(req.Docs)
		if err != nil {
			return nil, err
		}
		return nil, p.registerDocuments(docs, req.Replicated)
	case wire.KindReplicate:
		var req wire.RegisterDocumentsRequest
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		return nil, p.ReplicateDocuments(req.Docs)
	case wire.KindDeleteDocument:
		var req wire.DeleteDocumentRequest
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		return nil, p.deleteDocument(req.URI, req.Replicated)
	case wire.KindReplicateDelete:
		var req wire.DeleteDocumentRequest
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		return nil, p.ReplicateDelete(req.URI)
	case wire.KindSubscribe:
		var req wire.SubscribeRequest
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		id, initial, err := p.Subscribe(req.Subscriber, req.Rule)
		if err != nil {
			return nil, err
		}
		return &wire.SubscribeResponse{SubID: id, Initial: initial}, nil
	case wire.KindUnsubscribe:
		var req wire.UnsubscribeRequest
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		return nil, p.Unsubscribe(req.SubID)
	case wire.KindBrowse:
		var req wire.BrowseRequest
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		rs, err := p.Browse(req.Class, req.Contains)
		if err != nil {
			return nil, err
		}
		return &wire.ResourcesResponse{Resources: rs}, nil
	case wire.KindGetDocument:
		var req wire.GetDocumentRequest
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		doc, err := p.GetDocument(req.URI)
		if err != nil {
			return nil, err
		}
		return &wire.Doc{URI: doc.URI, XML: rdf.DocumentString(doc)}, nil
	case wire.KindAttach:
		var req wire.AttachRequest
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		if req.Subscriber == "" {
			return nil, fmt.Errorf("provider: attach requires a subscriber name")
		}
		conn.Tag.Store(req.Subscriber)
		p.attachWire(req.Subscriber, conn)
		return nil, nil
	case wire.KindNamedRule:
		var req wire.NamedRuleRequest
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		return nil, p.RegisterNamedRule(req.Name, req.Rule)
	case wire.KindStats:
		return p.engine.Stats(), nil
	default:
		return nil, fmt.Errorf("provider: unknown request kind %q", kind)
	}
}
