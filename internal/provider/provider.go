// Package provider implements the Metadata Provider (MDP) tier of MDV
// (paper §2.2): the backbone node that stores global metadata, runs the
// publish & subscribe filter on registrations, publishes changesets to
// attached LMRs, and replicates registrations to its backbone peers (a flat
// hierarchy with full replication).
package provider

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mdv/internal/core"
	"mdv/internal/metrics"
	"mdv/internal/rdf"
	"mdv/internal/wire"
)

// Peer is another MDP the provider replicates registrations to. Both
// in-process providers and network clients implement it.
type Peer interface {
	ReplicateDocuments(docs []wire.Doc) error
	ReplicateDelete(uri string) error
}

// ApplyFunc receives one published changeset. seq is the changelog
// sequence number of the publish (0 on non-durable providers); reset marks
// a full-state changeset that replaces the subscriber's cached global
// metadata (see wire.ChangesetPush).
type ApplyFunc = func(seq uint64, reset bool, cs *core.Changeset) error

// Provider is one MDP node.
type Provider struct {
	name string
	// eng is the filter engine. It is an atomic pointer because a replica
	// installs a snapshot mid-life (InstallSnapshot swaps the whole engine
	// under pubMu) while read paths (Browse, queries, stats) run unlocked.
	eng atomic.Pointer[core.Engine]

	// replica marks a follower MDP: the engine is driven exclusively by
	// replicated changelog records (ApplyReplicated), write operations are
	// proxied to the primary (SetWriteProxy) or rejected, and nothing is
	// ever appended to the local log copy except verbatim primary records.
	// Atomic because failover flips it at runtime: Promote turns a replica
	// into the primary of a new epoch, and a resurrected stale primary
	// demotes itself on proof of a higher epoch.
	replica atomic.Bool

	// epoch is the replication term (see epoch.go). 1 from birth on durable
	// providers; raised by Promote and by observed higher epochs.
	epoch atomic.Uint64
	// fencedWrites counts requests rejected by the epoch fence; promotions
	// counts successful Promote calls on this node.
	fencedWrites atomic.Uint64
	promotions   atomic.Uint64
	// resyncPending marks a demoted ex-primary whose local log tail may
	// diverge from the new primary's history: the next bootstrap must force
	// a snapshot (and InstallSnapshot may rewind the log below its tail).
	resyncPending atomic.Bool

	// OnDemote, if set, is invoked (on its own goroutine) when the node
	// demotes itself after observing a higher epoch. The supervising
	// process uses it to start a follower pointed at the new primary. Set
	// before the provider is shared.
	OnDemote func(epoch uint64, primary string)

	mu sync.Mutex
	// advertise is the address this node tells peers to reach it at;
	// primaryHint/peersHint are a replica's last-known primary address and
	// candidate endpoints (set by the follower subsystem). All guarded by mu.
	advertise   string
	primaryHint string
	peersHint   []string
	// stopReplication, set by the follower subsystem, halts the replication
	// session (guarded by mu); Promote invokes it before fencing the flip.
	stopReplication func()
	// attached holds in-process delivery callbacks per subscriber;
	// wireAttach holds push connections of wire-attached subscribers.
	attached   map[string][]ApplyFunc
	wireAttach map[string][]*wire.ServerConn
	// delStats accumulates per-subscriber delivery health counters
	// (guarded by mu; entries outlive disconnects).
	delStats map[string]*subscriberCounters
	peers    []Peer
	// proxy forwards write operations of a replica to the primary
	// (guarded by mu; nil until the follower subsystem connects).
	proxy WriteProxy
	// followers holds per-follower replication stream state on a primary
	// (guarded by mu; entries outlive disconnects for lag visibility).
	followers map[string]*followerState
	// streamWG joins the per-follower streamer goroutines on Close.
	streamWG sync.WaitGroup
	// snapshotsShipped counts bootstrap snapshots served to followers.
	snapshotsShipped atomic.Uint64

	// dur holds the durable changelog state; nil for in-memory providers.
	dur *durableState

	// OnDeliveryError, if set, observes changeset delivery failures
	// (broken subscribers). Delivery failures never fail the registration
	// that produced the changeset: the metadata is committed either way,
	// and a crashed LMR re-subscribes to recover.
	OnDeliveryError func(subscriber string, err error)

	// pubMu imposes a total order on everything a subscriber observes:
	// registrations/deletions hold it across the engine run, the changelog
	// append, and the sequence assignment of the resulting changesets, and
	// Subscribe holds it across rule registration and the sequencing of the
	// initial cache fill. Delivery itself happens OUTSIDE pubMu: each
	// operation takes a delivery ticket while still holding the lock (so
	// ticket order equals publish order), releases pubMu, and then performs
	// its deliveries when the turnstile serves its ticket. The next
	// operation's filter run overlaps with this one's delivery fan-out,
	// while every subscriber still observes changesets in publish order.
	pubMu sync.Mutex
	// turn is the delivery turnstile sequencing the delivery stage.
	turn deliveryTurnstile
	// pubPending counts operations queued for or holding pubMu. The
	// changelog's group-commit leader reads it (via DurableOptions' busy
	// hook) to decide whether delaying its fsync would let more operations
	// share it.
	pubPending atomic.Int32

	// encodeSavedBytes counts the wire bytes the encode-once fan-out
	// avoided re-marshaling: frame length times (member connections - 1),
	// summed over group deliveries.
	encodeSavedBytes atomic.Uint64
	// replayCoalescedRecords/Batches count resume replay records folded
	// into batched pushes and the batches emitted.
	replayCoalescedRecords atomic.Uint64
	replayCoalescedBatches atomic.Uint64

	// met/reg hold the opt-in observability hooks (see EnableMetrics);
	// nil until enabled.
	met atomic.Pointer[provMetrics]
	reg atomic.Pointer[metrics.Registry]

	server *wire.Server
}

// lockPub acquires the publish order lock, counting this operation as
// commit-pressure for the group-commit window while it waits and runs.
func (p *Provider) lockPub() {
	p.pubPending.Add(1)
	p.pubMu.Lock()
}

// unlockPub releases the publish order lock. The caller has finished its
// changelog appends, so it no longer counts as pending commit work.
func (p *Provider) unlockPub() {
	p.pubMu.Unlock()
	p.pubPending.Add(-1)
}

// deliveryTurnstile hands the publish order over to the delivery stage.
// Tickets are issued under pubMu, so ticket order equals publish order;
// holders then deliver outside the lock, one at a time, in ticket order.
type deliveryTurnstile struct {
	mu    sync.Mutex
	cond  *sync.Cond
	next  uint64 // next ticket to issue
	serve uint64 // ticket currently allowed to deliver
}

// ticket issues the next delivery ticket. Call while holding pubMu.
func (t *deliveryTurnstile) ticket() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	t.next++
	return n
}

// wait blocks until ticket n is served.
func (t *deliveryTurnstile) wait(n uint64) {
	t.mu.Lock()
	for t.serve != n {
		t.cond.Wait()
	}
	t.mu.Unlock()
}

// done passes the turn to the next ticket.
func (t *deliveryTurnstile) done() {
	t.mu.Lock()
	t.serve++
	t.cond.Broadcast()
	t.mu.Unlock()
}

// delivery is one changeset delivery collected under pubMu and performed
// by the delivery stage: one changeset (or one coalesced replay batch)
// addressed to every member of an interest group.
type delivery struct {
	// subs are the receiving subscribers — one interest group. Group
	// members share the changeset and its sequence.
	subs  []string
	seq   uint64
	reset bool
	cs    *core.Changeset
	sync  bool
	// pubNano is the publish-time wall clock carried on live pushes for the
	// receiver's end-to-end propagation-lag histogram; 0 on resume replays.
	pubNano int64
	// batch, when non-nil, carries coalesced replay pushes in ascending
	// sequence order instead of cs; seq is the last element's sequence.
	batch []wire.ChangesetPush
}

// deliverInTurn waits for the operation's turn at the delivery stage,
// performs its deliveries in order, and passes the turn on. The ticket
// must have been issued while the operation still held pubMu.
func (p *Provider) deliverInTurn(t uint64, dels []delivery) {
	m := p.met.Load()
	var t0 time.Time
	if m != nil {
		t0 = time.Now()
	}
	p.turn.wait(t)
	defer p.turn.done()
	if m != nil {
		m.turnWait.ObserveSince(t0)
		t0 = time.Now()
	}
	for _, d := range dels {
		p.deliver(d)
	}
	if m != nil && len(dels) > 0 {
		m.fanout.ObserveSince(t0)
	}
}

// unlockPubAndDeliver releases the publish lock and performs the collected
// deliveries in publish order. Deliveries stay synchronous from the
// caller's point of view — the operation returns only after its changesets
// reached every attached channel — but they no longer hold pubMu, so the
// next operation's filter run proceeds concurrently.
func (p *Provider) unlockPubAndDeliver(dels []delivery) {
	t := p.turn.ticket()
	p.unlockPub()
	p.deliverInTurn(t, dels)
}

// New creates an MDP with a fresh filter engine.
func New(name string, schema *rdf.Schema) (*Provider, error) {
	return NewWithOptions(name, schema, core.Options{})
}

// NewWithOptions creates an MDP with explicit engine options.
func NewWithOptions(name string, schema *rdf.Schema, opts core.Options) (*Provider, error) {
	engine, err := core.NewEngineWithOptions(schema, opts)
	if err != nil {
		return nil, err
	}
	return NewFromEngine(name, engine), nil
}

// NewFromEngine wraps an existing engine (e.g. one restored from a
// snapshot via core.Load) as a provider.
func NewFromEngine(name string, engine *core.Engine) *Provider {
	p := &Provider{
		name:       name,
		attached:   map[string][]ApplyFunc{},
		wireAttach: map[string][]*wire.ServerConn{},
		delStats:   map[string]*subscriberCounters{},
		followers:  map[string]*followerState{},
	}
	p.eng.Store(engine)
	p.epoch.Store(1)
	p.turn.cond = sync.NewCond(&p.turn.mu)
	return p
}

// subscriberCounters are one subscriber's cumulative delivery health
// numbers (guarded by Provider.mu).
type subscriberCounters struct {
	enqueued    uint64 // changesets handed to a push queue
	dropped     uint64 // changesets lost to queue-overflow disconnects
	disconnects uint64 // push-channel losses, any cause
	lastSeq     uint64 // last published changelog sequence
}

func (p *Provider) countersLocked(subscriber string) *subscriberCounters {
	c := p.delStats[subscriber]
	if c == nil {
		c = &subscriberCounters{}
		p.delStats[subscriber] = c
	}
	return c
}

// SaveSnapshot writes the provider's full engine state. Registrations are
// quiesced for the duration (the engine serializes with its own lock).
func (p *Provider) SaveSnapshot(w io.Writer) error {
	return p.Engine().Save(w)
}

// Name returns the provider's name.
func (p *Provider) Name() string { return p.name }

// Engine exposes the filter engine (tests, benchmarks).
func (p *Provider) Engine() *core.Engine { return p.eng.Load() }

// Replica reports whether this provider is a follower MDP.
func (p *Provider) Replica() bool { return p.replica.Load() }

// Role returns "replica" on a follower and "primary" otherwise.
func (p *Provider) Role() string {
	if p.replica.Load() {
		return "replica"
	}
	return "primary"
}

// AddPeer registers a backbone peer for replication.
func (p *Provider) AddPeer(peer Peer) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.peers = append(p.peers, peer)
}

// Attach registers a delivery callback for a subscriber. Every published
// changeset addressed to that subscriber is passed to apply. In-process
// LMRs attach a direct function; the wire server attaches a push wrapper.
func (p *Provider) Attach(subscriber string, apply ApplyFunc) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.attached[subscriber] = append(p.attached[subscriber], apply)
	return nil
}

// Detach removes all delivery callbacks of a subscriber.
func (p *Provider) Detach(subscriber string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.attached, subscriber)
	delete(p.wireAttach, subscriber)
}

// attachWire registers a wire connection as a subscriber's push channel.
func (p *Provider) attachWire(subscriber string, conn *wire.ServerConn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.wireAttach[subscriber] = append(p.wireAttach[subscriber], conn)
}

// publishLocked sequences a publish set: on a durable provider, every
// changeset is appended to the changelog as a publish record and the
// delivered-watermark is claimed over its sequence. The caller must hold
// pubMu. The collected deliveries are returned for the delivery stage (see
// unlockPubAndDeliver) — nothing is handed to a subscriber here, so the
// claim-before-handoff invariant holds: by the time a delivery leaves this
// operation's turnstile turn, its sequence is durably claimed. The
// returned sequence is the highest one appended (0 otherwise), which the
// caller passes to WaitDurable before acknowledging the operation. On a
// mid-batch error the deliveries collected so far are still returned; the
// caller delivers them (their publish records exist) and then fails.
func (p *Provider) publishLocked(ps *core.PublishSet) (uint64, []delivery, error) {
	if ps == nil {
		return 0, nil, nil
	}
	var maxSeq uint64
	var dels []delivery
	pubNano := time.Now().UnixNano()
	// One record, one sequence, one delivery per interest group — the
	// lock-held append cost and the fsynced bytes scale with distinct
	// groups, not subscribers. Group order is deterministic (sorted by
	// first member), so publish records replay in a stable order across
	// recovery runs.
	groups := ps.GroupList()
	for _, g := range groups {
		var seq uint64
		if p.dur != nil {
			var err error
			seq, err = p.appendPubLocked(g.Members, g.Changeset)
			if err != nil {
				return maxSeq, dels, err
			}
			maxSeq = seq
			// The push reaches the subscriber before this operation's
			// group-commit fsync returns, so the delivered-watermark must
			// durably cover its sequence first (no-op within a claimed chunk).
			if err := p.claimDeliveredLocked(seq); err != nil {
				return maxSeq, dels, err
			}
		}
		dels = append(dels, delivery{subs: g.Members, seq: seq, cs: g.Changeset, pubNano: pubNano})
	}
	if m := p.met.Load(); m != nil && len(groups) > 0 {
		m.groupsPerPublish.Observe(float64(len(groups)))
	}
	return maxSeq, dels, nil
}

// deliver pushes one changeset to every attached channel of the
// subscriber. Callers run on the delivery stage (deliverInTurn), which
// serializes deliveries in publish order without holding pubMu. Wire
// delivery is asynchronous: the changeset is queued on the connection's
// bounded outbound queue and a writer goroutine drains it, so the publish
// path never blocks on a peer's TCP window. With sync false (live
// publishes) a full queue means a slow subscriber: the connection is
// dropped and the changeset with it — the subscriber reconnects and
// resumes gap-free from its changelog cursor. With sync true (resume
// replays, which can exceed any queue bound while the receiver is actively
// draining) the enqueue blocks instead.
func (p *Provider) deliver(d delivery) {
	type fnTarget struct {
		subscriber string
		fn         ApplyFunc
	}
	type connTarget struct {
		subscriber string
		conn       *wire.ServerConn
	}
	var fns []fnTarget
	var conns []connTarget
	p.mu.Lock()
	for _, subscriber := range d.subs {
		for _, fn := range p.attached[subscriber] {
			fns = append(fns, fnTarget{subscriber, fn})
		}
		for _, c := range p.wireAttach[subscriber] {
			conns = append(conns, connTarget{subscriber, c})
		}
		counters := p.countersLocked(subscriber)
		if d.seq > counters.lastSeq {
			counters.lastSeq = d.seq
		}
	}
	p.mu.Unlock()
	report := func(subscriber string, err error) {
		if err != nil && p.OnDeliveryError != nil {
			p.OnDeliveryError(subscriber, err)
		}
	}
	for _, t := range fns {
		if d.batch != nil {
			for i := range d.batch {
				b := &d.batch[i]
				report(t.subscriber, t.fn(b.Seq, b.Reset, b.Changeset))
			}
		} else {
			report(t.subscriber, t.fn(d.seq, d.reset, d.cs))
		}
	}
	if len(conns) == 0 {
		return
	}
	// Encode the push frame once; every member connection enqueues the
	// same buffer (the group shares one sequence, so frames need no
	// per-member stamping).
	kind := wire.KindChangeset
	var body interface{} = &wire.ChangesetPush{Seq: d.seq, Reset: d.reset, Changeset: d.cs, PubUnixNano: d.pubNano}
	if d.batch != nil {
		kind = wire.KindChangesetBatch
		body = &wire.ChangesetBatchPush{Pushes: d.batch}
	}
	payload, err := json.Marshal(body)
	var frame []byte
	if err == nil {
		frame, err = wire.EncodeMessage(&wire.Message{ID: 0, Kind: kind, Body: payload})
	}
	if err != nil {
		for _, t := range conns {
			report(t.subscriber, err)
		}
		return
	}
	if len(conns) > 1 {
		p.encodeSavedBytes.Add(uint64(len(frame)) * uint64(len(conns)-1))
	}
	// Changesets handed to a queue per push: batches count each element.
	perPush := uint64(1)
	if d.batch != nil {
		perPush = uint64(len(d.batch))
	}
	// Counter updates accumulate locally and land under ONE p.mu
	// acquisition, instead of re-locking per connection.
	enqueued := map[string]uint64{}
	dropped := map[string]uint64{}
	for _, t := range conns {
		var err error
		if d.sync {
			err = t.conn.NotifySyncEncoded(frame)
		} else {
			err = t.conn.NotifyEncoded(frame)
		}
		if err != nil {
			p.detachConn(t.subscriber, t.conn)
			if errors.Is(err, wire.ErrSlowSubscriber) {
				dropped[t.subscriber] += perPush
			}
		} else {
			enqueued[t.subscriber] += perPush
		}
		report(t.subscriber, err)
	}
	if len(enqueued) > 0 || len(dropped) > 0 {
		p.mu.Lock()
		for subscriber, n := range enqueued {
			p.countersLocked(subscriber).enqueued += n
		}
		for subscriber, n := range dropped {
			p.countersLocked(subscriber).dropped += n
		}
		p.mu.Unlock()
	}
}

// RegisterDocument registers one document. See RegisterDocuments.
func (p *Provider) RegisterDocument(doc *rdf.Document) error {
	return p.RegisterDocuments([]*rdf.Document{doc})
}

// RegisterDocuments registers a batch: runs the filter, publishes the
// resulting changesets, and replicates the batch to backbone peers.
func (p *Provider) RegisterDocuments(docs []*rdf.Document) error {
	return p.registerDocuments(docs, false)
}

// ReplicateDocuments applies a batch forwarded by a backbone peer (not
// forwarded again; the backbone is a full mesh).
func (p *Provider) ReplicateDocuments(wdocs []wire.Doc) error {
	docs, err := decodeDocs(wdocs)
	if err != nil {
		return err
	}
	return p.registerDocuments(docs, true)
}

func (p *Provider) registerDocuments(docs []*rdf.Document, replicated bool) error {
	if p.replica.Load() {
		// A follower's engine is driven exclusively by the replicated
		// changelog; the write goes to the primary and comes back as
		// streamed records.
		w, err := p.writeProxy()
		if err != nil {
			return err
		}
		return w.RegisterDocuments(docs)
	}
	p.lockPub()
	durSeq, err := p.logOpLocked(&logRecord{Kind: recRegister, Docs: encodeDocs(docs)})
	if err != nil {
		p.unlockPub()
		return err
	}
	ps, err := p.Engine().RegisterDocuments(docs)
	if err != nil {
		p.unlockPub()
		return err
	}
	pubSeq, dels, pubErr := p.publishLocked(ps)
	p.unlockPubAndDeliver(dels)
	if pubSeq > durSeq {
		durSeq = pubSeq
	}
	if pubErr != nil {
		return pubErr
	}
	if err := p.awaitDurable(durSeq); err != nil {
		return err
	}
	if replicated {
		return nil
	}
	return p.forEachPeer(func(peer Peer) error {
		return peer.ReplicateDocuments(encodeDocs(docs))
	})
}

// DeleteDocument removes a document, publishes, and replicates the delete.
func (p *Provider) DeleteDocument(uri string) error {
	return p.deleteDocument(uri, false)
}

// ReplicateDelete applies a peer-forwarded document deletion.
func (p *Provider) ReplicateDelete(uri string) error {
	return p.deleteDocument(uri, true)
}

func (p *Provider) deleteDocument(uri string, replicated bool) error {
	if p.replica.Load() {
		w, err := p.writeProxy()
		if err != nil {
			return err
		}
		return w.DeleteDocument(uri)
	}
	p.lockPub()
	durSeq, err := p.logOpLocked(&logRecord{Kind: recDelete, URI: uri})
	if err != nil {
		p.unlockPub()
		return err
	}
	ps, err := p.Engine().DeleteDocument(uri)
	if err != nil {
		p.unlockPub()
		return err
	}
	pubSeq, dels, pubErr := p.publishLocked(ps)
	p.unlockPubAndDeliver(dels)
	if pubSeq > durSeq {
		durSeq = pubSeq
	}
	if pubErr != nil {
		return pubErr
	}
	if err := p.awaitDurable(durSeq); err != nil {
		return err
	}
	if replicated {
		return nil
	}
	return p.forEachPeer(func(peer Peer) error {
		return peer.ReplicateDelete(uri)
	})
}

func (p *Provider) forEachPeer(fn func(Peer) error) error {
	p.mu.Lock()
	peers := append([]Peer(nil), p.peers...)
	p.mu.Unlock()
	var errs []string
	for _, peer := range peers {
		if err := fn(peer); err != nil {
			errs = append(errs, err.Error())
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("provider: replication: %s", strings.Join(errs, "; "))
	}
	return nil
}

// Subscribe registers a subscription and returns its id and the initial
// cache fill. If the subscriber has attached delivery channels, the initial
// fill is additionally delivered through them, in order with all other
// published changesets; attached callers (LMR nodes) must therefore NOT
// apply the returned changeset themselves.
func (p *Provider) Subscribe(subscriber, rule string) (int64, *core.Changeset, error) {
	if p.replica.Load() {
		// Proxied to the primary: the subscription is logged there and
		// comes back through the stream, so this follower's engine (and
		// every other replica's) registers it too. The initial fill is
		// delivered to the subscriber's channels attached HERE when the
		// replicated publish record arrives; the returned changeset must
		// not be applied by attached callers, exactly as on a primary.
		w, err := p.writeProxy()
		if err != nil {
			return 0, nil, err
		}
		return w.Subscribe(subscriber, rule)
	}
	p.lockPub()
	durSeq, err := p.logOpLocked(&logRecord{Kind: recSubscribe, Subscriber: subscriber, Rule: rule})
	if err != nil {
		p.unlockPub()
		return 0, nil, err
	}
	subID, initial, err := p.Engine().Subscribe(subscriber, rule)
	if err != nil {
		p.unlockPub()
		return 0, nil, err
	}
	var dels []delivery
	if initial != nil && !initial.Empty() {
		ps := core.NewSingleSubscriberSet(subscriber, initial)
		var pubSeq uint64
		var pubErr error
		pubSeq, dels, pubErr = p.publishLocked(ps)
		if pubSeq > durSeq {
			durSeq = pubSeq
		}
		if pubErr != nil {
			p.unlockPubAndDeliver(dels)
			return 0, nil, pubErr
		}
	}
	p.unlockPubAndDeliver(dels)
	if err := p.awaitDurable(durSeq); err != nil {
		return 0, nil, err
	}
	return subID, initial, nil
}

// Unsubscribe removes a subscription. It participates in the publish order
// (and the changelog, on durable providers) like every other input
// operation.
func (p *Provider) Unsubscribe(subID int64) error {
	if p.replica.Load() {
		w, err := p.writeProxy()
		if err != nil {
			return err
		}
		return w.Unsubscribe(subID)
	}
	p.lockPub()
	durSeq, err := p.logOpLocked(&logRecord{Kind: recUnsubscribe, SubID: subID})
	if err != nil {
		p.unlockPub()
		return err
	}
	err = p.Engine().Unsubscribe(subID)
	p.unlockPub()
	if err != nil {
		return err
	}
	return p.awaitDurable(durSeq)
}

// Browse lists resources of a class (paper §2.2's user browsing at an MDP).
func (p *Provider) Browse(class, contains string) ([]*rdf.Resource, error) {
	return p.Engine().Browse(class, contains)
}

// GetDocument returns a registered document.
func (p *Provider) GetDocument(uri string) (*rdf.Document, error) {
	return p.Engine().StoredDocument(uri)
}

// RegisterNamedRule stores a rule usable as a search extension. On a
// durable provider it is logged like every other input operation, so it
// survives restarts and replicates to followers.
func (p *Provider) RegisterNamedRule(name, rule string) error {
	if p.replica.Load() {
		w, err := p.writeProxy()
		if err != nil {
			return err
		}
		return w.RegisterNamedRule(name, rule)
	}
	p.lockPub()
	durSeq, err := p.logOpLocked(&logRecord{Kind: recNamedRule, Name: name, Rule: rule})
	if err != nil {
		p.unlockPub()
		return err
	}
	err = p.Engine().RegisterNamedRule(name, rule)
	p.unlockPub()
	if err != nil {
		return err
	}
	return p.awaitDurable(durSeq)
}

func encodeDocs(docs []*rdf.Document) []wire.Doc {
	out := make([]wire.Doc, len(docs))
	for i, d := range docs {
		out[i] = wire.Doc{URI: d.URI, XML: rdf.DocumentString(d)}
	}
	return out
}

func decodeDocs(wdocs []wire.Doc) ([]*rdf.Document, error) {
	docs := make([]*rdf.Document, len(wdocs))
	for i, wd := range wdocs {
		d, err := rdf.ParseDocumentString(wd.URI, wd.XML)
		if err != nil {
			return nil, err
		}
		docs[i] = d
	}
	return docs, nil
}

// Serve starts the provider's wire server on addr ("host:0" for an
// ephemeral port) with a zero wire.Config. The returned address is the
// actual listen address.
func (p *Provider) Serve(addr string) (string, error) {
	return p.ServeConfig(addr, wire.Config{})
}

// ServeConfig starts the provider's wire server with explicit
// fault-tolerance settings (heartbeats, I/O deadlines, per-subscriber
// send-queue bounds).
func (p *Provider) ServeConfig(addr string, cfg wire.Config) (string, error) {
	if cfg.EpochFn == nil {
		cfg.EpochFn = p.Epoch
	}
	srv, err := wire.NewServerConfig(addr, p.handle, cfg)
	if err != nil {
		return "", err
	}
	srv.OnDisconnect = func(conn *wire.ServerConn) {
		switch tag := conn.Tag.Load().(type) {
		case string:
			if tag != "" {
				p.detachConn(tag, conn)
			}
		case followerTag:
			p.followerDisconnected(string(tag), conn)
		}
	}
	p.mu.Lock()
	p.server = srv
	if p.advertise == "" {
		p.advertise = srv.Addr()
	}
	p.mu.Unlock()
	return srv.Addr(), nil
}

// SetAdvertiseAddr sets the address this node reports as its own in
// topology responses (useful when the listen address is not the one peers
// should dial). Defaults to the wire server's listen address.
func (p *Provider) SetAdvertiseAddr(addr string) {
	p.mu.Lock()
	p.advertise = addr
	p.mu.Unlock()
}

// Close stops the wire server, if running, and closes the changelog of a
// durable provider (flushing and fsyncing its tail).
func (p *Provider) Close() error {
	p.mu.Lock()
	srv := p.server
	p.server = nil
	// Closing the follower readers (and, below, the server's connections
	// and the log) unblocks every streamer goroutine wherever it waits.
	for _, fs := range p.followers {
		if fs.reader != nil {
			fs.reader.Close()
		}
	}
	p.mu.Unlock()
	var err error
	if srv != nil {
		err = srv.Close()
	}
	if p.dur != nil {
		if cerr := p.dur.log.Close(); err == nil {
			err = cerr
		}
	}
	p.streamWG.Wait()
	return err
}

// detachConn drops a disconnected push channel, counting the loss once
// (detachConn is reached both from failed deliveries and from the wire
// server's disconnect callback; only the call that actually removes the
// conn counts).
func (p *Provider) detachConn(subscriber string, conn *wire.ServerConn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	list := p.wireAttach[subscriber]
	for i, c := range list {
		if c == conn {
			p.wireAttach[subscriber] = append(list[:i], list[i+1:]...)
			p.countersLocked(subscriber).disconnects++
			break
		}
	}
	if len(p.wireAttach[subscriber]) == 0 {
		delete(p.wireAttach, subscriber)
	}
}

// DeliveryStats reports per-subscriber delivery health: live push
// connections with their queue occupancy, cumulative enqueue/drop/
// disconnect counters, heartbeat RTT, and the publish-vs-ack lag that a
// durable changelog tracks.
func (p *Provider) DeliveryStats() *wire.DeliveryStatsResponse {
	p.mu.Lock()
	defer p.mu.Unlock()
	names := make(map[string]bool, len(p.delStats)+len(p.wireAttach))
	for name := range p.delStats {
		names[name] = true
	}
	for name := range p.wireAttach {
		names[name] = true
	}
	resp := &wire.DeliveryStatsResponse{Role: p.Role(), Epoch: p.Epoch()}
	if p.dur != nil {
		resp.LogSeq = p.dur.log.LastSeq()
	}
	for name, fs := range p.followers {
		fd := wire.FollowerDelivery{
			Follower:    name,
			StreamedSeq: fs.streamed.Load(),
			AckedSeq:    fs.acked,
			Connected:   fs.connected,
		}
		if resp.LogSeq > fd.AckedSeq {
			fd.LagSeqs = resp.LogSeq - fd.AckedSeq
		}
		resp.Followers = append(resp.Followers, fd)
	}
	sort.Slice(resp.Followers, func(i, j int) bool {
		return resp.Followers[i].Follower < resp.Followers[j].Follower
	})
	for name := range names {
		counters := p.countersLocked(name)
		sd := wire.SubscriberDelivery{
			Subscriber:   name,
			Enqueued:     counters.enqueued,
			Dropped:      counters.dropped,
			Disconnects:  counters.disconnects,
			PublishedSeq: counters.lastSeq,
		}
		if p.dur != nil {
			sd.AckedSeq = p.dur.acked[name]
			if sd.PublishedSeq > sd.AckedSeq {
				sd.Lag = sd.PublishedSeq - sd.AckedSeq
			}
		}
		for i, c := range p.wireAttach[name] {
			sd.Conns++
			sd.QueueDepth += c.QueueDepth()
			sd.QueueCap += c.QueueCap()
			if rtt := c.RTT().Microseconds(); rtt > sd.RTTMicros {
				sd.RTTMicros = rtt
			}
			if idle := c.IdleFor().Milliseconds(); i == 0 || idle < sd.IdleMillis {
				sd.IdleMillis = idle
			}
		}
		resp.Subscribers = append(resp.Subscribers, sd)
	}
	sort.Slice(resp.Subscribers, func(i, j int) bool {
		return resp.Subscribers[i].Subscriber < resp.Subscribers[j].Subscriber
	})
	return resp
}

func (p *Provider) handle(conn *wire.ServerConn, kind string, body json.RawMessage) (interface{}, error) {
	switch kind {
	case wire.KindRegisterDocuments:
		var req wire.RegisterDocumentsRequest
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		if err := p.fenceWrite(req.Epoch); err != nil {
			return nil, err
		}
		docs, err := decodeDocs(req.Docs)
		if err != nil {
			return nil, err
		}
		return nil, p.registerDocuments(docs, req.Replicated)
	case wire.KindReplicate:
		var req wire.RegisterDocumentsRequest
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		return nil, p.ReplicateDocuments(req.Docs)
	case wire.KindDeleteDocument:
		var req wire.DeleteDocumentRequest
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		if err := p.fenceWrite(req.Epoch); err != nil {
			return nil, err
		}
		return nil, p.deleteDocument(req.URI, req.Replicated)
	case wire.KindReplicateDelete:
		var req wire.DeleteDocumentRequest
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		return nil, p.ReplicateDelete(req.URI)
	case wire.KindSubscribe:
		var req wire.SubscribeRequest
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		if err := p.fenceWrite(req.Epoch); err != nil {
			return nil, err
		}
		id, initial, err := p.Subscribe(req.Subscriber, req.Rule)
		if err != nil {
			return nil, err
		}
		return &wire.SubscribeResponse{SubID: id, Initial: initial}, nil
	case wire.KindUnsubscribe:
		var req wire.UnsubscribeRequest
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		if err := p.fenceWrite(req.Epoch); err != nil {
			return nil, err
		}
		return nil, p.Unsubscribe(req.SubID)
	case wire.KindBrowse:
		var req wire.BrowseRequest
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		rs, err := p.Browse(req.Class, req.Contains)
		if err != nil {
			return nil, err
		}
		return &wire.ResourcesResponse{Resources: rs}, nil
	case wire.KindGetDocument:
		var req wire.GetDocumentRequest
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		doc, err := p.GetDocument(req.URI)
		if err != nil {
			return nil, err
		}
		return &wire.Doc{URI: doc.URI, XML: rdf.DocumentString(doc)}, nil
	case wire.KindAttach:
		var req wire.AttachRequest
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		if req.Subscriber == "" {
			return nil, fmt.Errorf("provider: attach requires a subscriber name")
		}
		conn.Tag.Store(req.Subscriber)
		p.attachWire(req.Subscriber, conn)
		return nil, nil
	case wire.KindResume:
		var req wire.ResumeRequest
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		if req.Subscriber == "" {
			return nil, fmt.Errorf("provider: resume requires a subscriber name")
		}
		latest, err := p.Resume(req.Subscriber, req.FromSeq)
		if err != nil {
			return nil, err
		}
		return &wire.ResumeResponse{LatestSeq: latest}, nil
	case wire.KindAck:
		var req wire.AckRequest
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		return nil, p.Ack(req.Subscriber, req.Seq)
	case wire.KindNamedRule:
		var req wire.NamedRuleRequest
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		if err := p.fenceWrite(req.Epoch); err != nil {
			return nil, err
		}
		return nil, p.RegisterNamedRule(req.Name, req.Rule)
	case wire.KindReplSnapshot:
		var req wire.ReplSnapshotRequest
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		return p.handleReplSnapshot(conn, &req)
	case wire.KindReplStream:
		var req wire.ReplStreamRequest
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		return p.handleReplStream(conn, &req)
	case wire.KindReplAck:
		var req wire.ReplAckRequest
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		return nil, p.handleReplAck(&req)
	case wire.KindPromote:
		epoch, err := p.Promote()
		if err != nil {
			return nil, err
		}
		return &wire.PromoteResponse{Epoch: epoch}, nil
	case wire.KindTopology:
		return p.Topology(), nil
	case wire.KindEpochAnnounce:
		var req wire.EpochAnnounceRequest
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		p.ObserveEpoch(req.Epoch, req.Primary)
		return &wire.EpochAnnounceResponse{Epoch: p.Epoch()}, nil
	case wire.KindStats:
		return p.Engine().Stats(), nil
	case wire.KindDeliveryStats:
		return p.DeliveryStats(), nil
	case wire.KindMetrics:
		var text string
		if reg := p.reg.Load(); reg != nil {
			text = reg.Text()
		}
		return &wire.MetricsResponse{Text: text}, nil
	default:
		return nil, fmt.Errorf("provider: unknown request kind %q", kind)
	}
}
