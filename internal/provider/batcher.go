package provider

import (
	"fmt"
	"sync"
	"time"

	"mdv/internal/rdf"
)

// Batcher queues document registrations and flushes them through the
// filter in batches. This is the deployment policy the paper's experiments
// inform (§4: "The results are important to decide if the filter should be
// started either when a new document is registered or periodically, to
// process several documents in one batch"): for OID/PATH/JOIN-style rule
// bases large batches amortize the per-run overhead, while COMP-style
// bases favor small batches.
//
// A batch flushes when it reaches MaxBatch documents or when MaxDelay has
// passed since its first document, whichever comes first.
type Batcher struct {
	provider *Provider
	maxBatch int
	maxDelay time.Duration

	mu      sync.Mutex
	pending []*rdf.Document
	// pendingByURI collapses re-registrations of a queued document so a
	// batch never contains the same URI twice (the engine rejects that).
	pendingByURI map[string]int
	timer        *time.Timer
	closed       bool
	flushErr     error

	// OnFlush, if set, observes every flush result (size, duration, error).
	OnFlush func(batch int, took time.Duration, err error)
}

// NewBatcher creates a batching registrar in front of a provider.
// maxBatch <= 0 defaults to 64; maxDelay <= 0 defaults to 100ms.
func NewBatcher(p *Provider, maxBatch int, maxDelay time.Duration) *Batcher {
	if maxBatch <= 0 {
		maxBatch = 64
	}
	if maxDelay <= 0 {
		maxDelay = 100 * time.Millisecond
	}
	return &Batcher{
		provider:     p,
		maxBatch:     maxBatch,
		maxDelay:     maxDelay,
		pendingByURI: map[string]int{},
	}
}

// Register queues a document. It returns immediately; the document is
// filtered and published with its batch. A queued document re-registered
// before the flush is replaced by the newer version.
func (b *Batcher) Register(doc *rdf.Document) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return fmt.Errorf("provider: batcher is closed")
	}
	if b.flushErr != nil {
		err := b.flushErr
		b.flushErr = nil
		return fmt.Errorf("provider: previous batch flush failed: %w", err)
	}
	if i, dup := b.pendingByURI[doc.URI]; dup {
		b.pending[i] = doc
		return nil
	}
	b.pendingByURI[doc.URI] = len(b.pending)
	b.pending = append(b.pending, doc)
	if len(b.pending) >= b.maxBatch {
		b.flushLocked()
		return nil
	}
	if b.timer == nil {
		b.timer = time.AfterFunc(b.maxDelay, func() {
			b.mu.Lock()
			defer b.mu.Unlock()
			b.flushLocked()
		})
	}
	return nil
}

// Flush synchronously registers everything queued.
func (b *Batcher) Flush() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.flushLocked()
	err := b.flushErr
	b.flushErr = nil
	return err
}

// Close flushes and rejects further registrations.
func (b *Batcher) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	b.flushLocked()
	err := b.flushErr
	b.flushErr = nil
	return err
}

// Pending returns the number of queued documents.
func (b *Batcher) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.pending)
}

// flushLocked runs the queued batch through the provider. The caller holds
// b.mu; the registration itself must run without it so concurrent
// Registers merely queue behind the provider's own serialization — but
// dropping the lock would reorder batches, so we accept holding it: the
// batch is swapped out first, keeping the critical section correct.
func (b *Batcher) flushLocked() {
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	if len(b.pending) == 0 {
		return
	}
	batch := b.pending
	b.pending = nil
	b.pendingByURI = map[string]int{}
	t0 := time.Now()
	err := b.provider.RegisterDocuments(batch)
	if err != nil {
		b.flushErr = err
	}
	if b.OnFlush != nil {
		b.OnFlush(len(batch), time.Since(t0), err)
	}
}
