package provider

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// shipLog feeds every primary changelog record past the replica's tail
// into ApplyReplicated, the way the follower subsystem's stream does.
func shipLog(t *testing.T, primary, replica *Provider) {
	t.Helper()
	r := primary.dur.log.NewReader(replica.LogSeq() + 1)
	defer r.Close()
	last := primary.dur.log.LastSeq()
	for replica.LogSeq() < last {
		seq, payload, err := r.Next()
		if err != nil {
			t.Fatalf("read primary log: %v", err)
		}
		if err := replica.ApplyReplicated(seq, payload, time.Now().UnixNano()); err != nil {
			t.Fatalf("apply record %d: %v", seq, err)
		}
	}
	// ApplyReplicated does not await durability; the follower's ack loop
	// batches the fsync. Stand in for it so tailing readers see the tail.
	if err := replica.dur.log.Sync(); err != nil {
		t.Fatal(err)
	}
}

// TestApplyReplicatedMirrorsPrimary: streaming the primary's changelog
// through ApplyReplicated reproduces its engine state, its subscriptions,
// and its publishes (delivered to subscribers attached at the replica),
// and the replica's log copy is verbatim.
func TestApplyReplicatedMirrorsPrimary(t *testing.T) {
	primary, err := OpenDurable("primary", batcherSchema(), t.TempDir(), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	replicaDir := t.TempDir()
	replica, err := OpenDurable("replica", batcherSchema(), replicaDir, DurableOptions{Replica: true})
	if err != nil {
		t.Fatal(err)
	}
	if !replica.Replica() || replica.Role() != "replica" {
		t.Fatalf("Replica() = %v, Role() = %q", replica.Replica(), replica.Role())
	}
	var c collector
	replica.Attach("lmr", c.apply)

	if _, _, err := primary.Subscribe("lmr", durRule); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := primary.RegisterDocument(batcherDoc(i, 80)); err != nil {
			t.Fatal(err)
		}
	}
	if err := primary.DeleteDocument("b0.rdf"); err != nil {
		t.Fatal(err)
	}
	if err := primary.RegisterNamedRule("ports", durRule); err != nil {
		t.Fatal(err)
	}
	shipLog(t, primary, replica)

	if got, want := replica.LogSeq(), primary.LogSeq(); got != want {
		t.Errorf("replica log seq = %d, want %d", got, want)
	}
	if got, want := replica.Engine().ResourceCount(), primary.Engine().ResourceCount(); got != want {
		t.Errorf("replica resources = %d, want %d", got, want)
	}
	subs, err := replica.Engine().Subscriptions()
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 1 || subs[0].Subscriber != "lmr" {
		t.Errorf("replica subscriptions = %+v", subs)
	}
	// The primary published 7 changesets to lmr (initial fill is empty —
	// no docs yet — so: 5 registers + 1 delete); the replica re-delivered
	// each from the streamed publish records.
	if c.count() != 6 {
		t.Errorf("replica deliveries = %d, want 6", c.count())
	}

	// The log copy is verbatim: identical records at identical sequences.
	pr := primary.dur.log.NewReader(1)
	rr := replica.dur.log.NewReader(1)
	for i := uint64(0); i < primary.LogSeq(); i++ {
		ps, pp, perr := pr.Next()
		if perr != nil {
			break
		}
		rs, rp, rerr := rr.Next()
		if rerr != nil {
			t.Fatalf("replica log ends early: %v", rerr)
		}
		if ps != rs || !bytes.Equal(pp, rp) {
			t.Fatalf("log diverges at seq %d/%d", ps, rs)
		}
		if ps == primary.LogSeq() {
			break
		}
	}
	pr.Close()
	rr.Close()

	// Duplicate records (a resumed stream overlaps) are skipped.
	dup := primary.dur.log.NewReader(1)
	seq, payload, err := dup.Next()
	dup.Close()
	if err != nil {
		t.Fatal(err)
	}
	before := replica.LogSeq()
	if err := replica.ApplyReplicated(seq, payload, 0); err != nil {
		t.Fatal(err)
	}
	if replica.LogSeq() != before {
		t.Error("duplicate record extended the replica log")
	}

	// Writes on the replica are refused without a proxy, proxied with one.
	if err := replica.RegisterDocument(batcherDoc(50, 80)); !errors.Is(err, ErrNotPrimary) {
		t.Errorf("replica write without proxy: err = %v, want ErrNotPrimary", err)
	}
	replica.SetWriteProxy(primary)
	if err := replica.RegisterDocument(batcherDoc(50, 80)); err != nil {
		t.Fatal(err)
	}
	shipLog(t, primary, replica)
	if got, want := replica.Engine().ResourceCount(), primary.Engine().ResourceCount(); got != want {
		t.Errorf("after proxied write: replica resources = %d, want %d", got, want)
	}

	// Restart: the replica recovers from its own log copy, appending
	// nothing, and continues from the same tail.
	tail := replica.LogSeq()
	if err := replica.Close(); err != nil {
		t.Fatal(err)
	}
	replica2, stats, err := OpenDurableWithStats("replica", batcherSchema(), replicaDir, DurableOptions{Replica: true})
	if err != nil {
		t.Fatal(err)
	}
	defer replica2.Close()
	if replica2.LogSeq() != tail {
		t.Errorf("replica log seq after restart = %d, want %d (recovery must append nothing)", replica2.LogSeq(), tail)
	}
	if stats.Replayed == 0 {
		t.Error("restart replayed no operations")
	}
	if got, want := replica2.Engine().ResourceCount(), primary.Engine().ResourceCount(); got != want {
		t.Errorf("after restart: replica resources = %d, want %d", got, want)
	}
}

// TestApplyReplicatedPinsGaps: a sequence jump in the stream (a reserved
// range on the primary) is reserved locally so numbering stays aligned.
func TestApplyReplicatedPinsGaps(t *testing.T) {
	replica, err := OpenDurable("replica", batcherSchema(), t.TempDir(), DurableOptions{Replica: true})
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()
	payload := []byte(`{"kind":"named_rule","name":"r","rule":"` + durRule + `"}`)
	if err := replica.ApplyReplicated(1, payload, 0); err != nil {
		t.Fatal(err)
	}
	if err := replica.ApplyReplicated(10, payload, 0); err != nil {
		t.Fatal(err)
	}
	if got := replica.LogSeq(); got != 10 {
		t.Errorf("log seq = %d, want 10", got)
	}
}

// TestInstallSnapshotBootstrap: a shipped snapshot installs mid-life —
// engine swapped, log pinned at the coverage, attached subscribers reset —
// and the stream continues from there; a restart recovers from the
// persisted snapshot copy.
func TestInstallSnapshotBootstrap(t *testing.T) {
	primary, err := OpenDurable("primary", batcherSchema(), t.TempDir(), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	if _, _, err := primary.Subscribe("lmr", durRule); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := primary.RegisterDocument(batcherDoc(i, 80)); err != nil {
			t.Fatal(err)
		}
	}
	snapSeq := primary.LogSeq()
	var snap bytes.Buffer
	if err := writeSnapshot(&snap, snapSeq, primary.Epoch(), primary.Engine()); err != nil {
		t.Fatal(err)
	}

	replicaDir := t.TempDir()
	replica, err := OpenDurable("replica", batcherSchema(), replicaDir, DurableOptions{Replica: true})
	if err != nil {
		t.Fatal(err)
	}
	var c collector
	replica.Attach("lmr", c.apply)
	got, err := replica.InstallSnapshot(snap.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got != snapSeq {
		t.Errorf("InstallSnapshot seq = %d, want %d", got, snapSeq)
	}
	if replica.LogSeq() != snapSeq {
		t.Errorf("replica log seq = %d, want %d", replica.LogSeq(), snapSeq)
	}
	if got, want := replica.Engine().ResourceCount(), primary.Engine().ResourceCount(); got != want {
		t.Errorf("replica resources = %d, want %d", got, want)
	}
	if c.count() != 1 || !c.last().reset || c.last().seq != snapSeq {
		t.Errorf("attached subscriber got %d pushes, last = %+v; want one reset at seq %d", c.count(), c.last(), snapSeq)
	}

	// The stream continues past the snapshot.
	if err := primary.RegisterDocument(batcherDoc(10, 80)); err != nil {
		t.Fatal(err)
	}
	shipLog(t, primary, replica)
	if got, want := replica.Engine().ResourceCount(), primary.Engine().ResourceCount(); got != want {
		t.Errorf("post-snapshot stream: replica resources = %d, want %d", got, want)
	}
	tail := replica.LogSeq()
	if err := replica.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart recovers from the installed snapshot + the streamed tail.
	replica2, stats, err := OpenDurableWithStats("replica", batcherSchema(), replicaDir, DurableOptions{Replica: true})
	if err != nil {
		t.Fatal(err)
	}
	defer replica2.Close()
	if stats.SnapshotSeq != snapSeq {
		t.Errorf("recovered SnapshotSeq = %d, want %d", stats.SnapshotSeq, snapSeq)
	}
	if replica2.LogSeq() != tail {
		t.Errorf("replica log seq after restart = %d, want %d", replica2.LogSeq(), tail)
	}
	if got, want := replica2.Engine().ResourceCount(), primary.Engine().ResourceCount(); got != want {
		t.Errorf("after restart: replica resources = %d, want %d", got, want)
	}
}

// TestReplicaAckLocalOnly: acks on a replica update truncation bookkeeping
// without appending to the verbatim log copy.
func TestReplicaAckLocalOnly(t *testing.T) {
	replica, err := OpenDurable("replica", batcherSchema(), t.TempDir(), DurableOptions{Replica: true})
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()
	payload := []byte(`{"kind":"named_rule","name":"r","rule":"` + durRule + `"}`)
	for seq := uint64(1); seq <= 3; seq++ {
		if err := replica.ApplyReplicated(seq, payload, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := replica.Ack("lmr", 3); err != nil {
		t.Fatal(err)
	}
	if got := replica.LogSeq(); got != 3 {
		t.Errorf("log seq after ack = %d, want 3 (ack must not append)", got)
	}
	if replica.dur.acked["lmr"] != 3 {
		t.Errorf("acked = %d, want 3", replica.dur.acked["lmr"])
	}
}

// TestFollowerStatsAndTruncationPinning: follower stream state shows up in
// DeliveryStats with its lag, and a connected follower's ack pins
// truncation while a disconnected one does not.
func TestFollowerStatsAndTruncationPinning(t *testing.T) {
	primary, err := OpenDurable("primary", batcherSchema(), t.TempDir(), DurableOptions{SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	for i := 0; i < 6; i++ {
		if err := primary.RegisterDocument(batcherDoc(i, 80)); err != nil {
			t.Fatal(err)
		}
	}
	primary.mu.Lock()
	primary.followers["r1"] = &followerState{name: "r1", connected: true, acked: 2}
	primary.mu.Unlock()

	stats := primary.DeliveryStats()
	if stats.Role != "primary" {
		t.Errorf("Role = %q, want primary", stats.Role)
	}
	if len(stats.Followers) != 1 || stats.Followers[0].Follower != "r1" {
		t.Fatalf("Followers = %+v", stats.Followers)
	}
	if fd := stats.Followers[0]; fd.AckedSeq != 2 || fd.LagSeqs != stats.LogSeq-2 || !fd.Connected {
		t.Errorf("follower delivery = %+v", fd)
	}

	// Connected at ack 2: nothing below 3 may be truncated.
	if err := primary.Compact(); err != nil {
		t.Fatal(err)
	}
	if oldest := primary.dur.log.OldestSeq(); oldest > 3 {
		t.Errorf("oldest seq = %d; connected follower at ack 2 must pin truncation", oldest)
	}

	// Disconnected followers do not pin: Compact may now truncate past it.
	primary.mu.Lock()
	primary.followers["r1"].connected = false
	primary.mu.Unlock()
	if err := primary.Compact(); err != nil {
		t.Fatal(err)
	}
	if oldest := primary.dur.log.OldestSeq(); oldest <= 2 {
		t.Errorf("oldest seq = %d after compact; disconnected follower must not pin the log", oldest)
	}
}

// TestReplicaResumeWaitsForCatchup: a subscriber ahead of a freshly
// restarted replica is answered once the stream catches up (no reset), and
// reset if it cannot within the bound.
func TestReplicaResumeWaitsForCatchup(t *testing.T) {
	primary, err := OpenDurable("primary", batcherSchema(), t.TempDir(), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	replica, err := OpenDurable("replica", batcherSchema(), t.TempDir(), DurableOptions{Replica: true, CatchupWait: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()
	if _, _, err := primary.Subscribe("lmr", durRule); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := primary.RegisterDocument(batcherDoc(i, 80)); err != nil {
			t.Fatal(err)
		}
	}
	target := primary.LogSeq()
	var c collector
	replica.Attach("lmr", c.apply)
	// The stream arrives while Resume is already waiting.
	done := make(chan error, 1)
	go func() {
		time.Sleep(20 * time.Millisecond)
		r := primary.dur.log.NewReader(1)
		defer r.Close()
		for replica.LogSeq() < target {
			seq, payload, err := r.Next()
			if err != nil {
				done <- err
				return
			}
			if err := replica.ApplyReplicated(seq, payload, 0); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	latest, err := replica.Resume("lmr", target)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if latest < target {
		t.Errorf("Resume returned %d, want >= %d", latest, target)
	}
	c.mu.Lock()
	for _, p := range c.pushes {
		if p.reset {
			t.Errorf("caught-up resume delivered a reset push: %+v", p)
		}
	}
	c.mu.Unlock()

	// A cursor the stream can never reach falls back to a reset.
	latest, err = replica.Resume("lmr", target+100)
	if err != nil {
		t.Fatal(err)
	}
	if latest != replica.LogSeq() {
		t.Errorf("Resume returned %d, want log tail %d", latest, replica.LogSeq())
	}
	if c.count() == 0 || !c.last().reset {
		t.Error("unreachable cursor did not force a reset")
	}
}
