package provider

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mdv/internal/core"
	"mdv/internal/rdf"
)

func batcherSchema() *rdf.Schema {
	s := rdf.NewSchema()
	s.MustAddProperty("CycleProvider", rdf.PropertyDef{Name: "serverPort", Type: rdf.TypeInteger})
	return s
}

func batcherDoc(i, port int) *rdf.Document {
	doc := rdf.NewDocument(fmt.Sprintf("b%d.rdf", i))
	doc.NewResource("cp", "CycleProvider").Add("serverPort", rdf.Lit(fmt.Sprint(port)))
	return doc
}

func newBatcherProvider(t *testing.T) (*Provider, *[]*core.Changeset, *sync.Mutex) {
	t.Helper()
	p, err := New("mdp", batcherSchema())
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []*core.Changeset
	p.Attach("lmr", func(_ uint64, _ bool, cs *core.Changeset) error {
		mu.Lock()
		got = append(got, cs)
		mu.Unlock()
		return nil
	})
	if _, _, err := p.Subscribe("lmr", `search CycleProvider c register c where c.serverPort > 0`); err != nil {
		t.Fatal(err)
	}
	return p, &got, &mu
}

func TestBatcherFlushesOnSize(t *testing.T) {
	p, got, mu := newBatcherProvider(t)
	b := NewBatcher(p, 5, time.Hour) // size-triggered only
	var flushes []int
	b.OnFlush = func(n int, _ time.Duration, err error) {
		if err != nil {
			t.Errorf("flush: %v", err)
		}
		flushes = append(flushes, n)
	}
	for i := 0; i < 12; i++ {
		if err := b.Register(batcherDoc(i, 80)); err != nil {
			t.Fatal(err)
		}
	}
	if len(flushes) != 2 || flushes[0] != 5 || flushes[1] != 5 {
		t.Errorf("size flushes = %v", flushes)
	}
	if b.Pending() != 2 {
		t.Errorf("pending = %d", b.Pending())
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if p.Engine().Stats().DocumentsRegistered != 12 {
		t.Errorf("registered = %d", p.Engine().Stats().DocumentsRegistered)
	}
	mu.Lock()
	total := 0
	for _, cs := range *got {
		total += len(cs.Upserts)
	}
	mu.Unlock()
	if total != 12 {
		t.Errorf("published upserts = %d", total)
	}
	// Closed batcher rejects registrations.
	if err := b.Register(batcherDoc(99, 80)); err == nil {
		t.Error("register after close accepted")
	}
}

func TestBatcherFlushesOnDelay(t *testing.T) {
	p, _, _ := newBatcherProvider(t)
	b := NewBatcher(p, 1000, 30*time.Millisecond)
	done := make(chan int, 1)
	b.OnFlush = func(n int, _ time.Duration, err error) {
		if err != nil {
			t.Errorf("flush: %v", err)
		}
		done <- n
	}
	for i := 0; i < 3; i++ {
		if err := b.Register(batcherDoc(i, 80)); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case n := <-done:
		if n != 3 {
			t.Errorf("delayed flush size = %d", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("delay flush never fired")
	}
	if b.Pending() != 0 {
		t.Errorf("pending = %d after delay flush", b.Pending())
	}
}

func TestBatcherCollapsesReRegistration(t *testing.T) {
	p, _, _ := newBatcherProvider(t)
	b := NewBatcher(p, 1000, time.Hour)
	if err := b.Register(batcherDoc(1, 80)); err != nil {
		t.Fatal(err)
	}
	// Newer version of the same document before the flush.
	if err := b.Register(batcherDoc(1, 443)); err != nil {
		t.Fatal(err)
	}
	if b.Pending() != 1 {
		t.Fatalf("pending = %d, want 1 (collapsed)", b.Pending())
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	res, _, err := p.Engine().GetResource("b1.rdf#cp")
	if err != nil || res == nil {
		t.Fatalf("resource missing: %v", err)
	}
	if v, _ := res.Get("serverPort"); v.String() != "443" {
		t.Errorf("collapsed registration kept old version: %v", v)
	}
}

func TestBatcherSurfacesFlushErrors(t *testing.T) {
	p, _, _ := newBatcherProvider(t)
	b := NewBatcher(p, 1000, time.Hour)
	bad := rdf.NewDocument("bad.rdf")
	bad.NewResource("x", "NoSuchClass")
	if err := b.Register(bad); err != nil {
		t.Fatal(err)
	}
	if err := b.Flush(); err == nil {
		t.Error("flush error swallowed")
	}
}
