// Primary-side replication: changelog shipping to follower MDPs, and the
// follower-side apply path (ApplyReplicated, InstallSnapshot).
//
// The replication unit is the changelog record, verbatim: a follower's log
// is a byte-identical prefix of the primary's (modulo reserved gaps, which
// are sequence-number holes on both sides). The primary streams each record
// only once it is DURABLE there (the tailing Reader's contract), so a
// primary crash can never have shipped a record it later disowns. The
// follower appends the record to its own log, applies operation records to
// its engine in strict sequence order behind the publish lock — the same
// total order the primary applied them in, which is what makes follower
// state deterministic — and delivers publish records to its locally
// attached subscribers through the delivery turnstile.
//
// Bootstrap: a follower whose tail lies below the primary's retained log
// cannot replay the gap; it requests a snapshot (chunked over the wire, in
// the exact on-disk snapshot format), installs it mid-life (engine swap
// under the publish lock + full-state resets to attached subscribers), and
// streams from the snapshot's coverage.
package provider

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"mdv/internal/changelog"
	"mdv/internal/core"
	"mdv/internal/rdf"
	"mdv/internal/wire"
)

// WriteProxy forwards a replica's write operations to the primary. Both
// *Provider (in-process) and the network provider client satisfy it.
type WriteProxy interface {
	RegisterDocuments(docs []*rdf.Document) error
	DeleteDocument(uri string) error
	Subscribe(subscriber, rule string) (int64, *core.Changeset, error)
	Unsubscribe(subID int64) error
	RegisterNamedRule(name, rule string) error
}

// ErrNotPrimary is returned for write operations on a replica that has no
// live connection to its primary.
var ErrNotPrimary = errors.New("provider: replica has no primary connection to proxy writes to")

// ErrNotReplica is returned for replica-only operations on a primary.
var ErrNotReplica = errors.New("provider: not a replica")

// errSnapshotRequired marks a stream request below the retained log; the
// follower reacts by requesting a snapshot bootstrap.
const errSnapshotRequired = "snapshot required"

// NeedsSnapshot reports whether err is a primary's refusal to stream
// because the requested position was truncated away.
func NeedsSnapshot(err error) bool {
	var re *wire.RemoteError
	return errors.As(err, &re) && strings.Contains(re.Msg, errSnapshotRequired)
}

// SetWriteProxy installs (or clears, with nil) the primary handle a
// replica forwards write operations to.
func (p *Provider) SetWriteProxy(w WriteProxy) {
	p.mu.Lock()
	p.proxy = w
	p.mu.Unlock()
}

func (p *Provider) writeProxy() (WriteProxy, error) {
	p.mu.Lock()
	w := p.proxy
	p.mu.Unlock()
	if w == nil {
		// Typed and retryable: the caller learns the last-known topology so
		// it can keep serving reads and retry the write with backoff while
		// the cluster elects (or an operator promotes) a new primary.
		return nil, p.noPrimaryErr()
	}
	return w, nil
}

// followerTag marks a connection as a follower's replication stream (a
// distinct type so the wire server's disconnect callback can tell it from
// a subscriber push channel).
type followerTag string

// followerState is one follower MDP's stream state at the primary.
// Entries outlive disconnects so lag stays visible; only connected
// followers pin log truncation.
type followerState struct {
	name      string
	conn      *wire.ServerConn  // guarded by Provider.mu
	reader    *changelog.Reader // guarded by Provider.mu
	connected bool              // guarded by Provider.mu
	acked     uint64            // guarded by Provider.mu
	streamed  atomic.Uint64     // written by the streamer goroutine
}

// snapshotChunkSize bounds one shipped snapshot chunk; base64-encoded JSON
// framing keeps the resulting message well under the wire frame limit.
const snapshotChunkSize = 4 << 20

// handleReplSnapshot serves a follower's bootstrap request. If the
// follower's tail meets the retained log no snapshot is needed; otherwise
// the engine snapshot is serialized under the publish lock (so it pairs
// exactly with a log sequence) and shipped as ordered chunk pushes on this
// connection — in-handler, so every chunk precedes the response.
func (p *Provider) handleReplSnapshot(conn *wire.ServerConn, req *wire.ReplSnapshotRequest) (*wire.ReplSnapshotResponse, error) {
	if p.dur == nil {
		return nil, ErrNotDurable
	}
	if err := p.fencePeer(req.Epoch); err != nil {
		return nil, err
	}
	if p.replica.Load() {
		return nil, fmt.Errorf("provider: a replica cannot serve replication bootstraps")
	}
	t0 := time.Now()
	p.lockPub()
	// Force bypasses the tail check: a demoted ex-primary's tail may hold
	// divergent records the sequence numbers alone cannot reveal, so its
	// rejoin must take a snapshot unconditionally and rebuild from it.
	if !req.Force && req.FromSeq+1 >= p.dur.log.OldestSeq() {
		p.unlockPub()
		return &wire.ReplSnapshotResponse{Needed: false, Epoch: p.Epoch()}, nil
	}
	seq := p.dur.log.LastSeq()
	var buf bytes.Buffer
	err := writeSnapshot(&buf, seq, p.Epoch(), p.Engine())
	p.unlockPub()
	if err != nil {
		return nil, fmt.Errorf("provider: serialize bootstrap snapshot: %w", err)
	}
	data := buf.Bytes()
	for off := 0; ; off += snapshotChunkSize {
		end := off + snapshotChunkSize
		last := end >= len(data)
		if last {
			end = len(data)
		}
		chunk := &wire.ReplSnapshotChunk{Data: data[off:end], Last: last}
		if err := conn.NotifySync(wire.KindReplSnapshotChunk, chunk); err != nil {
			return nil, err
		}
		if last {
			break
		}
	}
	p.snapshotsShipped.Add(1)
	if m := p.met.Load(); m != nil && m.snapshotShip != nil {
		m.snapshotShip.ObserveSince(t0)
	}
	return &wire.ReplSnapshotResponse{Needed: true, SnapshotSeq: seq, Epoch: p.Epoch()}, nil
}

// handleReplStream subscribes the connection to the changelog record
// stream from req.FromSeq+1 on. The records are pushed by a dedicated
// streamer goroutine tailing the log, so a slow follower never blocks the
// publish path, and each record is shipped only once durable.
func (p *Provider) handleReplStream(conn *wire.ServerConn, req *wire.ReplStreamRequest) (*wire.ReplStreamResponse, error) {
	if p.dur == nil {
		return nil, ErrNotDurable
	}
	if err := p.fencePeer(req.Epoch); err != nil {
		return nil, err
	}
	if p.replica.Load() {
		return nil, fmt.Errorf("provider: a replica cannot serve replication streams")
	}
	if req.Follower == "" {
		return nil, fmt.Errorf("provider: replication stream requires a follower name")
	}
	if req.FromSeq+1 < p.dur.log.OldestSeq() {
		return nil, fmt.Errorf("provider: stream from seq %d: records below %d are truncated; %s",
			req.FromSeq, p.dur.log.OldestSeq(), errSnapshotRequired)
	}
	reader := p.dur.log.NewReader(req.FromSeq + 1)
	latest := p.dur.log.LastSeq()
	conn.Tag.Store(followerTag(req.Follower))
	p.mu.Lock()
	fs := p.followers[req.Follower]
	if fs == nil {
		fs = &followerState{name: req.Follower}
		p.followers[req.Follower] = fs
	}
	// A reconnect replaces a stale stream: closing the old reader stops its
	// streamer goroutine, closing the old conn hangs up the dead channel.
	if fs.reader != nil {
		fs.reader.Close()
	}
	if fs.conn != nil && fs.conn != conn {
		fs.conn.Close()
	}
	fs.conn = conn
	fs.reader = reader
	fs.connected = true
	p.streamWG.Add(1)
	p.mu.Unlock()
	go p.streamToFollower(fs, conn, reader)
	return &wire.ReplStreamResponse{LatestSeq: latest, Epoch: p.Epoch()}, nil
}

// streamToFollower tails the log and ships each durable record. It exits
// when the reader is closed (disconnect, reconnect replacement, provider
// close), the log is closed, the position is truncated away, or the
// connection dies; in every case the conn is closed so the follower
// re-dials and renegotiates (bootstrapping if it fell below the log).
func (p *Provider) streamToFollower(fs *followerState, conn *wire.ServerConn, reader *changelog.Reader) {
	defer p.streamWG.Done()
	defer conn.Close()
	defer reader.Close()
	for {
		seq, payload, err := reader.Next()
		if err != nil {
			return
		}
		// Stamped with the CURRENT epoch at send time (even for old records):
		// the stamp proves the sender still believes itself primary of that
		// term, and the follower drops the session if it has seen a higher one.
		push := &wire.ReplRecordPush{Seq: seq, Rec: payload, SentUnixNano: time.Now().UnixNano(), Epoch: p.Epoch()}
		// Blocking enqueue: dropping a record would break the verbatim-
		// prefix invariant. A truly stuck follower trips the connection
		// write deadline, which closes the conn and errors this send.
		if err := conn.NotifySync(wire.KindReplRecord, push); err != nil {
			return
		}
		fs.streamed.Store(seq)
	}
}

// handleReplAck records a follower's durable applied prefix.
func (p *Provider) handleReplAck(req *wire.ReplAckRequest) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	fs := p.followers[req.Follower]
	if fs == nil {
		return fmt.Errorf("provider: ack from unknown follower %q (no stream registered)", req.Follower)
	}
	if req.Seq > fs.acked {
		fs.acked = req.Seq
	}
	return nil
}

// followerDisconnected marks a follower's stream down and releases its
// reader (which stops the streamer goroutine).
func (p *Provider) followerDisconnected(name string, conn *wire.ServerConn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fs := p.followers[name]
	if fs == nil || fs.conn != conn {
		return // a newer stream already replaced this one
	}
	fs.connected = false
	fs.conn = nil
	if fs.reader != nil {
		fs.reader.Close()
		fs.reader = nil
	}
}

// Followers reports per-follower replication health (primary side).
func (p *Provider) Followers() []wire.FollowerDelivery {
	return p.DeliveryStats().Followers
}

// SyncLog fsyncs the changelog tail and returns the durable sequence. The
// follower's ack loop calls it to batch the durability cost ApplyReplicated
// deliberately skips.
func (p *Provider) SyncLog() (uint64, error) {
	if p.dur == nil {
		return 0, ErrNotDurable
	}
	if err := p.dur.log.Sync(); err != nil {
		return 0, err
	}
	return p.dur.log.DurableSeq(), nil
}

// ApplyReplicated appends one primary changelog record verbatim to the
// replica's log and applies it: operation records drive the engine (their
// publish sets are discarded — the primary's own publish records follow in
// the stream), publish records are delivered to locally attached
// subscribers, ack and watermark records update in-memory bookkeeping.
// Records at or below the local tail are duplicates from a stream overlap
// and are skipped. No durability wait happens here — the follower's ack
// loop syncs the log and acknowledges in batches.
func (p *Provider) ApplyReplicated(seq uint64, payload []byte, sentNano int64) error {
	if p.dur == nil {
		return ErrNotDurable
	}
	if !p.replica.Load() {
		return ErrNotReplica
	}
	p.lockPub()
	// Recheck under the publish lock: a Promote that flipped the role while
	// this record waited must win — a primary appends nothing replicated.
	if !p.replica.Load() {
		p.unlockPub()
		return ErrNotReplica
	}
	tail := p.dur.log.LastSeq()
	if seq <= tail {
		p.unlockPub()
		return nil // duplicate from a resumed stream
	}
	if seq > tail+1 {
		// The gap is a reserved range on the primary (its numbers carry no
		// records); pin the same gap locally so sequences stay aligned.
		if err := p.dur.log.Reserve(seq - 1); err != nil {
			p.unlockPub()
			return err
		}
	}
	got, err := p.dur.log.Append(payload)
	if err != nil {
		p.unlockPub()
		return err
	}
	if got != seq {
		p.unlockPub()
		return fmt.Errorf("provider: replicated record %d landed at local seq %d (log diverged)", seq, got)
	}
	var rec logRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		p.unlockPub()
		return fmt.Errorf("provider: replicated record %d: %w", seq, err)
	}
	var dels []delivery
	switch rec.Kind {
	case recRegister, recDelete, recSubscribe, recUnsubscribe, recNamedRule:
		// The publish set is discarded: the primary's own publish records
		// follow in the stream. An application error is the deterministic
		// replay of an operation that failed identically on the primary
		// (operations are logged before application there).
		p.replayOp(&rec)
	case recPub:
		if rec.Changeset != nil {
			dels = append(dels, delivery{subs: []string{rec.Subscriber}, seq: seq, cs: rec.Changeset, pubNano: sentNano})
		}
	case recPubGroup:
		if rec.Changeset != nil {
			dels = append(dels, delivery{subs: rec.Subscribers, seq: seq, cs: rec.Changeset, pubNano: sentNano})
		}
	case recAck:
		p.mu.Lock()
		if rec.AckSeq > p.dur.acked[rec.Subscriber] {
			p.dur.acked[rec.Subscriber] = rec.AckSeq
		}
		p.mu.Unlock()
	case recWatermark:
		if rec.Watermark > p.dur.claim {
			p.dur.claim = rec.Watermark
		}
		for _, r := range rec.Lost {
			p.dur.addLost(r[0], r[1])
		}
	case recEpoch:
		// The primary's promotion record: this follower now serves term
		// rec.Epoch (the record is already appended verbatim above, so the
		// term survives a local restart too).
		p.bumpEpoch(rec.Epoch)
	}
	p.unlockPubAndDeliver(dels)
	return nil
}

// InstallSnapshot installs a shipped bootstrap snapshot mid-life: the
// bytes are persisted as the replica's snapshot file, the engine is
// swapped under the publish lock, the log reserves the covered range, and
// every attached subscriber receives a full-state reset fill (their caches
// predate the snapshot, and the records in between are not locally
// replayable). The stream floor moves to the snapshot's coverage, which is
// returned; the caller streams from there.
func (p *Provider) InstallSnapshot(data []byte) (uint64, error) {
	if p.dur == nil {
		return 0, ErrNotDurable
	}
	if !p.replica.Load() {
		return 0, ErrNotReplica
	}
	snapSeq, snapEpoch, eng, err := readSnapshot(bytes.NewReader(data), p.Engine().Schema(), p.Engine().Options())
	if err != nil {
		return 0, fmt.Errorf("provider: install snapshot: %w", err)
	}
	p.lockPub()
	if !p.replica.Load() {
		p.unlockPub()
		return 0, ErrNotReplica
	}
	if p.resyncPending.Load() {
		// Divergent-tail repair on a demoted ex-primary: its log may hold
		// records the new primary's history disowns (same sequence numbers,
		// different bytes — acknowledged to nobody, because their fsync
		// returned after the followers were already gone, or never returned
		// at all). Wipe the local log entirely and restart numbering at the
		// snapshot's coverage; the verbatim-prefix invariant holds again from
		// there on.
		if err := p.dur.log.Reset(snapSeq); err != nil {
			p.unlockPub()
			return 0, err
		}
	} else if snapSeq < p.dur.log.LastSeq() {
		p.unlockPub()
		return 0, fmt.Errorf("provider: snapshot covers seq %d but the local log is already at %d", snapSeq, p.dur.log.LastSeq())
	}
	// Persist first: if we crash right after the rename, recovery loads
	// this snapshot and resumes streaming from its coverage.
	if err := writeSnapshotBytes(filepath.Join(p.dur.dir, snapshotFile), data); err != nil {
		p.unlockPub()
		return 0, err
	}
	p.eng.Store(eng)
	if snapSeq > p.dur.log.LastSeq() {
		if err := p.dur.log.Reserve(snapSeq); err != nil {
			p.unlockPub()
			return 0, err
		}
	}
	p.dur.streamFloor = snapSeq
	p.bumpEpoch(snapEpoch)
	p.resyncPending.Store(false)
	// Attached subscribers hold caches from before the gap; rebuild them
	// from the fresh engine with full-state resets, sequenced like any
	// publish so later replicated deliveries order after them.
	p.mu.Lock()
	names := make(map[string]bool, len(p.attached)+len(p.wireAttach))
	for name := range p.attached {
		names[name] = true
	}
	for name := range p.wireAttach {
		names[name] = true
	}
	p.mu.Unlock()
	var dels []delivery
	for name := range names {
		fill, err := p.Engine().ResubscribeFill(name)
		if err != nil {
			p.unlockPub()
			return 0, err
		}
		dels = append(dels, delivery{subs: []string{name}, seq: snapSeq, reset: true, cs: fill, sync: true})
	}
	p.unlockPubAndDeliver(dels)
	return snapSeq, nil
}

// writeSnapshotBytes atomically persists already-serialized snapshot bytes
// (a shipped bootstrap snapshot is in the exact snapshot-file format).
func writeSnapshotBytes(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	syncDir(filepath.Dir(path))
	return nil
}
