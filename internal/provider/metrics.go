package provider

import (
	"time"

	"mdv/internal/metrics"
	"mdv/internal/wire"
)

// provMetrics are the provider's delivery-stage instruments; the
// per-subscriber counters from PR 2's delivery_stats are exported through
// scrape-time sample functions over the same data, so the two surfaces can
// never disagree.
type provMetrics struct {
	turnWait *metrics.Histogram
	fanout   *metrics.Histogram
	// snapshotShip times serving one bootstrap snapshot to a follower
	// (serialize under the publish lock + chunked wire transfer).
	snapshotShip *metrics.Histogram
	// groupsPerPublish is the distinct-interest-group count per publish —
	// the number the coalesced delivery path's cost actually scales with.
	groupsPerPublish *metrics.Histogram
}

// groupCountBuckets bound the groups-per-publish histogram (counts, not
// seconds).
var groupCountBuckets = []float64{1, 2, 5, 10, 20, 50, 100, 250, 1000}

// EnableMetrics attaches the provider and everything below it — engine,
// SQL database, and (when durable) the changelog — to the registry, and
// exports the per-subscriber delivery health counters as labeled sample
// families. Call before serving traffic; disabled providers pay one nil
// pointer load per delivery batch.
func (p *Provider) EnableMetrics(reg *metrics.Registry) {
	m := &provMetrics{
		turnWait: reg.Histogram("mdv_delivery_turnstile_wait_seconds",
			"time an operation waits for its delivery turn (ordering overhead of the pipelined publish)",
			metrics.TimeBuckets),
		fanout: reg.Histogram("mdv_delivery_fanout_seconds",
			"time to fan one operation's changesets out to all subscribers",
			metrics.TimeBuckets),
		snapshotShip: reg.Histogram("mdv_replication_snapshot_ship_seconds",
			"time to serve one bootstrap snapshot to a follower",
			metrics.TimeBuckets),
		groupsPerPublish: reg.Histogram("mdv_delivery_groups_per_publish",
			"distinct interest groups (changelog records, changeset builds, wire encodes) per publish",
			groupCountBuckets),
	}
	p.met.Store(m)
	p.reg.Store(reg)
	p.Engine().EnableMetrics(reg)
	if p.dur != nil {
		p.dur.log.EnableMetrics(reg)
	}

	sub := func(name string) []metrics.Label {
		return []metrics.Label{metrics.L("subscriber", name)}
	}
	type col struct {
		name string
		help string
		typ  string
		val  func(sd *subscriberSample) float64
	}
	cols := []col{
		{"mdv_subscriber_enqueued_total", "changesets handed to a subscriber's push queue",
			metrics.TypeCounter, func(sd *subscriberSample) float64 { return float64(sd.enqueued) }},
		{"mdv_subscriber_dropped_total", "changesets lost to queue-overflow disconnects",
			metrics.TypeCounter, func(sd *subscriberSample) float64 { return float64(sd.dropped) }},
		{"mdv_subscriber_disconnects_total", "push-channel losses, any cause",
			metrics.TypeCounter, func(sd *subscriberSample) float64 { return float64(sd.disconnects) }},
		{"mdv_subscriber_queue_depth", "occupancy of the subscriber's bounded send queues",
			metrics.TypeGauge, func(sd *subscriberSample) float64 { return float64(sd.queueDepth) }},
		{"mdv_subscriber_heartbeat_rtt_seconds", "most recent heartbeat round-trip time",
			metrics.TypeGauge, func(sd *subscriberSample) float64 { return sd.rtt.Seconds() }},
		{"mdv_subscriber_published_seq", "last changelog sequence published to the subscriber",
			metrics.TypeGauge, func(sd *subscriberSample) float64 { return float64(sd.published) }},
		{"mdv_subscriber_acked_seq", "last changelog sequence acknowledged by the subscriber",
			metrics.TypeGauge, func(sd *subscriberSample) float64 { return float64(sd.acked) }},
		{"mdv_subscriber_ack_lag", "published minus acknowledged sequences (0 on non-durable providers)",
			metrics.TypeGauge, func(sd *subscriberSample) float64 { return float64(sd.lag) }},
	}
	for _, c := range cols {
		val := c.val
		reg.SampleFunc(c.name, c.help, c.typ, func() []metrics.Sample {
			sds := p.subscriberSamples()
			out := make([]metrics.Sample, len(sds))
			for i := range sds {
				out[i] = metrics.Sample{Labels: sub(sds[i].name), Value: val(&sds[i])}
			}
			return out
		})
	}

	// Replication families. The role gauge makes "which node am I scraping"
	// a first-class query; the per-follower families surface stream health
	// on the primary (empty on replicas and follower-less primaries).
	reg.SampleFunc("mdv_mdp_role", "node role (value 1, labeled primary or replica)",
		metrics.TypeGauge, func() []metrics.Sample {
			return []metrics.Sample{{Labels: []metrics.Label{metrics.L("role", p.Role())}, Value: 1}}
		})
	reg.GaugeFunc("mdv_replication_snapshots_shipped_total",
		"bootstrap snapshots served to followers",
		func() float64 { return float64(p.snapshotsShipped.Load()) })
	reg.GaugeFunc("mdv_epoch",
		"replication term this node is serving (monotone; bumped by promotions)",
		func() float64 { return float64(p.Epoch()) })
	reg.GaugeFunc("mdv_promotions_total",
		"times this node was promoted to primary",
		func() float64 { return float64(p.promotions.Load()) })
	reg.GaugeFunc("mdv_fenced_writes_total",
		"requests rejected by the epoch fence (stale or future term stamps)",
		func() float64 { return float64(p.fencedWrites.Load()) })
	reg.GaugeFunc("mdv_delivery_encode_once_bytes_saved_total",
		"wire bytes the encode-once group fan-out avoided re-marshaling (frame length x extra member connections)",
		func() float64 { return float64(p.encodeSavedBytes.Load()) })
	reg.GaugeFunc("mdv_resume_coalesced_records_total",
		"resume replay records folded into batched changeset pushes",
		func() float64 { return float64(p.replayCoalescedRecords.Load()) })
	reg.GaugeFunc("mdv_resume_coalesced_batches_total",
		"batched changeset pushes emitted by resume replays",
		func() float64 { return float64(p.replayCoalescedBatches.Load()) })
	fol := func(name string) []metrics.Label {
		return []metrics.Label{metrics.L("follower", name)}
	}
	type fcol struct {
		name string
		help string
		typ  string
		val  func(fd *wire.FollowerDelivery) float64
	}
	fcols := []fcol{
		{"mdv_replication_streamed_seq", "last changelog sequence shipped to the follower",
			metrics.TypeGauge, func(fd *wire.FollowerDelivery) float64 { return float64(fd.StreamedSeq) }},
		{"mdv_replication_acked_seq", "last changelog sequence the follower durably acknowledged",
			metrics.TypeGauge, func(fd *wire.FollowerDelivery) float64 { return float64(fd.AckedSeq) }},
		{"mdv_replication_lag_seqs", "primary log tail minus the follower's acknowledged sequence",
			metrics.TypeGauge, func(fd *wire.FollowerDelivery) float64 { return float64(fd.LagSeqs) }},
		{"mdv_replication_follower_connected", "1 while the follower's record stream is up",
			metrics.TypeGauge, func(fd *wire.FollowerDelivery) float64 {
				if fd.Connected {
					return 1
				}
				return 0
			}},
	}
	for _, c := range fcols {
		val := c.val
		reg.SampleFunc(c.name, c.help, c.typ, func() []metrics.Sample {
			fds := p.Followers()
			out := make([]metrics.Sample, len(fds))
			for i := range fds {
				out[i] = metrics.Sample{Labels: fol(fds[i].Follower), Value: val(&fds[i])}
			}
			return out
		})
	}
}

// Metrics returns the registry attached via EnableMetrics (nil before).
func (p *Provider) Metrics() *metrics.Registry { return p.reg.Load() }

// subscriberSample is one subscriber's delivery state at scrape time.
type subscriberSample struct {
	name                           string
	enqueued, dropped, disconnects uint64
	queueDepth                     int
	rtt                            time.Duration
	published, acked, lag          uint64
}

// subscriberSamples snapshots the per-subscriber delivery counters (the
// same data DeliveryStats serves over the wire).
func (p *Provider) subscriberSamples() []subscriberSample {
	p.mu.Lock()
	defer p.mu.Unlock()
	names := make(map[string]bool, len(p.delStats)+len(p.wireAttach))
	for name := range p.delStats {
		names[name] = true
	}
	for name := range p.wireAttach {
		names[name] = true
	}
	out := make([]subscriberSample, 0, len(names))
	for name := range names {
		c := p.countersLocked(name)
		s := subscriberSample{
			name: name, enqueued: c.enqueued, dropped: c.dropped,
			disconnects: c.disconnects, published: c.lastSeq,
		}
		if p.dur != nil {
			s.acked = p.dur.acked[name]
			if s.published > s.acked {
				s.lag = s.published - s.acked
			}
		}
		for _, conn := range p.wireAttach[name] {
			s.queueDepth += conn.QueueDepth()
			if rtt := conn.RTT(); rtt > s.rtt {
				s.rtt = rtt
			}
		}
		out = append(out, s)
	}
	return out
}
