package provider

import (
	"path/filepath"
	"testing"

	"mdv/internal/repository"
)

// TestWatermarkSurvivesCompaction: Compact truncates acknowledged segments —
// including, without re-establishment, the segment holding the only
// delivered-watermark record. A crash that then swallows a delivered but
// unsynced tail must still recover the claim: otherwise the lost sequence
// numbers are reissued to new operations, and the subscriber (whose cursor
// sits past them) skips the reissued live pushes as duplicates.
func TestWatermarkSurvivesCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments so every record rotates and truncation actually removes
	// the early watermark record.
	p, err := OpenDurable("mdp", batcherSchema(), dir, DurableOptions{SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	repo, err := repository.New("lmr", batcherSchema())
	if err != nil {
		t.Fatal(err)
	}
	p.Attach("lmr", repo.ApplyPush)
	if _, _, err := p.Subscribe("lmr", durRule); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := p.RegisterDocument(batcherDoc(i, 80)); err != nil {
			t.Fatal(err)
		}
	}
	claim := p.dur.claim
	if claim == 0 {
		t.Fatal("no delivered-watermark claim after publishes")
	}
	// Acknowledge everything and compact: every segment below the ack is
	// truncated, among them the one holding the original watermark record.
	if err := p.Ack("lmr", repo.LastSeq()); err != nil {
		t.Fatal(err)
	}
	if err := p.Compact(); err != nil {
		t.Fatal(err)
	}
	// One more delivered registration, then crash before its records are
	// fsynced (chop the op and pub records off the tail).
	if err := p.RegisterDocument(batcherDoc(2, 80)); err != nil {
		t.Fatal(err)
	}
	deliveredSeq := repo.LastSeq()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	chopLastRecord(t, filepath.Join(dir, "wal"))
	chopLastRecord(t, filepath.Join(dir, "wal"))

	p2, _, err := OpenDurableWithStats("mdp", batcherSchema(), dir, DurableOptions{SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := p2.dur.claim; got < claim {
		t.Errorf("recovered claim = %d, want >= %d (watermark record lost to compaction)", got, claim)
	}
	if got := p2.LogSeq(); got < deliveredSeq {
		t.Errorf("LogSeq after recovery = %d, below delivered seq %d: lost sequences can be reissued", got, deliveredSeq)
	}
	// The subscriber's cursor sits on the swallowed push: resume must reset.
	repo2, err := repository.New("lmr", batcherSchema())
	if err != nil {
		t.Fatal(err)
	}
	p2.Attach("lmr", repo2.ApplyPush)
	if _, err := p2.Resume("lmr", deliveredSeq); err != nil {
		t.Fatal(err)
	}
	if got, want := repo2.Len(), p2.Engine().ResourceCount(); got != want {
		t.Errorf("cache after reset resume = %d resources, want %d", got, want)
	}
}

// TestWatermarkChunkBoundaryCrash: claims amortize to one fsync per
// watermarkChunk sequences, so crossing a chunk boundary writes (and fsyncs,
// before any covered push goes out) a second watermark record. A crash that
// swallows the unsynced op/pub records right after the boundary must recover
// the NEWEST claim — the reserved range never moves backwards — and the next
// generation must still remember the lost range (it is persisted, not
// recovery-local state).
func TestWatermarkChunkBoundaryCrash(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenDurable("mdp", batcherSchema(), dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	repo, err := repository.New("lmr", batcherSchema())
	if err != nil {
		t.Fatal(err)
	}
	p.Attach("lmr", repo.ApplyPush)
	if _, _, err := p.Subscribe("lmr", durRule); err != nil {
		t.Fatal(err)
	}
	// Publish until the claim advances past its first chunk (a second
	// watermark record is written at the boundary).
	if err := p.RegisterDocument(batcherDoc(0, 80)); err != nil {
		t.Fatal(err)
	}
	firstClaim := p.dur.claim
	if firstClaim == 0 {
		t.Fatal("no claim after first publish")
	}
	for i := 1; p.dur.claim == firstClaim; i++ {
		if i > watermarkChunk {
			t.Fatalf("claim never advanced past %d after %d registrations", firstClaim, i)
		}
		if err := p.RegisterDocument(batcherDoc(i, 80)); err != nil {
			t.Fatal(err)
		}
	}
	secondClaim := p.dur.claim
	// One more delivered registration inside the fresh chunk, then crash:
	// its op and pub records die unsynced, while the boundary watermark
	// record — fsynced before its covered pushes went out — survives.
	if err := p.RegisterDocument(batcherDoc(watermarkChunk, 80)); err != nil {
		t.Fatal(err)
	}
	deliveredSeq := repo.LastSeq()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	chopLastRecord(t, filepath.Join(dir, "wal"))
	chopLastRecord(t, filepath.Join(dir, "wal"))

	p2, _, err := OpenDurableWithStats("mdp", batcherSchema(), dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.dur.claim; got != secondClaim {
		t.Errorf("recovered claim = %d, want %d (the newest watermark record; the reserved range must not move backwards)", got, secondClaim)
	}
	if got := p2.LogSeq(); got < secondClaim {
		t.Errorf("LogSeq after recovery = %d, want >= %d (claimed range reserved)", got, secondClaim)
	}
	if !p2.dur.inLost(deliveredSeq) {
		t.Errorf("delivered seq %d not in the lost ranges %v", deliveredSeq, p2.dur.lost)
	}
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}

	// Second generation: p2's recovery must have PERSISTED the lost range
	// (a consolidated watermark record at the tail), not just computed it —
	// otherwise this reopen sees a gap-free log and forgets it.
	p3, _, err := OpenDurableWithStats("mdp", batcherSchema(), dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p3.Close()
	if !p3.dur.inLost(deliveredSeq) {
		t.Errorf("lost range forgotten after second recovery: seq %d not in %v", deliveredSeq, p3.dur.lost)
	}
	// A cursor inside the lost range still forces a full-state reset.
	repo3, err := repository.New("lmr", batcherSchema())
	if err != nil {
		t.Fatal(err)
	}
	p3.Attach("lmr", repo3.ApplyPush)
	if _, err := p3.Resume("lmr", deliveredSeq); err != nil {
		t.Fatal(err)
	}
	if got, want := repo3.Len(), p3.Engine().ResourceCount(); got != want {
		t.Errorf("cache after reset resume = %d resources, want %d", got, want)
	}
}
