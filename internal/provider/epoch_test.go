package provider

import (
	"bytes"
	"errors"
	"testing"
)

// TestPromoteBumpsEpochDurably: promoting a replica bumps the term, flips
// the role, starts accepting writes, and persists the epoch record so a
// restart recovers the term.
func TestPromoteBumpsEpochDurably(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenDurable("r1", batcherSchema(), dir, DurableOptions{Replica: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Epoch(); got != 1 {
		t.Fatalf("birth epoch = %d, want 1", got)
	}
	if err := r.RegisterDocument(batcherDoc(1, 80)); err == nil {
		t.Fatal("replica without a proxy accepted a write")
	}
	epoch, err := r.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 {
		t.Fatalf("promoted epoch = %d, want 2", epoch)
	}
	if r.Replica() {
		t.Fatal("still a replica after Promote")
	}
	if r.Promotions() != 1 {
		t.Fatalf("promotions = %d, want 1", r.Promotions())
	}
	// Idempotent: promoting a primary is a no-op at the same term.
	if again, err := r.Promote(); err != nil || again != 2 {
		t.Fatalf("re-promote = (%d, %v), want (2, nil)", again, err)
	}
	if err := r.RegisterDocument(batcherDoc(1, 80)); err != nil {
		t.Fatalf("write after promotion: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// The epoch record replays: a restart serves the same term.
	r2, err := OpenDurable("r1", batcherSchema(), dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := r2.Epoch(); got != 2 {
		t.Fatalf("epoch after restart = %d, want 2", got)
	}
}

// TestFenceRejectsStaleAndAdoptsHigher: a stamp below the node's term is
// fenced and counted; a stamp above it fences the write AND steps the
// primary down (the stamp is proof of a newer term).
func TestFenceRejectsStaleAndAdoptsHigher(t *testing.T) {
	p, err := OpenDurable("p", batcherSchema(), t.TempDir(), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.fenceWrite(0); err != nil {
		t.Fatalf("unstamped write fenced: %v", err)
	}
	if err := p.fenceWrite(1); err != nil {
		t.Fatalf("current-term write fenced: %v", err)
	}
	p.bumpEpoch(3)
	err = p.fenceWrite(2)
	if err == nil {
		t.Fatal("stale-term write passed the fence")
	}
	if !IsFenced(err) {
		t.Fatalf("fence error %v not classified by IsFenced", err)
	}
	if p.FencedWrites() != 1 {
		t.Fatalf("fenced writes = %d, want 1", p.FencedWrites())
	}

	demoted := make(chan uint64, 1)
	p.OnDemote = func(epoch uint64, primary string) { demoted <- epoch }
	if err := p.fenceWrite(5); err == nil {
		t.Fatal("future-term write passed the fence")
	}
	if got := <-demoted; got != 5 {
		t.Fatalf("OnDemote epoch = %d, want 5", got)
	}
	if !p.Replica() {
		t.Fatal("primary did not step down on higher-term stamp")
	}
	if !p.ResyncPending() {
		t.Fatal("demoted primary's tail not marked suspect")
	}
	if p.Epoch() != 5 {
		t.Fatalf("epoch after step-down = %d, want 5", p.Epoch())
	}
}

// TestDemotedReplicaDegradesGracefully: a demoted node with no proxy
// returns the typed retryable NoPrimaryError carrying its last-known
// topology, and stays compatible with errors.Is(err, ErrNotPrimary).
func TestDemotedReplicaDegradesGracefully(t *testing.T) {
	p, err := OpenDurable("p", batcherSchema(), t.TempDir(), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.RegisterDocument(batcherDoc(1, 80)); err != nil {
		t.Fatal(err)
	}
	p.SetTopologyHint("", []string{"a:1", "b:2"})
	if !p.ObserveEpoch(2, "b:2") {
		t.Fatal("ObserveEpoch(higher) did not demote the primary")
	}
	err = p.RegisterDocument(batcherDoc(2, 80))
	if err == nil {
		t.Fatal("demoted node accepted a write with no primary")
	}
	if !IsNoPrimary(err) {
		t.Fatalf("degradation error %v not classified by IsNoPrimary", err)
	}
	if !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("degradation error %v lost ErrNotPrimary compatibility", err)
	}
	var np *NoPrimaryError
	if !errors.As(err, &np) {
		t.Fatalf("error %v is not a *NoPrimaryError", err)
	}
	if np.LastPrimary != "b:2" || len(np.Peers) != 2 {
		t.Fatalf("NoPrimaryError topology = %q %v, want b:2 [a:1 b:2]", np.LastPrimary, np.Peers)
	}
	// Reads keep serving on the demoted node.
	if _, err := p.Browse("CycleProvider", ""); err != nil {
		t.Fatalf("read on demoted node: %v", err)
	}
}

// TestInstallSnapshotRewindsDivergentTail: a demoted ex-primary whose log
// runs PAST the new primary's snapshot coverage (its unreplicated tail)
// repairs by wiping the divergent records and restarting at the snapshot,
// instead of refusing the install.
func TestInstallSnapshotRewindsDivergentTail(t *testing.T) {
	// New primary: shorter history, higher term.
	np, err := OpenDurable("new-primary", batcherSchema(), t.TempDir(), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer np.Close()
	if err := np.RegisterDocument(batcherDoc(1, 80)); err != nil {
		t.Fatal(err)
	}
	np.bumpEpoch(2)
	var snap bytes.Buffer
	if err := writeSnapshot(&snap, np.LogSeq(), np.Epoch(), np.Engine()); err != nil {
		t.Fatal(err)
	}

	// Old primary: longer (divergent) history at the old term.
	op, err := OpenDurable("old-primary", batcherSchema(), t.TempDir(), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer op.Close()
	for i := 0; i < 5; i++ {
		if err := op.RegisterDocument(batcherDoc(i, 80)); err != nil {
			t.Fatal(err)
		}
	}
	if op.LogSeq() <= np.LogSeq() {
		t.Fatalf("test setup: old tail %d not past snapshot %d", op.LogSeq(), np.LogSeq())
	}
	op.ObserveEpoch(2, "")
	if !op.ResyncPending() {
		t.Fatal("demotion did not mark the tail suspect")
	}
	got, err := op.InstallSnapshot(snap.Bytes())
	if err != nil {
		t.Fatalf("divergent-tail install: %v", err)
	}
	if got != np.LogSeq() {
		t.Fatalf("installed coverage %d, want %d", got, np.LogSeq())
	}
	if op.LogSeq() != np.LogSeq() {
		t.Fatalf("rewound tail = %d, want %d (divergent records wiped)", op.LogSeq(), np.LogSeq())
	}
	if op.ResyncPending() {
		t.Fatal("resync flag survived the repair")
	}
	if op.Epoch() != 2 {
		t.Fatalf("epoch after install = %d, want 2 (adopted from snapshot header)", op.Epoch())
	}
	// Without the resync flag the same rewind is still refused: only a
	// known-suspect tail may be thrown away.
	if _, err := op.InstallSnapshot(snap.Bytes()); err != nil {
		// Equal coverage is fine; shrink the snapshot to force a rewind.
		t.Fatalf("re-install at same coverage: %v", err)
	}
}
