package provider

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"mdv/internal/changelog"
	"mdv/internal/core"
	"mdv/internal/repository"
)

// collector gathers pushed changesets for one subscriber.
type collector struct {
	mu     sync.Mutex
	pushes []push
}

type push struct {
	seq   uint64
	reset bool
	cs    *core.Changeset
}

func (c *collector) apply(seq uint64, reset bool, cs *core.Changeset) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pushes = append(c.pushes, push{seq: seq, reset: reset, cs: cs})
	return nil
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pushes)
}

func (c *collector) last() push {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pushes[len(c.pushes)-1]
}

const durRule = `search CycleProvider c register c where c.serverPort > 0`

// TestDurableCrashRecovery: operations acknowledged by a durable provider
// survive abandoning the provider without any shutdown path (the changelog
// was fsynced before each acknowledgment, so this models kill -9).
func TestDurableCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenDurable("mdp", batcherSchema(), dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Durable() {
		t.Fatal("provider not durable")
	}
	subID, _, err := p.Subscribe("lmr", durRule)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := p.RegisterDocument(batcherDoc(i, 80)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.DeleteDocument("b0.rdf"); err != nil {
		t.Fatal(err)
	}
	wantResources := p.Engine().ResourceCount()
	// No Close, no snapshot: the provider is simply abandoned.

	p2, stats, err := OpenDurableWithStats("mdp", batcherSchema(), dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if stats.SnapshotSeq != 0 {
		t.Errorf("SnapshotSeq = %d, want 0 (no snapshot was written)", stats.SnapshotSeq)
	}
	if stats.Replayed != 7 { // subscribe + 5 registers + delete
		t.Errorf("Replayed = %d, want 7", stats.Replayed)
	}
	if got := p2.Engine().ResourceCount(); got != wantResources {
		t.Errorf("resources after recovery = %d, want %d", got, wantResources)
	}
	subs, err := p2.Engine().Subscriptions()
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 1 || subs[0].Subscriber != "lmr" || subs[0].ID != subID {
		t.Errorf("subscriptions after recovery = %+v, want id %d for lmr", subs, subID)
	}
	// The recovered provider keeps publishing on the replayed subscription.
	var c collector
	p2.Attach("lmr", c.apply)
	if err := p2.RegisterDocument(batcherDoc(100, 80)); err != nil {
		t.Fatal(err)
	}
	if c.count() != 1 {
		t.Errorf("pushes after recovery = %d, want 1", c.count())
	}
}

// TestDurableSnapshotAndTailReplay: Compact writes a snapshot covering the
// log; a later recovery loads it and replays only the tail past it.
func TestDurableSnapshotAndTailReplay(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenDurable("mdp", batcherSchema(), dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Subscribe("lmr", durRule); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := p.RegisterDocument(batcherDoc(i, 80)); err != nil {
			t.Fatal(err)
		}
	}
	snapSeq := p.LogSeq() // Compact's snapshot covers the tail as of here
	if err := p.Compact(); err != nil {
		t.Fatal(err)
	}
	for i := 4; i < 6; i++ { // tail past the snapshot
		if err := p.RegisterDocument(batcherDoc(i, 80)); err != nil {
			t.Fatal(err)
		}
	}
	want := p.Engine().ResourceCount()

	p2, stats, err := OpenDurableWithStats("mdp", batcherSchema(), dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if stats.SnapshotSeq != snapSeq {
		t.Errorf("SnapshotSeq = %d, want %d", stats.SnapshotSeq, snapSeq)
	}
	if stats.Replayed != 2 {
		t.Errorf("Replayed = %d, want 2 (tail only)", stats.Replayed)
	}
	if got := p2.Engine().ResourceCount(); got != want {
		t.Errorf("resources = %d, want %d", got, want)
	}
}

// TestDurableTruncation: segments below the snapshot and below every live
// subscriber's ack are removed; a subscriber that never acknowledges pins
// the whole log.
func TestDurableTruncation(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments so every operation rotates.
	p, err := OpenDurable("mdp", batcherSchema(), dir, DurableOptions{SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, _, err := p.Subscribe("lmr", durRule); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := p.RegisterDocument(batcherDoc(i, 80)); err != nil {
			t.Fatal(err)
		}
	}
	// Never acked: Compact must keep the log intact from the start.
	if err := p.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := p.dur.log.OldestSeq(); got != 1 {
		t.Errorf("OldestSeq after unacked compact = %d, want 1", got)
	}
	// Acknowledge everything; now only the active segment may remain.
	if err := p.Ack("lmr", p.LogSeq()); err != nil {
		t.Fatal(err)
	}
	if err := p.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := p.dur.log.OldestSeq(); got <= 1 {
		t.Errorf("OldestSeq after acked compact = %d, want > 1", got)
	}
}

// TestResumeReplaysMissedChangesets: a subscriber that was detached while
// operations were published catches up via Resume with exactly the pub
// records past its cursor, in order.
func TestResumeReplaysMissedChangesets(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenDurable("mdp", batcherSchema(), dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var c collector
	p.Attach("lmr", c.apply)
	if _, _, err := p.Subscribe("lmr", durRule); err != nil {
		t.Fatal(err)
	}
	if err := p.RegisterDocument(batcherDoc(0, 80)); err != nil {
		t.Fatal(err)
	}
	cursor := c.last().seq
	p.Detach("lmr")

	// Published while detached.
	for i := 1; i < 4; i++ {
		if err := p.RegisterDocument(batcherDoc(i, 80)); err != nil {
			t.Fatal(err)
		}
	}

	var c2 collector
	p.Attach("lmr", c2.apply)
	latest, err := p.Resume("lmr", cursor)
	if err != nil {
		t.Fatal(err)
	}
	if latest != p.LogSeq() {
		t.Errorf("latest = %d, want %d", latest, p.LogSeq())
	}
	if c2.count() != 3 {
		t.Fatalf("resumed pushes = %d, want 3", c2.count())
	}
	var prev uint64
	for _, ps := range c2.pushes {
		if ps.reset {
			t.Error("unexpected reset push during gap-free resume")
		}
		if ps.seq <= prev || ps.seq <= cursor {
			t.Errorf("push sequence %d out of order (prev %d, cursor %d)", ps.seq, prev, cursor)
		}
		prev = ps.seq
	}

	// A second resume from the new cursor is a no-op.
	var c3 collector
	p.Detach("lmr")
	p.Attach("lmr", c3.apply)
	if _, err := p.Resume("lmr", latest); err != nil {
		t.Fatal(err)
	}
	if c3.count() != 0 {
		t.Errorf("pushes after current resume = %d, want 0", c3.count())
	}
}

// TestResumeFallsBackToReset: when the changelog cannot prove a gap-free
// replay (truncated past the cursor, or the cursor is ahead of the log),
// Resume delivers one full-state reset changeset.
func TestResumeFallsBackToReset(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenDurable("mdp", batcherSchema(), dir, DurableOptions{SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, _, err := p.Subscribe("lmr", durRule); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := p.RegisterDocument(batcherDoc(i, 80)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Ack("lmr", p.LogSeq()); err != nil {
		t.Fatal(err)
	}
	if err := p.Compact(); err != nil { // truncates: seq 1 is gone
		t.Fatal(err)
	}
	if p.dur.log.OldestSeq() <= 1 {
		t.Skip("truncation did not advance; cannot exercise the reset path")
	}

	var c collector
	p.Attach("lmr", c.apply)
	latest, err := p.Resume("lmr", 0) // cursor long gone
	if err != nil {
		t.Fatal(err)
	}
	if c.count() != 1 {
		t.Fatalf("pushes = %d, want 1 reset", c.count())
	}
	ps := c.last()
	if !ps.reset || ps.seq != latest {
		t.Errorf("push = {seq %d, reset %v}, want {seq %d, reset true}", ps.seq, ps.reset, latest)
	}
	// The reset carries the full match set: all 8 matching resources.
	if got := len(ps.cs.Upserts); got != 8 {
		t.Errorf("reset upserts = %d, want 8", got)
	}

	// Cursor ahead of the log (provider lost unsynced tail in a crash, or
	// the directory was swapped): also a reset.
	var c2 collector
	p.Detach("lmr")
	p.Attach("lmr", c2.apply)
	if _, err := p.Resume("lmr", p.LogSeq()+1000); err != nil {
		t.Fatal(err)
	}
	if c2.count() != 1 || !c2.last().reset {
		t.Errorf("resume from future cursor: pushes = %+v, want one reset", c2.count())
	}
}

// TestDurableUnsubscribeReplay: an unsubscribe is logged and survives
// recovery; the recovered engine no longer publishes to the subscriber.
func TestDurableUnsubscribeReplay(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenDurable("mdp", batcherSchema(), dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	subID, _, err := p.Subscribe("lmr", durRule)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Unsubscribe(subID); err != nil {
		t.Fatal(err)
	}
	// Abandon without Close.
	p2, err := OpenDurable("mdp", batcherSchema(), dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	subs, err := p2.Engine().Subscriptions()
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 0 {
		t.Errorf("subscriptions after recovery = %+v, want none", subs)
	}
}

// TestDurableSyncPolicies: the provider acknowledges operations correctly
// under each changelog durability policy.
func TestDurableSyncPolicies(t *testing.T) {
	for _, sync := range []changelog.SyncPolicy{changelog.SyncGroup, changelog.SyncAlways, changelog.SyncNone} {
		t.Run(fmt.Sprint(sync), func(t *testing.T) {
			dir := t.TempDir()
			p, err := OpenDurable("mdp", batcherSchema(), dir, DurableOptions{Sync: sync})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				if err := p.RegisterDocument(batcherDoc(i, 80)); err != nil {
					t.Fatal(err)
				}
			}
			if err := p.Close(); err != nil {
				t.Fatal(err)
			}
			p2, err := OpenDurable("mdp", batcherSchema(), dir, DurableOptions{Sync: sync})
			if err != nil {
				t.Fatal(err)
			}
			if got := p2.Engine().ResourceCount(); got != 3 {
				t.Errorf("resources = %d, want 3", got)
			}
			p2.Close()
		})
	}
}

// chopLastRecord truncates the last record off the newest WAL segment,
// simulating a tail that was buffered but never reached the disk before a
// crash (ack records are appended without awaiting durability).
func chopLastRecord(t *testing.T, walDir string) {
	t.Helper()
	entries, err := os.ReadDir(walDir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".seg") {
			segs = append(segs, filepath.Join(walDir, e.Name()))
		}
	}
	if len(segs) == 0 {
		t.Fatal("no WAL segments")
	}
	sort.Strings(segs)
	tail := segs[len(segs)-1]
	buf, err := os.ReadFile(tail)
	if err != nil {
		t.Fatal(err)
	}
	// A freshly rotated tail segment can be empty; the record to chop is
	// then in the previous segment (the empty file is removed, as a crash
	// before any append would leave nothing to recover from it either).
	for len(buf) == 0 && len(segs) > 1 {
		if err := os.Remove(tail); err != nil {
			t.Fatal(err)
		}
		segs = segs[:len(segs)-1]
		tail = segs[len(segs)-1]
		if buf, err = os.ReadFile(tail); err != nil {
			t.Fatal(err)
		}
	}
	// Record layout: [4B len][4B crc][8B seq][payload], len = 8 + payload.
	var off, last int64
	for off < int64(len(buf)) {
		recLen := int64(binary.BigEndian.Uint32(buf[off : off+4]))
		last = off
		off += 8 + recLen
	}
	if off != int64(len(buf)) {
		t.Fatalf("unexpected segment layout (size %d, walked to %d)", len(buf), off)
	}
	// last == 0 means a single-record segment: truncating to zero leaves an
	// empty segment file, exactly what a crash before the record hit the
	// disk leaves behind.
	if err := os.Truncate(tail, last); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotAheadOfLostTail: a snapshot can record a sequence whose log
// record never became durable (an async ack buffered at crash time). After
// recovery the log must not hand the lost sequence numbers out again —
// otherwise the next acknowledged operation lands at-or-below the snapshot
// sequence and a second recovery silently skips it.
func TestSnapshotAheadOfLostTail(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenDurable("mdp", batcherSchema(), dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Subscribe("lmr", durRule); err != nil {
		t.Fatal(err)
	}
	if err := p.RegisterDocument(batcherDoc(0, 80)); err != nil {
		t.Fatal(err)
	}
	if err := p.Ack("lmr", p.LogSeq()); err != nil { // the async ack record
		t.Fatal(err)
	}
	snapSeq := p.LogSeq()
	if err := p.Compact(); err != nil { // snapshot covers the ack's sequence
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// Crash: the ack record had been buffered but never fsynced.
	chopLastRecord(t, filepath.Join(dir, "wal"))

	p2, stats, err := OpenDurableWithStats("mdp", batcherSchema(), dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SnapshotSeq != snapSeq {
		t.Fatalf("SnapshotSeq = %d, want %d", stats.SnapshotSeq, snapSeq)
	}
	if got := p2.LogSeq(); got < snapSeq {
		t.Errorf("LogSeq after recovery = %d, below snapshot seq %d: lost sequences can be reused", got, snapSeq)
	}
	// An acknowledged operation in the danger window, then a second crash
	// (abandon without snapshot).
	if err := p2.RegisterDocument(batcherDoc(1, 80)); err != nil {
		t.Fatal(err)
	}
	want := p2.Engine().ResourceCount()

	p3, _, err := OpenDurableWithStats("mdp", batcherSchema(), dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p3.Close()
	if got := p3.Engine().ResourceCount(); got != want {
		t.Errorf("resources after second recovery = %d, want %d (acknowledged registration lost)", got, want)
	}
}

// TestLostDeliveredTailForcesReset: pushes reach subscribers before their
// group-commit fsync returns, so a crash can swallow the log records behind
// sequences an LMR already applied. Recovery must keep those sequence
// numbers out of circulation and Resume must reset a cursor inside the lost
// range — otherwise the subscriber keeps phantom state from operations the
// provider no longer has, and skips live pushes in the reused range as
// duplicates.
func TestLostDeliveredTailForcesReset(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenDurable("mdp", batcherSchema(), dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	repo, err := repository.New("lmr", batcherSchema())
	if err != nil {
		t.Fatal(err)
	}
	p.Attach("lmr", repo.ApplyPush)
	if _, _, err := p.Subscribe("lmr", durRule); err != nil {
		t.Fatal(err)
	}
	if err := p.RegisterDocument(batcherDoc(0, 80)); err != nil {
		t.Fatal(err)
	}
	if err := p.RegisterDocument(batcherDoc(1, 80)); err != nil {
		t.Fatal(err)
	}
	if repo.Len() != 2 {
		t.Fatalf("cache = %d resources before crash, want 2", repo.Len())
	}
	cursor := repo.LastSeq()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// Crash: the second registration's op and pub records had already been
	// pushed to the subscriber but never reached the disk.
	chopLastRecord(t, filepath.Join(dir, "wal"))
	chopLastRecord(t, filepath.Join(dir, "wal"))

	p2, stats, err := OpenDurableWithStats("mdp", batcherSchema(), dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if stats.Replayed != 2 { // subscribe + first register survived
		t.Errorf("Replayed = %d, want 2", stats.Replayed)
	}
	// The delivered sequence numbers must not be handed out again.
	if got := p2.LogSeq(); got < cursor {
		t.Errorf("LogSeq after recovery = %d, below delivered cursor %d: lost sequences can be reused", got, cursor)
	}
	p2.Attach("lmr", repo.ApplyPush)
	latest, err := p2.Resume("lmr", cursor)
	if err != nil {
		t.Fatal(err)
	}
	if got := repo.Stats().Resets; got != 1 {
		t.Fatalf("Resets after resume from lost cursor = %d, want 1", got)
	}
	if repo.LastSeq() != latest {
		t.Errorf("cursor after reset = %d, want %d", repo.LastSeq(), latest)
	}
	if repo.Has("b1.rdf#cp") {
		t.Error("phantom resource from the crash-lost registration survived the reset")
	}
	if !repo.Has("b0.rdf#cp") {
		t.Error("surviving registration missing from the reset fill")
	}
	// Live pushes after the reset must apply: the cursor was rebased and
	// the sequences are fresh.
	if err := p2.RegisterDocument(batcherDoc(2, 80)); err != nil {
		t.Fatal(err)
	}
	if !repo.Has("b2.rdf#cp") {
		t.Error("live push after reset was skipped as a duplicate")
	}
	// Differential: the cache now equals that of a never-disconnected LMR
	// (the surviving and the new registration, nothing else).
	if repo.Len() != 2 {
		t.Errorf("cache = %d resources after convergence, want 2", repo.Len())
	}
	if got := repo.Stats().DuplicatesSkipped; got != 0 {
		t.Errorf("DuplicatesSkipped = %d, want 0", got)
	}
}

// TestRecoverRefusesLogTruncatedPastSnapshot: when the retained log starts
// past the snapshot's coverage (a stale snapshot resurfaced after the
// segments covering it were truncated), the operations in between are
// unrecoverably gone; recovery must fail loudly instead of silently
// skipping them.
func TestRecoverRefusesLogTruncatedPastSnapshot(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments so every operation rotates and truncation bites.
	p, err := OpenDurable("mdp", batcherSchema(), dir, DurableOptions{SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := p.RegisterDocument(batcherDoc(i, 80)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Compact(); err != nil {
		t.Fatal(err)
	}
	staleSnap, err := os.ReadFile(filepath.Join(dir, snapshotFile))
	if err != nil {
		t.Fatal(err)
	}
	for i := 3; i < 6; i++ {
		if err := p.RegisterDocument(batcherDoc(i, 80)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Compact(); err != nil { // truncates the segments the stale snapshot depends on
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// The crash-resurfaced stale snapshot.
	if err := os.WriteFile(filepath.Join(dir, snapshotFile), staleSnap, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = OpenDurableWithStats("mdp", batcherSchema(), dir, DurableOptions{SegmentSize: 64})
	if err == nil {
		t.Fatal("recovery accepted a log truncated past the snapshot (operations silently lost)")
	}
	if !strings.Contains(err.Error(), "changelog starts at") {
		t.Errorf("unexpected recovery error: %v", err)
	}
}
