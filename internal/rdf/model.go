// Package rdf implements the data model of the MDV system: RDF resources
// and statements (triples), an RDF/XML parser and serializer for the subset
// MDV uses, RDF Schema with the MDV strong/weak reference extension, and
// document diffing for update/delete detection (paper §3.5).
package rdf

import (
	"fmt"
	"sort"
	"strings"
)

// ValueKind distinguishes literal property values from resource references.
type ValueKind uint8

const (
	// Literal is a text/number/boolean literal value.
	Literal ValueKind = iota
	// ResourceRef is a reference to another resource by URI reference.
	ResourceRef
)

// Value is a property value: either a literal or a resource reference.
type Value struct {
	Kind    ValueKind
	Literal string // literal lexical form (Kind == Literal)
	Ref     string // target URI reference (Kind == ResourceRef)
}

// Lit makes a literal value.
func Lit(s string) Value { return Value{Kind: Literal, Literal: s} }

// Ref makes a resource reference value.
func Ref(uriRef string) Value { return Value{Kind: ResourceRef, Ref: uriRef} }

// String returns the lexical form: the literal text, or the target URI
// reference. This is the form stored in the FilterData table.
func (v Value) String() string {
	if v.Kind == ResourceRef {
		return v.Ref
	}
	return v.Literal
}

// Property is one (name, value) pair of a resource. Set-valued properties
// appear as multiple Property entries with the same name.
type Property struct {
	Name  string
	Value Value
}

// Resource is an RDF resource: a unique URI reference, the class it is an
// instance of, and its properties.
type Resource struct {
	// URIRef is the globally unique URI reference, formed from the document
	// URI and the local rdf:ID (e.g. "doc.rdf#host"), or taken verbatim from
	// rdf:about.
	URIRef string
	// Class is the schema class the resource instantiates (the RDF typed
	// node element name, e.g. "CycleProvider").
	Class string
	// Props holds the properties in document order.
	Props []Property
}

// Get returns the first value of the named property.
func (r *Resource) Get(name string) (Value, bool) {
	for _, p := range r.Props {
		if p.Name == name {
			return p.Value, true
		}
	}
	return Value{}, false
}

// GetAll returns every value of the named property (set-valued access).
func (r *Resource) GetAll(name string) []Value {
	var out []Value
	for _, p := range r.Props {
		if p.Name == name {
			out = append(out, p.Value)
		}
	}
	return out
}

// Set replaces all values of the named property with a single value.
func (r *Resource) Set(name string, v Value) {
	out := r.Props[:0]
	for _, p := range r.Props {
		if p.Name != name {
			out = append(out, p)
		}
	}
	r.Props = append(out, Property{Name: name, Value: v})
}

// Add appends a property value (for set-valued properties).
func (r *Resource) Add(name string, v Value) {
	r.Props = append(r.Props, Property{Name: name, Value: v})
}

// References returns the URI references of all resources this resource
// points to.
func (r *Resource) References() []string {
	var out []string
	for _, p := range r.Props {
		if p.Value.Kind == ResourceRef {
			out = append(out, p.Value.Ref)
		}
	}
	return out
}

// Clone returns a deep copy of the resource.
func (r *Resource) Clone() *Resource {
	cp := &Resource{URIRef: r.URIRef, Class: r.Class}
	cp.Props = append([]Property(nil), r.Props...)
	return cp
}

// Fingerprint returns a canonical string of the resource's content: class
// and sorted properties. Two resources are equal (for update detection) iff
// their fingerprints are equal.
func (r *Resource) Fingerprint() string {
	props := make([]string, len(r.Props))
	for i, p := range r.Props {
		kind := "L"
		if p.Value.Kind == ResourceRef {
			kind = "R"
		}
		props[i] = p.Name + "\x00" + kind + "\x00" + p.Value.String()
	}
	sort.Strings(props)
	return r.Class + "\x01" + strings.Join(props, "\x01")
}

// Document is an RDF document: a URI and its resources.
type Document struct {
	// URI is the document's globally unique URI (e.g. "doc.rdf"). Local
	// rdf:ID identifiers are qualified against it.
	URI       string
	Resources []*Resource
}

// NewDocument creates an empty document with the given URI.
func NewDocument(uri string) *Document { return &Document{URI: uri} }

// QualifyID turns a local rdf:ID into a URI reference within this document.
func (d *Document) QualifyID(localID string) string { return d.URI + "#" + localID }

// NewResource creates a resource with a local ID, appends it, and returns it.
func (d *Document) NewResource(localID, class string) *Resource {
	r := &Resource{URIRef: d.QualifyID(localID), Class: class}
	d.Resources = append(d.Resources, r)
	return r
}

// Find returns the resource with the given URI reference.
func (d *Document) Find(uriRef string) (*Resource, bool) {
	for _, r := range d.Resources {
		if r.URIRef == uriRef {
			return r, true
		}
	}
	return nil, false
}

// Clone returns a deep copy of the document.
func (d *Document) Clone() *Document {
	cp := &Document{URI: d.URI, Resources: make([]*Resource, len(d.Resources))}
	for i, r := range d.Resources {
		cp.Resources[i] = r.Clone()
	}
	return cp
}

// Validate checks document-level invariants: unique URI references and no
// empty classes.
func (d *Document) Validate() error {
	if d.URI == "" {
		return fmt.Errorf("rdf: document has no URI")
	}
	seen := make(map[string]bool, len(d.Resources))
	for _, r := range d.Resources {
		if r.URIRef == "" {
			return fmt.Errorf("rdf: document %s: resource with empty URI reference", d.URI)
		}
		if r.Class == "" {
			return fmt.Errorf("rdf: document %s: resource %s has no class", d.URI, r.URIRef)
		}
		if seen[r.URIRef] {
			return fmt.Errorf("rdf: document %s: duplicate URI reference %s", d.URI, r.URIRef)
		}
		seen[r.URIRef] = true
	}
	return nil
}

// SubjectProperty is the pseudo-property name under which each resource's
// own URI reference is recorded as a statement, so that rules can register a
// single resource by its URI reference (paper §3.2, Figure 4).
const SubjectProperty = "rdf#subject"

// Statement is an RDF triple augmented with the subject's class, matching
// one row of the FilterData table (paper Figure 4).
type Statement struct {
	URIRef   string // subject
	Class    string // subject's class
	Property string // predicate
	Value    string // object lexical form
	IsRef    bool   // object is a resource reference
}

// Statements decomposes the document into its atoms: one statement per
// property, plus one rdf#subject statement per resource (paper §3.2).
func (d *Document) Statements() []Statement {
	var out []Statement
	for _, r := range d.Resources {
		out = append(out, Statement{
			URIRef:   r.URIRef,
			Class:    r.Class,
			Property: SubjectProperty,
			Value:    r.URIRef,
			IsRef:    true,
		})
		for _, p := range r.Props {
			out = append(out, Statement{
				URIRef:   r.URIRef,
				Class:    r.Class,
				Property: p.Name,
				Value:    p.Value.String(),
				IsRef:    p.Value.Kind == ResourceRef,
			})
		}
	}
	return out
}
