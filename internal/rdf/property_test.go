package rdf

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// randomResource draws a resource with arbitrary printable property values.
func randomResource(rng *rand.Rand, doc *Document, id int) *Resource {
	r := doc.NewResource(fmt.Sprintf("r%d", id), fmt.Sprintf("Class%d", rng.Intn(3)))
	n := rng.Intn(5)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("p%d", rng.Intn(4))
		if rng.Intn(4) == 0 {
			r.Add(name, Ref(fmt.Sprintf("other.rdf#x%d", rng.Intn(10))))
		} else {
			// Include XML-hostile characters.
			r.Add(name, Lit(randomLiteral(rng)))
		}
	}
	return r
}

func randomLiteral(rng *rand.Rand) string {
	// Leading/trailing whitespace is not preserved by the RDF/XML mapping
	// (property text is trimmed on parse, as the serializer pretty-prints),
	// so generated literals are trimmed; interior whitespace is fair game.
	alphabet := []rune("abc<>&\"' \tÄλ0129")
	n := rng.Intn(12)
	out := make([]rune, n)
	for i := range out {
		out[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return strings.TrimSpace(string(out))
}

// TestSerializeParseRoundTripProperty: any document we can build survives
// WriteDocument -> ParseDocument with identical fingerprints.
func TestSerializeParseRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 200; iter++ {
		doc := NewDocument(fmt.Sprintf("rt%d.rdf", iter))
		n := 1 + rng.Intn(4)
		for i := 0; i < n; i++ {
			randomResource(rng, doc, i)
		}
		out := DocumentString(doc)
		back, err := ParseDocumentString(doc.URI, out)
		if err != nil {
			t.Fatalf("iter %d: reparse: %v\n%s", iter, err, out)
		}
		if len(back.Resources) != len(doc.Resources) {
			t.Fatalf("iter %d: resource count %d vs %d", iter, len(back.Resources), len(doc.Resources))
		}
		for _, orig := range doc.Resources {
			got, ok := back.Find(orig.URIRef)
			if !ok {
				t.Fatalf("iter %d: lost %s", iter, orig.URIRef)
			}
			if got.Fingerprint() != orig.Fingerprint() {
				t.Fatalf("iter %d: %s changed:\n %q\n %q", iter, orig.URIRef,
					orig.Fingerprint(), got.Fingerprint())
			}
		}
	}
}

// Property: a diff applied conceptually to the old document accounts for
// every resource exactly once.
func TestDiffPartitionProperty(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		rngA := rand.New(rand.NewSource(seedA))
		rngB := rand.New(rand.NewSource(seedB))
		old := NewDocument("d.rdf")
		new := NewDocument("d.rdf")
		for i := 0; i < 6; i++ {
			if rngA.Intn(3) != 0 {
				randomResource(rngA, old, i)
			}
			if rngB.Intn(3) != 0 {
				randomResource(rngB, new, i)
			}
		}
		d := DiffDocuments(old, new)
		// Partition of new: added + updated + unchanged.
		if len(d.Added)+len(d.Updated)+len(d.Unchanged) != len(new.Resources) {
			return false
		}
		// Partition of old: deleted + updated + unchanged.
		if len(d.Deleted)+len(d.OldUpdated)+len(d.Unchanged) != len(old.Resources) {
			return false
		}
		// Updated and OldUpdated are aligned by URI.
		for i := range d.Updated {
			if d.Updated[i].URIRef != d.OldUpdated[i].URIRef {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Statements() emits exactly one rdf#subject atom per resource
// plus one atom per property.
func TestStatementsCountProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 100; iter++ {
		doc := NewDocument("d.rdf")
		props := 0
		n := rng.Intn(5)
		for i := 0; i < n; i++ {
			r := randomResource(rng, doc, i)
			props += len(r.Props)
		}
		stmts := doc.Statements()
		if len(stmts) != n+props {
			t.Fatalf("iter %d: %d statements for %d resources with %d properties",
				iter, len(stmts), n, props)
		}
		subj := 0
		for _, s := range stmts {
			if s.Property == SubjectProperty {
				subj++
				if !s.IsRef || s.Value != s.URIRef {
					t.Fatalf("malformed subject atom: %+v", s)
				}
			}
		}
		if subj != n {
			t.Fatalf("iter %d: %d subject atoms for %d resources", iter, subj, n)
		}
	}
}
