package rdf

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Namespace URIs recognized by the parser.
const (
	RDFNamespace  = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	RDFSNamespace = "http://www.w3.org/2000/01/rdf-schema#"
	// MDVNamespace carries the MDV schema extensions (strong/weak
	// references, paper §2.4).
	MDVNamespace = "http://mdv.db.fmi.uni-passau.de/schema#"
)

// ParseDocument parses an RDF/XML document (the subset MDV uses: typed
// nodes with rdf:ID/rdf:about, property elements holding literals, nested
// typed nodes, or rdf:resource references).
//
// Nested typed nodes are hoisted into top-level resources and replaced by a
// reference, reflecting that RDF does not distinguish nested from referenced
// resources (paper §2.1).
func ParseDocument(uri string, r io.Reader) (*Document, error) {
	doc := NewDocument(uri)
	dec := xml.NewDecoder(r)

	// Find the rdf:RDF root.
	root, err := nextStartElement(dec)
	if err != nil {
		return nil, fmt.Errorf("rdf: document %s: %w", uri, err)
	}
	if root == nil || !isRDFName(root.Name, "RDF") {
		return nil, fmt.Errorf("rdf: document %s: root element is not rdf:RDF", uri)
	}

	// Each child of the root is a typed node.
	for {
		se, err := nextChildStart(dec)
		if err != nil {
			return nil, fmt.Errorf("rdf: document %s: %w", uri, err)
		}
		if se == nil {
			break
		}
		if _, err := parseTypedNode(doc, dec, *se, 0); err != nil {
			return nil, fmt.Errorf("rdf: document %s: %w", uri, err)
		}
	}
	if err := doc.Validate(); err != nil {
		return nil, err
	}
	return doc, nil
}

// ParseDocumentString is ParseDocument over a string.
func ParseDocumentString(uri, src string) (*Document, error) {
	return ParseDocument(uri, strings.NewReader(src))
}

const maxNestingDepth = 64

// parseTypedNode parses a typed node element (a resource), returning its
// URI reference. The start element has already been consumed.
func parseTypedNode(doc *Document, dec *xml.Decoder, se xml.StartElement, depth int) (string, error) {
	if depth > maxNestingDepth {
		return "", fmt.Errorf("resource nesting deeper than %d", maxNestingDepth)
	}
	class := se.Name.Local
	var uriRef string
	for _, a := range se.Attr {
		switch {
		case isRDFName(a.Name, "ID"):
			uriRef = doc.QualifyID(a.Value)
		case isRDFName(a.Name, "about"):
			uriRef = a.Value
		}
	}
	if uriRef == "" {
		return "", fmt.Errorf("resource of class %s has neither rdf:ID nor rdf:about", class)
	}
	res := &Resource{URIRef: uriRef, Class: class}
	doc.Resources = append(doc.Resources, res)

	// Children are property elements.
	for {
		tok, err := dec.Token()
		if err != nil {
			return "", err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if err := parseProperty(doc, dec, res, t, depth); err != nil {
				return "", err
			}
		case xml.EndElement:
			return uriRef, nil
		case xml.CharData:
			if s := strings.TrimSpace(string(t)); s != "" {
				return "", fmt.Errorf("unexpected text %q inside resource %s", s, uriRef)
			}
		}
	}
}

// parseProperty parses one property element of a resource.
func parseProperty(doc *Document, dec *xml.Decoder, res *Resource, se xml.StartElement, depth int) error {
	name := se.Name.Local

	// rdf:resource attribute: reference property, element must be empty.
	for _, a := range se.Attr {
		if isRDFName(a.Name, "resource") {
			target := a.Value
			if strings.HasPrefix(target, "#") {
				target = doc.URI + target
			}
			res.Add(name, Ref(target))
			return dec.Skip()
		}
	}

	// Otherwise the content is either text (literal) or a nested typed node.
	var text strings.Builder
	sawChild := false
	for {
		tok, err := dec.Token()
		if err != nil {
			return err
		}
		switch t := tok.(type) {
		case xml.CharData:
			text.Write(t)
		case xml.StartElement:
			// Nested typed node: hoist it and store a reference.
			ref, err := parseTypedNode(doc, dec, t, depth+1)
			if err != nil {
				return err
			}
			res.Add(name, Ref(ref))
			sawChild = true
		case xml.EndElement:
			if !sawChild {
				res.Add(name, Lit(strings.TrimSpace(text.String())))
			} else if s := strings.TrimSpace(text.String()); s != "" {
				return fmt.Errorf("property %s of %s mixes text and nested resources", name, res.URIRef)
			}
			return nil
		}
	}
}

func isRDFName(n xml.Name, local string) bool {
	if n.Local != local {
		return false
	}
	// Accept both the canonical namespace and unprefixed usage (lenient for
	// hand-written test documents).
	return n.Space == RDFNamespace || n.Space == "" || n.Space == "rdf"
}

// nextStartElement returns the first start element, or nil at EOF.
func nextStartElement(dec *xml.Decoder) (*xml.StartElement, error) {
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return nil, nil
		}
		if err != nil {
			return nil, err
		}
		if se, ok := tok.(xml.StartElement); ok {
			return &se, nil
		}
	}
}

// nextChildStart returns the next start element before the parent's end
// element, or nil when the parent closes (or at EOF).
func nextChildStart(dec *xml.Decoder) (*xml.StartElement, error) {
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return nil, nil
		}
		if err != nil {
			return nil, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			return &t, nil
		case xml.EndElement:
			return nil, nil
		}
	}
}

// WriteDocument serializes a document as RDF/XML. All resources are written
// top-level; references use rdf:resource attributes. The output parses back
// to an equivalent document (same resources, classes, and properties).
func WriteDocument(w io.Writer, doc *Document) error {
	var sb strings.Builder
	sb.WriteString(xml.Header)
	sb.WriteString(`<rdf:RDF xmlns:rdf="` + RDFNamespace + `">` + "\n")
	for _, r := range doc.Resources {
		sb.WriteString("  <" + r.Class)
		if local, ok := strings.CutPrefix(r.URIRef, doc.URI+"#"); ok {
			sb.WriteString(` rdf:ID="` + escapeAttr(local) + `"`)
		} else {
			sb.WriteString(` rdf:about="` + escapeAttr(r.URIRef) + `"`)
		}
		sb.WriteString(">\n")
		for _, p := range r.Props {
			if p.Value.Kind == ResourceRef {
				target := p.Value.Ref
				if local, ok := strings.CutPrefix(target, doc.URI+"#"); ok {
					target = "#" + local
				}
				sb.WriteString("    <" + p.Name + ` rdf:resource="` + escapeAttr(target) + `"/>` + "\n")
				continue
			}
			sb.WriteString("    <" + p.Name + ">" + escapeText(p.Value.Literal) + "</" + p.Name + ">\n")
		}
		sb.WriteString("  </" + r.Class + ">\n")
	}
	sb.WriteString("</rdf:RDF>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// DocumentString serializes a document to a string.
func DocumentString(doc *Document) string {
	var sb strings.Builder
	WriteDocument(&sb, doc)
	return sb.String()
}

func escapeText(s string) string {
	var sb strings.Builder
	xml.EscapeText(&sb, []byte(s))
	return sb.String()
}

func escapeAttr(s string) string {
	return strings.NewReplacer(`&`, "&amp;", `<`, "&lt;", `>`, "&gt;", `"`, "&quot;").Replace(s)
}

// SortResources orders the document's resources by URI reference. Useful
// for deterministic serialization in tests and replication.
func (d *Document) SortResources() {
	sort.Slice(d.Resources, func(i, j int) bool {
		return d.Resources[i].URIRef < d.Resources[j].URIRef
	})
}
