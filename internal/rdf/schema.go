package rdf

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PropType is the declared range of a property.
type PropType uint8

const (
	// TypeString is a free-text literal.
	TypeString PropType = iota
	// TypeInteger is an integer literal.
	TypeInteger
	// TypeFloat is a floating-point literal.
	TypeFloat
	// TypeBoolean is a true/false literal.
	TypeBoolean
	// TypeResource is a reference to another resource.
	TypeResource
)

func (t PropType) String() string {
	switch t {
	case TypeString:
		return "string"
	case TypeInteger:
		return "integer"
	case TypeFloat:
		return "float"
	case TypeBoolean:
		return "boolean"
	case TypeResource:
		return "resource"
	default:
		return fmt.Sprintf("PropType(%d)", uint8(t))
	}
}

// RefKind classifies reference properties as strong or weak (paper §2.4).
// Resources behind strong references are transmitted together with the
// referencing resource; weak references are never followed.
type RefKind uint8

const (
	// WeakRef references are not followed during transmission.
	WeakRef RefKind = iota
	// StrongRef references are always transmitted with the referrer.
	StrongRef
)

func (k RefKind) String() string {
	if k == StrongRef {
		return "strong"
	}
	return "weak"
}

// PropertyDef declares one property of a class.
type PropertyDef struct {
	Name string
	Type PropType
	// RefClass is the range class for TypeResource properties.
	RefClass string
	// RefKind applies to TypeResource properties (strong/weak, §2.4).
	RefKind RefKind
	// SetValued allows multiple values; the rule language's ? operator
	// applies to such properties.
	SetValued bool
}

// Class declares a schema class and its properties.
type Class struct {
	Name  string
	props map[string]*PropertyDef
}

// Property returns the declared property, if any.
func (c *Class) Property(name string) (*PropertyDef, bool) {
	p, ok := c.props[name]
	return p, ok
}

// Properties returns all property definitions, sorted by name.
func (c *Class) Properties() []*PropertyDef {
	out := make([]*PropertyDef, 0, len(c.props))
	for _, p := range c.props {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Schema is the set of classes metadata must conform to. All MDPs of an MDV
// federation share one schema (paper §2.2).
type Schema struct {
	classes map[string]*Class
}

// NewSchema creates an empty schema.
func NewSchema() *Schema { return &Schema{classes: make(map[string]*Class)} }

// AddClass declares a class (idempotent) and returns it.
func (s *Schema) AddClass(name string) *Class {
	if c, ok := s.classes[name]; ok {
		return c
	}
	c := &Class{Name: name, props: make(map[string]*PropertyDef)}
	s.classes[name] = c
	return c
}

// AddProperty declares a property on a class, creating the class if needed.
func (s *Schema) AddProperty(class string, def PropertyDef) error {
	if def.Name == "" {
		return fmt.Errorf("rdf: schema: property with empty name on class %s", class)
	}
	if def.Type == TypeResource && def.RefClass == "" {
		return fmt.Errorf("rdf: schema: resource property %s.%s has no range class", class, def.Name)
	}
	c := s.AddClass(class)
	if _, dup := c.props[def.Name]; dup {
		return fmt.Errorf("rdf: schema: duplicate property %s.%s", class, def.Name)
	}
	p := def
	c.props[def.Name] = &p
	return nil
}

// MustAddProperty is AddProperty, panicking on error (for static schemas).
func (s *Schema) MustAddProperty(class string, def PropertyDef) {
	if err := s.AddProperty(class, def); err != nil {
		panic(err)
	}
}

// Class returns the named class.
func (s *Schema) Class(name string) (*Class, bool) {
	c, ok := s.classes[name]
	return c, ok
}

// Classes returns all class names, sorted.
func (s *Schema) Classes() []string {
	out := make([]string, 0, len(s.classes))
	for name := range s.classes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// CheckLiteral verifies that a literal lexical form conforms to the
// property type.
func (p *PropertyDef) CheckLiteral(lex string) error {
	switch p.Type {
	case TypeString:
		return nil
	case TypeInteger:
		if _, err := strconv.ParseInt(lex, 10, 64); err != nil {
			return fmt.Errorf("rdf: %q is not a valid integer for property %s", lex, p.Name)
		}
		return nil
	case TypeFloat:
		if _, err := strconv.ParseFloat(lex, 64); err != nil {
			return fmt.Errorf("rdf: %q is not a valid float for property %s", lex, p.Name)
		}
		return nil
	case TypeBoolean:
		switch lex {
		case "true", "false":
			return nil
		}
		return fmt.Errorf("rdf: %q is not a valid boolean for property %s", lex, p.Name)
	case TypeResource:
		return fmt.Errorf("rdf: property %s expects a resource reference, got literal %q", p.Name, lex)
	}
	return fmt.Errorf("rdf: unknown property type %d", p.Type)
}

// ValidateDocument checks a document against the schema: every resource's
// class must be declared, every property must be declared on its class,
// literal values must conform to their type, references must be used where
// declared, set-valued constraints must hold, and references resolvable
// within the document must target the declared range class.
func (s *Schema) ValidateDocument(doc *Document) error {
	if err := doc.Validate(); err != nil {
		return err
	}
	for _, r := range doc.Resources {
		class, ok := s.Class(r.Class)
		if !ok {
			return fmt.Errorf("rdf: document %s: resource %s: unknown class %s", doc.URI, r.URIRef, r.Class)
		}
		counts := map[string]int{}
		for _, prop := range r.Props {
			def, ok := class.Property(prop.Name)
			if !ok {
				return fmt.Errorf("rdf: document %s: resource %s: property %s not declared on class %s",
					doc.URI, r.URIRef, prop.Name, r.Class)
			}
			counts[prop.Name]++
			if def.Type == TypeResource {
				if prop.Value.Kind != ResourceRef {
					return fmt.Errorf("rdf: document %s: resource %s: property %s expects a reference",
						doc.URI, r.URIRef, prop.Name)
				}
				if target, found := doc.Find(prop.Value.Ref); found && target.Class != def.RefClass {
					return fmt.Errorf("rdf: document %s: resource %s: property %s references %s of class %s, want %s",
						doc.URI, r.URIRef, prop.Name, target.URIRef, target.Class, def.RefClass)
				}
				continue
			}
			if prop.Value.Kind == ResourceRef {
				return fmt.Errorf("rdf: document %s: resource %s: property %s expects a literal, got reference",
					doc.URI, r.URIRef, prop.Name)
			}
			if err := def.CheckLiteral(prop.Value.Literal); err != nil {
				return fmt.Errorf("rdf: document %s: resource %s: %w", doc.URI, r.URIRef, err)
			}
		}
		for name, n := range counts {
			def, _ := class.Property(name)
			if n > 1 && !def.SetValued {
				return fmt.Errorf("rdf: document %s: resource %s: property %s is single-valued but has %d values",
					doc.URI, r.URIRef, name, n)
			}
		}
	}
	return nil
}

// IsStrongReference reports whether class.property is declared as a strong
// reference (paper §2.4).
func (s *Schema) IsStrongReference(class, property string) bool {
	c, ok := s.Class(class)
	if !ok {
		return false
	}
	p, ok := c.Property(property)
	if !ok {
		return false
	}
	return p.Type == TypeResource && p.RefKind == StrongRef
}

// ParseSchema reads a schema from its RDF Schema (XML) serialization. The
// accepted subset:
//
//	<rdfs:Class rdf:ID="CycleProvider"/>
//	<rdf:Property rdf:ID="serverHost">
//	    <rdfs:domain rdf:resource="#CycleProvider"/>
//	    <rdfs:range  rdf:resource="&rdfs;Literal"/>     (or #SomeClass)
//	    <mdv:literalType>integer</mdv:literalType>       (optional)
//	    <mdv:referenceType>strong</mdv:referenceType>    (optional)
//	    <mdv:setValued>true</mdv:setValued>              (optional)
//	</rdf:Property>
//
// mdv:literalType defaults to string; mdv:referenceType defaults to weak,
// following the conservative choice that references are not transmitted
// unless the schema designer opts in (paper §2.4).
func ParseSchema(r io.Reader) (*Schema, error) {
	// The schema serialization is itself an RDF document; reuse the parser.
	doc, err := ParseDocument("schema", r)
	if err != nil {
		return nil, err
	}
	s := NewSchema()
	// First pass: classes.
	for _, res := range doc.Resources {
		if res.Class == "Class" {
			s.AddClass(localName(res.URIRef))
		}
	}
	// Second pass: properties.
	for _, res := range doc.Resources {
		if res.Class != "Property" {
			continue
		}
		name := localName(res.URIRef)
		// An explicit mdv:name wins over the rdf:ID-derived name; the writer
		// emits it because two classes may declare equally named properties
		// while rdf:ID values must be unique within the document.
		if n, ok := res.Get("name"); ok && n.String() != "" {
			name = n.String()
		}
		domainVal, ok := res.Get("domain")
		if !ok || domainVal.Kind != ResourceRef {
			return nil, fmt.Errorf("rdf: schema property %s has no rdfs:domain", name)
		}
		domain := localName(domainVal.Ref)
		rangeVal, ok := res.Get("range")
		if !ok || rangeVal.Kind != ResourceRef {
			return nil, fmt.Errorf("rdf: schema property %s has no rdfs:range", name)
		}
		def := PropertyDef{Name: name}
		if sv, ok := res.Get("setValued"); ok && sv.String() == "true" {
			def.SetValued = true
		}
		if isLiteralRange(rangeVal.Ref) {
			def.Type = TypeString
			if lt, ok := res.Get("literalType"); ok {
				switch lt.String() {
				case "string":
					def.Type = TypeString
				case "integer":
					def.Type = TypeInteger
				case "float":
					def.Type = TypeFloat
				case "boolean":
					def.Type = TypeBoolean
				default:
					return nil, fmt.Errorf("rdf: schema property %s: unknown literal type %q", name, lt.String())
				}
			}
		} else {
			def.Type = TypeResource
			def.RefClass = localName(rangeVal.Ref)
			if rt, ok := res.Get("referenceType"); ok {
				switch rt.String() {
				case "strong":
					def.RefKind = StrongRef
				case "weak":
					def.RefKind = WeakRef
				default:
					return nil, fmt.Errorf("rdf: schema property %s: unknown reference type %q", name, rt.String())
				}
			}
		}
		if err := s.AddProperty(domain, def); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// ParseSchemaString is ParseSchema over a string.
func ParseSchemaString(src string) (*Schema, error) {
	return ParseSchema(strings.NewReader(src))
}

// WriteSchema serializes the schema in the format accepted by ParseSchema.
func WriteSchema(w io.Writer, s *Schema) error {
	doc := NewDocument("schema")
	for _, cname := range s.Classes() {
		doc.NewResource(cname, "Class")
		c, _ := s.Class(cname)
		for _, p := range c.Properties() {
			res := doc.NewResource(cname+"."+p.Name, "Property")
			res.Add("name", Lit(p.Name))
			res.Add("domain", Ref(doc.QualifyID(cname)))
			if p.Type == TypeResource {
				res.Add("range", Ref(doc.QualifyID(p.RefClass)))
				res.Add("referenceType", Lit(p.RefKind.String()))
			} else {
				res.Add("range", Ref(RDFSNamespace+"Literal"))
				res.Add("literalType", Lit(p.Type.String()))
			}
			if p.SetValued {
				res.Add("setValued", Lit("true"))
			}
		}
	}
	return WriteDocument(w, doc)
}

// SchemaString serializes the schema to a string.
func SchemaString(s *Schema) string {
	var sb strings.Builder
	WriteSchema(&sb, s)
	return sb.String()
}

func localName(uriRef string) string {
	if i := strings.LastIndexByte(uriRef, '#'); i >= 0 {
		return uriRef[i+1:]
	}
	return uriRef
}

func isLiteralRange(ref string) bool {
	return strings.HasSuffix(ref, "#Literal") || ref == "Literal"
}
