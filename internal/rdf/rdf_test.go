package rdf

import (
	"strings"
	"testing"
)

// figure1XML is the RDF document excerpt of paper Figure 1.
const figure1XML = `<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#">
  <CycleProvider rdf:ID="host">
    <serverHost>pirates.uni-passau.de</serverHost>
    <serverPort>5874</serverPort>
    <serverInformation>
      <ServerInformation rdf:ID="info">
        <memory>92</memory>
        <cpu>600</cpu>
      </ServerInformation>
    </serverInformation>
  </CycleProvider>
</rdf:RDF>`

// Figure1Doc parses the paper's Figure 1 document (shared by core tests).
func Figure1Doc(t *testing.T) *Document {
	t.Helper()
	doc, err := ParseDocumentString("doc.rdf", figure1XML)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestParseFigure1(t *testing.T) {
	doc := Figure1Doc(t)
	if len(doc.Resources) != 2 {
		t.Fatalf("resources = %d, want 2", len(doc.Resources))
	}
	host, ok := doc.Find("doc.rdf#host")
	if !ok {
		t.Fatal("doc.rdf#host not found")
	}
	if host.Class != "CycleProvider" {
		t.Errorf("class = %s", host.Class)
	}
	if v, _ := host.Get("serverHost"); v.String() != "pirates.uni-passau.de" {
		t.Errorf("serverHost = %q", v.String())
	}
	if v, _ := host.Get("serverPort"); v.String() != "5874" {
		t.Errorf("serverPort = %q", v.String())
	}
	// The nested ServerInformation is hoisted and referenced.
	ref, ok := host.Get("serverInformation")
	if !ok || ref.Kind != ResourceRef || ref.Ref != "doc.rdf#info" {
		t.Errorf("serverInformation = %+v", ref)
	}
	info, ok := doc.Find("doc.rdf#info")
	if !ok {
		t.Fatal("doc.rdf#info not found")
	}
	if v, _ := info.Get("memory"); v.String() != "92" {
		t.Errorf("memory = %q", v.String())
	}
	if v, _ := info.Get("cpu"); v.String() != "600" {
		t.Errorf("cpu = %q", v.String())
	}
}

// TestStatementsMatchFigure4 checks the decomposition of Figure 1 into
// atoms against the FilterData contents shown in paper Figure 4.
func TestStatementsMatchFigure4(t *testing.T) {
	doc := Figure1Doc(t)
	stmts := doc.Statements()
	type row struct{ uri, class, prop, value string }
	want := []row{
		{"doc.rdf#host", "CycleProvider", "rdf#subject", "doc.rdf#host"},
		{"doc.rdf#host", "CycleProvider", "serverHost", "pirates.uni-passau.de"},
		{"doc.rdf#host", "CycleProvider", "serverPort", "5874"},
		{"doc.rdf#host", "CycleProvider", "serverInformation", "doc.rdf#info"},
		{"doc.rdf#info", "ServerInformation", "rdf#subject", "doc.rdf#info"},
		{"doc.rdf#info", "ServerInformation", "memory", "92"},
		{"doc.rdf#info", "ServerInformation", "cpu", "600"},
	}
	if len(stmts) != len(want) {
		t.Fatalf("got %d statements, want %d", len(stmts), len(want))
	}
	got := map[row]bool{}
	for _, s := range stmts {
		got[row{s.URIRef, s.Class, s.Property, s.Value}] = true
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("missing Figure 4 row: %+v", w)
		}
	}
}

func TestParseRDFResourceAttribute(t *testing.T) {
	src := `<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#">
	  <CycleProvider rdf:ID="a">
	    <serverInformation rdf:resource="#b"/>
	    <peer rdf:resource="other.rdf#x"/>
	  </CycleProvider>
	  <ServerInformation rdf:ID="b"><memory>64</memory></ServerInformation>
	</rdf:RDF>`
	doc, err := ParseDocumentString("d.rdf", src)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := doc.Find("d.rdf#a")
	if v, _ := a.Get("serverInformation"); v.Ref != "d.rdf#b" {
		t.Errorf("local reference = %q", v.Ref)
	}
	if v, _ := a.Get("peer"); v.Ref != "other.rdf#x" {
		t.Errorf("cross-document reference = %q", v.Ref)
	}
}

func TestParseRDFAbout(t *testing.T) {
	src := `<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#">
	  <CycleProvider rdf:about="http://x.org/res#1"><serverPort>1</serverPort></CycleProvider>
	</rdf:RDF>`
	doc, err := ParseDocumentString("d.rdf", src)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := doc.Find("http://x.org/res#1"); !ok {
		t.Error("rdf:about URI not used verbatim")
	}
}

func TestParseSetValuedProperty(t *testing.T) {
	src := `<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#">
	  <FunctionProvider rdf:ID="f">
	    <operator>join</operator>
	    <operator>scan</operator>
	    <operator>sort</operator>
	  </FunctionProvider>
	</rdf:RDF>`
	doc, err := ParseDocumentString("d.rdf", src)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := doc.Find("d.rdf#f")
	vals := f.GetAll("operator")
	if len(vals) != 3 {
		t.Fatalf("set-valued property has %d values", len(vals))
	}
}

func TestParseErrorsRDF(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"not rdf root", `<html></html>`},
		{"no id", `<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"><C><p>1</p></C></rdf:RDF>`},
		{"duplicate id", `<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#">
			<C rdf:ID="a"/><D rdf:ID="a"/></rdf:RDF>`},
		{"mixed content", `<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#">
			<C rdf:ID="a"><p>text<D rdf:ID="b"/></p></C></rdf:RDF>`},
		{"text in resource", `<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#">
			<C rdf:ID="a">stray</C></rdf:RDF>`},
		{"malformed xml", `<rdf:RDF><C rdf:ID="a">`},
		{"empty", ``},
	}
	for _, c := range cases {
		if _, err := ParseDocumentString("d.rdf", c.src); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	doc := Figure1Doc(t)
	out := DocumentString(doc)
	doc2, err := ParseDocumentString("doc.rdf", out)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
	if len(doc2.Resources) != len(doc.Resources) {
		t.Fatalf("round trip lost resources: %d vs %d", len(doc2.Resources), len(doc.Resources))
	}
	for _, r := range doc.Resources {
		r2, ok := doc2.Find(r.URIRef)
		if !ok {
			t.Fatalf("round trip lost %s", r.URIRef)
		}
		if r2.Fingerprint() != r.Fingerprint() {
			t.Errorf("round trip changed %s:\n old %q\n new %q", r.URIRef, r.Fingerprint(), r2.Fingerprint())
		}
	}
}

func TestSerializeEscaping(t *testing.T) {
	doc := NewDocument("d.rdf")
	r := doc.NewResource("x", "C")
	r.Add("p", Lit(`<&>"special'`))
	out := DocumentString(doc)
	doc2, err := ParseDocumentString("d.rdf", out)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
	r2, _ := doc2.Find("d.rdf#x")
	if v, _ := r2.Get("p"); v.Literal != `<&>"special'` {
		t.Errorf("escaping broken: %q", v.Literal)
	}
}

func TestResourceAccessors(t *testing.T) {
	r := &Resource{URIRef: "d#x", Class: "C"}
	r.Add("p", Lit("1"))
	r.Add("p", Lit("2"))
	r.Add("q", Ref("d#y"))
	if v, ok := r.Get("p"); !ok || v.Literal != "1" {
		t.Errorf("Get returns first value: %+v", v)
	}
	if got := len(r.GetAll("p")); got != 2 {
		t.Errorf("GetAll: %d", got)
	}
	if _, ok := r.Get("absent"); ok {
		t.Error("Get of absent property")
	}
	refs := r.References()
	if len(refs) != 1 || refs[0] != "d#y" {
		t.Errorf("References = %v", refs)
	}
	r.Set("p", Lit("9"))
	if got := r.GetAll("p"); len(got) != 1 || got[0].Literal != "9" {
		t.Errorf("Set: %v", got)
	}
	c := r.Clone()
	c.Set("p", Lit("0"))
	if v, _ := r.Get("p"); v.Literal != "9" {
		t.Error("Clone aliases")
	}
}

func TestFingerprintOrderIndependence(t *testing.T) {
	a := &Resource{URIRef: "d#x", Class: "C"}
	a.Add("p", Lit("1"))
	a.Add("q", Lit("2"))
	b := &Resource{URIRef: "d#x", Class: "C"}
	b.Add("q", Lit("2"))
	b.Add("p", Lit("1"))
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("property order should not affect fingerprint")
	}
	// Literal vs reference with the same lexical form must differ.
	c := &Resource{URIRef: "d#x", Class: "C"}
	c.Add("p", Lit("d#y"))
	d := &Resource{URIRef: "d#x", Class: "C"}
	d.Add("p", Ref("d#y"))
	if c.Fingerprint() == d.Fingerprint() {
		t.Error("literal and reference with equal text must not collide")
	}
}

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s := NewSchema()
	s.AddClass("CycleProvider")
	s.AddClass("ServerInformation")
	s.MustAddProperty("CycleProvider", PropertyDef{Name: "serverHost", Type: TypeString})
	s.MustAddProperty("CycleProvider", PropertyDef{Name: "serverPort", Type: TypeInteger})
	s.MustAddProperty("CycleProvider", PropertyDef{
		Name: "serverInformation", Type: TypeResource, RefClass: "ServerInformation", RefKind: StrongRef})
	s.MustAddProperty("ServerInformation", PropertyDef{Name: "memory", Type: TypeInteger})
	s.MustAddProperty("ServerInformation", PropertyDef{Name: "cpu", Type: TypeInteger})
	return s
}

func TestSchemaValidateDocument(t *testing.T) {
	s := testSchema(t)
	doc := Figure1Doc(t)
	if err := s.ValidateDocument(doc); err != nil {
		t.Fatalf("Figure 1 should validate: %v", err)
	}
	// Unknown class.
	bad := NewDocument("d.rdf")
	bad.NewResource("x", "Mystery")
	if err := s.ValidateDocument(bad); err == nil {
		t.Error("unknown class accepted")
	}
	// Unknown property.
	bad = NewDocument("d.rdf")
	bad.NewResource("x", "CycleProvider").Add("nope", Lit("1"))
	if err := s.ValidateDocument(bad); err == nil {
		t.Error("unknown property accepted")
	}
	// Bad literal type.
	bad = NewDocument("d.rdf")
	bad.NewResource("x", "CycleProvider").Add("serverPort", Lit("not-a-number"))
	if err := s.ValidateDocument(bad); err == nil {
		t.Error("non-integer serverPort accepted")
	}
	// Reference where literal expected.
	bad = NewDocument("d.rdf")
	bad.NewResource("x", "CycleProvider").Add("serverHost", Ref("d.rdf#y"))
	if err := s.ValidateDocument(bad); err == nil {
		t.Error("reference into literal property accepted")
	}
	// Literal where reference expected.
	bad = NewDocument("d.rdf")
	bad.NewResource("x", "CycleProvider").Add("serverInformation", Lit("text"))
	if err := s.ValidateDocument(bad); err == nil {
		t.Error("literal into reference property accepted")
	}
	// Wrong range class (resolvable within document).
	bad = NewDocument("d.rdf")
	bad.NewResource("y", "CycleProvider")
	bad.NewResource("x", "CycleProvider").Add("serverInformation", Ref("d.rdf#y"))
	if err := s.ValidateDocument(bad); err == nil {
		t.Error("wrong range class accepted")
	}
	// Multiple values on single-valued property.
	bad = NewDocument("d.rdf")
	r := bad.NewResource("x", "ServerInformation")
	r.Add("memory", Lit("1"))
	r.Add("memory", Lit("2"))
	if err := s.ValidateDocument(bad); err == nil {
		t.Error("multi-valued single property accepted")
	}
}

func TestSchemaStrongWeakReferences(t *testing.T) {
	s := testSchema(t)
	if !s.IsStrongReference("CycleProvider", "serverInformation") {
		t.Error("serverInformation should be strong")
	}
	if s.IsStrongReference("CycleProvider", "serverHost") {
		t.Error("literal property cannot be a strong reference")
	}
	if s.IsStrongReference("Unknown", "x") {
		t.Error("unknown class")
	}
	s.MustAddProperty("CycleProvider", PropertyDef{
		Name: "peer", Type: TypeResource, RefClass: "CycleProvider", RefKind: WeakRef})
	if s.IsStrongReference("CycleProvider", "peer") {
		t.Error("weak reference misreported")
	}
}

func TestSchemaDuplicateProperty(t *testing.T) {
	s := NewSchema()
	s.MustAddProperty("C", PropertyDef{Name: "p", Type: TypeString})
	if err := s.AddProperty("C", PropertyDef{Name: "p", Type: TypeInteger}); err == nil {
		t.Error("duplicate property accepted")
	}
	if err := s.AddProperty("C", PropertyDef{Name: "r", Type: TypeResource}); err == nil {
		t.Error("resource property without range accepted")
	}
	if err := s.AddProperty("C", PropertyDef{Name: ""}); err == nil {
		t.Error("empty property name accepted")
	}
}

func TestSchemaSerializationRoundTrip(t *testing.T) {
	s := testSchema(t)
	s.MustAddProperty("CycleProvider", PropertyDef{Name: "operator", Type: TypeString, SetValued: true})
	out := SchemaString(s)
	s2, err := ParseSchemaString(out)
	if err != nil {
		t.Fatalf("reparse schema: %v\n%s", err, out)
	}
	if len(s2.Classes()) != len(s.Classes()) {
		t.Fatalf("classes: %v vs %v", s2.Classes(), s.Classes())
	}
	for _, cname := range s.Classes() {
		c1, _ := s.Class(cname)
		c2, ok := s2.Class(cname)
		if !ok {
			t.Fatalf("class %s lost", cname)
		}
		p1, p2 := c1.Properties(), c2.Properties()
		if len(p1) != len(p2) {
			t.Fatalf("class %s: %d vs %d properties", cname, len(p1), len(p2))
		}
		for i := range p1 {
			if *p1[i] != *p2[i] {
				t.Errorf("class %s property %d: %+v vs %+v", cname, i, p1[i], p2[i])
			}
		}
	}
	// Strong reference survives the round trip.
	if !s2.IsStrongReference("CycleProvider", "serverInformation") {
		t.Error("strong reference lost in round trip")
	}
}

func TestDiffDocuments(t *testing.T) {
	old := NewDocument("d.rdf")
	old.NewResource("a", "C").Add("p", Lit("1"))
	old.NewResource("b", "C").Add("p", Lit("2"))
	old.NewResource("c", "C").Add("p", Lit("3"))

	new := NewDocument("d.rdf")
	new.NewResource("a", "C").Add("p", Lit("1"))  // unchanged
	new.NewResource("b", "C").Add("p", Lit("99")) // updated
	new.NewResource("d", "C").Add("p", Lit("4"))  // added

	diff := DiffDocuments(old, new)
	if len(diff.Unchanged) != 1 || diff.Unchanged[0].URIRef != "d.rdf#a" {
		t.Errorf("Unchanged = %v", refs(diff.Unchanged))
	}
	if len(diff.Updated) != 1 || diff.Updated[0].URIRef != "d.rdf#b" {
		t.Errorf("Updated = %v", refs(diff.Updated))
	}
	if len(diff.OldUpdated) != 1 || diff.OldUpdated[0].Props[0].Value.Literal != "2" {
		t.Errorf("OldUpdated wrong")
	}
	if len(diff.Deleted) != 1 || diff.Deleted[0].URIRef != "d.rdf#c" {
		t.Errorf("Deleted = %v", refs(diff.Deleted))
	}
	if len(diff.Added) != 1 || diff.Added[0].URIRef != "d.rdf#d" {
		t.Errorf("Added = %v", refs(diff.Added))
	}
	if diff.Empty() {
		t.Error("diff should not be empty")
	}
}

func TestDiffNilCases(t *testing.T) {
	doc := NewDocument("d.rdf")
	doc.NewResource("a", "C")
	d := DiffDocuments(nil, doc)
	if len(d.Added) != 1 || len(d.Deleted) != 0 {
		t.Errorf("nil old: %+v", d)
	}
	d = DiffDocuments(doc, nil)
	if len(d.Deleted) != 1 || len(d.Added) != 0 {
		t.Errorf("nil new: %+v", d)
	}
	d = DiffDocuments(doc, doc.Clone())
	if !d.Empty() || len(d.Unchanged) != 1 {
		t.Errorf("identical docs: %+v", d)
	}
}

// Update cases from §3.5: property changed, added, removed all count as
// updates.
func TestDiffDetectsPropertyChanges(t *testing.T) {
	base := func() *Document {
		d := NewDocument("d.rdf")
		r := d.NewResource("x", "C")
		r.Add("p", Lit("1"))
		r.Add("q", Lit("2"))
		return d
	}
	// Changed value.
	mod := base()
	mod.Resources[0].Set("p", Lit("9"))
	if d := DiffDocuments(base(), mod); len(d.Updated) != 1 {
		t.Error("changed property not detected")
	}
	// Added property.
	mod = base()
	mod.Resources[0].Add("r", Lit("3"))
	if d := DiffDocuments(base(), mod); len(d.Updated) != 1 {
		t.Error("added property not detected")
	}
	// Removed property.
	mod = base()
	mod.Resources[0].Props = mod.Resources[0].Props[:1]
	if d := DiffDocuments(base(), mod); len(d.Updated) != 1 {
		t.Error("removed property not detected")
	}
	// Class change also counts.
	mod = base()
	mod.Resources[0].Class = "D"
	if d := DiffDocuments(base(), mod); len(d.Updated) != 1 {
		t.Error("class change not detected")
	}
}

func refs(rs []*Resource) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.URIRef
	}
	return out
}

func TestDocumentHelpers(t *testing.T) {
	d := NewDocument("doc.rdf")
	if d.QualifyID("x") != "doc.rdf#x" {
		t.Error("QualifyID")
	}
	r := d.NewResource("x", "C")
	if r.URIRef != "doc.rdf#x" {
		t.Error("NewResource URIRef")
	}
	if _, ok := d.Find("doc.rdf#x"); !ok {
		t.Error("Find")
	}
	if _, ok := d.Find("doc.rdf#y"); ok {
		t.Error("Find absent")
	}
	d.NewResource("a", "C")
	d.SortResources()
	if d.Resources[0].URIRef != "doc.rdf#a" {
		t.Error("SortResources")
	}
	if err := NewDocument("").Validate(); err == nil {
		t.Error("empty URI accepted")
	}
}

func TestValueHelpers(t *testing.T) {
	if Lit("a").String() != "a" || Ref("d#x").String() != "d#x" {
		t.Error("Value.String")
	}
	if Lit("a").Kind != Literal || Ref("x").Kind != ResourceRef {
		t.Error("Value kinds")
	}
}

func TestWhitespaceHandling(t *testing.T) {
	src := `<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#">
	  <C rdf:ID="a">
	    <p>
	      padded value
	    </p>
	  </C>
	</rdf:RDF>`
	doc, err := ParseDocumentString("d.rdf", src)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := doc.Find("d.rdf#a")
	if v, _ := r.Get("p"); v.Literal != "padded value" {
		t.Errorf("literal not trimmed: %q", v.Literal)
	}
}

func TestDeepNestingLimit(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(`<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#">`)
	for i := 0; i < 100; i++ {
		sb.WriteString(`<C rdf:ID="r` + strings.Repeat("x", i) + `"><p>`)
	}
	// Not closing properly; parser should fail either on depth or syntax.
	if _, err := ParseDocumentString("d.rdf", sb.String()); err == nil {
		t.Error("runaway nesting accepted")
	}
}
