package rdf

// Diff captures the resource-level difference between the previously
// registered version of a document and its re-registered version
// (paper §3.5): a resource is updated if it appears in both versions with
// different content, deleted if it disappeared, and added if it is new.
type Diff struct {
	// Added resources exist only in the new version.
	Added []*Resource
	// Updated resources exist in both versions with changed content;
	// OldUpdated holds their previous versions, index-aligned.
	Updated    []*Resource
	OldUpdated []*Resource
	// Deleted resources exist only in the old version.
	Deleted []*Resource
	// Unchanged resources exist in both versions with identical content.
	Unchanged []*Resource
}

// Empty reports whether nothing changed.
func (d *Diff) Empty() bool {
	return len(d.Added) == 0 && len(d.Updated) == 0 && len(d.Deleted) == 0
}

// DiffDocuments compares two versions of a document by URI reference and
// content fingerprint. Either argument may be nil: a nil old document makes
// every resource added; a nil new document makes every resource deleted
// (whole-document deletion, paper §3.5).
func DiffDocuments(old, new *Document) *Diff {
	d := &Diff{}
	oldByRef := map[string]*Resource{}
	if old != nil {
		for _, r := range old.Resources {
			oldByRef[r.URIRef] = r
		}
	}
	if new != nil {
		for _, r := range new.Resources {
			prev, existed := oldByRef[r.URIRef]
			if !existed {
				d.Added = append(d.Added, r)
				continue
			}
			delete(oldByRef, r.URIRef)
			if prev.Fingerprint() == r.Fingerprint() {
				d.Unchanged = append(d.Unchanged, r)
			} else {
				d.Updated = append(d.Updated, r)
				d.OldUpdated = append(d.OldUpdated, prev)
			}
		}
	}
	// Whatever remains in oldByRef disappeared. Preserve document order.
	if old != nil {
		for _, r := range old.Resources {
			if _, gone := oldByRef[r.URIRef]; gone {
				d.Deleted = append(d.Deleted, r)
			}
		}
	}
	return d
}
