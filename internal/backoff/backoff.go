// Package backoff implements jittered exponential backoff for reconnect
// loops and retryable network calls. Jitter matters at fleet scale: when a
// provider restarts, every LMR notices within one heartbeat interval, and
// without jitter they all redial in lockstep on identical doubling
// schedules — a synchronized thundering herd on every retry round. Equal
// jitter (half deterministic, half random) decorrelates the herd while
// keeping a floor under the delay.
package backoff

import (
	"context"
	"math/rand/v2"
	"time"
)

// Backoff produces a jittered exponential delay sequence. The zero value
// is usable and equivalent to New(DefaultBase, DefaultMax). Backoff is not
// safe for concurrent use; each retry loop owns one.
type Backoff struct {
	// Base is the first delay (before jitter). Zero means DefaultBase.
	Base time.Duration
	// Max caps the un-jittered delay. Zero means DefaultMax.
	Max time.Duration

	attempt int
}

// Defaults match cmd/lmr's historical 1s→30s reconnect schedule.
const (
	DefaultBase = time.Second
	DefaultMax  = 30 * time.Second
)

// Next returns the delay to wait before the next attempt and advances the
// schedule: min(Max, Base<<n), equal-jittered to [d/2, d).
func (b *Backoff) Next() time.Duration {
	base, max := b.Base, b.Max
	if base <= 0 {
		base = DefaultBase
	}
	if max <= 0 {
		max = DefaultMax
	}
	d := base
	for i := 0; i < b.attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	b.attempt++
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + rand.N(half)
}

// Attempts returns how many delays have been handed out since the last
// Reset.
func (b *Backoff) Attempts() int { return b.attempt }

// Reset restarts the schedule at Base (call after a successful attempt).
func (b *Backoff) Reset() { b.attempt = 0 }

// Retry runs fn until it succeeds, returns a non-retryable error, the
// context ends, or maxAttempts attempts were made (0 = unlimited).
// retryable decides which errors are worth another attempt — pass
// wire.IsRetryable for network calls. Between attempts Retry sleeps the
// backoff's next jittered delay. The last error is returned.
func Retry(ctx context.Context, b *Backoff, maxAttempts int, retryable func(error) bool, fn func() error) error {
	if b == nil {
		b = &Backoff{}
	}
	for attempt := 1; ; attempt++ {
		err := fn()
		if err == nil {
			return nil
		}
		if !retryable(err) {
			return err
		}
		if maxAttempts > 0 && attempt >= maxAttempts {
			return err
		}
		select {
		case <-ctx.Done():
			return err
		case <-time.After(b.Next()):
		}
	}
}
