package backoff

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestScheduleBoundsAndJitter(t *testing.T) {
	b := &Backoff{Base: time.Second, Max: 30 * time.Second}
	// Un-jittered schedule: 1s, 2s, 4s, ..., capped at 30s. Jittered
	// values land in [d/2, d).
	want := []time.Duration{
		time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second,
		16 * time.Second, 30 * time.Second, 30 * time.Second, 30 * time.Second,
	}
	for i, d := range want {
		got := b.Next()
		if got < d/2 || got >= d {
			t.Errorf("attempt %d: delay %v outside [%v, %v)", i, got, d/2, d)
		}
	}
	b.Reset()
	if got := b.Next(); got < 500*time.Millisecond || got >= time.Second {
		t.Errorf("post-reset delay %v outside [500ms, 1s)", got)
	}
}

func TestJitterDecorrelates(t *testing.T) {
	// Two identical schedules must not produce identical delay sequences
	// (the lockstep-redial failure mode). 8 draws from [15s, 30s) collide
	// entirely with probability ~0.
	a, b := &Backoff{}, &Backoff{}
	same := 0
	for i := 0; i < 8; i++ {
		a.attempt, b.attempt = 10, 10 // both at the 30s cap
		if a.Next() == b.Next() {
			same++
		}
	}
	if same == 8 {
		t.Error("two backoffs produced identical jittered sequences")
	}
}

func TestZeroValueDefaults(t *testing.T) {
	var b Backoff
	if got := b.Next(); got < DefaultBase/2 || got >= DefaultBase {
		t.Errorf("zero-value first delay %v outside [%v, %v)", got, DefaultBase/2, DefaultBase)
	}
}

func TestRetry(t *testing.T) {
	retryableErr := errors.New("transient")
	fatalErr := errors.New("fatal")
	isRetryable := func(err error) bool { return errors.Is(err, retryableErr) }
	fast := &Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond}

	// Succeeds on the third attempt.
	calls := 0
	err := Retry(context.Background(), fast, 0, isRetryable, func() error {
		calls++
		if calls < 3 {
			return retryableErr
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Errorf("err=%v calls=%d", err, calls)
	}

	// Fatal errors end the loop immediately.
	calls = 0
	err = Retry(context.Background(), fast, 0, isRetryable, func() error {
		calls++
		return fatalErr
	})
	if !errors.Is(err, fatalErr) || calls != 1 {
		t.Errorf("err=%v calls=%d", err, calls)
	}

	// Attempt cap.
	calls = 0
	err = Retry(context.Background(), fast, 4, isRetryable, func() error {
		calls++
		return retryableErr
	})
	if !errors.Is(err, retryableErr) || calls != 4 {
		t.Errorf("err=%v calls=%d", err, calls)
	}

	// Context cancellation stops between attempts.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls = 0
	err = Retry(ctx, &Backoff{Base: time.Hour}, 0, isRetryable, func() error {
		calls++
		return retryableErr
	})
	if !errors.Is(err, retryableErr) || calls != 1 {
		t.Errorf("err=%v calls=%d", err, calls)
	}
}
