package replica

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"mdv/internal/client"
	"mdv/internal/core"
	"mdv/internal/metrics"
	"mdv/internal/provider"
	"mdv/internal/rdf"
)

func testSchema() *rdf.Schema {
	s := rdf.NewSchema()
	s.MustAddProperty("CycleProvider", rdf.PropertyDef{Name: "serverPort", Type: rdf.TypeInteger})
	return s
}

func testDoc(i int) *rdf.Document {
	doc := rdf.NewDocument(fmt.Sprintf("d%d.rdf", i))
	doc.NewResource("cp", "CycleProvider").Add("serverPort", rdf.Lit("80"))
	return doc
}

const testRule = `search CycleProvider c register c where c.serverPort > 0`

func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func startPrimary(t *testing.T, dir string) (*provider.Provider, string) {
	t.Helper()
	p, err := provider.OpenDurable("primary", testSchema(), dir, provider.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := p.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return p, addr
}

func startFollower(t *testing.T, dir, primary, name string) (*provider.Provider, *Follower) {
	t.Helper()
	p, err := provider.OpenDurable(name, testSchema(), dir, provider.DurableOptions{Replica: true})
	if err != nil {
		t.Fatal(err)
	}
	fol, err := Start(p, Options{
		Name:        name,
		Primary:     primary,
		AckInterval: 10 * time.Millisecond,
		Client:      client.Config{Heartbeat: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, fol
}

// TestFollowerStreamsAndServes: a follower converges to the primary over
// the wire, serves the read path locally (deliveries to subscribers
// attached at the replica), proxies writes, and acknowledges its durable
// prefix into the primary's follower stats.
func TestFollowerStreamsAndServes(t *testing.T) {
	primary, addr := startPrimary(t, t.TempDir())
	defer primary.Close()
	if _, _, err := primary.Subscribe("lmr", testRule); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := primary.RegisterDocument(testDoc(i)); err != nil {
			t.Fatal(err)
		}
	}

	rp, fol := startFollower(t, t.TempDir(), addr, "r1")
	defer rp.Close()
	defer fol.Close()

	var pushes int
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	rp.Attach("lmr", func(seq uint64, reset bool, cs *core.Changeset) error {
		<-mu
		pushes++
		mu <- struct{}{}
		return nil
	})

	waitUntil(t, 5*time.Second, "follower catch-up", func() bool {
		return rp.LogSeq() == primary.LogSeq()
	})
	if got, want := rp.Engine().ResourceCount(), primary.Engine().ResourceCount(); got != want {
		t.Errorf("replica resources = %d, want %d", got, want)
	}

	// Live stream: a new registration at the primary reaches the replica's
	// engine and its locally attached subscriber.
	if err := primary.RegisterDocument(testDoc(10)); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, "live record", func() bool {
		return rp.LogSeq() == primary.LogSeq()
	})
	<-mu
	got := pushes
	mu <- struct{}{}
	if got == 0 {
		t.Error("replica-attached subscriber received no deliveries")
	}

	// Writes against the replica proxy to the primary and replicate back.
	if err := rp.RegisterDocument(testDoc(20)); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, "proxied write round trip", func() bool {
		return rp.LogSeq() == primary.LogSeq()
	})
	if got, want := rp.Engine().ResourceCount(), primary.Engine().ResourceCount(); got != want {
		t.Errorf("after proxied write: replica resources = %d, want %d", got, want)
	}

	// Acks flow: the primary sees the follower connected with bounded lag.
	waitUntil(t, 5*time.Second, "follower ack", func() bool {
		fds := primary.Followers()
		return len(fds) == 1 && fds[0].Connected && fds[0].AckedSeq == primary.LogSeq()
	})
	if fol.Bootstraps() != 0 {
		t.Errorf("bootstraps = %d, want 0 (tail met the retained log)", fol.Bootstraps())
	}
}

// TestFollowerBootstrapsFromSnapshot: a follower whose position was
// truncated away receives a chunked snapshot, installs it, and streams the
// tail from there.
func TestFollowerBootstrapsFromSnapshot(t *testing.T) {
	// Small segments so Compact can actually truncate (whole non-active
	// segments only), leaving the retained log starting past seq 1.
	primary, err := provider.OpenDurable("primary", testSchema(), t.TempDir(),
		provider.DurableOptions{SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	addr, err := primary.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := primary.Subscribe("lmr", testRule); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := primary.RegisterDocument(testDoc(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Ack everything and compact so the retained log starts past seq 1:
	// a fresh follower (tail 0) must bootstrap.
	if err := primary.Ack("lmr", primary.LogSeq()); err != nil {
		t.Fatal(err)
	}
	if err := primary.Compact(); err != nil {
		t.Fatal(err)
	}
	if oldest := primary.LogSeq(); oldest == 0 {
		t.Fatal("empty primary log")
	}

	rp, fol := startFollower(t, t.TempDir(), addr, "r1")
	defer rp.Close()
	defer fol.Close()

	waitUntil(t, 5*time.Second, "bootstrap + catch-up", func() bool {
		return fol.Bootstraps() == 1 && rp.LogSeq() == primary.LogSeq()
	})
	if got, want := rp.Engine().ResourceCount(), primary.Engine().ResourceCount(); got != want {
		t.Errorf("replica resources = %d, want %d", got, want)
	}
	subs, err := rp.Engine().Subscriptions()
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 1 {
		t.Errorf("replica subscriptions = %+v", subs)
	}

	// The stream continues past the snapshot.
	if err := primary.RegisterDocument(testDoc(50)); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, "post-bootstrap stream", func() bool {
		return rp.LogSeq() == primary.LogSeq()
	})
}

// TestFollowerReconnectsAfterPrimaryRestart: the follower survives a
// primary restart, resuming from its own tail without re-bootstrapping.
func TestFollowerReconnectsAfterPrimaryRestart(t *testing.T) {
	primaryDir := t.TempDir()
	primary, addr := startPrimary(t, primaryDir)
	if _, _, err := primary.Subscribe("lmr", testRule); err != nil {
		t.Fatal(err)
	}
	if err := primary.RegisterDocument(testDoc(0)); err != nil {
		t.Fatal(err)
	}

	rp, fol := startFollower(t, t.TempDir(), addr, "r1")
	defer rp.Close()
	defer fol.Close()
	waitUntil(t, 5*time.Second, "initial catch-up", func() bool {
		return rp.LogSeq() == primary.LogSeq()
	})

	if err := primary.Close(); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, "stream loss detection", func() bool {
		return !fol.Connected()
	})

	primary2, err := provider.OpenDurable("primary", testSchema(), primaryDir, provider.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer primary2.Close()
	if _, err := primary2.Serve(addr); err != nil {
		t.Fatal(err)
	}
	if err := primary2.RegisterDocument(testDoc(1)); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 10*time.Second, "reconnect + catch-up", func() bool {
		return fol.Connected() && rp.LogSeq() == primary2.LogSeq()
	})
	if got, want := rp.Engine().ResourceCount(), primary2.Engine().ResourceCount(); got != want {
		t.Errorf("replica resources = %d, want %d", got, want)
	}
}

// TestFollowerMetrics: the follower's metric families render with live
// values.
func TestFollowerMetrics(t *testing.T) {
	primary, addr := startPrimary(t, t.TempDir())
	defer primary.Close()
	if err := primary.RegisterDocument(testDoc(0)); err != nil {
		t.Fatal(err)
	}
	rp, fol := startFollower(t, t.TempDir(), addr, "r1")
	defer rp.Close()
	defer fol.Close()
	reg := metrics.NewRegistry()
	fol.EnableMetrics(reg)
	waitUntil(t, 5*time.Second, "catch-up", func() bool {
		return rp.LogSeq() == primary.LogSeq() && fol.AckedSeq() == primary.LogSeq()
	})
	text := reg.Text()
	for _, want := range []string{
		"mdv_replica_connected 1",
		fmt.Sprintf("mdv_replica_applied_seq %d", primary.LogSeq()),
		fmt.Sprintf("mdv_replica_acked_seq %d", primary.LogSeq()),
		"mdv_replica_bootstraps_total 0",
		"mdv_replica_lag_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics text missing %q", want)
		}
	}
}
