// Package replica runs the follower side of MDP replication: it dials the
// primary, bootstraps from a shipped snapshot when the local changelog
// copy has fallen below the primary's retained log, applies the streamed
// changelog records through the provider (ApplyReplicated), forwards the
// replica's write operations to the primary, and acknowledges the durable
// applied prefix so the primary can truncate its log and report lag.
//
// The follower owns reconnection: on any stream loss it re-dials with
// jittered exponential backoff and renegotiates from its own log tail, so
// a primary restart (or a long partition that outruns the primary's log
// retention, forcing a fresh snapshot) heals without operator action.
//
// Failover: the follower carries the full candidate endpoint list. When
// its primary is gone it probes the candidates and re-points to whichever
// node now answers as primary of an equal-or-higher epoch (an operator
// promotion, or another follower's deadman). With Options.AutoPromote set,
// a follower that cannot reach any primary for that long promotes ITSELF —
// but only if no other reachable follower is more caught up (ties broken
// by lowest name), so at most one node wins the deadman race.
package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mdv/internal/backoff"
	"mdv/internal/client"
	"mdv/internal/metrics"
	"mdv/internal/provider"
	"mdv/internal/wire"
)

// Options tune a follower.
type Options struct {
	// Name is the follower name announced to the primary (shown in its
	// follower stats and metrics). Defaults to the provider's name.
	Name string
	// Primary is the primary MDP's wire address (the first one tried).
	Primary string
	// Primaries lists every endpoint that may be — or become — the
	// primary: the candidate set for re-pointing after a failover and for
	// the auto-promote deadman probe. Primary is implicitly included.
	Primaries []string
	// Client carries the fault-tolerance settings for both connections
	// (heartbeats detect a dead primary; the reconnect loop takes over).
	Client client.Config
	// AckInterval is how often the follower fsyncs its log copy and
	// acknowledges the durable prefix to the primary. Zero means 100ms.
	AckInterval time.Duration
	// Backoff is the reconnect schedule (zero value = 1s→30s jittered).
	Backoff backoff.Backoff
	// AutoPromote arms the deadman timer when positive: a follower that
	// cannot reach any primary for this long probes the candidate set and
	// promotes itself iff it is the most caught-up reachable follower
	// (ties broken by lowest name). Off by default — promotion is an
	// explicit operator action unless a deployment opts in.
	AutoPromote time.Duration
	// Logf, if set, receives connection lifecycle and apply errors.
	Logf func(format string, args ...interface{})
}

// Follower replicates one provider from a primary until Close.
type Follower struct {
	prov *provider.Provider
	opts Options
	// cands is the deduplicated candidate endpoint list (Primary first).
	cands []string

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu      sync.Mutex
	stream  *wire.Client
	proxy   *client.MDP
	primary string // endpoint currently believed to be the primary

	connected  atomic.Bool
	bootstraps atomic.Uint64
	ackedSeq   atomic.Uint64
	promoted   atomic.Bool
	// lagNanos is the apply-time minus send-time of the last streamed
	// record: the propagation delay of the replication stream itself.
	lagNanos atomic.Int64
}

// Start begins replicating prov (which must have been opened with
// DurableOptions.Replica, or demoted into that role) from the primary at
// opts.Primary, failing over across opts.Primaries.
func Start(prov *provider.Provider, opts Options) (*Follower, error) {
	if !prov.Replica() {
		return nil, errors.New("replica: provider was not opened as a replica (DurableOptions.Replica)")
	}
	if !prov.Durable() {
		return nil, errors.New("replica: provider is not durable (a follower needs its own changelog copy)")
	}
	if opts.Primary == "" && len(opts.Primaries) > 0 {
		opts.Primary = opts.Primaries[0]
	}
	if opts.Primary == "" {
		return nil, errors.New("replica: no primary address")
	}
	if opts.Name == "" {
		opts.Name = prov.Name()
	}
	if opts.AckInterval <= 0 {
		opts.AckInterval = 100 * time.Millisecond
	}
	f := &Follower{prov: prov, opts: opts, primary: opts.Primary}
	seen := map[string]bool{}
	for _, addr := range append([]string{opts.Primary}, opts.Primaries...) {
		if addr != "" && !seen[addr] {
			seen[addr] = true
			f.cands = append(f.cands, addr)
		}
	}
	f.ctx, f.cancel = context.WithCancel(context.Background())
	// Promote must be able to halt this session from within it, so the
	// stopper never joins the run goroutine.
	prov.SetReplicationStopper(f.halt)
	prov.SetTopologyHint(opts.Primary, f.cands)
	f.wg.Add(1)
	go f.run()
	return f, nil
}

// halt stops the replication session without joining the run goroutine.
// Safe to call from inside the session itself (provider.Promote runs it).
func (f *Follower) halt() {
	f.cancel()
	f.mu.Lock()
	if f.stream != nil {
		f.stream.Close()
	}
	if f.proxy != nil {
		f.proxy.Close()
	}
	f.mu.Unlock()
}

// Close stops replicating: the connections are closed and the run loop
// joined. The provider itself stays open (and keeps serving reads).
func (f *Follower) Close() error {
	f.halt()
	f.wg.Wait()
	return nil
}

// Connected reports whether the replication stream is currently up.
func (f *Follower) Connected() bool { return f.connected.Load() }

// Promoted reports whether this follower won its auto-promote deadman and
// now runs as primary (the follower loop has exited).
func (f *Follower) Promoted() bool { return f.promoted.Load() }

// Primary returns the endpoint currently believed to be the primary.
func (f *Follower) Primary() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.primary
}

func (f *Follower) setPrimary(addr string) {
	f.mu.Lock()
	f.primary = addr
	f.mu.Unlock()
	f.prov.SetTopologyHint(addr, f.cands)
}

// AppliedSeq returns the last changelog sequence applied locally.
func (f *Follower) AppliedSeq() uint64 { return f.prov.LogSeq() }

// AckedSeq returns the last sequence acknowledged to the primary.
func (f *Follower) AckedSeq() uint64 { return f.ackedSeq.Load() }

// Bootstraps returns how many snapshot bootstraps this follower has run.
func (f *Follower) Bootstraps() uint64 { return f.bootstraps.Load() }

// Lag returns the stream propagation delay of the last applied record:
// apply time minus the primary's send time.
func (f *Follower) Lag() time.Duration { return time.Duration(f.lagNanos.Load()) }

func (f *Follower) logf(format string, args ...interface{}) {
	if f.opts.Logf != nil {
		f.opts.Logf(format, args...)
	}
}

// probeCfg bounds topology probes so a black-holed candidate cannot hang
// the failover logic.
func (f *Follower) probeCfg() client.Config {
	cfg := f.opts.Client
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 2 * time.Second
	}
	return cfg
}

func (f *Follower) run() {
	defer f.wg.Done()
	bo := f.opts.Backoff
	lastUp := time.Now()
	for {
		err := f.session(&bo)
		if f.connected.Load() {
			lastUp = time.Now()
		}
		f.connected.Store(false)
		if f.ctx.Err() != nil {
			return
		}
		if f.repoint() {
			// A live primary exists (possibly a new one); the deadman only
			// counts time with NO primary reachable anywhere.
			lastUp = time.Now()
		} else if f.opts.AutoPromote > 0 && time.Since(lastUp) >= f.opts.AutoPromote {
			if f.tryAutoPromote() {
				f.promoted.Store(true)
				return
			}
		}
		delay := bo.Next()
		f.logf("replica %s: stream to %s lost (%v); redialing in %v", f.opts.Name, f.Primary(), err, delay)
		select {
		case <-f.ctx.Done():
			return
		case <-time.After(delay):
		}
	}
}

// repoint probes the candidate set and, if some node answers as primary of
// an equal-or-higher epoch, points the next session at it. Returns whether
// any current primary is reachable. With a single candidate there is
// nowhere else to point, but the probe still feeds the deadman.
func (f *Follower) repoint() bool {
	addr, topo := ProbeForPrimary(f.cands, f.probeCfg())
	if topo == nil || topo.Epoch < f.prov.Epoch() {
		return false
	}
	if cur := f.Primary(); addr != cur {
		f.logf("replica %s: re-pointing from %s to promoted primary %s (epoch %d)", f.opts.Name, cur, addr, topo.Epoch)
		f.setPrimary(addr)
	}
	return true
}

// tryAutoPromote runs the deadman election: with no primary reachable from
// here, promote iff no other reachable follower is more caught up (log
// tail, ties broken by lowest name). The losing followers keep probing and
// re-point once the winner serves.
func (f *Follower) tryAutoPromote() bool {
	cfg := f.probeCfg()
	mySeq := f.prov.LogSeq()
	var announce []string
	for _, addr := range f.cands {
		topo := probeTopology(addr, cfg)
		if topo == nil || topo.Name == f.opts.Name {
			continue
		}
		if topo.Role == "primary" && topo.Epoch >= f.prov.Epoch() {
			return false // a primary is reachable after all
		}
		if topo.LogSeq > mySeq || (topo.LogSeq == mySeq && topo.Name < f.opts.Name) {
			f.logf("replica %s: deadman yields to more caught-up follower %s (seq %d vs %d)",
				f.opts.Name, topo.Name, topo.LogSeq, mySeq)
			return false
		}
		announce = append(announce, addr)
	}
	epoch, err := f.prov.Promote()
	if err != nil {
		f.logf("replica %s: deadman promotion failed: %v", f.opts.Name, err)
		return false
	}
	f.logf("replica %s: deadman expired; promoted to primary at epoch %d", f.opts.Name, epoch)
	// Tell the surviving followers immediately so they re-point without
	// waiting out their own probe cycles.
	self := f.prov.PrimaryHint()
	for _, addr := range announce {
		if c, err := client.DialMDPConfig(addr, cfg); err == nil {
			c.AnnounceEpoch(epoch, self)
			c.Close()
		}
	}
	return true
}

// probeTopology fetches one endpoint's topology view (nil if unreachable).
func probeTopology(addr string, cfg client.Config) *wire.TopologyResponse {
	c, err := client.DialMDPConfig(addr, cfg)
	if err != nil {
		return nil
	}
	defer c.Close()
	topo, err := c.Topology()
	if err != nil {
		return nil
	}
	return topo
}

// ProbeForPrimary probes each endpoint and returns the address and
// topology of the highest-epoch node currently serving as primary ("" and
// nil when none answers as one). Supervisors use it on startup to decide
// whether a node restarting from an old primary's state must rejoin as a
// follower instead.
func ProbeForPrimary(addrs []string, cfg client.Config) (string, *wire.TopologyResponse) {
	var bestAddr string
	var best *wire.TopologyResponse
	for _, addr := range addrs {
		topo := probeTopology(addr, cfg)
		if topo == nil || topo.Role != "primary" {
			continue
		}
		if best == nil || topo.Epoch > best.Epoch {
			best, bestAddr = topo, addr
		}
	}
	return bestAddr, best
}

// session runs one connect lifetime: dial, bootstrap if needed, stream,
// ack. It returns when the stream dies or the follower closes.
func (f *Follower) session(bo *backoff.Backoff) error {
	primary := f.Primary()
	cfg := f.opts.Client
	wcfg := wire.Config{
		HeartbeatInterval: cfg.Heartbeat,
		IdleTimeout:       cfg.IdleTimeout,
		WriteTimeout:      cfg.WriteTimeout,
	}
	stream, err := wire.DialConfig(primary, wcfg)
	if err != nil {
		return err
	}
	s := &session{f: f, stream: stream}
	stream.OnPush = s.onPush
	f.mu.Lock()
	f.stream = stream
	f.mu.Unlock()
	defer stream.Close()

	// Bootstrap negotiation: the primary ships a snapshot (as in-order
	// chunk pushes on this connection, all preceding the response) only if
	// our tail has fallen below its retained log — or unconditionally when
	// this node demoted itself with a possibly divergent tail (Force): the
	// sequence numbers alone cannot prove those records match the new
	// primary's history, so only a snapshot rebuild can.
	snapReq := &wire.ReplSnapshotRequest{
		FromSeq: f.prov.LogSeq(),
		Epoch:   f.prov.Epoch(),
		Force:   f.prov.ResyncPending(),
	}
	var snap wire.ReplSnapshotResponse
	if err := stream.Call(wire.KindReplSnapshot, snapReq, &snap); err != nil {
		return fmt.Errorf("bootstrap negotiation: %w", err)
	}
	f.prov.ObserveEpoch(snap.Epoch, primary)
	if snap.Needed {
		data, cerr := s.snapshot()
		if cerr != nil {
			return cerr
		}
		seq, ierr := f.prov.InstallSnapshot(data)
		if ierr != nil {
			return ierr
		}
		f.bootstraps.Add(1)
		f.logf("replica %s: installed bootstrap snapshot covering seq %d (%d bytes)", f.opts.Name, seq, len(data))
	}

	// The write proxy rides its own connection so proxied writes never
	// queue behind the record stream.
	proxy, err := client.DialMDPConfig(primary, cfg)
	if err != nil {
		return err
	}
	f.mu.Lock()
	f.proxy = proxy
	f.mu.Unlock()
	defer proxy.Close()
	f.prov.SetWriteProxy(proxy)
	// When the session dies the primary is gone: writes degrade to the
	// typed retryable NoPrimaryError (with topology hints) instead of
	// queueing on a dead connection.
	defer f.prov.SetWriteProxy(nil)

	streamReq := &wire.ReplStreamRequest{Follower: f.opts.Name, FromSeq: f.prov.LogSeq(), Epoch: f.prov.Epoch()}
	var resp wire.ReplStreamResponse
	if err := stream.Call(wire.KindReplStream, streamReq, &resp); err != nil {
		return fmt.Errorf("stream negotiation: %w", err)
	}
	// Adopt the primary's term and stamp proxied writes with it: if the
	// primary is later deposed, our forwarded writes are fenced at its
	// stale term instead of landing on a dead history.
	f.prov.ObserveEpoch(resp.Epoch, primary)
	proxy.SetWriteEpoch(resp.Epoch)
	f.connected.Store(true)
	bo.Reset()
	f.logf("replica %s: streaming from %s (local tail %d, primary tail %d, epoch %d)",
		f.opts.Name, primary, f.prov.LogSeq(), resp.LatestSeq, resp.Epoch)

	// Ack loop: batch-fsync the local log copy and acknowledge the durable
	// prefix. Acks both bound the primary's truncation and feed its lag
	// metrics, so they keep flowing even when no records arrive.
	ticker := time.NewTicker(f.opts.AckInterval)
	defer ticker.Stop()
	for {
		select {
		case <-f.ctx.Done():
			f.ack(stream) // parting ack: report what is durable before leaving
			return nil
		case <-stream.Done():
			return errors.New("connection closed")
		case <-ticker.C:
			if err := f.ack(stream); err != nil {
				return err
			}
		}
	}
}

// ack fsyncs the log copy and reports the durable prefix to the primary.
func (f *Follower) ack(stream *wire.Client) error {
	durable, err := f.prov.SyncLog()
	if err != nil {
		return err
	}
	if durable <= f.ackedSeq.Load() {
		return nil
	}
	req := &wire.ReplAckRequest{Follower: f.opts.Name, Seq: durable, Epoch: f.prov.Epoch()}
	if err := stream.Call(wire.KindReplAck, req, nil); err != nil {
		return err
	}
	f.ackedSeq.Store(durable)
	return nil
}

// session is the per-connection push state: the snapshot chunk buffer and
// the stream handle (so an epoch-fence violation can hang up from the push
// path).
type session struct {
	f      *Follower
	stream *wire.Client
	mu     sync.Mutex
	buf    bytes.Buffer
	done   bool
}

// onPush dispatches server-initiated messages on the stream connection. It
// runs on the connection's read loop, so records apply strictly in arrival
// order and a slow apply backpressures the stream naturally.
func (s *session) onPush(kind string, body json.RawMessage) {
	switch kind {
	case wire.KindReplRecord:
		var push wire.ReplRecordPush
		if err := json.Unmarshal(body, &push); err != nil {
			s.f.logf("replica %s: bad record push: %v", s.f.opts.Name, err)
			return
		}
		// The epoch fence, follower side: a record stamped below our term
		// comes from a deposed primary that does not know it yet. Tear the
		// session down rather than let one stale record into the verbatim
		// log copy; the reconnect probe will find the real primary.
		if err := s.f.prov.CheckStreamEpoch(push.Epoch); err != nil {
			s.f.logf("replica %s: %v; dropping stream", s.f.opts.Name, err)
			s.stream.Close()
			return
		}
		if err := s.f.prov.ApplyReplicated(push.Seq, push.Rec, push.SentUnixNano); err != nil {
			s.f.logf("replica %s: apply record %d: %v", s.f.opts.Name, push.Seq, err)
			return
		}
		if push.SentUnixNano > 0 {
			if lag := time.Now().UnixNano() - push.SentUnixNano; lag >= 0 {
				s.f.lagNanos.Store(lag)
			}
		}
	case wire.KindReplSnapshotChunk:
		var chunk wire.ReplSnapshotChunk
		if err := json.Unmarshal(body, &chunk); err != nil {
			s.f.logf("replica %s: bad snapshot chunk: %v", s.f.opts.Name, err)
			return
		}
		s.mu.Lock()
		if !s.done {
			s.buf.Write(chunk.Data)
			s.done = chunk.Last
		}
		s.mu.Unlock()
	}
}

// snapshot returns the fully buffered bootstrap snapshot. The chunks were
// pushed before the negotiation response on the same connection, so by the
// time the caller gets here they have all been processed by the read loop.
func (s *session) snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.done {
		return nil, fmt.Errorf("snapshot transfer incomplete (%d bytes buffered)", s.buf.Len())
	}
	return s.buf.Bytes(), nil
}

// EnableMetrics exports the follower's replication health: connection
// state, applied/acknowledged sequences, stream propagation lag in
// seconds, and snapshot bootstrap count.
func (f *Follower) EnableMetrics(reg *metrics.Registry) {
	reg.GaugeFunc("mdv_replica_connected", "1 while the replication stream is up",
		func() float64 {
			if f.connected.Load() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("mdv_replica_applied_seq", "last changelog sequence applied from the primary",
		func() float64 { return float64(f.prov.LogSeq()) })
	reg.GaugeFunc("mdv_replica_acked_seq", "last changelog sequence acknowledged to the primary",
		func() float64 { return float64(f.ackedSeq.Load()) })
	reg.GaugeFunc("mdv_replica_lag_seconds", "stream propagation delay of the last applied record",
		func() float64 { return time.Duration(f.lagNanos.Load()).Seconds() })
	reg.SampleFunc("mdv_replica_bootstraps_total", "snapshot bootstraps this follower has run",
		metrics.TypeCounter, func() []metrics.Sample {
			return []metrics.Sample{{Value: float64(f.bootstraps.Load())}}
		})
}
