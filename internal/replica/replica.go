// Package replica runs the follower side of MDP replication: it dials the
// primary, bootstraps from a shipped snapshot when the local changelog
// copy has fallen below the primary's retained log, applies the streamed
// changelog records through the provider (ApplyReplicated), forwards the
// replica's write operations to the primary, and acknowledges the durable
// applied prefix so the primary can truncate its log and report lag.
//
// The follower owns reconnection: on any stream loss it re-dials with
// jittered exponential backoff and renegotiates from its own log tail, so
// a primary restart (or a long partition that outruns the primary's log
// retention, forcing a fresh snapshot) heals without operator action.
package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mdv/internal/backoff"
	"mdv/internal/client"
	"mdv/internal/metrics"
	"mdv/internal/provider"
	"mdv/internal/wire"
)

// Options tune a follower.
type Options struct {
	// Name is the follower name announced to the primary (shown in its
	// follower stats and metrics). Defaults to the provider's name.
	Name string
	// Primary is the primary MDP's wire address.
	Primary string
	// Client carries the fault-tolerance settings for both connections
	// (heartbeats detect a dead primary; the reconnect loop takes over).
	Client client.Config
	// AckInterval is how often the follower fsyncs its log copy and
	// acknowledges the durable prefix to the primary. Zero means 100ms.
	AckInterval time.Duration
	// Backoff is the reconnect schedule (zero value = 1s→30s jittered).
	Backoff backoff.Backoff
	// Logf, if set, receives connection lifecycle and apply errors.
	Logf func(format string, args ...interface{})
}

// Follower replicates one provider from a primary until Close.
type Follower struct {
	prov *provider.Provider
	opts Options

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu     sync.Mutex
	stream *wire.Client
	proxy  *client.MDP

	connected  atomic.Bool
	bootstraps atomic.Uint64
	ackedSeq   atomic.Uint64
	// lagNanos is the apply-time minus send-time of the last streamed
	// record: the propagation delay of the replication stream itself.
	lagNanos atomic.Int64
}

// Start begins replicating prov (which must have been opened with
// DurableOptions.Replica) from the primary at opts.Primary.
func Start(prov *provider.Provider, opts Options) (*Follower, error) {
	if !prov.Replica() {
		return nil, errors.New("replica: provider was not opened as a replica (DurableOptions.Replica)")
	}
	if !prov.Durable() {
		return nil, errors.New("replica: provider is not durable (a follower needs its own changelog copy)")
	}
	if opts.Primary == "" {
		return nil, errors.New("replica: no primary address")
	}
	if opts.Name == "" {
		opts.Name = prov.Name()
	}
	if opts.AckInterval <= 0 {
		opts.AckInterval = 100 * time.Millisecond
	}
	f := &Follower{prov: prov, opts: opts}
	f.ctx, f.cancel = context.WithCancel(context.Background())
	f.wg.Add(1)
	go f.run()
	return f, nil
}

// Close stops replicating: the connections are closed and the run loop
// joined. The provider itself stays open (and keeps serving reads).
func (f *Follower) Close() error {
	f.cancel()
	f.mu.Lock()
	if f.stream != nil {
		f.stream.Close()
	}
	if f.proxy != nil {
		f.proxy.Close()
	}
	f.mu.Unlock()
	f.wg.Wait()
	return nil
}

// Connected reports whether the replication stream is currently up.
func (f *Follower) Connected() bool { return f.connected.Load() }

// AppliedSeq returns the last changelog sequence applied locally.
func (f *Follower) AppliedSeq() uint64 { return f.prov.LogSeq() }

// AckedSeq returns the last sequence acknowledged to the primary.
func (f *Follower) AckedSeq() uint64 { return f.ackedSeq.Load() }

// Bootstraps returns how many snapshot bootstraps this follower has run.
func (f *Follower) Bootstraps() uint64 { return f.bootstraps.Load() }

// Lag returns the stream propagation delay of the last applied record:
// apply time minus the primary's send time.
func (f *Follower) Lag() time.Duration { return time.Duration(f.lagNanos.Load()) }

func (f *Follower) logf(format string, args ...interface{}) {
	if f.opts.Logf != nil {
		f.opts.Logf(format, args...)
	}
}

func (f *Follower) run() {
	defer f.wg.Done()
	bo := f.opts.Backoff
	for {
		err := f.session(&bo)
		f.connected.Store(false)
		if f.ctx.Err() != nil {
			return
		}
		delay := bo.Next()
		f.logf("replica %s: stream to %s lost (%v); redialing in %v", f.opts.Name, f.opts.Primary, err, delay)
		select {
		case <-f.ctx.Done():
			return
		case <-time.After(delay):
		}
	}
}

// session runs one connect lifetime: dial, bootstrap if needed, stream,
// ack. It returns when the stream dies or the follower closes.
func (f *Follower) session(bo *backoff.Backoff) error {
	cfg := f.opts.Client
	wcfg := wire.Config{
		HeartbeatInterval: cfg.Heartbeat,
		IdleTimeout:       cfg.IdleTimeout,
		WriteTimeout:      cfg.WriteTimeout,
	}
	stream, err := wire.DialConfig(f.opts.Primary, wcfg)
	if err != nil {
		return err
	}
	s := &session{f: f}
	stream.OnPush = s.onPush
	f.mu.Lock()
	f.stream = stream
	f.mu.Unlock()
	defer stream.Close()

	// Bootstrap negotiation: the primary ships a snapshot (as in-order
	// chunk pushes on this connection, all preceding the response) only if
	// our tail has fallen below its retained log.
	var snap wire.ReplSnapshotResponse
	if err := stream.Call(wire.KindReplSnapshot, &wire.ReplSnapshotRequest{FromSeq: f.prov.LogSeq()}, &snap); err != nil {
		return fmt.Errorf("bootstrap negotiation: %w", err)
	}
	if snap.Needed {
		data, cerr := s.snapshot()
		if cerr != nil {
			return cerr
		}
		seq, ierr := f.prov.InstallSnapshot(data)
		if ierr != nil {
			return ierr
		}
		f.bootstraps.Add(1)
		f.logf("replica %s: installed bootstrap snapshot covering seq %d (%d bytes)", f.opts.Name, seq, len(data))
	}

	// The write proxy rides its own connection so proxied writes never
	// queue behind the record stream.
	proxy, err := client.DialMDPConfig(f.opts.Primary, cfg)
	if err != nil {
		return err
	}
	f.mu.Lock()
	f.proxy = proxy
	f.mu.Unlock()
	defer proxy.Close()
	f.prov.SetWriteProxy(proxy)

	var resp wire.ReplStreamResponse
	if err := stream.Call(wire.KindReplStream, &wire.ReplStreamRequest{Follower: f.opts.Name, FromSeq: f.prov.LogSeq()}, &resp); err != nil {
		return fmt.Errorf("stream negotiation: %w", err)
	}
	f.connected.Store(true)
	bo.Reset()
	f.logf("replica %s: streaming from %s (local tail %d, primary tail %d)", f.opts.Name, f.opts.Primary, f.prov.LogSeq(), resp.LatestSeq)

	// Ack loop: batch-fsync the local log copy and acknowledge the durable
	// prefix. Acks both bound the primary's truncation and feed its lag
	// metrics, so they keep flowing even when no records arrive.
	ticker := time.NewTicker(f.opts.AckInterval)
	defer ticker.Stop()
	for {
		select {
		case <-f.ctx.Done():
			f.ack(stream) // parting ack: report what is durable before leaving
			return nil
		case <-stream.Done():
			return errors.New("connection closed")
		case <-ticker.C:
			if err := f.ack(stream); err != nil {
				return err
			}
		}
	}
}

// ack fsyncs the log copy and reports the durable prefix to the primary.
func (f *Follower) ack(stream *wire.Client) error {
	durable, err := f.prov.SyncLog()
	if err != nil {
		return err
	}
	if durable <= f.ackedSeq.Load() {
		return nil
	}
	if err := stream.Call(wire.KindReplAck, &wire.ReplAckRequest{Follower: f.opts.Name, Seq: durable}, nil); err != nil {
		return err
	}
	f.ackedSeq.Store(durable)
	return nil
}

// session is the per-connection push state: the snapshot chunk buffer.
type session struct {
	f    *Follower
	mu   sync.Mutex
	buf  bytes.Buffer
	done bool
}

// onPush dispatches server-initiated messages on the stream connection. It
// runs on the connection's read loop, so records apply strictly in arrival
// order and a slow apply backpressures the stream naturally.
func (s *session) onPush(kind string, body json.RawMessage) {
	switch kind {
	case wire.KindReplRecord:
		var push wire.ReplRecordPush
		if err := json.Unmarshal(body, &push); err != nil {
			s.f.logf("replica %s: bad record push: %v", s.f.opts.Name, err)
			return
		}
		if err := s.f.prov.ApplyReplicated(push.Seq, push.Rec, push.SentUnixNano); err != nil {
			s.f.logf("replica %s: apply record %d: %v", s.f.opts.Name, push.Seq, err)
			return
		}
		if push.SentUnixNano > 0 {
			if lag := time.Now().UnixNano() - push.SentUnixNano; lag >= 0 {
				s.f.lagNanos.Store(lag)
			}
		}
	case wire.KindReplSnapshotChunk:
		var chunk wire.ReplSnapshotChunk
		if err := json.Unmarshal(body, &chunk); err != nil {
			s.f.logf("replica %s: bad snapshot chunk: %v", s.f.opts.Name, err)
			return
		}
		s.mu.Lock()
		if !s.done {
			s.buf.Write(chunk.Data)
			s.done = chunk.Last
		}
		s.mu.Unlock()
	}
}

// snapshot returns the fully buffered bootstrap snapshot. The chunks were
// pushed before the negotiation response on the same connection, so by the
// time the caller gets here they have all been processed by the read loop.
func (s *session) snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.done {
		return nil, fmt.Errorf("snapshot transfer incomplete (%d bytes buffered)", s.buf.Len())
	}
	return s.buf.Bytes(), nil
}

// EnableMetrics exports the follower's replication health: connection
// state, applied/acknowledged sequences, stream propagation lag in
// seconds, and snapshot bootstrap count.
func (f *Follower) EnableMetrics(reg *metrics.Registry) {
	reg.GaugeFunc("mdv_replica_connected", "1 while the replication stream is up",
		func() float64 {
			if f.connected.Load() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("mdv_replica_applied_seq", "last changelog sequence applied from the primary",
		func() float64 { return float64(f.prov.LogSeq()) })
	reg.GaugeFunc("mdv_replica_acked_seq", "last changelog sequence acknowledged to the primary",
		func() float64 { return float64(f.ackedSeq.Load()) })
	reg.GaugeFunc("mdv_replica_lag_seconds", "stream propagation delay of the last applied record",
		func() float64 { return time.Duration(f.lagNanos.Load()).Seconds() })
	reg.SampleFunc("mdv_replica_bootstraps_total", "snapshot bootstraps this follower has run",
		metrics.TypeCounter, func() []metrics.Sample {
			return []metrics.Sample{{Value: float64(f.bootstraps.Load())}}
		})
}
