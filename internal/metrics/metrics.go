// Package metrics is a dependency-free metrics registry: atomic counters,
// gauges, and fixed-bucket histograms, rendered in the Prometheus text
// exposition format (version 0.0.4).
//
// Design constraints, in order:
//
//   - Zero overhead when unused: every instrument is a plain struct of
//     atomics; components hold nil-able pointers to instrument bundles and
//     skip instrumentation entirely when no registry is attached.
//   - Coherent snapshots under concurrency: a histogram's observation
//     count is derived from its bucket counters at read time (never stored
//     separately), so a scrape can never observe count != sum(buckets) no
//     matter how many writers race it. This is what the -race coherence
//     tests lean on.
//   - No dependencies: the text format is hand-rolled; the HTTP handler is
//     a plain http.Handler usable on any mux (cmd/mdp and cmd/lmr share it
//     with the pprof mux).
//
// Families are identified by name; instruments within a family differ by
// their constant labels (e.g. one histogram per publish stage under a
// single mdv_publish_stage_seconds family). Dynamic families — those whose
// sample set is only known at scrape time, like per-subscriber delivery
// gauges — register a sample function instead of instruments.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must not be negative; counters only go up).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. It stores float64 bits so
// non-integral gauges (seconds, ratios) work too.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetInt replaces the gauge value with an integer.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Add adjusts the gauge by delta (CAS loop; gauges are rarely contended).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram. Bounds are inclusive upper bounds
// in increasing order; one overflow bucket (+Inf) is implicit. Bucket
// counters are stored non-cumulatively so the total observation count can
// be derived, keeping scrapes coherent by construction.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64   // float64 bits of the running value sum
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	// SearchFloat64s returns the insertion point for v (first bound >= v
	// when present); NaN observations land in the overflow bucket.
	if math.IsNaN(v) {
		i = len(h.bounds)
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// Count returns the total number of observations (the sum of all bucket
// counters; coherent with any concurrent snapshot).
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values. It may trail Count by a few
// in-flight observations (the bucket increment happens first).
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Buckets returns the bucket bounds and their non-cumulative counts
// (the final count is the +Inf overflow bucket).
func (h *Histogram) Buckets() ([]float64, []uint64) {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return h.bounds, out
}

// TimeBuckets covers 1µs..10s exponentially: statement execution through
// whole slow publishes fit without tuning.
var TimeBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// SizeBuckets covers counts 1..4096 in powers of two (group-commit batch
// sizes, queue depths, batch document counts).
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

// Label is one constant name/value pair attached to an instrument or
// emitted with a dynamic sample.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Sample is one dynamically produced metric value (see Registry.SampleFunc).
type Sample struct {
	Labels []Label
	Value  float64
}

// Instrument types, in the Prometheus TYPE vocabulary.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

type instrument struct {
	labels  []Label
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

type family struct {
	name  string
	help  string
	typ   string
	insts []*instrument
	// sampleFn produces this family's samples at scrape time (dynamic
	// families, e.g. per-subscriber gauges).
	sampleFn func() []Sample
}

// Registry holds metric families and renders them as Prometheus text.
// Instrument registration is idempotent: asking for the same name and
// label set returns the existing instrument, so components can re-wire a
// registry without double counting.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	order []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

func (r *Registry) familyLocked(name, help, typ string) *family {
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.fams[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("metrics: family %s registered as %s and %s", name, f.typ, typ))
	}
	return f
}

func labelsEqual(a, b []Label) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (f *family) find(labels []Label) *instrument {
	for _, in := range f.insts {
		if labelsEqual(in.labels, labels) {
			return in
		}
	}
	return nil
}

// Counter registers (or returns) a counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, TypeCounter)
	if in := f.find(labels); in != nil {
		return in.counter
	}
	in := &instrument{labels: labels, counter: &Counter{}}
	f.insts = append(f.insts, in)
	return in.counter
}

// Gauge registers (or returns) a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, TypeGauge)
	if in := f.find(labels); in != nil {
		return in.gauge
	}
	in := &instrument{labels: labels, gauge: &Gauge{}}
	f.insts = append(f.insts, in)
	return in.gauge
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, TypeGauge)
	if f.find(labels) != nil {
		return
	}
	f.insts = append(f.insts, &instrument{labels: labels, fn: fn})
}

// Histogram registers (or returns) a histogram with the given bucket
// bounds (strictly increasing; +Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, TypeHistogram)
	if in := f.find(labels); in != nil {
		return in.hist
	}
	h := &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	f.insts = append(f.insts, &instrument{labels: labels, hist: h})
	return h
}

// SampleFunc registers a dynamic family: fn is called at scrape time and
// its samples are rendered under one TYPE header. typ is TypeCounter or
// TypeGauge.
func (r *Registry) SampleFunc(name, help, typ string, fn func() []Sample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, typ)
	f.sampleFn = fn
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeLabels renders {a="b",c="d"} (empty string for no labels). extra is
// appended after the fixed labels (used for the histogram le label).
func writeLabels(sb *strings.Builder, labels []Label, extra ...Label) {
	if len(labels) == 0 && len(extra) == 0 {
		return
	}
	sb.WriteByte('{')
	first := true
	for _, l := range append(append([]Label{}, labels...), extra...) {
		if !first {
			sb.WriteByte(',')
		}
		first = false
		sb.WriteString(l.Name)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
}

// WriteText renders the registry in the Prometheus text exposition format,
// families in registration order.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	order := append([]string{}, r.order...)
	fams := make([]*family, 0, len(order))
	for _, name := range order {
		fams = append(fams, r.fams[name])
	}
	r.mu.Unlock()

	var sb strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&sb, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&sb, "# TYPE %s %s\n", f.name, f.typ)
		r.mu.Lock()
		insts := append([]*instrument{}, f.insts...)
		sampleFn := f.sampleFn
		r.mu.Unlock()
		for _, in := range insts {
			switch {
			case in.counter != nil:
				sb.WriteString(f.name)
				writeLabels(&sb, in.labels)
				fmt.Fprintf(&sb, " %d\n", in.counter.Value())
			case in.gauge != nil:
				sb.WriteString(f.name)
				writeLabels(&sb, in.labels)
				fmt.Fprintf(&sb, " %s\n", formatFloat(in.gauge.Value()))
			case in.fn != nil:
				sb.WriteString(f.name)
				writeLabels(&sb, in.labels)
				fmt.Fprintf(&sb, " %s\n", formatFloat(in.fn()))
			case in.hist != nil:
				bounds, counts := in.hist.Buckets()
				var cum, count uint64
				sum := in.hist.Sum()
				for i, b := range bounds {
					cum += counts[i]
					sb.WriteString(f.name)
					sb.WriteString("_bucket")
					writeLabels(&sb, in.labels, L("le", formatFloat(b)))
					fmt.Fprintf(&sb, " %d\n", cum)
				}
				cum += counts[len(bounds)]
				count = cum
				sb.WriteString(f.name)
				sb.WriteString("_bucket")
				writeLabels(&sb, in.labels, L("le", "+Inf"))
				fmt.Fprintf(&sb, " %d\n", cum)
				sb.WriteString(f.name)
				sb.WriteString("_sum")
				writeLabels(&sb, in.labels)
				fmt.Fprintf(&sb, " %s\n", formatFloat(sum))
				sb.WriteString(f.name)
				sb.WriteString("_count")
				writeLabels(&sb, in.labels)
				fmt.Fprintf(&sb, " %d\n", count)
			}
		}
		if sampleFn != nil {
			for _, s := range sampleFn() {
				sb.WriteString(f.name)
				writeLabels(&sb, s.Labels)
				fmt.Fprintf(&sb, " %s\n", formatFloat(s.Value))
			}
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Text renders the registry to a string.
func (r *Registry) Text() string {
	var sb strings.Builder
	r.WriteText(&sb) // strings.Builder writes cannot fail
	return sb.String()
}

// Handler returns an http.Handler serving the registry (for /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}
