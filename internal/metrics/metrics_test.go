package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mdv_test_total", "test counter", L("op", "x"))
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Idempotent registration returns the same instrument.
	if again := r.Counter("mdv_test_total", "test counter", L("op", "x")); again != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("mdv_test_gauge", "test gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestHistogramMath(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mdv_test_seconds", "test histogram", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); got != 106 {
		t.Fatalf("sum = %v, want 106", got)
	}
	_, counts := h.Buckets()
	want := []uint64{2, 1, 1, 1} // le=1: {0.5,1}; le=2: {1.5}; le=4: {3}; +Inf: {100}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, counts[i], want[i], want)
		}
	}
}

func TestTextExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("mdv_ops_total", "ops", L("op", "a")).Add(3)
	r.Counter("mdv_ops_total", "ops", L("op", "b")).Add(7)
	r.Gauge("mdv_depth", "queue \"depth\"\nmultiline").Set(42)
	h := r.Histogram("mdv_lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.SampleFunc("mdv_dyn", "dynamic", TypeGauge, func() []Sample {
		return []Sample{{Labels: []Label{L("who", `q"x`)}, Value: 9}}
	})

	text := r.Text()
	for _, want := range []string{
		"# HELP mdv_ops_total ops\n",
		"# TYPE mdv_ops_total counter\n",
		`mdv_ops_total{op="a"} 3` + "\n",
		`mdv_ops_total{op="b"} 7` + "\n",
		"# TYPE mdv_depth gauge\n",
		"mdv_depth 42\n",
		`mdv_lat_seconds_bucket{le="0.1"} 1` + "\n",
		`mdv_lat_seconds_bucket{le="1"} 2` + "\n",
		`mdv_lat_seconds_bucket{le="+Inf"} 3` + "\n",
		"mdv_lat_seconds_sum 5.55\n",
		"mdv_lat_seconds_count 3\n",
		`mdv_dyn{who="q\"x"} 9` + "\n",
		`# HELP mdv_depth queue "depth"` /* help escapes \n but not quotes */ + `\nmultiline` + "\n",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	// Registration order is preserved.
	if strings.Index(text, "mdv_ops_total") > strings.Index(text, "mdv_depth") {
		t.Fatalf("families out of registration order:\n%s", text)
	}
}

func TestNonFiniteRendering(t *testing.T) {
	r := NewRegistry()
	r.Gauge("mdv_inf", "inf").Set(math.Inf(1))
	r.Gauge("mdv_neginf", "neg inf").Set(math.Inf(-1))
	text := r.Text()
	if !strings.Contains(text, "mdv_inf +Inf\n") || !strings.Contains(text, "mdv_neginf -Inf\n") {
		t.Fatalf("non-finite rendering wrong:\n%s", text)
	}
	h := r.Histogram("mdv_h", "h", []float64{1})
	h.Observe(math.NaN())
	_, counts := h.Buckets()
	if counts[len(counts)-1] != 1 {
		t.Fatalf("NaN observation should land in +Inf bucket, got %v", counts)
	}
}

// TestHistogramCoherence hammers a histogram from many goroutines while a
// reader snapshots it, asserting the invariant the scrape path depends on:
// the derived count equals the sum of bucket counters at every snapshot
// (no torn reads), and the final totals are exact.
func TestHistogramCoherence(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mdv_coherence_seconds", "coherence", TimeBuckets)
	const writers, perWriter = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, counts := h.Buckets()
			var sum uint64
			for _, c := range counts {
				sum += c
			}
			if got := h.Count(); got < sum {
				// Count re-reads the buckets, so it can only be >= an
				// earlier snapshot, never behind it.
				t.Errorf("count %d went backwards vs snapshot sum %d", got, sum)
				return
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(float64(i%7) * 1e-5)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	if got := h.Count(); got != writers*perWriter {
		t.Fatalf("final count = %d, want %d", got, writers*perWriter)
	}
}
