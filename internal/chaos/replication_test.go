package chaos

import (
	"testing"
	"time"

	"mdv/internal/backoff"
	"mdv/internal/client"
	"mdv/internal/faultnet"
	"mdv/internal/lmr"
	"mdv/internal/provider"
	"mdv/internal/replica"
	"mdv/internal/wire"
)

// replCliCfg is the fault-tolerance profile used by every replication
// chaos scenario: fast heartbeats so dead peers are declared within
// ~300ms, short backoff so reconnects land quickly.
var replCliCfg = client.Config{
	Heartbeat:    50 * time.Millisecond,
	IdleTimeout:  300 * time.Millisecond,
	WriteTimeout: 300 * time.Millisecond,
	CallTimeout:  3 * time.Second,
}

var replWireCfg = wire.Config{
	HeartbeatInterval: 50 * time.Millisecond,
	IdleTimeout:       300 * time.Millisecond,
	WriteTimeout:      300 * time.Millisecond,
	SendQueue:         64,
}

func replBackoff() backoff.Backoff {
	return backoff.Backoff{Base: 20 * time.Millisecond, Max: 200 * time.Millisecond}
}

// startReplica opens a replica provider and its follower streaming from
// primaryAddr (possibly a fault proxy).
func startReplica(t *testing.T, dir, primaryAddr, name string) (*provider.Provider, *replica.Follower) {
	t.Helper()
	rp, err := provider.OpenDurable(name, chaosSchema(t), dir, provider.DurableOptions{Replica: true})
	if err != nil {
		t.Fatal(err)
	}
	fol, err := replica.Start(rp, replica.Options{
		Name:        name,
		Primary:     primaryAddr,
		Client:      replCliCfg,
		AckInterval: 10 * time.Millisecond,
		Backoff:     replBackoff(),
	})
	if err != nil {
		rp.Close()
		t.Fatal(err)
	}
	return rp, fol
}

// TestReplicaSurvivesPartitionOverFaultnet runs the follower's stream
// through a fault proxy, blackholes it mid-stream, and verifies that the
// primary keeps publishing unblocked, the follower detects the dead
// stream within the heartbeat bound, and after the heal it reconnects on
// its own backoff and converges to the primary's exact log tail — no
// duplicated or skipped sequences (ApplyReplicated asserts contiguous
// appends, so a skip would fail the apply, and a dup would stall the
// tail below the primary's).
func TestReplicaSurvivesPartitionOverFaultnet(t *testing.T) {
	schema := chaosSchema(t)
	primary, err := provider.OpenDurable("primary", schema, t.TempDir(), provider.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	addr, err := primary.ServeConfig("127.0.0.1:0", replWireCfg)
	if err != nil {
		t.Fatal(err)
	}
	px, err := faultnet.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	if _, _, err := primary.Subscribe("lmr", hostRule); err != nil {
		t.Fatal(err)
	}
	rp, fol := startReplica(t, t.TempDir(), px.Addr(), "r1")
	defer rp.Close()
	defer fol.Close()

	for i := 0; i < 3; i++ {
		if err := primary.RegisterDocument(hostDoc(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "replica caught up through the proxy", func() bool {
		return rp.LogSeq() == primary.LogSeq()
	})

	// Partition the stream. The primary must keep accepting writes with
	// bounded latency while its follower is dark.
	px.SetBlackhole(true)
	for i := 3; i < 8; i++ {
		start := time.Now()
		if err := primary.RegisterDocument(hostDoc(i)); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d > 2*time.Second {
			t.Fatalf("publish %d took %v with a blackholed follower", i, d)
		}
	}
	waitUntil(t, "follower to detect the dead stream", func() bool {
		return !fol.Connected()
	})
	if rp.LogSeq() == primary.LogSeq() {
		t.Fatal("replica converged through a blackhole?")
	}

	px.SetBlackhole(false)
	waitUntil(t, "follower reconnected and converged after heal", func() bool {
		return fol.Connected() && rp.LogSeq() == primary.LogSeq()
	})
	if got, want := rp.Engine().ResourceCount(), primary.Engine().ResourceCount(); got != want {
		t.Errorf("replica resources = %d, want %d", got, want)
	}
	if fol.Bootstraps() != 0 {
		t.Errorf("bootstraps = %d, want 0 (resume from local tail, no snapshot)", fol.Bootstraps())
	}
}

// TestReplicaRestartResumesFromLocalTail kills and restarts the whole
// replica node (provider + follower); the restarted follower must resume
// the stream from its recovered local tail without a snapshot bootstrap
// and converge on records published while it was down.
func TestReplicaRestartResumesFromLocalTail(t *testing.T) {
	schema := chaosSchema(t)
	primary, err := provider.OpenDurable("primary", schema, t.TempDir(), provider.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	addr, err := primary.ServeConfig("127.0.0.1:0", replWireCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := primary.Subscribe("lmr", hostRule); err != nil {
		t.Fatal(err)
	}

	replicaDir := t.TempDir()
	rp, fol := startReplica(t, replicaDir, addr, "r1")
	for i := 0; i < 3; i++ {
		if err := primary.RegisterDocument(hostDoc(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "replica caught up before restart", func() bool {
		return rp.LogSeq() == primary.LogSeq()
	})
	tail := rp.LogSeq()
	fol.Close()
	if err := rp.Close(); err != nil {
		t.Fatal(err)
	}

	// Published while the replica is down; it must pick these up on resume.
	for i := 3; i < 6; i++ {
		if err := primary.RegisterDocument(hostDoc(i)); err != nil {
			t.Fatal(err)
		}
	}

	rp2, fol2 := startReplica(t, replicaDir, addr, "r1")
	defer rp2.Close()
	defer fol2.Close()
	if rp2.LogSeq() < tail {
		t.Fatalf("restarted replica recovered tail %d, want >= %d", rp2.LogSeq(), tail)
	}
	waitUntil(t, "restarted replica converged", func() bool {
		return rp2.LogSeq() == primary.LogSeq()
	})
	if fol2.Bootstraps() != 0 {
		t.Errorf("bootstraps = %d, want 0 (local tail met the retained log)", fol2.Bootstraps())
	}
	if got, want := rp2.Engine().ResourceCount(), primary.Engine().ResourceCount(); got != want {
		t.Errorf("replica resources = %d, want %d", got, want)
	}
}

// TestLMRFailsOverToReplica is the headline replication chaos scenario:
// one primary with one read replica, and an LMR whose endpoint list names
// both. The LMR's path to the primary is blackholed and then the primary
// dies outright; the reconnect supervisor must rotate to the replica
// within the backoff bound and resume the changeset stream from its
// cursor — converging byte-identical with a fault-free control node on
// the replica, with no full-state reset and no skipped or duplicated
// changesets.
func TestLMRFailsOverToReplica(t *testing.T) {
	schema := chaosSchema(t)
	primary, err := provider.OpenDurable("primary", schema, t.TempDir(), provider.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	primaryClosed := false
	defer func() {
		if !primaryClosed {
			primary.Close()
		}
	}()
	primaryAddr, err := primary.ServeConfig("127.0.0.1:0", replWireCfg)
	if err != nil {
		t.Fatal(err)
	}

	// The replica streams from the primary directly; only the LMR's path
	// to the primary runs through the fault proxy.
	rp, fol := startReplica(t, t.TempDir(), primaryAddr, "r1")
	defer rp.Close()
	defer fol.Close()
	replicaAddr, err := rp.ServeConfig("127.0.0.1:0", replWireCfg)
	if err != nil {
		t.Fatal(err)
	}
	px, err := faultnet.Listen(primaryAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	// Fault-free reference: an in-process node on the replica. Its
	// subscription is a write, proxied to the (still live) primary; it must
	// be registered before any documents so every matching changeset flows
	// through the ordered replication stream.
	control, err := lmr.New("control", schema, rp)
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "follower stream up (write proxy available)", func() bool {
		return fol.Connected()
	})
	if _, err := control.AddSubscription(hostRule); err != nil {
		t.Fatal(err)
	}

	// The failover LMR dials through a rotating endpoint list: the
	// (proxied) primary first, the replica second.
	dialer, err := client.NewMultiDialer([]string{px.Addr(), replicaAddr}, replCliCfg)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := dialer.Dial()
	if err != nil {
		t.Fatal(err)
	}
	node, err := lmr.New("failover", schema, cli)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.AddSubscription(hostRule); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	supDone := make(chan struct{})
	go func() {
		defer close(supDone)
		bo := replBackoff()
		node.Supervise(stop, cli, lmr.SuperviseConfig{
			Dial: func() (lmr.ReconnectableProvider, error) {
				return dialer.Dial()
			},
			Backoff:   &bo,
			Retryable: client.IsRetryable,
		})
	}()
	defer func() { close(stop); <-supDone }()

	defer func() {
		if t.Failed() {
			t.Logf("state: node=%d control=%d rpSeq=%d folConnected=%t folBootstraps=%d",
				node.Repository().Len(), control.Repository().Len(), rp.LogSeq(),
				fol.Connected(), fol.Bootstraps())
		}
	}()

	for i := 0; i < 4; i++ {
		if err := primary.RegisterDocument(hostDoc(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "everyone at the initial 4 resources", func() bool {
		return node.Repository().Len() == 4 && control.Repository().Len() == 4 &&
			rp.LogSeq() == primary.LogSeq()
	})

	// Blackhole the LMR's path to the primary, then publish more: the
	// replica (direct path) keeps converging, the LMR goes stale.
	px.SetBlackhole(true)
	for i := 4; i < 8; i++ {
		if err := primary.RegisterDocument(hostDoc(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "replica fully converged and acked before the kill", func() bool {
		fds := primary.Followers()
		return rp.LogSeq() == primary.LogSeq() &&
			len(fds) == 1 && fds[0].AckedSeq == primary.LogSeq()
	})

	// Kill the primary. Everything the deployment still knows lives in the
	// replica's verbatim log copy now.
	primaryClosed = true
	if err := primary.Close(); err != nil {
		t.Fatal(err)
	}

	// The supervisor must land on the replica and resume from the LMR's
	// cursor: byte-identical convergence with the control node, via replay
	// — not a full-state reset — with no sequence skipped or applied twice
	// (the repository rejects out-of-order pushes).
	want := fingerprint(t, control)
	waitUntil(t, "failover LMR converged on the replica", func() bool {
		return node.Repository().Len() == 8 && fingerprint(t, node) == want
	})
	if got := node.Repository().Stats().Resets; got != 0 {
		t.Errorf("failover used %d full-state resets, want cursor resume", got)
	}
	if control.Repository().Stats().Resets != 0 {
		t.Errorf("control node saw a full-state reset")
	}

	// The replica still answers queries — the read path never went down.
	rs, err := node.Query(`search CycleProvider c register c`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 8 {
		t.Errorf("query after failover returned %d resources, want 8", len(rs))
	}
}
