package chaos

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"mdv/internal/backoff"
	"mdv/internal/client"
	"mdv/internal/faultnet"
	"mdv/internal/lmr"
	"mdv/internal/provider"
	"mdv/internal/rdf"
	"mdv/internal/wire"
)

const schemaXML = `<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#">
  <Class rdf:ID="CycleProvider"/>
  <Property rdf:ID="p1">
    <name>serverHost</name>
    <domain rdf:resource="#CycleProvider"/>
    <range rdf:resource="http://www.w3.org/2000/01/rdf-schema#Literal"/>
  </Property>
</rdf:RDF>`

const hostRule = `search CycleProvider c register c where c.serverHost contains 'uni-passau.de'`

func chaosSchema(t *testing.T) *rdf.Schema {
	t.Helper()
	schema, err := rdf.ParseSchema(strings.NewReader(schemaXML))
	if err != nil {
		t.Fatal(err)
	}
	return schema
}

func hostDoc(i int) *rdf.Document {
	doc := rdf.NewDocument(fmt.Sprintf("host%d.rdf", i))
	doc.NewResource("cp", "CycleProvider").
		Add("serverHost", rdf.Lit(fmt.Sprintf("node%d.uni-passau.de", i)))
	return doc
}

// bigDoc carries a padded property so a handful of changesets overwhelm
// any kernel socket buffering and force the send queue to fill.
func bigDoc(i, pad int) *rdf.Document {
	doc := rdf.NewDocument(fmt.Sprintf("big%d.rdf", i))
	doc.NewResource("cp", "CycleProvider").
		Add("serverHost", rdf.Lit(strings.Repeat("x", pad)+fmt.Sprintf(".node%d.uni-passau.de", i)))
	return doc
}

// fingerprint summarizes a node's cached resources for differential
// comparison: URI, class, and sorted property dump of every resource.
func fingerprint(t *testing.T, node *lmr.Node) string {
	t.Helper()
	rs, err := node.Resources("")
	if err != nil {
		t.Fatal(err)
	}
	lines := make([]string, 0, len(rs))
	for _, r := range rs {
		props := make([]string, 0, len(r.Props))
		for _, p := range r.Props {
			props = append(props, p.Name+"="+p.Value.String())
		}
		sort.Strings(props)
		lines = append(lines, r.URIRef+"|"+r.Class+"|"+strings.Join(props, ","))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// subscriberStats fetches the delivery counters for one subscriber.
func subscriberStats(t *testing.T, prov *provider.Provider, name string) *wire.SubscriberDelivery {
	t.Helper()
	for _, s := range prov.DeliveryStats().Subscribers {
		if s.Subscriber == name {
			sc := s
			return &sc
		}
	}
	return nil
}

// dialNode connects an LMR node to the provider through the given proxy
// and subscribes it to the host rule.
func dialNode(t *testing.T, schema *rdf.Schema, name string, proxy *faultnet.Proxy, cfg client.Config) (*lmr.Node, *client.MDP) {
	t.Helper()
	cli, err := client.DialMDPConfig(proxy.Addr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	node, err := lmr.New(name, schema, cli)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.AddSubscription(hostRule); err != nil {
		t.Fatal(err)
	}
	return node, cli
}

// reconnectNode emulates cmd/lmr's reconnect loop: dial a fresh client
// through the (healed) proxy with jittered backoff and swap it into the
// node, which re-attaches and resumes from its cursor.
func reconnectNode(t *testing.T, node *lmr.Node, proxy *faultnet.Proxy, cfg client.Config) *client.MDP {
	t.Helper()
	var cli *client.MDP
	b := &backoff.Backoff{Base: 20 * time.Millisecond, Max: 200 * time.Millisecond}
	err := backoff.Retry(context.Background(), b, 20, client.IsRetryable, func() error {
		c, err := client.DialMDPConfig(proxy.Addr(), cfg)
		if err != nil {
			return err
		}
		if err := node.Reconnect(c); err != nil {
			c.Close()
			return err
		}
		cli = c
		return nil
	})
	if err != nil {
		t.Fatalf("reconnect %s: %v", node.Name(), err)
	}
	return cli
}

// TestBlackholedSubscriberDoesNotBlockPublishing is the headline chaos
// scenario from the failure model: one durable MDP, three LMRs behind
// individual fault proxies, and an in-process control node as the
// fault-free reference. One LMR is blackholed mid-stream; the provider
// must keep publishing with bounded latency, healthy LMRs must stay
// current, the stalled LMR must be disconnected within the heartbeat
// bound, and after the partition heals every LMR must converge to a cache
// byte-identical with the control node's.
func TestBlackholedSubscriberDoesNotBlockPublishing(t *testing.T) {
	schema := chaosSchema(t)
	prov, err := provider.OpenDurable("mdp", schema, t.TempDir(), provider.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer prov.Close()

	srvCfg := wire.Config{
		HeartbeatInterval: 50 * time.Millisecond,
		IdleTimeout:       300 * time.Millisecond,
		WriteTimeout:      300 * time.Millisecond,
		SendQueue:         16,
	}
	addr, err := prov.ServeConfig("127.0.0.1:0", srvCfg)
	if err != nil {
		t.Fatal(err)
	}
	cliCfg := client.Config{
		Heartbeat:    50 * time.Millisecond,
		IdleTimeout:  300 * time.Millisecond,
		WriteTimeout: 300 * time.Millisecond,
		CallTimeout:  3 * time.Second,
	}

	// Fault-free reference: an in-process node sees every changeset
	// directly, with no network in between.
	control, err := lmr.New("control", schema, prov)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := control.AddSubscription(hostRule); err != nil {
		t.Fatal(err)
	}

	names := []string{"alpha", "bravo", "charlie"}
	proxies := make(map[string]*faultnet.Proxy)
	nodes := make(map[string]*lmr.Node)
	for _, name := range names {
		px, err := faultnet.Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer px.Close()
		proxies[name] = px
		node, cli := dialNode(t, schema, name, px, cliCfg)
		defer cli.Close()
		nodes[name] = node
	}

	for i := 0; i < 4; i++ {
		if err := prov.RegisterDocument(hostDoc(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "all nodes at initial 4 resources", func() bool {
		for _, n := range nodes {
			if n.Repository().Len() != 4 {
				return false
			}
		}
		return control.Repository().Len() == 4
	})

	// Partition bravo: its proxy silently swallows traffic in both
	// directions, exactly like a wide-area packet blackhole.
	proxies["bravo"].SetBlackhole(true)

	// The provider must keep publishing with bounded per-publish latency —
	// bravo's dead TCP window cannot be allowed to backpressure Publish.
	for i := 4; i < 12; i++ {
		start := time.Now()
		if err := prov.RegisterDocument(hostDoc(i)); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d > 2*time.Second {
			t.Fatalf("publish %d took %v with a blackholed subscriber, want bounded latency", i, d)
		}
	}
	if err := prov.DeleteDocument("host2.rdf"); err != nil {
		t.Fatal(err)
	}

	// Healthy subscribers stay current while bravo is dark.
	waitUntil(t, "healthy nodes current during partition", func() bool {
		return nodes["alpha"].Repository().Len() == 11 &&
			nodes["charlie"].Repository().Len() == 11 &&
			control.Repository().Len() == 11
	})
	if got := nodes["bravo"].Repository().Len(); got != 4 {
		t.Fatalf("blackholed node has %d resources, want the stale 4", got)
	}

	// The stalled subscriber must be detected and disconnected within the
	// heartbeat/idle bound, not held open indefinitely.
	waitUntil(t, "provider to disconnect the stalled subscriber", func() bool {
		s := subscriberStats(t, prov, "bravo")
		return s != nil && s.Conns == 0 && s.Disconnects >= 1
	})

	// Heal and reconnect the way cmd/lmr does: fresh dial with jittered
	// backoff, resume from the durable cursor.
	proxies["bravo"].SetBlackhole(false)
	cli := reconnectNode(t, nodes["bravo"], proxies["bravo"], cliCfg)
	defer cli.Close()

	want := fingerprint(t, control)
	waitUntil(t, "all nodes byte-identical with control after heal", func() bool {
		for _, n := range nodes {
			if fingerprint(t, n) != want {
				return false
			}
		}
		return true
	})
}

// TestQueueOverflowDisconnectAndResume stalls a subscriber while the
// provider publishes changesets far larger than kernel socket buffering,
// so the bounded send queue — not TCP — is what gives out. The provider
// must drop the subscriber (counting the drop), and the subscriber must
// converge via cursor resume after reconnecting.
func TestQueueOverflowDisconnectAndResume(t *testing.T) {
	schema := chaosSchema(t)
	prov, err := provider.OpenDurable("mdp", schema, t.TempDir(), provider.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer prov.Close()

	// No heartbeats and a long write timeout: the only defense left is the
	// bounded queue, which is exactly what this test exercises.
	addr, err := prov.ServeConfig("127.0.0.1:0", wire.Config{
		WriteTimeout: 10 * time.Second,
		SendQueue:    4,
	})
	if err != nil {
		t.Fatal(err)
	}

	control, err := lmr.New("control", schema, prov)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := control.AddSubscription(hostRule); err != nil {
		t.Fatal(err)
	}

	px, err := faultnet.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	// Generous call timeout: the resume replay after heal moves several MB
	// of changesets, and under the race detector that can be slow.
	cliCfg := client.Config{CallTimeout: 30 * time.Second}
	node, cli := dialNode(t, schema, "stalled", px, cliCfg)
	defer cli.Close()

	if err := prov.RegisterDocument(hostDoc(0)); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "initial doc at subscriber", func() bool {
		return node.Repository().Len() == 1
	})

	px.SetBlackhole(true)
	const docs, pad = 32, 256 << 10
	for i := 0; i < docs; i++ {
		if err := prov.RegisterDocument(bigDoc(i, pad)); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "queue overflow to disconnect the stalled subscriber", func() bool {
		s := subscriberStats(t, prov, "stalled")
		return s != nil && s.Conns == 0 && s.Dropped >= 1 && s.Disconnects >= 1
	})

	px.SetBlackhole(false)
	cli2 := reconnectNode(t, node, px, cliCfg)
	defer cli2.Close()

	waitUntil(t, "stalled subscriber converged via resume", func() bool {
		// Cheap length check first; the full fingerprint compares several
		// MB of property data and is too expensive to run every poll.
		return node.Repository().Len() == docs+1 &&
			fingerprint(t, node) == fingerprint(t, control)
	})
}

// TestMidStreamResetReconnects kills every proxied connection with a TCP
// RST mid-stream; the client must observe the failure promptly as a
// retryable error and converge after a jittered-backoff reconnect.
func TestMidStreamResetReconnects(t *testing.T) {
	schema := chaosSchema(t)
	prov, err := provider.OpenDurable("mdp", schema, t.TempDir(), provider.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer prov.Close()
	addr, err := prov.ServeConfig("127.0.0.1:0", wire.Config{
		HeartbeatInterval: 50 * time.Millisecond,
		WriteTimeout:      300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	control, err := lmr.New("control", schema, prov)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := control.AddSubscription(hostRule); err != nil {
		t.Fatal(err)
	}

	px, err := faultnet.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	cliCfg := client.Config{
		Heartbeat:    50 * time.Millisecond,
		IdleTimeout:  300 * time.Millisecond,
		WriteTimeout: 300 * time.Millisecond,
		CallTimeout:  3 * time.Second,
	}
	node, cli := dialNode(t, schema, "resetme", px, cliCfg)
	defer cli.Close()

	for i := 0; i < 3; i++ {
		if err := prov.RegisterDocument(hostDoc(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "subscriber at 3 resources", func() bool {
		return node.Repository().Len() == 3
	})

	px.ResetAll()
	select {
	case <-cli.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("client did not observe mid-stream reset")
	}

	for i := 3; i < 6; i++ {
		if err := prov.RegisterDocument(hostDoc(i)); err != nil {
			t.Fatal(err)
		}
	}

	cli2 := reconnectNode(t, node, px, cliCfg)
	defer cli2.Close()
	waitUntil(t, "reset subscriber converged after reconnect", func() bool {
		return fingerprint(t, node) == fingerprint(t, control)
	})
}
