package chaos

import (
	"bytes"
	"testing"
	"time"

	"mdv/internal/client"
	"mdv/internal/faultnet"
	"mdv/internal/lmr"
	"mdv/internal/provider"
	"mdv/internal/replica"
)

// logRecords collects a provider's retained changelog as seq -> payload.
func logRecords(t *testing.T, p *provider.Provider) map[uint64][]byte {
	t.Helper()
	out := map[uint64][]byte{}
	err := p.ReplayLog(1, func(seq uint64, payload []byte) error {
		out[seq] = append([]byte(nil), payload...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestEpochFencedFailoverNoSplitBrain is the headline failover scenario:
// a primary dies with an UNREPLICATED tail (writes it accepted but never
// shipped), a follower is promoted into a new epoch and takes different
// writes, and then the old primary resurrects from its on-disk state —
// still believing it is the primary of the old term, still holding the
// divergent tail. The resurrected node must rejoin as a follower, repair
// its divergent tail via a forced snapshot resync (wiping the records
// that exist in no surviving history), refuse every write stamped with
// its dead term, and converge to a byte-identical changelog with the new
// primary. Meanwhile the LMR rides the failover with cursor resume only —
// zero full-state resets — and a write caught in the primary-less window
// degrades to bounded retries instead of failing.
func TestEpochFencedFailoverNoSplitBrain(t *testing.T) {
	schema := chaosSchema(t)
	pDir := t.TempDir()
	primary, err := provider.OpenDurable("primary", schema, pDir, provider.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	primaryUp := true
	defer func() {
		if primaryUp {
			primary.Close()
		}
	}()
	primaryAddr, err := primary.ServeConfig("127.0.0.1:0", replWireCfg)
	if err != nil {
		t.Fatal(err)
	}

	r1Dir := t.TempDir()
	rp, fol := startReplica(t, r1Dir, primaryAddr, "r1")
	defer rp.Close()
	defer fol.Close()
	r1Addr, err := rp.ServeConfig("127.0.0.1:0", replWireCfg)
	if err != nil {
		t.Fatal(err)
	}

	// The LMR reaches the primary through a fault proxy (so the kill also
	// severs its delivery stream) and the replica directly.
	px, err := faultnet.Listen(primaryAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	dialer, err := client.NewMultiDialer([]string{px.Addr(), r1Addr}, replCliCfg)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := dialer.Dial()
	if err != nil {
		t.Fatal(err)
	}
	node, err := lmr.New("failover", schema, cli)
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "follower stream up (write proxy available)", func() bool {
		return fol.Connected()
	})
	if _, err := node.AddSubscription(hostRule); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	supDone := make(chan struct{})
	go func() {
		defer close(supDone)
		bo := replBackoff()
		node.Supervise(stop, cli, lmr.SuperviseConfig{
			Dial:      func() (lmr.ReconnectableProvider, error) { return dialer.Dial() },
			Backoff:   &bo,
			Retryable: client.IsRetryable,
		})
	}()
	defer func() { close(stop); <-supDone }()

	for i := 0; i < 4; i++ {
		if err := primary.RegisterDocument(hostDoc(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "replica and LMR at the initial 4 resources", func() bool {
		return rp.LogSeq() == primary.LogSeq() && node.Repository().Len() == 4
	})

	// Sever the LMR's path, stop replication, and let the primary accept
	// writes nobody else will ever see: the divergent unreplicated tail.
	px.SetBlackhole(true)
	fol.Close()
	waitUntil(t, "replication stream torn down", func() bool { return !fol.Connected() })
	for _, i := range []int{100, 101} {
		if err := primary.RegisterDocument(hostDoc(i)); err != nil {
			t.Fatal(err)
		}
	}
	divergentTail := primary.LogSeq()
	if divergentTail <= rp.LogSeq() {
		t.Fatalf("setup: primary tail %d not past replica %d", divergentTail, rp.LogSeq())
	}

	// Kill the primary. Its divergent tail survives on disk in pDir.
	primaryUp = false
	if err := primary.Close(); err != nil {
		t.Fatal(err)
	}

	// Primary-less window: a write against the replica finds no proxy and
	// degrades to the typed retryable error; the bounded retry loop rides
	// it out across the promotion below.
	control, err := lmr.New("control", schema, rp)
	if err != nil {
		t.Fatal(err)
	}
	degraded := make(chan error, 1)
	go func() {
		_, err := control.AddSubscription(hostRule)
		degraded <- err
	}()
	waitUntil(t, "write degraded to no-primary retries", func() bool {
		return control.DegradedWrites() > 0
	})

	// Operator promotion: the replica becomes the primary of epoch 2 and
	// its history moves on with different writes.
	epoch, err := rp.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 {
		t.Fatalf("promoted epoch = %d, want 2", epoch)
	}
	if err := <-degraded; err != nil {
		t.Fatalf("degraded write did not land after promotion: %v", err)
	}
	for i := 4; i < 6; i++ {
		if err := rp.RegisterDocument(hostDoc(i)); err != nil {
			t.Fatal(err)
		}
	}

	// Resurrect the old primary from its own state directory. It recovers
	// believing it is the primary of epoch 1, divergent tail and all.
	op, err := provider.OpenDurable("primary", schema, pDir, provider.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer op.Close()
	// (Recovery reserves the delivered-watermark claim chunk, so LogSeq may
	// run past the real record tail — but never below it.)
	if op.Epoch() != 1 || op.Replica() || op.LogSeq() < divergentTail {
		t.Fatalf("resurrected state: epoch=%d replica=%t tail=%d, want 1/false/>=%d",
			op.Epoch(), op.Replica(), op.LogSeq(), divergentTail)
	}

	// Startup rejoin (what mdvd does before serving): probe the candidate
	// set; a primary of a higher term exists, so step down and follow it.
	winAddr, topo := replica.ProbeForPrimary([]string{primaryAddr, r1Addr}, replCliCfg)
	if winAddr != r1Addr || topo == nil || topo.Epoch != 2 {
		t.Fatalf("probe found %q epoch %+v, want %q at epoch 2", winAddr, topo, r1Addr)
	}
	if !op.ObserveEpoch(topo.Epoch, winAddr) {
		t.Fatal("higher-term proof did not demote the resurrected primary")
	}
	if !op.ResyncPending() {
		t.Fatal("demotion did not mark the divergent tail suspect")
	}
	opFol, err := replica.Start(op, replica.Options{
		Name:        "primary",
		Primary:     winAddr,
		Client:      replCliCfg,
		AckInterval: 10 * time.Millisecond,
		Backoff:     replBackoff(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer opFol.Close()
	opAddr, err := op.ServeConfig("127.0.0.1:0", replWireCfg)
	if err != nil {
		t.Fatal(err)
	}

	// The divergent tail repairs via a FORCED snapshot resync: the local
	// records past the snapshot are wiped, not merged.
	waitUntil(t, "old primary rejoined and converged", func() bool {
		return opFol.Connected() && !op.ResyncPending() && op.LogSeq() == rp.LogSeq()
	})
	if opFol.Bootstraps() != 1 {
		t.Errorf("bootstraps = %d, want 1 (forced resync of the suspect tail)", opFol.Bootstraps())
	}
	if op.Epoch() != 2 {
		t.Errorf("rejoined node epoch = %d, want 2", op.Epoch())
	}

	// The fence: a write stamped with the dead term is refused and counted
	// — the resurrected primary never acks a stale write.
	stale, err := client.DialMDPConfig(opAddr, replCliCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer stale.Close()
	stale.SetWriteEpoch(1)
	err = stale.RegisterDocument(hostDoc(200))
	if err == nil {
		t.Fatal("resurrected primary acknowledged a write stamped with its dead term")
	}
	if !provider.IsFenced(err) {
		t.Fatalf("stale write error %v not classified as an epoch fence", err)
	}
	if op.FencedWrites() == 0 {
		t.Error("mdv_fenced_writes_total source counter is zero after a fenced write")
	}

	// Post-repair replication is verbatim: new writes land byte-identical
	// in both retained logs, and the divergent records exist in neither.
	for i := 6; i < 8; i++ {
		if err := rp.RegisterDocument(hostDoc(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "rejoined follower converged on post-repair writes", func() bool {
		return op.LogSeq() == rp.LogSeq()
	})
	opLog := logRecords(t, op)
	if len(opLog) == 0 {
		t.Fatal("rejoined follower retains no log records to compare")
	}
	npLog := logRecords(t, rp)
	for seq, payload := range opLog {
		want, ok := npLog[seq]
		if !ok {
			t.Fatalf("follower retains seq %d the primary does not", seq)
		}
		if !bytes.Equal(payload, want) {
			t.Fatalf("changelogs diverge at seq %d", seq)
		}
	}
	for _, eng := range []*provider.Provider{rp, op} {
		for _, host := range []string{"node100", "node101"} {
			if rs, err := eng.Browse("CycleProvider", host); err == nil && len(rs) > 0 {
				t.Errorf("divergent write %s survived into %s's history", host, eng.Name())
			}
		}
	}

	// The LMR rode the failover by cursor resume alone: all surviving
	// writes present (4 original + 2 post-promotion + 2 post-repair), the
	// divergent ones absent, zero full-state resets.
	waitUntil(t, "LMR converged across the failover", func() bool {
		return node.Repository().Len() == 8
	})
	if got := node.Repository().Stats().Resets; got != 0 {
		t.Errorf("LMR used %d full-state resets, want cursor resume only", got)
	}
	rs, err := node.Query(`search CycleProvider c register c`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 8 {
		t.Errorf("query after failover returned %d resources, want 8", len(rs))
	}
}

// TestAutoPromoteDeadmanElectsMostCaughtUp: with the deadman armed, killing
// the primary makes exactly one follower promote itself — the most
// caught-up one, ties broken by lowest name — and the other re-points to
// the winner and keeps replicating at the new epoch.
func TestAutoPromoteDeadmanElectsMostCaughtUp(t *testing.T) {
	schema := chaosSchema(t)
	primary, err := provider.OpenDurable("primary", schema, t.TempDir(), provider.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	primaryUp := true
	defer func() {
		if primaryUp {
			primary.Close()
		}
	}()
	primaryAddr, err := primary.ServeConfig("127.0.0.1:0", replWireCfg)
	if err != nil {
		t.Fatal(err)
	}

	// Both followers must be servable before either's candidate list works,
	// so reserve their addresses by starting providers first.
	rp1, err := provider.OpenDurable("r1", schema, t.TempDir(), provider.DurableOptions{Replica: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rp1.Close()
	r1Addr, err := rp1.ServeConfig("127.0.0.1:0", replWireCfg)
	if err != nil {
		t.Fatal(err)
	}
	rp2, err := provider.OpenDurable("r2", schema, t.TempDir(), provider.DurableOptions{Replica: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rp2.Close()
	r2Addr, err := rp2.ServeConfig("127.0.0.1:0", replWireCfg)
	if err != nil {
		t.Fatal(err)
	}

	cands := []string{primaryAddr, r1Addr, r2Addr}
	deadman := 300 * time.Millisecond
	fol1, err := replica.Start(rp1, replica.Options{
		Name: "r1", Primaries: cands, AutoPromote: deadman,
		Client: replCliCfg, AckInterval: 10 * time.Millisecond, Backoff: replBackoff(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fol1.Close()
	fol2, err := replica.Start(rp2, replica.Options{
		Name: "r2", Primaries: cands, AutoPromote: deadman,
		Client: replCliCfg, AckInterval: 10 * time.Millisecond, Backoff: replBackoff(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fol2.Close()

	if _, _, err := primary.Subscribe("lmr", hostRule); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := primary.RegisterDocument(hostDoc(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "both followers converged", func() bool {
		return fol1.Connected() && fol2.Connected() &&
			rp1.LogSeq() == primary.LogSeq() && rp2.LogSeq() == primary.LogSeq()
	})

	// Kill the primary: no operator in sight, the deadman must fire.
	primaryUp = false
	if err := primary.Close(); err != nil {
		t.Fatal(err)
	}

	// Equal log tails, so the name tie-break elects r1 — and ONLY r1.
	waitUntil(t, "deadman promoted r1", func() bool { return fol1.Promoted() })
	if rp1.Replica() || rp1.Epoch() != 2 {
		t.Fatalf("winner state: replica=%t epoch=%d, want primary at epoch 2", rp1.Replica(), rp1.Epoch())
	}
	waitUntil(t, "r2 re-pointed to the new primary", func() bool {
		return fol2.Connected() && fol2.Primary() == r1Addr
	})
	if fol2.Promoted() || rp2.Promotions() != 0 {
		t.Fatal("both followers promoted: split brain")
	}

	// Replication continues at the new epoch.
	if err := rp1.RegisterDocument(hostDoc(3)); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "r2 converged on the new primary's writes", func() bool {
		return rp2.LogSeq() == rp1.LogSeq()
	})
	if rp2.Epoch() != 2 {
		t.Errorf("surviving follower epoch = %d, want 2", rp2.Epoch())
	}
	if fol2.Bootstraps() != 0 {
		t.Errorf("surviving follower bootstrapped %d times, want 0 (clean tail resume)", fol2.Bootstraps())
	}
}
