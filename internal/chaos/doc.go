// Package chaos holds MDV's end-to-end fault-injection test suite: a
// durable MDP and several LMRs wired through faultnet proxies, driven
// through partitions, stalls, and mid-stream resets. The suite asserts the
// delivery guarantees documented in DESIGN.md §7 — a blackholed subscriber
// never blocks publishing, stalled subscribers are disconnected within the
// heartbeat/queue bound, and every subscriber converges byte-identically
// with a fault-free reference after the network heals.
//
// All logic lives in the _test.go files; this file exists so the package
// participates in ordinary builds.
package chaos
