package chaos

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"mdv/internal/client"
	"mdv/internal/core"
	"mdv/internal/lmr"
	"mdv/internal/provider"
	"mdv/internal/rdf"
	"mdv/internal/wire"
	"mdv/internal/workload"
)

// fanoutDoc is workload document i with overridable port and memory — the
// memory value decides which PATH rule (if any) the document matches.
func fanoutDoc(gen workload.Generator, i, port, memory int) *rdf.Document {
	doc := gen.Document(i)
	host, _ := doc.Find(doc.QualifyID("host"))
	host.Set("serverPort", rdf.Lit(fmt.Sprint(port)))
	info, _ := doc.Find(doc.QualifyID("info"))
	info.Set("memory", rdf.Lit(fmt.Sprint(memory)))
	return doc
}

// repoDump renders an LMR's full cache state — every resource's canonical
// fingerprint plus its credit set — for byte-for-byte comparison.
func repoDump(t *testing.T, node *lmr.Node) string {
	t.Helper()
	var b strings.Builder
	for _, class := range []string{"CycleProvider", "ServerInformation"} {
		rs, err := node.Repository().Resources(class)
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(rs, func(i, j int) bool { return rs[i].URIRef < rs[j].URIRef })
		for _, r := range rs {
			credits, err := node.Repository().CreditsOf(r.URIRef)
			if err != nil {
				t.Fatal(err)
			}
			sort.Slice(credits, func(i, j int) bool { return credits[i] < credits[j] })
			fmt.Fprintf(&b, "%s credits=%v %s\n", r.URIRef, credits, r.Fingerprint())
		}
	}
	return b.String()
}

// runFanoutStack drives one MDP (with the given engine options) and four
// wire-attached LMRs — two with identical rules, one partially overlapping,
// one distinct — through upserts, updates, removals, and a delete, waits for
// convergence, and returns each node's state dump.
func runFanoutStack(t *testing.T, opts core.Options) map[string]string {
	t.Helper()
	schema := workload.Schema()
	gen := workload.Generator{Type: workload.PATH, RuleBase: 2}
	prov, err := provider.NewWithOptions("mdp", schema, opts)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := prov.ServeConfig("127.0.0.1:0", wire.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer prov.Close()

	cliCfg := client.Config{CallTimeout: 30 * time.Second}
	rules := map[string][]string{
		"lmr-a": {gen.Rule(0)},
		"lmr-b": {gen.Rule(0)},              // identical to lmr-a
		"lmr-c": {gen.Rule(0), gen.Rule(1)}, // overlaps lmr-a and lmr-d
		"lmr-d": {gen.Rule(1)},
	}
	nodes := map[string]*lmr.Node{}
	for _, name := range []string{"lmr-a", "lmr-b", "lmr-c", "lmr-d"} {
		cli, err := client.DialMDPConfig(addr, cliCfg)
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		node, err := lmr.New(name, schema, cli)
		if err != nil {
			t.Fatal(err)
		}
		for _, rule := range rules[name] {
			if _, err := node.AddSubscription(rule); err != nil {
				t.Fatal(err)
			}
		}
		nodes[name] = node
	}

	writer, err := client.DialMDPConfig(addr, cliCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()

	// Upserts: doc0 matches rule 0 ({lmr-a,lmr-b,lmr-c} coalesce), doc1
	// matches rule 1 ({lmr-c is already grouped apart}, lmr-d), docs 2-3
	// match nothing yet.
	register := func(docs ...*rdf.Document) {
		t.Helper()
		if err := writer.RegisterDocuments(docs); err != nil {
			t.Fatal(err)
		}
	}
	register(fanoutDoc(gen, 0, 80, 0), fanoutDoc(gen, 1, 80, 1),
		fanoutDoc(gen, 2, 80, 2), fanoutDoc(gen, 3, 80, 3))
	// Updates: same matches, changed content — republished to the groups.
	register(fanoutDoc(gen, 0, 81, 0), fanoutDoc(gen, 1, 81, 1))
	// doc2 joins rule 0, then leaves it: one coalesced upsert group and one
	// coalesced removal group over {lmr-a, lmr-b, lmr-c}.
	register(fanoutDoc(gen, 2, 81, 0))
	register(fanoutDoc(gen, 2, 82, 99))
	// doc3 joins rule 1 ({lmr-c, lmr-d}), then doc1 is deleted at the
	// source: forced deletes for the same pair.
	register(fanoutDoc(gen, 3, 81, 1))
	if err := writer.DeleteDocument("doc1.rdf"); err != nil {
		t.Fatal(err)
	}

	// Final state: doc0 for rule 0, doc3 for rule 1, docs 1-2 gone.
	want := map[string]map[string]bool{
		"lmr-a": {"doc0.rdf#host": true, "doc1.rdf#host": false, "doc2.rdf#host": false, "doc3.rdf#host": false},
		"lmr-b": {"doc0.rdf#host": true, "doc1.rdf#host": false, "doc2.rdf#host": false, "doc3.rdf#host": false},
		"lmr-c": {"doc0.rdf#host": true, "doc1.rdf#host": false, "doc2.rdf#host": false, "doc3.rdf#host": true},
		"lmr-d": {"doc0.rdf#host": false, "doc1.rdf#host": false, "doc2.rdf#host": false, "doc3.rdf#host": true},
	}
	for name, node := range nodes {
		node := node
		wantSet := want[name]
		waitUntil(t, name+" convergence", func() bool {
			for uri, present := range wantSet {
				if node.Repository().Has(uri) != present {
					return false
				}
			}
			return true
		})
	}

	dumps := map[string]string{}
	for name, node := range nodes {
		dumps[name] = repoDump(t, node)
	}
	for name, node := range nodes {
		if err := node.Close(); err != nil {
			t.Errorf("close %s: %v", name, err)
		}
	}
	return dumps
}

// TestCoalescedFanoutConvergence proves the tentpole's correctness claim
// end to end over real wire connections: interest-group coalesced delivery
// (shared changesets, MemberCredits filtering, encode-once frames) leaves
// every LMR byte-identical to the per-subscriber ablation path, across
// identical, partially-overlapping, and distinct rule sets, including
// removal and forced-delete rounds. Run under -race in CI.
func TestCoalescedFanoutConvergence(t *testing.T) {
	coalesced := runFanoutStack(t, core.Options{})
	ablation := runFanoutStack(t, core.Options{DisableInterestCoalescing: true})

	for _, name := range []string{"lmr-a", "lmr-b", "lmr-c", "lmr-d"} {
		if coalesced[name] != ablation[name] {
			t.Errorf("%s state diverged\ncoalesced:\n%s\nablation:\n%s",
				name, coalesced[name], ablation[name])
		}
	}
	// Members of one interest group converge to identical state (their
	// credit sets reference the same subscription IDs only if the engine
	// assigned them identically, so compare a and b structurally).
	if coalesced["lmr-a"] == "" {
		t.Error("lmr-a converged to an empty cache; expected doc0 resources")
	}
}
