package chaos

import (
	"regexp"
	"strings"
	"testing"

	"mdv/internal/client"
	"mdv/internal/lmr"
	"mdv/internal/metrics"
	"mdv/internal/provider"
)

// TestMetricsWireRoundTrip drives one publish across real wire connections
// with metrics enabled on both tiers and fetches the rendered registries
// through the protocol itself (the `metrics` request mdvctl uses): the
// provider text must carry the publish stage histograms, SQL counters, and
// the per-subscriber delivery samples labeled with the LMR's name; the LMR
// text must carry the propagation-lag histogram with the push observed.
func TestMetricsWireRoundTrip(t *testing.T) {
	schema := chaosSchema(t)
	prov, err := provider.New("mdp", schema)
	if err != nil {
		t.Fatal(err)
	}
	defer prov.Close()
	preg := metrics.NewRegistry()
	prov.EnableMetrics(preg)
	addr, err := prov.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	cli, err := client.DialMDP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	node, err := lmr.New("sub", schema, cli)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	// EnableMetrics on the node also arms the network client's push
	// observer — the cross-clock propagation-lag histogram.
	nreg := metrics.NewRegistry()
	node.EnableMetrics(nreg)
	if _, err := node.AddSubscription(hostRule); err != nil {
		t.Fatal(err)
	}
	nodeAddr, err := node.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lcli, err := client.DialLMR(nodeAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer lcli.Close()

	if err := prov.RegisterDocument(hostDoc(1)); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "push applied", func() bool {
		return node.Repository().Has("host1.rdf#cp")
	})

	text, err := cli.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{
		"mdv_publish_seconds", "mdv_publish_stage_seconds",
		"mdv_publish_batch_docs", "mdv_engine_stat",
		"mdv_sql_statements_total", "mdv_delivery_fanout_seconds",
		"mdv_subscriber_queue_depth",
	} {
		if !strings.Contains(text, "# TYPE "+fam) {
			t.Errorf("provider metrics text missing family %s", fam)
		}
	}
	if !strings.Contains(text, `mdv_publish_stage_seconds_count{stage="triggering"} 1`) {
		t.Error("provider text does not record the publish's triggering stage")
	}
	if !strings.Contains(text, `mdv_subscriber_enqueued_total{subscriber="sub"} 1`) {
		t.Error("provider text does not sample the subscriber's delivery counters")
	}

	ltext, err := lcli.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{
		"mdv_lmr_propagation_seconds", "mdv_lmr_applied_seq",
		"mdv_lmr_resumes_total", "mdv_lmr_reconnects_total",
	} {
		if !strings.Contains(ltext, "# TYPE "+fam) {
			t.Errorf("lmr metrics text missing family %s", fam)
		}
	}
	if !regexp.MustCompile(`mdv_lmr_propagation_seconds_count [1-9]`).MatchString(ltext) {
		t.Error("lmr text records no propagation-lag observation for the live push")
	}
}
