package chaos

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mdv/internal/client"
	"mdv/internal/lmr"
	"mdv/internal/provider"
	"mdv/internal/wire"
)

// TestConcurrentWireTraffic drives one MDP+LMR pair over real wire
// connections with parallel registrations, client queries on the LMR's
// read path, MDP-side browsing, and subscription churn — the wire-level
// variant of core's concurrency stress test, meant for -race runs. The
// final state must be exactly the registered documents, visible both in
// the cache and through a wire query.
func TestConcurrentWireTraffic(t *testing.T) {
	schema := chaosSchema(t)
	prov, err := provider.New("mdp", schema)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := prov.ServeConfig("127.0.0.1:0", wire.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer prov.Close()

	cliCfg := client.Config{CallTimeout: 30 * time.Second}
	sub, err := client.DialMDPConfig(addr, cliCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	node, err := lmr.New("lmr", schema, sub)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.AddSubscription(hostRule); err != nil {
		t.Fatal(err)
	}
	lmrAddr, err := node.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	const writers = 3
	const docsPerWriter = 15
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wcli, err := client.DialMDPConfig(addr, cliCfg)
			if err != nil {
				t.Errorf("dial writer: %v", err)
				return
			}
			defer wcli.Close()
			for i := 0; i < docsPerWriter; i++ {
				if err := wcli.RegisterDocument(hostDoc(w*docsPerWriter + i)); err != nil {
					t.Errorf("register: %v", err)
					return
				}
			}
		}(w)
	}

	stop := make(chan struct{})
	var rg sync.WaitGroup
	// Concurrent wire clients querying the LMR's read path.
	for r := 0; r < 4; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			qcli, err := client.DialLMRConfig(lmrAddr, cliCfg)
			if err != nil {
				t.Errorf("dial lmr: %v", err)
				return
			}
			defer qcli.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := qcli.Query(hostRule); err != nil {
					t.Errorf("query: %v", err)
					return
				}
			}
		}()
	}
	// Concurrent MDP-side reads (engine shared lock path over the wire).
	rg.Add(1)
	go func() {
		defer rg.Done()
		bcli, err := client.DialMDPConfig(addr, cliCfg)
		if err != nil {
			t.Errorf("dial browser: %v", err)
			return
		}
		defer bcli.Close()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := bcli.Browse("CycleProvider", "uni-passau"); err != nil {
				t.Errorf("browse: %v", err)
				return
			}
			if _, err := bcli.Stats(); err != nil {
				t.Errorf("stats: %v", err)
				return
			}
		}
	}()
	// Concurrent subscription churn from a second subscriber.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ccli, err := client.DialMDPConfig(addr, cliCfg)
		if err != nil {
			t.Errorf("dial churner: %v", err)
			return
		}
		defer ccli.Close()
		for i := 0; i < 8; i++ {
			id, _, err := ccli.Subscribe("churner", fmt.Sprintf(
				`search CycleProvider c register c where c.serverHost contains 'node%d'`, i))
			if err != nil {
				t.Errorf("subscribe: %v", err)
				return
			}
			if err := ccli.Unsubscribe(id); err != nil {
				t.Errorf("unsubscribe: %v", err)
				return
			}
		}
	}()

	wg.Wait()
	close(stop)
	rg.Wait()

	const want = writers * docsPerWriter
	waitUntil(t, "all registrations delivered to the LMR", func() bool {
		return node.Repository().Len() == want
	})
	qcli, err := client.DialLMRConfig(lmrAddr, cliCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer qcli.Close()
	rs, err := qcli.Query(hostRule)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != want {
		t.Fatalf("wire query sees %d resources, want %d", len(rs), want)
	}
}
