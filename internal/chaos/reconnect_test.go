package chaos

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"mdv/internal/backoff"
	"mdv/internal/client"
	"mdv/internal/faultnet"
	"mdv/internal/lmr"
	"mdv/internal/provider"
	"mdv/internal/wire"
)

// TestReconnectBackoffResetsAfterFlap: the reconnect supervisor's backoff
// must restart at its base interval after every successful resume. The
// link flaps twice: the first outage is held down long enough for the
// schedule to climb several doublings; the second outage heals instantly.
// Without the reset, the second reconnect would inherit the first outage's
// climbed delay and sit out seconds of a perfectly healthy link.
func TestReconnectBackoffResetsAfterFlap(t *testing.T) {
	schema := chaosSchema(t)
	prov, err := provider.OpenDurable("mdp", schema, t.TempDir(), provider.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer prov.Close()
	srvCfg := wire.Config{
		HeartbeatInterval: 50 * time.Millisecond,
		IdleTimeout:       300 * time.Millisecond,
		WriteTimeout:      300 * time.Millisecond,
		SendQueue:         16,
	}
	addr, err := prov.ServeConfig("127.0.0.1:0", srvCfg)
	if err != nil {
		t.Fatal(err)
	}
	px, err := faultnet.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	cliCfg := client.Config{
		Heartbeat:    50 * time.Millisecond,
		IdleTimeout:  300 * time.Millisecond,
		WriteTimeout: 300 * time.Millisecond,
		CallTimeout:  3 * time.Second,
	}
	node, cli := dialNode(t, schema, "flappy", px, cliCfg)

	// The backoff is owned by the supervisor goroutine (it may keep running
	// it if the fresh link flaps again immediately), so its attempt counter
	// is sampled inside Logf — same goroutine — and carried on the event.
	type supEvent struct {
		msg      string
		attempts int
	}
	b := &backoff.Backoff{Base: 50 * time.Millisecond, Max: 10 * time.Second}
	events := make(chan supEvent, 128)
	stop := make(chan struct{})
	supDone := make(chan struct{})
	go func() {
		defer close(supDone)
		// The supervisor owns cli and every connection it dials after it.
		node.Supervise(stop, cli, lmr.SuperviseConfig{
			Dial: func() (lmr.ReconnectableProvider, error) {
				return client.DialMDPConfig(px.Addr(), cliCfg)
			},
			Backoff:   b,
			Retryable: client.IsRetryable,
			Logf: func(format string, args ...interface{}) {
				select {
				case events <- supEvent{msg: fmt.Sprintf(format, args...), attempts: b.Attempts()}:
				default:
				}
			},
		})
	}()
	defer func() { close(stop); <-supDone }()

	// waitReconnected drains supervisor events until the "reconnected"
	// message (logged after b.Reset()) and returns the attempt counter as
	// the supervisor saw it at that moment.
	waitReconnected := func(outage string) int {
		t.Helper()
		deadline := time.After(15 * time.Second)
		for {
			select {
			case e := <-events:
				if strings.Contains(e.msg, "reconnected") {
					return e.attempts
				}
			case <-deadline:
				t.Fatalf("timed out waiting for reconnect after %s", outage)
			}
		}
	}

	// Outage 1: refuse redials and kill the live link, then hold the
	// outage long enough for the backoff to climb several doublings
	// (base 50ms: by 4s the un-jittered delay has reached seconds).
	px.SetRefuseNew(true)
	px.ResetAll()
	time.Sleep(4 * time.Second)
	px.SetRefuseNew(false)
	if got := waitReconnected("outage 1"); got != 0 {
		t.Fatalf("backoff attempts after successful reconnect = %d, want 0 (schedule must reset to its base)", got)
	}

	// Outage 2: an instant flap — the link dies but is immediately
	// dialable again. With the schedule back at base the redial fires
	// within ~one base interval; the first outage's climbed schedule
	// would wait multiple seconds before even trying.
	start := time.Now()
	px.ResetAll()
	waitReconnected("outage 2")
	if elapsed := time.Since(start); elapsed > 1500*time.Millisecond {
		t.Errorf("second reconnect took %v, want < 1.5s (first redial must restart at the base interval)", elapsed)
	}

	// The resumed stream works end to end after both flaps.
	if err := prov.RegisterDocument(hostDoc(1)); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "post-flap push", func() bool {
		return node.Repository().Has("host1.rdf#cp")
	})
}
