// Package faultnet is an in-process TCP fault-injection proxy for testing
// MDV's delivery layer under wide-area failure modes. A Proxy listens on
// an ephemeral port and forwards byte streams to a target address; tests
// point wire clients at the proxy and then inject:
//
//   - added latency per forwarded chunk (SetLatency),
//   - bandwidth throttling (SetBandwidth),
//   - packet blackholes, full or per-direction for half-open connections
//     (SetBlackhole / SetBlackholeDir) — data stalls silently and TCP
//     backpressure builds up, exactly like a dropped-packet partition,
//     and buffered bytes flow again when the hole heals,
//   - mid-stream connection resets (ResetAll sends RST via SO_LINGER 0),
//   - refusal of new connections (SetRefuseNew).
//
// All knobs are safe to flip concurrently while traffic flows.
package faultnet

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Direction selects one half of a proxied connection.
type Direction int

const (
	// Up is client→target traffic.
	Up Direction = iota
	// Down is target→client traffic.
	Down
)

// pollInterval is how often stalled pumps re-check the blackhole state.
// It bounds how quickly a heal becomes visible.
const pollInterval = 2 * time.Millisecond

// chunkSize is the forwarding buffer size. Small enough that bandwidth
// shaping and latency injection are smooth, large enough to be cheap.
const chunkSize = 16 << 10

// Proxy is one fault-injectable TCP forwarder.
type Proxy struct {
	ln     net.Listener
	target string

	latency    atomic.Int64 // nanos added per forwarded chunk
	bandwidth  atomic.Int64 // bytes/sec, 0 = unlimited
	blackUp    atomic.Bool
	blackDown  atomic.Bool
	refuse     atomic.Bool
	forwarded  [2]atomic.Int64 // bytes forwarded per direction
	closedFlag atomic.Bool

	mu    sync.Mutex
	links map[*link]struct{}
	wg    sync.WaitGroup
}

// link is one proxied connection pair.
type link struct {
	client, target net.Conn
	done           chan struct{}
	closeOnce      sync.Once
}

func (l *link) close(rst bool) {
	l.closeOnce.Do(func() {
		if rst {
			// SO_LINGER 0 turns Close into an RST: the peer sees a
			// mid-stream connection reset, not a clean FIN.
			if tc, ok := l.client.(*net.TCPConn); ok {
				tc.SetLinger(0)
			}
			if tc, ok := l.target.(*net.TCPConn); ok {
				tc.SetLinger(0)
			}
		}
		close(l.done)
		l.client.Close()
		l.target.Close()
	})
}

// Listen starts a proxy on 127.0.0.1:0 forwarding to target.
func Listen(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, target: target, links: map[*link]struct{}{}}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address (point clients here).
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Target returns the forwarding destination.
func (p *Proxy) Target() string { return p.target }

// SetLatency adds d of one-way delay to every forwarded chunk.
func (p *Proxy) SetLatency(d time.Duration) { p.latency.Store(int64(d)) }

// SetBandwidth throttles each direction to bytesPerSec (0 = unlimited).
func (p *Proxy) SetBandwidth(bytesPerSec int64) { p.bandwidth.Store(bytesPerSec) }

// SetBlackhole silently stalls both directions (on) or heals them (off).
// Connections stay open; the peers see pure silence, as in a network
// partition.
func (p *Proxy) SetBlackhole(on bool) {
	p.blackUp.Store(on)
	p.blackDown.Store(on)
}

// SetBlackholeDir stalls a single direction, emulating a half-open
// connection: one peer's traffic vanishes while the other's flows.
func (p *Proxy) SetBlackholeDir(dir Direction, on bool) {
	if dir == Up {
		p.blackUp.Store(on)
	} else {
		p.blackDown.Store(on)
	}
}

// SetRefuseNew makes the proxy close newly accepted connections
// immediately (existing links are unaffected), emulating a crashed or
// unreachable listener.
func (p *Proxy) SetRefuseNew(on bool) { p.refuse.Store(on) }

// ResetAll kills every live link mid-stream with a TCP RST.
func (p *Proxy) ResetAll() {
	p.mu.Lock()
	links := make([]*link, 0, len(p.links))
	for l := range p.links {
		links = append(links, l)
	}
	p.mu.Unlock()
	for _, l := range links {
		l.close(true)
	}
}

// ActiveLinks returns the number of live proxied connections.
func (p *Proxy) ActiveLinks() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.links)
}

// Forwarded returns the bytes forwarded so far in the given direction.
func (p *Proxy) Forwarded(dir Direction) int64 { return p.forwarded[dir].Load() }

// Close stops the proxy and closes all links. It returns after every pump
// goroutine has exited.
func (p *Proxy) Close() error {
	p.closedFlag.Store(true)
	err := p.ln.Close()
	p.mu.Lock()
	links := make([]*link, 0, len(p.links))
	for l := range p.links {
		links = append(links, l)
	}
	p.mu.Unlock()
	for _, l := range links {
		l.close(false)
	}
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		cc, err := p.ln.Accept()
		if err != nil {
			return
		}
		if p.refuse.Load() {
			cc.Close()
			continue
		}
		tc, err := net.Dial("tcp", p.target)
		if err != nil {
			cc.Close()
			continue
		}
		l := &link{client: cc, target: tc, done: make(chan struct{})}
		p.mu.Lock()
		if p.closedFlag.Load() {
			p.mu.Unlock()
			l.close(false)
			continue
		}
		p.links[l] = struct{}{}
		p.wg.Add(2)
		go p.pump(l, cc, tc, Up)
		go p.pump(l, tc, cc, Down)
		p.mu.Unlock()
	}
}

func (p *Proxy) blackholed(dir Direction) bool {
	if dir == Up {
		return p.blackUp.Load()
	}
	return p.blackDown.Load()
}

// pump forwards one direction of a link, applying the injected faults. A
// blackhole stalls the pump (holding any chunk already read), so the
// source's TCP send buffer fills and its writes block — the peer observes
// exactly what a packet blackhole produces. When the hole heals, the held
// chunk and the backed-up bytes flow again, like TCP retransmission after
// a partition.
func (p *Proxy) pump(l *link, src, dst net.Conn, dir Direction) {
	defer p.wg.Done()
	defer func() {
		l.close(false)
		p.mu.Lock()
		delete(p.links, l)
		p.mu.Unlock()
	}()
	buf := make([]byte, chunkSize)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if !p.stallWhileBlackholed(l, dir) {
				return
			}
			if lat := time.Duration(p.latency.Load()); lat > 0 {
				if !sleepOrDone(l, lat) {
					return
				}
			}
			// Pace before delivering so the shaped rate bounds when bytes
			// arrive, not just the long-run average.
			if bw := p.bandwidth.Load(); bw > 0 {
				d := time.Duration(int64(n) * int64(time.Second) / bw)
				if !sleepOrDone(l, d) {
					return
				}
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
			p.forwarded[dir].Add(int64(n))
		}
		if err != nil {
			return
		}
	}
}

// stallWhileBlackholed blocks while the direction is blackholed; false
// means the link died while stalled.
func (p *Proxy) stallWhileBlackholed(l *link, dir Direction) bool {
	for p.blackholed(dir) {
		if !sleepOrDone(l, pollInterval) {
			return false
		}
	}
	select {
	case <-l.done:
		return false
	default:
		return true
	}
}

func sleepOrDone(l *link, d time.Duration) bool {
	select {
	case <-l.done:
		return false
	case <-time.After(d):
		return true
	}
}
