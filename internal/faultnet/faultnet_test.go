package faultnet

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections and echoes everything back until closed.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				io.Copy(c, c)
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

func dialProxy(t *testing.T, p *Proxy) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("dial proxy: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// echoOnce writes msg and reads back len(msg) bytes, returning the round
// trip duration.
func echoOnce(t *testing.T, c net.Conn, msg []byte) time.Duration {
	t.Helper()
	start := time.Now()
	if _, err := c.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo mismatch: got %q want %q", got, msg)
	}
	return time.Since(start)
}

func TestProxyForwards(t *testing.T) {
	ln := echoServer(t)
	p, err := Listen(ln.Addr().String())
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer p.Close()

	c := dialProxy(t, p)
	echoOnce(t, c, []byte("hello through the proxy"))
	if got := p.ActiveLinks(); got != 1 {
		t.Fatalf("ActiveLinks = %d, want 1", got)
	}
	if up, down := p.Forwarded(Up), p.Forwarded(Down); up == 0 || down == 0 {
		t.Fatalf("Forwarded = up %d down %d, want both > 0", up, down)
	}
}

func TestLatencyInjection(t *testing.T) {
	ln := echoServer(t)
	p, err := Listen(ln.Addr().String())
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer p.Close()

	c := dialProxy(t, p)
	msg := []byte("ping")
	base := echoOnce(t, c, msg)

	const lat = 50 * time.Millisecond
	p.SetLatency(lat)
	// Round trip crosses the proxy twice, so it must carry >= 2x latency.
	rtt := echoOnce(t, c, msg)
	if rtt < 2*lat {
		t.Fatalf("rtt with %v injected latency = %v (base %v), want >= %v", lat, rtt, base, 2*lat)
	}
	p.SetLatency(0)
	if rtt := echoOnce(t, c, msg); rtt > lat {
		t.Fatalf("rtt after clearing latency = %v, want < %v", rtt, lat)
	}
}

func TestBandwidthThrottle(t *testing.T) {
	ln := echoServer(t)
	p, err := Listen(ln.Addr().String())
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer p.Close()

	// 64 KiB at 256 KiB/s should take ~250ms each way.
	p.SetBandwidth(256 << 10)
	c := dialProxy(t, p)
	msg := bytes.Repeat([]byte("x"), 64<<10)
	if d := echoOnce(t, c, msg); d < 250*time.Millisecond {
		t.Fatalf("64KiB echo at 256KiB/s took %v, want >= 250ms", d)
	}
}

func TestBlackholeStallsAndHeals(t *testing.T) {
	ln := echoServer(t)
	p, err := Listen(ln.Addr().String())
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer p.Close()

	c := dialProxy(t, p)
	echoOnce(t, c, []byte("warm"))

	p.SetBlackhole(true)
	if _, err := c.Write([]byte("lost in the void")); err != nil {
		t.Fatalf("write into blackhole: %v", err)
	}
	// Nothing must come back while the hole is open.
	c.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 64)
	if n, err := c.Read(buf); err == nil {
		t.Fatalf("read during blackhole returned %d bytes, want timeout", n)
	}
	c.SetReadDeadline(time.Time{})

	// Heal: the held bytes flow and the echo completes.
	p.SetBlackhole(false)
	done := make(chan struct{})
	go func() {
		defer close(done)
		got := make([]byte, len("lost in the void"))
		if _, err := io.ReadFull(c, got); err != nil {
			t.Errorf("read after heal: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("echo did not complete after blackhole healed")
	}
}

func TestHalfOpenDirectionalBlackhole(t *testing.T) {
	ln := echoServer(t)
	p, err := Listen(ln.Addr().String())
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer p.Close()

	c := dialProxy(t, p)
	echoOnce(t, c, []byte("warm"))

	// Down blackholed: requests reach the server but replies vanish.
	p.SetBlackholeDir(Down, true)
	if _, err := c.Write([]byte("half-open")); err != nil {
		t.Fatalf("write: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for p.Forwarded(Up) == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if p.Forwarded(Up) == 0 {
		t.Fatal("upstream did not forward during down-only blackhole")
	}
	c.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 64)
	if n, err := c.Read(buf); err == nil {
		t.Fatalf("read during down blackhole returned %d bytes, want timeout", n)
	}
	c.SetReadDeadline(time.Time{})

	p.SetBlackholeDir(Down, false)
	got := make([]byte, len("half-open"))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatalf("read after heal: %v", err)
	}
}

func TestResetAllKillsMidStream(t *testing.T) {
	ln := echoServer(t)
	p, err := Listen(ln.Addr().String())
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer p.Close()

	c := dialProxy(t, p)
	echoOnce(t, c, []byte("alive"))

	p.ResetAll()
	// The connection must error promptly, not hang.
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 64)
	if _, err := c.Read(buf); err == nil {
		t.Fatal("read after ResetAll succeeded, want connection error")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("read after ResetAll timed out, want prompt connection error")
	}
	deadline := time.Now().Add(2 * time.Second)
	for p.ActiveLinks() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := p.ActiveLinks(); got != 0 {
		t.Fatalf("ActiveLinks after ResetAll = %d, want 0", got)
	}
}

func TestRefuseNew(t *testing.T) {
	ln := echoServer(t)
	p, err := Listen(ln.Addr().String())
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer p.Close()

	p.SetRefuseNew(true)
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		// Accept backlog raced the refuse flag; either outcome is a
		// failed connection, which is what we want.
		return
	}
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 8)
	if _, err := c.Read(buf); err == nil {
		t.Fatal("connection refused-new proxy stayed open")
	}

	p.SetRefuseNew(false)
	c2 := dialProxy(t, p)
	echoOnce(t, c2, []byte("back"))
}

func TestProxyCloseJoinsPumps(t *testing.T) {
	ln := echoServer(t)
	p, err := Listen(ln.Addr().String())
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	for i := 0; i < 4; i++ {
		c := dialProxy(t, p)
		echoOnce(t, c, []byte("conn"))
	}
	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := p.ActiveLinks(); got != 0 {
		t.Fatalf("ActiveLinks after Close = %d, want 0", got)
	}
	if _, err := net.Dial("tcp", p.Addr()); err == nil {
		t.Fatal("dial after Close succeeded")
	}
}
