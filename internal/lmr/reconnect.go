package lmr

import (
	"time"

	"mdv/internal/backoff"
)

// ReconnectableProvider is the provider handle the reconnect supervisor
// manages: a ProviderAPI whose connection signals its own death and can be
// closed. The network client (client.MDP) implements it.
type ReconnectableProvider interface {
	ProviderAPI
	// Done is closed when the connection dies (read failure, heartbeat
	// timeout, or Close).
	Done() <-chan struct{}
	Close() error
}

// SuperviseConfig configures a node's reconnect supervisor.
type SuperviseConfig struct {
	// Dial opens a fresh provider connection for each reconnect attempt.
	Dial func() (ReconnectableProvider, error)
	// Backoff paces redial attempts (nil: a default jittered 1s→30s
	// schedule). The supervisor resets it after every successful
	// reconnect, so each outage starts over at the base interval instead
	// of inheriting the previous outage's climbed ceiling.
	Backoff *backoff.Backoff
	// Retryable classifies resume errors for logging only — the
	// supervisor never gives up either way, but a non-retryable error (an
	// application-level rejection) will not fix itself by redialing
	// faster, so it is worth calling out. Nil treats all errors alike.
	Retryable func(error) bool
	// Logf receives progress messages (nil discards them).
	Logf func(format string, args ...interface{})
}

// Supervise runs the reconnect loop cmd/lmr uses: wait for the current
// provider connection to die, then redial with jittered backoff,
// re-attach, and resume the changeset stream from the last applied
// sequence. A durable MDP replays the missed changesets; a restarted
// non-durable one falls back to a full-state reset.
//
// Supervise owns cur and every connection it dials after it: the
// superseded connection is closed after each successful swap, and the
// current one is closed on the way out. It returns when stop is closed.
func (n *Node) Supervise(stop <-chan struct{}, cur ReconnectableProvider, cfg SuperviseConfig) {
	b := cfg.Backoff
	if b == nil {
		b = &backoff.Backoff{} // jittered exponential: decorrelates a herd of redialing LMRs
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	for {
		select {
		case <-stop:
			cur.Close()
			return
		case <-cur.Done():
		}
		logf("lmr: provider connection lost, reconnecting")
		for {
			select {
			case <-stop:
				cur.Close()
				return
			case <-time.After(b.Next()):
			}
			next, err := cfg.Dial()
			if err != nil {
				logf("lmr: redial: %v (attempt %d)", err, b.Attempts())
				continue
			}
			if err := n.Reconnect(next); err != nil {
				next.Close()
				if cfg.Retryable != nil && !cfg.Retryable(err) {
					// An application-level rejection will not fix itself
					// by redialing faster; keep trying, but say why.
					logf("lmr: resume rejected by provider (will keep retrying): %v", err)
				} else {
					logf("lmr: resume after reconnect: %v", err)
				}
				continue
			}
			cur.Close() // release the dead connection
			cur = next
			// The outage is over: restart the schedule at its base so the
			// next flap reconnects within one base interval instead of
			// waiting out this outage's climbed delay.
			b.Reset()
			logf("lmr: reconnected (current to seq %d)", n.repo.LastSeq())
			break
		}
	}
}
