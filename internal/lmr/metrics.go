package lmr

import (
	"mdv/internal/metrics"
)

// PushMetricsProvider is the optional capability of a provider handle:
// observing pushed changesets as they arrive (the end-to-end
// propagation-lag histogram, stamped from the publish-time wall clock
// carried on the push). client.MDP implements it; the in-process provider
// delivers without a wire hop and does not.
type PushMetricsProvider interface {
	EnablePushMetrics(reg *metrics.Registry)
}

// EnableMetrics attaches the node's observability instruments to reg: the
// resume/reconnect counters, the applied/acked sequence gauges, the ack
// worker's backlog, and — when the provider connection supports it — the
// propagation-lag histogram. Reconnect re-enables push metrics on the
// replacement connection automatically.
func (n *Node) EnableMetrics(reg *metrics.Registry) {
	n.reg.Store(reg)
	one := func(v func() float64) func() []metrics.Sample {
		return func() []metrics.Sample { return []metrics.Sample{{Value: v()}} }
	}
	reg.SampleFunc("mdv_lmr_resumes_total",
		"changeset-stream resumes completed at the provider", metrics.TypeCounter,
		one(func() float64 { return float64(n.resumes.Load()) }))
	reg.SampleFunc("mdv_lmr_reconnects_total",
		"provider connections replaced after a failure", metrics.TypeCounter,
		one(func() float64 { return float64(n.reconnects.Load()) }))
	reg.SampleFunc("mdv_lmr_degraded_writes_total",
		"write attempts retried because the cluster had no primary", metrics.TypeCounter,
		one(func() float64 { return float64(n.degradedWrites.Load()) }))
	reg.GaugeFunc("mdv_lmr_applied_seq",
		"highest changelog sequence applied to the cache",
		func() float64 { return float64(n.repo.LastSeq()) })
	reg.GaugeFunc("mdv_lmr_acked_seq",
		"highest sequence acknowledged to the provider",
		func() float64 { return float64(n.AckedSeq()) })
	reg.GaugeFunc("mdv_lmr_ack_lag",
		"applied-but-unacknowledged pushes (ack worker backlog)",
		func() float64 {
			n.mu.RLock()
			defer n.mu.RUnlock()
			if n.ackSeq > n.ackSent {
				return float64(n.ackSeq - n.ackSent)
			}
			return 0
		})
	n.mu.RLock()
	prov := n.prov
	n.mu.RUnlock()
	if pm, ok := prov.(PushMetricsProvider); ok {
		pm.EnablePushMetrics(reg)
	}
}

// Metrics returns the registry attached via EnableMetrics (nil before).
func (n *Node) Metrics() *metrics.Registry { return n.reg.Load() }
