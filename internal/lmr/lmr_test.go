package lmr_test

import (
	"fmt"
	"testing"
	"time"

	"mdv/internal/client"
	"mdv/internal/lmr"
	"mdv/internal/provider"
	"mdv/internal/rdf"
)

func testSchema() *rdf.Schema {
	s := rdf.NewSchema()
	s.MustAddProperty("CycleProvider", rdf.PropertyDef{Name: "serverHost", Type: rdf.TypeString})
	s.MustAddProperty("CycleProvider", rdf.PropertyDef{Name: "serverPort", Type: rdf.TypeInteger})
	s.MustAddProperty("CycleProvider", rdf.PropertyDef{
		Name: "serverInformation", Type: rdf.TypeResource, RefClass: "ServerInformation", RefKind: rdf.StrongRef})
	s.MustAddProperty("ServerInformation", rdf.PropertyDef{Name: "memory", Type: rdf.TypeInteger})
	s.MustAddProperty("ServerInformation", rdf.PropertyDef{Name: "cpu", Type: rdf.TypeInteger})
	return s
}

func providerDoc(i, memory int) *rdf.Document {
	doc := rdf.NewDocument(fmt.Sprintf("doc%d.rdf", i))
	host := doc.NewResource("host", "CycleProvider")
	host.Add("serverHost", rdf.Lit(fmt.Sprintf("host%02d.uni-passau.de", i)))
	host.Add("serverPort", rdf.Lit(fmt.Sprint(5000+i)))
	host.Add("serverInformation", rdf.Ref(doc.QualifyID("info")))
	info := doc.NewResource("info", "ServerInformation")
	info.Add("memory", rdf.Lit(fmt.Sprint(memory)))
	info.Add("cpu", rdf.Lit("600"))
	return doc
}

// TestInProcessThreeTier exercises the full architecture of Figure 2 in a
// single process: MDP backbone node, LMR cache, client queries.
func TestInProcessThreeTier(t *testing.T) {
	schema := testSchema()
	mdp, err := provider.New("mdp1", schema)
	if err != nil {
		t.Fatal(err)
	}
	node, err := lmr.New("lmr1", schema, mdp)
	if err != nil {
		t.Fatal(err)
	}

	// Pre-existing metadata.
	if err := mdp.RegisterDocument(providerDoc(1, 128)); err != nil {
		t.Fatal(err)
	}
	// Subscribe: initial fill arrives via the attached channel.
	subID, err := node.AddSubscription(
		`search CycleProvider c register c where c.serverInformation.memory > 64`)
	if err != nil {
		t.Fatal(err)
	}
	if !node.Repository().Has("doc1.rdf#host") {
		t.Fatal("initial fill missing")
	}
	if !node.Repository().Has("doc1.rdf#info") {
		t.Fatal("initial fill missing strong closure")
	}

	// Live publication: new matching and non-matching documents.
	if err := mdp.RegisterDocument(providerDoc(2, 256)); err != nil {
		t.Fatal(err)
	}
	if err := mdp.RegisterDocument(providerDoc(3, 16)); err != nil {
		t.Fatal(err)
	}
	if !node.Repository().Has("doc2.rdf#host") {
		t.Error("matching document not published")
	}
	if node.Repository().Has("doc3.rdf#host") {
		t.Error("non-matching document published")
	}

	// Local queries over the cache.
	rs, err := node.Query(`search CycleProvider c register c where c.serverInformation.memory >= 128`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Errorf("query found %d resources, want 2", len(rs))
	}

	// Update at the MDP propagates.
	doc := providerDoc(1, 32) // drops below the threshold
	if err := mdp.RegisterDocument(doc); err != nil {
		t.Fatal(err)
	}
	if node.Repository().Has("doc1.rdf#host") {
		t.Error("stale resource survived update")
	}

	// Unsubscribe clears the cache.
	if err := node.RemoveSubscription(subID); err != nil {
		t.Fatal(err)
	}
	if node.Repository().Len() != 0 {
		t.Errorf("cache holds %d resources after unsubscribe", node.Repository().Len())
	}
	if _, err := node.Query(`search CycleProvider c register c`); err != nil {
		t.Fatal(err)
	}
	if err := node.RemoveSubscription(subID); err == nil {
		t.Error("double unsubscribe accepted")
	}
}

// TestLocalMetadataInQueries: LMR-private metadata participates in local
// query evaluation but never reaches the MDP.
func TestLocalMetadataInQueries(t *testing.T) {
	schema := testSchema()
	mdp, err := provider.New("mdp1", schema)
	if err != nil {
		t.Fatal(err)
	}
	node, err := lmr.New("lmr1", schema, mdp)
	if err != nil {
		t.Fatal(err)
	}
	local := rdf.NewDocument("private.rdf")
	r := local.NewResource("secret", "CycleProvider")
	r.Add("serverHost", rdf.Lit("internal.corp"))
	r.Add("serverPort", rdf.Lit("22"))
	if err := node.RegisterLocalDocument(local); err != nil {
		t.Fatal(err)
	}
	rs, err := node.Query(`search CycleProvider c register c where c.serverHost contains 'corp'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 {
		t.Errorf("local metadata not queryable: %d results", len(rs))
	}
	// The MDP knows nothing about it.
	global, err := mdp.Browse("CycleProvider", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(global) != 0 {
		t.Error("local metadata leaked to the backbone")
	}
}

// TestBackboneReplication: two MDPs replicate registrations; an LMR
// subscribed at the second sees documents registered at the first (§2.2:
// MDPs "consistently replicating metadata among each other").
func TestBackboneReplication(t *testing.T) {
	schema := testSchema()
	mdp1, err := provider.New("mdp1", schema)
	if err != nil {
		t.Fatal(err)
	}
	mdp2, err := provider.New("mdp2", schema)
	if err != nil {
		t.Fatal(err)
	}
	mdp1.AddPeer(mdp2)
	mdp2.AddPeer(mdp1)

	node, err := lmr.New("lmr1", schema, mdp2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.AddSubscription(
		`search CycleProvider c register c where c.serverPort >= 5000`); err != nil {
		t.Fatal(err)
	}

	// Register at mdp1; the LMR at mdp2 receives it via replication.
	if err := mdp1.RegisterDocument(providerDoc(1, 128)); err != nil {
		t.Fatal(err)
	}
	if !node.Repository().Has("doc1.rdf#host") {
		t.Fatal("replicated registration did not reach the second MDP's subscriber")
	}
	// Both backbone nodes store the document.
	if _, err := mdp1.GetDocument("doc1.rdf"); err != nil {
		t.Error("document missing at origin")
	}
	if _, err := mdp2.GetDocument("doc1.rdf"); err != nil {
		t.Error("document missing at replica")
	}

	// Deletion replicates too.
	if err := mdp1.DeleteDocument("doc1.rdf"); err != nil {
		t.Fatal(err)
	}
	if node.Repository().Has("doc1.rdf#host") {
		t.Error("replicated deletion did not propagate")
	}
}

// TestWireEndToEnd runs the full architecture over real TCP sockets: MDP
// server, LMR node connected via the network client, and an application
// client querying the LMR server.
func TestWireEndToEnd(t *testing.T) {
	schema := testSchema()
	mdp, err := provider.New("mdp1", schema)
	if err != nil {
		t.Fatal(err)
	}
	mdpAddr, err := mdp.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mdp.Close()

	// LMR connects to the MDP over the wire.
	mdpClient, err := client.DialMDP(mdpAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer mdpClient.Close()
	node, err := lmr.New("lmr1", schema, mdpClient)
	if err != nil {
		t.Fatal(err)
	}
	lmrAddr, err := node.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	// An administrator registers documents at the MDP over the wire.
	admin, err := client.DialMDP(mdpAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	if err := admin.RegisterDocument(providerDoc(1, 128)); err != nil {
		t.Fatal(err)
	}

	// An application talks to the LMR over the wire.
	app, err := client.DialLMR(lmrAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	subID, err := app.AddSubscription(
		`search CycleProvider c register c where c.serverInformation.memory > 64`)
	if err != nil {
		t.Fatal(err)
	}
	if subID == 0 {
		t.Error("subscription id missing")
	}

	rs, err := app.Query(`search CycleProvider c register c where c.serverHost contains 'uni-passau'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].URIRef != "doc1.rdf#host" {
		t.Fatalf("wire query = %v", rs)
	}

	// A registration at the MDP is pushed to the LMR asynchronously.
	if err := admin.RegisterDocument(providerDoc(2, 256)); err != nil {
		t.Fatal(err)
	}
	if !eventually(func() bool { return node.Repository().Has("doc2.rdf#host") }) {
		t.Fatal("push notification did not arrive")
	}

	// Browse at the MDP over the wire.
	browsed, err := admin.Browse("CycleProvider", "host02")
	if err != nil {
		t.Fatal(err)
	}
	if len(browsed) != 1 {
		t.Errorf("browse = %v", browsed)
	}

	// Fetch a document back.
	doc, err := admin.GetDocument("doc1.rdf")
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Resources) != 2 {
		t.Errorf("fetched document has %d resources", len(doc.Resources))
	}

	// Engine stats over the wire.
	st, err := admin.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.DocumentsRegistered != 2 {
		t.Errorf("stats: DocumentsRegistered = %d", st.DocumentsRegistered)
	}

	// Deletion propagates over the wire.
	if err := admin.DeleteDocument("doc2.rdf"); err != nil {
		t.Fatal(err)
	}
	if !eventually(func() bool { return !node.Repository().Has("doc2.rdf#host") }) {
		t.Fatal("deletion push did not arrive")
	}

	// Remove subscription through the application client.
	if err := app.RemoveSubscription(subID); err != nil {
		t.Fatal(err)
	}
	if !eventually(func() bool { return node.Repository().Len() == 0 }) {
		t.Errorf("cache not empty after unsubscribe: %d", node.Repository().Len())
	}

	// Unknown request kinds produce errors, not hangs.
	if _, err := app.Query(`this is not a query`); err == nil {
		t.Error("malformed query accepted over the wire")
	}

	// Local metadata over the wire.
	local := rdf.NewDocument("private.rdf")
	r := local.NewResource("x", "ServerInformation")
	r.Add("memory", rdf.Lit("1"))
	if err := app.RegisterLocalDocument(local); err != nil {
		t.Fatal(err)
	}
	cached, err := app.Resources("ServerInformation")
	if err != nil {
		t.Fatal(err)
	}
	if len(cached) != 1 {
		t.Errorf("local registration over wire: %v", cached)
	}
}

// TestWireReplicationAcrossSockets: backbone replication across TCP.
func TestWireReplicationAcrossSockets(t *testing.T) {
	schema := testSchema()
	mdp1, err := provider.New("mdp1", schema)
	if err != nil {
		t.Fatal(err)
	}
	mdp2, err := provider.New("mdp2", schema)
	if err != nil {
		t.Fatal(err)
	}
	addr2, err := mdp2.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mdp2.Close()
	peer, err := client.DialMDP(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	mdp1.AddPeer(peer)

	if err := mdp1.RegisterDocument(providerDoc(7, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := mdp2.GetDocument("doc7.rdf"); err != nil {
		t.Fatal("document not replicated over the wire")
	}
	if err := mdp1.DeleteDocument("doc7.rdf"); err != nil {
		t.Fatal(err)
	}
	if _, err := mdp2.GetDocument("doc7.rdf"); err == nil {
		t.Error("deletion not replicated over the wire")
	}
}

func eventually(cond func() bool) bool {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return cond()
}
