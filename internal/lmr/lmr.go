// Package lmr implements the Local Metadata Repository node: the middle
// tier of MDV (paper §2.2). A node owns a cache repository, maintains its
// subscriptions at an MDP, receives published changesets, and serves the
// MDV query language to local clients.
package lmr

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mdv/internal/backoff"
	"mdv/internal/core"
	"mdv/internal/metrics"
	"mdv/internal/provider"
	"mdv/internal/query"
	"mdv/internal/rdf"
	"mdv/internal/repository"
	"mdv/internal/wire"
)

// ProviderAPI is what an LMR needs from its MDP. The in-process
// provider.Provider and the network client.MDP both implement it.
type ProviderAPI interface {
	Subscribe(subscriber, rule string) (int64, *core.Changeset, error)
	Unsubscribe(subID int64) error
	Attach(subscriber string, apply func(seq uint64, reset bool, cs *core.Changeset) error) error
}

// ResumableProvider is the optional capability of durable MDPs: resuming
// the changeset stream from an acknowledged sequence and acknowledging
// applied pushes. Both provider.Provider and client.MDP implement it; the
// node uses it when available.
type ResumableProvider interface {
	Resume(subscriber string, fromSeq uint64) (uint64, error)
	Ack(subscriber string, seq uint64) error
}

// Node is one LMR.
type Node struct {
	name string
	repo *repository.Repository
	eval *query.Evaluator
	prov ProviderAPI

	// mu guards the node's own bookkeeping (subscriptions, ack cursor,
	// provider handle). Reads take it shared; it is never held across
	// provider calls or query evaluation.
	mu       sync.RWMutex
	subs     map[int64]string // subID -> rule text
	attached bool
	// ackSeq is the highest applied sequence queued for acknowledgment;
	// ackBusy marks the single ack worker as running. Acks are sent
	// asynchronously because a network push is dispatched on the client's
	// read loop: a synchronous Ack call there could never read its own
	// response. Coalescing to the latest sequence is safe — acks only
	// advance the provider's truncation watermark.
	ackSeq  uint64
	ackSent uint64
	ackBusy bool

	server *wire.Server

	// resumes/reconnects count stream recoveries; degradedWrites counts
	// write attempts that hit a primary-less cluster (mid-failover) and
	// were retried; reg is the metrics registry attached via EnableMetrics
	// (nil until then).
	resumes        atomic.Uint64
	reconnects     atomic.Uint64
	degradedWrites atomic.Uint64
	reg            atomic.Pointer[metrics.Registry]
}

// New creates an LMR node connected to the given provider.
func New(name string, schema *rdf.Schema, prov ProviderAPI) (*Node, error) {
	repo, err := repository.New(name, schema)
	if err != nil {
		return nil, err
	}
	return &Node{
		name: name,
		repo: repo,
		eval: query.NewEvaluator(repo.DB(), schema),
		prov: prov,
		subs: map[int64]string{},
	}, nil
}

// Name returns the node's subscriber identity.
func (n *Node) Name() string { return n.name }

// Repository exposes the underlying cache (tests, tooling).
func (n *Node) Repository() *repository.Repository { return n.repo }

// ensureAttached registers the push channel at the MDP once, before the
// first subscription, so no published changeset is missed.
func (n *Node) ensureAttached() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.attached {
		return nil
	}
	if err := n.prov.Attach(n.name, n.applyPush); err != nil {
		return err
	}
	n.attached = true
	return nil
}

// applyPush applies one pushed changeset and schedules an acknowledgment
// of its sequence to a durable provider (advancing its truncation
// watermark). Ack failures never fail the application: the push is already
// applied, and the ack is advisory.
func (n *Node) applyPush(seq uint64, reset bool, cs *core.Changeset) error {
	if err := n.repo.ApplyPush(seq, reset, cs); err != nil {
		return err
	}
	if seq != 0 {
		n.scheduleAck(seq)
	}
	return nil
}

// scheduleAck queues seq for acknowledgment and ensures one worker is
// draining the queue.
func (n *Node) scheduleAck(seq uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if seq <= n.ackSeq {
		return
	}
	n.ackSeq = seq
	if n.ackBusy {
		return
	}
	n.ackBusy = true
	go n.ackLoop()
}

// ackLoop sends the newest queued ack until nothing newer is queued.
func (n *Node) ackLoop() {
	for {
		n.mu.Lock()
		seq := n.ackSeq
		if seq <= n.ackSent {
			n.ackBusy = false
			n.mu.Unlock()
			return
		}
		prov := n.prov
		n.mu.Unlock()
		if res, ok := prov.(ResumableProvider); ok {
			res.Ack(n.name, seq)
		}
		n.mu.Lock()
		n.ackSent = seq
		n.mu.Unlock()
	}
}

// AckedSeq returns the highest sequence acknowledged to the provider.
func (n *Node) AckedSeq() uint64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.ackSent
}

// Resume asks a durable provider to replay every changeset published for
// this node past the repository's cursor. Non-resumable providers make it
// a no-op. Returns the sequence the node is current to afterwards.
func (n *Node) Resume() (uint64, error) {
	if err := n.ensureAttached(); err != nil {
		return 0, err
	}
	n.mu.Lock()
	prov := n.prov
	n.mu.Unlock()
	res, ok := prov.(ResumableProvider)
	if !ok {
		return 0, nil
	}
	seq, err := res.Resume(n.name, n.repo.LastSeq())
	if err == nil {
		n.resumes.Add(1)
	}
	return seq, err
}

// Reconnect swaps in a fresh provider connection (after a network failure
// or provider restart), re-attaches the push channel, and resumes the
// changeset stream from the last applied sequence. The node's
// subscriptions live at the provider — durably, on a durable MDP — so
// they are not re-registered; the resume replay (or a full-state reset,
// if the provider cannot replay) converges the cache.
func (n *Node) Reconnect(prov ProviderAPI) error {
	n.mu.Lock()
	n.prov = prov
	n.attached = false
	n.mu.Unlock()
	n.reconnects.Add(1)
	if reg := n.reg.Load(); reg != nil {
		if pm, ok := prov.(PushMetricsProvider); ok {
			pm.EnablePushMetrics(reg)
		}
	}
	_, err := n.Resume()
	return err
}

// writeRetry runs one provider write, retrying with short backoff while
// the cluster has no primary (mid-failover: the old primary is gone and no
// follower has been promoted yet). Reads keep serving from the cache the
// whole time — graceful degradation loses write availability only, and
// only for the failover window. Bounded, so a cluster that stays headless
// still surfaces the typed NoPrimaryError to the caller.
func (n *Node) writeRetry(op func() error) error {
	bo := &backoff.Backoff{Base: 100 * time.Millisecond, Max: time.Second}
	return backoff.Retry(context.Background(), bo, 5, func(err error) bool {
		if provider.IsNoPrimary(err) {
			n.degradedWrites.Add(1)
			return true
		}
		return false
	}, op)
}

// DegradedWrites returns how many write attempts found no primary and were
// retried.
func (n *Node) DegradedWrites() uint64 { return n.degradedWrites.Load() }

// AddSubscription registers a subscription rule at the MDP (paper §2.2:
// "When subscribing to an MDP an LMR registers a set of subscription
// rules"). The node is attached before subscribing, so the MDP delivers the
// initial cache fill through the ordered push channel; the returned initial
// changeset is deliberately not applied here (see provider.Subscribe).
func (n *Node) AddSubscription(rule string) (int64, error) {
	if err := n.ensureAttached(); err != nil {
		return 0, err
	}
	var subID int64
	err := n.writeRetry(func() error {
		var err error
		subID, _, err = n.prov.Subscribe(n.name, rule)
		return err
	})
	if err != nil {
		return 0, err
	}
	n.mu.Lock()
	n.subs[subID] = rule
	n.mu.Unlock()
	return subID, nil
}

// RemoveSubscription unregisters a rule and drops its cache credits; the
// garbage collector then removes resources no longer covered (§2.4).
func (n *Node) RemoveSubscription(subID int64) error {
	n.mu.Lock()
	_, known := n.subs[subID]
	n.mu.Unlock()
	if !known {
		return fmt.Errorf("lmr: unknown subscription %d", subID)
	}
	if err := n.writeRetry(func() error { return n.prov.Unsubscribe(subID) }); err != nil {
		return err
	}
	if err := n.repo.DropSubscriptionCredits(subID); err != nil {
		return err
	}
	n.mu.Lock()
	delete(n.subs, subID)
	n.mu.Unlock()
	return nil
}

// Subscriptions lists the node's subscriptions (id -> rule text).
func (n *Node) Subscriptions() map[int64]string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make(map[int64]string, len(n.subs))
	for id, rule := range n.subs {
		out[id] = rule
	}
	return out
}

// Query evaluates an MDV query against the local cache only (§2.2: "LMRs
// cache global metadata and use only locally available metadata for query
// processing"). Evaluation runs under the repository's shared lock:
// concurrent queries proceed in parallel and block only while a pushed
// changeset is being applied.
func (n *Node) Query(q string) ([]*rdf.Resource, error) {
	var out []*rdf.Resource
	err := n.repo.View(func() error {
		var err error
		out, err = n.eval.Evaluate(q)
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RegisterLocalDocument stores LMR-private metadata.
func (n *Node) RegisterLocalDocument(doc *rdf.Document) error {
	return n.repo.RegisterLocalDocument(doc)
}

// Resources lists cached resources of a class (empty = all).
func (n *Node) Resources(class string) ([]*rdf.Resource, error) {
	return n.repo.Resources(class)
}

// Serve starts the node's client-facing wire server with a zero
// wire.Config.
func (n *Node) Serve(addr string) (string, error) {
	return n.ServeConfig(addr, wire.Config{})
}

// ServeConfig starts the node's client-facing wire server with explicit
// fault-tolerance settings.
func (n *Node) ServeConfig(addr string, cfg wire.Config) (string, error) {
	srv, err := wire.NewServerConfig(addr, n.handle, cfg)
	if err != nil {
		return "", err
	}
	n.mu.Lock()
	n.server = srv
	n.mu.Unlock()
	return srv.Addr(), nil
}

// Close stops the wire server, if running.
func (n *Node) Close() error {
	n.mu.Lock()
	srv := n.server
	n.server = nil
	n.mu.Unlock()
	if srv != nil {
		return srv.Close()
	}
	return nil
}

func (n *Node) handle(_ *wire.ServerConn, kind string, body json.RawMessage) (interface{}, error) {
	switch kind {
	case wire.KindQuery:
		var req wire.QueryRequest
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		rs, err := n.Query(req.Query)
		if err != nil {
			return nil, err
		}
		return &wire.ResourcesResponse{Resources: rs}, nil
	case wire.KindAddSubscription:
		var req wire.AddSubscriptionRequest
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		id, err := n.AddSubscription(req.Rule)
		if err != nil {
			return nil, err
		}
		return &wire.SubscribeResponse{SubID: id}, nil
	case wire.KindRemoveSubscription:
		var req wire.UnsubscribeRequest
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		return nil, n.RemoveSubscription(req.SubID)
	case wire.KindRegisterLocal:
		var req wire.Doc
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		doc, err := rdf.ParseDocumentString(req.URI, req.XML)
		if err != nil {
			return nil, err
		}
		return nil, n.RegisterLocalDocument(doc)
	case wire.KindListResources:
		var req wire.ListResourcesRequest
		if err := wire.Decode(body, &req); err != nil {
			return nil, err
		}
		rs, err := n.Resources(req.Class)
		if err != nil {
			return nil, err
		}
		return &wire.ResourcesResponse{Resources: rs}, nil
	case wire.KindLMRStats:
		return n.repo.Stats(), nil
	case wire.KindMetrics:
		var text string
		if reg := n.reg.Load(); reg != nil {
			text = reg.Text()
		}
		return &wire.MetricsResponse{Text: text}, nil
	default:
		return nil, fmt.Errorf("lmr: unknown request kind %q", kind)
	}
}
