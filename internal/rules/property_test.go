package rules

import (
	"fmt"
	"math/rand"
	"testing"
)

// Properties of the rule pipeline: parsing round-trips through Text(), and
// normalization is idempotent (normalizing a normalized rule's text yields
// the same canonical text).

func randomPredicateSrc(rng *rand.Rand) string {
	ops := []string{"=", "!=", "<", "<=", ">", ">="}
	switch rng.Intn(5) {
	case 0:
		return fmt.Sprintf("c.serverPort %s %d", ops[rng.Intn(len(ops))], rng.Intn(100))
	case 1:
		return fmt.Sprintf("c.serverHost contains 'dom%d'", rng.Intn(5))
	case 2:
		return fmt.Sprintf("c.serverInformation.memory %s %d", ops[rng.Intn(len(ops))], rng.Intn(100))
	case 3:
		return fmt.Sprintf("c.serverInformation.cpu %s %d", ops[rng.Intn(len(ops))], rng.Intn(100))
	default:
		return fmt.Sprintf("c = 'doc%d.rdf#host'", rng.Intn(10))
	}
}

func randomRuleSrc(rng *rand.Rand) string {
	n := 1 + rng.Intn(3)
	src := "search CycleProvider c register c where "
	for i := 0; i < n; i++ {
		if i > 0 {
			if rng.Intn(3) == 0 {
				src += " or "
			} else {
				src += " and "
			}
		}
		src += randomPredicateSrc(rng)
	}
	return src
}

func TestParseTextRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		src := randomRuleSrc(rng)
		r1, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		r2, err := Parse(r1.Text())
		if err != nil {
			t.Fatalf("reparse %q: %v", r1.Text(), err)
		}
		if r1.Text() != r2.Text() {
			t.Fatalf("text round trip:\n %q\n %q", r1.Text(), r2.Text())
		}
	}
}

func TestNormalizeIdempotentProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	schema := paperSchema()
	for i := 0; i < 500; i++ {
		src := randomRuleSrc(rng)
		r, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		first, err := Normalize(r, schema, nil)
		if err != nil {
			t.Fatalf("normalize %q: %v", src, err)
		}
		for _, nr := range first {
			// A normalized rule's own text is already conjunctive and
			// path-free; normalizing it again must be a fixpoint.
			r2, err := Parse(nr.Text())
			if err != nil {
				t.Fatalf("reparse normalized %q: %v", nr.Text(), err)
			}
			second, err := Normalize(r2, schema, nil)
			if err != nil {
				t.Fatalf("renormalize %q: %v", nr.Text(), err)
			}
			if len(second) != 1 {
				t.Fatalf("renormalizing %q split into %d rules", nr.Text(), len(second))
			}
			if got, want := second[0].CanonicalText(), nr.CanonicalText(); got != want {
				t.Fatalf("normalization not idempotent:\n first  %q\n second %q", want, got)
			}
		}
	}
}

// TestDNFSplitCountProperty: the number of normalized rules equals the
// number of DNF disjuncts — for pure OR chains of n predicates, exactly n.
func TestDNFSplitCountProperty(t *testing.T) {
	schema := paperSchema()
	for n := 1; n <= 6; n++ {
		src := "search CycleProvider c register c where "
		for i := 0; i < n; i++ {
			if i > 0 {
				src += " or "
			}
			src += fmt.Sprintf("c.serverPort = %d", i)
		}
		rs, err := Normalize(MustParse(src), schema, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(rs) != n {
			t.Errorf("%d-way OR split into %d rules", n, len(rs))
		}
	}
}
