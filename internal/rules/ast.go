// Package rules implements the MDV subscription rule language (paper §2.3):
//
//	search Extension e [, Extension f ...]
//	register e
//	where Predicates(e, f, ...)
//
// Extensions are schema classes (or, internally, other rules); predicates
// are conjunctions of comparisons between constants and path expressions
// with operators =, !=, <, <=, >, >=, and contains. The special ? operator
// applies to set-valued properties. The package also provides the
// schema-aware normalizer of §3.3 that splits path expressions and, as an
// extension, eliminates OR by splitting rules (the paper notes rules with
// OR "can be split up easily").
package rules

import (
	"fmt"
	"strconv"
	"strings"
)

// Op is a comparison operator of the rule language.
type Op uint8

// The rule-language comparison operators.
const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpContains
)

// String returns the surface syntax of the operator.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpContains:
		return "contains"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Negate returns the logical negation of the operator, used when
// eliminating OR under NOT (De Morgan). Contains has no negation in the
// language; callers must check Negatable first.
func (o Op) Negate() (Op, bool) {
	switch o {
	case OpEq:
		return OpNe, true
	case OpNe:
		return OpEq, true
	case OpLt:
		return OpGe, true
	case OpLe:
		return OpGt, true
	case OpGt:
		return OpLe, true
	case OpGe:
		return OpLt, true
	default:
		return o, false
	}
}

// Numeric reports whether the operator requires numeric comparison in the
// filter (the FilterRulesOP tables of §3.3.4 exist for these).
func (o Op) Numeric() bool {
	switch o {
	case OpLt, OpLe, OpGt, OpGe:
		return true
	}
	return false
}

// ConstKind is the type of a constant operand.
type ConstKind uint8

const (
	// ConstString is a quoted string constant.
	ConstString ConstKind = iota
	// ConstInt is an integer constant.
	ConstInt
	// ConstFloat is a floating-point constant.
	ConstFloat
)

// Const is a constant operand.
type Const struct {
	Kind  ConstKind
	Str   string
	Int   int64
	Float float64
}

// StringConst makes a string constant.
func StringConst(s string) Const { return Const{Kind: ConstString, Str: s} }

// IntConst makes an integer constant.
func IntConst(i int64) Const { return Const{Kind: ConstInt, Int: i} }

// FloatConst makes a float constant.
func FloatConst(f float64) Const { return Const{Kind: ConstFloat, Float: f} }

// Lexical returns the lexical form stored in filter tables (§3.3.4 stores
// numeric constants as strings and reconverts at join time).
func (c Const) Lexical() string {
	switch c.Kind {
	case ConstInt:
		return strconv.FormatInt(c.Int, 10)
	case ConstFloat:
		return strconv.FormatFloat(c.Float, 'g', -1, 64)
	default:
		return c.Str
	}
}

// Text returns the surface syntax (strings quoted).
func (c Const) Text() string {
	if c.Kind == ConstString {
		return "'" + strings.ReplaceAll(c.Str, "'", "''") + "'"
	}
	return c.Lexical()
}

// PathStep is one property access in a path expression; Any marks the ?
// operator (applies to set-valued properties).
type PathStep struct {
	Property string
	Any      bool
}

func (s PathStep) text() string {
	if s.Any {
		return s.Property + "?"
	}
	return s.Property
}

// OperandKind distinguishes the operand forms.
type OperandKind uint8

const (
	// OperandConst is a constant.
	OperandConst OperandKind = iota
	// OperandPath is a variable followed by zero or more property accesses.
	// Zero steps means the bare variable (the resource itself).
	OperandPath
)

// Operand is one side of a predicate.
type Operand struct {
	Kind  OperandKind
	Const Const      // OperandConst
	Var   string     // OperandPath
	Path  []PathStep // OperandPath; may be empty
}

// ConstOperand wraps a constant as an operand.
func ConstOperand(c Const) Operand { return Operand{Kind: OperandConst, Const: c} }

// PathOperand builds a path operand.
func PathOperand(v string, steps ...PathStep) Operand {
	return Operand{Kind: OperandPath, Var: v, Path: steps}
}

// IsBareVar reports whether the operand is a variable with no property
// accesses.
func (o Operand) IsBareVar() bool { return o.Kind == OperandPath && len(o.Path) == 0 }

// Text returns the surface syntax of the operand.
func (o Operand) Text() string {
	if o.Kind == OperandConst {
		return o.Const.Text()
	}
	parts := make([]string, 0, 1+len(o.Path))
	parts = append(parts, o.Var)
	for _, s := range o.Path {
		parts = append(parts, s.text())
	}
	return strings.Join(parts, ".")
}

// Predicate is an elementary comparison X op Y.
type Predicate struct {
	Left  Operand
	Op    Op
	Right Operand
}

// Text returns the surface syntax of the predicate.
func (p Predicate) Text() string {
	return p.Left.Text() + " " + p.Op.String() + " " + p.Right.Text()
}

// Cond is a boolean combination of predicates, produced by the parser.
// The normalizer converts it to DNF and splits OR branches into separate
// conjunctive rules.
type Cond interface{ cond() }

// PredCond is a leaf predicate.
type PredCond struct{ Pred Predicate }

// AndCond is a conjunction.
type AndCond struct{ Left, Right Cond }

// OrCond is a disjunction.
type OrCond struct{ Left, Right Cond }

// NotCond is a negation.
type NotCond struct{ X Cond }

func (*PredCond) cond() {}
func (*AndCond) cond()  {}
func (*OrCond) cond()   {}
func (*NotCond) cond()  {}

// Binding associates a variable with an extension (class or rule name).
type Binding struct {
	Var       string
	Extension string
}

// Rule is a parsed subscription rule.
type Rule struct {
	// Search lists the variable bindings in declaration order.
	Search []Binding
	// Register is the variable whose matches the rule registers.
	Register string
	// Where is the condition; nil means the rule matches every instance of
	// the registered variable's extension.
	Where Cond
}

// Binding returns the binding of the named variable.
func (r *Rule) Binding(v string) (Binding, bool) {
	for _, b := range r.Search {
		if b.Var == v {
			return b, true
		}
	}
	return Binding{}, false
}

// Text reconstructs the rule's surface syntax.
func (r *Rule) Text() string {
	var sb strings.Builder
	sb.WriteString("search ")
	for i, b := range r.Search {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(b.Extension + " " + b.Var)
	}
	sb.WriteString(" register " + r.Register)
	if r.Where != nil {
		sb.WriteString(" where " + condText(r.Where))
	}
	return sb.String()
}

func condText(c Cond) string {
	switch x := c.(type) {
	case *PredCond:
		return x.Pred.Text()
	case *AndCond:
		return condText(x.Left) + " and " + condText(x.Right)
	case *OrCond:
		return "(" + condText(x.Left) + " or " + condText(x.Right) + ")"
	case *NotCond:
		return "not (" + condText(x.X) + ")"
	default:
		return "?"
	}
}

// NormalRule is a rule in the normal form of §3.3: every class used in the
// where part has a binding in the search part, and predicates contain only
// single property accesses (no multi-step paths) or bare variables.
type NormalRule struct {
	Search   []Binding
	Register string
	// Where is a pure conjunction.
	Where []Predicate
}

// Text reconstructs the normalized rule's surface syntax.
func (r *NormalRule) Text() string {
	var sb strings.Builder
	sb.WriteString("search ")
	for i, b := range r.Search {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(b.Extension + " " + b.Var)
	}
	sb.WriteString(" register " + r.Register)
	if len(r.Where) > 0 {
		parts := make([]string, len(r.Where))
		for i, p := range r.Where {
			parts[i] = p.Text()
		}
		sb.WriteString(" where " + strings.Join(parts, " and "))
	}
	return sb.String()
}

// Binding returns the binding of the named variable.
func (r *NormalRule) Binding(v string) (Binding, bool) {
	for _, b := range r.Search {
		if b.Var == v {
			return b, true
		}
	}
	return Binding{}, false
}
