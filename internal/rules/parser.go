package rules

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses one subscription rule.
func Parse(src string) (*Rule, error) {
	toks, err := lexRule(src)
	if err != nil {
		return nil, err
	}
	p := &ruleParser{toks: toks}
	r, err := p.parseRule()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errorf("unexpected trailing input %q", p.peek().text)
	}
	return r, nil
}

// MustParse is Parse, panicking on error. For statically known rules.
func MustParse(src string) *Rule {
	r, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return r
}

type ruleTokKind uint8

const (
	rtEOF ruleTokKind = iota
	rtIdent
	rtKeyword // search register where and or not contains
	rtString
	rtNumber
	rtSymbol // . , ( ) ? = != < <= > >=
)

type ruleTok struct {
	kind ruleTokKind
	text string
	pos  int
}

var ruleKeywords = map[string]bool{
	"search": true, "register": true, "where": true,
	"and": true, "or": true, "not": true, "contains": true,
}

func lexRule(src string) ([]ruleTok, error) {
	var toks []ruleTok
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			for {
				if i >= len(src) {
					return nil, fmt.Errorf("rules: unterminated string at offset %d", start)
				}
				if src[i] == '\'' {
					if i+1 < len(src) && src[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			toks = append(toks, ruleTok{rtString, sb.String(), start})
		case c >= '0' && c <= '9':
			start := i
			for i < len(src) && (src[i] >= '0' && src[i] <= '9' || src[i] == '.') {
				// A dot followed by a non-digit terminates the number (it is
				// a path separator, not a decimal point).
				if src[i] == '.' && (i+1 >= len(src) || src[i+1] < '0' || src[i+1] > '9') {
					break
				}
				i++
			}
			toks = append(toks, ruleTok{rtNumber, src[start:i], start})
		case isRuleIdentStart(c):
			start := i
			for i < len(src) && isRuleIdentPart(src[i]) {
				i++
			}
			word := src[start:i]
			if ruleKeywords[strings.ToLower(word)] {
				toks = append(toks, ruleTok{rtKeyword, strings.ToLower(word), start})
			} else {
				toks = append(toks, ruleTok{rtIdent, word, start})
			}
		default:
			start := i
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "!=", "<=", ">=":
				toks = append(toks, ruleTok{rtSymbol, two, start})
				i += 2
				continue
			}
			switch c {
			case '.', ',', '(', ')', '?', '=', '<', '>':
				toks = append(toks, ruleTok{rtSymbol, string(c), start})
				i++
			default:
				return nil, fmt.Errorf("rules: unexpected character %q at offset %d", c, start)
			}
		}
	}
	toks = append(toks, ruleTok{kind: rtEOF, pos: len(src)})
	return toks, nil
}

func isRuleIdentStart(c byte) bool {
	return c == '_' || c == '#' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isRuleIdentPart(c byte) bool {
	return isRuleIdentStart(c) || (c >= '0' && c <= '9') || c == '-' || c == ':' || c == '/'
}

type ruleParser struct {
	toks []ruleTok
	pos  int
}

func (p *ruleParser) peek() ruleTok { return p.toks[p.pos] }
func (p *ruleParser) next() ruleTok { t := p.toks[p.pos]; p.pos++; return t }
func (p *ruleParser) atEOF() bool   { return p.peek().kind == rtEOF }

func (p *ruleParser) accept(kind ruleTokKind, text string) bool {
	t := p.peek()
	if t.kind == kind && (text == "" || t.text == text) {
		p.pos++
		return true
	}
	return false
}

func (p *ruleParser) expectKeyword(kw string) error {
	if !p.accept(rtKeyword, kw) {
		return p.errorf("expected %q, found %q", kw, p.peek().text)
	}
	return nil
}

func (p *ruleParser) expectIdent() (string, error) {
	t := p.peek()
	if t.kind != rtIdent {
		return "", p.errorf("expected identifier, found %q", t.text)
	}
	p.pos++
	return t.text, nil
}

func (p *ruleParser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("rules: parse error at offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *ruleParser) parseRule() (*Rule, error) {
	if err := p.expectKeyword("search"); err != nil {
		return nil, err
	}
	r := &Rule{}
	seenVars := map[string]bool{}
	for {
		ext, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		v, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if seenVars[v] {
			return nil, p.errorf("duplicate variable %q", v)
		}
		seenVars[v] = true
		r.Search = append(r.Search, Binding{Var: v, Extension: ext})
		if !p.accept(rtSymbol, ",") {
			break
		}
	}
	if err := p.expectKeyword("register"); err != nil {
		return nil, err
	}
	reg, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if !seenVars[reg] {
		return nil, p.errorf("register variable %q is not bound in search", reg)
	}
	r.Register = reg
	if p.accept(rtKeyword, "where") {
		cond, err := p.parseOr(seenVars)
		if err != nil {
			return nil, err
		}
		r.Where = cond
	}
	return r, nil
}

// Condition grammar: or := and ('or' and)*, and := unary ('and' unary)*,
// unary := 'not' unary | '(' or ')' | predicate.
func (p *ruleParser) parseOr(vars map[string]bool) (Cond, error) {
	left, err := p.parseAnd(vars)
	if err != nil {
		return nil, err
	}
	for p.accept(rtKeyword, "or") {
		right, err := p.parseAnd(vars)
		if err != nil {
			return nil, err
		}
		left = &OrCond{Left: left, Right: right}
	}
	return left, nil
}

func (p *ruleParser) parseAnd(vars map[string]bool) (Cond, error) {
	left, err := p.parseUnary(vars)
	if err != nil {
		return nil, err
	}
	for p.accept(rtKeyword, "and") {
		right, err := p.parseUnary(vars)
		if err != nil {
			return nil, err
		}
		left = &AndCond{Left: left, Right: right}
	}
	return left, nil
}

func (p *ruleParser) parseUnary(vars map[string]bool) (Cond, error) {
	if p.accept(rtKeyword, "not") {
		x, err := p.parseUnary(vars)
		if err != nil {
			return nil, err
		}
		return &NotCond{X: x}, nil
	}
	if p.accept(rtSymbol, "(") {
		x, err := p.parseOr(vars)
		if err != nil {
			return nil, err
		}
		if !p.accept(rtSymbol, ")") {
			return nil, p.errorf("expected )")
		}
		return x, nil
	}
	pred, err := p.parsePredicate(vars)
	if err != nil {
		return nil, err
	}
	return &PredCond{Pred: pred}, nil
}

func (p *ruleParser) parsePredicate(vars map[string]bool) (Predicate, error) {
	left, err := p.parseOperand(vars)
	if err != nil {
		return Predicate{}, err
	}
	op, err := p.parseOp()
	if err != nil {
		return Predicate{}, err
	}
	right, err := p.parseOperand(vars)
	if err != nil {
		return Predicate{}, err
	}
	if left.Kind == OperandConst && right.Kind == OperandConst {
		return Predicate{}, p.errorf("predicate compares two constants")
	}
	return Predicate{Left: left, Op: op, Right: right}, nil
}

func (p *ruleParser) parseOp() (Op, error) {
	t := p.peek()
	if t.kind == rtKeyword && t.text == "contains" {
		p.pos++
		return OpContains, nil
	}
	if t.kind == rtSymbol {
		var op Op
		switch t.text {
		case "=":
			op = OpEq
		case "!=":
			op = OpNe
		case "<":
			op = OpLt
		case "<=":
			op = OpLe
		case ">":
			op = OpGt
		case ">=":
			op = OpGe
		default:
			return 0, p.errorf("expected comparison operator, found %q", t.text)
		}
		p.pos++
		return op, nil
	}
	return 0, p.errorf("expected comparison operator, found %q", t.text)
}

func (p *ruleParser) parseOperand(vars map[string]bool) (Operand, error) {
	t := p.peek()
	switch t.kind {
	case rtString:
		p.pos++
		return ConstOperand(StringConst(t.text)), nil
	case rtNumber:
		p.pos++
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return Operand{}, p.errorf("invalid number %q", t.text)
			}
			return ConstOperand(FloatConst(f)), nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Operand{}, p.errorf("invalid number %q", t.text)
		}
		return ConstOperand(IntConst(n)), nil
	case rtIdent:
		p.pos++
		name := t.text
		if !vars[name] {
			// Unbound identifiers are rejected rather than treated as bare
			// constants: URI references in OID rules must be quoted, which
			// also catches variable typos at parse time.
			return Operand{}, p.errorf("unbound variable %q (string constants must be quoted)", name)
		}
		op := Operand{Kind: OperandPath, Var: name}
		for p.accept(rtSymbol, ".") {
			prop, err := p.expectIdent()
			if err != nil {
				return Operand{}, err
			}
			step := PathStep{Property: prop}
			if p.accept(rtSymbol, "?") {
				step.Any = true
			}
			op.Path = append(op.Path, step)
		}
		return op, nil
	default:
		return Operand{}, p.errorf("expected operand, found %q", t.text)
	}
}
