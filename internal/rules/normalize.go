package rules

import (
	"fmt"
	"strings"

	"mdv/internal/rdf"
)

// RuleResolver resolves a rule-name extension to its normalized definition
// (the paper allows a rule's search extension to be "another subscription
// rule", §2.3). A nil resolver disables rule-name extensions.
type RuleResolver func(name string) (*NormalRule, bool)

// Normalize rewrites a parsed rule into one or more normalized rules
// (paper §3.3):
//
//   - OR and NOT are eliminated: the condition is converted to disjunctive
//     normal form using De Morgan's laws and negated operators, and each
//     disjunct becomes its own conjunctive rule (the paper's suggested
//     splitting).
//   - Path expressions are split: each multi-step path introduces bindings
//     for the intermediate classes and join predicates, so predicates
//     contain only bare variables or single property accesses. Identical
//     path prefixes within one conjunction share the introduced variable
//     (as in the paper's §3.3.1 example).
//   - Rule-name extensions are inlined from the resolver.
//
// All bindings, properties, operators, and the ? any-operator are validated
// against the schema.
func Normalize(r *Rule, schema *rdf.Schema, resolve RuleResolver) ([]*NormalRule, error) {
	// Resolve bindings: each variable gets a class, inlining rule-name
	// extensions up front.
	base := &NormalRule{Register: r.Register}
	fresh := newFreshVars(r)
	for _, b := range r.Search {
		if _, ok := schema.Class(b.Extension); ok {
			base.Search = append(base.Search, b)
			continue
		}
		if resolve != nil {
			if sub, ok := resolve(b.Extension); ok {
				if err := inlineRule(base, b.Var, sub, fresh); err != nil {
					return nil, err
				}
				continue
			}
		}
		return nil, fmt.Errorf("rules: unknown extension %q (not a schema class or registered rule)", b.Extension)
	}

	// DNF-split the condition.
	var conjunctions [][]Predicate
	if r.Where == nil {
		conjunctions = [][]Predicate{nil}
	} else {
		dnf, err := toDNF(r.Where)
		if err != nil {
			return nil, err
		}
		conjunctions = dnf
	}

	out := make([]*NormalRule, 0, len(conjunctions))
	for _, conj := range conjunctions {
		nr := &NormalRule{
			Search:   append([]Binding(nil), base.Search...),
			Register: base.Register,
			Where:    append([]Predicate(nil), base.Where...),
		}
		norm := &normalizer{schema: schema, rule: nr, fresh: fresh.clone(), shared: map[string]string{}}
		for _, pred := range conj {
			if err := norm.addPredicate(pred); err != nil {
				return nil, err
			}
		}
		if err := norm.validate(); err != nil {
			return nil, err
		}
		out = append(out, nr)
	}
	return out, nil
}

// inlineRule substitutes a rule-name extension: the referenced rule's
// bindings and predicates are copied with fresh variable names, and its
// register variable is renamed to the referencing variable.
func inlineRule(dst *NormalRule, asVar string, sub *NormalRule, fresh *freshVars) error {
	rename := map[string]string{sub.Register: asVar}
	for _, b := range sub.Search {
		if b.Var == sub.Register {
			dst.Search = append(dst.Search, Binding{Var: asVar, Extension: b.Extension})
			continue
		}
		nv := fresh.next()
		rename[b.Var] = nv
		dst.Search = append(dst.Search, Binding{Var: nv, Extension: b.Extension})
	}
	for _, p := range sub.Where {
		q := p
		if q.Left.Kind == OperandPath {
			q.Left.Var = rename[q.Left.Var]
		}
		if q.Right.Kind == OperandPath {
			q.Right.Var = rename[q.Right.Var]
		}
		dst.Where = append(dst.Where, q)
	}
	return nil
}

// freshVars generates variable names not colliding with the rule's own.
type freshVars struct {
	used map[string]bool
	n    int
}

func newFreshVars(r *Rule) *freshVars {
	f := &freshVars{used: map[string]bool{}}
	for _, b := range r.Search {
		f.used[b.Var] = true
	}
	return f
}

func (f *freshVars) next() string {
	for {
		f.n++
		v := fmt.Sprintf("_v%d", f.n)
		if !f.used[v] {
			f.used[v] = true
			return v
		}
	}
}

func (f *freshVars) clone() *freshVars {
	cp := &freshVars{used: make(map[string]bool, len(f.used)), n: f.n}
	for k := range f.used {
		cp.used[k] = true
	}
	return cp
}

// toDNF converts a condition into disjunctive normal form: a list of
// conjunctions. NOT is pushed to the leaves first.
func toDNF(c Cond) ([][]Predicate, error) {
	nnf, err := pushNot(c, false)
	if err != nil {
		return nil, err
	}
	return distribute(nnf), nil
}

// pushNot produces negation normal form. Negation flips operators; contains
// cannot be negated in the rule language.
func pushNot(c Cond, neg bool) (Cond, error) {
	switch x := c.(type) {
	case *PredCond:
		if !neg {
			return x, nil
		}
		nop, ok := x.Pred.Op.Negate()
		if !ok {
			return nil, fmt.Errorf("rules: operator %q cannot be negated", x.Pred.Op)
		}
		return &PredCond{Pred: Predicate{Left: x.Pred.Left, Op: nop, Right: x.Pred.Right}}, nil
	case *NotCond:
		return pushNot(x.X, !neg)
	case *AndCond:
		l, err := pushNot(x.Left, neg)
		if err != nil {
			return nil, err
		}
		r, err := pushNot(x.Right, neg)
		if err != nil {
			return nil, err
		}
		if neg {
			return &OrCond{Left: l, Right: r}, nil
		}
		return &AndCond{Left: l, Right: r}, nil
	case *OrCond:
		l, err := pushNot(x.Left, neg)
		if err != nil {
			return nil, err
		}
		r, err := pushNot(x.Right, neg)
		if err != nil {
			return nil, err
		}
		if neg {
			return &AndCond{Left: l, Right: r}, nil
		}
		return &OrCond{Left: l, Right: r}, nil
	default:
		return nil, fmt.Errorf("rules: unknown condition %T", c)
	}
}

// distribute expands a NNF condition into DNF conjunction lists.
func distribute(c Cond) [][]Predicate {
	switch x := c.(type) {
	case *PredCond:
		return [][]Predicate{{x.Pred}}
	case *OrCond:
		return append(distribute(x.Left), distribute(x.Right)...)
	case *AndCond:
		left := distribute(x.Left)
		right := distribute(x.Right)
		out := make([][]Predicate, 0, len(left)*len(right))
		for _, l := range left {
			for _, r := range right {
				conj := make([]Predicate, 0, len(l)+len(r))
				conj = append(conj, l...)
				conj = append(conj, r...)
				out = append(out, conj)
			}
		}
		return out
	default:
		return nil
	}
}

// normalizer splits path expressions within one conjunction.
type normalizer struct {
	schema *rdf.Schema
	rule   *NormalRule
	fresh  *freshVars
	// shared maps "var.prop1.prop2..." prefixes to the variable introduced
	// for them, so equal prefixes reuse one join (paper §3.3.1 example).
	shared map[string]string
}

func (n *normalizer) addPredicate(p Predicate) error {
	left, err := n.flattenOperand(p.Left)
	if err != nil {
		return err
	}
	right, err := n.flattenOperand(p.Right)
	if err != nil {
		return err
	}
	np := Predicate{Left: left, Op: p.Op, Right: right}
	if err := n.typeCheck(np); err != nil {
		return err
	}
	n.rule.Where = append(n.rule.Where, np)
	return nil
}

// flattenOperand reduces a path operand to at most one property access,
// introducing bindings and join predicates for the prefix.
func (n *normalizer) flattenOperand(o Operand) (Operand, error) {
	if o.Kind == OperandConst || len(o.Path) <= 1 {
		if o.Kind == OperandPath {
			if _, ok := n.rule.Binding(o.Var); !ok {
				return Operand{}, fmt.Errorf("rules: unbound variable %q", o.Var)
			}
		}
		return o, nil
	}
	curVar := o.Var
	prefix := o.Var
	for i := 0; i < len(o.Path)-1; i++ {
		step := o.Path[i]
		b, ok := n.rule.Binding(curVar)
		if !ok {
			return Operand{}, fmt.Errorf("rules: unbound variable %q", curVar)
		}
		class, ok := n.schema.Class(b.Extension)
		if !ok {
			return Operand{}, fmt.Errorf("rules: unknown class %q", b.Extension)
		}
		def, ok := class.Property(step.Property)
		if !ok {
			return Operand{}, fmt.Errorf("rules: class %s has no property %s", b.Extension, step.Property)
		}
		if def.Type != rdf.TypeResource {
			return Operand{}, fmt.Errorf("rules: property %s.%s is not a reference; cannot navigate through it",
				b.Extension, step.Property)
		}
		if step.Any && !def.SetValued {
			return Operand{}, fmt.Errorf("rules: ? applied to single-valued property %s.%s", b.Extension, step.Property)
		}
		prefix += "." + step.text()
		if v, ok := n.shared[prefix]; ok {
			curVar = v
			continue
		}
		nv := n.fresh.next()
		n.rule.Search = append(n.rule.Search, Binding{Var: nv, Extension: def.RefClass})
		n.rule.Where = append(n.rule.Where, Predicate{
			Left:  PathOperand(curVar, step),
			Op:    OpEq,
			Right: PathOperand(nv),
		})
		n.shared[prefix] = nv
		curVar = nv
	}
	last := o.Path[len(o.Path)-1]
	return PathOperand(curVar, last), nil
}

// typeCheck validates a flattened predicate against the schema.
func (n *normalizer) typeCheck(p Predicate) error {
	lt, err := n.operandType(p.Left)
	if err != nil {
		return err
	}
	rt, err := n.operandType(p.Right)
	if err != nil {
		return err
	}
	if p.Op == OpContains {
		// contains is string search; both sides must be textual.
		for _, ot := range []operandType{lt, rt} {
			if ot.numeric {
				return fmt.Errorf("rules: contains requires string operands in %q", p.Text())
			}
		}
		return nil
	}
	if p.Op.Numeric() {
		if lt.isResource || rt.isResource {
			return fmt.Errorf("rules: ordering comparison on resources in %q", p.Text())
		}
		if !lt.numeric || !rt.numeric {
			return fmt.Errorf("rules: operator %s requires numeric operands in %q", p.Op, p.Text())
		}
	}
	return nil
}

type operandType struct {
	numeric    bool
	isResource bool // bare variable or reference-valued property
}

func (n *normalizer) operandType(o Operand) (operandType, error) {
	if o.Kind == OperandConst {
		return operandType{numeric: o.Const.Kind != ConstString}, nil
	}
	b, ok := n.rule.Binding(o.Var)
	if !ok {
		return operandType{}, fmt.Errorf("rules: unbound variable %q", o.Var)
	}
	if len(o.Path) == 0 {
		return operandType{isResource: true}, nil
	}
	class, ok := n.schema.Class(b.Extension)
	if !ok {
		return operandType{}, fmt.Errorf("rules: unknown class %q", b.Extension)
	}
	step := o.Path[0]
	def, ok := class.Property(step.Property)
	if !ok {
		return operandType{}, fmt.Errorf("rules: class %s has no property %s", b.Extension, step.Property)
	}
	if step.Any && !def.SetValued {
		return operandType{}, fmt.Errorf("rules: ? applied to single-valued property %s.%s", b.Extension, step.Property)
	}
	switch def.Type {
	case rdf.TypeInteger, rdf.TypeFloat:
		return operandType{numeric: true}, nil
	case rdf.TypeResource:
		return operandType{isResource: true}, nil
	default:
		return operandType{}, nil
	}
}

// validate performs whole-rule checks after normalization.
func (n *normalizer) validate() error {
	r := n.rule
	if _, ok := r.Binding(r.Register); !ok {
		return fmt.Errorf("rules: register variable %q is not bound", r.Register)
	}
	for _, b := range r.Search {
		if _, ok := n.schema.Class(b.Extension); !ok {
			return fmt.Errorf("rules: unknown class %q", b.Extension)
		}
	}
	// Resource-vs-resource predicates must join compatible classes: a bare
	// variable may be compared with a reference property only if the
	// property's range matches the variable's class, and var = var requires
	// equal classes.
	for _, p := range r.Where {
		if p.Op != OpEq && p.Op != OpNe {
			continue
		}
		lc, lok := n.resourceClassOf(p.Left)
		rc, rok := n.resourceClassOf(p.Right)
		if lok && rok && lc != rc {
			return fmt.Errorf("rules: predicate %q joins incompatible classes %s and %s", p.Text(), lc, rc)
		}
	}
	return nil
}

// resourceClassOf returns the class an operand denotes, if it denotes a
// resource (bare variable or reference property).
func (n *normalizer) resourceClassOf(o Operand) (string, bool) {
	if o.Kind != OperandPath {
		return "", false
	}
	b, ok := n.rule.Binding(o.Var)
	if !ok {
		return "", false
	}
	if len(o.Path) == 0 {
		return b.Extension, true
	}
	class, ok := n.schema.Class(b.Extension)
	if !ok {
		return "", false
	}
	def, ok := class.Property(o.Path[0].Property)
	if !ok || def.Type != rdf.TypeResource {
		return "", false
	}
	return def.RefClass, true
}

// CanonicalText returns a canonical form of a normalized rule: variables
// renamed positionally and predicates sorted, so equivalent rules compare
// equal as strings. Used for rule deduplication (§3.3.4: "no rules having
// the same rule text but different rule_ids").
func (r *NormalRule) CanonicalText() string {
	rename := map[string]string{}
	for i, b := range r.Search {
		rename[b.Var] = fmt.Sprintf("v%d", i+1)
	}
	var sb strings.Builder
	sb.WriteString("search ")
	for i, b := range r.Search {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(b.Extension + " " + rename[b.Var])
	}
	sb.WriteString(" register " + rename[r.Register])
	if len(r.Where) > 0 {
		parts := make([]string, len(r.Where))
		for i, p := range r.Where {
			parts[i] = canonicalPredText(p, rename)
		}
		// Stable order of conjuncts.
		sortStrings(parts)
		sb.WriteString(" where " + strings.Join(parts, " and "))
	}
	return sb.String()
}

func canonicalPredText(p Predicate, rename map[string]string) string {
	l, r := p.Left, p.Right
	if l.Kind == OperandPath {
		l.Var = rename[l.Var]
	}
	if r.Kind == OperandPath {
		r.Var = rename[r.Var]
	}
	// Orient symmetric operators so "a = b" and "b = a" canonicalize alike.
	if p.Op == OpEq || p.Op == OpNe {
		if l.Text() > r.Text() {
			l, r = r, l
		}
	}
	return l.Text() + " " + p.Op.String() + " " + r.Text()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
