package rules

import (
	"strings"
	"testing"

	"mdv/internal/rdf"
)

// paperSchema builds the schema implied by the paper's examples.
func paperSchema() *rdf.Schema {
	s := rdf.NewSchema()
	s.MustAddProperty("CycleProvider", rdf.PropertyDef{Name: "serverHost", Type: rdf.TypeString})
	s.MustAddProperty("CycleProvider", rdf.PropertyDef{Name: "serverPort", Type: rdf.TypeInteger})
	s.MustAddProperty("CycleProvider", rdf.PropertyDef{
		Name: "serverInformation", Type: rdf.TypeResource, RefClass: "ServerInformation", RefKind: rdf.StrongRef})
	s.MustAddProperty("CycleProvider", rdf.PropertyDef{Name: "synthValue", Type: rdf.TypeInteger})
	s.MustAddProperty("CycleProvider", rdf.PropertyDef{
		Name: "mirror", Type: rdf.TypeResource, RefClass: "CycleProvider", RefKind: rdf.WeakRef, SetValued: true})
	s.MustAddProperty("ServerInformation", rdf.PropertyDef{Name: "memory", Type: rdf.TypeInteger})
	s.MustAddProperty("ServerInformation", rdf.PropertyDef{Name: "cpu", Type: rdf.TypeInteger})
	s.AddClass("DataProvider")
	s.MustAddProperty("DataProvider", rdf.PropertyDef{Name: "theme", Type: rdf.TypeString, SetValued: true})
	return s
}

// example1 is the rule of paper Example 1.
const example1 = `search CycleProvider c register c
	where c.serverHost contains 'uni-passau.de' and c.serverInformation.memory > 64`

func TestParseExample1(t *testing.T) {
	r, err := Parse(example1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Search) != 1 || r.Search[0].Var != "c" || r.Search[0].Extension != "CycleProvider" {
		t.Errorf("search = %+v", r.Search)
	}
	if r.Register != "c" {
		t.Errorf("register = %s", r.Register)
	}
	and, ok := r.Where.(*AndCond)
	if !ok {
		t.Fatalf("where = %T", r.Where)
	}
	p1 := and.Left.(*PredCond).Pred
	if p1.Op != OpContains || p1.Left.Text() != "c.serverHost" || p1.Right.Const.Str != "uni-passau.de" {
		t.Errorf("pred1 = %s", p1.Text())
	}
	p2 := and.Right.(*PredCond).Pred
	if p2.Op != OpGt || p2.Left.Text() != "c.serverInformation.memory" || p2.Right.Const.Int != 64 {
		t.Errorf("pred2 = %s", p2.Text())
	}
}

func TestParseOperatorsAndConstants(t *testing.T) {
	cases := []struct {
		src string
		op  Op
	}{
		{`search C c register c where c.p = 1`, OpEq},
		{`search C c register c where c.p != 1`, OpNe},
		{`search C c register c where c.p < 1`, OpLt},
		{`search C c register c where c.p <= 1`, OpLe},
		{`search C c register c where c.p > 1`, OpGt},
		{`search C c register c where c.p >= 1`, OpGe},
		{`search C c register c where c.p contains 'x'`, OpContains},
	}
	for _, c := range cases {
		r, err := Parse(c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if got := r.Where.(*PredCond).Pred.Op; got != c.op {
			t.Errorf("%s: op = %v", c.src, got)
		}
	}
	// Constant kinds.
	r := MustParse(`search C c register c where c.p = 3.5`)
	if k := r.Where.(*PredCond).Pred.Right.Const; k.Kind != ConstFloat || k.Float != 3.5 {
		t.Errorf("float const = %+v", k)
	}
	r = MustParse(`search C c register c where c.p = 'it''s'`)
	if k := r.Where.(*PredCond).Pred.Right.Const; k.Str != "it's" {
		t.Errorf("escaped string = %q", k.Str)
	}
	// Constant on the left.
	r = MustParse(`search C c register c where 64 < c.p`)
	if p := r.Where.(*PredCond).Pred; p.Left.Kind != OperandConst || p.Right.Text() != "c.p" {
		t.Errorf("const-left predicate = %s", p.Text())
	}
}

func TestParseAnyOperator(t *testing.T) {
	r := MustParse(`search DataProvider d register d where d.theme? contains 'sports'`)
	p := r.Where.(*PredCond).Pred
	if !p.Left.Path[0].Any {
		t.Error("? not parsed")
	}
	if p.Left.Text() != "d.theme?" {
		t.Errorf("text = %s", p.Left.Text())
	}
}

func TestParseMultipleBindings(t *testing.T) {
	r := MustParse(`search CycleProvider c, ServerInformation s register c
		where c.serverInformation = s and s.memory > 64`)
	if len(r.Search) != 2 || r.Search[1].Extension != "ServerInformation" {
		t.Errorf("search = %+v", r.Search)
	}
}

func TestParseBareVarPredicate(t *testing.T) {
	r := MustParse(`search CycleProvider c register c where c = 'doc.rdf#host'`)
	p := r.Where.(*PredCond).Pred
	if !p.Left.IsBareVar() {
		t.Error("bare var not recognized")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`search`,
		`search C`,
		`search C c`,
		`search C c register`,
		`search C c register x`,             // register var unbound
		`search C c, D c register c`,        // duplicate var
		`search C c register c where`,       //
		`search C c register c where c.p`,   // missing operator
		`search C c register c where c.p =`, // missing operand
		`search C c register c where 1 = 2`, // two constants
		`search C c register c where c.p = unquoted`,
		`search C c register c where x.p = 1`, // unbound var
		`search C c register c where c.p ~ 1`,
		`search C c register c where (c.p = 1`,
		`search C c register c trailing`,
		`search C c register c where c.p = 'unterminated`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted: %q", src)
		}
	}
}

func TestRuleTextRoundTrip(t *testing.T) {
	srcs := []string{
		`search CycleProvider c register c`,
		`search CycleProvider c register c where c.serverHost contains 'uni-passau.de'`,
		`search CycleProvider c, ServerInformation s register c where c.serverInformation = s and s.memory > 64`,
		`search DataProvider d register d where d.theme? = 'sports' or d.theme? = 'news'`,
		`search CycleProvider c register c where not (c.serverPort = 80)`,
	}
	for _, src := range srcs {
		r1 := MustParse(src)
		r2, err := Parse(r1.Text())
		if err != nil {
			t.Fatalf("reparse %q: %v", r1.Text(), err)
		}
		if r1.Text() != r2.Text() {
			t.Errorf("round trip: %q vs %q", r1.Text(), r2.Text())
		}
	}
}

// TestNormalizeExample1 reproduces the normalization shown in §3.3: the
// Example 1 rule gains a ServerInformation binding and the path is split.
func TestNormalizeExample1(t *testing.T) {
	s := paperSchema()
	rs, err := Normalize(MustParse(example1), s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 {
		t.Fatalf("got %d rules", len(rs))
	}
	nr := rs[0]
	if len(nr.Search) != 2 {
		t.Fatalf("search = %+v", nr.Search)
	}
	if nr.Search[0].Extension != "CycleProvider" || nr.Search[1].Extension != "ServerInformation" {
		t.Errorf("bindings = %+v", nr.Search)
	}
	if len(nr.Where) != 3 {
		t.Fatalf("where = %d predicates: %s", len(nr.Where), nr.Text())
	}
	// Expected: contains-predicate, join predicate, memory predicate.
	sVar := nr.Search[1].Var
	found := map[string]bool{}
	for _, p := range nr.Where {
		found[p.Text()] = true
	}
	if !found["c.serverHost contains 'uni-passau.de'"] {
		t.Errorf("missing contains predicate: %s", nr.Text())
	}
	if !found["c.serverInformation = "+sVar] {
		t.Errorf("missing join predicate: %s", nr.Text())
	}
	if !found[sVar+".memory > 64"] {
		t.Errorf("missing memory predicate: %s", nr.Text())
	}
}

// TestNormalizeSharedPathPrefix follows §3.3.1/§3.3.3: two predicates over
// the same path prefix share one introduced variable.
func TestNormalizeSharedPathPrefix(t *testing.T) {
	s := paperSchema()
	r := MustParse(`search CycleProvider c register c
		where c.serverInformation.memory > 64 and c.serverInformation.cpu > 500`)
	rs, err := Normalize(r, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	nr := rs[0]
	if len(nr.Search) != 2 {
		t.Fatalf("shared prefix not deduplicated: %s", nr.Text())
	}
	if len(nr.Where) != 3 { // one join + two comparisons
		t.Fatalf("want 3 predicates, got %s", nr.Text())
	}
}

func TestNormalizeDeepPath(t *testing.T) {
	s := paperSchema()
	// mirror is CycleProvider -> CycleProvider, so a three-step path works.
	r := MustParse(`search CycleProvider c register c
		where c.mirror?.serverInformation.memory > 64`)
	rs, err := Normalize(r, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	nr := rs[0]
	if len(nr.Search) != 3 {
		t.Fatalf("bindings = %+v", nr.Search)
	}
	if len(nr.Where) != 3 { // two joins + comparison
		t.Fatalf("got %s", nr.Text())
	}
}

func TestNormalizeOrSplit(t *testing.T) {
	s := paperSchema()
	r := MustParse(`search CycleProvider c register c
		where c.serverPort = 80 or c.serverPort = 443`)
	rs, err := Normalize(r, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("OR split produced %d rules", len(rs))
	}
	// Distribution over AND.
	r = MustParse(`search CycleProvider c register c
		where c.serverHost contains 'de' and (c.serverPort = 80 or c.serverPort = 443)`)
	rs, err = Normalize(r, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("distribution produced %d rules", len(rs))
	}
	for _, nr := range rs {
		if len(nr.Where) != 2 {
			t.Errorf("disjunct lost a conjunct: %s", nr.Text())
		}
	}
}

func TestNormalizeNotElimination(t *testing.T) {
	s := paperSchema()
	r := MustParse(`search CycleProvider c register c where not (c.serverPort = 80)`)
	rs, err := Normalize(r, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Where[0].Op != OpNe {
		t.Errorf("NOT not eliminated: %s", rs[0].Text())
	}
	// De Morgan: not (a and b) -> not a or not b -> 2 rules.
	r = MustParse(`search CycleProvider c register c
		where not (c.serverPort = 80 and c.serverPort = 443)`)
	rs, err = Normalize(r, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Errorf("De Morgan split produced %d rules", len(rs))
	}
	// contains cannot be negated.
	r = MustParse(`search CycleProvider c register c where not (c.serverHost contains 'x')`)
	if _, err := Normalize(r, s, nil); err == nil {
		t.Error("negated contains accepted")
	}
}

func TestNormalizeValidation(t *testing.T) {
	s := paperSchema()
	bad := []string{
		`search Unknown u register u`,
		`search CycleProvider c register c where c.nope = 1`,
		`search CycleProvider c register c where c.serverHost.memory = 1`,                      // navigate through literal
		`search CycleProvider c register c where c.serverInformation? = 'x'`,                   // ? on single-valued
		`search CycleProvider c register c where c.serverPort contains 'x'`,                    // contains on numeric
		`search CycleProvider c register c where c.serverHost > 5`,                             // ordering on string vs numeric
		`search CycleProvider c register c where c > 5`,                                        // ordering on resource
		`search CycleProvider c, ServerInformation s register c where c = s`,                   // incompatible classes
		`search CycleProvider c, ServerInformation s register c where c.serverInformation = c`, // range mismatch
	}
	for _, src := range bad {
		r, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := Normalize(r, s, nil); err == nil {
			t.Errorf("normalized invalid rule: %q", src)
		}
	}
	// Valid edge cases.
	good := []string{
		`search CycleProvider c register c`,
		`search CycleProvider c register c where c = 'doc.rdf#host'`,
		`search CycleProvider c, CycleProvider d register c where c.mirror? = d`,
		`search CycleProvider c register c where c.serverPort >= 8080`,
	}
	for _, src := range good {
		if _, err := Normalize(MustParse(src), s, nil); err != nil {
			t.Errorf("rejected valid rule %q: %v", src, err)
		}
	}
}

func TestNormalizeRuleExtension(t *testing.T) {
	s := paperSchema()
	baseRules, err := Normalize(MustParse(
		`search CycleProvider c register c where c.serverHost contains 'uni-passau.de'`), s, nil)
	if err != nil {
		t.Fatal(err)
	}
	catalog := map[string]*NormalRule{"PassauProviders": baseRules[0]}
	resolve := func(name string) (*NormalRule, bool) {
		r, ok := catalog[name]
		return r, ok
	}
	r := MustParse(`search PassauProviders p register p where p.serverPort = 80`)
	rs, err := Normalize(r, s, resolve)
	if err != nil {
		t.Fatal(err)
	}
	nr := rs[0]
	if len(nr.Search) != 1 || nr.Search[0].Extension != "CycleProvider" {
		t.Fatalf("inlined rule bindings = %+v", nr.Search)
	}
	if len(nr.Where) != 2 {
		t.Fatalf("inlined rule predicates: %s", nr.Text())
	}
	// Unknown extension without resolver entry.
	if _, err := Normalize(MustParse(`search Mystery m register m`), s, resolve); err == nil {
		t.Error("unknown extension accepted")
	}
}

func TestCanonicalTextDeduplicatesEquivalentRules(t *testing.T) {
	s := paperSchema()
	norm := func(src string) *NormalRule {
		t.Helper()
		rs, err := Normalize(MustParse(src), s, nil)
		if err != nil {
			t.Fatal(err)
		}
		return rs[0]
	}
	// Different variable names, same rule.
	a := norm(`search CycleProvider c register c where c.serverPort = 80`)
	b := norm(`search CycleProvider x register x where x.serverPort = 80`)
	if a.CanonicalText() != b.CanonicalText() {
		t.Errorf("variable renaming not canonical:\n%s\n%s", a.CanonicalText(), b.CanonicalText())
	}
	// Different conjunct order, same rule.
	a = norm(`search CycleProvider c register c where c.serverPort = 80 and c.serverHost contains 'de'`)
	b = norm(`search CycleProvider c register c where c.serverHost contains 'de' and c.serverPort = 80`)
	if a.CanonicalText() != b.CanonicalText() {
		t.Errorf("conjunct order not canonical:\n%s\n%s", a.CanonicalText(), b.CanonicalText())
	}
	// Symmetric operator orientation.
	a = norm(`search CycleProvider c, ServerInformation s register c where c.serverInformation = s`)
	b = norm(`search CycleProvider c, ServerInformation s register c where s = c.serverInformation`)
	if a.CanonicalText() != b.CanonicalText() {
		t.Errorf("symmetric = not canonical:\n%s\n%s", a.CanonicalText(), b.CanonicalText())
	}
	// Genuinely different rules must differ.
	a = norm(`search CycleProvider c register c where c.serverPort = 80`)
	b = norm(`search CycleProvider c register c where c.serverPort = 81`)
	if a.CanonicalText() == b.CanonicalText() {
		t.Error("different rules canonicalize equal")
	}
}

func TestConstLexicalForms(t *testing.T) {
	if IntConst(42).Lexical() != "42" {
		t.Error("int lexical")
	}
	if FloatConst(2.5).Lexical() != "2.5" {
		t.Error("float lexical")
	}
	if StringConst("x").Lexical() != "x" {
		t.Error("string lexical")
	}
	if StringConst("o'b").Text() != "'o''b'" {
		t.Error("string text quoting")
	}
}

func TestOpHelpers(t *testing.T) {
	for _, o := range []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe} {
		n, ok := o.Negate()
		if !ok {
			t.Errorf("%v not negatable", o)
		}
		nn, _ := n.Negate()
		if nn != o {
			t.Errorf("double negation of %v gives %v", o, nn)
		}
	}
	if _, ok := OpContains.Negate(); ok {
		t.Error("contains negatable")
	}
	if !OpLt.Numeric() || !OpGe.Numeric() || OpEq.Numeric() || OpContains.Numeric() {
		t.Error("Numeric() misclassifies")
	}
	if OpContains.String() != "contains" || OpLe.String() != "<=" {
		t.Error("Op.String")
	}
}

func TestNormalizeNoWhere(t *testing.T) {
	s := paperSchema()
	rs, err := Normalize(MustParse(`search CycleProvider c register c`), s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || len(rs[0].Where) != 0 {
		t.Errorf("got %+v", rs)
	}
	if !strings.HasPrefix(rs[0].Text(), "search CycleProvider c register c") {
		t.Errorf("text = %s", rs[0].Text())
	}
}
