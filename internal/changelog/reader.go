package changelog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"
)

// ErrTruncated is returned by Reader.Next when the reader's position has
// been removed by TruncateBelow: the records it wanted no longer exist, so
// the consumer must re-bootstrap from a snapshot instead of tailing on.
var ErrTruncated = errors.New("changelog: position truncated below the retained log")

// ErrReaderClosed is returned by Next after the reader is closed.
var ErrReaderClosed = errors.New("changelog: reader closed")

// Reader tails the log: Next returns retained records in sequence order,
// blocking until the next one is DURABLE. The durability bound is the
// reader's safety contract — a record is surfaced only after its group
// commit fsynced it, so a consumer (a replica shipping the log) can never
// observe a torn or unfsynced record that a crash would later disown.
//
// A Reader is owned by one goroutine; Close (from any goroutine) unblocks a
// pending Next. Readers survive segment rotation and skip the sequence gaps
// Reserve creates (the returned sequences jump accordingly). If the log is
// truncated past the reader's position, Next returns ErrTruncated.
//
// Readers require a syncing policy (SyncGroup or SyncAlways): under
// SyncNone the durability watermark never advances, so Next would block
// forever.
type Reader struct {
	l    *Log
	next uint64 // next sequence wanted

	// Open segment state: segFirst identifies the segment (0 = none), f is
	// the reader's own descriptor, off the parse offset within it.
	segFirst uint64
	f        *os.File
	off      int64

	done      chan struct{}
	closeOnce sync.Once
}

// NewReader returns a reader positioned at the first retained record with
// sequence >= from.
func (l *Log) NewReader(from uint64) *Reader {
	if from == 0 {
		from = 1
	}
	return &Reader{l: l, next: from, done: make(chan struct{})}
}

// DurableSeq returns the highest sequence known fsynced (the reader bound).
func (l *Log) DurableSeq() uint64 { return l.durable.Load() }

// durableWait returns a channel closed at the next durability advance (or
// log close). Callers must re-check their condition after registering: the
// channel is obtained before the check, so no advance can slip between.
func (l *Log) durableWait() <-chan struct{} {
	l.notifyMu.Lock()
	defer l.notifyMu.Unlock()
	if l.notifyCh == nil {
		l.notifyCh = make(chan struct{})
	}
	return l.notifyCh
}

// notifyDurable wakes every waiter registered via durableWait.
func (l *Log) notifyDurable() {
	l.notifyMu.Lock()
	ch := l.notifyCh
	l.notifyCh = nil
	l.notifyMu.Unlock()
	if ch != nil {
		close(ch)
	}
}

func (l *Log) isClosed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.closed
}

// Close unblocks a pending Next and makes future calls fail. The reader's
// file handle is released by the owning goroutine inside Next (closing it
// here would race a concurrent ReadAt).
func (r *Reader) Close() {
	r.closeOnce.Do(func() { close(r.done) })
}

// Next returns the next durable record at or after the reader's position,
// blocking until one exists. It returns ErrReaderClosed after Close,
// ErrClosed when the log is closed, and ErrTruncated when the position has
// been truncated away.
func (r *Reader) Next() (uint64, []byte, error) {
	for {
		select {
		case <-r.done:
			r.release()
			return 0, nil, ErrReaderClosed
		default:
		}
		bound := r.l.durable.Load()
		if r.next > bound {
			if err := r.waitAdvance(); err != nil {
				r.release()
				return 0, nil, err
			}
			continue
		}
		// Something at or past r.next is durable. Make sure a segment that
		// can contain it is open.
		if r.f == nil {
			if err := r.openSegment(); err != nil {
				r.release()
				return 0, nil, err
			}
			continue // r.next may have advanced over a reserved gap
		}
		seq, payload, ok, err := r.parseOne(bound)
		if err != nil {
			r.release()
			return 0, nil, err
		}
		if ok {
			return seq, payload, nil
		}
	}
}

// waitAdvance blocks until the durability watermark moves, the log closes,
// or the reader is closed. The waiter channel is obtained BEFORE the
// re-checks, so an advance between a caller's check and the select cannot
// be missed.
// tailSyncGrace is how long a blocked Reader waits for a writer's own
// group commit to make an appended-but-buffered record durable before
// forcing the fsync itself. Long enough that a publish burst's WaitDurable
// keeps its group-commit batching; short enough to bound replication lag
// on records nobody waits on.
const tailSyncGrace = 5 * time.Millisecond

func (r *Reader) waitAdvance() error {
	for {
		ch := r.l.durableWait()
		if r.l.durable.Load() >= r.next {
			return nil
		}
		if r.l.isClosed() {
			return ErrClosed
		}
		// When the record the reader wants is already appended but only
		// buffered, the reader becomes a group-commit waiter of last
		// resort: it gives the writers a grace window to commit it (a
		// publish burst's own WaitDurable normally wins) and then forces
		// the fsync itself. Without this, a record appended without
		// awaiting durability (an ack, a truncation watermark) at the tail
		// of a burst would stay invisible — and unshipped to replicas —
		// until the next write happened to sync the log.
		if r.l.opts.Sync != SyncNone && r.l.LastSeq() >= r.next {
			timer := time.NewTimer(tailSyncGrace)
			select {
			case <-ch:
				timer.Stop()
				continue // re-check: the advance may cover the position now
			case <-timer.C:
				return r.l.Sync()
			case <-r.done:
				timer.Stop()
				return ErrReaderClosed
			}
		}
		select {
		case <-ch:
			return nil
		case <-r.done:
			return ErrReaderClosed
		}
	}
}

// openSegment locates and opens the segment that can contain r.next.
// Returns ErrTruncated when the position lies below the retained log.
func (r *Reader) openSegment() error {
	r.l.mu.Lock()
	if r.l.closed {
		r.l.mu.Unlock()
		return ErrClosed
	}
	segs := append([]segment(nil), r.l.segments...)
	r.l.mu.Unlock()
	if len(segs) == 0 || r.next < segs[0].first {
		return ErrTruncated
	}
	// The last segment whose first sequence is <= r.next holds the
	// position (reserved gaps start fresh segments, so a position inside a
	// gap maps to the preceding segment's end and advances from there).
	pick := 0
	for i, s := range segs {
		if s.first <= r.next {
			pick = i
		}
	}
	f, err := os.Open(segs[pick].path)
	if err != nil {
		if os.IsNotExist(err) {
			return ErrTruncated // removed between the lookup and the open
		}
		return fmt.Errorf("changelog: reader: %w", err)
	}
	r.f = f
	r.segFirst = segs[pick].first
	r.off = 0
	return nil
}

// advanceSegment is called when the open segment's flushed data is
// exhausted. If a later segment exists the reader moves to it (a rotated
// segment was completely flushed before rotation, so its end is final);
// otherwise the reader sits at the active tail and reports moved=false.
func (r *Reader) advanceSegment() (moved bool, err error) {
	r.l.mu.Lock()
	closed := r.l.closed
	var nextFirst uint64
	for _, s := range r.l.segments {
		if s.first > r.segFirst {
			nextFirst = s.first
			break
		}
	}
	r.l.mu.Unlock()
	if nextFirst == 0 {
		if closed {
			return false, ErrClosed
		}
		return false, nil
	}
	r.f.Close()
	r.f = nil
	if nextFirst > r.next {
		// The sequences between the segments were reserved, never
		// assigned: vacuously durable, no records to surface.
		r.next = nextFirst
	}
	return true, nil
}

// parseOne reads the record at the current offset. ok=false means the
// caller should loop (segment advanced, position moved, or a wait for the
// next durability advance was taken). Records below r.next — possible
// after opening a segment whose first sequence is older — are skipped
// without reading their payloads.
func (r *Reader) parseOne(bound uint64) (seq uint64, payload []byte, ok bool, err error) {
	var hdr [headerSize]byte
	n, rerr := r.f.ReadAt(hdr[:], r.off)
	if n < headerSize {
		if rerr != nil && !errors.Is(rerr, io.EOF) {
			return 0, nil, false, fmt.Errorf("changelog: reader: %w", rerr)
		}
		// End of this segment's flushed data.
		moved, aerr := r.advanceSegment()
		if aerr != nil {
			return 0, nil, false, aerr
		}
		if !moved {
			// Active segment, durable covers r.next, record not visible:
			// only a flush racing this read can cause it (the flush's write
			// completes before the durability advance). Wait for the next
			// advance instead of spinning.
			if werr := r.waitNotify(); werr != nil {
				return 0, nil, false, werr
			}
		}
		return 0, nil, false, nil
	}
	length := binary.BigEndian.Uint32(hdr[0:4])
	if length < 8 || length > MaxRecordSize {
		return 0, nil, false, fmt.Errorf("changelog: reader: corrupt record length %d near seq %d", length, r.next)
	}
	recSeq := binary.BigEndian.Uint64(hdr[8:16])
	if recSeq < r.next {
		// Pre-position record: skip without reading the payload.
		r.off += int64(headerSize) + int64(length) - 8
		return 0, nil, false, nil
	}
	if recSeq > bound {
		// The position advanced onto a record past the durability bound
		// (e.g. over a reserved gap): treat it as the new position and wait.
		r.next = recSeq
		if werr := r.waitAdvance(); werr != nil {
			return 0, nil, false, werr
		}
		return 0, nil, false, nil
	}
	payload = make([]byte, length-8)
	if _, rerr := r.f.ReadAt(payload, r.off+headerSize); rerr != nil {
		// A durable record's payload must be fully on disk; a flush racing
		// this read is the only benign cause. Wait and retry.
		if werr := r.waitNotify(); werr != nil {
			return 0, nil, false, werr
		}
		return 0, nil, false, nil
	}
	crc := crc32.Update(0, castagnoli, hdr[8:16])
	crc = crc32.Update(crc, castagnoli, payload)
	if crc != binary.BigEndian.Uint32(hdr[4:8]) {
		return 0, nil, false, fmt.Errorf("changelog: reader: CRC mismatch at seq %d (durable record corrupted)", recSeq)
	}
	r.off += int64(headerSize) + int64(len(payload))
	r.next = recSeq + 1
	return recSeq, payload, true, nil
}

// waitNotify blocks until the NEXT durability advance (or close),
// regardless of the current watermark — used when the watermark already
// covers the position but the record's bytes are not yet visible.
func (r *Reader) waitNotify() error {
	ch := r.l.durableWait()
	if r.l.isClosed() {
		return ErrClosed
	}
	select {
	case <-ch:
		return nil
	case <-r.done:
		return ErrReaderClosed
	}
}

func (r *Reader) release() {
	if r.f != nil {
		r.f.Close()
		r.f = nil
	}
}
