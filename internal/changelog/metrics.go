package changelog

import (
	"mdv/internal/metrics"
)

// logMetrics holds the instruments that need observation at write time;
// scalar counters are scraped lazily via sample functions instead, so the
// append/fsync hot path only pays for the group-commit batch histogram.
type logMetrics struct {
	// batch records how many log records each fsync made durable — the
	// group-commit amortization distribution (1 means no batching).
	batch *metrics.Histogram
}

// EnableMetrics registers the log's instruments on reg. Counters that the
// log already tracks (appends, fsyncs, truncations, segment count) are
// exported as scrape-time samples; only the group-commit batch histogram
// observes inline.
func (l *Log) EnableMetrics(reg *metrics.Registry) {
	m := &logMetrics{
		batch: reg.Histogram("mdv_changelog_group_commit_records",
			"log records made durable per fsync (group-commit batch size)",
			metrics.SizeBuckets),
	}
	l.met.Store(m)
	one := func(v func() float64) func() []metrics.Sample {
		return func() []metrics.Sample { return []metrics.Sample{{Value: v()}} }
	}
	reg.SampleFunc("mdv_changelog_appends_total",
		"records appended to the changelog", metrics.TypeCounter,
		one(func() float64 { return float64(l.appends.Load()) }))
	reg.SampleFunc("mdv_changelog_fsyncs_total",
		"fsyncs issued by the changelog (vs appends: group-commit ratio)",
		metrics.TypeCounter,
		one(func() float64 { return float64(l.syncs.Load()) }))
	reg.SampleFunc("mdv_changelog_truncated_segments_total",
		"segment files removed by ack/snapshot truncation", metrics.TypeCounter,
		one(func() float64 { return float64(l.truncated.Load()) }))
	reg.GaugeFunc("mdv_changelog_segments", "live changelog segment files",
		func() float64 {
			l.mu.Lock()
			defer l.mu.Unlock()
			return float64(len(l.segments))
		})
	reg.GaugeFunc("mdv_changelog_durable_seq",
		"highest sequence number known fsynced",
		func() float64 { return float64(l.durable.Load()) })
}

// observeBatch records one fsync's batch size (records newly durable).
func (l *Log) observeBatch(prevDurable, target uint64) {
	m := l.met.Load()
	if m == nil || target <= prevDurable {
		return
	}
	m.batch.Observe(float64(target - prevDurable))
}
