package changelog

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func collect(t *testing.T, l *Log, from uint64) map[uint64]string {
	t.Helper()
	out := map[uint64]string{}
	if err := l.Replay(from, func(seq uint64, payload []byte) error {
		out[seq] = string(payload)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestAppendReplayRoundtrip(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= 10; i++ {
		seq, err := l.Append([]byte(fmt.Sprintf("rec-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i) {
			t.Fatalf("seq = %d, want %d", seq, i)
		}
	}
	if err := l.WaitDurable(10); err != nil {
		t.Fatal(err)
	}
	got := collect(t, l, 1)
	if len(got) != 10 || got[1] != "rec-1" || got[10] != "rec-10" {
		t.Fatalf("replay = %v", got)
	}
	if got := collect(t, l, 7); len(got) != 4 {
		t.Fatalf("replay from 7 = %v", got)
	}
}

func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte("a")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.LastSeq() != 5 {
		t.Fatalf("LastSeq = %d, want 5", l.LastSeq())
	}
	seq, err := l.Append([]byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 6 {
		t.Fatalf("seq = %d, want 6", seq)
	}
}

// TestTornTailRecovered: a crash mid-write must not lose the intact prefix
// and must not poison the log.
func TestTornTailRecovered(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("keep-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last record: chop a few bytes off the tail segment.
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	tail := segs[len(segs)-1].path
	// The file extends past the data (segments are preallocated), so find
	// the end of the record data and chop into the last record from there.
	end, err := scanSegment(tail, segs[len(segs)-1].first, func(uint64, []byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(tail, end-3); err != nil {
		t.Fatal(err)
	}

	l, err = Open(dir, Options{})
	if err != nil {
		t.Fatalf("open after torn write: %v", err)
	}
	defer l.Close()
	got := collect(t, l, 1)
	if len(got) != 2 || got[2] != "keep-2" {
		t.Fatalf("recovered records = %v", got)
	}
	// The torn sequence is reused: record 3 was never durable.
	seq, err := l.Append([]byte("new-3"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 3 {
		t.Fatalf("seq after torn recovery = %d, want 3", seq)
	}
}

// TestCorruptedRecordStopsReplayAtPrefix: a flipped byte invalidates the
// CRC; Open keeps only the intact prefix.
func TestCorruptedRecordStopsReplayAtPrefix(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var offsets []int64
	var off int64
	for i := 1; i <= 3; i++ {
		payload := fmt.Sprintf("rec-%d", i)
		offsets = append(offsets, off)
		off += headerSize + int64(len(payload))
		if _, err := l.Append([]byte(payload)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	tail := segs[len(segs)-1].path
	f, err := os.OpenFile(tail, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of record 2.
	if _, err := f.WriteAt([]byte{'X'}, offsets[1]+headerSize); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	got := collect(t, l, 1)
	if len(got) != 1 || got[1] != "rec-1" {
		t.Fatalf("recovered records = %v", got)
	}
}

func TestRotationAndTruncation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentSize: 64, Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("record-number-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.mu.Lock()
	nsegs := len(l.segments)
	l.mu.Unlock()
	if nsegs < 3 {
		t.Fatalf("segments = %d, want several", nsegs)
	}
	// Everything replayable before truncation.
	if got := collect(t, l, 1); len(got) != 20 {
		t.Fatalf("replay = %d records", len(got))
	}
	removed, err := l.TruncateBelow(11)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("no segments truncated")
	}
	if l.OldestSeq() > 11 {
		t.Fatalf("OldestSeq = %d; truncation removed live records", l.OldestSeq())
	}
	got := collect(t, l, 11)
	for i := uint64(11); i <= 20; i++ {
		if _, ok := got[i]; !ok {
			t.Fatalf("record %d lost by truncation (have %v)", i, got)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen after truncation: sequence continues, old segments gone.
	l, err = Open(dir, Options{SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.LastSeq() != 20 {
		t.Fatalf("LastSeq after reopen = %d", l.LastSeq())
	}
	files, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"))
	if len(files) >= nsegs {
		t.Fatalf("segment files = %d, want fewer than %d", len(files), nsegs)
	}
}

// TestConcurrentGroupCommit: concurrent appenders must each get a unique
// sequence and observe durability; run with -race.
func TestConcurrentGroupCommit(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				seq, err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i)))
				if err == nil {
					err = l.WaitDurable(seq)
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := collect(t, l, 1); len(got) != writers*perWriter {
		t.Fatalf("replayed %d records, want %d", len(got), writers*perWriter)
	}
}

// TestReserveSkipsSequences: Reserve raises the next sequence past an
// externally-covered range, the reservation survives reopen, and replay
// simply never sees the skipped numbers.
func TestReserveSkipsSequences(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := l.Append([]byte("a")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Reserve(10); err != nil {
		t.Fatal(err)
	}
	if got := l.LastSeq(); got != 10 {
		t.Fatalf("LastSeq after Reserve = %d, want 10", got)
	}
	if err := l.WaitDurable(10); err != nil { // vacuously durable
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// The reservation must hold across reopen even though nothing was
	// appended after it.
	l, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got := l.LastSeq(); got != 10 {
		t.Fatalf("LastSeq after reopen = %d, want 10", got)
	}
	seq, err := l.Append([]byte("post"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 11 {
		t.Fatalf("seq after reserved reopen = %d, want 11", seq)
	}
	got := collect(t, l, 1)
	if len(got) != 3 || got[1] != "a" || got[2] != "a" || got[11] != "post" {
		t.Fatalf("replay = %v, want seqs 1, 2, 11", got)
	}

	// Reserving below the current sequence is a no-op.
	if err := l.Reserve(3); err != nil {
		t.Fatal(err)
	}
	if got := l.LastSeq(); got != 11 {
		t.Fatalf("LastSeq after low Reserve = %d, want 11", got)
	}
}
