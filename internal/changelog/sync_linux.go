//go:build linux

package changelog

import (
	"os"
	"syscall"
)

// datasync flushes a file's data and only the metadata needed to read it
// back (fdatasync): timestamps and other inode bookkeeping skip the
// journal commit a full fsync pays on every call. Preallocating segments
// was measured too and rejected — on ext4, appends into fallocated
// (unwritten) extents force an extent-conversion journal commit per sync,
// costing more than the size updates preallocation avoids.
func datasync(f *os.File) error {
	return syscall.Fdatasync(int(f.Fd()))
}
