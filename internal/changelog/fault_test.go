package changelog

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// TestSyncFaultIsStickyAndRecoverable: an injected fsync failure poisons
// the log exactly like a real disk error — the failing WaitDurable reports
// it, subsequent appends refuse — and a reopen (the hook cleared, as after
// an operator replaces the disk) recovers every record that was durable
// before the fault, after which appends continue the sequence.
func TestSyncFaultIsStickyAndRecoverable(t *testing.T) {
	dir := t.TempDir()
	var fail atomic.Bool
	l, err := Open(dir, Options{SyncFault: func() error {
		if fail.Load() {
			return errors.New("injected: fsync lost")
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("pre-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.WaitDurable(5); err != nil {
		t.Fatal(err)
	}

	fail.Store(true)
	seq, err := l.Append([]byte("doomed"))
	if err != nil {
		t.Fatal(err) // Append only buffers; the fault hits at fsync time
	}
	if err := l.WaitDurable(seq); err == nil {
		t.Fatal("WaitDurable succeeded through a failing fsync")
	}
	// The failure is sticky: the log refuses further writes rather than
	// silently dropping durability.
	if _, err := l.Append([]byte("after-failure")); err == nil {
		t.Fatal("Append succeeded on a failed log")
	}
	if err := l.Sync(); err == nil {
		t.Fatal("Sync succeeded on a failed log")
	}
	l.Close()

	// Reopen without the fault: the durable prefix survives intact.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := collect(t, l2, 1)
	for i := uint64(1); i <= 5; i++ {
		if got[i] != fmt.Sprintf("pre-%d", i) {
			t.Fatalf("record %d = %q after recovery", i, got[i])
		}
	}
	if next, err := l2.Append([]byte("resumed")); err != nil {
		t.Fatal(err)
	} else if next <= 5 {
		t.Fatalf("post-recovery append got seq %d, want > 5", next)
	}
	if err := l2.WaitDurable(l2.LastSeq()); err != nil {
		t.Fatal(err)
	}
}

// TestTornFinalRecordRecovery: tearing the final record at every
// interesting offset — nothing left, a partial length prefix, a torn
// header, a torn payload, all-but-one-byte — leaves a log that reopens
// cleanly with exactly the preceding records, and the torn sequence number
// is reassigned to the next append (the record never became durable, so
// its number was never promised to anyone).
func TestTornFinalRecordRecovery(t *testing.T) {
	for _, keep := range []int64{0, 3, headerSize - 1, headerSize + 2, -1} {
		name := fmt.Sprintf("keep=%d", keep)
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			const n = 6
			for i := 1; i <= n; i++ {
				if _, err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}

			k := keep
			if k == -1 { // all but one byte of the record
				k = headerSize + int64(len("rec-6")) - 1
			}
			torn, err := TearFinalRecord(dir, k)
			if err != nil {
				t.Fatal(err)
			}
			if torn != n {
				t.Fatalf("tore record %d, want %d", torn, n)
			}

			l2, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			if l2.LastSeq() != n-1 {
				t.Fatalf("LastSeq after tear = %d, want %d", l2.LastSeq(), n-1)
			}
			got := collect(t, l2, 1)
			if len(got) != n-1 {
				t.Fatalf("recovered %d records, want %d: %v", len(got), n-1, got)
			}
			for i := uint64(1); i < n; i++ {
				if got[i] != fmt.Sprintf("rec-%d", i) {
					t.Fatalf("record %d = %q", i, got[i])
				}
			}
			seq, err := l2.Append([]byte("replacement"))
			if err != nil {
				t.Fatal(err)
			}
			if seq != n {
				t.Fatalf("replacement seq = %d, want %d (torn number reassigned)", seq, n)
			}
			if err := l2.WaitDurable(seq); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestTearFinalRecordAcrossRotation: with multiple segments on disk the
// helper tears the record at the true tail, and recovery keeps every
// record in the fully-fsynced older segments.
func TestTearFinalRecordAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentSize: 40})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("rot-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	torn, err := TearFinalRecord(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if torn != 5 {
		t.Fatalf("tore record %d, want 5", torn)
	}
	l2, err := Open(dir, Options{SegmentSize: 40})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastSeq() != 4 {
		t.Fatalf("LastSeq = %d, want 4", l2.LastSeq())
	}
	got := collect(t, l2, 1)
	if len(got) != 4 || got[1] != "rot-1" || got[4] != "rot-4" {
		t.Fatalf("recovered records = %v", got)
	}
}

// TestResetRestartsNumbering: Reset wipes every retained record, restarts
// the sequence just past the requested coverage, and clears a sticky
// failure — the divergent-tail repair path a demoted primary runs before
// re-bootstrapping from the new primary's snapshot.
func TestResetRestartsNumbering(t *testing.T) {
	dir := t.TempDir()
	var fail atomic.Bool
	l, err := Open(dir, Options{SegmentSize: 64, SyncFault: func() error {
		if fail.Load() {
			return errors.New("injected")
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= 8; i++ {
		if _, err := l.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.WaitDurable(8); err != nil {
		t.Fatal(err)
	}
	// Poison the log, then Reset: repair must clear the sticky failure.
	fail.Store(true)
	if _, err := l.Append([]byte("y")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err == nil {
		t.Fatal("Sync succeeded through the fault")
	}
	fail.Store(false)

	if err := l.Reset(5); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, l, 1); len(got) != 0 {
		t.Fatalf("records survived Reset: %v", got)
	}
	if l.LastSeq() != 5 || l.OldestSeq() != 6 || l.DurableSeq() != 5 {
		t.Fatalf("after Reset(5): last=%d oldest=%d durable=%d", l.LastSeq(), l.OldestSeq(), l.DurableSeq())
	}
	seq, err := l.Append([]byte("fresh"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 6 {
		t.Fatalf("post-reset seq = %d, want 6", seq)
	}
	if err := l.WaitDurable(6); err != nil {
		t.Fatal(err)
	}
}
