// Package changelog implements MDV's durable write-ahead publish log: an
// append-only, segment-based, CRC-checked record log with monotonic
// sequence numbers. A Metadata Provider logs every input operation before
// applying it (crash recovery replays the tail after the latest snapshot)
// and logs every published changeset after applying it (a reconnecting LMR
// resumes by replaying the publish records past its acknowledged sequence).
//
// Durability model: Append only buffers a record; WaitDurable makes it
// (and everything appended before it) crash-safe. WaitDurable implements
// group commit with a leader/follower gate: the first waiter flushes and
// fsyncs on behalf of everyone queued behind it, so N concurrent
// registrations amortize one fsync instead of paying N.
//
// On-disk format, per record:
//
//	[4B big-endian length of seq+payload] [4B CRC-32C of seq+payload]
//	[8B big-endian sequence number] [payload]
//
// Segments are files named wal-<first-seq>.seg. Only the tail segment can
// ever be torn (older segments are flushed and fsynced before rotation);
// Open scans the tail and truncates it at the last intact record, which
// makes recovery safe against kill -9 mid-write. TruncateBelow removes
// whole segments once every record in them is both covered by a snapshot
// and acknowledged by all subscribers.
package changelog

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SyncPolicy selects how WaitDurable provides durability.
type SyncPolicy int

const (
	// SyncGroup (default) buffers appends and batches fsyncs across
	// concurrent waiters (group commit).
	SyncGroup SyncPolicy = iota
	// SyncAlways flushes and fsyncs inside every Append (one fsync per
	// record; the baseline group commit is measured against).
	SyncAlways
	// SyncNone never fsyncs (flushes happen on rotation, replay, and
	// close). For tests and ablation benchmarks only.
	SyncNone
)

// Options tune a log.
type Options struct {
	// SegmentSize rotates to a new segment file once the active one
	// reaches this many bytes (default 64 MiB).
	SegmentSize int64
	// Sync selects the durability policy (default SyncGroup).
	Sync SyncPolicy
	// Busy, if set, reports whether more commits are imminent (e.g. the
	// caller has operations mid-flight that will append soon). A group
	// commit leader polls it before fsyncing and delays up to GroupWindow
	// while it returns true, so the imminent appends share the fsync
	// instead of each paying their own.
	Busy func() bool
	// GroupWindow bounds how long a group commit leader will delay its
	// fsync while Busy reports more work coming. Zero disables the delay
	// (the leader syncs immediately); ignored when Busy is nil.
	GroupWindow time.Duration
	// SyncFault is a fault-injection hook for recovery testing: when set,
	// it runs before every physical fsync, and a non-nil return is treated
	// as the fsync having failed (the error is sticky, exactly like a real
	// I/O failure). Must be safe for concurrent calls. Never set outside
	// tests.
	SyncFault func() error
}

const (
	defaultSegmentSize = 64 << 20
	headerSize         = 16
	segPrefix          = "wal-"
	segSuffix          = ".seg"
	// MaxRecordSize bounds one record's payload; a corrupt length prefix
	// must not make recovery allocate unboundedly.
	MaxRecordSize = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned for operations on a closed log.
var ErrClosed = errors.New("changelog: log is closed")

type segment struct {
	path  string
	first uint64 // sequence number of the segment's first record
}

// Log is one append-only changelog.
type Log struct {
	dir  string
	opts Options

	// mu guards the active file, buffer, counters, and segment list.
	mu       sync.Mutex
	f        *os.File
	w        *bufio.Writer
	size     int64
	nextSeq  uint64
	written  uint64 // highest sequence appended to the buffer
	segments []segment
	failed   error // sticky I/O failure: the log refuses further writes
	closed   bool
	// obsolete holds rotated-out segment files. Rotation does not close
	// them: a group-commit leader may be fsyncing the rotated file outside
	// mu at that moment. They are closed by the next leader, Sync, or Close.
	obsolete []*os.File

	// syncMu is the group-commit gate: the first WaitDurable caller to
	// acquire it becomes the fsync leader for everyone queued behind. The
	// leader fsyncs OUTSIDE mu, so appends (and the operations behind them)
	// pipeline with the disk wait instead of queuing on it.
	syncMu  sync.Mutex
	durable atomic.Uint64 // highest sequence known fsynced
	syncs   atomic.Uint64 // fsyncs issued (observability: group commit ratio)

	appends   atomic.Uint64 // records appended (observability)
	truncated atomic.Uint64 // segment files removed by TruncateBelow
	met       atomic.Pointer[logMetrics]

	// notifyMu/notifyCh broadcast durability advances (and close) to
	// tailing Readers: each advance closes and replaces the channel.
	notifyMu sync.Mutex
	notifyCh chan struct{}
}

// SyncCount returns how many fsyncs the log has issued. Against the number
// of operations committed it gives the group-commit amortization ratio.
func (l *Log) SyncCount() uint64 { return l.syncs.Load() }

// doSync runs the fault-injection hook (if any) and then fsyncs f.
func (l *Log) doSync(f *os.File) error {
	if l.opts.SyncFault != nil {
		if err := l.opts.SyncFault(); err != nil {
			return err
		}
	}
	return datasync(f)
}

// advanceDurable raises the durability watermark to seq (never lowers it)
// and wakes tailing Readers blocked on the advance.
func (l *Log) advanceDurable(seq uint64) {
	for {
		cur := l.durable.Load()
		if seq <= cur {
			return
		}
		if l.durable.CompareAndSwap(cur, seq) {
			l.notifyDurable()
			return
		}
	}
}

// Open opens (or creates) the log in dir, recovering the tail segment from
// torn writes. The next append continues the sequence after the last
// intact record.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = defaultSegmentSize
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("changelog: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, segments: segs, nextSeq: 1}
	if len(segs) == 0 {
		if err := l.createSegment(1); err != nil {
			return nil, err
		}
		return l, nil
	}
	// Scan the tail segment: find the last intact record and truncate any
	// torn bytes behind it.
	tail := segs[len(segs)-1]
	lastSeq := tail.first - 1
	end, err := scanSegment(tail.path, tail.first, func(seq uint64, _ []byte) error {
		lastSeq = seq
		return nil
	})
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(tail.path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("changelog: %w", err)
	}
	if fi, err := f.Stat(); err != nil {
		f.Close()
		return nil, fmt.Errorf("changelog: %w", err)
	} else if fi.Size() > end {
		if err := f.Truncate(end); err != nil {
			f.Close()
			return nil, fmt.Errorf("changelog: truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("changelog: %w", err)
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	l.size = end
	l.nextSeq = lastSeq + 1
	l.durable.Store(lastSeq)
	l.written = lastSeq
	return l, nil
}

// listSegments returns the directory's segments sorted by first sequence.
func listSegments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("changelog: %w", err)
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		numeric := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		first, err := strconv.ParseUint(numeric, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("changelog: malformed segment name %q", name)
		}
		segs = append(segs, segment{path: filepath.Join(dir, name), first: first})
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a].first < segs[b].first })
	return segs, nil
}

func segmentName(first uint64) string {
	return fmt.Sprintf("%s%020d%s", segPrefix, first, segSuffix)
}

// scanSegment reads records sequentially, calling fn for each intact one,
// and returns the offset just past the last intact record. A torn tail
// (short read or CRC mismatch at the end) terminates the scan cleanly; the
// caller decides whether to truncate.
func scanSegment(path string, firstSeq uint64, fn func(seq uint64, payload []byte) error) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("changelog: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	var offset int64
	expect := firstSeq
	for {
		var hdr [headerSize]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return offset, nil // clean EOF or torn header: end of intact data
		}
		n := binary.BigEndian.Uint32(hdr[0:4])
		if n < 8 || n > MaxRecordSize {
			return offset, nil // corrupt length: treat as torn tail
		}
		payload := make([]byte, n-8)
		if _, err := io.ReadFull(r, payload); err != nil {
			return offset, nil // torn payload
		}
		crc := crc32.Update(0, castagnoli, hdr[8:16])
		crc = crc32.Update(crc, castagnoli, payload)
		if crc != binary.BigEndian.Uint32(hdr[4:8]) {
			return offset, nil // corrupt record: end of intact prefix
		}
		seq := binary.BigEndian.Uint64(hdr[8:16])
		if seq != expect {
			return offset, fmt.Errorf("changelog: %s: sequence gap: want %d, found %d", path, expect, seq)
		}
		if err := fn(seq, payload); err != nil {
			return offset, err
		}
		offset += int64(headerSize) + int64(len(payload))
		expect = seq + 1
	}
}

// createSegment starts a fresh segment whose first record will carry seq.
// The directory entry is fsynced so the new file itself survives a crash.
// Caller must hold mu (or be initializing).
func (l *Log) createSegment(seq uint64) error {
	path := filepath.Join(l.dir, segmentName(seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("changelog: %w", err)
	}
	syncDir(l.dir)
	l.f = f
	l.w = bufio.NewWriter(f)
	l.size = 0
	l.segments = append(l.segments, segment{path: path, first: seq})
	return nil
}

// syncDir fsyncs a directory so entries for newly created segment files are
// durable. Best-effort: some platforms cannot fsync directories.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// rotate flushes and fsyncs the active segment, then starts a new one. The
// old file is parked on the obsolete list instead of being closed: a group
// commit leader may be fsyncing it outside mu right now. Caller must hold
// mu.
func (l *Log) rotate() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	if l.opts.Sync != SyncNone {
		l.syncs.Add(1)
		if err := l.doSync(l.f); err != nil {
			return err
		}
		// The whole segment (every record below nextSeq) is on disk now.
		l.advanceDurable(l.written)
	}
	l.obsolete = append(l.obsolete, l.f)
	return l.createSegment(l.nextSeq)
}

// closeObsolete closes rotated-out files the caller has taken off the
// shared list (under mu).
func closeObsolete(files []*os.File) {
	for _, f := range files {
		f.Close()
	}
}

// Append assigns the next sequence number and buffers one record. The
// record is not crash-safe until WaitDurable(seq) returns (SyncAlways
// excepted, which fsyncs inline).
func (l *Log) Append(payload []byte) (uint64, error) {
	if len(payload) > MaxRecordSize-8 {
		return 0, fmt.Errorf("changelog: record of %d bytes exceeds limit", len(payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.failed != nil {
		return 0, l.failed
	}
	seq := l.nextSeq
	var hdr [headerSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(8+len(payload)))
	binary.BigEndian.PutUint64(hdr[8:16], seq)
	crc := crc32.Update(0, castagnoli, hdr[8:16])
	crc = crc32.Update(crc, castagnoli, payload)
	binary.BigEndian.PutUint32(hdr[4:8], crc)
	if _, err := l.w.Write(hdr[:]); err != nil {
		l.failed = err
		return 0, err
	}
	if _, err := l.w.Write(payload); err != nil {
		l.failed = err
		return 0, err
	}
	l.nextSeq++
	l.written = seq
	l.appends.Add(1)
	l.size += int64(headerSize) + int64(len(payload))
	if l.opts.Sync == SyncAlways {
		if err := l.w.Flush(); err != nil {
			l.failed = err
			return 0, err
		}
		l.syncs.Add(1)
		if err := l.doSync(l.f); err != nil {
			l.failed = err
			return 0, err
		}
		prev := l.durable.Load()
		l.advanceDurable(seq)
		l.observeBatch(prev, seq)
	}
	if l.size >= l.opts.SegmentSize {
		if err := l.rotate(); err != nil {
			l.failed = err
			return 0, err
		}
	}
	// Wake tailing Readers blocked at the old tail: a Reader that finds
	// this record appended but not durable gives the group commit a grace
	// window and then forces the fsync itself (see Reader.waitAdvance), so
	// a record appended without a WaitDurable caller behind it cannot stay
	// unstreamed indefinitely.
	l.notifyDurable()
	return seq, nil
}

// WaitDurable blocks until the record with the given sequence number (and
// every record appended before it) is flushed and fsynced. Concurrent
// callers share one fsync: the first to arrive becomes the leader and
// syncs everything buffered so far, the rest observe the advanced
// durability watermark and return immediately (group commit). The leader
// fsyncs without holding mu, so new appends proceed during the disk wait
// and queue up for the next commit.
func (l *Log) WaitDurable(seq uint64) error {
	switch l.opts.Sync {
	case SyncAlways, SyncNone:
		l.mu.Lock()
		err := l.failed
		l.mu.Unlock()
		return err
	}
	if l.durable.Load() >= seq {
		return nil
	}
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if l.durable.Load() >= seq {
		return nil
	}
	// Commit window: while the caller signals more commits in flight, hold
	// the fsync briefly so they land in this one. On a single disk the
	// fsync is the scarce resource; trading bounded latency for fewer
	// fsyncs is what makes group commit amortize under load.
	// Poll with exponentially growing sleeps: a caller that drains quickly
	// is detected within ~50µs, while a saturated caller costs only a
	// handful of timer wakeups per window (each wakeup preempts real work
	// on a small machine).
	if l.opts.Busy != nil && l.opts.GroupWindow > 0 {
		deadline := time.Now().Add(l.opts.GroupWindow)
		for nap := 50 * time.Microsecond; l.opts.Busy(); nap *= 2 {
			if remain := time.Until(deadline); remain <= 0 {
				break
			} else if nap > remain {
				nap = remain
			}
			time.Sleep(nap)
		}
	}
	l.mu.Lock()
	if l.failed != nil {
		err := l.failed
		l.mu.Unlock()
		return err
	}
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	// Everything at or below target is either in f after this flush, or in
	// an earlier segment that rotation already fsynced — so one fsync of f
	// makes target durable.
	target := l.written
	f := l.f
	obsolete := l.obsolete
	l.obsolete = nil
	if err := l.w.Flush(); err != nil {
		l.failed = err
		l.mu.Unlock()
		return err
	}
	l.mu.Unlock()

	l.syncs.Add(1)
	err := l.doSync(f)
	closeObsolete(obsolete)
	if err != nil {
		l.mu.Lock()
		l.failed = err
		l.mu.Unlock()
		return err
	}
	prev := l.durable.Load()
	l.advanceDurable(target)
	l.observeBatch(prev, target)
	return nil
}

// Sync forces a flush (and fsync unless SyncNone) of everything buffered.
// It takes the group-commit gate first: only a gate holder may close
// obsolete files, and the gate orders this fsync with leader fsyncs.
func (l *Log) Sync() error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.failed != nil {
		return l.failed
	}
	if err := l.w.Flush(); err != nil {
		l.failed = err
		return err
	}
	closeObsolete(l.obsolete)
	l.obsolete = nil
	if l.opts.Sync == SyncNone {
		return nil
	}
	l.syncs.Add(1)
	if err := l.doSync(l.f); err != nil {
		l.failed = err
		return err
	}
	prev := l.durable.Load()
	l.advanceDurable(l.written)
	l.observeBatch(prev, l.written)
	return nil
}

// Reserve guarantees that the next appended record is assigned a sequence
// strictly greater than seq. Callers use it when external state (a
// snapshot) claims coverage up to seq but the log's unsynced tail died in
// a crash: recovery skips everything at or below the covered sequence, so
// a new record reusing a lost number would be invisible to replay. The
// reservation starts a fresh segment (whose file name encodes its first
// sequence) so it survives reopen even before anything is appended.
func (l *Log) Reserve(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.failed != nil {
		return l.failed
	}
	if seq < l.nextSeq {
		return nil
	}
	l.nextSeq = seq + 1
	l.written = seq
	if err := l.rotate(); err != nil {
		l.failed = err
		return err
	}
	l.advanceDurable(seq) // the skipped sequences are vacuously durable
	return nil
}

// Reset discards every retained record and restarts the log so the next
// append is assigned seq+1, as if the log had been created fresh after a
// snapshot covering seq. It exists for divergent-tail repair: a demoted
// ex-primary whose unreplicated tail conflicts with the new primary's
// history must drop its local records wholesale and rebuild from a shipped
// snapshot, because the byte-identical-prefix invariant forbids keeping
// records the new epoch never saw. The caller must have quiesced readers
// (no follower streams, no in-flight Replay); Reset also clears a sticky
// I/O failure, since the failed bytes are being discarded anyway.
func (l *Log) Reset(seq uint64) error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.w.Flush() // best effort: the bytes are about to be deleted
	closeObsolete(l.obsolete)
	l.obsolete = nil
	l.f.Close()
	for _, s := range l.segments {
		if err := os.Remove(s.path); err != nil {
			l.failed = fmt.Errorf("changelog: reset: %w", err)
			return l.failed
		}
	}
	l.segments = nil
	syncDir(l.dir)
	l.failed = nil
	l.nextSeq = seq + 1
	l.written = seq
	if err := l.createSegment(seq + 1); err != nil {
		l.failed = err
		return err
	}
	// The watermark may move DOWN here (the discarded tail was durable);
	// that is correct — those sequences no longer exist locally and will be
	// re-streamed by the new primary. Holding both locks excludes every
	// concurrent sync, so a plain store is safe.
	l.durable.Store(seq)
	l.notifyDurable()
	return nil
}

// LastSeq returns the highest sequence number appended (0 if none).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq - 1
}

// OldestSeq returns the lowest sequence number still retained. For an
// empty log it equals the next sequence to be assigned.
func (l *Log) OldestSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segments[0].first
}

// Replay calls fn for every retained record with sequence >= from, in
// order. Records appended but not yet flushed are flushed first so the
// scan observes them.
func (l *Log) Replay(from uint64, fn func(seq uint64, payload []byte) error) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if err := l.w.Flush(); err != nil {
		l.failed = err
		l.mu.Unlock()
		return err
	}
	segs := append([]segment(nil), l.segments...)
	l.mu.Unlock()
	for i, s := range segs {
		if i+1 < len(segs) && segs[i+1].first <= from {
			continue // segment lies entirely below from
		}
		_, err := scanSegment(s.path, s.first, func(seq uint64, payload []byte) error {
			if seq < from {
				return nil
			}
			return fn(seq, payload)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// TruncateBelow removes segments whose records all have sequence numbers
// strictly below seq. The active segment is never removed. Returns the
// number of segments deleted.
func (l *Log) TruncateBelow(seq uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	removed := 0
	for len(l.segments) > 1 && l.segments[1].first <= seq {
		if err := os.Remove(l.segments[0].path); err != nil {
			return removed, fmt.Errorf("changelog: truncate: %w", err)
		}
		l.segments = l.segments[1:]
		removed++
	}
	l.truncated.Add(uint64(removed))
	return removed, nil
}

// TearFinalRecord is a fault-injection helper for recovery testing: it
// truncates the tail segment of a CLOSED log directory so that only keep
// bytes of the final record remain, simulating a crash mid-write (keep=0
// tears the whole record off; a keep inside the 16-byte header or the
// payload leaves a torn prefix that recovery must detect by length/CRC).
// Returns the sequence number of the record that was torn.
func TearFinalRecord(dir string, keep int64) (uint64, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return 0, err
	}
	if len(segs) == 0 {
		return 0, errors.New("changelog: tear: no segments")
	}
	// The final record lives in the last segment that has any records
	// (reservations can leave empty segments behind the tail).
	for i := len(segs) - 1; i >= 0; i-- {
		tail := segs[i]
		var start, off int64 // start offset of the last record seen
		var lastSeq uint64
		var found bool
		_, err := scanSegment(tail.path, tail.first, func(seq uint64, payload []byte) error {
			start = off
			off += int64(headerSize) + int64(len(payload))
			lastSeq = seq
			found = true
			return nil
		})
		if err != nil {
			return 0, err
		}
		if !found {
			continue
		}
		if keep < 0 {
			keep = 0
		}
		if recSize := off - start; keep >= recSize {
			return 0, fmt.Errorf("changelog: tear: keep %d >= record size %d", keep, recSize)
		}
		if err := os.Truncate(tail.path, start+keep); err != nil {
			return 0, fmt.Errorf("changelog: tear: %w", err)
		}
		return lastSeq, nil
	}
	return 0, errors.New("changelog: tear: log holds no records")
}

// Close flushes, fsyncs, and closes the log.
func (l *Log) Close() error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	l.notifyDurable() // wake tailing Readers so they observe the close
	err := l.w.Flush()
	if err == nil && l.opts.Sync != SyncNone {
		err = l.doSync(l.f)
	}
	closeObsolete(l.obsolete)
	l.obsolete = nil
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}
