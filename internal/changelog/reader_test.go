package changelog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestReaderAppenderRace is the reader/appender boundary test: concurrent
// appenders drive group commits while a tailing Reader consumes the log.
// The reader must observe every record exactly once, in sequence order,
// with intact payloads, and must never surface a record beyond the
// durability watermark (i.e. a torn or unfsynced one). Run with -race.
func TestReaderAppenderRace(t *testing.T) {
	l, err := Open(t.TempDir(), Options{SegmentSize: 4 << 10}) // force rotations
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const (
		appenders  = 4
		perWorker  = 200
		totalCount = appenders * perWorker
	)

	var (
		mu       sync.Mutex
		appended = make(map[uint64][]byte, totalCount)
	)

	received := make(map[uint64][]byte, totalCount)
	readerDone := make(chan error, 1)
	r := l.NewReader(1)
	go func() {
		defer r.Close()
		var prev uint64
		for len(received) < totalCount {
			seq, payload, err := r.Next()
			if err != nil {
				readerDone <- err
				return
			}
			if seq <= prev {
				readerDone <- fmt.Errorf("out of order: seq %d after %d", seq, prev)
				return
			}
			// The durability bound is the contract under test: a surfaced
			// record must already be fsynced. durable only grows, so
			// checking after Next returns is sound.
			if d := l.DurableSeq(); seq > d {
				readerDone <- fmt.Errorf("seq %d surfaced beyond durable watermark %d", seq, d)
				return
			}
			prev = seq
			received[seq] = payload
		}
		readerDone <- nil
	}()

	var wg sync.WaitGroup
	for w := 0; w < appenders; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				payload := make([]byte, 16+i%97)
				binary.BigEndian.PutUint64(payload[0:8], uint64(w))
				binary.BigEndian.PutUint64(payload[8:16], uint64(i))
				seq, err := l.Append(payload)
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				if err := l.WaitDurable(seq); err != nil {
					t.Errorf("wait durable: %v", err)
					return
				}
				mu.Lock()
				appended[seq] = payload
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	select {
	case err := <-readerDone:
		if err != nil {
			t.Fatalf("reader: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("reader did not drain the log")
	}

	if len(received) != totalCount {
		t.Fatalf("received %d records, want %d", len(received), totalCount)
	}
	for seq, want := range appended {
		got, ok := received[seq]
		if !ok {
			t.Fatalf("seq %d never surfaced", seq)
		}
		if string(got) != string(want) {
			t.Fatalf("seq %d payload mismatch", seq)
		}
	}
}

// TestReaderSkipsReservedGap verifies a tailing reader jumps cleanly over
// sequences consumed by Reserve (which starts a fresh segment) instead of
// blocking on records that will never exist.
func TestReaderSkipsReservedGap(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	for i := 0; i < 3; i++ {
		if _, err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Reserve(10); err != nil {
		t.Fatal(err)
	}
	seq, err := l.Append([]byte("after-gap"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 11 {
		t.Fatalf("post-reserve seq = %d, want 11", seq)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}

	r := l.NewReader(1)
	defer r.Close()
	var got []uint64
	for len(got) < 4 {
		seq, _, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, seq)
	}
	want := []uint64{1, 2, 3, 11}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequences = %v, want %v", got, want)
		}
	}
}

// TestReaderMidSegmentStart verifies a reader positioned inside a segment
// skips the earlier records without surfacing them.
func TestReaderMidSegmentStart(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= 5; i++ {
		if _, err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	r := l.NewReader(4)
	defer r.Close()
	seq, payload, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 4 || payload[0] != 4 {
		t.Fatalf("got seq %d payload %v, want seq 4", seq, payload)
	}
}

// TestReaderTruncated verifies a reader whose position was removed by
// TruncateBelow reports ErrTruncated (the consumer must re-bootstrap).
func TestReaderTruncated(t *testing.T) {
	l, err := Open(t.TempDir(), Options{SegmentSize: 64}) // rotate nearly every record
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var last uint64
	for i := 0; i < 10; i++ {
		if last, err = l.Append(make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.TruncateBelow(last); err != nil {
		t.Fatal(err)
	}
	if l.OldestSeq() <= 1 {
		t.Fatal("test needs truncation to have removed seq 1")
	}
	r := l.NewReader(1)
	defer r.Close()
	if _, _, err := r.Next(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Next = %v, want ErrTruncated", err)
	}
}

// TestReaderCloseUnblocks verifies Close (reader- and log-side) wakes a
// Next blocked at the durable tail.
func TestReaderCloseUnblocks(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	r := l.NewReader(1)
	errc := make(chan error, 1)
	go func() {
		_, _, err := r.Next()
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	r.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrReaderClosed) {
			t.Fatalf("Next = %v, want ErrReaderClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reader Close did not unblock Next")
	}

	r2 := l.NewReader(1)
	defer r2.Close()
	go func() {
		_, _, err := r2.Next()
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Next = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("log Close did not unblock Next")
	}
}

// TestReaderWaitsForDurability verifies the reader's durability contract
// under SyncGroup: a record is surfaced only once it is durable. An
// appended-but-unsynced record at the tail does not make the reader wait
// for an unrelated writer — the reader forces the group commit itself —
// but by the time Next returns, the record must be fsynced.
func TestReaderWaitsForDurability(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Sync: SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	seq, err := l.Append([]byte("pending"))
	if err != nil {
		t.Fatal(err)
	}
	if l.DurableSeq() >= seq {
		t.Fatalf("append alone made seq %d durable under SyncGroup", seq)
	}
	r := l.NewReader(1)
	defer r.Close()
	got := make(chan uint64, 1)
	go func() {
		s, _, err := r.Next()
		if err != nil {
			t.Errorf("Next: %v", err)
			close(got)
			return
		}
		got <- s
	}()
	select {
	case s := <-got:
		if s != seq {
			t.Fatalf("got seq %d, want %d", s, seq)
		}
		if l.DurableSeq() < seq {
			t.Fatalf("reader surfaced seq %d while DurableSeq is %d", s, l.DurableSeq())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reader did not force the pending record's group commit")
	}
	if err := l.WaitDurable(seq); err != nil {
		t.Fatal(err)
	}
}
