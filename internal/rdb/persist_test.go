package rdb

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func populated(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	tbl := mustTable(t, db, testDef())
	if _, err := db.CreateIndex(IndexDef{Name: "idx_mem", Table: "providers", Columns: []string{"memory"}, Kind: IndexBTree}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex(IndexDef{Name: "idx_host", Table: "providers", Columns: []string{"host"}, Kind: IndexHash}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := tbl.Insert(Row{NewInt(int64(i)), NewText("host" + string(rune('a'+i%5))), NewInt(int64(i * 8)), NewFloat(float64(i) / 3)}); err != nil {
			t.Fatal(err)
		}
	}
	// Some deletions so the snapshot compacts.
	tbl.Delete(7)
	tbl.Delete(13)
	return db
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := populated(t)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	t1, _ := db.Table("providers")
	t2, err := db2.Table("providers")
	if err != nil {
		t.Fatal(err)
	}
	if t2.Len() != t1.Len() {
		t.Fatalf("loaded Len = %d, want %d", t2.Len(), t1.Len())
	}
	// Schema preserved.
	d1, d2 := t1.Def(), t2.Def()
	if len(d1.Columns) != len(d2.Columns) {
		t.Fatal("column count mismatch")
	}
	for i := range d1.Columns {
		if d1.Columns[i] != d2.Columns[i] {
			t.Errorf("column %d: %+v vs %+v", i, d1.Columns[i], d2.Columns[i])
		}
	}
	// Indexes rebuilt and functional.
	ix, ok := t2.Index("idx_mem")
	if !ok {
		t.Fatal("idx_mem not rebuilt")
	}
	if ix.Len() != t2.Len() {
		t.Errorf("index Len %d, table Len %d", ix.Len(), t2.Len())
	}
	if ids := ix.Lookup(Key{NewInt(16)}); len(ids) != 1 {
		t.Errorf("lookup after reload: %v", ids)
	}
	hx, ok := t2.Index("idx_host")
	if !ok || hx.Def.Kind != IndexHash {
		t.Fatal("hash index not rebuilt with correct kind")
	}
	// Primary key uniqueness still enforced.
	if _, err := t2.Insert(Row{NewInt(1), NewText("x"), Null(), Null()}); err == nil {
		t.Error("PK uniqueness lost after reload")
	}
	// Row contents identical (set comparison via scan).
	rows1 := map[string]bool{}
	t1.Scan(func(_ int64, r Row) bool {
		rows1[rowFingerprint(r)] = true
		return true
	})
	t2.Scan(func(_ int64, r Row) bool {
		if !rows1[rowFingerprint(r)] {
			t.Errorf("unexpected row after reload: %v", r)
		}
		return true
	})
}

func rowFingerprint(r Row) string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.Kind.String() + ":" + v.String()
	}
	return strings.Join(parts, "|")
}

func TestSaveFileLoadFile(t *testing.T) {
	db := populated(t)
	path := filepath.Join(t.TempDir(), "snap.db")
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	db2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	t2, _ := db2.Table("providers")
	if t2.Len() != 48 {
		t.Errorf("Len = %d, want 48", t2.Len())
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "absent.db")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestSaveEmptyDatabase(t *testing.T) {
	var buf bytes.Buffer
	if err := NewDatabase().Save(&buf); err != nil {
		t.Fatal(err)
	}
	db, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(db.TableNames()) != 0 {
		t.Error("empty database round trip gained tables")
	}
}

// TestSaveQuiescesWriters: Save holds a database-wide write quiesce while
// cloning, so a snapshot taken under concurrent transactions is consistent
// ACROSS tables: a transaction inserting one row into each of two tables is
// either entirely in the snapshot or entirely absent.
func TestSaveQuiescesWriters(t *testing.T) {
	db := NewDatabase()
	def := func(name string) TableDef {
		return TableDef{Name: name, Columns: []ColumnDef{
			{Name: "id", Type: KindInt, PrimaryKey: true},
		}}
	}
	mustTable(t, db, def("left"))
	mustTable(t, db, def("right"))

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := int64(0); i < 3000; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tx := db.Begin()
			if _, err := tx.Insert("left", Row{NewInt(i)}); err != nil {
				t.Error(err)
				tx.Rollback()
				return
			}
			if _, err := tx.Insert("right", Row{NewInt(i)}); err != nil {
				t.Error(err)
				tx.Rollback()
				return
			}
			tx.Commit()
		}
	}()

	for i := 0; i < 8; i++ {
		var buf bytes.Buffer
		if err := db.Save(&buf); err != nil {
			t.Fatal(err)
		}
		snap, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		l, _ := snap.Table("left")
		r, _ := snap.Table("right")
		if l.Len() != r.Len() {
			t.Fatalf("inconsistent snapshot: left=%d right=%d", l.Len(), r.Len())
		}
	}
	close(stop)
	<-done
}

// TestSaveDeterministic: two databases with identical content — and the
// same database saved twice — must serialize to identical bytes. Indexes
// live in a map, so the writer must emit them in sorted order; unsorted
// emission made snapshots of identical databases differ at random.
func TestSaveDeterministic(t *testing.T) {
	a, b := populated(t), populated(t)
	var ba, bb, ba2 bytes.Buffer
	if err := a.Save(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.Save(&bb); err != nil {
		t.Fatal(err)
	}
	if err := a.Save(&ba2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), ba2.Bytes()) {
		t.Error("saving the same database twice produced different bytes")
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Error("identical databases produced different snapshot bytes")
	}
}
