package rdb

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sort"
)

// snapshot is the on-disk representation of a database. Row IDs are not
// preserved across save/load: rows are compacted on save and indexes are
// rebuilt on load. Nothing outside the engine may hold row IDs across a
// restart.
type snapshot struct {
	Version int
	Tables  []tableSnapshot
}

type tableSnapshot struct {
	Def     TableDef
	Rows    []Row
	Indexes []IndexDef
}

const snapshotVersion = 1

// Save writes a point-in-time snapshot of the whole database. It acquires
// a database-wide write quiesce: the transaction lock is held and every
// table is read-locked simultaneously while rows are cloned, so the
// snapshot is consistent across tables even with concurrent writers.
// Encoding happens after the locks are released; only the clone phase
// blocks writes.
func (db *Database) Save(w io.Writer) error {
	snap, err := db.cloneQuiesced()
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	enc := gob.NewEncoder(bw)
	if err := enc.Encode(snap); err != nil {
		return fmt.Errorf("rdb: save: %w", err)
	}
	return bw.Flush()
}

// cloneQuiesced captures a cross-table-consistent copy of every table.
// Lock order matches the transaction path (writeMu, then table locks), so
// it cannot deadlock with writers; read locks are taken in sorted table
// order and all held at once during cloning.
func (db *Database) cloneQuiesced() (*snapshot, error) {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	names := db.TableNames()
	tables := make([]*Table, 0, len(names))
	for _, name := range names {
		t, err := db.Table(name)
		if err != nil {
			return nil, err
		}
		tables = append(tables, t)
	}
	for _, t := range tables {
		t.mu.RLock()
	}
	defer func() {
		for _, t := range tables {
			t.mu.RUnlock()
		}
	}()
	snap := &snapshot{Version: snapshotVersion}
	for _, t := range tables {
		ts := tableSnapshot{Def: t.def}
		ts.Def.Columns = append([]ColumnDef(nil), t.def.Columns...)
		for _, row := range t.rows {
			if row != nil {
				ts.Rows = append(ts.Rows, row.Clone())
			}
		}
		// Indexes live in a map; emit them sorted so two databases with
		// identical content produce byte-identical snapshots.
		ixNames := make([]string, 0, len(t.indexes))
		for name := range t.indexes {
			ixNames = append(ixNames, name)
		}
		sort.Strings(ixNames)
		for _, name := range ixNames {
			ts.Indexes = append(ts.Indexes, t.indexes[name].Def)
		}
		snap.Tables = append(snap.Tables, ts)
	}
	return snap, nil
}

// Load reads a snapshot into an empty database, rebuilding all indexes.
func Load(r io.Reader) (*Database, error) {
	dec := gob.NewDecoder(bufio.NewReader(r))
	var snap snapshot
	if err := dec.Decode(&snap); err != nil {
		return nil, fmt.Errorf("rdb: load: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("rdb: load: unsupported snapshot version %d", snap.Version)
	}
	db := NewDatabase()
	for _, ts := range snap.Tables {
		t, err := db.CreateTable(ts.Def)
		if err != nil {
			return nil, fmt.Errorf("rdb: load: %w", err)
		}
		pkName := lowerName(ts.Def.Name + "_pk")
		for _, ixDef := range ts.Indexes {
			if lowerName(ixDef.Name) == pkName {
				continue // recreated by CreateTable
			}
			if _, err := t.createIndex(ixDef); err != nil {
				return nil, fmt.Errorf("rdb: load: %w", err)
			}
		}
		for _, row := range ts.Rows {
			if _, err := t.Insert(row); err != nil {
				return nil, fmt.Errorf("rdb: load: table %s: %w", ts.Def.Name, err)
			}
		}
	}
	return db, nil
}

// SaveFile saves the database atomically to a file (write temp, rename).
func (db *Database) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := db.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile loads a database snapshot from a file.
func LoadFile(path string) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
