package rdb

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// snapshot is the on-disk representation of a database. Row IDs are not
// preserved across save/load: rows are compacted on save and indexes are
// rebuilt on load. Nothing outside the engine may hold row IDs across a
// restart.
type snapshot struct {
	Version int
	Tables  []tableSnapshot
}

type tableSnapshot struct {
	Def     TableDef
	Rows    []Row
	Indexes []IndexDef
}

const snapshotVersion = 1

// Save writes a point-in-time snapshot of the whole database. The snapshot
// is internally consistent per table; concurrent writers should be quiesced
// (e.g. via Begin) for cross-table consistency.
func (db *Database) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := gob.NewEncoder(bw)
	var snap snapshot
	snap.Version = snapshotVersion
	for _, name := range db.TableNames() {
		t, err := db.Table(name)
		if err != nil {
			return err
		}
		t.mu.RLock()
		ts := tableSnapshot{Def: t.def}
		ts.Def.Columns = append([]ColumnDef(nil), t.def.Columns...)
		for _, row := range t.rows {
			if row != nil {
				ts.Rows = append(ts.Rows, row.Clone())
			}
		}
		for _, ix := range t.indexes {
			ts.Indexes = append(ts.Indexes, ix.Def)
		}
		t.mu.RUnlock()
		snap.Tables = append(snap.Tables, ts)
	}
	if err := enc.Encode(&snap); err != nil {
		return fmt.Errorf("rdb: save: %w", err)
	}
	return bw.Flush()
}

// Load reads a snapshot into an empty database, rebuilding all indexes.
func Load(r io.Reader) (*Database, error) {
	dec := gob.NewDecoder(bufio.NewReader(r))
	var snap snapshot
	if err := dec.Decode(&snap); err != nil {
		return nil, fmt.Errorf("rdb: load: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("rdb: load: unsupported snapshot version %d", snap.Version)
	}
	db := NewDatabase()
	for _, ts := range snap.Tables {
		t, err := db.CreateTable(ts.Def)
		if err != nil {
			return nil, fmt.Errorf("rdb: load: %w", err)
		}
		pkName := lowerName(ts.Def.Name + "_pk")
		for _, ixDef := range ts.Indexes {
			if lowerName(ixDef.Name) == pkName {
				continue // recreated by CreateTable
			}
			if _, err := t.createIndex(ixDef); err != nil {
				return nil, fmt.Errorf("rdb: load: %w", err)
			}
		}
		for _, row := range ts.Rows {
			if _, err := t.Insert(row); err != nil {
				return nil, fmt.Errorf("rdb: load: table %s: %w", ts.Def.Name, err)
			}
		}
	}
	return db, nil
}

// SaveFile saves the database atomically to a file (write temp, rename).
func (db *Database) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := db.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile loads a database snapshot from a file.
func LoadFile(path string) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
