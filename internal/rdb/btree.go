package rdb

// bptree is an in-memory B+tree mapping composite keys to row IDs. Keys in
// the tree are made unique by appending the row ID as a final INT component,
// so non-unique indexes need no postings lists and deletion is exact.
//
// Leaves are linked for range scans. The order (max children per internal
// node) is fixed; leaves hold up to order-1 entries.

const btreeOrder = 64

type bptree struct {
	root   btnode
	height int // 1 = root is a leaf
	size   int
}

type btnode interface{}

type btleaf struct {
	keys []Key
	rows []int64
	next *btleaf
}

type btinner struct {
	// keys[i] is the smallest key in children[i+1]'s subtree.
	keys     []Key
	children []btnode
}

func newBPTree() *bptree {
	return &bptree{root: &btleaf{}, height: 1}
}

// fullKey materializes the tree key for (key, rowID).
func fullKey(key Key, rowID int64) Key {
	fk := make(Key, len(key)+1)
	copy(fk, key)
	fk[len(key)] = NewInt(rowID)
	return fk
}

// search returns the index of the first element in keys >= k.
func searchKeys(keys []Key, k Key) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if CompareKeys(keys[mid], k) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childIndex returns which child of an inner node should contain key k.
func (n *btinner) childIndex(k Key) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if CompareKeys(n.keys[mid], k) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Insert adds (key, rowID) to the tree.
func (t *bptree) Insert(key Key, rowID int64) {
	fk := fullKey(key, rowID)
	splitKey, newNode := t.insert(t.root, t.height, fk, rowID)
	if newNode != nil {
		t.root = &btinner{keys: []Key{splitKey}, children: []btnode{t.root, newNode}}
		t.height++
	}
	t.size++
}

// insert recursively inserts and returns a (splitKey, newRightSibling) pair
// if the visited node split, else (nil, nil).
func (t *bptree) insert(n btnode, height int, fk Key, rowID int64) (Key, btnode) {
	if height == 1 {
		leaf := n.(*btleaf)
		i := searchKeys(leaf.keys, fk)
		leaf.keys = append(leaf.keys, nil)
		copy(leaf.keys[i+1:], leaf.keys[i:])
		leaf.keys[i] = fk
		leaf.rows = append(leaf.rows, 0)
		copy(leaf.rows[i+1:], leaf.rows[i:])
		leaf.rows[i] = rowID
		if len(leaf.keys) < btreeOrder {
			return nil, nil
		}
		// Split the leaf in half.
		mid := len(leaf.keys) / 2
		right := &btleaf{
			keys: append([]Key(nil), leaf.keys[mid:]...),
			rows: append([]int64(nil), leaf.rows[mid:]...),
			next: leaf.next,
		}
		leaf.keys = leaf.keys[:mid:mid]
		leaf.rows = leaf.rows[:mid:mid]
		leaf.next = right
		return right.keys[0], right
	}
	inner := n.(*btinner)
	ci := inner.childIndex(fk)
	splitKey, newChild := t.insert(inner.children[ci], height-1, fk, rowID)
	if newChild == nil {
		return nil, nil
	}
	inner.keys = append(inner.keys, nil)
	copy(inner.keys[ci+1:], inner.keys[ci:])
	inner.keys[ci] = splitKey
	inner.children = append(inner.children, nil)
	copy(inner.children[ci+2:], inner.children[ci+1:])
	inner.children[ci+1] = newChild
	if len(inner.children) < btreeOrder {
		return nil, nil
	}
	// Split the inner node; the middle key moves up.
	mid := len(inner.keys) / 2
	upKey := inner.keys[mid]
	right := &btinner{
		keys:     append([]Key(nil), inner.keys[mid+1:]...),
		children: append([]btnode(nil), inner.children[mid+1:]...),
	}
	inner.keys = inner.keys[:mid:mid]
	inner.children = inner.children[: mid+1 : mid+1]
	return upKey, right
}

// Delete removes (key, rowID) from the tree. It reports whether the entry
// was found. Underfull nodes are not rebalanced — deleted space is reclaimed
// on the next snapshot reload, which rebuilds indexes from scratch. This
// trades worst-case tree height for simplicity; the MDV workloads are
// insert-heavy.
func (t *bptree) Delete(key Key, rowID int64) bool {
	fk := fullKey(key, rowID)
	n := t.root
	for h := t.height; h > 1; h-- {
		inner := n.(*btinner)
		n = inner.children[inner.childIndex(fk)]
	}
	leaf := n.(*btleaf)
	i := searchKeys(leaf.keys, fk)
	if i >= len(leaf.keys) || CompareKeys(leaf.keys[i], fk) != 0 {
		return false
	}
	leaf.keys = append(leaf.keys[:i], leaf.keys[i+1:]...)
	leaf.rows = append(leaf.rows[:i], leaf.rows[i+1:]...)
	t.size--
	return true
}

// ScanRange visits every (key, rowID) with low <= key <= high in key order,
// where key is the user key (without the rowID tiebreak). Bounds may use
// sentinel values and may be shorter than the full key (prefix scans). The
// visit function returns false to stop early.
func (t *bptree) ScanRange(low, high Key, visit func(key Key, rowID int64) bool) {
	// The stored keys have a trailing rowID component; a low bound of
	// (v1..vk) must start at the first stored key >= (v1..vk, -inf), which
	// prefix comparison already gives us (shorter key sorts first).
	n := t.root
	for h := t.height; h > 1; h-- {
		inner := n.(*btinner)
		n = inner.children[inner.childIndex(low)]
	}
	leaf := n.(*btleaf)
	i := searchKeys(leaf.keys, low)
	for leaf != nil {
		for ; i < len(leaf.keys); i++ {
			fk := leaf.keys[i]
			userKey := fk[:len(fk)-1]
			// Compare the user key against the high bound, truncating to the
			// bound's length so prefix bounds behave inclusively.
			cmpKey := userKey
			if len(high) < len(cmpKey) {
				cmpKey = cmpKey[:len(high)]
			}
			if CompareKeys(cmpKey, high) > 0 {
				return
			}
			if !visit(userKey, leaf.rows[i]) {
				return
			}
		}
		leaf = leaf.next
		i = 0
	}
}

// ScanAll visits every entry in key order.
func (t *bptree) ScanAll(visit func(key Key, rowID int64) bool) {
	t.ScanRange(Key{MinSentinel()}, Key{MaxSentinel()}, visit)
}

// Len returns the number of entries in the tree.
func (t *bptree) Len() int { return t.size }
