package rdb

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null().IsNull() {
		t.Error("Null() should be null")
	}
	if v := NewInt(42); v.Kind != KindInt || v.Int != 42 || v.AsFloat() != 42.0 {
		t.Errorf("NewInt: got %+v", v)
	}
	if v := NewFloat(2.5); v.Kind != KindFloat || v.Float != 2.5 || v.AsInt() != 2 {
		t.Errorf("NewFloat: got %+v", v)
	}
	if v := NewText("hi"); v.Kind != KindText || v.Str != "hi" {
		t.Errorf("NewText: got %+v", v)
	}
	if v := NewBool(true); v.Kind != KindBool || !v.Bool {
		t.Errorf("NewBool: got %+v", v)
	}
	if !NewInt(1).IsNumeric() || !NewFloat(1).IsNumeric() || NewText("1").IsNumeric() {
		t.Error("IsNumeric misclassifies")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{NewInt(-7), "-7"},
		{NewFloat(1.5), "1.5"},
		{NewText("abc"), "abc"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
		{MinSentinel(), "-inf"},
		{MaxSentinel(), "+inf"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.v.Kind, got, c.want)
		}
	}
}

func TestSQLLiteralEscaping(t *testing.T) {
	if got := NewText("o'brien").SQLLiteral(); got != "'o''brien'" {
		t.Errorf("SQLLiteral = %q", got)
	}
	if got := NewInt(3).SQLLiteral(); got != "3" {
		t.Errorf("SQLLiteral = %q", got)
	}
}

func TestCompareOrderingAcrossKinds(t *testing.T) {
	// Total order: min < null < bool < numeric < text < max.
	ordered := []Value{
		MinSentinel(), Null(), NewBool(false), NewBool(true),
		NewInt(-5), NewFloat(-1.5), NewInt(0), NewFloat(0.5), NewInt(1),
		NewText(""), NewText("a"), NewText("b"), MaxSentinel(),
	}
	for i := range ordered {
		for j := range ordered {
			got := Compare(ordered[i], ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestCompareNumericCoercion(t *testing.T) {
	if Compare(NewInt(1), NewFloat(1.0)) != 0 {
		t.Error("1 should equal 1.0")
	}
	if Compare(NewInt(2), NewFloat(1.5)) != 1 {
		t.Error("2 > 1.5")
	}
	if Compare(NewFloat(1.5), NewInt(2)) != -1 {
		t.Error("1.5 < 2")
	}
}

func TestCompareNaN(t *testing.T) {
	nan := NewFloat(math.NaN())
	if Compare(nan, nan) != 0 {
		t.Error("NaN should compare equal to itself for index stability")
	}
	if Compare(nan, NewFloat(0)) != -1 {
		t.Error("NaN sorts below numbers")
	}
	if Compare(NewFloat(0), nan) != 1 {
		t.Error("numbers sort above NaN")
	}
}

func TestHashConsistentWithEqual(t *testing.T) {
	pairs := [][2]Value{
		{NewInt(1), NewFloat(1.0)},
		{NewText("x"), NewText("x")},
		{Null(), Null()},
		{NewBool(true), NewBool(true)},
	}
	for _, p := range pairs {
		if !Equal(p[0], p[1]) {
			t.Fatalf("expected %v == %v", p[0], p[1])
		}
		if p[0].Hash() != p[1].Hash() {
			t.Errorf("equal values %v, %v have different hashes", p[0], p[1])
		}
	}
}

// Property: Compare is antisymmetric and Equal values hash identically.
func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := NewInt(a), NewInt(b)
		return Compare(va, vb) == -Compare(vb, va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b string) bool {
		va, vb := NewText(a), NewText(b)
		if Compare(va, vb) != -Compare(vb, va) {
			return false
		}
		if Equal(va, vb) && va.Hash() != vb.Hash() {
			return false
		}
		return true
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

// Property: int/float coercion equality implies hash equality.
func TestIntFloatHashProperty(t *testing.T) {
	f := func(n int32) bool {
		i := NewInt(int64(n))
		fl := NewFloat(float64(n))
		return Equal(i, fl) && i.Hash() == fl.Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCoerceTo(t *testing.T) {
	cases := []struct {
		in      Value
		to      Kind
		want    Value
		wantErr bool
	}{
		{NewInt(5), KindFloat, NewFloat(5), false},
		{NewFloat(5.9), KindInt, NewInt(5), false},
		{NewText("42"), KindInt, NewInt(42), false},
		{NewText(" 42 "), KindInt, NewInt(42), false},
		{NewText("3.5"), KindFloat, NewFloat(3.5), false},
		{NewText("3.5"), KindInt, NewInt(3), false},
		{NewText("abc"), KindInt, Null(), true},
		{NewInt(42), KindText, NewText("42"), false},
		{NewBool(true), KindInt, NewInt(1), false},
		{NewBool(false), KindFloat, NewFloat(0), false},
		{NewText("true"), KindBool, NewBool(true), false},
		{NewText("0"), KindBool, NewBool(false), false},
		{NewText("maybe"), KindBool, Null(), true},
		{NewInt(0), KindBool, NewBool(false), false},
		{Null(), KindInt, Null(), false},
		{NewInt(7), KindInt, NewInt(7), false},
	}
	for _, c := range cases {
		got, err := c.in.CoerceTo(c.to)
		if c.wantErr {
			if err == nil {
				t.Errorf("CoerceTo(%v, %v): want error, got %v", c.in, c.to, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("CoerceTo(%v, %v): %v", c.in, c.to, err)
			continue
		}
		if !Equal(got, c.want) || got.Kind != c.want.Kind {
			t.Errorf("CoerceTo(%v, %v) = %v, want %v", c.in, c.to, got, c.want)
		}
	}
}

func TestRowClone(t *testing.T) {
	r := Row{NewInt(1), NewText("a")}
	c := r.Clone()
	c[0] = NewInt(2)
	if r[0].Int != 1 {
		t.Error("Clone should not alias")
	}
	if Row(nil).Clone() != nil {
		t.Error("nil row clones to nil")
	}
}

func TestCompareKeysPrefixSemantics(t *testing.T) {
	a := Key{NewInt(1)}
	b := Key{NewInt(1), NewInt(2)}
	if CompareKeys(a, b) != -1 {
		t.Error("prefix sorts first")
	}
	if CompareKeys(b, a) != 1 {
		t.Error("longer sorts after prefix")
	}
	if CompareKeys(b, b) != 0 {
		t.Error("equal keys")
	}
	if CompareKeys(Key{NewInt(2)}, b) != 1 {
		t.Error("element comparison dominates length")
	}
}

func TestEncodeKeyStringInjective(t *testing.T) {
	// Keys that must not collide: text boundary ambiguity.
	k1 := Key{NewText("ab"), NewText("c")}
	k2 := Key{NewText("a"), NewText("bc")}
	if encodeKeyString(k1) == encodeKeyString(k2) {
		t.Error("length prefixing failed: composite text keys collide")
	}
	// Numeric coercion must collide intentionally.
	k3 := Key{NewInt(1)}
	k4 := Key{NewFloat(1.0)}
	if encodeKeyString(k3) != encodeKeyString(k4) {
		t.Error("1 and 1.0 should encode identically")
	}
}

// Property: key encoding equality matches CompareKeys equality for text keys.
func TestEncodeKeyStringProperty(t *testing.T) {
	f := func(a1, a2, b1, b2 string) bool {
		ka := Key{NewText(a1), NewText(a2)}
		kb := Key{NewText(b1), NewText(b2)}
		enc := encodeKeyString(ka) == encodeKeyString(kb)
		cmp := CompareKeys(ka, kb) == 0
		return enc == cmp
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
