package rdb

import (
	"fmt"
	"testing"
)

// Microbenchmarks of the storage substrate: they bound what the filter
// algorithm's SQL plans can cost per probe.

func benchTable(b *testing.B, rows int) *Table {
	b.Helper()
	db := NewDatabase()
	tbl, err := db.CreateTable(TableDef{
		Name: "t",
		Columns: []ColumnDef{
			{Name: "id", Type: KindInt, PrimaryKey: true},
			{Name: "k", Type: KindText},
			{Name: "v", Type: KindInt},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := db.CreateIndex(IndexDef{Name: "ik", Table: "t", Columns: []string{"k"}, Kind: IndexHash}); err != nil {
		b.Fatal(err)
	}
	if _, err := db.CreateIndex(IndexDef{Name: "iv", Table: "t", Columns: []string{"v"}, Kind: IndexBTree}); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if _, err := tbl.Insert(Row{NewInt(int64(i)), NewText(fmt.Sprintf("k%d", i)), NewInt(int64(i % 1000))}); err != nil {
			b.Fatal(err)
		}
	}
	return tbl
}

func BenchmarkTableInsert(b *testing.B) {
	tbl := benchTable(b, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Insert(Row{NewInt(int64(i)), NewText("k"), NewInt(int64(i))})
	}
}

func BenchmarkBTreePointLookup(b *testing.B) {
	tbl := benchTable(b, 100000)
	ix, _ := tbl.Index("t_pk")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Lookup(Key{NewInt(int64(i % 100000))})
	}
}

func BenchmarkHashPointLookup(b *testing.B) {
	tbl := benchTable(b, 100000)
	ix, _ := tbl.Index("ik")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Lookup(Key{NewText(fmt.Sprintf("k%d", i%100000))})
	}
}

func BenchmarkBTreeRangeScan100(b *testing.B) {
	tbl := benchTable(b, 100000)
	ix, _ := tbl.Index("iv") // 100 rows per distinct v
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		ix.ScanRange(Key{NewInt(int64(i % 1000))}, Key{NewInt(int64(i % 1000))},
			func(Key, int64) bool { n++; return true })
	}
}

func BenchmarkTableScan(b *testing.B) {
	tbl := benchTable(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		tbl.Scan(func(int64, Row) bool { n++; return true })
	}
}
