package rdb

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

func testDef() TableDef {
	return TableDef{
		Name: "providers",
		Columns: []ColumnDef{
			{Name: "id", Type: KindInt, PrimaryKey: true},
			{Name: "host", Type: KindText, NotNull: true},
			{Name: "memory", Type: KindInt},
			{Name: "load", Type: KindFloat},
		},
	}
}

func mustTable(t *testing.T, db *Database, def TableDef) *Table {
	t.Helper()
	tbl, err := db.CreateTable(def)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestTableDefValidate(t *testing.T) {
	cases := []struct {
		name string
		def  TableDef
		ok   bool
	}{
		{"valid", testDef(), true},
		{"empty name", TableDef{Columns: []ColumnDef{{Name: "a", Type: KindInt}}}, false},
		{"no columns", TableDef{Name: "t"}, false},
		{"dup columns", TableDef{Name: "t", Columns: []ColumnDef{
			{Name: "a", Type: KindInt}, {Name: "A", Type: KindText}}}, false},
		{"bad type", TableDef{Name: "t", Columns: []ColumnDef{{Name: "a", Type: KindNull}}}, false},
		{"empty column name", TableDef{Name: "t", Columns: []ColumnDef{{Name: "", Type: KindInt}}}, false},
	}
	for _, c := range cases {
		err := c.def.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestInsertGetDelete(t *testing.T) {
	db := NewDatabase()
	tbl := mustTable(t, db, testDef())
	id, err := tbl.Insert(Row{NewInt(1), NewText("a.example.org"), NewInt(64), NewFloat(0.5)})
	if err != nil {
		t.Fatal(err)
	}
	row, ok := tbl.Get(id)
	if !ok {
		t.Fatal("row not found")
	}
	if row[1].Str != "a.example.org" {
		t.Errorf("got %v", row)
	}
	if tbl.Len() != 1 {
		t.Errorf("Len = %d", tbl.Len())
	}
	old, err := tbl.Delete(id)
	if err != nil {
		t.Fatal(err)
	}
	if old[0].Int != 1 {
		t.Errorf("Delete returned %v", old)
	}
	if _, ok := tbl.Get(id); ok {
		t.Error("deleted row still visible")
	}
	if tbl.Len() != 0 {
		t.Errorf("Len = %d", tbl.Len())
	}
	if _, err := tbl.Delete(id); !errors.Is(err, ErrNoSuchRow) {
		t.Errorf("double delete: %v", err)
	}
}

func TestInsertTypeChecking(t *testing.T) {
	db := NewDatabase()
	tbl := mustTable(t, db, testDef())
	// Wrong arity.
	if _, err := tbl.Insert(Row{NewInt(1)}); err == nil {
		t.Error("arity mismatch accepted")
	}
	// NOT NULL violation.
	if _, err := tbl.Insert(Row{NewInt(1), Null(), NewInt(1), Null()}); err == nil {
		t.Error("NOT NULL violation accepted")
	}
	// Primary key implicitly NOT NULL.
	if _, err := tbl.Insert(Row{Null(), NewText("h"), Null(), Null()}); err == nil {
		t.Error("NULL primary key accepted")
	}
	// Type mismatch.
	if _, err := tbl.Insert(Row{NewText("x"), NewText("h"), Null(), Null()}); err == nil {
		t.Error("TEXT into INT accepted")
	}
	// INT widens into FLOAT column.
	id, err := tbl.Insert(Row{NewInt(1), NewText("h"), Null(), NewInt(3)})
	if err != nil {
		t.Fatal(err)
	}
	row, _ := tbl.Get(id)
	if row[3].Kind != KindFloat || row[3].Float != 3.0 {
		t.Errorf("INT not widened: %v", row[3])
	}
}

func TestPrimaryKeyUniqueness(t *testing.T) {
	db := NewDatabase()
	tbl := mustTable(t, db, testDef())
	if _, err := tbl.Insert(Row{NewInt(1), NewText("a"), Null(), Null()}); err != nil {
		t.Fatal(err)
	}
	_, err := tbl.Insert(Row{NewInt(1), NewText("b"), Null(), Null()})
	if err == nil || !strings.Contains(err.Error(), "duplicate key") {
		t.Errorf("duplicate PK: %v", err)
	}
	if tbl.Len() != 1 {
		t.Errorf("failed insert changed table: Len=%d", tbl.Len())
	}
}

func TestUpdateMaintainsIndexes(t *testing.T) {
	db := NewDatabase()
	tbl := mustTable(t, db, testDef())
	if _, err := db.CreateIndex(IndexDef{Name: "idx_host", Table: "providers", Columns: []string{"host"}, Kind: IndexHash}); err != nil {
		t.Fatal(err)
	}
	id, _ := tbl.Insert(Row{NewInt(1), NewText("old"), Null(), Null()})
	if err := tbl.Update(id, Row{NewInt(1), NewText("new"), NewInt(128), Null()}); err != nil {
		t.Fatal(err)
	}
	ix, _ := tbl.Index("idx_host")
	if ids := ix.Lookup(Key{NewText("old")}); len(ids) != 0 {
		t.Error("stale index entry for old value")
	}
	if ids := ix.Lookup(Key{NewText("new")}); len(ids) != 1 || ids[0] != id {
		t.Errorf("index not updated: %v", ids)
	}
}

func TestUpdateUniquenessRollback(t *testing.T) {
	db := NewDatabase()
	tbl := mustTable(t, db, testDef())
	id1, _ := tbl.Insert(Row{NewInt(1), NewText("a"), Null(), Null()})
	tbl.Insert(Row{NewInt(2), NewText("b"), Null(), Null()})
	// Updating row 1 to PK 2 must fail and leave everything intact.
	if err := tbl.Update(id1, Row{NewInt(2), NewText("a"), Null(), Null()}); err == nil {
		t.Fatal("conflicting update accepted")
	}
	row, ok := tbl.Get(id1)
	if !ok || row[0].Int != 1 {
		t.Errorf("row changed after failed update: %v", row)
	}
	// Index entries must still find both rows.
	ix, _ := tbl.Index("providers_pk")
	if len(ix.Lookup(Key{NewInt(1)})) != 1 || len(ix.Lookup(Key{NewInt(2)})) != 1 {
		t.Error("index entries lost after failed update")
	}
	// Self-keeping update (same PK) must succeed.
	if err := tbl.Update(id1, Row{NewInt(1), NewText("changed"), Null(), Null()}); err != nil {
		t.Errorf("same-key update rejected: %v", err)
	}
}

func TestSlotReuse(t *testing.T) {
	db := NewDatabase()
	tbl := mustTable(t, db, testDef())
	id1, _ := tbl.Insert(Row{NewInt(1), NewText("a"), Null(), Null()})
	tbl.Delete(id1)
	id2, _ := tbl.Insert(Row{NewInt(2), NewText("b"), Null(), Null()})
	if id2 != id1 {
		t.Errorf("slot not reused: %d vs %d", id2, id1)
	}
}

func TestScanAndEarlyStop(t *testing.T) {
	db := NewDatabase()
	tbl := mustTable(t, db, testDef())
	for i := 0; i < 10; i++ {
		tbl.Insert(Row{NewInt(int64(i)), NewText("h"), Null(), Null()})
	}
	tbl.Delete(3)
	n := 0
	tbl.Scan(func(id int64, row Row) bool {
		if id == 3 {
			t.Error("deleted row visited")
		}
		n++
		return true
	})
	if n != 9 {
		t.Errorf("visited %d rows", n)
	}
	n = 0
	tbl.Scan(func(int64, Row) bool { n++; return n < 4 })
	if n != 4 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestScanSnapshotAllowsMutation(t *testing.T) {
	db := NewDatabase()
	tbl := mustTable(t, db, testDef())
	for i := 0; i < 5; i++ {
		tbl.Insert(Row{NewInt(int64(i)), NewText("h"), Null(), Null()})
	}
	// Deleting while iterating a snapshot must not deadlock or skip.
	n := 0
	tbl.ScanSnapshot(func(id int64, row Row) bool {
		if _, err := tbl.Delete(id); err != nil {
			t.Errorf("delete during snapshot scan: %v", err)
		}
		n++
		return true
	})
	if n != 5 || tbl.Len() != 0 {
		t.Errorf("n=%d Len=%d", n, tbl.Len())
	}
}

func TestCreateIndexOnPopulatedTable(t *testing.T) {
	db := NewDatabase()
	tbl := mustTable(t, db, testDef())
	for i := 0; i < 20; i++ {
		tbl.Insert(Row{NewInt(int64(i)), NewText("h"), NewInt(int64(i % 4)), Null()})
	}
	ix, err := db.CreateIndex(IndexDef{Name: "idx_mem", Table: "providers", Columns: []string{"memory"}, Kind: IndexBTree})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 20 {
		t.Errorf("index Len = %d", ix.Len())
	}
	if ids := ix.Lookup(Key{NewInt(2)}); len(ids) != 5 {
		t.Errorf("lookup found %d rows, want 5", len(ids))
	}
}

func TestUniqueIndexNullExemption(t *testing.T) {
	db := NewDatabase()
	tbl := mustTable(t, db, testDef())
	if _, err := db.CreateIndex(IndexDef{Name: "u_mem", Table: "providers", Columns: []string{"memory"}, Unique: true, Kind: IndexBTree}); err != nil {
		t.Fatal(err)
	}
	// Multiple NULLs allowed in a unique index.
	if _, err := tbl.Insert(Row{NewInt(1), NewText("a"), Null(), Null()}); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Insert(Row{NewInt(2), NewText("b"), Null(), Null()}); err != nil {
		t.Errorf("second NULL rejected: %v", err)
	}
	if _, err := tbl.Insert(Row{NewInt(3), NewText("c"), NewInt(64), Null()}); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Insert(Row{NewInt(4), NewText("d"), NewInt(64), Null()}); err == nil {
		t.Error("duplicate non-NULL accepted in unique index")
	}
}

func TestDatabaseCatalog(t *testing.T) {
	db := NewDatabase()
	mustTable(t, db, testDef())
	if _, err := db.CreateTable(testDef()); !errors.Is(err, ErrTableExists) {
		t.Errorf("duplicate table: %v", err)
	}
	if !db.HasTable("PROVIDERS") {
		t.Error("table lookup should be case-insensitive")
	}
	if _, err := db.Table("absent"); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("missing table: %v", err)
	}
	names := db.TableNames()
	if len(names) != 1 || names[0] != "providers" {
		t.Errorf("TableNames = %v", names)
	}
	if err := db.DropTable("providers"); err != nil {
		t.Fatal(err)
	}
	if db.HasTable("providers") {
		t.Error("dropped table still present")
	}
	if err := db.DropTable("providers"); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("double drop: %v", err)
	}
}

func TestIndexCatalogErrors(t *testing.T) {
	db := NewDatabase()
	mustTable(t, db, testDef())
	if _, err := db.CreateIndex(IndexDef{Name: "i", Table: "absent", Columns: []string{"x"}}); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("index on missing table: %v", err)
	}
	if _, err := db.CreateIndex(IndexDef{Name: "i", Table: "providers", Columns: []string{"nope"}}); !errors.Is(err, ErrNoSuchColumn) {
		t.Errorf("index on missing column: %v", err)
	}
	if _, err := db.CreateIndex(IndexDef{Name: "i", Table: "providers", Columns: []string{"host"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex(IndexDef{Name: "i", Table: "providers", Columns: []string{"host"}}); !errors.Is(err, ErrIndexExists) {
		t.Errorf("duplicate index: %v", err)
	}
	if err := db.DropIndex("providers", "i"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropIndex("providers", "i"); !errors.Is(err, ErrNoSuchIndex) {
		t.Errorf("double index drop: %v", err)
	}
}

func TestHashIndexRangeScanRejected(t *testing.T) {
	db := NewDatabase()
	tbl := mustTable(t, db, testDef())
	db.CreateIndex(IndexDef{Name: "h", Table: "providers", Columns: []string{"host"}, Kind: IndexHash})
	ix, _ := tbl.Index("h")
	err := ix.ScanRange(Key{MinSentinel()}, Key{MaxSentinel()}, func(Key, int64) bool { return true })
	if !errors.Is(err, ErrUnordered) {
		t.Errorf("range scan on hash index: %v", err)
	}
	if ix.Ordered() {
		t.Error("hash index reports Ordered")
	}
}

func TestConcurrentReadersAndWriter(t *testing.T) {
	db := NewDatabase()
	tbl := mustTable(t, db, testDef())
	for i := 0; i < 100; i++ {
		tbl.Insert(Row{NewInt(int64(i)), NewText("h"), NewInt(int64(i)), Null()})
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 200; k++ {
				tbl.ScanSnapshot(func(_ int64, row Row) bool { return true })
				tbl.Get(int64(k % 100))
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 100; i < 300; i++ {
			tbl.Insert(Row{NewInt(int64(i)), NewText("w"), Null(), Null()})
		}
	}()
	wg.Wait()
	if tbl.Len() != 300 {
		t.Errorf("Len = %d", tbl.Len())
	}
}

func TestTransactionCommitAndRollback(t *testing.T) {
	db := NewDatabase()
	tbl := mustTable(t, db, testDef())
	base, _ := tbl.Insert(Row{NewInt(1), NewText("keep"), Null(), Null()})

	// Commit path.
	tx := db.Begin()
	id2, err := tx.Insert("providers", Row{NewInt(2), NewText("b"), Null(), Null()})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, ok := tbl.Get(id2); !ok {
		t.Error("committed insert lost")
	}

	// Rollback path: insert + update + delete all undone.
	tx = db.Begin()
	tx.Insert("providers", Row{NewInt(3), NewText("c"), Null(), Null()})
	tx.Update("providers", base, Row{NewInt(1), NewText("changed"), Null(), Null()})
	tx.Delete("providers", id2)
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2 {
		t.Errorf("Len = %d after rollback", tbl.Len())
	}
	row, _ := tbl.Get(base)
	if row[1].Str != "keep" {
		t.Errorf("update not rolled back: %v", row)
	}
	if _, ok := tbl.Get(id2); !ok {
		t.Error("delete not rolled back")
	}
	// Index consistency after rollback.
	ix, _ := tbl.Index("providers_pk")
	if len(ix.Lookup(Key{NewInt(3)})) != 0 {
		t.Error("rolled-back insert left index entry")
	}
	if len(ix.Lookup(Key{NewInt(1)})) != 1 {
		t.Error("rolled-back update lost index entry")
	}

	// Finished transactions reject reuse.
	if _, err := tx.Insert("providers", Row{}); !errors.Is(err, ErrTxnDone) {
		t.Errorf("reuse after rollback: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Errorf("commit after rollback: %v", err)
	}
}

func TestTransactionSingleWriter(t *testing.T) {
	db := NewDatabase()
	mustTable(t, db, testDef())
	tx1 := db.Begin()
	started := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		close(started)
		tx2 := db.Begin() // must block until tx1 commits
		tx2.Commit()
		close(finished)
	}()
	<-started
	select {
	case <-finished:
		t.Fatal("second transaction started before first committed")
	default:
	}
	tx1.Commit()
	<-finished
}
