package rdb

import (
	"fmt"
	"strings"
)

// ColumnDef describes one column of a table.
type ColumnDef struct {
	Name    string
	Type    Kind // KindInt, KindFloat, KindText, or KindBool
	NotNull bool
	// PrimaryKey marks the column as (part of) the primary key. Primary key
	// columns are implicitly NOT NULL and covered by a unique index.
	PrimaryKey bool
}

// TableDef describes a table: its name and ordered columns.
type TableDef struct {
	Name    string
	Columns []ColumnDef
}

// ColumnIndex returns the position of the named column, or -1. Column names
// are case-insensitive, following SQL convention.
func (d *TableDef) ColumnIndex(name string) int {
	for i := range d.Columns {
		if strings.EqualFold(d.Columns[i].Name, name) {
			return i
		}
	}
	return -1
}

// PrimaryKeyColumns returns the positions of the primary key columns in
// definition order, or nil if the table has no primary key.
func (d *TableDef) PrimaryKeyColumns() []int {
	var cols []int
	for i := range d.Columns {
		if d.Columns[i].PrimaryKey {
			cols = append(cols, i)
		}
	}
	return cols
}

// Validate checks the definition for duplicate or empty column names and
// invalid column types.
func (d *TableDef) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("rdb: table has empty name")
	}
	if len(d.Columns) == 0 {
		return fmt.Errorf("rdb: table %s has no columns", d.Name)
	}
	seen := make(map[string]bool, len(d.Columns))
	for i := range d.Columns {
		c := &d.Columns[i]
		if c.Name == "" {
			return fmt.Errorf("rdb: table %s: column %d has empty name", d.Name, i)
		}
		lower := strings.ToLower(c.Name)
		if seen[lower] {
			return fmt.Errorf("rdb: table %s: duplicate column %s", d.Name, c.Name)
		}
		seen[lower] = true
		switch c.Type {
		case KindInt, KindFloat, KindText, KindBool:
		default:
			return fmt.Errorf("rdb: table %s: column %s has invalid type %s", d.Name, c.Name, c.Type)
		}
	}
	return nil
}

// checkRow verifies that a row conforms to the table definition: correct
// arity, NOT NULL constraints, and value kinds assignable to column types
// (INT is accepted for FLOAT columns and widened).
func (d *TableDef) checkRow(row Row) (Row, error) {
	if len(row) != len(d.Columns) {
		return nil, fmt.Errorf("rdb: table %s: row has %d values, want %d", d.Name, len(row), len(d.Columns))
	}
	out := row
	for i := range d.Columns {
		c := &d.Columns[i]
		v := row[i]
		if v.IsNull() {
			if c.NotNull || c.PrimaryKey {
				return nil, fmt.Errorf("rdb: table %s: column %s is NOT NULL", d.Name, c.Name)
			}
			continue
		}
		if v.Kind == c.Type {
			continue
		}
		// Widen INT to FLOAT transparently; reject everything else to keep
		// stored data strictly typed.
		if c.Type == KindFloat && v.Kind == KindInt {
			if &out[0] == &row[0] {
				out = row.Clone()
			}
			out[i] = NewFloat(float64(v.Int))
			continue
		}
		return nil, fmt.Errorf("rdb: table %s: column %s: cannot store %s value", d.Name, c.Name, v.Kind)
	}
	return out, nil
}

// IndexKind selects the physical index structure.
type IndexKind uint8

const (
	// IndexBTree is an order-preserving B+tree index supporting range scans.
	IndexBTree IndexKind = iota
	// IndexHash is a hash index supporting equality lookups only.
	IndexHash
)

func (k IndexKind) String() string {
	if k == IndexHash {
		return "HASH"
	}
	return "BTREE"
}

// IndexDef describes a secondary index over a table.
type IndexDef struct {
	Name    string
	Table   string
	Columns []string // indexed columns, in key order
	Unique  bool
	Kind    IndexKind
}
