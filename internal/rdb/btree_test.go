package rdb

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func collectRange(t *bptree, low, high Key) []int64 {
	var out []int64
	t.ScanRange(low, high, func(_ Key, rowID int64) bool {
		out = append(out, rowID)
		return true
	})
	return out
}

func TestBPTreeInsertAndScanOrder(t *testing.T) {
	tr := newBPTree()
	// Insert in reverse to exercise ordering.
	for i := 999; i >= 0; i-- {
		tr.Insert(Key{NewInt(int64(i))}, int64(i))
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	var got []int64
	tr.ScanAll(func(k Key, rowID int64) bool {
		got = append(got, rowID)
		return true
	})
	if len(got) != 1000 {
		t.Fatalf("scan returned %d entries", len(got))
	}
	for i, id := range got {
		if id != int64(i) {
			t.Fatalf("position %d: got %d", i, id)
		}
	}
}

func TestBPTreeRangeScanBounds(t *testing.T) {
	tr := newBPTree()
	for i := 0; i < 100; i++ {
		tr.Insert(Key{NewInt(int64(i * 2))}, int64(i))
	}
	// [10, 20] covers keys 10,12,...,20 => rows 5..10.
	got := collectRange(tr, Key{NewInt(10)}, Key{NewInt(20)})
	want := []int64{5, 6, 7, 8, 9, 10}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// Empty range.
	if got := collectRange(tr, Key{NewInt(11)}, Key{NewInt(11)}); len(got) != 0 {
		t.Errorf("odd key should be absent, got %v", got)
	}
	// Open bounds via sentinels.
	if got := collectRange(tr, Key{MinSentinel()}, Key{NewInt(4)}); len(got) != 3 {
		t.Errorf("(-inf,4] should have 3 entries, got %v", got)
	}
	if got := collectRange(tr, Key{NewInt(194)}, Key{MaxSentinel()}); len(got) != 3 {
		t.Errorf("[194,inf) should have 3 entries, got %v", got)
	}
}

func TestBPTreeDuplicateKeys(t *testing.T) {
	tr := newBPTree()
	for i := 0; i < 50; i++ {
		tr.Insert(Key{NewText("same")}, int64(i))
	}
	got := collectRange(tr, Key{NewText("same")}, Key{NewText("same")})
	if len(got) != 50 {
		t.Fatalf("expected 50 duplicates, got %d", len(got))
	}
	// rowID tiebreak means duplicates come back in rowID order.
	for i, id := range got {
		if id != int64(i) {
			t.Fatalf("duplicate order broken at %d: %d", i, id)
		}
	}
	if !tr.Delete(Key{NewText("same")}, 25) {
		t.Fatal("delete of existing duplicate failed")
	}
	got = collectRange(tr, Key{NewText("same")}, Key{NewText("same")})
	if len(got) != 49 {
		t.Fatalf("expected 49 after delete, got %d", len(got))
	}
	for _, id := range got {
		if id == 25 {
			t.Fatal("deleted entry still present")
		}
	}
}

func TestBPTreeDeleteMissing(t *testing.T) {
	tr := newBPTree()
	tr.Insert(Key{NewInt(1)}, 1)
	if tr.Delete(Key{NewInt(1)}, 2) {
		t.Error("delete with wrong rowID should fail")
	}
	if tr.Delete(Key{NewInt(2)}, 1) {
		t.Error("delete of absent key should fail")
	}
	if !tr.Delete(Key{NewInt(1)}, 1) {
		t.Error("delete of present entry should succeed")
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d after delete", tr.Len())
	}
}

func TestBPTreeCompositeKeyPrefixScan(t *testing.T) {
	tr := newBPTree()
	// Key = (class, property); 10 classes x 10 properties.
	for c := 0; c < 10; c++ {
		for p := 0; p < 10; p++ {
			tr.Insert(Key{NewInt(int64(c)), NewInt(int64(p))}, int64(c*10+p))
		}
	}
	// Prefix scan on class 3 only (short bounds).
	got := collectRange(tr, Key{NewInt(3)}, Key{NewInt(3)})
	if len(got) != 10 {
		t.Fatalf("prefix scan returned %d entries, want 10", len(got))
	}
	for i, id := range got {
		if id != int64(30+i) {
			t.Fatalf("prefix scan wrong entry %d: %d", i, id)
		}
	}
	// Full composite point.
	got = collectRange(tr, Key{NewInt(3), NewInt(4)}, Key{NewInt(3), NewInt(4)})
	if len(got) != 1 || got[0] != 34 {
		t.Fatalf("point scan got %v", got)
	}
}

func TestBPTreeScanEarlyStop(t *testing.T) {
	tr := newBPTree()
	for i := 0; i < 500; i++ {
		tr.Insert(Key{NewInt(int64(i))}, int64(i))
	}
	n := 0
	tr.ScanAll(func(Key, int64) bool {
		n++
		return n < 7
	})
	if n != 7 {
		t.Errorf("early stop visited %d", n)
	}
}

// Property: the tree agrees with a sorted reference under random
// insert/delete interleavings.
func TestBPTreeMatchesReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := newBPTree()
	ref := map[int64]int64{} // rowID -> key value
	nextID := int64(0)
	for step := 0; step < 20000; step++ {
		if rng.Intn(3) != 0 || len(ref) == 0 {
			k := int64(rng.Intn(2000))
			tr.Insert(Key{NewInt(k)}, nextID)
			ref[nextID] = k
			nextID++
		} else {
			// Delete a random live entry.
			for id, k := range ref {
				if !tr.Delete(Key{NewInt(k)}, id) {
					t.Fatalf("delete of live entry (%d,%d) failed", k, id)
				}
				delete(ref, id)
				break
			}
		}
	}
	if tr.Len() != len(ref) {
		t.Fatalf("Len = %d, ref = %d", tr.Len(), len(ref))
	}
	// Full scan must return all reference entries in key order.
	type pair struct{ k, id int64 }
	var want []pair
	for id, k := range ref {
		want = append(want, pair{k, id})
	}
	sort.Slice(want, func(a, b int) bool {
		if want[a].k != want[b].k {
			return want[a].k < want[b].k
		}
		return want[a].id < want[b].id
	})
	var got []pair
	tr.ScanAll(func(k Key, id int64) bool {
		got = append(got, pair{k[0].Int, id})
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("scan length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

// Property (quick): every inserted batch is fully retrievable by range scan
// over its span.
func TestBPTreeRangeProperty(t *testing.T) {
	f := func(keys []int16) bool {
		tr := newBPTree()
		counts := map[int64]int{}
		for i, k := range keys {
			tr.Insert(Key{NewInt(int64(k))}, int64(i))
			counts[int64(k)]++
		}
		for k, want := range counts {
			got := collectRange(tr, Key{NewInt(k)}, Key{NewInt(k)})
			if len(got) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
