package sql

import (
	"fmt"
	"sort"
	"strings"

	"mdv/internal/rdb"
)

// The planner turns a SelectStmt into a left-deep join plan. Relations are
// joined in FROM order (the dialect is used by code we control — the MDV
// filter — which lists tables in a good order); the planner's job is access
// path selection: for each relation it picks a point index lookup, an index
// prefix/range scan, or a full scan, based on the conjuncts available once
// the preceding relations are bound.

// selectPlan is a fully compiled SELECT.
type selectPlan struct {
	sc   *scope
	rels []*relPlan

	// Projection.
	projExprs []cexpr
	projNames []string

	// Grouping.
	grouped  bool
	groupBy  []cexpr
	aggs     []*aggSpec
	having   cexpr
	aggWidth int // env width + len(aggs)

	distinct bool
	orderBy  []orderPlan
	limit    int
	offset   int
}

type orderPlan struct {
	expr    cexpr
	desc    bool
	ordinal int // >0: sort by projected column (1-based); expr is nil then
}

type aggSpec struct {
	name string // COUNT, SUM, AVG, MIN, MAX
	arg  cexpr  // nil for COUNT(*)
	node *AggExpr
}

// relPlan is one relation in join order with its access path and the filter
// conjuncts that become evaluable once it is bound.
type relPlan struct {
	binding relBinding
	table   *rdb.Table

	access accessPath
	filter []cexpr
}

type accessKind uint8

const (
	accessFullScan accessKind = iota
	accessIndexPoint
	accessIndexPrefix
	accessIndexRange
)

type accessPath struct {
	kind  accessKind
	index *rdb.Index
	// keyExprs computes the lookup key (point/prefix) from the already-bound
	// environment and parameters. For range access it is the equality prefix
	// (possibly empty) preceding the ranged column.
	keyExprs []cexpr
	// Range bounds on the index column immediately after the keyExprs prefix
	// (range access only); nil bound means open. Exclusive bounds are
	// enforced by the residual filter.
	lowExpr, highExpr cexpr
}

// conjunct is one AND-term of the WHERE clause with its relation footprint.
type conjunct struct {
	expr    Expr
	maxRel  int          // highest relation index referenced (-1: constants only)
	relSet  map[int]bool // all referenced relation indexes
	usedKey bool         // consumed as an index key equality; skip as filter
}

// buildSelectPlan compiles a SELECT against the database catalog.
func buildSelectPlan(db *rdb.Database, st *SelectStmt) (*selectPlan, error) {
	if len(st.From) == 0 {
		return nil, fmt.Errorf("sql: SELECT requires a FROM clause")
	}
	p := &selectPlan{sc: &scope{}, limit: st.Limit, offset: st.Offset, distinct: st.Distinct}

	// Bind relations in FROM order.
	seen := map[string]bool{}
	for _, ref := range st.From {
		t, err := db.Table(ref.Table)
		if err != nil {
			return nil, err
		}
		alias := strings.ToLower(ref.Alias)
		if seen[alias] {
			return nil, fmt.Errorf("sql: duplicate table alias %q", ref.Alias)
		}
		seen[alias] = true
		rb := relBinding{alias: ref.Alias, def: t.Def(), start: p.sc.width()}
		p.sc.rels = append(p.sc.rels, rb)
		p.rels = append(p.rels, &relPlan{binding: rb, table: t})
	}

	// Collect conjuncts from WHERE and JOIN ... ON conditions.
	var conjuncts []*conjunct
	addConjuncts := func(e Expr) error {
		for _, c := range splitAnd(e) {
			cj := &conjunct{expr: c, relSet: map[int]bool{}, maxRel: -1}
			if err := p.footprint(c, cj); err != nil {
				return err
			}
			conjuncts = append(conjuncts, cj)
		}
		return nil
	}
	if st.Where != nil {
		if err := addConjuncts(st.Where); err != nil {
			return nil, err
		}
	}
	for _, ref := range st.From {
		if ref.On != nil {
			if err := addConjuncts(ref.On); err != nil {
				return nil, err
			}
		}
	}

	// Pick access paths and assign filters, relation by relation.
	for i, rel := range p.rels {
		if err := p.planAccess(i, rel, conjuncts); err != nil {
			return nil, err
		}
		for _, cj := range conjuncts {
			if cj.usedKey || cj.maxRel > i {
				continue
			}
			if cj.maxRel == i || (cj.maxRel < 0 && i == 0) {
				ce, err := compileExpr(cj.expr, p.sc, nil)
				if err != nil {
					return nil, err
				}
				rel.filter = append(rel.filter, ce)
				cj.maxRel = -2 // consumed
			}
		}
	}

	// Grouping: collect aggregates from the projection, HAVING, and ORDER BY.
	var aggNodes []*AggExpr
	for _, item := range st.Items {
		if !item.Star {
			collectAggs(item.Expr, &aggNodes)
		}
	}
	if st.Having != nil {
		collectAggs(st.Having, &aggNodes)
	}
	for _, o := range st.OrderBy {
		collectAggs(o.Expr, &aggNodes)
	}
	p.grouped = len(st.GroupBy) > 0 || len(aggNodes) > 0
	var aggPos map[*AggExpr]int
	if p.grouped {
		aggPos = make(map[*AggExpr]int, len(aggNodes))
		base := p.sc.width()
		for _, a := range aggNodes {
			var argExpr cexpr
			if a.Arg != nil {
				ce, err := compileExpr(a.Arg, p.sc, nil)
				if err != nil {
					return nil, err
				}
				argExpr = ce
			}
			aggPos[a] = base + len(p.aggs)
			p.aggs = append(p.aggs, &aggSpec{name: a.Name, arg: argExpr, node: a})
		}
		p.aggWidth = base + len(p.aggs)
		for _, g := range st.GroupBy {
			ce, err := compileExpr(g, p.sc, nil)
			if err != nil {
				return nil, err
			}
			p.groupBy = append(p.groupBy, ce)
		}
		if st.Having != nil {
			ce, err := compileExpr(st.Having, p.sc, aggPos)
			if err != nil {
				return nil, err
			}
			p.having = ce
		}
	} else if st.Having != nil {
		return nil, fmt.Errorf("sql: HAVING requires GROUP BY or aggregates")
	}

	// Projection.
	if err := p.buildProjection(st.Items, aggPos); err != nil {
		return nil, err
	}

	// ORDER BY.
	for _, o := range st.OrderBy {
		op := orderPlan{desc: o.Desc}
		if lit, ok := o.Expr.(*Literal); ok && lit.Value.Kind == rdb.KindInt {
			n := int(lit.Value.Int)
			if n < 1 || n > len(p.projExprs) {
				return nil, fmt.Errorf("sql: ORDER BY position %d out of range", n)
			}
			op.ordinal = n
		} else {
			ce, err := compileExpr(o.Expr, p.sc, aggPos)
			if err != nil {
				return nil, err
			}
			op.expr = ce
		}
		p.orderBy = append(p.orderBy, op)
	}
	return p, nil
}

// buildProjection compiles the select list, expanding * items.
func (p *selectPlan) buildProjection(items []SelectItem, aggPos map[*AggExpr]int) error {
	expand := func(rb relBinding) {
		for ci := range rb.def.Columns {
			pos := rb.start + ci
			p.projExprs = append(p.projExprs, func(env []rdb.Value, _ []rdb.Value) (rdb.Value, error) {
				return env[pos], nil
			})
			p.projNames = append(p.projNames, rb.def.Columns[ci].Name)
		}
	}
	for _, item := range items {
		if item.Star {
			if item.StarTable == "" {
				for _, rb := range p.sc.rels {
					expand(rb)
				}
				continue
			}
			found := false
			for _, rb := range p.sc.rels {
				if strings.EqualFold(rb.alias, item.StarTable) {
					expand(rb)
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("sql: unknown table %q in %s.*", item.StarTable, item.StarTable)
			}
			continue
		}
		ce, err := compileExpr(item.Expr, p.sc, aggPos)
		if err != nil {
			return err
		}
		p.projExprs = append(p.projExprs, ce)
		name := item.Alias
		if name == "" {
			if cr, ok := item.Expr.(*ColumnRef); ok {
				name = cr.Column
			} else {
				name = fmt.Sprintf("col%d", len(p.projNames)+1)
			}
		}
		p.projNames = append(p.projNames, name)
	}
	return nil
}

// footprint records which relations an expression references.
func (p *selectPlan) footprint(e Expr, cj *conjunct) error {
	switch ex := e.(type) {
	case nil:
		return nil
	case *Literal, *Param:
		return nil
	case *ColumnRef:
		pos, err := p.sc.resolve(ex)
		if err != nil {
			return err
		}
		ri := p.relIndexOf(pos)
		cj.relSet[ri] = true
		if ri > cj.maxRel {
			cj.maxRel = ri
		}
		return nil
	case *BinaryExpr:
		if err := p.footprint(ex.Left, cj); err != nil {
			return err
		}
		return p.footprint(ex.Right, cj)
	case *UnaryExpr:
		return p.footprint(ex.X, cj)
	case *IsNullExpr:
		return p.footprint(ex.X, cj)
	case *InExpr:
		if err := p.footprint(ex.X, cj); err != nil {
			return err
		}
		for _, le := range ex.List {
			if err := p.footprint(le, cj); err != nil {
				return err
			}
		}
		return nil
	case *CastExpr:
		return p.footprint(ex.X, cj)
	case *FuncExpr:
		for _, a := range ex.Args {
			if err := p.footprint(a, cj); err != nil {
				return err
			}
		}
		return nil
	case *AggExpr:
		return fmt.Errorf("sql: aggregate not allowed in WHERE clause")
	}
	return fmt.Errorf("sql: unsupported expression %T", e)
}

func (p *selectPlan) relIndexOf(pos int) int {
	for i := len(p.sc.rels) - 1; i >= 0; i-- {
		if pos >= p.sc.rels[i].start {
			return i
		}
	}
	return 0
}

// eqCandidate is an equality conjunct usable as an index key component for
// relation i: column of relation i on one side, an expression over earlier
// relations/constants on the other.
type eqCandidate struct {
	colIdx int // column index within the relation
	value  Expr
	cj     *conjunct
}

type rangeCandidate struct {
	colIdx int
	op     string // < <= > >=
	value  Expr
	cj     *conjunct
}

// planAccess selects the access path for relation i given the conjuncts.
func (p *selectPlan) planAccess(i int, rel *relPlan, conjuncts []*conjunct) error {
	var eqs []eqCandidate
	var ranges []rangeCandidate
	for _, cj := range conjuncts {
		if cj.maxRel != i {
			continue
		}
		be, ok := cj.expr.(*BinaryExpr)
		if !ok {
			continue
		}
		extract := func(colSide, valSide Expr, op string) {
			cr, ok := colSide.(*ColumnRef)
			if !ok {
				return
			}
			pos, err := p.sc.resolve(cr)
			if err != nil || p.relIndexOf(pos) != i {
				return
			}
			// The other side must reference only earlier relations.
			probe := &conjunct{relSet: map[int]bool{}, maxRel: -1}
			if err := p.footprint(valSide, probe); err != nil || probe.maxRel >= i {
				return
			}
			colIdx := pos - rel.binding.start
			switch op {
			case "=":
				eqs = append(eqs, eqCandidate{colIdx: colIdx, value: valSide, cj: cj})
			case "<", "<=", ">", ">=":
				ranges = append(ranges, rangeCandidate{colIdx: colIdx, op: op, value: valSide, cj: cj})
			}
		}
		switch be.Op {
		case "=":
			extract(be.Left, be.Right, "=")
			extract(be.Right, be.Left, "=")
		case "<", "<=", ">", ">=":
			extract(be.Left, be.Right, be.Op)
			extract(be.Right, be.Left, flipOp(be.Op))
		}
	}

	// Choose the index covering the longest equality prefix. Ties prefer a
	// full-key point lookup, then an ordered index whose next column carries
	// a range bound (prefix + range beats a plain prefix scan), then a
	// unique index.
	type choice struct {
		index   *rdb.Index
		covered []eqCandidate // one per covered prefix column
		point   bool
		ranged  bool
	}
	better := func(c, b *choice) bool {
		if len(c.covered) != len(b.covered) {
			return len(c.covered) > len(b.covered)
		}
		if c.point != b.point {
			return c.point
		}
		if c.ranged != b.ranged {
			return c.ranged
		}
		return c.index.Def.Unique && !b.index.Def.Unique
	}
	var best *choice
	indexes := rel.table.Indexes()
	// Deterministic order: by name.
	sort.Slice(indexes, func(a, b int) bool { return indexes[a].Def.Name < indexes[b].Def.Name })
	for _, ix := range indexes {
		cols := ix.ColumnPositions()
		var covered []eqCandidate
		for _, cp := range cols {
			found := false
			for _, eq := range eqs {
				if eq.colIdx == cp {
					covered = append(covered, eq)
					found = true
					break
				}
			}
			if !found {
				break
			}
		}
		if len(covered) == 0 {
			continue
		}
		point := len(covered) == len(cols)
		if !point && !ix.Ordered() {
			continue // hash index needs the full key
		}
		c := &choice{index: ix, covered: covered, point: point}
		if !point {
			c.ranged = hasRangeOn(ranges, cols[len(covered)])
		}
		if best == nil || better(c, best) {
			best = c
		}
	}
	if best != nil {
		keyExprs := make([]cexpr, len(best.covered))
		for k, eq := range best.covered {
			ce, err := compileExpr(eq.value, p.sc, nil)
			if err != nil {
				return err
			}
			keyExprs[k] = ce
			eq.cj.usedKey = true
		}
		ap := accessPath{kind: accessIndexPoint, index: best.index, keyExprs: keyExprs}
		if !best.point {
			ap.kind = accessIndexPrefix
			// An ordered index narrows further with range bounds on the
			// column right after the equality prefix. The range conjuncts
			// stay in the filter list (bounds are applied inclusively;
			// exclusivity and NULL semantics are re-checked).
			if best.ranged {
				low, high, err := p.rangeBoundExprs(ranges, best.index.ColumnPositions()[len(best.covered)])
				if err != nil {
					return err
				}
				ap.kind = accessIndexRange
				ap.lowExpr, ap.highExpr = low, high
			}
		}
		rel.access = ap
		return nil
	}

	// Fall back to a range scan on a B+tree index whose first column has a
	// range conjunct. The conjunct stays in the filter list (bounds are
	// applied inclusively; exclusivity and NULL semantics are re-checked).
	for _, ix := range indexes {
		if !ix.Ordered() {
			continue
		}
		first := ix.ColumnPositions()[0]
		if !hasRangeOn(ranges, first) {
			continue
		}
		low, high, err := p.rangeBoundExprs(ranges, first)
		if err != nil {
			return err
		}
		rel.access = accessPath{kind: accessIndexRange, index: ix, lowExpr: low, highExpr: high}
		return nil
	}

	rel.access = accessPath{kind: accessFullScan}
	return nil
}

// hasRangeOn reports whether any range conjunct bounds the given column.
func hasRangeOn(ranges []rangeCandidate, colIdx int) bool {
	for _, rc := range ranges {
		if rc.colIdx == colIdx {
			return true
		}
	}
	return false
}

// rangeBoundExprs compiles the low/high bound expressions available for one
// index column from the range candidates. A nil result means that end is
// open.
func (p *selectPlan) rangeBoundExprs(ranges []rangeCandidate, colIdx int) (low, high cexpr, err error) {
	var lowE, highE Expr
	for _, rc := range ranges {
		if rc.colIdx != colIdx {
			continue
		}
		switch rc.op {
		case ">", ">=":
			if lowE == nil {
				lowE = rc.value
			}
		case "<", "<=":
			if highE == nil {
				highE = rc.value
			}
		}
	}
	if lowE != nil {
		if low, err = compileExpr(lowE, p.sc, nil); err != nil {
			return nil, nil, err
		}
	}
	if highE != nil {
		if high, err = compileExpr(highE, p.sc, nil); err != nil {
			return nil, nil, err
		}
	}
	return low, high, nil
}

func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

// splitAnd flattens nested AND expressions into a conjunct list.
func splitAnd(e Expr) []Expr {
	if be, ok := e.(*BinaryExpr); ok && be.Op == "AND" {
		return append(splitAnd(be.Left), splitAnd(be.Right)...)
	}
	return []Expr{e}
}

// collectAggs gathers aggregate nodes in evaluation order.
func collectAggs(e Expr, out *[]*AggExpr) {
	switch ex := e.(type) {
	case *AggExpr:
		*out = append(*out, ex)
	case *BinaryExpr:
		collectAggs(ex.Left, out)
		collectAggs(ex.Right, out)
	case *UnaryExpr:
		collectAggs(ex.X, out)
	case *IsNullExpr:
		collectAggs(ex.X, out)
	case *InExpr:
		collectAggs(ex.X, out)
		for _, le := range ex.List {
			collectAggs(le, out)
		}
	case *CastExpr:
		collectAggs(ex.X, out)
	case *FuncExpr:
		for _, a := range ex.Args {
			collectAggs(a, out)
		}
	}
}
