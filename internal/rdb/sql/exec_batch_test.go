package sql

import (
	"fmt"
	"testing"

	"mdv/internal/rdb"
)

// TestExecBatch proves the amortized insert path is equivalent to executing
// the prepared single-row INSERT once per parameter row.
func TestExecBatch(t *testing.T) {
	db := testDB(t)
	batch, err := db.Prepare(`INSERT INTO services (sid, pid, name, price) VALUES (?, ?, ?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]rdb.Value
	for i := 0; i < 25; i++ {
		rows = append(rows, []rdb.Value{
			rdb.NewInt(int64(100 + i)), rdb.NewInt(int64(i%20 + 1)),
			rdb.NewText(fmt.Sprintf("batch%d", i)), rdb.NewFloat(float64(i) / 4),
		})
	}
	n, err := batch.ExecBatch(rows)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(rows) {
		t.Fatalf("ExecBatch inserted %d rows, want %d", n, len(rows))
	}

	// A control database receives the same rows one Exec at a time; both
	// must answer queries identically.
	control := testDB(t)
	single, err := control.Prepare(`INSERT INTO services (sid, pid, name, price) VALUES (?, ?, ?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if _, err := single.Exec(r...); err != nil {
			t.Fatal(err)
		}
	}
	const q = `SELECT sid, name FROM services WHERE sid >= 100 ORDER BY sid`
	got, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := control.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != len(rows) || fmt.Sprint(got.Data) != fmt.Sprint(want.Data) {
		t.Fatalf("batch and single-row inserts diverge:\n got  %v\nwant %v", got.Data, want.Data)
	}

	// An empty batch is a no-op.
	if n, err := batch.ExecBatch(nil); err != nil || n != 0 {
		t.Fatalf("empty batch: n=%d err=%v, want 0, nil", n, err)
	}
}

// TestExecBatchRequiresSingleRowInsert rejects statements the batch fast
// path cannot amortize.
func TestExecBatchRequiresSingleRowInsert(t *testing.T) {
	db := testDB(t)
	for _, text := range []string{
		`SELECT id FROM providers`,
		`DELETE FROM services WHERE sid = ?`,
		`INSERT INTO services (sid, pid) VALUES (1000, 1), (1001, 2)`,
	} {
		st, err := db.Prepare(text)
		if err != nil {
			t.Fatalf("prepare %s: %v", text, err)
		}
		if _, err := st.ExecBatch([][]rdb.Value{nil}); err == nil {
			t.Errorf("ExecBatch accepted %q", text)
		}
	}
}
