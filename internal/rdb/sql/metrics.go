package sql

import (
	"time"

	"mdv/internal/metrics"
)

// Statement-op classification for metrics labels.
type stmtOp int

const (
	opSelect stmtOp = iota
	opInsert
	opUpdate
	opDelete
	opDDL
	opCount
)

var opNames = [opCount]string{"select", "insert", "update", "delete", "ddl"}

// dbMetrics is the instrument bundle for one DB. It is installed atomically
// so the hot path pays a single pointer load when metrics are disabled.
type dbMetrics struct {
	stmtTotal   [opCount]*metrics.Counter
	stmtSeconds [opCount]*metrics.Histogram
	planHits    *metrics.Counter
	planMisses  *metrics.Counter
	access      [4]*metrics.Counter // indexed by accessKind
}

var accessNames = [4]string{"full_scan", "index_point", "index_prefix", "index_range"}

// EnableMetrics registers this database's instruments on reg and starts
// recording. Before the first call every instrumentation site is a nil
// pointer load; statements already prepared keep working.
func (d *DB) EnableMetrics(reg *metrics.Registry) {
	m := &dbMetrics{}
	for op := stmtOp(0); op < opCount; op++ {
		m.stmtTotal[op] = reg.Counter("mdv_sql_statements_total",
			"SQL statements executed, by operation", metrics.L("op", opNames[op]))
		m.stmtSeconds[op] = reg.Histogram("mdv_sql_statement_seconds",
			"SQL statement latency in seconds, by operation",
			metrics.TimeBuckets, metrics.L("op", opNames[op]))
	}
	m.planHits = reg.Counter("mdv_sql_plan_cache_total",
		"prepared-statement plan cache lookups", metrics.L("result", "hit"))
	m.planMisses = reg.Counter("mdv_sql_plan_cache_total",
		"prepared-statement plan cache lookups", metrics.L("result", "miss"))
	for k := range m.access {
		m.access[k] = reg.Counter("mdv_sql_access_paths_total",
			"relation access paths executed, by kind", metrics.L("path", accessNames[k]))
	}
	d.met.Store(m)
}

// observeSelect records one SELECT execution: op counters, latency, and the
// access path of every relation in the plan (per execution, not per build,
// so a cached index-range plan still shows up in the scan/range ratio).
func (d *DB) observeSelect(p *selectPlan, t0 time.Time) {
	m := d.met.Load()
	if m == nil {
		return
	}
	m.stmtTotal[opSelect].Inc()
	m.stmtSeconds[opSelect].ObserveSince(t0)
	for _, rel := range p.rels {
		m.access[rel.access.kind].Inc()
	}
}

// observeExec records one non-SELECT statement execution.
func (d *DB) observeExec(op stmtOp, t0 time.Time) {
	m := d.met.Load()
	if m == nil {
		return
	}
	m.stmtTotal[op].Inc()
	m.stmtSeconds[op].ObserveSince(t0)
}

// observePlanCache records a prepared-statement plan cache lookup.
func (d *DB) observePlanCache(hit bool) {
	m := d.met.Load()
	if m == nil {
		return
	}
	if hit {
		m.planHits.Inc()
	} else {
		m.planMisses.Inc()
	}
}
