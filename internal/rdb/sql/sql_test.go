package sql

import (
	"fmt"
	"strings"
	"testing"

	"mdv/internal/rdb"
)

func testDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	stmts := []string{
		`CREATE TABLE providers (
			id INT PRIMARY KEY,
			host TEXT NOT NULL,
			memory INT,
			cpu INT,
			domain TEXT
		)`,
		`CREATE INDEX idx_providers_memory ON providers (memory)`,
		`CREATE INDEX idx_providers_domain ON providers (domain) USING HASH`,
		`CREATE TABLE services (
			sid INT PRIMARY KEY,
			pid INT NOT NULL,
			name TEXT,
			price FLOAT
		)`,
		`CREATE INDEX idx_services_pid ON services (pid)`,
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	for i := 1; i <= 20; i++ {
		dom := "uni-passau.de"
		if i%2 == 0 {
			dom = "tum.de"
		}
		if _, err := db.Exec(`INSERT INTO providers (id, host, memory, cpu, domain) VALUES (?, ?, ?, ?, ?)`,
			rdb.NewInt(int64(i)), rdb.NewText(fmt.Sprintf("host%02d.%s", i, dom)),
			rdb.NewInt(int64(i*16)), rdb.NewInt(int64(200+i*50)), rdb.NewText(dom)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 40; i++ {
		if _, err := db.Exec(`INSERT INTO services (sid, pid, name, price) VALUES (?, ?, ?, ?)`,
			rdb.NewInt(int64(i)), rdb.NewInt(int64(i%20+1)),
			rdb.NewText(fmt.Sprintf("svc%d", i)), rdb.NewFloat(float64(i)*1.5)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func queryInts(t *testing.T, db *DB, q string, params ...rdb.Value) []int64 {
	t.Helper()
	rows, err := db.Query(q, params...)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	out := make([]int64, 0, rows.Len())
	for _, r := range rows.Data {
		out = append(out, r[0].AsInt())
	}
	return out
}

func TestCreateInsertSelectBasic(t *testing.T) {
	db := testDB(t)
	rows, err := db.Query(`SELECT id, host FROM providers WHERE id = 7`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 1 || rows.Data[0][0].Int != 7 {
		t.Fatalf("got %+v", rows.Data)
	}
	if rows.Columns[0] != "id" || rows.Columns[1] != "host" {
		t.Errorf("columns = %v", rows.Columns)
	}
}

func TestSelectStar(t *testing.T) {
	db := testDB(t)
	rows, err := db.Query(`SELECT * FROM providers WHERE id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Columns) != 5 {
		t.Errorf("* expanded to %v", rows.Columns)
	}
	rows, err = db.Query(`SELECT p.* FROM providers p WHERE p.id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Columns) != 5 {
		t.Errorf("p.* expanded to %v", rows.Columns)
	}
}

func TestComparisonOperators(t *testing.T) {
	db := testDB(t)
	cases := []struct {
		where string
		want  int
	}{
		{"memory > 288", 2},   // 304, 320
		{"memory >= 288", 3},  // 288, 304, 320
		{"memory < 32", 1},    // 16
		{"memory <= 32", 2},   // 16, 32
		{"memory = 160", 1},   // id 10
		{"memory != 160", 19}, //
		{"id > 5 AND id <= 8", 3},
		{"id = 1 OR id = 2", 2},
		{"NOT id = 1", 19},
		{"id IN (1, 3, 5)", 3},
		{"id NOT IN (1, 3, 5)", 17},
		{"domain contains 'passau'", 10},
		{"host LIKE 'host0%'", 9},
		{"host LIKE 'host__.tum.de'", 10},
		{"memory IS NULL", 0},
		{"memory IS NOT NULL", 20},
	}
	for _, c := range cases {
		got := len(queryInts(t, db, "SELECT id FROM providers WHERE "+c.where))
		if got != c.want {
			t.Errorf("WHERE %s: got %d rows, want %d", c.where, got, c.want)
		}
	}
}

func TestArithmeticAndFunctions(t *testing.T) {
	db := testDB(t)
	check := func(expr string, want rdb.Value) {
		t.Helper()
		rows, err := db.Query(`SELECT ` + expr + ` FROM providers WHERE id = 2`)
		if err != nil {
			t.Fatalf("%s: %v", expr, err)
		}
		got, err := rows.Scalar()
		if err != nil {
			t.Fatal(err)
		}
		if !rdb.Equal(got, want) {
			t.Errorf("%s = %v, want %v", expr, got, want)
		}
	}
	check(`memory + 1`, rdb.NewInt(33))
	check(`memory - 2`, rdb.NewInt(30))
	check(`memory * 2`, rdb.NewInt(64))
	check(`memory / 4`, rdb.NewInt(8))
	check(`memory % 5`, rdb.NewInt(2))
	check(`memory + 0.5`, rdb.NewFloat(32.5))
	check(`-memory`, rdb.NewInt(-32))
	check(`LOWER('ABC')`, rdb.NewText("abc"))
	check(`UPPER('abc')`, rdb.NewText("ABC"))
	check(`LENGTH(domain)`, rdb.NewInt(6))
	check(`ABS(0 - 5)`, rdb.NewInt(5))
	check(`COALESCE(NULL, NULL, 7)`, rdb.NewInt(7))
	check(`CAST('42' AS INT)`, rdb.NewInt(42))
	check(`CAST(memory AS TEXT)`, rdb.NewText("32"))
	check(`CAST('3.5' AS FLOAT)`, rdb.NewFloat(3.5))
	check(`'a' + 'b'`, rdb.NewText("ab"))
}

func TestDivisionByZero(t *testing.T) {
	db := testDB(t)
	if _, err := db.Query(`SELECT 1/0 FROM providers WHERE id = 1`); err == nil {
		t.Error("division by zero not reported")
	}
	if _, err := db.Query(`SELECT 1%0 FROM providers WHERE id = 1`); err == nil {
		t.Error("modulo by zero not reported")
	}
}

func TestNullSemantics(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE TABLE t (a INT, b INT)`)
	db.MustExec(`INSERT INTO t (a, b) VALUES (1, NULL), (NULL, 2), (3, 3)`)
	// NULL comparisons are never true.
	if n := len(queryInts(t, db, `SELECT a FROM t WHERE b = NULL`)); n != 0 {
		t.Errorf("b = NULL matched %d rows", n)
	}
	if n := len(queryInts(t, db, `SELECT a FROM t WHERE b != NULL`)); n != 0 {
		t.Errorf("b != NULL matched %d rows", n)
	}
	if n := len(queryInts(t, db, `SELECT b FROM t WHERE a IS NULL`)); n != 1 {
		t.Errorf("IS NULL matched %d rows", n)
	}
	// NOT(NULL) stays NULL (filtered out).
	if n := len(queryInts(t, db, `SELECT a FROM t WHERE NOT (b = 2)`)); n != 1 {
		t.Errorf("NOT over NULL matched %d rows", n)
	}
	// Three-valued OR: NULL OR TRUE = TRUE.
	if n := len(queryInts(t, db, `SELECT a FROM t WHERE b = 99 OR a = 1`)); n != 1 {
		t.Errorf("OR with NULL matched %d rows", n)
	}
	// x IN (...) with NULL in list: no match is NULL, not FALSE.
	if n := len(queryInts(t, db, `SELECT a FROM t WHERE a IN (99, NULL)`)); n != 0 {
		t.Errorf("IN with NULL matched %d rows", n)
	}
}

func TestJoinImplicit(t *testing.T) {
	db := testDB(t)
	rows, err := db.Query(`
		SELECT p.id, s.sid FROM providers p, services s
		WHERE s.pid = p.id AND p.memory > 288`)
	if err != nil {
		t.Fatal(err)
	}
	// Providers 19 and 20 each have 2 services.
	if rows.Len() != 4 {
		t.Fatalf("join returned %d rows", rows.Len())
	}
}

func TestJoinExplicit(t *testing.T) {
	db := testDB(t)
	rows, err := db.Query(`
		SELECT p.id, s.name FROM providers p JOIN services s ON s.pid = p.id
		WHERE p.id = 3`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 2 {
		t.Fatalf("got %d rows", rows.Len())
	}
}

func TestThreeWayJoin(t *testing.T) {
	db := testDB(t)
	db.MustExec(`CREATE TABLE tags (sid INT, tag TEXT)`)
	db.MustExec(`INSERT INTO tags (sid, tag) VALUES (1, 'fast'), (1, 'cheap'), (2, 'fast')`)
	rows, err := db.Query(`
		SELECT p.id, s.sid, g.tag
		FROM providers p, services s, tags g
		WHERE s.pid = p.id AND g.sid = s.sid AND g.tag = 'fast'`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 2 {
		t.Fatalf("got %d rows", rows.Len())
	}
}

func TestSelfJoin(t *testing.T) {
	db := testDB(t)
	rows, err := db.Query(`
		SELECT a.id, b.id FROM providers a, providers b
		WHERE a.memory = b.memory AND a.id != b.id`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 0 {
		t.Fatalf("distinct memories, expected empty join, got %d", rows.Len())
	}
	rows, err = db.Query(`
		SELECT a.id, b.id FROM providers a, providers b
		WHERE b.id = a.id AND a.id <= 3`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 3 {
		t.Fatalf("self equi-join got %d rows", rows.Len())
	}
}

func TestOrderByLimitOffset(t *testing.T) {
	db := testDB(t)
	ids := queryInts(t, db, `SELECT id FROM providers ORDER BY memory DESC LIMIT 3`)
	if len(ids) != 3 || ids[0] != 20 || ids[1] != 19 || ids[2] != 18 {
		t.Errorf("ORDER BY DESC LIMIT: %v", ids)
	}
	ids = queryInts(t, db, `SELECT id FROM providers ORDER BY id LIMIT 5 OFFSET 10`)
	if len(ids) != 5 || ids[0] != 11 {
		t.Errorf("OFFSET: %v", ids)
	}
	// ORDER BY ordinal.
	ids = queryInts(t, db, `SELECT id FROM providers ORDER BY 1 DESC LIMIT 2`)
	if len(ids) != 2 || ids[0] != 20 {
		t.Errorf("ORDER BY ordinal: %v", ids)
	}
	// ORDER BY expression.
	ids = queryInts(t, db, `SELECT id FROM providers ORDER BY 0 - id LIMIT 1`)
	if len(ids) != 1 || ids[0] != 20 {
		t.Errorf("ORDER BY expr: %v", ids)
	}
}

func TestDistinct(t *testing.T) {
	db := testDB(t)
	rows, err := db.Query(`SELECT DISTINCT domain FROM providers`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 2 {
		t.Errorf("DISTINCT got %d rows", rows.Len())
	}
	rows, err = db.Query(`SELECT DISTINCT domain FROM providers ORDER BY domain`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 2 || rows.Data[0][0].Str != "tum.de" {
		t.Errorf("DISTINCT+ORDER: %+v", rows.Data)
	}
}

func TestAggregates(t *testing.T) {
	db := testDB(t)
	check := func(q string, want rdb.Value) {
		t.Helper()
		rows, err := db.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		got, err := rows.Scalar()
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if !rdb.Equal(got, want) {
			t.Errorf("%s = %v, want %v", q, got, want)
		}
	}
	check(`SELECT COUNT(*) FROM providers`, rdb.NewInt(20))
	check(`SELECT COUNT(*) FROM providers WHERE memory > 288`, rdb.NewInt(2))
	check(`SELECT MIN(memory) FROM providers`, rdb.NewInt(16))
	check(`SELECT MAX(memory) FROM providers`, rdb.NewInt(320))
	check(`SELECT SUM(memory) FROM providers WHERE id <= 3`, rdb.NewInt(96))
	check(`SELECT AVG(memory) FROM providers WHERE id <= 3`, rdb.NewFloat(32))
	check(`SELECT COUNT(*) FROM providers WHERE id > 999`, rdb.NewInt(0))
	// COUNT skips NULLs, COUNT(*) does not.
	db.MustExec(`INSERT INTO providers (id, host, memory, cpu, domain) VALUES (21, 'x', NULL, NULL, NULL)`)
	check(`SELECT COUNT(memory) FROM providers`, rdb.NewInt(20))
	check(`SELECT COUNT(*) FROM providers`, rdb.NewInt(21))
	// SUM over empty set is NULL.
	rows, _ := db.Query(`SELECT SUM(memory) FROM providers WHERE id > 999`)
	if v, _ := rows.Scalar(); !v.IsNull() {
		t.Errorf("SUM over empty = %v, want NULL", v)
	}
}

func TestGroupByHaving(t *testing.T) {
	db := testDB(t)
	rows, err := db.Query(`
		SELECT domain, COUNT(*) AS n, MAX(memory) AS maxmem
		FROM providers GROUP BY domain ORDER BY domain`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 2 {
		t.Fatalf("groups: %d", rows.Len())
	}
	if rows.Data[0][0].Str != "tum.de" || rows.Data[0][1].Int != 10 || rows.Data[0][2].Int != 320 {
		t.Errorf("group 0: %v", rows.Data[0])
	}
	if rows.Data[1][0].Str != "uni-passau.de" || rows.Data[1][2].Int != 304 {
		t.Errorf("group 1: %v", rows.Data[1])
	}
	rows, err = db.Query(`
		SELECT pid, COUNT(*) AS n FROM services GROUP BY pid HAVING COUNT(*) > 1`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 20 {
		t.Errorf("HAVING groups: %d, want 20", rows.Len())
	}
	rows, err = db.Query(`
		SELECT pid, COUNT(*) FROM services GROUP BY pid HAVING COUNT(*) > 2`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 0 {
		t.Errorf("HAVING>2 groups: %d, want 0", rows.Len())
	}
}

func TestUpdate(t *testing.T) {
	db := testDB(t)
	n, err := db.Exec(`UPDATE providers SET memory = memory * 2 WHERE domain = 'tum.de'`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("updated %d rows", n)
	}
	rows, _ := db.Query(`SELECT memory FROM providers WHERE id = 2`)
	if v, _ := rows.Scalar(); v.Int != 64 {
		t.Errorf("memory = %v", v)
	}
	// Index reflects new values.
	ids := queryInts(t, db, `SELECT id FROM providers WHERE memory = 64`)
	if len(ids) != 2 { // id 2 (32*2) and id 4 original 64? id4 is tum.de -> 128. id 2->64, id 4->128; original 64 was id4 (doubled). So memory=64: id 2 only... and id 4 no. Wait.
		// Recompute: tum.de ids are even. id2:32->64, id4:64->128. uni-passau odd: id unchanged. 64 original: id 4 (changed) => only id 2 has 64.
		if len(ids) != 1 || ids[0] != 2 {
			t.Errorf("post-update index lookup: %v", ids)
		}
	}
	// UPDATE without WHERE hits everything.
	n, err = db.Exec(`UPDATE providers SET cpu = 0`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Errorf("unconditional update: %d", n)
	}
}

func TestDelete(t *testing.T) {
	db := testDB(t)
	n, err := db.Exec(`DELETE FROM services WHERE pid = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("deleted %d", n)
	}
	n, err = db.Exec(`DELETE FROM services`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 38 {
		t.Errorf("deleted %d", n)
	}
	rows, _ := db.Query(`SELECT COUNT(*) FROM services`)
	if v, _ := rows.Scalar(); v.Int != 0 {
		t.Errorf("count after delete = %v", v)
	}
}

func TestInsertSelect(t *testing.T) {
	db := testDB(t)
	db.MustExec(`CREATE TABLE rich (id INT, memory INT)`)
	n, err := db.Exec(`INSERT INTO rich (id, memory) SELECT id, memory FROM providers WHERE memory >= 288`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("inserted %d", n)
	}
	// INSERT ... SELECT from the target table itself must not deadlock.
	n, err = db.Exec(`INSERT INTO rich (id, memory) SELECT id, memory FROM rich`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("self-insert %d", n)
	}
	rows, _ := db.Query(`SELECT COUNT(*) FROM rich`)
	if v, _ := rows.Scalar(); v.Int != 6 {
		t.Errorf("total = %v", v)
	}
}

func TestInsertColumnSubset(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec(`INSERT INTO providers (id, host) VALUES (99, 'partial')`); err != nil {
		t.Fatal(err)
	}
	rows, _ := db.Query(`SELECT memory FROM providers WHERE id = 99`)
	if v, _ := rows.Scalar(); !v.IsNull() {
		t.Errorf("unlisted column = %v, want NULL", v)
	}
	// Omitting a NOT NULL column fails.
	if _, err := db.Exec(`INSERT INTO providers (id) VALUES (100)`); err == nil {
		t.Error("NOT NULL violation accepted")
	}
}

func TestPreparedStatements(t *testing.T) {
	db := testDB(t)
	st, err := db.Prepare(`SELECT id FROM providers WHERE memory = ? AND domain = ?`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		dom := "uni-passau.de"
		if i%2 == 0 {
			dom = "tum.de"
		}
		rows, err := st.Query(rdb.NewInt(int64(i*16)), rdb.NewText(dom))
		if err != nil {
			t.Fatal(err)
		}
		if rows.Len() != 1 || rows.Data[0][0].Int != int64(i) {
			t.Fatalf("i=%d: %+v", i, rows.Data)
		}
	}
	// Prepared DML.
	ins, err := db.Prepare(`INSERT INTO services (sid, pid, name, price) VALUES (?, ?, ?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ins.Exec(rdb.NewInt(100), rdb.NewInt(1), rdb.NewText("x"), rdb.NewFloat(1)); err != nil {
		t.Fatal(err)
	}
	// Plan survives DDL via re-validation.
	db.MustExec(`CREATE TABLE unrelated (x INT)`)
	rows, err := st.Query(rdb.NewInt(16), rdb.NewText("uni-passau.de"))
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 1 {
		t.Errorf("after DDL: %d rows", rows.Len())
	}
}

func TestQueryFuncStreaming(t *testing.T) {
	db := testDB(t)
	var got []int64
	err := db.QueryFunc(`SELECT id FROM providers WHERE id <= 5`, nil, func(row []rdb.Value) error {
		got = append(got, row[0].Int)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Errorf("streamed %d rows", len(got))
	}
	// Early abort via error.
	n := 0
	sentinel := fmt.Errorf("stop")
	err = db.QueryFunc(`SELECT id FROM providers`, nil, func([]rdb.Value) error {
		n++
		if n == 3 {
			return sentinel
		}
		return nil
	})
	if err != sentinel || n != 3 {
		t.Errorf("abort: err=%v n=%d", err, n)
	}
}

func TestIfNotExistsAndIfExists(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec(`CREATE TABLE providers (id INT)`); err == nil {
		t.Error("duplicate CREATE TABLE accepted")
	}
	if _, err := db.Exec(`CREATE TABLE IF NOT EXISTS providers (id INT)`); err != nil {
		t.Errorf("IF NOT EXISTS: %v", err)
	}
	if _, err := db.Exec(`CREATE INDEX IF NOT EXISTS idx_providers_memory ON providers (memory)`); err != nil {
		t.Errorf("index IF NOT EXISTS: %v", err)
	}
	if _, err := db.Exec(`DROP TABLE IF EXISTS nonexistent`); err != nil {
		t.Errorf("DROP IF EXISTS: %v", err)
	}
	if _, err := db.Exec(`DROP TABLE nonexistent`); err == nil {
		t.Error("DROP of missing table accepted")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELEC id FROM t`,
		`SELECT FROM t`,
		`SELECT id FROM`,
		`SELECT id FROM t WHERE`,
		`INSERT INTO`,
		`INSERT INTO t VALUES`,
		`CREATE TABLE`,
		`CREATE TABLE t`,
		`CREATE TABLE t ()`,
		`CREATE TABLE t (a UNKNOWNTYPE)`,
		`SELECT 'unterminated FROM t`,
		`SELECT id FROM t; SELECT 2`,
		`SELECT id id2 id3 FROM t`,
		`UPDATE t`,
		`DELETE t`,
		`SELECT a FROM t WHERE a @ 3`,
		`CREATE TABLE t (a INT UNIQUE)`,
		`CREATE UNIQUE TABLE t (a INT)`,
		`SELECT COUNT(*) FROM t GROUP BY`,
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("accepted bad statement: %q", q)
		}
	}
}

func TestSemanticErrors(t *testing.T) {
	db := testDB(t)
	bad := []string{
		`SELECT nope FROM providers`,
		`SELECT id FROM nonexistent`,
		`SELECT x.id FROM providers p`,
		`SELECT id FROM providers p, services s`, // ambiguous? no: id unique. use name
		`SELECT sid FROM providers`,
		`INSERT INTO providers (nope) VALUES (1)`,
		`UPDATE providers SET nope = 1`,
		`SELECT id FROM providers WHERE COUNT(*) > 1`,
		`SELECT id FROM providers p, providers p`,
	}
	for _, q := range bad {
		if q == `SELECT id FROM providers p, services s` {
			continue
		}
		if _, err := db.Query(q); err == nil {
			t.Errorf("accepted bad query: %q", q)
		}
	}
	// Ambiguity check with genuinely ambiguous column.
	db.MustExec(`CREATE TABLE dup1 (v INT)`)
	db.MustExec(`CREATE TABLE dup2 (v INT)`)
	if _, err := db.Query(`SELECT v FROM dup1, dup2`); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguous column: %v", err)
	}
}

func TestCaseInsensitivity(t *testing.T) {
	db := testDB(t)
	rows, err := db.Query(`select ID, HOST from PROVIDERS where MEMORY = 16`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 1 {
		t.Errorf("case-insensitive query: %d rows", rows.Len())
	}
}

func TestContainsOperator(t *testing.T) {
	db := testDB(t)
	ids := queryInts(t, db, `SELECT id FROM providers WHERE host CONTAINS 'host07'`)
	if len(ids) != 1 || ids[0] != 7 {
		t.Errorf("CONTAINS: %v", ids)
	}
	ids = queryInts(t, db, `SELECT id FROM providers WHERE host NOT CONTAINS 'tum'`)
	if len(ids) != 10 {
		t.Errorf("NOT CONTAINS: %d", len(ids))
	}
}

func TestComments(t *testing.T) {
	db := testDB(t)
	rows, err := db.Query("SELECT id -- trailing comment\nFROM providers -- another\nWHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 1 {
		t.Errorf("comment query: %d rows", rows.Len())
	}
}
