package sql

import (
	"fmt"
	"testing"

	"mdv/internal/rdb"
)

// Microbenchmarks of the SQL layer — the cost building blocks of the
// filter's prepared statements.

func benchDB(b *testing.B, rows int) *DB {
	b.Helper()
	db := Open()
	db.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, k TEXT, v INT)`)
	db.MustExec(`CREATE INDEX ik ON t (k) USING HASH`)
	db.MustExec(`CREATE INDEX iv ON t (v)`)
	ins := db.MustPrepare(`INSERT INTO t (id, k, v) VALUES (?, ?, ?)`)
	for i := 0; i < rows; i++ {
		if _, err := ins.Exec(rdb.NewInt(int64(i)), rdb.NewText(fmt.Sprintf("k%d", i)),
			rdb.NewInt(int64(i%1000))); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

func BenchmarkParse(b *testing.B) {
	const q = `SELECT a.id, b.v FROM t a, t b WHERE a.id = b.id AND a.v > 10 ORDER BY a.id LIMIT 5`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPreparedPointSelect(b *testing.B) {
	db := benchDB(b, 100000)
	st := db.MustPrepare(`SELECT v FROM t WHERE id = ?`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := st.Query(rdb.NewInt(int64(i % 100000)))
		if err != nil || rows.Len() != 1 {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnpreparedPointSelect(b *testing.B) {
	db := benchDB(b, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := db.Query(`SELECT v FROM t WHERE id = ?`, rdb.NewInt(int64(i%100000)))
		if err != nil || rows.Len() != 1 {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexedJoin(b *testing.B) {
	db := benchDB(b, 10000)
	st := db.MustPrepare(`SELECT a.id FROM t a, t b WHERE a.v = ? AND b.id = a.id`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Query(rdb.NewInt(int64(i % 1000))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPreparedInsertDelete(b *testing.B) {
	db := benchDB(b, 0)
	ins := db.MustPrepare(`INSERT INTO t (id, k, v) VALUES (?, ?, ?)`)
	del := db.MustPrepare(`DELETE FROM t WHERE id = ?`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := rdb.NewInt(int64(i))
		if _, err := ins.Exec(id, rdb.NewText("k"), rdb.NewInt(1)); err != nil {
			b.Fatal(err)
		}
		if _, err := del.Exec(id); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGroupByAggregate(b *testing.B) {
	db := benchDB(b, 10000)
	st := db.MustPrepare(`SELECT v, COUNT(*), MAX(id) FROM t GROUP BY v`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Query(); err != nil {
			b.Fatal(err)
		}
	}
}
