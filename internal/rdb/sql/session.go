package sql

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mdv/internal/rdb"
)

// DB wraps an rdb.Database with a SQL interface. Statements are serialized
// at statement granularity: reader statements (SELECT) run concurrently
// under the shared statement lock, writer statements (DDL and DML) run
// exclusively. This, together with the materialize-before-mutate execution
// of DML, makes every statement deadlock-free and atomic with respect to
// other statements. Compiled SELECT plans are immutable and allocate all
// cursor state per execution, so any number of goroutines may run the same
// prepared statement concurrently; multi-statement read consistency is
// available through BeginRead/View.
type DB struct {
	raw *rdb.Database
	// stmtMu gives readers shared and writers exclusive access per statement.
	stmtMu sync.RWMutex
	// planVersion invalidates cached prepared-statement plans after DDL.
	planVersion atomic.Uint64
	// met is the optional instrument bundle (see EnableMetrics); nil until
	// metrics are enabled, making the disabled path one atomic load.
	met atomic.Pointer[dbMetrics]
}

// NewDB wraps an existing engine database.
func NewDB(raw *rdb.Database) *DB { return &DB{raw: raw} }

// Open creates a new, empty SQL database.
func Open() *DB { return NewDB(rdb.NewDatabase()) }

// Raw exposes the underlying engine database (for persistence and direct
// table access in tests).
func (d *DB) Raw() *rdb.Database { return d.raw }

// bumpPlanVersion invalidates cached plans after DDL.
func (d *DB) bumpPlanVersion() { d.planVersion.Add(1) }

// Rows is a fully materialized query result.
type Rows struct {
	Columns []string
	Data    [][]rdb.Value
}

// Len returns the number of result rows.
func (r *Rows) Len() int { return len(r.Data) }

// Empty reports whether the result has no rows.
func (r *Rows) Empty() bool { return len(r.Data) == 0 }

// Scalar returns the single value of a 1x1 result.
func (r *Rows) Scalar() (rdb.Value, error) {
	if len(r.Data) != 1 || len(r.Data[0]) != 1 {
		return rdb.Null(), fmt.Errorf("sql: result is not scalar (%dx%d)", len(r.Data), len(r.Columns))
	}
	return r.Data[0][0], nil
}

// Col returns the position of the named column, or -1.
func (r *Rows) Col(name string) int {
	for i, c := range r.Columns {
		if c == name {
			return i
		}
	}
	return -1
}

// Exec parses and executes a statement, returning the number of affected
// rows (for DML; DDL returns 0).
func (d *DB) Exec(query string, params ...rdb.Value) (int, error) {
	st, err := Parse(query)
	if err != nil {
		return 0, err
	}
	return d.ExecStmt(st, params)
}

// Query parses and executes a SELECT, materializing all rows.
func (d *DB) Query(query string, params ...rdb.Value) (*Rows, error) {
	st, err := Parse(query)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sql: Query requires a SELECT statement")
	}
	return d.querySelect(sel, params)
}

// QueryFunc executes a SELECT, streaming each row to visit. The row slice is
// owned by the callback (a fresh slice per row).
func (d *DB) QueryFunc(query string, params []rdb.Value, visit func(row []rdb.Value) error) error {
	st, err := Parse(query)
	if err != nil {
		return err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return fmt.Errorf("sql: QueryFunc requires a SELECT statement")
	}
	t0 := time.Now()
	plan, err := buildSelectPlan(d.raw, sel)
	if err != nil {
		return err
	}
	defer d.observeSelect(plan, t0)
	d.stmtMu.RLock()
	defer d.stmtMu.RUnlock()
	return plan.run(params, visit)
}

func (d *DB) querySelect(sel *SelectStmt, params []rdb.Value) (*Rows, error) {
	t0 := time.Now()
	plan, err := buildSelectPlan(d.raw, sel)
	if err != nil {
		return nil, err
	}
	defer d.observeSelect(plan, t0)
	d.stmtMu.RLock()
	defer d.stmtMu.RUnlock()
	return runPlan(plan, params)
}

func runPlan(plan *selectPlan, params []rdb.Value) (*Rows, error) {
	rows := &Rows{Columns: plan.projNames}
	err := plan.run(params, func(row []rdb.Value) error {
		rows.Data = append(rows.Data, row)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// ExecStmt executes an already parsed statement.
func (d *DB) ExecStmt(st Statement, params []rdb.Value) (int, error) {
	switch s := st.(type) {
	case *SelectStmt:
		rows, err := d.querySelect(s, params)
		if err != nil {
			return 0, err
		}
		return rows.Len(), nil
	case *CreateTableStmt:
		defer d.observeExec(opDDL, time.Now())
		d.stmtMu.Lock()
		defer d.stmtMu.Unlock()
		defer d.bumpPlanVersion()
		_, err := d.raw.CreateTable(s.Def)
		if err != nil && s.IfNotExists && errors.Is(err, rdb.ErrTableExists) {
			return 0, nil
		}
		return 0, err
	case *CreateIndexStmt:
		defer d.observeExec(opDDL, time.Now())
		d.stmtMu.Lock()
		defer d.stmtMu.Unlock()
		defer d.bumpPlanVersion()
		_, err := d.raw.CreateIndex(s.Def)
		if err != nil && s.IfNotExists && errors.Is(err, rdb.ErrIndexExists) {
			return 0, nil
		}
		return 0, err
	case *DropTableStmt:
		defer d.observeExec(opDDL, time.Now())
		d.stmtMu.Lock()
		defer d.stmtMu.Unlock()
		defer d.bumpPlanVersion()
		err := d.raw.DropTable(s.Name)
		if err != nil && s.IfExists && errors.Is(err, rdb.ErrNoSuchTable) {
			return 0, nil
		}
		return 0, err
	case *DropIndexStmt:
		defer d.observeExec(opDDL, time.Now())
		d.stmtMu.Lock()
		defer d.stmtMu.Unlock()
		defer d.bumpPlanVersion()
		return 0, d.raw.DropIndex(s.Table, s.Name)
	case *InsertStmt:
		defer d.observeExec(opInsert, time.Now())
		d.stmtMu.Lock()
		defer d.stmtMu.Unlock()
		return d.execInsert(s, params)
	case *UpdateStmt:
		defer d.observeExec(opUpdate, time.Now())
		d.stmtMu.Lock()
		defer d.stmtMu.Unlock()
		return d.execUpdate(s, params)
	case *DeleteStmt:
		defer d.observeExec(opDelete, time.Now())
		d.stmtMu.Lock()
		defer d.stmtMu.Unlock()
		return d.execDelete(s, params)
	default:
		return 0, fmt.Errorf("sql: unsupported statement %T", st)
	}
}

// execInsert handles INSERT ... VALUES and INSERT ... SELECT. The SELECT
// source is fully materialized before the first row is inserted, so
// inserting into a table read by the SELECT is well defined.
func (d *DB) execInsert(s *InsertStmt, params []rdb.Value) (int, error) {
	t, err := d.raw.Table(s.Table)
	if err != nil {
		return 0, err
	}
	def := t.Def()
	// Map the statement's column list to row positions.
	colPos := make([]int, 0, len(def.Columns))
	if s.Columns == nil {
		for i := range def.Columns {
			colPos = append(colPos, i)
		}
	} else {
		for _, c := range s.Columns {
			ci := def.ColumnIndex(c)
			if ci < 0 {
				return 0, fmt.Errorf("sql: %w: %s.%s", rdb.ErrNoSuchColumn, s.Table, c)
			}
			colPos = append(colPos, ci)
		}
	}

	buildRow := func(vals []rdb.Value) (rdb.Row, error) {
		if len(vals) != len(colPos) {
			return nil, fmt.Errorf("sql: INSERT into %s: %d values for %d columns", s.Table, len(vals), len(colPos))
		}
		row := make(rdb.Row, len(def.Columns))
		for i := range row {
			row[i] = rdb.Null()
		}
		for i, p := range colPos {
			row[p] = vals[i]
		}
		return row, nil
	}

	var source [][]rdb.Value
	if s.Select != nil {
		plan, err := buildSelectPlan(d.raw, s.Select)
		if err != nil {
			return 0, err
		}
		if err := plan.run(params, func(row []rdb.Value) error {
			source = append(source, row)
			return nil
		}); err != nil {
			return 0, err
		}
	} else {
		emptySc := &scope{}
		for _, exprRow := range s.Rows {
			vals := make([]rdb.Value, len(exprRow))
			for i, e := range exprRow {
				ce, err := compileExpr(e, emptySc, nil)
				if err != nil {
					return 0, err
				}
				v, err := ce(nil, params)
				if err != nil {
					return 0, err
				}
				vals[i] = v
			}
			source = append(source, vals)
		}
	}

	n := 0
	for _, vals := range source {
		row, err := buildRow(vals)
		if err != nil {
			return n, err
		}
		if _, err := t.Insert(row); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// scanCandidates visits the rows a WHERE clause could match, using an index
// point lookup when the clause contains an equality between an indexed
// column and a constant/parameter, and falling back to a full scan
// otherwise. The WHERE clause itself is always re-evaluated by the caller,
// so the index is purely an access-path optimization — without it, UPDATE
// and DELETE on large catalog tables (e.g. the per-rule refcount updates
// during rule-base registration) degrade to O(table) per statement.
func scanCandidates(t *rdb.Table, def rdb.TableDef, where Expr, params []rdb.Value,
	visit func(id int64, row rdb.Row) bool) {
	if where != nil {
		for _, conj := range splitAnd(where) {
			be, ok := conj.(*BinaryExpr)
			if !ok || be.Op != "=" {
				continue
			}
			colSide, valSide := be.Left, be.Right
			if _, ok := colSide.(*ColumnRef); !ok {
				colSide, valSide = be.Right, be.Left
			}
			cr, ok := colSide.(*ColumnRef)
			if !ok {
				continue
			}
			ci := def.ColumnIndex(cr.Column)
			if ci < 0 {
				continue
			}
			var val rdb.Value
			switch v := valSide.(type) {
			case *Literal:
				val = v.Value
			case *Param:
				if v.Ordinal >= len(params) {
					continue
				}
				val = params[v.Ordinal]
			default:
				continue
			}
			for _, ix := range t.Indexes() {
				cols := ix.ColumnPositions()
				if len(cols) == 0 || cols[0] != ci {
					continue
				}
				if len(cols) == 1 {
					for _, id := range ix.Lookup(rdb.Key{val}) {
						if row, ok := t.Get(id); ok {
							if !visit(id, row) {
								return
							}
						}
					}
					return
				}
				if ix.Ordered() {
					key := rdb.Key{val}
					stop := false
					ix.ScanRange(key, key, func(_ rdb.Key, id int64) bool {
						row, ok := t.Get(id)
						if !ok {
							return true
						}
						if !visit(id, row) {
							stop = true
							return false
						}
						return true
					})
					_ = stop
					return
				}
			}
		}
	}
	t.Scan(visit)
}

// execUpdate evaluates the WHERE clause over the table, materializes the
// matching row IDs and their new contents, then applies the updates.
func (d *DB) execUpdate(s *UpdateStmt, params []rdb.Value) (int, error) {
	t, err := d.raw.Table(s.Table)
	if err != nil {
		return 0, err
	}
	def := t.Def()
	sc := &scope{rels: []relBinding{{alias: s.Table, def: def, start: 0}}}

	type setOp struct {
		col int
		val cexpr
	}
	sets := make([]setOp, len(s.Set))
	for i, sc2 := range s.Set {
		ci := def.ColumnIndex(sc2.Column)
		if ci < 0 {
			return 0, fmt.Errorf("sql: %w: %s.%s", rdb.ErrNoSuchColumn, s.Table, sc2.Column)
		}
		ce, err := compileExpr(sc2.Value, sc, nil)
		if err != nil {
			return 0, err
		}
		sets[i] = setOp{col: ci, val: ce}
	}
	var where cexpr
	if s.Where != nil {
		ce, err := compileExpr(s.Where, sc, nil)
		if err != nil {
			return 0, err
		}
		where = ce
	}

	type pending struct {
		id  int64
		row rdb.Row
	}
	var updates []pending
	var evalErr error
	scanCandidates(t, def, s.Where, params, func(id int64, row rdb.Row) bool {
		env := []rdb.Value(row)
		if where != nil {
			v, err := where(env, params)
			if err != nil {
				evalErr = err
				return false
			}
			b, _ := truthy(v)
			if v.IsNull() || !b {
				return true
			}
		}
		newRow := row.Clone()
		for _, op := range sets {
			v, err := op.val(env, params)
			if err != nil {
				evalErr = err
				return false
			}
			newRow[op.col] = v
		}
		updates = append(updates, pending{id: id, row: newRow})
		return true
	})
	if evalErr != nil {
		return 0, evalErr
	}
	for _, u := range updates {
		if err := t.Update(u.id, u.row); err != nil {
			return 0, err
		}
	}
	return len(updates), nil
}

// execDelete materializes matching row IDs, then deletes them.
func (d *DB) execDelete(s *DeleteStmt, params []rdb.Value) (int, error) {
	t, err := d.raw.Table(s.Table)
	if err != nil {
		return 0, err
	}
	def := t.Def()
	sc := &scope{rels: []relBinding{{alias: s.Table, def: def, start: 0}}}
	var where cexpr
	if s.Where != nil {
		ce, err := compileExpr(s.Where, sc, nil)
		if err != nil {
			return 0, err
		}
		where = ce
	}
	var ids []int64
	var evalErr error
	scanCandidates(t, def, s.Where, params, func(id int64, row rdb.Row) bool {
		if where != nil {
			v, err := where([]rdb.Value(row), params)
			if err != nil {
				evalErr = err
				return false
			}
			b, _ := truthy(v)
			if v.IsNull() || !b {
				return true
			}
		}
		ids = append(ids, id)
		return true
	})
	if evalErr != nil {
		return 0, evalErr
	}
	for _, id := range ids {
		if _, err := t.Delete(id); err != nil {
			return 0, err
		}
	}
	return len(ids), nil
}

// Stmt is a prepared statement: the parse tree is cached, and for SELECTs
// the compiled plan is cached too and re-validated against catalog changes.
// A Stmt is safe for concurrent use: plans are immutable once built and
// every execution allocates its own cursor state, so concurrent Query /
// QueryFunc calls share the cached plan without any per-execution lock.
type Stmt struct {
	db  *DB
	ast Statement

	// cached is the compiled SELECT plan tagged with the catalog version
	// it was built against. Racing rebuilds after DDL are benign: the
	// plans are equivalent and the last store wins.
	cached atomic.Pointer[cachedPlan]
}

type cachedPlan struct {
	plan *selectPlan
	ver  uint64
}

// Prepare parses a statement for repeated execution.
func (d *DB) Prepare(query string) (*Stmt, error) {
	ast, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return &Stmt{db: d, ast: ast}, nil
}

// MustPrepare is Prepare, panicking on parse errors. Intended for statically
// known statements (the MDV filter's fixed query set).
func (d *DB) MustPrepare(query string) *Stmt {
	st, err := d.Prepare(query)
	if err != nil {
		panic(err)
	}
	return st
}

// selectPlanFor returns a cached plan for the prepared SELECT, rebuilding it
// if DDL has run since it was compiled.
func (s *Stmt) selectPlanFor(sel *SelectStmt) (*selectPlan, error) {
	ver := s.db.planVersion.Load()
	if c := s.cached.Load(); c != nil && c.ver == ver {
		s.db.observePlanCache(true)
		return c.plan, nil
	}
	s.db.observePlanCache(false)
	plan, err := buildSelectPlan(s.db.raw, sel)
	if err != nil {
		return nil, err
	}
	s.cached.Store(&cachedPlan{plan: plan, ver: ver})
	return plan, nil
}

// Query executes a prepared SELECT.
func (s *Stmt) Query(params ...rdb.Value) (*Rows, error) {
	sel, ok := s.ast.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sql: prepared statement is not a SELECT")
	}
	t0 := time.Now()
	plan, err := s.selectPlanFor(sel)
	if err != nil {
		return nil, err
	}
	defer s.db.observeSelect(plan, t0)
	s.db.stmtMu.RLock()
	defer s.db.stmtMu.RUnlock()
	return runPlan(plan, params)
}

// QueryFunc executes a prepared SELECT, streaming rows to visit.
func (s *Stmt) QueryFunc(params []rdb.Value, visit func(row []rdb.Value) error) error {
	sel, ok := s.ast.(*SelectStmt)
	if !ok {
		return fmt.Errorf("sql: prepared statement is not a SELECT")
	}
	t0 := time.Now()
	plan, err := s.selectPlanFor(sel)
	if err != nil {
		return err
	}
	defer s.db.observeSelect(plan, t0)
	s.db.stmtMu.RLock()
	defer s.db.stmtMu.RUnlock()
	return plan.run(params, visit)
}

// Exec executes a prepared statement of any kind.
func (s *Stmt) Exec(params ...rdb.Value) (int, error) {
	if sel, ok := s.ast.(*SelectStmt); ok {
		t0 := time.Now()
		plan, err := s.selectPlanFor(sel)
		if err != nil {
			return 0, err
		}
		defer s.db.observeSelect(plan, t0)
		s.db.stmtMu.RLock()
		defer s.db.stmtMu.RUnlock()
		rows, err := runPlan(plan, params)
		if err != nil {
			return 0, err
		}
		return rows.Len(), nil
	}
	return s.db.ExecStmt(s.ast, params)
}

// ExecBatch executes a prepared single-row INSERT ... VALUES statement once
// per parameter row, acquiring the writer lock and compiling the value
// expressions a single time for the whole batch. The filter engine loads its
// per-run scratch atoms through this: row-at-a-time Exec pays one exclusive
// lock round trip plus one expression compilation per atom, which dominates
// the load cost of large publish batches. Rows inserted before a failing row
// stay inserted — the same contract as issuing the inserts one by one.
func (s *Stmt) ExecBatch(paramRows [][]rdb.Value) (int, error) {
	ins, ok := s.ast.(*InsertStmt)
	if !ok || ins.Select != nil || len(ins.Rows) != 1 {
		return 0, fmt.Errorf("sql: ExecBatch requires a single-row INSERT ... VALUES statement")
	}
	if len(paramRows) == 0 {
		return 0, nil
	}
	defer s.db.observeExec(opInsert, time.Now())
	s.db.stmtMu.Lock()
	defer s.db.stmtMu.Unlock()
	t, err := s.db.raw.Table(ins.Table)
	if err != nil {
		return 0, err
	}
	def := t.Def()
	colPos := make([]int, 0, len(def.Columns))
	if ins.Columns == nil {
		for i := range def.Columns {
			colPos = append(colPos, i)
		}
	} else {
		for _, c := range ins.Columns {
			ci := def.ColumnIndex(c)
			if ci < 0 {
				return 0, fmt.Errorf("sql: %w: %s.%s", rdb.ErrNoSuchColumn, ins.Table, c)
			}
			colPos = append(colPos, ci)
		}
	}
	exprRow := ins.Rows[0]
	if len(exprRow) != len(colPos) {
		return 0, fmt.Errorf("sql: INSERT into %s: %d values for %d columns",
			ins.Table, len(exprRow), len(colPos))
	}
	emptySc := &scope{}
	compiled := make([]cexpr, len(exprRow))
	for i, ex := range exprRow {
		ce, err := compileExpr(ex, emptySc, nil)
		if err != nil {
			return 0, err
		}
		compiled[i] = ce
	}
	n := 0
	for _, params := range paramRows {
		row := make(rdb.Row, len(def.Columns))
		for i := range row {
			row[i] = rdb.Null()
		}
		for i, ce := range compiled {
			v, err := ce(nil, params)
			if err != nil {
				return n, err
			}
			row[colPos[i]] = v
		}
		if _, err := t.Insert(row); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// MustExec runs Exec and panics on error. For schema bootstrap code.
func (d *DB) MustExec(query string, params ...rdb.Value) int {
	n, err := d.Exec(query, params...)
	if err != nil {
		panic(fmt.Sprintf("sql: MustExec(%q): %v", query, err))
	}
	return n
}

// ReadTxn is a multi-statement read-only view of the database: it holds the
// shared statement lock for its whole lifetime, so no writer statement (DML
// or DDL) interleaves between its queries, while other readers — including
// other ReadTxns — proceed concurrently. Obtain one with BeginRead and
// release it with End (or use View). The owning goroutine must not run
// writer statements, nor plain DB/Stmt query methods (they would re-acquire
// the read lock and can deadlock behind a waiting writer), between
// BeginRead and End; use the ReadTxn's own methods instead.
type ReadTxn struct {
	db   *DB
	done bool
}

// BeginRead opens a read-only transaction, blocking until no writer
// statement is running.
func (d *DB) BeginRead() *ReadTxn {
	d.stmtMu.RLock()
	return &ReadTxn{db: d}
}

// End releases the transaction's shared lock. Safe to call twice.
func (t *ReadTxn) End() {
	if t.done {
		return
	}
	t.done = true
	t.db.stmtMu.RUnlock()
}

// View runs fn inside a read transaction: every query fn issues through the
// transaction sees the same writer-free snapshot of the database.
func (d *DB) View(fn func(*ReadTxn) error) error {
	t := d.BeginRead()
	defer t.End()
	return fn(t)
}

// Query parses and executes a SELECT inside the transaction.
func (t *ReadTxn) Query(query string, params ...rdb.Value) (*Rows, error) {
	st, err := Parse(query)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sql: Query requires a SELECT statement")
	}
	t0 := time.Now()
	plan, err := buildSelectPlan(t.db.raw, sel)
	if err != nil {
		return nil, err
	}
	defer t.db.observeSelect(plan, t0)
	return runPlan(plan, params)
}

// QueryFunc executes a SELECT inside the transaction, streaming each row to
// visit.
func (t *ReadTxn) QueryFunc(query string, params []rdb.Value, visit func(row []rdb.Value) error) error {
	st, err := Parse(query)
	if err != nil {
		return err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return fmt.Errorf("sql: QueryFunc requires a SELECT statement")
	}
	t0 := time.Now()
	plan, err := buildSelectPlan(t.db.raw, sel)
	if err != nil {
		return err
	}
	defer t.db.observeSelect(plan, t0)
	return plan.run(params, visit)
}

// QueryStmt executes a prepared SELECT inside the transaction.
func (t *ReadTxn) QueryStmt(s *Stmt, params ...rdb.Value) (*Rows, error) {
	sel, ok := s.ast.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sql: prepared statement is not a SELECT")
	}
	t0 := time.Now()
	plan, err := s.selectPlanFor(sel)
	if err != nil {
		return nil, err
	}
	defer s.db.observeSelect(plan, t0)
	return runPlan(plan, params)
}
