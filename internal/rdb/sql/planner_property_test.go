package sql

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"mdv/internal/rdb"
)

// Property: the planner's access-path choices (index point lookups, prefix
// and range scans, full scans) never change query results. Two databases
// with identical data — one fully indexed, one with no secondary indexes —
// must return identical rows for randomly generated queries.

func buildPair(t *testing.T, rng *rand.Rand, rows int) (*DB, *DB) {
	t.Helper()
	ddl := `CREATE TABLE d (id INT PRIMARY KEY, cls TEXT, prop TEXT, val INT, txt TEXT)`
	indexed := Open()
	indexed.MustExec(ddl)
	indexed.MustExec(`CREATE INDEX i_cls ON d (cls)`)
	indexed.MustExec(`CREATE INDEX i_cp ON d (cls, prop)`)
	indexed.MustExec(`CREATE INDEX i_val ON d (val)`)
	indexed.MustExec(`CREATE INDEX i_txt ON d (txt) USING HASH`)
	plain := Open()
	plain.MustExec(ddl)

	classes := []string{"A", "B", "C"}
	props := []string{"p", "q", "r", "s"}
	for i := 0; i < rows; i++ {
		var valParam rdb.Value = rdb.NewInt(int64(rng.Intn(20)))
		if rng.Intn(10) == 0 {
			valParam = rdb.Null()
		}
		params := []rdb.Value{
			rdb.NewInt(int64(i)),
			rdb.NewText(classes[rng.Intn(len(classes))]),
			rdb.NewText(props[rng.Intn(len(props))]),
			valParam,
			rdb.NewText(fmt.Sprintf("t%d", rng.Intn(15))),
		}
		for _, db := range []*DB{indexed, plain} {
			if _, err := db.Exec(`INSERT INTO d (id, cls, prop, val, txt) VALUES (?, ?, ?, ?, ?)`, params...); err != nil {
				t.Fatal(err)
			}
		}
	}
	return indexed, plain
}

// randomQuery draws a SELECT with random conjuncts that exercise every
// access-path form the planner knows.
func randomQuery(rng *rand.Rand) string {
	var conds []string
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		switch rng.Intn(7) {
		case 0:
			conds = append(conds, fmt.Sprintf("cls = '%s'", []string{"A", "B", "C", "Z"}[rng.Intn(4)]))
		case 1:
			conds = append(conds, fmt.Sprintf("cls = '%s' AND prop = '%s'",
				[]string{"A", "B"}[rng.Intn(2)], []string{"p", "q"}[rng.Intn(2)]))
		case 2:
			conds = append(conds, fmt.Sprintf("val = %d", rng.Intn(22)-1))
		case 3:
			conds = append(conds, fmt.Sprintf("val > %d", rng.Intn(20)))
		case 4:
			conds = append(conds, fmt.Sprintf("val <= %d", rng.Intn(20)))
		case 5:
			conds = append(conds, fmt.Sprintf("txt = 't%d'", rng.Intn(16)))
		default:
			conds = append(conds, fmt.Sprintf("id >= %d AND id < %d", rng.Intn(50), 50+rng.Intn(100)))
		}
	}
	return "SELECT id, cls, prop, val, txt FROM d WHERE " + strings.Join(conds, " AND ")
}

func rowsFingerprint(rows *Rows) []string {
	out := make([]string, 0, rows.Len())
	for _, r := range rows.Data {
		parts := make([]string, len(r))
		for i, v := range r {
			parts[i] = v.Kind.String() + ":" + v.String()
		}
		out = append(out, strings.Join(parts, "|"))
	}
	sort.Strings(out)
	return out
}

func TestPlannerIndexEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	indexed, plain := buildPair(t, rng, 300)
	for q := 0; q < 300; q++ {
		query := randomQuery(rng)
		r1, err := indexed.Query(query)
		if err != nil {
			t.Fatalf("%s: %v", query, err)
		}
		r2, err := plain.Query(query)
		if err != nil {
			t.Fatalf("%s: %v", query, err)
		}
		f1, f2 := rowsFingerprint(r1), rowsFingerprint(r2)
		if strings.Join(f1, "\n") != strings.Join(f2, "\n") {
			t.Fatalf("plan divergence for %q:\n indexed %d rows\n plain   %d rows", query, len(f1), len(f2))
		}
	}
}

// TestPlannerJoinEquivalence: the same property for two-relation joins,
// where the inner relation's access path is chosen from join conjuncts.
func TestPlannerJoinEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	indexed, plain := buildPair(t, rng, 150)
	joins := []string{
		`SELECT a.id, b.id FROM d a, d b WHERE b.val = a.val AND a.cls = 'A'`,
		`SELECT a.id, b.id FROM d a, d b WHERE b.id = a.val AND a.prop = 'p'`,
		`SELECT a.id, b.txt FROM d a, d b WHERE b.txt = a.txt AND a.id < 20`,
		`SELECT a.id, b.id FROM d a, d b WHERE b.cls = a.cls AND b.prop = a.prop AND a.id < 10 AND b.id > 140`,
		`SELECT a.id, b.id FROM d a, d b WHERE b.val > a.val AND a.id < 5 AND b.id < 10`,
	}
	for _, query := range joins {
		r1, err := indexed.Query(query)
		if err != nil {
			t.Fatalf("%s: %v", query, err)
		}
		r2, err := plain.Query(query)
		if err != nil {
			t.Fatalf("%s: %v", query, err)
		}
		f1, f2 := rowsFingerprint(r1), rowsFingerprint(r2)
		if strings.Join(f1, "\n") != strings.Join(f2, "\n") {
			t.Fatalf("join plan divergence for %q:\n indexed %d rows\n plain   %d rows", query, len(f1), len(f2))
		}
	}
}

// TestPlannerNullKeyLookups: NULL never matches through an index, exactly
// as it never matches through a scan.
func TestPlannerNullKeyLookups(t *testing.T) {
	indexed, plain := buildPair(t, rand.New(rand.NewSource(3)), 100)
	for _, query := range []string{
		`SELECT id FROM d WHERE val = NULL`,
		`SELECT a.id FROM d a, d b WHERE b.val = a.val AND a.id = 1`,
		`SELECT id FROM d WHERE val > NULL`,
	} {
		r1, err := indexed.Query(query)
		if err != nil {
			t.Fatalf("%s: %v", query, err)
		}
		r2, err := plain.Query(query)
		if err != nil {
			t.Fatalf("%s: %v", query, err)
		}
		if strings.Join(rowsFingerprint(r1), "\n") != strings.Join(rowsFingerprint(r2), "\n") {
			t.Fatalf("NULL divergence for %q", query)
		}
	}
}
