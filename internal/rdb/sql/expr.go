package sql

import (
	"fmt"
	"math"
	"regexp"
	"strings"
	"sync"

	"mdv/internal/rdb"
)

// scope describes the flat row environment a compiled expression runs in:
// the concatenated columns of all bound relations, in binding order.
type scope struct {
	rels []relBinding
}

type relBinding struct {
	alias string
	def   rdb.TableDef
	start int // offset of this relation's first column in the env row
}

func (sc *scope) width() int {
	if len(sc.rels) == 0 {
		return 0
	}
	last := sc.rels[len(sc.rels)-1]
	return last.start + len(last.def.Columns)
}

// resolve finds the env position of a column reference.
func (sc *scope) resolve(ref *ColumnRef) (int, error) {
	if ref.Table != "" {
		for _, rb := range sc.rels {
			if strings.EqualFold(rb.alias, ref.Table) {
				ci := rb.def.ColumnIndex(ref.Column)
				if ci < 0 {
					return 0, fmt.Errorf("sql: %w: %s.%s", rdb.ErrNoSuchColumn, ref.Table, ref.Column)
				}
				return rb.start + ci, nil
			}
		}
		return 0, fmt.Errorf("sql: unknown table or alias %q", ref.Table)
	}
	found := -1
	for _, rb := range sc.rels {
		if ci := rb.def.ColumnIndex(ref.Column); ci >= 0 {
			if found >= 0 {
				return 0, fmt.Errorf("sql: ambiguous column %q", ref.Column)
			}
			found = rb.start + ci
		}
	}
	if found < 0 {
		return 0, fmt.Errorf("sql: %w: %s", rdb.ErrNoSuchColumn, ref.Column)
	}
	return found, nil
}

// cexpr is a compiled expression: evaluated against a row environment and
// the statement parameters.
type cexpr func(env []rdb.Value, params []rdb.Value) (rdb.Value, error)

// compileExpr compiles an AST expression against a scope. Aggregate nodes
// are resolved through aggPos, which maps them to positions in the extended
// environment built by the grouping operator; outside grouped queries
// aggPos is nil and aggregates are rejected.
func compileExpr(e Expr, sc *scope, aggPos map[*AggExpr]int) (cexpr, error) {
	switch ex := e.(type) {
	case *Literal:
		v := ex.Value
		return func([]rdb.Value, []rdb.Value) (rdb.Value, error) { return v, nil }, nil

	case *Param:
		ord := ex.Ordinal
		return func(_ []rdb.Value, params []rdb.Value) (rdb.Value, error) {
			if ord >= len(params) {
				return rdb.Null(), fmt.Errorf("sql: missing parameter %d", ord+1)
			}
			return params[ord], nil
		}, nil

	case *ColumnRef:
		pos, err := sc.resolve(ex)
		if err != nil {
			return nil, err
		}
		return func(env []rdb.Value, _ []rdb.Value) (rdb.Value, error) {
			return env[pos], nil
		}, nil

	case *AggExpr:
		if aggPos == nil {
			return nil, fmt.Errorf("sql: aggregate %s used outside GROUP BY context", ex.Name)
		}
		pos, ok := aggPos[ex]
		if !ok {
			return nil, fmt.Errorf("sql: internal: unregistered aggregate %s", ex.Name)
		}
		return func(env []rdb.Value, _ []rdb.Value) (rdb.Value, error) {
			return env[pos], nil
		}, nil

	case *UnaryExpr:
		x, err := compileExpr(ex.X, sc, aggPos)
		if err != nil {
			return nil, err
		}
		switch ex.Op {
		case "NOT":
			return func(env []rdb.Value, params []rdb.Value) (rdb.Value, error) {
				v, err := x(env, params)
				if err != nil {
					return rdb.Null(), err
				}
				if v.IsNull() {
					return rdb.Null(), nil
				}
				b, err := truthy(v)
				if err != nil {
					return rdb.Null(), err
				}
				return rdb.NewBool(!b), nil
			}, nil
		case "-":
			return func(env []rdb.Value, params []rdb.Value) (rdb.Value, error) {
				v, err := x(env, params)
				if err != nil {
					return rdb.Null(), err
				}
				switch v.Kind {
				case rdb.KindNull:
					return rdb.Null(), nil
				case rdb.KindInt:
					return rdb.NewInt(-v.Int), nil
				case rdb.KindFloat:
					return rdb.NewFloat(-v.Float), nil
				}
				return rdb.Null(), fmt.Errorf("sql: cannot negate %s", v.Kind)
			}, nil
		}
		return nil, fmt.Errorf("sql: unknown unary operator %q", ex.Op)

	case *IsNullExpr:
		x, err := compileExpr(ex.X, sc, aggPos)
		if err != nil {
			return nil, err
		}
		not := ex.Not
		return func(env []rdb.Value, params []rdb.Value) (rdb.Value, error) {
			v, err := x(env, params)
			if err != nil {
				return rdb.Null(), err
			}
			return rdb.NewBool(v.IsNull() != not), nil
		}, nil

	case *InExpr:
		x, err := compileExpr(ex.X, sc, aggPos)
		if err != nil {
			return nil, err
		}
		list := make([]cexpr, len(ex.List))
		for i, le := range ex.List {
			ce, err := compileExpr(le, sc, aggPos)
			if err != nil {
				return nil, err
			}
			list[i] = ce
		}
		not := ex.Not
		return func(env []rdb.Value, params []rdb.Value) (rdb.Value, error) {
			v, err := x(env, params)
			if err != nil {
				return rdb.Null(), err
			}
			if v.IsNull() {
				return rdb.Null(), nil
			}
			sawNull := false
			for _, ce := range list {
				lv, err := ce(env, params)
				if err != nil {
					return rdb.Null(), err
				}
				if lv.IsNull() {
					sawNull = true
					continue
				}
				if rdb.Equal(v, lv) {
					return rdb.NewBool(!not), nil
				}
			}
			if sawNull {
				return rdb.Null(), nil
			}
			return rdb.NewBool(not), nil
		}, nil

	case *CastExpr:
		x, err := compileExpr(ex.X, sc, aggPos)
		if err != nil {
			return nil, err
		}
		kind := ex.Type
		return func(env []rdb.Value, params []rdb.Value) (rdb.Value, error) {
			v, err := x(env, params)
			if err != nil {
				return rdb.Null(), err
			}
			return v.CoerceTo(kind)
		}, nil

	case *FuncExpr:
		args := make([]cexpr, len(ex.Args))
		for i, a := range ex.Args {
			ce, err := compileExpr(a, sc, aggPos)
			if err != nil {
				return nil, err
			}
			args[i] = ce
		}
		return compileFunc(ex.Name, args)

	case *BinaryExpr:
		return compileBinary(ex, sc, aggPos)
	}
	return nil, fmt.Errorf("sql: unsupported expression %T", e)
}

func compileFunc(name string, args []cexpr) (cexpr, error) {
	argc := map[string][2]int{
		"LOWER": {1, 1}, "UPPER": {1, 1}, "LENGTH": {1, 1}, "ABS": {1, 1},
		"COALESCE": {1, 64},
	}
	rng, ok := argc[name]
	if !ok {
		return nil, fmt.Errorf("sql: unknown function %q", name)
	}
	if len(args) < rng[0] || len(args) > rng[1] {
		return nil, fmt.Errorf("sql: function %s: wrong argument count %d", name, len(args))
	}
	switch name {
	case "LOWER", "UPPER":
		upper := name == "UPPER"
		return func(env []rdb.Value, params []rdb.Value) (rdb.Value, error) {
			v, err := args[0](env, params)
			if err != nil || v.IsNull() {
				return v, err
			}
			s, err := v.CoerceTo(rdb.KindText)
			if err != nil {
				return rdb.Null(), err
			}
			if upper {
				return rdb.NewText(strings.ToUpper(s.Str)), nil
			}
			return rdb.NewText(strings.ToLower(s.Str)), nil
		}, nil
	case "LENGTH":
		return func(env []rdb.Value, params []rdb.Value) (rdb.Value, error) {
			v, err := args[0](env, params)
			if err != nil || v.IsNull() {
				return v, err
			}
			s, err := v.CoerceTo(rdb.KindText)
			if err != nil {
				return rdb.Null(), err
			}
			return rdb.NewInt(int64(len(s.Str))), nil
		}, nil
	case "ABS":
		return func(env []rdb.Value, params []rdb.Value) (rdb.Value, error) {
			v, err := args[0](env, params)
			if err != nil || v.IsNull() {
				return v, err
			}
			switch v.Kind {
			case rdb.KindInt:
				if v.Int < 0 {
					return rdb.NewInt(-v.Int), nil
				}
				return v, nil
			case rdb.KindFloat:
				return rdb.NewFloat(math.Abs(v.Float)), nil
			}
			return rdb.Null(), fmt.Errorf("sql: ABS of non-numeric %s", v.Kind)
		}, nil
	case "COALESCE":
		return func(env []rdb.Value, params []rdb.Value) (rdb.Value, error) {
			for _, a := range args {
				v, err := a(env, params)
				if err != nil {
					return rdb.Null(), err
				}
				if !v.IsNull() {
					return v, nil
				}
			}
			return rdb.Null(), nil
		}, nil
	}
	return nil, fmt.Errorf("sql: unknown function %q", name)
}

func compileBinary(ex *BinaryExpr, sc *scope, aggPos map[*AggExpr]int) (cexpr, error) {
	left, err := compileExpr(ex.Left, sc, aggPos)
	if err != nil {
		return nil, err
	}
	right, err := compileExpr(ex.Right, sc, aggPos)
	if err != nil {
		return nil, err
	}
	switch ex.Op {
	case "AND":
		return func(env []rdb.Value, params []rdb.Value) (rdb.Value, error) {
			lv, err := left(env, params)
			if err != nil {
				return rdb.Null(), err
			}
			// Kleene three-valued AND with short-circuit on FALSE.
			if !lv.IsNull() {
				lb, err := truthy(lv)
				if err != nil {
					return rdb.Null(), err
				}
				if !lb {
					return rdb.NewBool(false), nil
				}
			}
			rv, err := right(env, params)
			if err != nil {
				return rdb.Null(), err
			}
			if rv.IsNull() || lv.IsNull() {
				if !rv.IsNull() {
					if rb, err := truthy(rv); err != nil {
						return rdb.Null(), err
					} else if !rb {
						return rdb.NewBool(false), nil
					}
				}
				return rdb.Null(), nil
			}
			rb, err := truthy(rv)
			if err != nil {
				return rdb.Null(), err
			}
			return rdb.NewBool(rb), nil
		}, nil
	case "OR":
		return func(env []rdb.Value, params []rdb.Value) (rdb.Value, error) {
			lv, err := left(env, params)
			if err != nil {
				return rdb.Null(), err
			}
			if !lv.IsNull() {
				lb, err := truthy(lv)
				if err != nil {
					return rdb.Null(), err
				}
				if lb {
					return rdb.NewBool(true), nil
				}
			}
			rv, err := right(env, params)
			if err != nil {
				return rdb.Null(), err
			}
			if rv.IsNull() || lv.IsNull() {
				if !rv.IsNull() {
					if rb, err := truthy(rv); err != nil {
						return rdb.Null(), err
					} else if rb {
						return rdb.NewBool(true), nil
					}
				}
				return rdb.Null(), nil
			}
			rb, err := truthy(rv)
			if err != nil {
				return rdb.Null(), err
			}
			return rdb.NewBool(rb), nil
		}, nil
	case "=", "!=", "<", "<=", ">", ">=":
		op := ex.Op
		return func(env []rdb.Value, params []rdb.Value) (rdb.Value, error) {
			lv, err := left(env, params)
			if err != nil {
				return rdb.Null(), err
			}
			rv, err := right(env, params)
			if err != nil {
				return rdb.Null(), err
			}
			if lv.IsNull() || rv.IsNull() {
				return rdb.Null(), nil
			}
			c := rdb.Compare(lv, rv)
			var b bool
			switch op {
			case "=":
				b = c == 0
			case "!=":
				b = c != 0
			case "<":
				b = c < 0
			case "<=":
				b = c <= 0
			case ">":
				b = c > 0
			case ">=":
				b = c >= 0
			}
			return rdb.NewBool(b), nil
		}, nil
	case "CONTAINS":
		return func(env []rdb.Value, params []rdb.Value) (rdb.Value, error) {
			lv, err := left(env, params)
			if err != nil {
				return rdb.Null(), err
			}
			rv, err := right(env, params)
			if err != nil {
				return rdb.Null(), err
			}
			if lv.IsNull() || rv.IsNull() {
				return rdb.Null(), nil
			}
			ls, err := lv.CoerceTo(rdb.KindText)
			if err != nil {
				return rdb.Null(), err
			}
			rs, err := rv.CoerceTo(rdb.KindText)
			if err != nil {
				return rdb.Null(), err
			}
			return rdb.NewBool(strings.Contains(ls.Str, rs.Str)), nil
		}, nil
	case "LIKE":
		// Fast path: literal pattern compiled once.
		if lit, ok := ex.Right.(*Literal); ok && lit.Value.Kind == rdb.KindText {
			re, err := likeToRegexp(lit.Value.Str)
			if err != nil {
				return nil, err
			}
			return func(env []rdb.Value, params []rdb.Value) (rdb.Value, error) {
				lv, err := left(env, params)
				if err != nil {
					return rdb.Null(), err
				}
				if lv.IsNull() {
					return rdb.Null(), nil
				}
				ls, err := lv.CoerceTo(rdb.KindText)
				if err != nil {
					return rdb.Null(), err
				}
				return rdb.NewBool(re.MatchString(ls.Str)), nil
			}, nil
		}
		return func(env []rdb.Value, params []rdb.Value) (rdb.Value, error) {
			lv, err := left(env, params)
			if err != nil {
				return rdb.Null(), err
			}
			rv, err := right(env, params)
			if err != nil {
				return rdb.Null(), err
			}
			if lv.IsNull() || rv.IsNull() {
				return rdb.Null(), nil
			}
			ls, err := lv.CoerceTo(rdb.KindText)
			if err != nil {
				return rdb.Null(), err
			}
			rs, err := rv.CoerceTo(rdb.KindText)
			if err != nil {
				return rdb.Null(), err
			}
			re, err := likeRegexpCached(rs.Str)
			if err != nil {
				return rdb.Null(), err
			}
			return rdb.NewBool(re.MatchString(ls.Str)), nil
		}, nil
	case "+", "-", "*", "/", "%":
		op := ex.Op
		return func(env []rdb.Value, params []rdb.Value) (rdb.Value, error) {
			lv, err := left(env, params)
			if err != nil {
				return rdb.Null(), err
			}
			rv, err := right(env, params)
			if err != nil {
				return rdb.Null(), err
			}
			if lv.IsNull() || rv.IsNull() {
				return rdb.Null(), nil
			}
			// String concatenation via +.
			if op == "+" && (lv.Kind == rdb.KindText || rv.Kind == rdb.KindText) {
				ls, err := lv.CoerceTo(rdb.KindText)
				if err != nil {
					return rdb.Null(), err
				}
				rs, err := rv.CoerceTo(rdb.KindText)
				if err != nil {
					return rdb.Null(), err
				}
				return rdb.NewText(ls.Str + rs.Str), nil
			}
			if !lv.IsNumeric() || !rv.IsNumeric() {
				return rdb.Null(), fmt.Errorf("sql: arithmetic on non-numeric values (%s %s %s)", lv.Kind, op, rv.Kind)
			}
			if lv.Kind == rdb.KindInt && rv.Kind == rdb.KindInt {
				a, b := lv.Int, rv.Int
				switch op {
				case "+":
					return rdb.NewInt(a + b), nil
				case "-":
					return rdb.NewInt(a - b), nil
				case "*":
					return rdb.NewInt(a * b), nil
				case "/":
					if b == 0 {
						return rdb.Null(), fmt.Errorf("sql: division by zero")
					}
					return rdb.NewInt(a / b), nil
				case "%":
					if b == 0 {
						return rdb.Null(), fmt.Errorf("sql: division by zero")
					}
					return rdb.NewInt(a % b), nil
				}
			}
			a, b := lv.AsFloat(), rv.AsFloat()
			switch op {
			case "+":
				return rdb.NewFloat(a + b), nil
			case "-":
				return rdb.NewFloat(a - b), nil
			case "*":
				return rdb.NewFloat(a * b), nil
			case "/":
				if b == 0 {
					return rdb.Null(), fmt.Errorf("sql: division by zero")
				}
				return rdb.NewFloat(a / b), nil
			case "%":
				if b == 0 {
					return rdb.Null(), fmt.Errorf("sql: division by zero")
				}
				return rdb.NewFloat(math.Mod(a, b)), nil
			}
			return rdb.Null(), fmt.Errorf("sql: unknown arithmetic operator %q", op)
		}, nil
	}
	return nil, fmt.Errorf("sql: unknown binary operator %q", ex.Op)
}

// truthy converts a value to a boolean for WHERE/HAVING evaluation.
func truthy(v rdb.Value) (bool, error) {
	switch v.Kind {
	case rdb.KindBool:
		return v.Bool, nil
	case rdb.KindInt:
		return v.Int != 0, nil
	case rdb.KindFloat:
		return v.Float != 0, nil
	case rdb.KindNull:
		return false, nil
	default:
		return false, fmt.Errorf("sql: %s value used as condition", v.Kind)
	}
}

// likeToRegexp translates a SQL LIKE pattern (% and _ wildcards) into an
// anchored regular expression.
func likeToRegexp(pattern string) (*regexp.Regexp, error) {
	var sb strings.Builder
	sb.WriteString("(?s)^")
	for _, r := range pattern {
		switch r {
		case '%':
			sb.WriteString(".*")
		case '_':
			sb.WriteString(".")
		default:
			sb.WriteString(regexp.QuoteMeta(string(r)))
		}
	}
	sb.WriteString("$")
	return regexp.Compile(sb.String())
}

var likeCache sync.Map // pattern string -> *regexp.Regexp

func likeRegexpCached(pattern string) (*regexp.Regexp, error) {
	if re, ok := likeCache.Load(pattern); ok {
		return re.(*regexp.Regexp), nil
	}
	re, err := likeToRegexp(pattern)
	if err != nil {
		return nil, err
	}
	likeCache.Store(pattern, re)
	return re, nil
}
