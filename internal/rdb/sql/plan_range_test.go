package sql

import (
	"fmt"
	"testing"

	"mdv/internal/rdb"
)

// rangeDB builds a table shaped like the MDV filter tables: a composite
// B+tree index whose last column holds a typed numeric value.
func rangeDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	mustExec(t, db, `CREATE TABLE readings (
		station TEXT NOT NULL,
		sensor TEXT NOT NULL,
		num FLOAT,
		label TEXT NOT NULL
	)`)
	mustExec(t, db, `CREATE INDEX idx_read_ssn ON readings (station, sensor, num)`)
	for s := 0; s < 3; s++ {
		for v := 0; v < 10; v++ {
			mustExec(t, db,
				`INSERT INTO readings (station, sensor, num, label) VALUES (?, ?, ?, ?)`,
				rdb.NewText(fmt.Sprintf("st%d", s)), rdb.NewText("temp"),
				rdb.NewFloat(float64(v)), rdb.NewText(fmt.Sprintf("st%d-v%d", s, v)))
		}
	}
	mustExec(t, db, `INSERT INTO readings (station, sensor, num, label) VALUES (?, ?, ?, ?)`,
		rdb.NewText("st0"), rdb.NewText("temp"), rdb.Null(), rdb.NewText("st0-null"))
	return db
}

func mustExec(t *testing.T, db *DB, text string, params ...rdb.Value) {
	t.Helper()
	if _, err := db.Exec(text, params...); err != nil {
		t.Fatalf("exec %q: %v", text, err)
	}
}

// planOf compiles a SELECT and returns its plan for access-path inspection.
func planOf(t *testing.T, db *DB, text string) *selectPlan {
	t.Helper()
	st, err := Parse(text)
	if err != nil {
		t.Fatalf("parse %q: %v", text, err)
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		t.Fatalf("not a SELECT: %q", text)
	}
	plan, err := buildSelectPlan(db.Raw(), sel)
	if err != nil {
		t.Fatalf("plan %q: %v", text, err)
	}
	return plan
}

func TestPlanPrefixPlusRangeAccess(t *testing.T) {
	db := rangeDB(t)
	cases := []struct {
		sql      string
		kind     accessKind
		nKeys    int
		hasLow   bool
		hasHigh  bool
		wantRows int
	}{
		// Equality prefix + one-sided range on the next index column.
		{`SELECT label FROM readings WHERE station = 'st1' AND sensor = 'temp' AND num > 6.0`,
			accessIndexRange, 2, true, false, 3},
		{`SELECT label FROM readings WHERE station = 'st1' AND sensor = 'temp' AND num >= 6.0`,
			accessIndexRange, 2, true, false, 4},
		{`SELECT label FROM readings WHERE station = 'st1' AND sensor = 'temp' AND num < 2.0`,
			accessIndexRange, 2, false, true, 2},
		// Two-sided range.
		{`SELECT label FROM readings WHERE station = 'st1' AND sensor = 'temp' AND num >= 2.0 AND num < 5.0`,
			accessIndexRange, 2, true, true, 3},
		// Full equality on every index column is a point lookup.
		{`SELECT label FROM readings WHERE station = 'st1' AND sensor = 'temp' AND num = 4.0`,
			accessIndexPoint, 3, false, false, 1},
		// No range conjunct: plain prefix scan.
		{`SELECT label FROM readings WHERE station = 'st1' AND sensor = 'temp'`,
			accessIndexPrefix, 2, false, false, 10},
	}
	for _, tc := range cases {
		plan := planOf(t, db, tc.sql)
		ap := plan.rels[0].access
		if ap.kind != tc.kind {
			t.Errorf("%s: access kind = %d, want %d", tc.sql, ap.kind, tc.kind)
		}
		if len(ap.keyExprs) != tc.nKeys {
			t.Errorf("%s: %d key exprs, want %d", tc.sql, len(ap.keyExprs), tc.nKeys)
		}
		if (ap.lowExpr != nil) != tc.hasLow || (ap.highExpr != nil) != tc.hasHigh {
			t.Errorf("%s: bounds (low=%v, high=%v), want (%v, %v)",
				tc.sql, ap.lowExpr != nil, ap.highExpr != nil, tc.hasLow, tc.hasHigh)
		}
		rows, err := db.Query(tc.sql)
		if err != nil {
			t.Fatalf("%s: %v", tc.sql, err)
		}
		if rows.Len() != tc.wantRows {
			t.Errorf("%s: %d rows, want %d", tc.sql, rows.Len(), tc.wantRows)
		}
	}
}

// TestPlanPrefixRangeJoin exercises the shape the MDV triggering queries
// use: the inner relation's range bound comes from the outer relation's
// column.
func TestPlanPrefixRangeJoin(t *testing.T) {
	db := rangeDB(t)
	mustExec(t, db, `CREATE TABLE probes (station TEXT NOT NULL, sensor TEXT NOT NULL, num FLOAT)`)
	mustExec(t, db, `INSERT INTO probes (station, sensor, num) VALUES (?, ?, ?)`,
		rdb.NewText("st2"), rdb.NewText("temp"), rdb.NewFloat(7))

	q := `SELECT r.label FROM probes p, readings r
		WHERE r.station = p.station AND r.sensor = p.sensor AND r.num > p.num`
	plan := planOf(t, db, q)
	ap := plan.rels[1].access
	if ap.kind != accessIndexRange {
		t.Fatalf("inner access kind = %d, want range", ap.kind)
	}
	if len(ap.keyExprs) != 2 || ap.lowExpr == nil || ap.highExpr != nil {
		t.Fatalf("inner access = %d keys, low=%v high=%v; want 2 keys, low only",
			len(ap.keyExprs), ap.lowExpr != nil, ap.highExpr != nil)
	}
	rows, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 2 { // st2 values 8, 9
		t.Fatalf("join returned %d rows, want 2", rows.Len())
	}

	// NULL bound: no matches (mirrors three-valued comparison semantics).
	mustExec(t, db, `DELETE FROM probes`)
	mustExec(t, db, `INSERT INTO probes (station, sensor, num) VALUES (?, ?, ?)`,
		rdb.NewText("st2"), rdb.NewText("temp"), rdb.Null())
	rows, err = db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 0 {
		t.Fatalf("NULL bound returned %d rows, want 0", rows.Len())
	}
}

// TestPlanRangeExclusiveBoundsAndNulls checks that inclusive index bounds
// plus the residual filter give exact exclusive semantics and skip NULL
// column values.
func TestPlanRangeExclusiveBoundsAndNulls(t *testing.T) {
	db := rangeDB(t)
	rows, err := db.Query(
		`SELECT label FROM readings WHERE station = 'st0' AND sensor = 'temp' AND num > 0.0 AND num < 9.0`)
	if err != nil {
		t.Fatal(err)
	}
	// Values 1..8; the NULL row and the boundary rows are excluded.
	if rows.Len() != 8 {
		t.Fatalf("got %d rows, want 8", rows.Len())
	}
	for _, r := range rows.Data {
		if r[0].Str == "st0-null" {
			t.Fatalf("NULL num row matched a range predicate")
		}
	}
}
