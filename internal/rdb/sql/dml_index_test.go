package sql

import (
	"fmt"
	"testing"

	"mdv/internal/rdb"
)

// Tests for the index-assisted UPDATE/DELETE path (scanCandidates): the
// optimization must never change which rows a statement affects.

func dmlDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	db.MustExec(`CREATE TABLE r (id INT PRIMARY KEY, grp INT, name TEXT)`)
	db.MustExec(`CREATE INDEX i_grp ON r (grp)`)
	db.MustExec(`CREATE INDEX i_name ON r (name) USING HASH`)
	for i := 0; i < 50; i++ {
		db.MustExec(`INSERT INTO r (id, grp, name) VALUES (?, ?, ?)`,
			rdb.NewInt(int64(i)), rdb.NewInt(int64(i%5)), rdb.NewText(fmt.Sprintf("n%d", i%7)))
	}
	return db
}

func countWhere(t *testing.T, db *DB, where string) int {
	t.Helper()
	rows, err := db.Query(`SELECT COUNT(*) FROM r WHERE ` + where)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := rows.Scalar()
	return int(v.Int)
}

func TestUpdateViaPrimaryKeyIndex(t *testing.T) {
	db := dmlDB(t)
	n, err := db.Exec(`UPDATE r SET name = 'changed' WHERE id = 7`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("updated %d rows", n)
	}
	if got := countWhere(t, db, `name = 'changed'`); got != 1 {
		t.Errorf("changed rows = %d", got)
	}
}

func TestUpdateViaSecondaryIndexWithResidual(t *testing.T) {
	db := dmlDB(t)
	// grp = 2 selects ids 2,7,12,...,47 (10 rows); residual halves it.
	n, err := db.Exec(`UPDATE r SET name = 'x' WHERE grp = 2 AND id < 25`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("updated %d rows, want 5", n)
	}
	if got := countWhere(t, db, `name = 'x'`); got != 5 {
		t.Errorf("marked rows = %d", got)
	}
}

func TestDeleteViaHashIndex(t *testing.T) {
	db := dmlDB(t)
	before := countWhere(t, db, `name = 'n3'`)
	n, err := db.Exec(`DELETE FROM r WHERE name = 'n3'`)
	if err != nil {
		t.Fatal(err)
	}
	if n != before {
		t.Errorf("deleted %d rows, want %d", n, before)
	}
	if got := countWhere(t, db, `name = 'n3'`); got != 0 {
		t.Errorf("rows remain: %d", got)
	}
}

func TestUpdateWithParamKey(t *testing.T) {
	db := dmlDB(t)
	st := db.MustPrepare(`UPDATE r SET grp = grp + 100 WHERE id = ?`)
	for i := 0; i < 5; i++ {
		n, err := st.Exec(rdb.NewInt(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if n != 1 {
			t.Errorf("id %d: updated %d rows", i, n)
		}
	}
	if got := countWhere(t, db, `grp >= 100`); got != 5 {
		t.Errorf("updated rows = %d", got)
	}
}

func TestDeleteNoIndexFallsBackToScan(t *testing.T) {
	db := dmlDB(t)
	// No index on an expression: id % 2 = 0 must still work (full scan).
	n, err := db.Exec(`DELETE FROM r WHERE id % 2 = 0`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 25 {
		t.Errorf("deleted %d rows, want 25", n)
	}
}

func TestUpdateIndexKeyMiss(t *testing.T) {
	db := dmlDB(t)
	n, err := db.Exec(`UPDATE r SET name = 'y' WHERE id = 9999`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("phantom update: %d rows", n)
	}
	// NULL key matches nothing.
	n, err = db.Exec(`DELETE FROM r WHERE grp = NULL`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("NULL-key delete removed %d rows", n)
	}
}

// TestUpdateIndexedColumnItself: updating the very column the candidate
// index covers must both apply and keep the index consistent.
func TestUpdateIndexedColumnItself(t *testing.T) {
	db := dmlDB(t)
	n, err := db.Exec(`UPDATE r SET grp = 99 WHERE grp = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("updated %d rows, want 10", n)
	}
	if got := countWhere(t, db, `grp = 1`); got != 0 {
		t.Errorf("old key still matches %d rows", got)
	}
	if got := countWhere(t, db, `grp = 99`); got != 10 {
		t.Errorf("new key matches %d rows", got)
	}
	// Repeating the same update is now a no-op.
	n, err = db.Exec(`UPDATE r SET grp = 99 WHERE grp = 1`)
	if err != nil || n != 0 {
		t.Errorf("repeat update: n=%d err=%v", n, err)
	}
}
