package sql

import (
	"fmt"
	"sort"

	"mdv/internal/rdb"
)

// run executes a compiled SELECT plan, invoking visit with the projected row
// for every result. The env slices passed to visit are reused; visit must
// copy values it keeps.
func (p *selectPlan) run(params []rdb.Value, visit func(row []rdb.Value) error) error {
	// Phase 1: join. Collect raw environments (grouping, ordering, and
	// distinct need materialization anyway; for plain streaming queries we
	// stream directly).
	needMaterialize := p.grouped || len(p.orderBy) > 0

	st := &streamState{}
	if p.distinct {
		st.distinctSeen = make(map[string]bool)
	}
	var envs [][]rdb.Value
	emitEnv := func(env []rdb.Value) error {
		if needMaterialize {
			cp := make([]rdb.Value, len(env))
			copy(cp, env)
			envs = append(envs, cp)
			return nil
		}
		return p.project(st, env, params, visit)
	}

	if !needMaterialize {
		// Streaming path with DISTINCT/LIMIT handled inside project/emit.
		err := p.bindRel(0, make([]rdb.Value, p.sc.width()), params, emitEnv)
		if err == errLimitReached {
			return nil
		}
		return err
	}

	if err := p.bindRel(0, make([]rdb.Value, p.sc.width()), params, emitEnv); err != nil {
		return err
	}

	// Phase 2: grouping.
	if p.grouped {
		grouped, err := p.groupEnvs(envs, params)
		if err != nil {
			return err
		}
		envs = grouped
	}

	// Phase 3: order, distinct, limit, project.
	return p.finish(envs, params, visit)
}

// errLimitReached aborts the join once LIMIT rows have been emitted in the
// streaming path.
var errLimitReached = fmt.Errorf("sql: limit reached")

type streamState struct {
	distinctSeen map[string]bool
	emitted      int
	skipped      int
}

// project evaluates the projection for one environment and applies
// DISTINCT/OFFSET/LIMIT in streaming mode.
func (p *selectPlan) project(st *streamState, env []rdb.Value, params []rdb.Value, visit func([]rdb.Value) error) error {
	row := make([]rdb.Value, len(p.projExprs))
	for i, ce := range p.projExprs {
		v, err := ce(env, params)
		if err != nil {
			return err
		}
		row[i] = v
	}
	if p.distinct {
		k := rdb.EncodeKeyString(rdb.Key(row))
		if st.distinctSeen[k] {
			return nil
		}
		st.distinctSeen[k] = true
	}
	if st.skipped < p.offset {
		st.skipped++
		return nil
	}
	if err := visit(row); err != nil {
		return err
	}
	st.emitted++
	if p.limit >= 0 && st.emitted >= p.limit {
		return errLimitReached
	}
	return nil
}

// bindRel binds relation i by scanning its access path, evaluating its
// filters, and recursing to the next relation.
func (p *selectPlan) bindRel(i int, env []rdb.Value, params []rdb.Value, emit func([]rdb.Value) error) error {
	if i == len(p.rels) {
		return emit(env)
	}
	rel := p.rels[i]
	start := rel.binding.start
	width := len(rel.binding.def.Columns)

	tryRow := func(row rdb.Row) error {
		copy(env[start:start+width], row)
		for _, f := range rel.filter {
			v, err := f(env, params)
			if err != nil {
				return err
			}
			if v.IsNull() {
				return nil
			}
			b, err := truthy(v)
			if err != nil {
				return err
			}
			if !b {
				return nil
			}
		}
		return p.bindRel(i+1, env, params, emit)
	}

	switch rel.access.kind {
	case accessIndexPoint, accessIndexPrefix:
		key := make(rdb.Key, len(rel.access.keyExprs))
		for k, ce := range rel.access.keyExprs {
			v, err := ce(env, params)
			if err != nil {
				return err
			}
			if v.IsNull() {
				return nil // NULL never equals anything: no matches
			}
			key[k] = v
		}
		if rel.access.kind == accessIndexPoint {
			for _, rowID := range rel.access.index.Lookup(key) {
				row, ok := rel.table.Get(rowID)
				if !ok {
					continue
				}
				if err := tryRow(row); err != nil {
					return err
				}
			}
			return nil
		}
		var scanErr error
		err := rel.access.index.ScanRange(key, key, func(_ rdb.Key, rowID int64) bool {
			row, ok := rel.table.Get(rowID)
			if !ok {
				return true
			}
			if err := tryRow(row); err != nil {
				scanErr = err
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		return scanErr

	case accessIndexRange:
		// The scan covers the equality prefix (keyExprs, possibly empty)
		// plus low/high bounds on the next index column. A prefix-only end
		// is inclusive of every key sharing the prefix (ScanRange truncates
		// the comparison to the bound's length); with no prefix an open end
		// falls back to a sentinel.
		prefix := make(rdb.Key, 0, len(rel.access.keyExprs)+1)
		for _, ce := range rel.access.keyExprs {
			v, err := ce(env, params)
			if err != nil {
				return err
			}
			if v.IsNull() {
				return nil // NULL never equals anything: no matches
			}
			prefix = append(prefix, v)
		}
		low := append(rdb.Key{}, prefix...)
		high := append(rdb.Key{}, prefix...)
		if rel.access.lowExpr != nil {
			v, err := rel.access.lowExpr(env, params)
			if err != nil {
				return err
			}
			if v.IsNull() {
				return nil
			}
			low = append(low, v)
		} else if len(prefix) == 0 {
			low = rdb.Key{rdb.MinSentinel()}
		}
		if rel.access.highExpr != nil {
			v, err := rel.access.highExpr(env, params)
			if err != nil {
				return err
			}
			if v.IsNull() {
				return nil
			}
			high = append(high, v)
		} else if len(prefix) == 0 {
			high = rdb.Key{rdb.MaxSentinel()}
		}
		var scanErr error
		err := rel.access.index.ScanRange(low, high, func(_ rdb.Key, rowID int64) bool {
			row, ok := rel.table.Get(rowID)
			if !ok {
				return true
			}
			if err := tryRow(row); err != nil {
				scanErr = err
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		return scanErr

	default: // full scan. Scan holds the table read lock during visits;
		// this is safe because the session serializes writer statements
		// against readers, and mutating statements materialize their scan
		// results before touching the table.
		var scanErr error
		rel.table.Scan(func(_ int64, row rdb.Row) bool {
			if err := tryRow(row); err != nil {
				scanErr = err
				return false
			}
			return true
		})
		return scanErr
	}
}

// groupEnvs buckets environments by the GROUP BY key, computes aggregates,
// applies HAVING, and returns one extended environment per surviving group.
// With no GROUP BY clause, all rows form a single group (and an empty input
// still yields one group, per SQL semantics for global aggregates).
func (p *selectPlan) groupEnvs(envs [][]rdb.Value, params []rdb.Value) ([][]rdb.Value, error) {
	type group struct {
		rep  []rdb.Value
		accs []aggAcc
	}
	newGroup := func(rep []rdb.Value) *group {
		g := &group{rep: rep, accs: make([]aggAcc, len(p.aggs))}
		for i, spec := range p.aggs {
			g.accs[i] = newAggAcc(spec.name)
		}
		return g
	}
	groups := map[string]*group{}
	var order []string
	for _, env := range envs {
		keyVals := make(rdb.Key, len(p.groupBy))
		for i, ce := range p.groupBy {
			v, err := ce(env, params)
			if err != nil {
				return nil, err
			}
			keyVals[i] = v
		}
		k := rdb.EncodeKeyString(keyVals)
		g, ok := groups[k]
		if !ok {
			g = newGroup(env)
			groups[k] = g
			order = append(order, k)
		}
		for i, spec := range p.aggs {
			if spec.arg == nil {
				g.accs[i].add(rdb.NewInt(1), true)
				continue
			}
			v, err := spec.arg(env, params)
			if err != nil {
				return nil, err
			}
			g.accs[i].add(v, false)
		}
	}
	if len(groups) == 0 && len(p.groupBy) == 0 {
		// Global aggregate over empty input: one group with empty rep.
		g := newGroup(make([]rdb.Value, p.sc.width()))
		groups[""] = g
		order = append(order, "")
	}
	var out [][]rdb.Value
	for _, k := range order {
		g := groups[k]
		ext := make([]rdb.Value, p.aggWidth)
		copy(ext, g.rep)
		for i, acc := range g.accs {
			ext[p.sc.width()+i] = acc.result()
		}
		if p.having != nil {
			v, err := p.having(ext, params)
			if err != nil {
				return nil, err
			}
			if v.IsNull() {
				continue
			}
			b, err := truthy(v)
			if err != nil {
				return nil, err
			}
			if !b {
				continue
			}
		}
		out = append(out, ext)
	}
	return out, nil
}

// finish applies ORDER BY, DISTINCT, OFFSET, and LIMIT to materialized
// environments and projects the results.
func (p *selectPlan) finish(envs [][]rdb.Value, params []rdb.Value, visit func([]rdb.Value) error) error {
	type outRow struct {
		proj []rdb.Value
		keys []rdb.Value
	}
	rows := make([]outRow, 0, len(envs))
	seen := map[string]bool{}
	for _, env := range envs {
		proj := make([]rdb.Value, len(p.projExprs))
		for i, ce := range p.projExprs {
			v, err := ce(env, params)
			if err != nil {
				return err
			}
			proj[i] = v
		}
		if p.distinct {
			k := rdb.EncodeKeyString(rdb.Key(proj))
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		r := outRow{proj: proj}
		if len(p.orderBy) > 0 {
			r.keys = make([]rdb.Value, len(p.orderBy))
			for i, o := range p.orderBy {
				if o.ordinal > 0 {
					r.keys[i] = proj[o.ordinal-1]
					continue
				}
				v, err := o.expr(env, params)
				if err != nil {
					return err
				}
				r.keys[i] = v
			}
		}
		rows = append(rows, r)
	}
	if len(p.orderBy) > 0 {
		sort.SliceStable(rows, func(a, b int) bool {
			for i, o := range p.orderBy {
				c := rdb.Compare(rows[a].keys[i], rows[b].keys[i])
				if c == 0 {
					continue
				}
				if o.desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	start := p.offset
	if start > len(rows) {
		start = len(rows)
	}
	end := len(rows)
	if p.limit >= 0 && start+p.limit < end {
		end = start + p.limit
	}
	for _, r := range rows[start:end] {
		if err := visit(r.proj); err != nil {
			return err
		}
	}
	return nil
}

// aggAcc accumulates one aggregate over a group.
type aggAcc interface {
	add(v rdb.Value, star bool)
	result() rdb.Value
}

func newAggAcc(name string) aggAcc {
	switch name {
	case "COUNT":
		return &countAcc{}
	case "SUM":
		return &sumAcc{}
	case "AVG":
		return &avgAcc{}
	case "MIN":
		return &minmaxAcc{min: true}
	case "MAX":
		return &minmaxAcc{}
	default:
		panic("sql: unknown aggregate " + name)
	}
}

type countAcc struct{ n int64 }

func (a *countAcc) add(v rdb.Value, star bool) {
	if star || !v.IsNull() {
		a.n++
	}
}
func (a *countAcc) result() rdb.Value { return rdb.NewInt(a.n) }

type sumAcc struct {
	isFloat bool
	i       int64
	f       float64
	any     bool
}

func (a *sumAcc) add(v rdb.Value, _ bool) {
	switch v.Kind {
	case rdb.KindInt:
		a.i += v.Int
		a.f += float64(v.Int)
		a.any = true
	case rdb.KindFloat:
		a.isFloat = true
		a.f += v.Float
		a.any = true
	}
}
func (a *sumAcc) result() rdb.Value {
	if !a.any {
		return rdb.Null()
	}
	if a.isFloat {
		return rdb.NewFloat(a.f)
	}
	return rdb.NewInt(a.i)
}

type avgAcc struct {
	sum float64
	n   int64
}

func (a *avgAcc) add(v rdb.Value, _ bool) {
	if v.IsNumeric() {
		a.sum += v.AsFloat()
		a.n++
	}
}
func (a *avgAcc) result() rdb.Value {
	if a.n == 0 {
		return rdb.Null()
	}
	return rdb.NewFloat(a.sum / float64(a.n))
}

type minmaxAcc struct {
	min bool
	val rdb.Value
	any bool
}

func (a *minmaxAcc) add(v rdb.Value, _ bool) {
	if v.IsNull() {
		return
	}
	if !a.any {
		a.val = v
		a.any = true
		return
	}
	c := rdb.Compare(v, a.val)
	if (a.min && c < 0) || (!a.min && c > 0) {
		a.val = v
	}
}
func (a *minmaxAcc) result() rdb.Value {
	if !a.any {
		return rdb.Null()
	}
	return a.val
}
