package sql

import "mdv/internal/rdb"

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// CreateTableStmt is CREATE TABLE [IF NOT EXISTS] name (...).
type CreateTableStmt struct {
	IfNotExists bool
	Def         rdb.TableDef
}

// CreateIndexStmt is CREATE [UNIQUE] INDEX [IF NOT EXISTS] name ON table (cols) [USING kind].
type CreateIndexStmt struct {
	IfNotExists bool
	Def         rdb.IndexDef
}

// DropTableStmt is DROP TABLE [IF EXISTS] name.
type DropTableStmt struct {
	IfExists bool
	Name     string
}

// DropIndexStmt is DROP INDEX name ON table.
type DropIndexStmt struct {
	Table string
	Name  string
}

// InsertStmt is INSERT INTO table [(cols)] VALUES (...),(...) or
// INSERT INTO table [(cols)] SELECT ...
type InsertStmt struct {
	Table   string
	Columns []string // nil means all columns in definition order
	Rows    [][]Expr // literal VALUES rows; nil when Select is set
	Select  *SelectStmt
}

// UpdateStmt is UPDATE table SET col = expr, ... [WHERE expr].
type UpdateStmt struct {
	Table string
	Set   []SetClause
	Where Expr
}

// SetClause is one col = expr assignment.
type SetClause struct {
	Column string
	Value  Expr
}

// DeleteStmt is DELETE FROM table [WHERE expr].
type DeleteStmt struct {
	Table string
	Where Expr
}

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem // empty means SELECT *
	From     []TableRef
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int // -1 when absent
	Offset   int
}

// SelectItem is one projected expression with an optional alias.
// Star marks a bare * or table.* item.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool
	// StarTable qualifies a table.* item; empty for a bare *.
	StarTable string
}

// TableRef is one relation in the FROM clause. Explicit INNER JOIN ... ON
// chains are flattened by the parser: the ON condition is attached to the
// right-hand relation and ANDed into the WHERE during planning.
type TableRef struct {
	Table string
	Alias string // defaults to Table
	On    Expr   // join condition from explicit JOIN syntax, or nil
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

func (*CreateTableStmt) stmt() {}
func (*CreateIndexStmt) stmt() {}
func (*DropTableStmt) stmt()   {}
func (*DropIndexStmt) stmt()   {}
func (*InsertStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}
func (*SelectStmt) stmt()      {}

// Expr is a parsed expression tree node.
type Expr interface{ expr() }

// Literal is a constant value.
type Literal struct{ Value rdb.Value }

// Param is a ? placeholder; Ordinal is its zero-based position.
type Param struct{ Ordinal int }

// ColumnRef is a possibly qualified column reference.
type ColumnRef struct {
	Table  string // optional qualifier (alias)
	Column string
}

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	Op    string // = != < <= > >= AND OR + - * / % LIKE CONTAINS
	Left  Expr
	Right Expr
}

// UnaryExpr is NOT x or -x.
type UnaryExpr struct {
	Op string // NOT, -
	X  Expr
}

// IsNullExpr is x IS [NOT] NULL.
type IsNullExpr struct {
	X   Expr
	Not bool
}

// InExpr is x IN (e1, e2, ...).
type InExpr struct {
	X    Expr
	List []Expr
	Not  bool
}

// CastExpr is CAST(x AS type).
type CastExpr struct {
	X    Expr
	Type rdb.Kind
}

// FuncExpr is a scalar function call (LOWER, UPPER, LENGTH, ABS, COALESCE).
type FuncExpr struct {
	Name string // upper-cased
	Args []Expr
}

// AggExpr is an aggregate call: COUNT(*), COUNT(x), SUM, AVG, MIN, MAX.
type AggExpr struct {
	Name string // upper-cased
	Arg  Expr   // nil for COUNT(*)
	Star bool
}

func (*Literal) expr()    {}
func (*Param) expr()      {}
func (*ColumnRef) expr()  {}
func (*BinaryExpr) expr() {}
func (*UnaryExpr) expr()  {}
func (*IsNullExpr) expr() {}
func (*InExpr) expr()     {}
func (*CastExpr) expr()   {}
func (*FuncExpr) expr()   {}
func (*AggExpr) expr()    {}
