// Package sql implements a SQL subset on top of the rdb engine: DDL
// (CREATE/DROP TABLE, CREATE/DROP INDEX), DML (INSERT, UPDATE, DELETE,
// INSERT ... SELECT), and queries (SELECT with multi-way joins, WHERE,
// GROUP BY with aggregates, HAVING, ORDER BY, DISTINCT, LIMIT/OFFSET).
//
// The dialect includes a CONTAINS operator (substring match) because the MDV
// rule language exposes it, and CAST, which the filter algorithm uses to
// reconvert numeric constants stored as strings in the FilterRulesOP tables
// (paper §3.3.4).
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tkEOF tokenKind = iota
	tkIdent
	tkKeyword
	tkNumber
	tkString
	tkParam  // ?
	tkSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased; identifiers as written
	pos  int    // byte offset in the input, for error messages
}

// keywords recognized by the lexer. Identifiers matching these
// (case-insensitively) become tkKeyword tokens with upper-cased text.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true,
	"SET": true, "DELETE": true, "CREATE": true, "TABLE": true, "INDEX": true,
	"DROP": true, "ON": true, "AS": true, "DISTINCT": true, "GROUP": true,
	"BY": true, "HAVING": true, "ORDER": true, "ASC": true, "DESC": true,
	"LIMIT": true, "OFFSET": true, "JOIN": true, "INNER": true, "PRIMARY": true,
	"KEY": true, "UNIQUE": true, "NULL": true, "TRUE": true, "FALSE": true,
	"IS": true, "IN": true, "LIKE": true, "CONTAINS": true, "CAST": true,
	"USING": true, "HASH": true, "BTREE": true, "IF": true, "EXISTS": true,
	"INT": true, "INTEGER": true, "FLOAT": true, "REAL": true, "DOUBLE": true,
	"TEXT": true, "VARCHAR": true, "STRING": true, "BOOL": true, "BOOLEAN": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

type lexer struct {
	src    string
	pos    int
	tokens []token
}

// lex tokenizes the whole input up front; the parser then walks the slice.
func lex(src string) ([]token, error) {
	lx := &lexer{src: src}
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		lx.tokens = append(lx.tokens, tok)
		if tok.kind == tkEOF {
			return lx.tokens, nil
		}
	}
}

func (lx *lexer) next() (token, error) {
	lx.skipSpaceAndComments()
	start := lx.pos
	if lx.pos >= len(lx.src) {
		return token{kind: tkEOF, pos: start}, nil
	}
	c := lx.src[lx.pos]
	switch {
	case c == '?':
		lx.pos++
		return token{kind: tkParam, text: "?", pos: start}, nil
	case c == '\'':
		return lx.lexString()
	case isDigit(c) || (c == '.' && lx.pos+1 < len(lx.src) && isDigit(lx.src[lx.pos+1])):
		return lx.lexNumber()
	case isIdentStart(c):
		return lx.lexIdent()
	default:
		return lx.lexSymbol()
	}
}

func (lx *lexer) skipSpaceAndComments() {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			lx.pos++
			continue
		}
		if c == '-' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '-' {
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
			continue
		}
		break
	}
}

func (lx *lexer) lexString() (token, error) {
	start := lx.pos
	lx.pos++ // opening quote
	var sb strings.Builder
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == '\'' {
			// '' is an escaped quote.
			if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '\'' {
				sb.WriteByte('\'')
				lx.pos += 2
				continue
			}
			lx.pos++
			return token{kind: tkString, text: sb.String(), pos: start}, nil
		}
		sb.WriteByte(c)
		lx.pos++
	}
	return token{}, fmt.Errorf("sql: unterminated string literal at offset %d", start)
}

func (lx *lexer) lexNumber() (token, error) {
	start := lx.pos
	seenDot, seenExp := false, false
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case isDigit(c):
			lx.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			lx.pos++
		case (c == 'e' || c == 'E') && !seenExp && lx.pos > start:
			seenExp = true
			lx.pos++
			if lx.pos < len(lx.src) && (lx.src[lx.pos] == '+' || lx.src[lx.pos] == '-') {
				lx.pos++
			}
		default:
			return token{kind: tkNumber, text: lx.src[start:lx.pos], pos: start}, nil
		}
	}
	return token{kind: tkNumber, text: lx.src[start:lx.pos], pos: start}, nil
}

func (lx *lexer) lexIdent() (token, error) {
	start := lx.pos
	for lx.pos < len(lx.src) && isIdentPart(lx.src[lx.pos]) {
		lx.pos++
	}
	text := lx.src[start:lx.pos]
	upper := strings.ToUpper(text)
	if keywords[upper] {
		return token{kind: tkKeyword, text: upper, pos: start}, nil
	}
	return token{kind: tkIdent, text: text, pos: start}, nil
}

func (lx *lexer) lexSymbol() (token, error) {
	start := lx.pos
	two := ""
	if lx.pos+1 < len(lx.src) {
		two = lx.src[lx.pos : lx.pos+2]
	}
	switch two {
	case "<=", ">=", "!=", "<>", "==":
		lx.pos += 2
		text := two
		if text == "<>" {
			text = "!="
		}
		if text == "==" {
			text = "="
		}
		return token{kind: tkSymbol, text: text, pos: start}, nil
	}
	c := lx.src[lx.pos]
	switch c {
	case '(', ')', ',', '.', '*', '=', '<', '>', '+', '-', '/', '%', ';':
		lx.pos++
		return token{kind: tkSymbol, text: string(c), pos: start}, nil
	}
	r := rune(c)
	if r > unicode.MaxASCII {
		return token{}, fmt.Errorf("sql: unexpected character %q at offset %d", r, start)
	}
	return token{}, fmt.Errorf("sql: unexpected character %q at offset %d", c, start)
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || c == '#' || isAlpha(c) }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) }
func isAlpha(c byte) bool      { return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
