package sql

import (
	"fmt"
	"strconv"
	"strings"

	"mdv/internal/rdb"
)

// Parse parses a single SQL statement (an optional trailing semicolon is
// allowed).
func Parse(src string) (Statement, error) {
	tokens, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, tokens: tokens}
	st, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(tkSymbol, ";")
	if !p.at(tkEOF, "") {
		return nil, p.errorf("unexpected trailing input %q", p.peek().text)
	}
	return st, nil
}

type parser struct {
	src       string
	tokens    []token
	pos       int
	numParams int
}

func (p *parser) peek() token { return p.tokens[p.pos] }
func (p *parser) next() token { t := p.tokens[p.pos]; p.pos++; return t }
func (p *parser) backup()     { p.pos-- }

// at reports whether the current token matches kind (and text, if non-empty).
func (p *parser) at(kind tokenKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || t.text == text)
}

// accept consumes the current token if it matches.
func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

// expect consumes a matching token or fails.
func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		switch kind {
		case tkIdent:
			want = "identifier"
		case tkNumber:
			want = "number"
		case tkString:
			want = "string"
		default:
			want = "token"
		}
	}
	return token{}, p.errorf("expected %s, found %q", want, p.peek().text)
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("sql: parse error at offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

// identOrKeyword consumes an identifier; non-reserved keywords (type names,
// aggregate names, HASH/BTREE/KEY) are accepted as identifiers too, since
// the MDV filter uses column names like "value" and "class".
func (p *parser) identOrKeyword() (string, error) {
	t := p.peek()
	if t.kind == tkIdent {
		p.pos++
		return t.text, nil
	}
	if t.kind == tkKeyword {
		switch t.text {
		case "INT", "INTEGER", "FLOAT", "REAL", "DOUBLE", "TEXT", "VARCHAR",
			"STRING", "BOOL", "BOOLEAN", "HASH", "BTREE", "KEY",
			"COUNT", "SUM", "AVG", "MIN", "MAX":
			p.pos++
			return t.text, nil
		}
	}
	return "", p.errorf("expected identifier, found %q", t.text)
}

func (p *parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.kind != tkKeyword {
		return nil, p.errorf("expected statement, found %q", t.text)
	}
	switch t.text {
	case "SELECT":
		return p.parseSelect()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "CREATE":
		return p.parseCreate()
	case "DROP":
		return p.parseDrop()
	default:
		return nil, p.errorf("unsupported statement %q", t.text)
	}
}

func (p *parser) parseCreate() (Statement, error) {
	p.next() // CREATE
	unique := p.accept(tkKeyword, "UNIQUE")
	switch {
	case p.accept(tkKeyword, "TABLE"):
		if unique {
			return nil, p.errorf("UNIQUE is not valid before TABLE")
		}
		return p.parseCreateTable()
	case p.accept(tkKeyword, "INDEX"):
		return p.parseCreateIndex(unique)
	default:
		return nil, p.errorf("expected TABLE or INDEX after CREATE")
	}
}

func (p *parser) parseIfNotExists() bool {
	if p.at(tkKeyword, "IF") {
		save := p.pos
		p.next()
		if p.accept(tkKeyword, "NOT") && p.accept(tkKeyword, "EXISTS") {
			return true
		}
		p.pos = save
	}
	return false
}

func (p *parser) parseCreateTable() (Statement, error) {
	st := &CreateTableStmt{IfNotExists: p.parseIfNotExists()}
	name, err := p.identOrKeyword()
	if err != nil {
		return nil, err
	}
	st.Def.Name = name
	if _, err := p.expect(tkSymbol, "("); err != nil {
		return nil, err
	}
	for {
		// Table-level PRIMARY KEY (cols) clause.
		if p.accept(tkKeyword, "PRIMARY") {
			if _, err := p.expect(tkKeyword, "KEY"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tkSymbol, "("); err != nil {
				return nil, err
			}
			for {
				col, err := p.identOrKeyword()
				if err != nil {
					return nil, err
				}
				ci := st.Def.ColumnIndex(col)
				if ci < 0 {
					return nil, p.errorf("PRIMARY KEY references unknown column %q", col)
				}
				st.Def.Columns[ci].PrimaryKey = true
				if !p.accept(tkSymbol, ",") {
					break
				}
			}
			if _, err := p.expect(tkSymbol, ")"); err != nil {
				return nil, err
			}
		} else {
			col, err := p.parseColumnDef()
			if err != nil {
				return nil, err
			}
			st.Def.Columns = append(st.Def.Columns, col)
		}
		if p.accept(tkSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tkSymbol, ")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) parseColumnDef() (rdb.ColumnDef, error) {
	var col rdb.ColumnDef
	name, err := p.identOrKeyword()
	if err != nil {
		return col, err
	}
	col.Name = name
	kind, err := p.parseTypeName()
	if err != nil {
		return col, err
	}
	col.Type = kind
	for {
		switch {
		case p.accept(tkKeyword, "PRIMARY"):
			if _, err := p.expect(tkKeyword, "KEY"); err != nil {
				return col, err
			}
			col.PrimaryKey = true
		case p.accept(tkKeyword, "NOT"):
			if _, err := p.expect(tkKeyword, "NULL"); err != nil {
				return col, err
			}
			col.NotNull = true
		case p.at(tkKeyword, "UNIQUE"):
			return col, p.errorf("column-level UNIQUE is not supported; use CREATE UNIQUE INDEX")
		default:
			return col, nil
		}
	}
}

func (p *parser) parseTypeName() (rdb.Kind, error) {
	t := p.peek()
	if t.kind != tkKeyword {
		return 0, p.errorf("expected type name, found %q", t.text)
	}
	var kind rdb.Kind
	switch t.text {
	case "INT", "INTEGER":
		kind = rdb.KindInt
	case "FLOAT", "REAL", "DOUBLE":
		kind = rdb.KindFloat
	case "TEXT", "STRING":
		kind = rdb.KindText
	case "VARCHAR":
		kind = rdb.KindText
	case "BOOL", "BOOLEAN":
		kind = rdb.KindBool
	default:
		return 0, p.errorf("expected type name, found %q", t.text)
	}
	p.next()
	// Optional length, e.g. VARCHAR(255): parsed and ignored.
	if p.accept(tkSymbol, "(") {
		if _, err := p.expect(tkNumber, ""); err != nil {
			return 0, err
		}
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return 0, err
		}
	}
	return kind, nil
}

func (p *parser) parseCreateIndex(unique bool) (Statement, error) {
	st := &CreateIndexStmt{IfNotExists: p.parseIfNotExists()}
	st.Def.Unique = unique
	name, err := p.identOrKeyword()
	if err != nil {
		return nil, err
	}
	st.Def.Name = name
	if _, err := p.expect(tkKeyword, "ON"); err != nil {
		return nil, err
	}
	table, err := p.identOrKeyword()
	if err != nil {
		return nil, err
	}
	st.Def.Table = table
	if _, err := p.expect(tkSymbol, "("); err != nil {
		return nil, err
	}
	for {
		col, err := p.identOrKeyword()
		if err != nil {
			return nil, err
		}
		st.Def.Columns = append(st.Def.Columns, col)
		if !p.accept(tkSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tkSymbol, ")"); err != nil {
		return nil, err
	}
	st.Def.Kind = rdb.IndexBTree
	if p.accept(tkKeyword, "USING") {
		switch {
		case p.accept(tkKeyword, "HASH"):
			st.Def.Kind = rdb.IndexHash
		case p.accept(tkKeyword, "BTREE"):
			st.Def.Kind = rdb.IndexBTree
		default:
			return nil, p.errorf("expected HASH or BTREE after USING")
		}
	}
	return st, nil
}

func (p *parser) parseDrop() (Statement, error) {
	p.next() // DROP
	switch {
	case p.accept(tkKeyword, "TABLE"):
		st := &DropTableStmt{}
		if p.accept(tkKeyword, "IF") {
			if _, err := p.expect(tkKeyword, "EXISTS"); err != nil {
				return nil, err
			}
			st.IfExists = true
		}
		name, err := p.identOrKeyword()
		if err != nil {
			return nil, err
		}
		st.Name = name
		return st, nil
	case p.accept(tkKeyword, "INDEX"):
		st := &DropIndexStmt{}
		name, err := p.identOrKeyword()
		if err != nil {
			return nil, err
		}
		st.Name = name
		if _, err := p.expect(tkKeyword, "ON"); err != nil {
			return nil, err
		}
		table, err := p.identOrKeyword()
		if err != nil {
			return nil, err
		}
		st.Table = table
		return st, nil
	default:
		return nil, p.errorf("expected TABLE or INDEX after DROP")
	}
}

func (p *parser) parseInsert() (Statement, error) {
	p.next() // INSERT
	if _, err := p.expect(tkKeyword, "INTO"); err != nil {
		return nil, err
	}
	st := &InsertStmt{}
	table, err := p.identOrKeyword()
	if err != nil {
		return nil, err
	}
	st.Table = table
	if p.accept(tkSymbol, "(") {
		for {
			col, err := p.identOrKeyword()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, col)
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return nil, err
		}
	}
	if p.at(tkKeyword, "SELECT") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		st.Select = sel
		return st, nil
	}
	if _, err := p.expect(tkKeyword, "VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(tkSymbol, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if !p.accept(tkSymbol, ",") {
			break
		}
	}
	return st, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	p.next() // UPDATE
	st := &UpdateStmt{}
	table, err := p.identOrKeyword()
	if err != nil {
		return nil, err
	}
	st.Table = table
	if _, err := p.expect(tkKeyword, "SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.identOrKeyword()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkSymbol, "="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Set = append(st.Set, SetClause{Column: col, Value: val})
		if !p.accept(tkSymbol, ",") {
			break
		}
	}
	if p.accept(tkKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	return st, nil
}

func (p *parser) parseDelete() (Statement, error) {
	p.next() // DELETE
	if _, err := p.expect(tkKeyword, "FROM"); err != nil {
		return nil, err
	}
	st := &DeleteStmt{}
	table, err := p.identOrKeyword()
	if err != nil {
		return nil, err
	}
	st.Table = table
	if p.accept(tkKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	return st, nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if _, err := p.expect(tkKeyword, "SELECT"); err != nil {
		return nil, err
	}
	st := &SelectStmt{Limit: -1}
	st.Distinct = p.accept(tkKeyword, "DISTINCT")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		st.Items = append(st.Items, item)
		if !p.accept(tkSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tkKeyword, "FROM"); err != nil {
		return nil, err
	}
	for {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		st.From = append(st.From, ref)
		// Explicit JOIN chains.
		for p.at(tkKeyword, "JOIN") || p.at(tkKeyword, "INNER") {
			p.accept(tkKeyword, "INNER")
			if _, err := p.expect(tkKeyword, "JOIN"); err != nil {
				return nil, err
			}
			jref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tkKeyword, "ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			jref.On = on
			st.From = append(st.From, jref)
		}
		if !p.accept(tkSymbol, ",") {
			break
		}
	}
	if p.accept(tkKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	if p.accept(tkKeyword, "GROUP") {
		if _, err := p.expect(tkKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, e)
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tkKeyword, "HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Having = h
	}
	if p.accept(tkKeyword, "ORDER") {
		if _, err := p.expect(tkKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(tkKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(tkKeyword, "ASC")
			}
			st.OrderBy = append(st.OrderBy, item)
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tkKeyword, "LIMIT") {
		n, err := p.parseIntLiteral()
		if err != nil {
			return nil, err
		}
		st.Limit = n
		if p.accept(tkKeyword, "OFFSET") {
			m, err := p.parseIntLiteral()
			if err != nil {
				return nil, err
			}
			st.Offset = m
		}
	}
	return st, nil
}

func (p *parser) parseIntLiteral() (int, error) {
	t, err := p.expect(tkNumber, "")
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, p.errorf("invalid integer %q", t.text)
	}
	return n, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.accept(tkSymbol, "*") {
		return SelectItem{Star: true}, nil
	}
	// table.* form: identifier '.' '*'
	if p.peek().kind == tkIdent {
		save := p.pos
		name := p.next().text
		if p.accept(tkSymbol, ".") && p.accept(tkSymbol, "*") {
			return SelectItem{Star: true, StarTable: name}, nil
		}
		p.pos = save
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept(tkKeyword, "AS") {
		alias, err := p.identOrKeyword()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if p.peek().kind == tkIdent {
		item.Alias = p.next().text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.identOrKeyword()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: name, Alias: name}
	if p.accept(tkKeyword, "AS") {
		alias, err := p.identOrKeyword()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = alias
	} else if p.peek().kind == tkIdent {
		ref.Alias = p.next().text
	}
	return ref, nil
}

// Expression grammar, lowest to highest precedence:
//
//	expr     := andExpr (OR andExpr)*
//	andExpr  := notExpr (AND notExpr)*
//	notExpr  := NOT notExpr | cmpExpr
//	cmpExpr  := addExpr ((=|!=|<|<=|>|>=|LIKE|CONTAINS) addExpr
//	          | IS [NOT] NULL | [NOT] IN (list))?
//	addExpr  := mulExpr ((+|-) mulExpr)*
//	mulExpr  := unary ((*|/|%) unary)*
//	unary    := - unary | primary
//	primary  := literal | ? | column | func(...) | CAST(e AS t) | (expr)
func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tkKeyword, "OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tkKeyword, "AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(tkKeyword, "NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tkSymbol {
		switch t.text {
		case "=", "!=", "<", "<=", ">", ">=":
			p.next()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: t.text, Left: left, Right: right}, nil
		}
	}
	if t.kind == tkKeyword {
		switch t.text {
		case "LIKE", "CONTAINS":
			p.next()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: t.text, Left: left, Right: right}, nil
		case "IS":
			p.next()
			not := p.accept(tkKeyword, "NOT")
			if _, err := p.expect(tkKeyword, "NULL"); err != nil {
				return nil, err
			}
			return &IsNullExpr{X: left, Not: not}, nil
		case "NOT":
			// x NOT IN (...) / x NOT LIKE y / x NOT CONTAINS y
			save := p.pos
			p.next()
			switch {
			case p.accept(tkKeyword, "IN"):
				in, err := p.parseInList(left, true)
				if err != nil {
					return nil, err
				}
				return in, nil
			case p.accept(tkKeyword, "LIKE"):
				right, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				return &UnaryExpr{Op: "NOT", X: &BinaryExpr{Op: "LIKE", Left: left, Right: right}}, nil
			case p.accept(tkKeyword, "CONTAINS"):
				right, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				return &UnaryExpr{Op: "NOT", X: &BinaryExpr{Op: "CONTAINS", Left: left, Right: right}}, nil
			}
			p.pos = save
		case "IN":
			p.next()
			return p.parseInList(left, false)
		}
	}
	return left, nil
}

func (p *parser) parseInList(left Expr, not bool) (Expr, error) {
	if _, err := p.expect(tkSymbol, "("); err != nil {
		return nil, err
	}
	in := &InExpr{X: left, Not: not}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		in.List = append(in.List, e)
		if !p.accept(tkSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tkSymbol, ")"); err != nil {
		return nil, err
	}
	return in, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tkSymbol && (t.text == "+" || t.text == "-") {
			p.next()
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: t.text, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tkSymbol && (t.text == "*" || t.text == "/" || t.text == "%") {
			p.next()
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: t.text, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tkSymbol, "-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negation of numeric literals.
		if lit, ok := x.(*Literal); ok {
			switch lit.Value.Kind {
			case rdb.KindInt:
				return &Literal{Value: rdb.NewInt(-lit.Value.Int)}, nil
			case rdb.KindFloat:
				return &Literal{Value: rdb.NewFloat(-lit.Value.Float)}, nil
			}
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tkNumber:
		p.next()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errorf("invalid number %q", t.text)
			}
			return &Literal{Value: rdb.NewFloat(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("invalid number %q", t.text)
		}
		return &Literal{Value: rdb.NewInt(n)}, nil
	case tkString:
		p.next()
		return &Literal{Value: rdb.NewText(t.text)}, nil
	case tkParam:
		p.next()
		e := &Param{Ordinal: p.numParams}
		p.numParams++
		return e, nil
	case tkSymbol:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tkSymbol, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tkKeyword:
		switch t.text {
		case "NULL":
			p.next()
			return &Literal{Value: rdb.Null()}, nil
		case "TRUE":
			p.next()
			return &Literal{Value: rdb.NewBool(true)}, nil
		case "FALSE":
			p.next()
			return &Literal{Value: rdb.NewBool(false)}, nil
		case "CAST":
			p.next()
			if _, err := p.expect(tkSymbol, "("); err != nil {
				return nil, err
			}
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tkKeyword, "AS"); err != nil {
				return nil, err
			}
			kind, err := p.parseTypeName()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tkSymbol, ")"); err != nil {
				return nil, err
			}
			return &CastExpr{X: x, Type: kind}, nil
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			// Aggregate only when followed by '('; otherwise treat as column
			// name (the filter schema uses none of these, but be safe).
			if p.tokens[p.pos+1].kind == tkSymbol && p.tokens[p.pos+1].text == "(" {
				p.next()
				p.next() // (
				agg := &AggExpr{Name: t.text}
				if t.text == "COUNT" && p.accept(tkSymbol, "*") {
					agg.Star = true
				} else {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					agg.Arg = arg
				}
				if _, err := p.expect(tkSymbol, ")"); err != nil {
					return nil, err
				}
				return agg, nil
			}
		}
	case tkIdent:
		p.next()
		name := t.text
		// Scalar function call.
		if p.at(tkSymbol, "(") {
			upper := strings.ToUpper(name)
			switch upper {
			case "LOWER", "UPPER", "LENGTH", "ABS", "COALESCE":
				p.next() // (
				fn := &FuncExpr{Name: upper}
				if !p.at(tkSymbol, ")") {
					for {
						arg, err := p.parseExpr()
						if err != nil {
							return nil, err
						}
						fn.Args = append(fn.Args, arg)
						if !p.accept(tkSymbol, ",") {
							break
						}
					}
				}
				if _, err := p.expect(tkSymbol, ")"); err != nil {
					return nil, err
				}
				return fn, nil
			default:
				return nil, p.errorf("unknown function %q", name)
			}
		}
		// Qualified column reference.
		if p.accept(tkSymbol, ".") {
			col, err := p.identOrKeyword()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: name, Column: col}, nil
		}
		return &ColumnRef{Column: name}, nil
	}
	return nil, p.errorf("unexpected token %q in expression", t.text)
}
