// Package rdb implements an embedded relational database engine: typed
// tables, secondary indexes (hash and B+tree), snapshot persistence, and
// undo-log transactions.
//
// The engine is the storage substrate of the MDV metadata management system.
// The paper implements its publish & subscribe filter "using a standard
// relational database system"; rdb plays the role of that system. It is
// deliberately a classical design — heap tables addressed by stable row IDs,
// secondary indexes mapping composite keys to row IDs, and a SQL front end in
// the rdb/sql subpackage — so that the filter algorithm's cost profile
// (index lookups vs. scans, join fan-out) matches what the paper measured on
// a commercial RDBMS.
package rdb

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"
)

// Kind identifies the runtime type of a Value.
type Kind uint8

// The supported value kinds. KindMin and KindMax are sentinel kinds used
// only as index range-scan bounds; they never appear in stored rows.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindText
	KindMin // sentinel: compares below every value
	KindMax // sentinel: compares above every value
)

// String returns the SQL-facing name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindText:
		return "TEXT"
	case KindMin:
		return "-inf"
	case KindMax:
		return "+inf"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed SQL value. The zero Value is NULL.
type Value struct {
	Kind  Kind
	Int   int64
	Float float64
	Str   string
	Bool  bool
}

// Null returns the NULL value.
func Null() Value { return Value{Kind: KindNull} }

// NewInt returns an INT value.
func NewInt(v int64) Value { return Value{Kind: KindInt, Int: v} }

// NewFloat returns a FLOAT value.
func NewFloat(v float64) Value { return Value{Kind: KindFloat, Float: v} }

// NewText returns a TEXT value.
func NewText(v string) Value { return Value{Kind: KindText, Str: v} }

// NewBool returns a BOOL value.
func NewBool(v bool) Value { return Value{Kind: KindBool, Bool: v} }

// MinSentinel returns the sentinel that sorts below every value, for use as
// an inclusive lower bound in index range scans.
func MinSentinel() Value { return Value{Kind: KindMin} }

// MaxSentinel returns the sentinel that sorts above every value, for use as
// an inclusive upper bound in index range scans.
func MaxSentinel() Value { return Value{Kind: KindMax} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// IsNumeric reports whether the value is INT or FLOAT.
func (v Value) IsNumeric() bool { return v.Kind == KindInt || v.Kind == KindFloat }

// AsFloat returns the value as a float64. Only valid for numeric kinds.
func (v Value) AsFloat() float64 {
	if v.Kind == KindInt {
		return float64(v.Int)
	}
	return v.Float
}

// AsInt returns the value as an int64. Only valid for numeric kinds; FLOAT
// values are truncated toward zero.
func (v Value) AsInt() int64 {
	if v.Kind == KindFloat {
		return int64(v.Float)
	}
	return v.Int
}

// String renders the value for display and for canonical encodings such as
// rule texts. TEXT values are rendered without quotes.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.Bool {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindFloat:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case KindText:
		return v.Str
	case KindMin:
		return "-inf"
	case KindMax:
		return "+inf"
	default:
		return "<invalid>"
	}
}

// SQLLiteral renders the value as a SQL literal (TEXT quoted and escaped).
func (v Value) SQLLiteral() string {
	if v.Kind == KindText {
		return "'" + strings.ReplaceAll(v.Str, "'", "''") + "'"
	}
	return v.String()
}

// typeRank orders kinds for cross-kind comparison. NULL sorts lowest (after
// KindMin), then BOOL, then numerics (INT and FLOAT share a rank and compare
// numerically), then TEXT, then KindMax.
func typeRank(k Kind) int {
	switch k {
	case KindMin:
		return 0
	case KindNull:
		return 1
	case KindBool:
		return 2
	case KindInt, KindFloat:
		return 3
	case KindText:
		return 4
	case KindMax:
		return 5
	default:
		return 6
	}
}

// Compare defines a total order over values, used by B+tree indexes and
// ORDER BY. Values of different kinds are ordered by type rank, except that
// INT and FLOAT compare numerically with each other. It returns -1, 0, or +1.
func Compare(a, b Value) int {
	ra, rb := typeRank(a.Kind), typeRank(b.Kind)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch a.Kind {
	case KindNull, KindMin, KindMax:
		return 0
	case KindBool:
		if a.Bool == b.Bool {
			return 0
		}
		if !a.Bool {
			return -1
		}
		return 1
	case KindText:
		return strings.Compare(a.Str, b.Str)
	default: // numeric rank: INT and/or FLOAT
		if a.Kind == KindInt && b.Kind == KindInt {
			switch {
			case a.Int < b.Int:
				return -1
			case a.Int > b.Int:
				return 1
			default:
				return 0
			}
		}
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		case math.IsNaN(af) && !math.IsNaN(bf):
			return -1
		case !math.IsNaN(af) && math.IsNaN(bf):
			return 1
		default:
			return 0
		}
	}
}

// Equal reports whether two values are equal under Compare semantics.
// Note that under this definition NULL equals NULL; SQL three-valued
// comparison semantics are implemented in the expression evaluator, not here.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Hash returns a hash of the value consistent with Equal: equal values hash
// equally, including the INT/FLOAT numeric coercion (1 and 1.0 hash alike).
func (v Value) Hash() uint64 {
	h := fnv.New64a()
	switch v.Kind {
	case KindNull:
		h.Write([]byte{0})
	case KindBool:
		if v.Bool {
			h.Write([]byte{1, 1})
		} else {
			h.Write([]byte{1, 0})
		}
	case KindInt, KindFloat:
		// Hash the float64 bit pattern so 1 and 1.0 collide as required.
		f := v.AsFloat()
		bits := math.Float64bits(f)
		var buf [9]byte
		buf[0] = 2
		for i := 0; i < 8; i++ {
			buf[1+i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	case KindText:
		h.Write([]byte{3})
		h.Write([]byte(v.Str))
	}
	return h.Sum64()
}

// CoerceTo converts the value to the target kind, if a lossless or standard
// SQL conversion exists. It implements CAST semantics: numeric<->numeric,
// anything->TEXT via String, TEXT->numeric via parsing, and NULL->anything
// (stays NULL).
func (v Value) CoerceTo(k Kind) (Value, error) {
	if v.Kind == k || v.Kind == KindNull {
		return v, nil
	}
	switch k {
	case KindInt:
		switch v.Kind {
		case KindFloat:
			return NewInt(int64(v.Float)), nil
		case KindText:
			i, err := strconv.ParseInt(strings.TrimSpace(v.Str), 10, 64)
			if err != nil {
				f, ferr := strconv.ParseFloat(strings.TrimSpace(v.Str), 64)
				if ferr != nil {
					return Null(), fmt.Errorf("rdb: cannot cast %q to INT", v.Str)
				}
				return NewInt(int64(f)), nil
			}
			return NewInt(i), nil
		case KindBool:
			if v.Bool {
				return NewInt(1), nil
			}
			return NewInt(0), nil
		}
	case KindFloat:
		switch v.Kind {
		case KindInt:
			return NewFloat(float64(v.Int)), nil
		case KindText:
			f, err := strconv.ParseFloat(strings.TrimSpace(v.Str), 64)
			if err != nil {
				return Null(), fmt.Errorf("rdb: cannot cast %q to FLOAT", v.Str)
			}
			return NewFloat(f), nil
		case KindBool:
			if v.Bool {
				return NewFloat(1), nil
			}
			return NewFloat(0), nil
		}
	case KindText:
		return NewText(v.String()), nil
	case KindBool:
		switch v.Kind {
		case KindInt:
			return NewBool(v.Int != 0), nil
		case KindFloat:
			return NewBool(v.Float != 0), nil
		case KindText:
			switch strings.ToLower(strings.TrimSpace(v.Str)) {
			case "true", "t", "1":
				return NewBool(true), nil
			case "false", "f", "0":
				return NewBool(false), nil
			}
			return Null(), fmt.Errorf("rdb: cannot cast %q to BOOL", v.Str)
		}
	}
	return Null(), fmt.Errorf("rdb: unsupported cast from %s to %s", v.Kind, k)
}

// Row is a tuple of values. Rows stored in a table always have exactly one
// value per column of the table definition.
type Row []Value

// Clone returns a deep copy of the row. Values are immutable, so a shallow
// copy of the slice suffices.
func (r Row) Clone() Row {
	if r == nil {
		return nil
	}
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Key is a composite index key: a sequence of values compared element-wise.
type Key []Value

// CompareKeys orders composite keys element-wise. If one key is a prefix of
// the other, the shorter key sorts first. Sentinel kinds (KindMin/KindMax)
// inside a key make it usable as a range bound.
func CompareKeys(a, b Key) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

// HashKey hashes a composite key consistently with CompareKeys equality.
func HashKey(k Key) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range k {
		hv := v.Hash()
		for i := 0; i < 8; i++ {
			buf[i] = byte(hv >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// encodeKeyString encodes a key to a string usable as a Go map key, with the
// same equality as CompareKeys. Used by hash indexes and hash joins.
func encodeKeyString(k Key) string {
	var sb strings.Builder
	for _, v := range k {
		switch v.Kind {
		case KindNull:
			sb.WriteByte(0)
		case KindBool:
			sb.WriteByte(1)
			if v.Bool {
				sb.WriteByte(1)
			} else {
				sb.WriteByte(0)
			}
		case KindInt, KindFloat:
			sb.WriteByte(2)
			bits := math.Float64bits(v.AsFloat())
			for i := 0; i < 8; i++ {
				sb.WriteByte(byte(bits >> (8 * i)))
			}
		case KindText:
			sb.WriteByte(3)
			// Length-prefix so concatenated keys cannot collide.
			n := len(v.Str)
			for i := 0; i < 4; i++ {
				sb.WriteByte(byte(n >> (8 * i)))
			}
			sb.WriteString(v.Str)
		}
	}
	return sb.String()
}

// EncodeKeyString is the exported form of encodeKeyString for use by the SQL
// executor's hash join and DISTINCT/GROUP BY operators.
func EncodeKeyString(k Key) string { return encodeKeyString(k) }
