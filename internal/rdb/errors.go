package rdb

import "errors"

// Sentinel errors returned by the engine. Callers match them with errors.Is.
var (
	// ErrNoSuchTable is returned when a statement references an undefined table.
	ErrNoSuchTable = errors.New("no such table")
	// ErrNoSuchIndex is returned when a statement references an undefined index.
	ErrNoSuchIndex = errors.New("no such index")
	// ErrNoSuchColumn is returned when a statement references an undefined column.
	ErrNoSuchColumn = errors.New("no such column")
	// ErrTableExists is returned by CreateTable for a duplicate table name.
	ErrTableExists = errors.New("table already exists")
	// ErrIndexExists is returned by CreateIndex for a duplicate index name.
	ErrIndexExists = errors.New("index already exists")
	// ErrNoSuchRow is returned when a row ID does not identify a live row.
	ErrNoSuchRow = errors.New("no such row")
	// ErrUnordered is returned when a range scan is requested on a hash index.
	ErrUnordered = errors.New("index does not support range scans")
	// ErrTxnDone is returned when a finished transaction is used again.
	ErrTxnDone = errors.New("transaction already committed or rolled back")
)
