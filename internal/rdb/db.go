package rdb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

func lowerName(s string) string { return strings.ToLower(s) }

// Database is a catalog of tables. All catalog operations (create/drop) and
// table lookups are safe for concurrent use; row-level operations are
// synchronized per table through each Table's RWMutex, so scans of
// different goroutines run concurrently and block only on mutations of the
// same table. The SQL layer above adds statement-level read/write
// scheduling (sql.DB.stmtMu) and multi-statement read views (sql.ReadTxn)
// on top of these per-table locks.
type Database struct {
	mu     sync.RWMutex
	tables map[string]*Table
	// writeMu serializes transactions (single-writer model). Auto-committed
	// single statements do not take it.
	writeMu sync.Mutex
}

// NewDatabase creates an empty database.
func NewDatabase() *Database {
	return &Database{tables: make(map[string]*Table)}
}

// CreateTable adds a new table. Primary key columns automatically receive a
// unique B+tree index named <table>_pk.
func (db *Database) CreateTable(def TableDef) (*Table, error) {
	if err := def.Validate(); err != nil {
		return nil, err
	}
	db.mu.Lock()
	if _, exists := db.tables[lowerName(def.Name)]; exists {
		db.mu.Unlock()
		return nil, fmt.Errorf("rdb: %w: %s", ErrTableExists, def.Name)
	}
	t := newTable(def)
	db.tables[lowerName(def.Name)] = t
	db.mu.Unlock()

	if pk := def.PrimaryKeyColumns(); len(pk) > 0 {
		cols := make([]string, len(pk))
		for i, p := range pk {
			cols[i] = def.Columns[p].Name
		}
		_, err := t.createIndex(IndexDef{
			Name:    def.Name + "_pk",
			Table:   def.Name,
			Columns: cols,
			Unique:  true,
			Kind:    IndexBTree,
		})
		if err != nil {
			db.mu.Lock()
			delete(db.tables, lowerName(def.Name))
			db.mu.Unlock()
			return nil, err
		}
	}
	return t, nil
}

// DropTable removes a table and all of its indexes.
func (db *Database) DropTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[lowerName(name)]; !ok {
		return fmt.Errorf("rdb: %w: %s", ErrNoSuchTable, name)
	}
	delete(db.tables, lowerName(name))
	return nil
}

// Table returns the named table.
func (db *Database) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[lowerName(name)]
	if !ok {
		return nil, fmt.Errorf("rdb: %w: %s", ErrNoSuchTable, name)
	}
	return t, nil
}

// HasTable reports whether the named table exists.
func (db *Database) HasTable(name string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.tables[lowerName(name)]
	return ok
}

// TableNames returns the names of all tables, sorted.
func (db *Database) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		names = append(names, t.def.Name)
	}
	sort.Strings(names)
	return names
}

// CreateIndex builds a secondary index over an existing table, indexing the
// rows already present.
func (db *Database) CreateIndex(def IndexDef) (*Index, error) {
	if def.Name == "" || len(def.Columns) == 0 {
		return nil, fmt.Errorf("rdb: invalid index definition %q", def.Name)
	}
	t, err := db.Table(def.Table)
	if err != nil {
		return nil, err
	}
	return t.createIndex(def)
}

// DropIndex removes an index from a table.
func (db *Database) DropIndex(table, name string) error {
	t, err := db.Table(table)
	if err != nil {
		return err
	}
	return t.dropIndex(name)
}

// Begin starts a transaction. Transactions follow a single-writer model:
// Begin blocks until any other open transaction finishes. Reads outside a
// transaction remain concurrent.
func (db *Database) Begin() *Txn {
	db.writeMu.Lock()
	return &Txn{db: db}
}

// Txn is an undo-log transaction. All mutations performed through the
// transaction are rolled back in reverse order on Rollback.
type Txn struct {
	db   *Database
	undo []undoEntry
	done bool
}

type undoOp uint8

const (
	undoInsert undoOp = iota // compensate with delete
	undoUpdate               // compensate with update to old row
	undoDelete               // compensate by re-inserting old row at its slot
)

type undoEntry struct {
	op    undoOp
	table *Table
	rowID int64
	old   Row
}

// Insert inserts a row within the transaction.
func (tx *Txn) Insert(table string, row Row) (int64, error) {
	if tx.done {
		return 0, ErrTxnDone
	}
	t, err := tx.db.Table(table)
	if err != nil {
		return 0, err
	}
	id, err := t.Insert(row)
	if err != nil {
		return 0, err
	}
	tx.undo = append(tx.undo, undoEntry{op: undoInsert, table: t, rowID: id})
	return id, nil
}

// Update updates a row within the transaction.
func (tx *Txn) Update(table string, rowID int64, row Row) error {
	if tx.done {
		return ErrTxnDone
	}
	t, err := tx.db.Table(table)
	if err != nil {
		return err
	}
	old, ok := t.Get(rowID)
	if !ok {
		return fmt.Errorf("rdb: table %s: update row %d: %w", table, rowID, ErrNoSuchRow)
	}
	if err := t.Update(rowID, row); err != nil {
		return err
	}
	tx.undo = append(tx.undo, undoEntry{op: undoUpdate, table: t, rowID: rowID, old: old})
	return nil
}

// Delete deletes a row within the transaction.
func (tx *Txn) Delete(table string, rowID int64) error {
	if tx.done {
		return ErrTxnDone
	}
	t, err := tx.db.Table(table)
	if err != nil {
		return err
	}
	old, err := t.Delete(rowID)
	if err != nil {
		return err
	}
	tx.undo = append(tx.undo, undoEntry{op: undoDelete, table: t, rowID: rowID, old: old})
	return nil
}

// Commit makes the transaction's changes final.
func (tx *Txn) Commit() error {
	if tx.done {
		return ErrTxnDone
	}
	tx.done = true
	tx.undo = nil
	tx.db.writeMu.Unlock()
	return nil
}

// Rollback undoes every change made through the transaction, in reverse.
func (tx *Txn) Rollback() error {
	if tx.done {
		return ErrTxnDone
	}
	tx.done = true
	for i := len(tx.undo) - 1; i >= 0; i-- {
		e := tx.undo[i]
		switch e.op {
		case undoInsert:
			if _, err := e.table.Delete(e.rowID); err != nil {
				panic(fmt.Sprintf("rdb: rollback: undo insert: %v", err))
			}
		case undoUpdate:
			if err := e.table.Update(e.rowID, e.old); err != nil {
				panic(fmt.Sprintf("rdb: rollback: undo update: %v", err))
			}
		case undoDelete:
			if err := e.table.reinsertAt(e.rowID, e.old); err != nil {
				panic(fmt.Sprintf("rdb: rollback: undo delete: %v", err))
			}
		}
	}
	tx.undo = nil
	tx.db.writeMu.Unlock()
	return nil
}

// reinsertAt restores a previously deleted row at its original slot so that
// row IDs recorded elsewhere in the undo log remain valid.
func (t *Table) reinsertAt(rowID int64, row Row) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if rowID < 0 || rowID >= int64(len(t.rows)) || t.rows[rowID] != nil {
		return fmt.Errorf("rdb: table %s: slot %d not free", t.def.Name, rowID)
	}
	// Remove the slot from the free list.
	for i, f := range t.free {
		if f == rowID {
			t.free = append(t.free[:i], t.free[i+1:]...)
			break
		}
	}
	t.rows[rowID] = row.Clone()
	t.live++
	for _, ix := range t.indexes {
		if err := ix.insert(t.rows[rowID], rowID); err != nil {
			return err
		}
	}
	return nil
}
