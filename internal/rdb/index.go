package rdb

import "fmt"

// Index is a secondary index over a table. It maps composite keys, extracted
// from the indexed columns of each row, to row IDs.
type Index struct {
	Def     IndexDef
	colPos  []int // positions of indexed columns in the table row
	btree   *bptree
	hash    map[string][]int64
	hashLen int
}

func newIndex(def IndexDef, colPos []int) *Index {
	idx := &Index{Def: def, colPos: colPos}
	if def.Kind == IndexHash {
		idx.hash = make(map[string][]int64)
	} else {
		idx.btree = newBPTree()
	}
	return idx
}

// keyOf extracts the index key from a full table row.
func (ix *Index) keyOf(row Row) Key {
	k := make(Key, len(ix.colPos))
	for i, p := range ix.colPos {
		k[i] = row[p]
	}
	return k
}

// insert adds the row to the index, enforcing uniqueness if required.
// Rows containing NULL in any key column are exempt from the uniqueness
// check, matching the usual SQL treatment of NULLs in unique indexes.
func (ix *Index) insert(row Row, rowID int64) error {
	key := ix.keyOf(row)
	if ix.Def.Unique && !keyHasNull(key) {
		if ids := ix.lookup(key); len(ids) > 0 {
			return fmt.Errorf("rdb: unique index %s: duplicate key (%s)", ix.Def.Name, keyString(key))
		}
	}
	if ix.hash != nil {
		s := encodeKeyString(key)
		ix.hash[s] = append(ix.hash[s], rowID)
		ix.hashLen++
	} else {
		ix.btree.Insert(key, rowID)
	}
	return nil
}

// remove deletes the (row, rowID) entry from the index.
func (ix *Index) remove(row Row, rowID int64) {
	key := ix.keyOf(row)
	if ix.hash != nil {
		s := encodeKeyString(key)
		ids := ix.hash[s]
		for i, id := range ids {
			if id == rowID {
				ids = append(ids[:i], ids[i+1:]...)
				break
			}
		}
		if len(ids) == 0 {
			delete(ix.hash, s)
		} else {
			ix.hash[s] = ids
		}
		ix.hashLen--
	} else {
		ix.btree.Delete(key, rowID)
	}
}

// lookup returns the row IDs whose key equals the given key exactly.
func (ix *Index) lookup(key Key) []int64 {
	if ix.hash != nil {
		return ix.hash[encodeKeyString(key)]
	}
	var out []int64
	ix.btree.ScanRange(key, key, func(k Key, rowID int64) bool {
		// ScanRange treats a short high bound as a prefix bound; require an
		// exact full-key match for point lookups.
		if len(k) == len(key) && CompareKeys(k, key) == 0 {
			out = append(out, rowID)
		}
		return true
	})
	return out
}

// Lookup returns the row IDs matching the key. Exported for the SQL planner.
func (ix *Index) Lookup(key Key) []int64 { return ix.lookup(key) }

// ScanRange visits index entries with low <= key <= high in order. Only
// valid for B+tree indexes; hash indexes return ErrUnordered.
func (ix *Index) ScanRange(low, high Key, visit func(key Key, rowID int64) bool) error {
	if ix.btree == nil {
		return fmt.Errorf("rdb: index %s: %w", ix.Def.Name, ErrUnordered)
	}
	ix.btree.ScanRange(low, high, visit)
	return nil
}

// Len returns the number of entries in the index.
func (ix *Index) Len() int {
	if ix.hash != nil {
		return ix.hashLen
	}
	return ix.btree.Len()
}

// Ordered reports whether the index supports range scans.
func (ix *Index) Ordered() bool { return ix.btree != nil }

// ColumnPositions returns the table-row positions of the indexed columns.
func (ix *Index) ColumnPositions() []int { return ix.colPos }

func keyHasNull(k Key) bool {
	for _, v := range k {
		if v.IsNull() {
			return true
		}
	}
	return false
}

func keyString(k Key) string {
	s := ""
	for i, v := range k {
		if i > 0 {
			s += ", "
		}
		s += v.String()
	}
	return s
}
