package rdb

import (
	"fmt"
	"sync"
)

// Table is a heap table: rows live in a slice and are addressed by stable
// row IDs (slot positions). Deleted slots are tombstoned (nil row) and
// reused by later inserts. Secondary indexes map keys to row IDs.
type Table struct {
	mu      sync.RWMutex
	def     TableDef
	rows    []Row
	free    []int64
	live    int
	indexes map[string]*Index // keyed by lower-cased index name
}

func newTable(def TableDef) *Table {
	return &Table{def: def, indexes: make(map[string]*Index)}
}

// Def returns a copy of the table definition.
func (t *Table) Def() TableDef {
	t.mu.RLock()
	defer t.mu.RUnlock()
	d := t.def
	d.Columns = append([]ColumnDef(nil), t.def.Columns...)
	return d
}

// Name returns the table name.
func (t *Table) Name() string { return t.def.Name }

// Len returns the number of live rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.live
}

// Insert validates and stores a row, maintaining all indexes. It returns the
// new row's ID.
func (t *Table) Insert(row Row) (int64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.insertLocked(row)
}

func (t *Table) insertLocked(row Row) (int64, error) {
	checked, err := t.def.checkRow(row)
	if err != nil {
		return 0, err
	}
	checked = checked.Clone()
	// Check every unique index before touching any of them, so a violation
	// leaves the table unchanged.
	for _, ix := range t.indexes {
		if ix.Def.Unique {
			key := ix.keyOf(checked)
			if !keyHasNull(key) && len(ix.lookup(key)) > 0 {
				return 0, fmt.Errorf("rdb: table %s: unique index %s: duplicate key (%s)",
					t.def.Name, ix.Def.Name, keyString(key))
			}
		}
	}
	var id int64
	if n := len(t.free); n > 0 {
		id = t.free[n-1]
		t.free = t.free[:n-1]
		t.rows[id] = checked
	} else {
		id = int64(len(t.rows))
		t.rows = append(t.rows, checked)
	}
	t.live++
	for _, ix := range t.indexes {
		// Cannot fail: uniqueness was pre-checked above.
		if err := ix.insert(checked, id); err != nil {
			panic(fmt.Sprintf("rdb: internal: index insert failed after pre-check: %v", err))
		}
	}
	return id, nil
}

// Get returns a copy of the row with the given ID, if it is live.
func (t *Table) Get(rowID int64) (Row, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if rowID < 0 || rowID >= int64(len(t.rows)) || t.rows[rowID] == nil {
		return nil, false
	}
	return t.rows[rowID].Clone(), true
}

// Update replaces the row with the given ID, maintaining all indexes.
// On a uniqueness violation the row is left unchanged.
func (t *Table) Update(rowID int64, row Row) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.updateLocked(rowID, row)
}

func (t *Table) updateLocked(rowID int64, row Row) error {
	if rowID < 0 || rowID >= int64(len(t.rows)) || t.rows[rowID] == nil {
		return fmt.Errorf("rdb: table %s: update row %d: %w", t.def.Name, rowID, ErrNoSuchRow)
	}
	checked, err := t.def.checkRow(row)
	if err != nil {
		return err
	}
	checked = checked.Clone()
	old := t.rows[rowID]
	// Remove the old entries first so an update that keeps the key does not
	// collide with itself, then insert the new entries; on violation restore.
	for _, ix := range t.indexes {
		ix.remove(old, rowID)
	}
	var failed error
	done := make([]*Index, 0, len(t.indexes))
	for _, ix := range t.indexes {
		if err := ix.insert(checked, rowID); err != nil {
			failed = err
			break
		}
		done = append(done, ix)
	}
	if failed != nil {
		for _, ix := range done {
			ix.remove(checked, rowID)
		}
		for _, ix := range t.indexes {
			if err := ix.insert(old, rowID); err != nil {
				panic(fmt.Sprintf("rdb: internal: index restore failed: %v", err))
			}
		}
		return failed
	}
	t.rows[rowID] = checked
	return nil
}

// Delete removes the row with the given ID and returns its former contents.
func (t *Table) Delete(rowID int64) (Row, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.deleteLocked(rowID)
}

func (t *Table) deleteLocked(rowID int64) (Row, error) {
	if rowID < 0 || rowID >= int64(len(t.rows)) || t.rows[rowID] == nil {
		return nil, fmt.Errorf("rdb: table %s: delete row %d: %w", t.def.Name, rowID, ErrNoSuchRow)
	}
	old := t.rows[rowID]
	for _, ix := range t.indexes {
		ix.remove(old, rowID)
	}
	t.rows[rowID] = nil
	t.free = append(t.free, rowID)
	t.live--
	return old, nil
}

// Scan visits every live row in row-ID order. The visited row must not be
// modified; the visit function returns false to stop early. Scan holds the
// table read lock for its duration; the visit function must not call
// mutating methods of the same table.
func (t *Table) Scan(visit func(rowID int64, row Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for id, row := range t.rows {
		if row == nil {
			continue
		}
		if !visit(int64(id), row) {
			return
		}
	}
}

// ScanSnapshot visits a point-in-time copy of every live row without holding
// the lock during visits, so the visit function may mutate the table.
func (t *Table) ScanSnapshot(visit func(rowID int64, row Row) bool) {
	type entry struct {
		id  int64
		row Row
	}
	t.mu.RLock()
	snap := make([]entry, 0, t.live)
	for id, row := range t.rows {
		if row != nil {
			snap = append(snap, entry{int64(id), row.Clone()})
		}
	}
	t.mu.RUnlock()
	for _, e := range snap {
		if !visit(e.id, e.row) {
			return
		}
	}
}

// Index returns the named index, if it exists.
func (t *Table) Index(name string) (*Index, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ix, ok := t.indexes[lowerName(name)]
	return ix, ok
}

// Indexes returns all indexes of the table.
func (t *Table) Indexes() []*Index {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]*Index, 0, len(t.indexes))
	for _, ix := range t.indexes {
		out = append(out, ix)
	}
	return out
}

// createIndex builds an index over the existing rows.
func (t *Table) createIndex(def IndexDef) (*Index, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, exists := t.indexes[lowerName(def.Name)]; exists {
		return nil, fmt.Errorf("rdb: %w: %s", ErrIndexExists, def.Name)
	}
	colPos := make([]int, len(def.Columns))
	for i, c := range def.Columns {
		p := t.def.ColumnIndex(c)
		if p < 0 {
			return nil, fmt.Errorf("rdb: index %s: %w: %s.%s", def.Name, ErrNoSuchColumn, t.def.Name, c)
		}
		colPos[i] = p
	}
	ix := newIndex(def, colPos)
	for id, row := range t.rows {
		if row == nil {
			continue
		}
		if err := ix.insert(row, int64(id)); err != nil {
			return nil, err
		}
	}
	t.indexes[lowerName(def.Name)] = ix
	return ix, nil
}

func (t *Table) dropIndex(name string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.indexes[lowerName(name)]; !ok {
		return fmt.Errorf("rdb: %w: %s", ErrNoSuchIndex, name)
	}
	delete(t.indexes, lowerName(name))
	return nil
}
