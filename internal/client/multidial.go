package client

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

// MultiDialer dials an MDP from a list of endpoints — typically the
// primary plus its read replicas. Each Dial starts at the endpoint that
// last succeeded (sticky, so a healthy deployment keeps one connection
// target) and rotates through the rest on failure, which is what gives an
// LMR primary-loss failover: when its provider connection dies, the
// reconnect supervisor redials through this dialer and lands on the next
// endpoint that answers. Replicas serve the whole read path and proxy
// writes to the primary, so any endpoint is a full substitute.
type MultiDialer struct {
	addrs []string
	cfg   Config

	mu   sync.Mutex
	next int // index to try first on the next Dial
}

// NewMultiDialer builds a dialer over the given endpoints.
func NewMultiDialer(addrs []string, cfg Config) (*MultiDialer, error) {
	if len(addrs) == 0 {
		return nil, errors.New("client: no provider endpoints")
	}
	return &MultiDialer{addrs: append([]string(nil), addrs...), cfg: cfg}, nil
}

// Addrs returns the configured endpoints.
func (d *MultiDialer) Addrs() []string { return append([]string(nil), d.addrs...) }

// Dial connects to the first endpoint that answers, starting with the
// last successful one. It returns the last error if every endpoint fails.
func (d *MultiDialer) Dial() (*MDP, error) {
	d.mu.Lock()
	start := d.next
	d.mu.Unlock()
	var errs []string
	for i := 0; i < len(d.addrs); i++ {
		idx := (start + i) % len(d.addrs)
		c, err := DialMDPConfig(d.addrs[idx], d.cfg)
		if err == nil {
			d.mu.Lock()
			d.next = idx
			d.mu.Unlock()
			return c, nil
		}
		errs = append(errs, fmt.Sprintf("%s: %v", d.addrs[idx], err))
	}
	return nil, fmt.Errorf("client: all %d provider endpoints failed: %s", len(d.addrs), strings.Join(errs, "; "))
}
