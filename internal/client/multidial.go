package client

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

// MultiDialer dials an MDP from a list of endpoints — typically the
// primary plus its read replicas. Each Dial starts at the endpoint that
// last succeeded (sticky, so a healthy deployment keeps one connection
// target) and rotates through the rest on failure, which is what gives an
// LMR primary-loss failover: when its provider connection dies, the
// reconnect supervisor redials through this dialer and lands on the next
// endpoint that answers. Replicas serve the whole read path and proxy
// writes to the primary, so any endpoint is a full substitute.
type MultiDialer struct {
	addrs []string
	cfg   Config

	mu   sync.Mutex
	next int // index to try first on the next Dial
	// epoch is the highest replication term any endpoint has announced in
	// a connect handshake. An endpoint announcing a LOWER term is a
	// resurrected stale node: connecting to it could hand writes to a dead
	// history, so Dial treats it as failed and rotates on.
	epoch uint64
}

// NewMultiDialer builds a dialer over the given endpoints.
func NewMultiDialer(addrs []string, cfg Config) (*MultiDialer, error) {
	if len(addrs) == 0 {
		return nil, errors.New("client: no provider endpoints")
	}
	return &MultiDialer{addrs: append([]string(nil), addrs...), cfg: cfg}, nil
}

// Addrs returns the configured endpoints.
func (d *MultiDialer) Addrs() []string { return append([]string(nil), d.addrs...) }

// Epoch returns the highest replication term seen across connects.
func (d *MultiDialer) Epoch() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.epoch
}

// Dial connects to the first endpoint that answers with a current epoch,
// starting with the last successful one. Endpoints announcing a term below
// the highest one this dialer has seen are rejected like dead ones — they
// are resurrected stale primaries that have not repaired yet. The returned
// connection stamps its writes with the endpoint's announced term, so a
// later demotion of that endpoint fences them instead of applying them. It
// returns the aggregated error if every endpoint fails.
func (d *MultiDialer) Dial() (*MDP, error) {
	d.mu.Lock()
	start := d.next
	d.mu.Unlock()
	var errs []string
	for i := 0; i < len(d.addrs); i++ {
		idx := (start + i) % len(d.addrs)
		c, err := DialMDPConfig(d.addrs[idx], d.cfg)
		if err != nil {
			errs = append(errs, fmt.Sprintf("%s: %v", d.addrs[idx], err))
			continue
		}
		peer := c.PeerEpoch()
		d.mu.Lock()
		if peer < d.epoch {
			known := d.epoch
			d.mu.Unlock()
			c.Close()
			errs = append(errs, fmt.Sprintf("%s: announced stale epoch %d (cluster is at %d)", d.addrs[idx], peer, known))
			continue
		}
		d.epoch = peer
		d.next = idx
		d.mu.Unlock()
		c.SetWriteEpoch(peer)
		return c, nil
	}
	return nil, fmt.Errorf("client: all %d provider endpoints failed: %s", len(d.addrs), strings.Join(errs, "; "))
}
