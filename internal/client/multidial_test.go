package client

import (
	"net"
	"strings"
	"testing"

	"mdv/internal/provider"
	"mdv/internal/rdf"
)

func serveProvider(t *testing.T, name string) (*provider.Provider, string) {
	t.Helper()
	p, err := provider.New(name, rdf.NewSchema())
	if err != nil {
		t.Fatal(err)
	}
	addr, err := p.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p, addr
}

// deadAddr returns an address nothing listens on (bound once to reserve
// it, then released).
func deadAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// dialName connects through the dialer and returns the name of the node it
// landed on.
func dialName(t *testing.T, d *MultiDialer) string {
	t.Helper()
	c, err := d.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	topo, err := c.Topology()
	if err != nil {
		t.Fatal(err)
	}
	return topo.Name
}

// TestMultiDialerStickyAndRotation: a successful endpoint stays the first
// choice across dials (one connection target in a healthy deployment);
// when it dies the dialer rotates to the next live endpoint and sticks
// there.
func TestMultiDialerStickyAndRotation(t *testing.T) {
	p1, a1 := serveProvider(t, "p1")
	_, a2 := serveProvider(t, "p2")
	d, err := NewMultiDialer([]string{a1, a2}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := dialName(t, d); got != "p1" {
		t.Fatalf("first dial landed on %q, want p1", got)
	}
	if got := dialName(t, d); got != "p1" {
		t.Fatalf("repeat dial landed on %q, want p1 (sticky)", got)
	}
	p1.Close()
	if got := dialName(t, d); got != "p2" {
		t.Fatalf("dial after p1 died landed on %q, want p2", got)
	}
	if got := dialName(t, d); got != "p2" {
		t.Fatalf("repeat dial landed on %q, want p2 (stickiness follows the failover)", got)
	}
}

// TestMultiDialerAllFail: when no endpoint answers, the error aggregates
// every endpoint's failure so the operator sees the whole picture.
func TestMultiDialerAllFail(t *testing.T) {
	a1, a2 := deadAddr(t), deadAddr(t)
	d, err := NewMultiDialer([]string{a1, a2}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = d.Dial()
	if err == nil {
		t.Fatal("dial succeeded with no live endpoints")
	}
	msg := err.Error()
	if !strings.Contains(msg, "all 2 provider endpoints failed") {
		t.Fatalf("error %q does not aggregate the failure count", msg)
	}
	if !strings.Contains(msg, a1) || !strings.Contains(msg, a2) {
		t.Fatalf("error %q does not name both endpoints", msg)
	}
}

// TestMultiDialerRejectsStaleEpoch: once the dialer has seen epoch N, an
// endpoint announcing a lower term (a resurrected stale primary) is
// treated as failed, not connected to — writes must never land on a dead
// history.
func TestMultiDialerRejectsStaleEpoch(t *testing.T) {
	promoted, err := provider.OpenDurable("r1", rdf.NewSchema(), t.TempDir(),
		provider.DurableOptions{Replica: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := promoted.Promote(); err != nil { // epoch 2
		t.Fatal(err)
	}
	promotedAddr, err := promoted.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stale, err := provider.OpenDurable("old-primary", rdf.NewSchema(), t.TempDir(),
		provider.DurableOptions{}) // epoch 1
	if err != nil {
		t.Fatal(err)
	}
	defer stale.Close()
	staleAddr, err := stale.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	d, err := NewMultiDialer([]string{promotedAddr, staleAddr}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := d.Dial()
	if err != nil {
		t.Fatal(err)
	}
	if got := c.PeerEpoch(); got != 2 {
		t.Fatalf("promoted node announced epoch %d, want 2", got)
	}
	c.Close()
	if d.Epoch() != 2 {
		t.Fatalf("dialer recorded epoch %d, want 2", d.Epoch())
	}

	// With the promoted node gone, the only answering endpoint is the
	// stale one — and connecting to it would hand writes to a dead history.
	promoted.Close()
	_, err = d.Dial()
	if err == nil {
		t.Fatal("dial succeeded against a stale-epoch endpoint")
	}
	if !strings.Contains(err.Error(), "stale epoch 1") {
		t.Fatalf("error %q does not name the stale epoch", err)
	}
}
