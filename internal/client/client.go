// Package client provides typed network clients for the two MDV server
// tiers: MDP (metadata providers) and LMR (local metadata repositories).
// The MDP client implements lmr.ProviderAPI, so an LMR node works
// identically against an in-process provider and a remote one, and
// provider.Peer, so backbone replication can cross machines.
package client

import (
	"context"
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"

	"mdv/internal/core"
	"mdv/internal/metrics"
	"mdv/internal/rdf"
	"mdv/internal/wire"
)

// ApplyFunc receives one pushed changeset (see provider.ApplyFunc).
type ApplyFunc = func(seq uint64, reset bool, cs *core.Changeset) error

// Config tunes a client connection's fault tolerance. The zero value
// disables all of it (no heartbeat, no deadlines), matching Dial*.
type Config struct {
	// Heartbeat is the ping interval. The client pings the server on this
	// period and closes the connection when inbound silence exceeds the
	// idle bound, so a dead or partitioned provider is detected within a
	// bounded interval; the reconnect loop takes over from there.
	Heartbeat time.Duration
	// IdleTimeout overrides the inbound-silence bound (default 3x
	// Heartbeat).
	IdleTimeout time.Duration
	// WriteTimeout bounds each message write.
	WriteTimeout time.Duration
	// CallTimeout bounds every request/response call that is not given an
	// explicit context (0 = unbounded). Expired calls return
	// context.DeadlineExceeded, which wire.IsRetryable classifies as
	// retryable.
	CallTimeout time.Duration
}

func (c Config) wire() wire.Config {
	return wire.Config{
		HeartbeatInterval: c.Heartbeat,
		IdleTimeout:       c.IdleTimeout,
		WriteTimeout:      c.WriteTimeout,
	}
}

// IsRetryable reports whether a call error is a transport failure worth a
// reconnect-and-retry, as opposed to an application rejection by the
// provider. See wire.IsRetryable.
func IsRetryable(err error) bool { return wire.IsRetryable(err) }

// MDP is a client connection to a metadata provider.
type MDP struct {
	conn *wire.Client
	cfg  Config
	// applyFns receive pushed changesets per attached subscriber.
	mu       sync.Mutex
	applyFns map[string]ApplyFunc
	// prop is the propagation-lag histogram, nil until EnablePushMetrics.
	prop atomic.Pointer[metrics.Histogram]
	// writeEpoch stamps every write request (see SetWriteEpoch); 0 sends
	// writes unstamped (the provider admits them at any term).
	writeEpoch atomic.Uint64
}

// DialMDP connects to an MDP server with a zero Config.
func DialMDP(addr string) (*MDP, error) {
	return DialMDPConfig(addr, Config{})
}

// DialMDPConfig connects to an MDP server with explicit fault-tolerance
// settings.
func DialMDPConfig(addr string, cfg Config) (*MDP, error) {
	conn, err := wire.DialConfig(addr, cfg.wire())
	if err != nil {
		return nil, err
	}
	c := &MDP{conn: conn, cfg: cfg, applyFns: map[string]ApplyFunc{}}
	conn.OnPush = c.onPush
	return c, nil
}

// call runs one request under the configured default call timeout.
func call(conn *wire.Client, cfg Config, kind string, req, out interface{}) error {
	if cfg.CallTimeout <= 0 {
		return conn.Call(kind, req, out)
	}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.CallTimeout)
	defer cancel()
	return conn.CallContext(ctx, kind, req, out)
}

func (c *MDP) call(kind string, req, out interface{}) error {
	return call(c.conn, c.cfg, kind, req, out)
}

// Close closes the connection.
func (c *MDP) Close() error { return c.conn.Close() }

// Done is closed when the connection terminates.
func (c *MDP) Done() <-chan struct{} { return c.conn.Done() }

// BytesRead returns the total bytes received on the underlying connection,
// including frame headers (benchmarks use it to measure wire amplification).
func (c *MDP) BytesRead() uint64 { return c.conn.BytesRead() }

// PeerEpoch returns the replication term the provider announced in the
// connect handshake (0 when the server predates epochs or is not durable).
func (c *MDP) PeerEpoch() uint64 { return c.conn.PeerEpoch() }

// SetWriteEpoch stamps every subsequent write request with the given term.
// A stamped write is fenced (rejected, never applied) by any node serving
// a different term — the client-side half of split-brain protection. Zero
// clears the stamp.
func (c *MDP) SetWriteEpoch(epoch uint64) { c.writeEpoch.Store(epoch) }

func (c *MDP) onPush(kind string, body json.RawMessage) {
	switch kind {
	case wire.KindChangeset:
		var push wire.ChangesetPush
		if err := json.Unmarshal(body, &push); err != nil {
			return
		}
		c.applyPush(&push)
	case wire.KindChangesetBatch:
		// Coalesced replay frame: apply each element in order, exactly as
		// if it had arrived as its own push.
		var batch wire.ChangesetBatchPush
		if err := json.Unmarshal(body, &batch); err != nil {
			return
		}
		for i := range batch.Pushes {
			c.applyPush(&batch.Pushes[i])
		}
	}
}

func (c *MDP) applyPush(push *wire.ChangesetPush) {
	if push.Changeset == nil {
		return
	}
	if h := c.prop.Load(); h != nil && push.PubUnixNano > 0 {
		lag := time.Since(time.Unix(0, push.PubUnixNano)).Seconds()
		if lag < 0 {
			lag = 0
		}
		h.Observe(lag)
	}
	c.mu.Lock()
	fns := make([]ApplyFunc, 0, len(c.applyFns))
	for _, fn := range c.applyFns {
		fns = append(fns, fn)
	}
	c.mu.Unlock()
	// Pushes are not addressed per subscriber on the wire: each attached
	// connection receives only its own subscriber's changesets, so every
	// registered apply function on this connection gets it.
	for _, fn := range fns {
		fn(push.Seq, push.Reset, push.Changeset)
	}
}

// RegisterDocument registers one document at the MDP.
func (c *MDP) RegisterDocument(doc *rdf.Document) error {
	return c.RegisterDocuments([]*rdf.Document{doc})
}

// RegisterDocuments registers a batch of documents at the MDP.
func (c *MDP) RegisterDocuments(docs []*rdf.Document) error {
	req := wire.RegisterDocumentsRequest{Epoch: c.writeEpoch.Load()}
	for _, d := range docs {
		req.Docs = append(req.Docs, wire.Doc{URI: d.URI, XML: rdf.DocumentString(d)})
	}
	return c.call(wire.KindRegisterDocuments, &req, nil)
}

// DeleteDocument removes a document at the MDP.
func (c *MDP) DeleteDocument(uri string) error {
	return c.call(wire.KindDeleteDocument, &wire.DeleteDocumentRequest{URI: uri, Epoch: c.writeEpoch.Load()}, nil)
}

// Subscribe registers a subscription rule.
func (c *MDP) Subscribe(subscriber, rule string) (int64, *core.Changeset, error) {
	var resp wire.SubscribeResponse
	err := c.call(wire.KindSubscribe, &wire.SubscribeRequest{Subscriber: subscriber, Rule: rule, Epoch: c.writeEpoch.Load()}, &resp)
	if err != nil {
		return 0, nil, err
	}
	return resp.SubID, resp.Initial, nil
}

// Unsubscribe removes a subscription.
func (c *MDP) Unsubscribe(subID int64) error {
	return c.call(wire.KindUnsubscribe, &wire.UnsubscribeRequest{SubID: subID, Epoch: c.writeEpoch.Load()}, nil)
}

// Attach registers this connection as the subscriber's push channel;
// published changesets are delivered to apply.
func (c *MDP) Attach(subscriber string, apply ApplyFunc) error {
	c.mu.Lock()
	c.applyFns[subscriber] = apply
	c.mu.Unlock()
	return c.call(wire.KindAttach, &wire.AttachRequest{Subscriber: subscriber}, nil)
}

// Resume asks a durable MDP to replay the changesets published for the
// subscriber past fromSeq. The replayed changesets arrive as ordered
// pushes on this connection (Attach first); the returned sequence is the
// one the subscriber is current to afterwards.
func (c *MDP) Resume(subscriber string, fromSeq uint64) (uint64, error) {
	var resp wire.ResumeResponse
	err := c.call(wire.KindResume, &wire.ResumeRequest{Subscriber: subscriber, FromSeq: fromSeq}, &resp)
	if err != nil {
		return 0, err
	}
	return resp.LatestSeq, nil
}

// Ack acknowledges application of pushes up to seq, advancing the MDP's
// changelog truncation watermark for this subscriber.
func (c *MDP) Ack(subscriber string, seq uint64) error {
	return c.call(wire.KindAck, &wire.AckRequest{Subscriber: subscriber, Seq: seq}, nil)
}

// Browse lists resources of a class at the MDP.
func (c *MDP) Browse(class, contains string) ([]*rdf.Resource, error) {
	var resp wire.ResourcesResponse
	err := c.call(wire.KindBrowse, &wire.BrowseRequest{Class: class, Contains: contains}, &resp)
	if err != nil {
		return nil, err
	}
	return resp.Resources, nil
}

// GetDocument fetches a registered document.
func (c *MDP) GetDocument(uri string) (*rdf.Document, error) {
	var resp wire.Doc
	if err := c.call(wire.KindGetDocument, &wire.GetDocumentRequest{URI: uri}, &resp); err != nil {
		return nil, err
	}
	return rdf.ParseDocumentString(resp.URI, resp.XML)
}

// RegisterNamedRule registers a rule usable as a search extension.
func (c *MDP) RegisterNamedRule(name, rule string) error {
	return c.call(wire.KindNamedRule, &wire.NamedRuleRequest{Name: name, Rule: rule, Epoch: c.writeEpoch.Load()}, nil)
}

// Stats fetches the provider's engine counters.
func (c *MDP) Stats() (core.Stats, error) {
	var st core.Stats
	err := c.call(wire.KindStats, nil, &st)
	return st, err
}

// ReplicateDocuments forwards a registration batch (backbone peer link).
func (c *MDP) ReplicateDocuments(docs []wire.Doc) error {
	return c.call(wire.KindReplicate, &wire.RegisterDocumentsRequest{Docs: docs}, nil)
}

// ReplicateDelete forwards a document deletion (backbone peer link).
func (c *MDP) ReplicateDelete(uri string) error {
	return c.call(wire.KindReplicateDelete, &wire.DeleteDocumentRequest{URI: uri}, nil)
}

// RegisterDocumentsContext registers a batch under an explicit context
// (deadline or cancellation).
func (c *MDP) RegisterDocumentsContext(ctx context.Context, docs []*rdf.Document) error {
	req := wire.RegisterDocumentsRequest{Epoch: c.writeEpoch.Load()}
	for _, d := range docs {
		req.Docs = append(req.Docs, wire.Doc{URI: d.URI, XML: rdf.DocumentString(d)})
	}
	return c.conn.CallContext(ctx, wire.KindRegisterDocuments, &req, nil)
}

// SubscribeContext registers a subscription rule under an explicit context.
func (c *MDP) SubscribeContext(ctx context.Context, subscriber, rule string) (int64, *core.Changeset, error) {
	var resp wire.SubscribeResponse
	err := c.conn.CallContext(ctx, wire.KindSubscribe, &wire.SubscribeRequest{Subscriber: subscriber, Rule: rule, Epoch: c.writeEpoch.Load()}, &resp)
	if err != nil {
		return 0, nil, err
	}
	return resp.SubID, resp.Initial, nil
}

// EnablePushMetrics registers the end-to-end propagation-lag histogram on
// reg and observes it for every live push carrying a publish timestamp.
// Resume replays (PubUnixNano == 0) are excluded: their delay measures how
// long the subscriber was away, not pipeline health. The lag spans two
// machines' wall clocks; their skew is the measurement's error bar.
func (c *MDP) EnablePushMetrics(reg *metrics.Registry) {
	c.prop.Store(reg.Histogram("mdv_lmr_propagation_seconds",
		"publish-to-receipt delay of live pushed changesets (cross-clock; skew is the error bar)",
		metrics.TimeBuckets))
}

// Metrics fetches the provider's metrics registry rendered as Prometheus
// text (empty when the provider runs with metrics disabled).
func (c *MDP) Metrics() (string, error) {
	var resp wire.MetricsResponse
	if err := c.call(wire.KindMetrics, nil, &resp); err != nil {
		return "", err
	}
	return resp.Text, nil
}

// Topology fetches the node's view of the cluster: role, epoch, primary
// address, and (on a primary) per-follower stream positions.
func (c *MDP) Topology() (*wire.TopologyResponse, error) {
	var resp wire.TopologyResponse
	if err := c.call(wire.KindTopology, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Promote asks the node (a replica) to promote itself to primary of a new
// epoch. Idempotent against a node that is already primary.
func (c *MDP) Promote() (uint64, error) {
	var resp wire.PromoteResponse
	if err := c.call(wire.KindPromote, nil, &resp); err != nil {
		return 0, err
	}
	return resp.Epoch, nil
}

// AnnounceEpoch informs the node that the given term exists, led by
// primary. A stale primary demotes itself on receipt; the response carries
// the node's resulting term.
func (c *MDP) AnnounceEpoch(epoch uint64, primary string) (uint64, error) {
	var resp wire.EpochAnnounceResponse
	err := c.call(wire.KindEpochAnnounce, &wire.EpochAnnounceRequest{Epoch: epoch, Primary: primary}, &resp)
	if err != nil {
		return 0, err
	}
	return resp.Epoch, nil
}

// DeliveryStats fetches the provider's per-subscriber delivery health.
func (c *MDP) DeliveryStats() (*wire.DeliveryStatsResponse, error) {
	var resp wire.DeliveryStatsResponse
	if err := c.call(wire.KindDeliveryStats, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Ping round-trips a liveness probe to the provider.
func (c *MDP) Ping(ctx context.Context) (time.Duration, error) {
	return c.conn.Ping(ctx)
}

// HeartbeatRTT returns the last heartbeat round trip to the provider
// (zero until measured; requires Config.Heartbeat).
func (c *MDP) HeartbeatRTT() time.Duration { return c.conn.RTT() }

// LMR is a client connection to a local metadata repository.
type LMR struct {
	conn *wire.Client
	cfg  Config
}

// DialLMR connects to an LMR server with a zero Config.
func DialLMR(addr string) (*LMR, error) {
	return DialLMRConfig(addr, Config{})
}

// DialLMRConfig connects to an LMR server with explicit fault-tolerance
// settings.
func DialLMRConfig(addr string, cfg Config) (*LMR, error) {
	conn, err := wire.DialConfig(addr, cfg.wire())
	if err != nil {
		return nil, err
	}
	return &LMR{conn: conn, cfg: cfg}, nil
}

func (c *LMR) call(kind string, req, out interface{}) error {
	return call(c.conn, c.cfg, kind, req, out)
}

// Close closes the connection.
func (c *LMR) Close() error { return c.conn.Close() }

// QueryContext evaluates an MDV query at the LMR under an explicit context.
func (c *LMR) QueryContext(ctx context.Context, q string) ([]*rdf.Resource, error) {
	var resp wire.ResourcesResponse
	if err := c.conn.CallContext(ctx, wire.KindQuery, &wire.QueryRequest{Query: q}, &resp); err != nil {
		return nil, err
	}
	return resp.Resources, nil
}

// Query evaluates an MDV query at the LMR.
func (c *LMR) Query(q string) ([]*rdf.Resource, error) {
	var resp wire.ResourcesResponse
	if err := c.call(wire.KindQuery, &wire.QueryRequest{Query: q}, &resp); err != nil {
		return nil, err
	}
	return resp.Resources, nil
}

// AddSubscription asks the LMR to subscribe to its MDP.
func (c *LMR) AddSubscription(rule string) (int64, error) {
	var resp wire.SubscribeResponse
	if err := c.call(wire.KindAddSubscription, &wire.AddSubscriptionRequest{Rule: rule}, &resp); err != nil {
		return 0, err
	}
	return resp.SubID, nil
}

// RemoveSubscription drops one of the LMR's subscriptions.
func (c *LMR) RemoveSubscription(subID int64) error {
	return c.call(wire.KindRemoveSubscription, &wire.UnsubscribeRequest{SubID: subID}, nil)
}

// RegisterLocalDocument stores LMR-private metadata.
func (c *LMR) RegisterLocalDocument(doc *rdf.Document) error {
	return c.call(wire.KindRegisterLocal, &wire.Doc{URI: doc.URI, XML: rdf.DocumentString(doc)}, nil)
}

// Metrics fetches the LMR node's metrics registry rendered as Prometheus
// text (empty when the node runs with metrics disabled).
func (c *LMR) Metrics() (string, error) {
	var resp wire.MetricsResponse
	if err := c.call(wire.KindMetrics, nil, &resp); err != nil {
		return "", err
	}
	return resp.Text, nil
}

// Resources lists cached resources of a class (empty = all).
func (c *LMR) Resources(class string) ([]*rdf.Resource, error) {
	var resp wire.ResourcesResponse
	if err := c.call(wire.KindListResources, &wire.ListResourcesRequest{Class: class}, &resp); err != nil {
		return nil, err
	}
	return resp.Resources, nil
}
