// Package client provides typed network clients for the two MDV server
// tiers: MDP (metadata providers) and LMR (local metadata repositories).
// The MDP client implements lmr.ProviderAPI, so an LMR node works
// identically against an in-process provider and a remote one, and
// provider.Peer, so backbone replication can cross machines.
package client

import (
	"encoding/json"
	"sync"

	"mdv/internal/core"
	"mdv/internal/rdf"
	"mdv/internal/wire"
)

// ApplyFunc receives one pushed changeset (see provider.ApplyFunc).
type ApplyFunc = func(seq uint64, reset bool, cs *core.Changeset) error

// MDP is a client connection to a metadata provider.
type MDP struct {
	conn *wire.Client
	// applyFns receive pushed changesets per attached subscriber.
	mu       sync.Mutex
	applyFns map[string]ApplyFunc
}

// DialMDP connects to an MDP server.
func DialMDP(addr string) (*MDP, error) {
	conn, err := wire.Dial(addr)
	if err != nil {
		return nil, err
	}
	c := &MDP{conn: conn, applyFns: map[string]ApplyFunc{}}
	conn.OnPush = c.onPush
	return c, nil
}

// Close closes the connection.
func (c *MDP) Close() error { return c.conn.Close() }

// Done is closed when the connection terminates.
func (c *MDP) Done() <-chan struct{} { return c.conn.Done() }

func (c *MDP) onPush(kind string, body json.RawMessage) {
	if kind != wire.KindChangeset {
		return
	}
	var push wire.ChangesetPush
	if err := json.Unmarshal(body, &push); err != nil {
		return
	}
	if push.Changeset == nil {
		return
	}
	c.mu.Lock()
	fns := make([]ApplyFunc, 0, len(c.applyFns))
	for _, fn := range c.applyFns {
		fns = append(fns, fn)
	}
	c.mu.Unlock()
	// Pushes are not addressed per subscriber on the wire: each attached
	// connection receives only its own subscriber's changesets, so every
	// registered apply function on this connection gets it.
	for _, fn := range fns {
		fn(push.Seq, push.Reset, push.Changeset)
	}
}

// RegisterDocument registers one document at the MDP.
func (c *MDP) RegisterDocument(doc *rdf.Document) error {
	return c.RegisterDocuments([]*rdf.Document{doc})
}

// RegisterDocuments registers a batch of documents at the MDP.
func (c *MDP) RegisterDocuments(docs []*rdf.Document) error {
	req := wire.RegisterDocumentsRequest{}
	for _, d := range docs {
		req.Docs = append(req.Docs, wire.Doc{URI: d.URI, XML: rdf.DocumentString(d)})
	}
	return c.conn.Call(wire.KindRegisterDocuments, &req, nil)
}

// DeleteDocument removes a document at the MDP.
func (c *MDP) DeleteDocument(uri string) error {
	return c.conn.Call(wire.KindDeleteDocument, &wire.DeleteDocumentRequest{URI: uri}, nil)
}

// Subscribe registers a subscription rule.
func (c *MDP) Subscribe(subscriber, rule string) (int64, *core.Changeset, error) {
	var resp wire.SubscribeResponse
	err := c.conn.Call(wire.KindSubscribe, &wire.SubscribeRequest{Subscriber: subscriber, Rule: rule}, &resp)
	if err != nil {
		return 0, nil, err
	}
	return resp.SubID, resp.Initial, nil
}

// Unsubscribe removes a subscription.
func (c *MDP) Unsubscribe(subID int64) error {
	return c.conn.Call(wire.KindUnsubscribe, &wire.UnsubscribeRequest{SubID: subID}, nil)
}

// Attach registers this connection as the subscriber's push channel;
// published changesets are delivered to apply.
func (c *MDP) Attach(subscriber string, apply ApplyFunc) error {
	c.mu.Lock()
	c.applyFns[subscriber] = apply
	c.mu.Unlock()
	return c.conn.Call(wire.KindAttach, &wire.AttachRequest{Subscriber: subscriber}, nil)
}

// Resume asks a durable MDP to replay the changesets published for the
// subscriber past fromSeq. The replayed changesets arrive as ordered
// pushes on this connection (Attach first); the returned sequence is the
// one the subscriber is current to afterwards.
func (c *MDP) Resume(subscriber string, fromSeq uint64) (uint64, error) {
	var resp wire.ResumeResponse
	err := c.conn.Call(wire.KindResume, &wire.ResumeRequest{Subscriber: subscriber, FromSeq: fromSeq}, &resp)
	if err != nil {
		return 0, err
	}
	return resp.LatestSeq, nil
}

// Ack acknowledges application of pushes up to seq, advancing the MDP's
// changelog truncation watermark for this subscriber.
func (c *MDP) Ack(subscriber string, seq uint64) error {
	return c.conn.Call(wire.KindAck, &wire.AckRequest{Subscriber: subscriber, Seq: seq}, nil)
}

// Browse lists resources of a class at the MDP.
func (c *MDP) Browse(class, contains string) ([]*rdf.Resource, error) {
	var resp wire.ResourcesResponse
	err := c.conn.Call(wire.KindBrowse, &wire.BrowseRequest{Class: class, Contains: contains}, &resp)
	if err != nil {
		return nil, err
	}
	return resp.Resources, nil
}

// GetDocument fetches a registered document.
func (c *MDP) GetDocument(uri string) (*rdf.Document, error) {
	var resp wire.Doc
	if err := c.conn.Call(wire.KindGetDocument, &wire.GetDocumentRequest{URI: uri}, &resp); err != nil {
		return nil, err
	}
	return rdf.ParseDocumentString(resp.URI, resp.XML)
}

// RegisterNamedRule registers a rule usable as a search extension.
func (c *MDP) RegisterNamedRule(name, rule string) error {
	return c.conn.Call(wire.KindNamedRule, &wire.NamedRuleRequest{Name: name, Rule: rule}, nil)
}

// Stats fetches the provider's engine counters.
func (c *MDP) Stats() (core.Stats, error) {
	var st core.Stats
	err := c.conn.Call(wire.KindStats, nil, &st)
	return st, err
}

// ReplicateDocuments forwards a registration batch (backbone peer link).
func (c *MDP) ReplicateDocuments(docs []wire.Doc) error {
	return c.conn.Call(wire.KindReplicate, &wire.RegisterDocumentsRequest{Docs: docs}, nil)
}

// ReplicateDelete forwards a document deletion (backbone peer link).
func (c *MDP) ReplicateDelete(uri string) error {
	return c.conn.Call(wire.KindReplicateDelete, &wire.DeleteDocumentRequest{URI: uri}, nil)
}

// LMR is a client connection to a local metadata repository.
type LMR struct {
	conn *wire.Client
}

// DialLMR connects to an LMR server.
func DialLMR(addr string) (*LMR, error) {
	conn, err := wire.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &LMR{conn: conn}, nil
}

// Close closes the connection.
func (c *LMR) Close() error { return c.conn.Close() }

// Query evaluates an MDV query at the LMR.
func (c *LMR) Query(q string) ([]*rdf.Resource, error) {
	var resp wire.ResourcesResponse
	if err := c.conn.Call(wire.KindQuery, &wire.QueryRequest{Query: q}, &resp); err != nil {
		return nil, err
	}
	return resp.Resources, nil
}

// AddSubscription asks the LMR to subscribe to its MDP.
func (c *LMR) AddSubscription(rule string) (int64, error) {
	var resp wire.SubscribeResponse
	if err := c.conn.Call(wire.KindAddSubscription, &wire.AddSubscriptionRequest{Rule: rule}, &resp); err != nil {
		return 0, err
	}
	return resp.SubID, nil
}

// RemoveSubscription drops one of the LMR's subscriptions.
func (c *LMR) RemoveSubscription(subID int64) error {
	return c.conn.Call(wire.KindRemoveSubscription, &wire.UnsubscribeRequest{SubID: subID}, nil)
}

// RegisterLocalDocument stores LMR-private metadata.
func (c *LMR) RegisterLocalDocument(doc *rdf.Document) error {
	return c.conn.Call(wire.KindRegisterLocal, &wire.Doc{URI: doc.URI, XML: rdf.DocumentString(doc)}, nil)
}

// Resources lists cached resources of a class (empty = all).
func (c *LMR) Resources(class string) ([]*rdf.Resource, error) {
	var resp wire.ResourcesResponse
	if err := c.conn.Call(wire.KindListResources, &wire.ListResourcesRequest{Class: class}, &resp); err != nil {
		return nil, err
	}
	return resp.Resources, nil
}
