package workload

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"mdv/internal/core"
)

// TestBaselineAgreesWithFilter: the naive evaluate-every-rule matcher and
// the filter engine must report identical matches for every rule type —
// the baseline is only slower, never different.
func TestBaselineAgreesWithFilter(t *testing.T) {
	for _, typ := range []RuleType{OID, COMP, PATH, JOIN} {
		typ := typ
		t.Run(typ.String(), func(t *testing.T) {
			g := Generator{Type: typ, RuleBase: 30, MatchPercent: 0.2}

			engine, err := core.NewEngine(Schema())
			if err != nil {
				t.Fatal(err)
			}
			naive, err := NewBaseline(Schema())
			if err != nil {
				t.Fatal(err)
			}
			subToRule := map[int64]int64{} // engine sub id -> naive rule id
			for i := 0; i < g.RuleBase; i++ {
				id, _, err := engine.Subscribe("lmr", g.Rule(i))
				if err != nil {
					t.Fatal(err)
				}
				if err := naive.Subscribe(g.Rule(i)); err != nil {
					t.Fatal(err)
				}
				subToRule[id] = int64(i + 1)
			}
			if naive.RuleCount() != g.RuleBase {
				t.Fatalf("naive rule count = %d", naive.RuleCount())
			}

			docs := g.Batch(0, 15)
			ps, err := engine.RegisterDocuments(docs)
			if err != nil {
				t.Fatal(err)
			}
			naiveMatches, err := naive.Register(docs)
			if err != nil {
				t.Fatal(err)
			}

			// Flatten both to (rule ordinal, uri) pair sets.
			engineSet := map[string]bool{}
			for _, cs := range ps.Changesets {
				for _, up := range cs.Upserts {
					for _, subID := range up.SubIDs {
						engineSet[fmt.Sprintf("%d|%s", subToRule[subID], up.Resource.URIRef)] = true
					}
				}
			}
			naiveSet := map[string]bool{}
			for ruleID, uris := range naiveMatches {
				for _, uri := range uris {
					naiveSet[fmt.Sprintf("%d|%s", ruleID, uri)] = true
				}
			}
			if len(engineSet) == 0 {
				t.Fatal("no matches at all; workload broken")
			}
			if !sameSet(engineSet, naiveSet) {
				t.Errorf("filter and baseline disagree:\n filter only: %v\n naive only: %v",
					diffSet(engineSet, naiveSet), diffSet(naiveSet, engineSet))
			}
		})
	}
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func diffSet(a, b map[string]bool) []string {
	var out []string
	for k := range a {
		if !b[k] {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	if len(out) > 5 {
		out = append(out[:5], fmt.Sprintf("... %d more", len(out)-5))
	}
	return out
}

// TestBaselineRejectsBadRule: parse and schema errors surface.
func TestBaselineRejectsBadRule(t *testing.T) {
	naive, err := NewBaseline(Schema())
	if err != nil {
		t.Fatal(err)
	}
	if err := naive.Subscribe(`garbage`); err == nil {
		t.Error("garbage rule accepted")
	}
	if err := naive.Subscribe(`search Unknown u register u`); err == nil {
		t.Error("unknown class accepted")
	}
	if err := naive.Subscribe(strings.TrimSpace(`search CycleProvider c register c`)); err != nil {
		t.Errorf("valid rule rejected: %v", err)
	}
}
