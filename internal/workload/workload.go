// Package workload generates the benchmark rule bases and document streams
// of the paper's performance experiments (§4, Figure 10).
//
// Documents mirror Figure 1: each contains one CycleProvider and one
// ServerInformation resource. The four rule types:
//
//	OID:  search CycleProvider c register c where c = URI
//	COMP: search CycleProvider c register c where c.synthValue > INT
//	PATH: search CycleProvider c register c where c.serverInformation.memory = INT
//	JOIN: search CycleProvider c register c
//	      where c.serverHost contains 'uni-passau.de'
//	        and c.serverInformation.cpu = 600
//	        and c.serverInformation.memory = INT
//	TEXT: search CycleProvider c register c where c.serverHost contains 'kNNNNNNq'
//
// OID, PATH, JOIN, and TEXT workloads pair documents and rules one-to-one:
// the i-th document is matched by exactly the i-th rule (TEXT embeds a
// fixed-width needle k<i, 6 digits>q in the i-th document's serverHost, so
// no needle is a substring of another document's host). COMP rules are
// generated so that every document matches a fixed percentage of the rule
// base.
package workload

import (
	"fmt"

	"mdv/internal/rdf"
)

// RuleType selects one of the four benchmark rule types (paper Figure 10).
type RuleType int

const (
	// OID rules register a single resource by its URI reference.
	OID RuleType = iota
	// COMP rules compare a synthetic numeric property against a constant.
	COMP
	// PATH rules follow a reference and compare a property of the target.
	PATH
	// JOIN rules combine a contains predicate, a shared comparison, and a
	// discriminating comparison over the referenced resource.
	JOIN
	// TEXT rules are pure contains predicates with per-rule needles,
	// exercising the substring-index triggering path.
	TEXT
)

// String returns the paper's name for the rule type.
func (t RuleType) String() string {
	switch t {
	case OID:
		return "OID"
	case COMP:
		return "COMP"
	case PATH:
		return "PATH"
	case JOIN:
		return "JOIN"
	case TEXT:
		return "TEXT"
	default:
		return fmt.Sprintf("RuleType(%d)", int(t))
	}
}

// Schema returns the benchmark schema (the Figure 1 classes plus the
// synthetic synthValue property used by COMP rules).
func Schema() *rdf.Schema {
	s := rdf.NewSchema()
	s.MustAddProperty("CycleProvider", rdf.PropertyDef{Name: "serverHost", Type: rdf.TypeString})
	s.MustAddProperty("CycleProvider", rdf.PropertyDef{Name: "serverPort", Type: rdf.TypeInteger})
	s.MustAddProperty("CycleProvider", rdf.PropertyDef{Name: "synthValue", Type: rdf.TypeInteger})
	s.MustAddProperty("CycleProvider", rdf.PropertyDef{
		Name: "serverInformation", Type: rdf.TypeResource,
		RefClass: "ServerInformation", RefKind: rdf.StrongRef})
	s.MustAddProperty("ServerInformation", rdf.PropertyDef{Name: "memory", Type: rdf.TypeInteger})
	s.MustAddProperty("ServerInformation", rdf.PropertyDef{Name: "cpu", Type: rdf.TypeInteger})
	return s
}

// Generator produces a rule base and matching document stream.
type Generator struct {
	// Type is the benchmark rule type.
	Type RuleType
	// RuleBase is the number of rules in the base.
	RuleBase int
	// MatchPercent applies to COMP only: the fraction (0..1) of the rule
	// base each document matches.
	MatchPercent float64
}

// Rule returns the i-th rule of the base (0-based).
func (g Generator) Rule(i int) string {
	switch g.Type {
	case OID:
		return fmt.Sprintf(
			`search CycleProvider c register c where c = 'doc%d.rdf#host'`, i)
	case COMP:
		// Rule i matches documents with synthValue > i.
		return fmt.Sprintf(
			`search CycleProvider c register c where c.synthValue > %d`, i)
	case PATH:
		return fmt.Sprintf(
			`search CycleProvider c register c where c.serverInformation.memory = %d`, i)
	case JOIN:
		return fmt.Sprintf(
			`search CycleProvider c register c where c.serverHost contains 'uni-passau.de' `+
				`and c.serverInformation.cpu = 600 and c.serverInformation.memory = %d`, i)
	case TEXT:
		return fmt.Sprintf(
			`search CycleProvider c register c where c.serverHost contains '%s'`, textNeedle(i))
	default:
		panic("workload: unknown rule type")
	}
}

// Rules returns the whole rule base.
func (g Generator) Rules() []string {
	out := make([]string, g.RuleBase)
	for i := range out {
		out[i] = g.Rule(i)
	}
	return out
}

// Document returns the i-th document (0-based). Documents are shaped like
// paper Figure 1: one CycleProvider referencing one ServerInformation via a
// strong reference.
//
// The pairing invariants: for OID, document i has URI reference
// doc<i>.rdf#host (matched by rule i); for PATH and JOIN, its memory value
// is i (matched by rule i); for COMP, its synthValue makes it match
// MatchPercent of the rule base.
func (g Generator) Document(i int) *rdf.Document {
	doc := rdf.NewDocument(fmt.Sprintf("doc%d.rdf", i))
	host := doc.NewResource("host", "CycleProvider")
	host.Add("serverHost", rdf.Lit(g.serverHost(i)))
	host.Add("serverPort", rdf.Lit("5874"))
	host.Add("synthValue", rdf.Lit(fmt.Sprint(g.synthValue())))
	host.Add("serverInformation", rdf.Ref(doc.QualifyID("info")))
	info := doc.NewResource("info", "ServerInformation")
	info.Add("memory", rdf.Lit(fmt.Sprint(i)))
	info.Add("cpu", rdf.Lit("600"))
	return doc
}

// serverHost pairs TEXT documents with their rules: document i's host
// embeds exactly the needle of rule i. The fixed-width k...q framing keeps
// needles from containing each other.
func (g Generator) serverHost(i int) string {
	if g.Type == TEXT {
		return fmt.Sprintf("host.%s.uni-passau.de", textNeedle(i))
	}
	return fmt.Sprintf("host%d.uni-passau.de", i)
}

// textNeedle is the contains constant of TEXT rule i.
func textNeedle(i int) string { return fmt.Sprintf("k%06dq", i) }

// synthValue makes a document match MatchPercent of a COMP rule base:
// rule i matches iff synthValue > i, so a value of pct*N matches rules
// 0..pct*N-1.
func (g Generator) synthValue() int {
	if g.Type != COMP {
		return 0
	}
	return int(float64(g.RuleBase) * g.MatchPercent)
}

// Batch returns documents offset..offset+n-1.
func (g Generator) Batch(offset, n int) []*rdf.Document {
	out := make([]*rdf.Document, n)
	for i := 0; i < n; i++ {
		out[i] = g.Document(offset + i)
	}
	return out
}
