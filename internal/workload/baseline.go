package workload

import (
	"fmt"

	"mdv/internal/query"
	"mdv/internal/rdb"
	"mdv/internal/rdb/sql"
	"mdv/internal/rdf"
	"mdv/internal/rules"
)

// Baseline is the strawman the paper's filter algorithm is designed to
// beat (§3: "To avoid the evaluation of the possibly huge set of *all*
// subscription rules"): it keeps the metadata in the same relational
// layout, but on every registration it re-evaluates every subscription
// rule as a full SQL query and reports which rules match resources of the
// new batch. Its cost is Θ(|rule base|) per batch regardless of how few
// rules are affected.
type Baseline struct {
	schema *rdf.Schema
	db     *sql.DB
	rules  []baselineRule
}

type baselineRule struct {
	id   int64
	text string
	sql  string
	args []rdb.Value
}

// NewBaseline creates an empty baseline matcher.
func NewBaseline(schema *rdf.Schema) (*Baseline, error) {
	db := sql.Open()
	ddl := []string{
		`CREATE TABLE Cache (uri_reference TEXT PRIMARY KEY, class TEXT NOT NULL, local BOOL NOT NULL)`,
		`CREATE INDEX idx_cache_class ON Cache (class)`,
		`CREATE TABLE CacheStatements (
			uri_reference TEXT NOT NULL, class TEXT NOT NULL,
			property TEXT NOT NULL, value TEXT NOT NULL, is_ref BOOL NOT NULL)`,
		`CREATE INDEX idx_cstmt_uri ON CacheStatements (uri_reference, property)`,
		`CREATE INDEX idx_cstmt_cpv ON CacheStatements (class, property, value)`,
	}
	for _, stmt := range ddl {
		if _, err := db.Exec(stmt); err != nil {
			return nil, err
		}
	}
	return &Baseline{schema: schema, db: db}, nil
}

// Subscribe registers one rule with the naive matcher.
func (b *Baseline) Subscribe(ruleText string) error {
	r, err := rules.Parse(ruleText)
	if err != nil {
		return err
	}
	normalized, err := rules.Normalize(r, b.schema, nil)
	if err != nil {
		return err
	}
	for _, nr := range normalized {
		text, args, err := query.Translate(nr, b.schema)
		if err != nil {
			return err
		}
		b.rules = append(b.rules, baselineRule{
			id: int64(len(b.rules) + 1), text: ruleText, sql: text, args: args,
		})
	}
	return nil
}

// RuleCount returns the number of registered (normalized) rules.
func (b *Baseline) RuleCount() int { return len(b.rules) }

// Register stores a batch and re-evaluates every rule, returning the
// matches restricted to the batch's resources.
func (b *Baseline) Register(docs []*rdf.Document) (map[int64][]string, error) {
	batch := map[string]bool{}
	for _, doc := range docs {
		for _, a := range doc.Statements() {
			if a.Property == rdf.SubjectProperty {
				if _, err := b.db.Exec(
					`INSERT INTO Cache (uri_reference, class, local) VALUES (?, ?, FALSE)`,
					rdb.NewText(a.URIRef), rdb.NewText(a.Class)); err != nil {
					return nil, err
				}
				batch[a.URIRef] = true
			}
			if _, err := b.db.Exec(
				`INSERT INTO CacheStatements (uri_reference, class, property, value, is_ref)
				 VALUES (?, ?, ?, ?, ?)`,
				rdb.NewText(a.URIRef), rdb.NewText(a.Class), rdb.NewText(a.Property),
				rdb.NewText(a.Value), rdb.NewBool(a.IsRef)); err != nil {
				return nil, err
			}
		}
	}
	out := map[int64][]string{}
	for _, r := range b.rules {
		err := b.db.QueryFunc(r.sql, r.args, func(row []rdb.Value) error {
			if uri := row[0].Str; batch[uri] {
				out[r.id] = append(out[r.id], uri)
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("baseline rule %q: %w", r.text, err)
		}
	}
	return out, nil
}
