package workload

import (
	"fmt"
	"testing"

	"mdv/internal/core"
)

// subscribeBase registers the generator's rule base at a fresh engine.
func subscribeBase(t *testing.T, g Generator) *core.Engine {
	t.Helper()
	e, err := core.NewEngine(Schema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.RuleBase; i++ {
		if _, _, err := e.Subscribe("lmr", g.Rule(i)); err != nil {
			t.Fatalf("rule %d (%s): %v", i, g.Rule(i), err)
		}
	}
	return e
}

func matchedBy(t *testing.T, ps *core.PublishSet) map[string]int {
	t.Helper()
	out := map[string]int{}
	for _, cs := range ps.Changesets {
		for _, up := range cs.Upserts {
			out[up.Resource.URIRef] = len(up.SubIDs)
		}
	}
	return out
}

// TestOIDPairing: document i is matched by exactly rule i.
func TestOIDPairing(t *testing.T) {
	g := Generator{Type: OID, RuleBase: 20}
	e := subscribeBase(t, g)
	ps, err := e.RegisterDocuments(g.Batch(0, 10))
	if err != nil {
		t.Fatal(err)
	}
	matched := matchedBy(t, ps)
	if len(matched) != 10 {
		t.Fatalf("matched %d documents, want 10", len(matched))
	}
	for uri, n := range matched {
		if n != 1 {
			t.Errorf("%s matched by %d subscriptions, want 1", uri, n)
		}
	}
	// OID decomposition requires no join rules.
	if st := e.Stats(); st.FilterIterations != 0 {
		t.Errorf("OID ran %d join iterations", st.FilterIterations)
	}
}

// TestPATHPairing: one-to-one matching through the reference path.
func TestPATHPairing(t *testing.T) {
	g := Generator{Type: PATH, RuleBase: 20}
	e := subscribeBase(t, g)
	ps, err := e.RegisterDocuments(g.Batch(0, 10))
	if err != nil {
		t.Fatal(err)
	}
	matched := matchedBy(t, ps)
	if len(matched) != 10 {
		t.Fatalf("matched %d documents, want 10", len(matched))
	}
	for uri, n := range matched {
		if n != 1 {
			t.Errorf("%s matched by %d subscriptions, want 1", uri, n)
		}
	}
	// PATH requires decomposition and join-rule evaluation.
	if st := e.Stats(); st.FilterIterations == 0 {
		t.Error("PATH ran no join iterations")
	}
	// PATH shares one ANY triggering rule and one join group across the
	// whole base (the dependency-graph merge of §3.3.2).
	if got := e.RuleGroupCount(); got != 1 {
		t.Errorf("PATH rule base uses %d groups, want 1", got)
	}
}

// TestJOINPairing: the three-predicate rule still matches one-to-one; its
// shared predicates (contains, cpu = 600) are deduplicated across the base.
func TestJOINPairing(t *testing.T) {
	g := Generator{Type: JOIN, RuleBase: 20}
	e := subscribeBase(t, g)
	// Rule base: 1 shared CON trigger + 1 shared cpu EQN trigger + 20
	// memory EQN triggers + per-rule join rules.
	ps, err := e.RegisterDocuments(g.Batch(0, 10))
	if err != nil {
		t.Fatal(err)
	}
	matched := matchedBy(t, ps)
	if len(matched) != 10 {
		t.Fatalf("matched %d documents, want 10", len(matched))
	}
	for uri, n := range matched {
		if n != 1 {
			t.Errorf("%s matched by %d subscriptions, want 1", uri, n)
		}
	}
	st := e.Stats()
	if st.AtomicRulesShared == 0 {
		t.Error("JOIN base shares no atomic rules")
	}
}

// TestCOMPPercentage: every document matches the configured percentage of
// the rule base.
func TestCOMPPercentage(t *testing.T) {
	for _, pct := range []float64{0.01, 0.10, 0.20} {
		g := Generator{Type: COMP, RuleBase: 100, MatchPercent: pct}
		e := subscribeBase(t, g)
		ps, err := e.RegisterDocuments(g.Batch(0, 5))
		if err != nil {
			t.Fatal(err)
		}
		want := int(100 * pct)
		matched := matchedBy(t, ps)
		if len(matched) != 5 {
			t.Fatalf("pct %.2f: matched %d documents", pct, len(matched))
		}
		for uri, n := range matched {
			if n != want {
				t.Errorf("pct %.2f: %s matched by %d rules, want %d", pct, uri, n, want)
			}
		}
	}
}

// TestBatchOffsets: batches at different offsets produce distinct URIs.
func TestBatchOffsets(t *testing.T) {
	g := Generator{Type: PATH, RuleBase: 10}
	b1 := g.Batch(0, 5)
	b2 := g.Batch(5, 5)
	seen := map[string]bool{}
	for _, docs := range [][]int{{0}, {1}} {
		_ = docs
	}
	for _, d := range append(b1, b2...) {
		if seen[d.URI] {
			t.Fatalf("duplicate URI %s", d.URI)
		}
		seen[d.URI] = true
	}
}

// TestRuleTexts: generated rules parse and have the Figure 10 shapes.
func TestRuleTexts(t *testing.T) {
	cases := []struct {
		g    Generator
		want string
	}{
		{Generator{Type: OID, RuleBase: 5}, `search CycleProvider c register c where c = 'doc3.rdf#host'`},
		{Generator{Type: COMP, RuleBase: 5}, `search CycleProvider c register c where c.synthValue > 3`},
		{Generator{Type: PATH, RuleBase: 5}, `search CycleProvider c register c where c.serverInformation.memory = 3`},
	}
	for _, c := range cases {
		if got := c.g.Rule(3); got != c.want {
			t.Errorf("%v: rule = %q, want %q", c.g.Type, got, c.want)
		}
	}
	if len((Generator{Type: JOIN, RuleBase: 2}).Rules()) != 2 {
		t.Error("Rules() length")
	}
	for _, typ := range []RuleType{OID, COMP, PATH, JOIN} {
		if typ.String() == "" {
			t.Error("empty type name")
		}
	}
}

// TestDocumentsValidate: generated documents conform to the schema.
func TestDocumentsValidate(t *testing.T) {
	s := Schema()
	for _, typ := range []RuleType{OID, COMP, PATH, JOIN} {
		g := Generator{Type: typ, RuleBase: 10, MatchPercent: 0.1}
		for i := 0; i < 3; i++ {
			if err := s.ValidateDocument(g.Document(i)); err != nil {
				t.Errorf("%v doc %d: %v", typ, i, err)
			}
		}
	}
}

// TestScaleSmoke registers a moderately sized rule base and batch to guard
// against superlinear blowups in registration itself.
func TestScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	g := Generator{Type: PATH, RuleBase: 500}
	e := subscribeBase(t, g)
	ps, err := e.RegisterDocuments(g.Batch(0, 100))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, cs := range ps.Changesets {
		total += len(cs.Upserts)
	}
	if total != 100 {
		t.Errorf("matched %d, want 100", total)
	}
	if e.AtomicRuleCount() != 500+500+1 { // memory triggers + joins + shared ANY
		t.Errorf("atomic rules = %d", e.AtomicRuleCount())
	}
}

func ExampleGenerator() {
	g := Generator{Type: PATH, RuleBase: 3}
	fmt.Println(g.Rule(0))
	fmt.Println(g.Document(0).URI)
	// Output:
	// search CycleProvider c register c where c.serverInformation.memory = 0
	// doc0.rdf
}
