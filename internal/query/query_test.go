package query

import (
	"strings"
	"testing"

	"mdv/internal/rdb"
	"mdv/internal/rdb/sql"
	"mdv/internal/rdf"
	"mdv/internal/rules"
)

func translateSchema() *rdf.Schema {
	s := rdf.NewSchema()
	s.MustAddProperty("CycleProvider", rdf.PropertyDef{Name: "serverHost", Type: rdf.TypeString})
	s.MustAddProperty("CycleProvider", rdf.PropertyDef{Name: "serverPort", Type: rdf.TypeInteger})
	s.MustAddProperty("CycleProvider", rdf.PropertyDef{
		Name: "serverInformation", Type: rdf.TypeResource, RefClass: "ServerInformation", RefKind: rdf.StrongRef})
	s.MustAddProperty("ServerInformation", rdf.PropertyDef{Name: "memory", Type: rdf.TypeInteger})
	return s
}

func normalize(t *testing.T, src string) *rules.NormalRule {
	t.Helper()
	r, err := rules.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	nrs, err := rules.Normalize(r, translateSchema(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(nrs) != 1 {
		t.Fatalf("expected one normalized rule, got %d", len(nrs))
	}
	return nrs[0]
}

// TestTranslateShapes checks the SQL the translator emits for the main
// operand combinations (§2.2: "search requests are translated into SQL
// join queries").
func TestTranslateShapes(t *testing.T) {
	cases := []struct {
		rule       string
		wantParts  []string
		paramCount int
	}{
		{
			`search CycleProvider c register c`,
			[]string{"SELECT DISTINCT r0.uri_reference", "FROM Cache r0", "r0.class = ?"},
			1,
		},
		{
			`search CycleProvider c register c where c.serverPort = 80`,
			[]string{"CacheStatements p1", "p1.property = ?", "CAST(p1.value AS FLOAT) = CAST(? AS FLOAT)"},
			3,
		},
		{
			`search CycleProvider c register c where c.serverHost contains 'de'`,
			[]string{"p1.value CONTAINS ?"},
			3,
		},
		{
			`search CycleProvider c register c where c = 'doc.rdf#host'`,
			[]string{"r0.uri_reference = ?"},
			2,
		},
		{
			`search CycleProvider c, ServerInformation s register c
			 where c.serverInformation = s and s.memory > 64`,
			[]string{"Cache r0", "Cache r1", "p1.value = r1.uri_reference",
				"CAST(p2.value AS FLOAT) > CAST(? AS FLOAT)"},
			5,
		},
	}
	for _, c := range cases {
		nr := normalize(t, c.rule)
		text, params, err := Translate(nr, translateSchema())
		if err != nil {
			t.Fatalf("%s: %v", c.rule, err)
		}
		for _, part := range c.wantParts {
			if !strings.Contains(text, part) {
				t.Errorf("rule %q:\n sql %q\n missing %q", c.rule, text, part)
			}
		}
		if len(params) != c.paramCount {
			t.Errorf("rule %q: %d params, want %d (%v)", c.rule, len(params), c.paramCount, params)
		}
		// Placeholder count matches the parameter list.
		if got := strings.Count(text, "?"); got != len(params) {
			t.Errorf("rule %q: %d placeholders vs %d params", c.rule, got, len(params))
		}
	}
}

// TestTranslateConstLeftParamOrder regression-tests the parameter ordering
// when the constant is the left operand.
func TestTranslateConstLeftParamOrder(t *testing.T) {
	db := sql.Open()
	for _, stmt := range []string{
		`CREATE TABLE Cache (uri_reference TEXT PRIMARY KEY, class TEXT NOT NULL, local BOOL NOT NULL)`,
		`CREATE TABLE CacheStatements (uri_reference TEXT NOT NULL, class TEXT NOT NULL,
			property TEXT NOT NULL, value TEXT NOT NULL, is_ref BOOL NOT NULL)`,
	} {
		db.MustExec(stmt)
	}
	db.MustExec(`INSERT INTO Cache (uri_reference, class, local) VALUES ('d#1', 'CycleProvider', FALSE)`)
	db.MustExec(`INSERT INTO CacheStatements (uri_reference, class, property, value, is_ref)
		VALUES ('d#1', 'CycleProvider', 'serverPort', '99', FALSE)`)

	ev := NewEvaluator(db, translateSchema())
	uris, err := ev.EvaluateURIs(`search CycleProvider c register c where 50 < c.serverPort`)
	if err != nil {
		t.Fatal(err)
	}
	if len(uris) != 1 {
		t.Errorf("const-left: %v", uris)
	}
	uris, err = ev.EvaluateURIs(`search CycleProvider c register c where 150 < c.serverPort`)
	if err != nil {
		t.Fatal(err)
	}
	if len(uris) != 0 {
		t.Errorf("const-left negative: %v", uris)
	}
}

// TestEvaluatorErrors: malformed queries surface as errors.
func TestEvaluatorErrors(t *testing.T) {
	db := sql.Open()
	db.MustExec(`CREATE TABLE Cache (uri_reference TEXT PRIMARY KEY, class TEXT NOT NULL, local BOOL NOT NULL)`)
	db.MustExec(`CREATE TABLE CacheStatements (uri_reference TEXT NOT NULL, class TEXT NOT NULL,
		property TEXT NOT NULL, value TEXT NOT NULL, is_ref BOOL NOT NULL)`)
	ev := NewEvaluator(db, translateSchema())
	for _, q := range []string{
		`not a query`,
		`search Unknown u register u`,
		`search CycleProvider c register c where c.nope = 1`,
	} {
		if _, err := ev.Evaluate(q); err == nil {
			t.Errorf("accepted %q", q)
		}
	}
}

// TestEvaluatorResourceReconstruction: results carry full property sets.
func TestEvaluatorResourceReconstruction(t *testing.T) {
	db := sql.Open()
	db.MustExec(`CREATE TABLE Cache (uri_reference TEXT PRIMARY KEY, class TEXT NOT NULL, local BOOL NOT NULL)`)
	db.MustExec(`CREATE TABLE CacheStatements (uri_reference TEXT NOT NULL, class TEXT NOT NULL,
		property TEXT NOT NULL, value TEXT NOT NULL, is_ref BOOL NOT NULL)`)
	db.MustExec(`INSERT INTO Cache (uri_reference, class, local) VALUES ('d#1', 'CycleProvider', FALSE)`)
	for _, row := range [][3]interface{}{
		{"serverHost", "h.example.org", false},
		{"serverPort", "80", false},
		{"serverInformation", "d#si", true},
	} {
		db.MustExec(`INSERT INTO CacheStatements (uri_reference, class, property, value, is_ref)
			VALUES ('d#1', 'CycleProvider', ?, ?, ?)`,
			rdb.NewText(row[0].(string)), rdb.NewText(row[1].(string)), rdb.NewBool(row[2].(bool)))
	}
	ev := NewEvaluator(db, translateSchema())
	rs, err := ev.Evaluate(`search CycleProvider c register c`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 {
		t.Fatalf("results = %d", len(rs))
	}
	r := rs[0]
	if r.Class != "CycleProvider" || len(r.Props) != 3 {
		t.Errorf("reconstructed resource: %+v", r)
	}
	if v, _ := r.Get("serverInformation"); v.Kind != rdf.ResourceRef || v.Ref != "d#si" {
		t.Errorf("reference property lost: %+v", v)
	}
}
