// Package query implements the MDV query language over an LMR's local
// cache. The paper (§2.2) states the query language "is quite similar to
// the rule language" and that "search requests are translated into SQL join
// queries"; this package does exactly that: a query is parsed and
// normalized with the rule machinery, then translated into one SQL join
// query over the cache tables and executed locally.
package query

import (
	"fmt"
	"sort"
	"strings"

	"mdv/internal/rdb"
	"mdv/internal/rdb/sql"
	"mdv/internal/rdf"
	"mdv/internal/rules"
)

// Result is one query answer: a resource from the local cache.
type Result = rdf.Resource

// Evaluator evaluates MDV queries against a cache database (the tables
// created by internal/repository).
type Evaluator struct {
	db     *sql.DB
	schema *rdf.Schema
}

// NewEvaluator creates an evaluator over a repository's database.
func NewEvaluator(db *sql.DB, schema *rdf.Schema) *Evaluator {
	return &Evaluator{db: db, schema: schema}
}

// Evaluate runs a query in the MDV query language and returns the matching
// resources, sorted by URI reference. OR queries evaluate each disjunct and
// union the results. The whole evaluation — disjunct queries plus resource
// reconstruction — runs inside one read transaction, so concurrent queries
// execute in parallel and each sees a single writer-free snapshot.
func (ev *Evaluator) Evaluate(src string) ([]*rdf.Resource, error) {
	var out []*rdf.Resource
	err := ev.db.View(func(txn *sql.ReadTxn) error {
		uris, err := ev.evaluateURIsTxn(txn, src)
		if err != nil {
			return err
		}
		out = make([]*rdf.Resource, 0, len(uris))
		for _, uri := range uris {
			res, ok, err := ev.getResource(txn, uri)
			if err != nil {
				return err
			}
			if ok {
				out = append(out, res)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// EvaluateURIs runs a query and returns the matching URI references.
func (ev *Evaluator) EvaluateURIs(src string) ([]string, error) {
	var out []string
	err := ev.db.View(func(txn *sql.ReadTxn) error {
		var err error
		out, err = ev.evaluateURIsTxn(txn, src)
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (ev *Evaluator) evaluateURIsTxn(txn *sql.ReadTxn, src string) ([]string, error) {
	q, err := rules.Parse(src)
	if err != nil {
		return nil, err
	}
	normalized, err := rules.Normalize(q, ev.schema, nil)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []string
	for _, nr := range normalized {
		text, params, err := Translate(nr, ev.schema)
		if err != nil {
			return nil, err
		}
		err = txn.QueryFunc(text, params, func(row []rdb.Value) error {
			uri := row[0].Str
			if !seen[uri] {
				seen[uri] = true
				out = append(out, uri)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

func (ev *Evaluator) getResource(txn *sql.ReadTxn, uriRef string) (*rdf.Resource, bool, error) {
	rows, err := txn.Query(
		`SELECT property, value, is_ref, class FROM CacheStatements WHERE uri_reference = ?`,
		rdb.NewText(uriRef))
	if err != nil {
		return nil, false, err
	}
	if rows.Empty() {
		return nil, false, nil
	}
	res := &rdf.Resource{URIRef: uriRef}
	for _, row := range rows.Data {
		res.Class = row[3].Str
		prop, value, isRef := row[0].Str, row[1].Str, row[2].Bool
		if prop == rdf.SubjectProperty {
			continue
		}
		if isRef {
			res.Add(prop, rdf.Ref(value))
		} else {
			res.Add(prop, rdf.Lit(value))
		}
	}
	return res, true, nil
}

// Translate turns one normalized query into a SQL join query over the cache
// tables (Cache anchors the class of each variable; every property access
// joins one CacheStatements alias). It returns the SQL text and parameters;
// the single result column is the registered variable's URI reference.
func Translate(nr *rules.NormalRule, schema *rdf.Schema) (string, []rdb.Value, error) {
	var from []string
	var where []string
	var params []rdb.Value

	// One Cache anchor per variable.
	anchor := map[string]string{}
	for i, b := range nr.Search {
		alias := fmt.Sprintf("r%d", i)
		anchor[b.Var] = alias
		from = append(from, "Cache "+alias)
		where = append(where, alias+".class = ?")
		params = append(params, rdb.NewText(b.Extension))
	}

	// One CacheStatements alias per property access.
	nProps := 0
	propAlias := func(v, prop string) string {
		nProps++
		alias := fmt.Sprintf("p%d", nProps)
		from = append(from, "CacheStatements "+alias)
		where = append(where,
			alias+".uri_reference = "+anchor[v]+".uri_reference",
			alias+".property = ?")
		params = append(params, rdb.NewText(prop))
		return alias + ".value"
	}

	// operandSQL renders one operand, emitting joins as needed. Constant
	// parameters are deferred: their ? appears in the comparison condition,
	// which is appended after any property-join conditions, so the caller
	// appends them to params only once the condition itself is appended.
	var deferred []rdb.Value
	operandSQL := func(o rules.Operand) (string, bool, error) {
		switch {
		case o.Kind == rules.OperandConst:
			deferred = append(deferred, rdb.NewText(o.Const.Lexical()))
			return "?", o.Const.Kind != rules.ConstString, nil
		case len(o.Path) == 0:
			return anchor[o.Var] + ".uri_reference", false, nil
		default:
			step := o.Path[0]
			numeric := false
			if b, ok := nr.Binding(o.Var); ok {
				if c, ok := schema.Class(b.Extension); ok {
					if def, ok := c.Property(step.Property); ok {
						numeric = def.Type == rdf.TypeInteger || def.Type == rdf.TypeFloat
					}
				}
			}
			return propAlias(o.Var, step.Property), numeric, nil
		}
	}

	for _, p := range nr.Where {
		deferred = deferred[:0]
		lhs, lNum, err := operandSQL(p.Left)
		if err != nil {
			return "", nil, err
		}
		rhs, rNum, err := operandSQL(p.Right)
		if err != nil {
			return "", nil, err
		}
		var cond string
		switch p.Op {
		case rules.OpContains:
			cond = lhs + " CONTAINS " + rhs
		case rules.OpLt, rules.OpLe, rules.OpGt, rules.OpGe:
			cond = "CAST(" + lhs + " AS FLOAT) " + p.Op.String() + " CAST(" + rhs + " AS FLOAT)"
		default: // = and !=
			if lNum && rNum {
				cond = "CAST(" + lhs + " AS FLOAT) " + p.Op.String() + " CAST(" + rhs + " AS FLOAT)"
			} else {
				cond = lhs + " " + p.Op.String() + " " + rhs
			}
		}
		where = append(where, cond)
		params = append(params, deferred...)
	}

	regAnchor, ok := anchor[nr.Register]
	if !ok {
		return "", nil, fmt.Errorf("query: register variable %q unbound", nr.Register)
	}
	text := "SELECT DISTINCT " + regAnchor + ".uri_reference FROM " + strings.Join(from, ", ")
	if len(where) > 0 {
		text += " WHERE " + strings.Join(where, " AND ")
	}
	return text, params, nil
}
