// Package repository implements the Local Metadata Repository (LMR) tier of
// MDV (paper §2.2): a cache of global metadata close to the applications,
// fed by the publish & subscribe mechanism of an MDP, plus local (private)
// metadata that is never forwarded to the backbone.
//
// The cache is itself a relational database (the same engine the MDP runs
// on): resources live in Cache/CacheStatements tables so that the MDV query
// language can be evaluated locally as SQL joins — the whole point of the
// middle tier is that "queries can be evaluated locally, i.e., no expensive
// communication across the Internet is necessary".
//
// Cache consistency bookkeeping follows §2.4/§3.5: every cached global
// resource carries credits (the subscriptions it matches) and
// strong-reference edges; a garbage collector removes resources with no
// credits that are no longer reachable from credited or local resources
// over strong references.
package repository

import (
	"fmt"
	"sync"

	"mdv/internal/core"
	"mdv/internal/rdb"
	"mdv/internal/rdb/sql"
	"mdv/internal/rdf"
)

// Repository is one LMR's cache and bookkeeping state.
//
// Concurrency: mu is an RWMutex. Changeset application, local-document
// registration, unsubscription, and GC take it exclusively; reads (Len,
// Has, Get, CreditsOf, Resources, Stats, LastSeq, View) take it shared, so
// any number of client queries run concurrently and block only while a
// changeset is being applied.
type Repository struct {
	mu     sync.RWMutex
	name   string
	schema *rdf.Schema
	db     *sql.DB

	// deadSubs tombstones unsubscribed subscription ids: a changeset
	// published before the unsubscribe may still arrive afterwards, and
	// its credits must not resurrect cache entries.
	deadSubs map[int64]bool

	// lastSeq is the highest changelog sequence applied (the resume
	// cursor of this subscriber's changeset stream). Pushes at or below
	// it are duplicates from an at-least-once replay and are skipped.
	lastSeq uint64

	stats Stats

	prep struct {
		insCache     *sql.Stmt
		delCache     *sql.Stmt
		getCache     *sql.Stmt
		insStmt      *sql.Stmt
		delStmts     *sql.Stmt
		stmtsOf      *sql.Stmt
		insCredit    *sql.Stmt
		delCredit    *sql.Stmt
		delCredits   *sql.Stmt
		creditsOf    *sql.Stmt
		insEdge      *sql.Stmt
		delEdgesFrom *sql.Stmt
	}
}

// Stats counts repository activity.
type Stats struct {
	UpsertsApplied    int
	RemovalsApplied   int
	ForcedDeletes     int
	ClosureUpserts    int
	ResourcesDropped  int // by the garbage collector
	GCRuns            int
	DuplicatesSkipped int // sequenced pushes at or below the cursor
	Resets            int // full-state reset changesets applied
}

var ddl = []string{
	// Cached resources. local marks LMR-private metadata (§2.2).
	`CREATE TABLE Cache (
		uri_reference TEXT PRIMARY KEY,
		class TEXT NOT NULL,
		local BOOL NOT NULL
	)`,
	`CREATE INDEX idx_cache_class ON Cache (class)`,

	// Property atoms of cached resources; the query language evaluates as
	// SQL joins over this table.
	`CREATE TABLE CacheStatements (
		uri_reference TEXT NOT NULL,
		class TEXT NOT NULL,
		property TEXT NOT NULL,
		value TEXT NOT NULL,
		is_ref BOOL NOT NULL
	)`,
	`CREATE INDEX idx_cstmt_uri ON CacheStatements (uri_reference, property)`,
	`CREATE INDEX idx_cstmt_cpv ON CacheStatements (class, property, value)`,

	// Credits: which subscriptions a cached resource matches (the LMR-side
	// view of §3.5's per-rule matching).
	`CREATE TABLE CacheCredits (uri_reference TEXT NOT NULL, sub_id INT NOT NULL)`,
	`CREATE UNIQUE INDEX idx_credit_pk ON CacheCredits (uri_reference, sub_id)`,
	`CREATE INDEX idx_credit_uri ON CacheCredits (uri_reference)`,

	// Strong-reference edges among cached resources, for the garbage
	// collector (§2.4).
	`CREATE TABLE CacheRefs (holder TEXT NOT NULL, target TEXT NOT NULL, property TEXT NOT NULL)`,
	`CREATE INDEX idx_refs_holder ON CacheRefs (holder)`,
	`CREATE INDEX idx_refs_target ON CacheRefs (target)`,
}

// New creates an empty repository.
func New(name string, schema *rdf.Schema) (*Repository, error) {
	r := &Repository{name: name, schema: schema, db: sql.Open(), deadSubs: map[int64]bool{}}
	for _, stmt := range ddl {
		if _, err := r.db.Exec(stmt); err != nil {
			return nil, fmt.Errorf("repository: bootstrap: %w", err)
		}
	}
	p := &r.prep
	p.insCache = r.db.MustPrepare(`INSERT INTO Cache (uri_reference, class, local) VALUES (?, ?, ?)`)
	p.delCache = r.db.MustPrepare(`DELETE FROM Cache WHERE uri_reference = ?`)
	p.getCache = r.db.MustPrepare(`SELECT class, local FROM Cache WHERE uri_reference = ?`)
	p.insStmt = r.db.MustPrepare(
		`INSERT INTO CacheStatements (uri_reference, class, property, value, is_ref) VALUES (?, ?, ?, ?, ?)`)
	p.delStmts = r.db.MustPrepare(`DELETE FROM CacheStatements WHERE uri_reference = ?`)
	p.stmtsOf = r.db.MustPrepare(
		`SELECT property, value, is_ref FROM CacheStatements WHERE uri_reference = ?`)
	p.insCredit = r.db.MustPrepare(`INSERT INTO CacheCredits (uri_reference, sub_id) VALUES (?, ?)`)
	p.delCredit = r.db.MustPrepare(`DELETE FROM CacheCredits WHERE uri_reference = ? AND sub_id = ?`)
	p.delCredits = r.db.MustPrepare(`DELETE FROM CacheCredits WHERE uri_reference = ?`)
	p.creditsOf = r.db.MustPrepare(`SELECT sub_id FROM CacheCredits WHERE uri_reference = ?`)
	p.insEdge = r.db.MustPrepare(`INSERT INTO CacheRefs (holder, target, property) VALUES (?, ?, ?)`)
	p.delEdgesFrom = r.db.MustPrepare(`DELETE FROM CacheRefs WHERE holder = ?`)
	return r, nil
}

// Name returns the repository's name (its subscriber identity at the MDP).
func (r *Repository) Name() string { return r.name }

// Schema returns the metadata schema.
func (r *Repository) Schema() *rdf.Schema { return r.schema }

// DB exposes the cache database for the query evaluator.
func (r *Repository) DB() *sql.DB { return r.db }

// Stats returns a copy of the counters.
func (r *Repository) Stats() Stats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.stats
}

// View runs fn under the repository's shared lock: no changeset is applied
// while fn executes, so multi-statement reads (query evaluation) see one
// consistent cache state. fn must not call locking Repository methods
// (Get/Has/ApplyPush/...) — the lock is not reentrant.
func (r *Repository) View(fn func() error) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return fn()
}

// Len returns the number of cached resources (global + local).
func (r *Repository) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rows, err := r.db.Query(`SELECT COUNT(*) FROM Cache`)
	if err != nil {
		return -1
	}
	v, _ := rows.Scalar()
	return int(v.Int)
}

// Has reports whether a resource is cached.
func (r *Repository) Has(uriRef string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.hasLocked(uriRef)
}

// Get reconstructs a cached resource.
func (r *Repository) Get(uriRef string) (*rdf.Resource, bool, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.getLocked(uriRef)
}

func (r *Repository) getLocked(uriRef string) (*rdf.Resource, bool, error) {
	rows, err := r.prep.getCache.Query(rdb.NewText(uriRef))
	if err != nil {
		return nil, false, err
	}
	if rows.Empty() {
		return nil, false, nil
	}
	res := &rdf.Resource{URIRef: uriRef, Class: rows.Data[0][0].Str}
	stmts, err := r.prep.stmtsOf.Query(rdb.NewText(uriRef))
	if err != nil {
		return nil, false, err
	}
	for _, row := range stmts.Data {
		prop, value, isRef := row[0].Str, row[1].Str, row[2].Bool
		if prop == rdf.SubjectProperty {
			continue
		}
		if isRef {
			res.Add(prop, rdf.Ref(value))
		} else {
			res.Add(prop, rdf.Lit(value))
		}
	}
	return res, true, nil
}

// CreditsOf returns the subscription ids crediting a cached resource.
func (r *Repository) CreditsOf(uriRef string) ([]int64, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rows, err := r.prep.creditsOf.Query(rdb.NewText(uriRef))
	if err != nil {
		return nil, err
	}
	out := make([]int64, 0, rows.Len())
	for _, row := range rows.Data {
		out = append(out, row[0].Int)
	}
	return out, nil
}

// storeResource writes (or rewrites) a resource's cache entry, statements,
// and strong-reference edges. Credits are managed by the caller.
func (r *Repository) storeResource(res *rdf.Resource, local bool) error {
	// Replace any previous version.
	if _, err := r.prep.delStmts.Exec(rdb.NewText(res.URIRef)); err != nil {
		return err
	}
	if _, err := r.prep.delEdgesFrom.Exec(rdb.NewText(res.URIRef)); err != nil {
		return err
	}
	if _, err := r.prep.delCache.Exec(rdb.NewText(res.URIRef)); err != nil {
		return err
	}
	if _, err := r.prep.insCache.Exec(
		rdb.NewText(res.URIRef), rdb.NewText(res.Class), rdb.NewBool(local)); err != nil {
		return err
	}
	doc := rdf.Document{Resources: []*rdf.Resource{res}}
	for _, a := range doc.Statements() {
		if _, err := r.prep.insStmt.Exec(
			rdb.NewText(a.URIRef), rdb.NewText(a.Class), rdb.NewText(a.Property),
			rdb.NewText(a.Value), rdb.NewBool(a.IsRef)); err != nil {
			return err
		}
	}
	for _, p := range res.Props {
		if p.Value.Kind != rdf.ResourceRef {
			continue
		}
		if !r.schema.IsStrongReference(res.Class, p.Name) {
			continue
		}
		if _, err := r.prep.insEdge.Exec(
			rdb.NewText(res.URIRef), rdb.NewText(p.Value.Ref), rdb.NewText(p.Name)); err != nil {
			return err
		}
	}
	return nil
}

// dropResource removes a resource entirely from the cache.
func (r *Repository) dropResource(uriRef string) error {
	for _, st := range []*sql.Stmt{r.prep.delStmts, r.prep.delEdgesFrom, r.prep.delCredits, r.prep.delCache} {
		if _, err := st.Exec(rdb.NewText(uriRef)); err != nil {
			return err
		}
	}
	return nil
}

// LastSeq returns the highest changelog sequence applied: the cursor a
// reconnecting LMR resumes the changeset stream from.
func (r *Repository) LastSeq() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.lastSeq
}

// ApplyChangeset applies a published changeset (paper §2.2: MDPs "publish
// updates, insertions, or deletions in the metadata to LMRs") and then runs
// the garbage collector. Application is idempotent: re-applying a changeset
// (an at-least-once redelivery) leaves the cache unchanged.
func (r *Repository) ApplyChangeset(cs *core.Changeset) error {
	return r.ApplyPush(0, false, cs)
}

// ApplyPush applies one sequenced changeset push. seq is the publish
// record's changelog sequence (0 = unsequenced: always applied); pushes at
// or below the cursor are duplicates and are skipped. reset first drops
// all cached global metadata (local metadata is untouched) so the
// changeset rebuilds the cache from scratch — the recovery path when the
// provider cannot replay the exact missed changesets. A reset also
// rebases the cursor to seq, even backwards: a recovered provider may
// have restarted its sequence numbering below the old cursor.
func (r *Repository) ApplyPush(seq uint64, reset bool, cs *core.Changeset) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if reset {
		if err := r.resetGlobalLocked(); err != nil {
			return err
		}
		r.stats.Resets++
	} else if seq != 0 && seq <= r.lastSeq {
		r.stats.DuplicatesSkipped++
		return nil
	}
	if err := r.applyLocked(cs); err != nil {
		return err
	}
	if reset {
		// A reset defines a new baseline: the provider may have restarted
		// with a shorter (recovered) log, so the cursor must rewind with it
		// — otherwise live pushes in the reused sequence range would be
		// skipped as duplicates against the freshly rebuilt cache.
		r.lastSeq = seq
	} else if seq > r.lastSeq {
		r.lastSeq = seq
	}
	return r.gcLocked()
}

// resetGlobalLocked drops every cached global resource, its statements,
// credits, and reference edges. Local (LMR-private) metadata stays.
func (r *Repository) resetGlobalLocked() error {
	rows, err := r.db.Query(`SELECT uri_reference FROM Cache WHERE local = FALSE`)
	if err != nil {
		return err
	}
	for _, row := range rows.Data {
		if err := r.dropResource(row[0].Str); err != nil {
			return err
		}
	}
	return nil
}

func (r *Repository) applyLocked(cs *core.Changeset) error {
	// A changeset shared by an interest group carries the union of the
	// members' credits; MemberCredits says which belong to this repository.
	// Claiming foreign credits would wrongly pin resources against the
	// garbage collector, so upsert credits are intersected with the owned
	// set (nil MemberCredits = single-receiver changeset, apply everything).
	var owned map[int64]bool
	if cs.MemberCredits != nil {
		owned = map[int64]bool{}
		for _, id := range cs.MemberCredits[r.name] {
			owned[id] = true
		}
	}
	for _, up := range cs.Upserts {
		if owned != nil {
			mine := make([]int64, 0, len(up.SubIDs))
			for _, id := range up.SubIDs {
				if owned[id] {
					mine = append(mine, id)
				}
			}
			up.SubIDs = mine
		}
		if err := r.applyUpsert(up); err != nil {
			return err
		}
		r.stats.UpsertsApplied++
	}
	for _, res := range cs.ClosureUpserts {
		// Refresh content only if actually cached; no credit changes.
		if r.hasLocked(res.URIRef) {
			if err := r.storeResource(res, false); err != nil {
				return err
			}
			r.stats.ClosureUpserts++
		}
	}
	for _, rm := range cs.Removals {
		if owned != nil && !owned[rm.SubID] {
			continue // another member's credit (would be a no-op anyway)
		}
		if _, err := r.prep.delCredit.Exec(rdb.NewText(rm.URIRef), rdb.NewInt(rm.SubID)); err != nil {
			return err
		}
		r.stats.RemovalsApplied++
	}
	for _, uri := range cs.ForcedDeletes {
		if r.hasLocked(uri) {
			if err := r.dropResource(uri); err != nil {
				return err
			}
			r.stats.ForcedDeletes++
		}
	}
	return nil
}

func (r *Repository) hasLocked(uriRef string) bool {
	rows, err := r.prep.getCache.Query(rdb.NewText(uriRef))
	if err != nil {
		return false
	}
	return !rows.Empty()
}

func (r *Repository) applyUpsert(up core.Upsert) error {
	live := make([]int64, 0, len(up.SubIDs))
	for _, subID := range up.SubIDs {
		if !r.deadSubs[subID] {
			live = append(live, subID)
		}
	}
	if len(live) == 0 && !r.hasLocked(up.Resource.URIRef) {
		// Every credit is tombstoned and the resource is not otherwise
		// cached: do not admit it at all.
		return nil
	}
	if err := r.storeResource(up.Resource, false); err != nil {
		return err
	}
	for _, subID := range live {
		// Idempotent credit insert.
		rows, err := r.db.Query(
			`SELECT sub_id FROM CacheCredits WHERE uri_reference = ? AND sub_id = ?`,
			rdb.NewText(up.Resource.URIRef), rdb.NewInt(subID))
		if err != nil {
			return err
		}
		if rows.Empty() {
			if _, err := r.prep.insCredit.Exec(rdb.NewText(up.Resource.URIRef), rdb.NewInt(subID)); err != nil {
				return err
			}
		}
	}
	for _, c := range up.Closure {
		if err := r.storeResource(c, false); err != nil {
			return err
		}
	}
	return nil
}

// DropSubscriptionCredits removes every credit of a subscription (when the
// LMR unsubscribes), tombstones the id against late-arriving changesets,
// and garbage-collects.
func (r *Repository) DropSubscriptionCredits(subID int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.deadSubs[subID] = true
	if _, err := r.db.Exec(`DELETE FROM CacheCredits WHERE sub_id = ?`, rdb.NewInt(subID)); err != nil {
		return err
	}
	return r.gcLocked()
}

// RegisterLocalDocument stores LMR-private metadata (paper §2.2: "LMRs
// store local metadata that should not be accessible to the public and
// therefore is not forwarded to the backbone"). Local resources are GC
// roots; re-registration replaces the previous resources of the document's
// URI references.
func (r *Repository) RegisterLocalDocument(doc *rdf.Document) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.schema.ValidateDocument(doc); err != nil {
		return err
	}
	for _, res := range doc.Resources {
		if err := r.storeResource(res, true); err != nil {
			return err
		}
	}
	return nil
}

// DeleteLocalResource removes a local resource.
func (r *Repository) DeleteLocalResource(uriRef string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	rows, err := r.prep.getCache.Query(rdb.NewText(uriRef))
	if err != nil {
		return err
	}
	if rows.Empty() || !rows.Data[0][1].Bool {
		return fmt.Errorf("repository: %s is not a local resource", uriRef)
	}
	if err := r.dropResource(uriRef); err != nil {
		return err
	}
	return r.gcLocked()
}

// GC runs the garbage collector (paper §2.4): cached global resources stay
// only while they have subscription credits or are reachable from credited
// or local resources over strong references. The paper suggests reference
// counting; this implementation marks from the roots and sweeps, which
// additionally reclaims strong-reference cycles that pure reference
// counting would leak.
func (r *Repository) GC() (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	dropped := r.stats.ResourcesDropped
	if err := r.gcLocked(); err != nil {
		return 0, err
	}
	return r.stats.ResourcesDropped - dropped, nil
}

func (r *Repository) gcLocked() error {
	r.stats.GCRuns++
	// Roots: credited resources and local resources.
	live := map[string]bool{}
	var queue []string
	addRoot := func(uri string) {
		if !live[uri] {
			live[uri] = true
			queue = append(queue, uri)
		}
	}
	rows, err := r.db.Query(`SELECT DISTINCT uri_reference FROM CacheCredits`)
	if err != nil {
		return err
	}
	for _, row := range rows.Data {
		addRoot(row[0].Str)
	}
	rows, err = r.db.Query(`SELECT uri_reference FROM Cache WHERE local = TRUE`)
	if err != nil {
		return err
	}
	for _, row := range rows.Data {
		addRoot(row[0].Str)
	}
	// Mark over strong-reference edges.
	refsFrom, err := r.db.Prepare(`SELECT target FROM CacheRefs WHERE holder = ?`)
	if err != nil {
		return err
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		targets, err := refsFrom.Query(rdb.NewText(cur))
		if err != nil {
			return err
		}
		for _, row := range targets.Data {
			t := row[0].Str
			if !live[t] {
				live[t] = true
				queue = append(queue, t)
			}
		}
	}
	// Sweep.
	all, err := r.db.Query(`SELECT uri_reference FROM Cache`)
	if err != nil {
		return err
	}
	for _, row := range all.Data {
		uri := row[0].Str
		if live[uri] {
			continue
		}
		if err := r.dropResource(uri); err != nil {
			return err
		}
		r.stats.ResourcesDropped++
	}
	return nil
}

// Resources lists all cached resources of a class (empty class = all).
func (r *Repository) Resources(class string) ([]*rdf.Resource, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	q := `SELECT uri_reference FROM Cache ORDER BY uri_reference`
	var params []rdb.Value
	if class != "" {
		q = `SELECT uri_reference FROM Cache WHERE class = ? ORDER BY uri_reference`
		params = append(params, rdb.NewText(class))
	}
	rows, err := r.db.Query(q, params...)
	if err != nil {
		return nil, err
	}
	var out []*rdf.Resource
	for _, row := range rows.Data {
		res, ok, err := r.getLocked(row[0].Str)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, res)
		}
	}
	return out, nil
}
