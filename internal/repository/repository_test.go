package repository

import (
	"fmt"
	"testing"

	"mdv/internal/core"
	"mdv/internal/query"
	"mdv/internal/rdf"
)

func testSchema() *rdf.Schema {
	s := rdf.NewSchema()
	s.MustAddProperty("CycleProvider", rdf.PropertyDef{Name: "serverHost", Type: rdf.TypeString})
	s.MustAddProperty("CycleProvider", rdf.PropertyDef{Name: "serverPort", Type: rdf.TypeInteger})
	s.MustAddProperty("CycleProvider", rdf.PropertyDef{
		Name: "serverInformation", Type: rdf.TypeResource, RefClass: "ServerInformation", RefKind: rdf.StrongRef})
	s.MustAddProperty("ServerInformation", rdf.PropertyDef{Name: "memory", Type: rdf.TypeInteger})
	s.MustAddProperty("ServerInformation", rdf.PropertyDef{Name: "cpu", Type: rdf.TypeInteger})
	return s
}

func newRepo(t *testing.T) *Repository {
	t.Helper()
	r, err := New("lmr-test", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func hostResource(uri string, port int) *rdf.Resource {
	r := &rdf.Resource{URIRef: uri, Class: "CycleProvider"}
	r.Add("serverHost", rdf.Lit("pirates.uni-passau.de"))
	r.Add("serverPort", rdf.Lit(fmt.Sprint(port)))
	return r
}

func infoResource(uri string, memory int) *rdf.Resource {
	r := &rdf.Resource{URIRef: uri, Class: "ServerInformation"}
	r.Add("memory", rdf.Lit(fmt.Sprint(memory)))
	r.Add("cpu", rdf.Lit("600"))
	return r
}

func TestApplyUpsertAndGet(t *testing.T) {
	r := newRepo(t)
	host := hostResource("d#h", 80)
	host.Add("serverInformation", rdf.Ref("d#i"))
	cs := &core.Changeset{Upserts: []core.Upsert{{
		Resource: host,
		SubIDs:   []int64{1},
		Closure:  []*rdf.Resource{infoResource("d#i", 92)},
	}}}
	if err := r.ApplyChangeset(cs); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (resource + closure)", r.Len())
	}
	got, ok, err := r.Get("d#h")
	if err != nil || !ok {
		t.Fatalf("Get: %v %v", ok, err)
	}
	if v, _ := got.Get("serverHost"); v.String() != "pirates.uni-passau.de" {
		t.Errorf("serverHost = %s", v.String())
	}
	credits, _ := r.CreditsOf("d#h")
	if len(credits) != 1 || credits[0] != 1 {
		t.Errorf("credits = %v", credits)
	}
	// Closure resource has no credits but is held by the strong reference.
	credits, _ = r.CreditsOf("d#i")
	if len(credits) != 0 {
		t.Errorf("closure credits = %v", credits)
	}
	if !r.Has("d#i") {
		t.Error("closure resource not cached")
	}
}

func TestRemovalDropsWithLastCredit(t *testing.T) {
	r := newRepo(t)
	host := hostResource("d#h", 80)
	cs := &core.Changeset{Upserts: []core.Upsert{{Resource: host, SubIDs: []int64{1, 2}}}}
	if err := r.ApplyChangeset(cs); err != nil {
		t.Fatal(err)
	}
	// Remove one credit: stays cached.
	if err := r.ApplyChangeset(&core.Changeset{Removals: []core.Removal{{URIRef: "d#h", SubID: 1}}}); err != nil {
		t.Fatal(err)
	}
	if !r.Has("d#h") {
		t.Fatal("resource dropped while still credited")
	}
	// Remove the last credit: GC collects it.
	if err := r.ApplyChangeset(&core.Changeset{Removals: []core.Removal{{URIRef: "d#h", SubID: 2}}}); err != nil {
		t.Fatal(err)
	}
	if r.Has("d#h") {
		t.Error("resource survived last credit removal")
	}
	st := r.Stats()
	if st.ResourcesDropped != 1 {
		t.Errorf("ResourcesDropped = %d", st.ResourcesDropped)
	}
}

func TestGCClosureChain(t *testing.T) {
	r := newRepo(t)
	host := hostResource("d#h", 80)
	host.Add("serverInformation", rdf.Ref("d#i"))
	cs := &core.Changeset{Upserts: []core.Upsert{{
		Resource: host, SubIDs: []int64{1},
		Closure: []*rdf.Resource{infoResource("d#i", 92)},
	}}}
	if err := r.ApplyChangeset(cs); err != nil {
		t.Fatal(err)
	}
	// Dropping the holder's credit collects the closure resource too (§2.4:
	// "deleting such resources if the resource that caused their
	// transmission is deleted").
	if err := r.ApplyChangeset(&core.Changeset{Removals: []core.Removal{{URIRef: "d#h", SubID: 1}}}); err != nil {
		t.Fatal(err)
	}
	if r.Has("d#h") || r.Has("d#i") {
		t.Error("closure chain not collected")
	}
	if r.Len() != 0 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestGCSharedClosureSurvives(t *testing.T) {
	r := newRepo(t)
	info := infoResource("d#i", 92)
	h1 := hostResource("d#h1", 80)
	h1.Add("serverInformation", rdf.Ref("d#i"))
	h2 := hostResource("d#h2", 81)
	h2.Add("serverInformation", rdf.Ref("d#i"))
	cs := &core.Changeset{Upserts: []core.Upsert{
		{Resource: h1, SubIDs: []int64{1}, Closure: []*rdf.Resource{info}},
		{Resource: h2, SubIDs: []int64{2}, Closure: []*rdf.Resource{info}},
	}}
	if err := r.ApplyChangeset(cs); err != nil {
		t.Fatal(err)
	}
	// Dropping one holder keeps the shared target alive.
	if err := r.ApplyChangeset(&core.Changeset{Removals: []core.Removal{{URIRef: "d#h1", SubID: 1}}}); err != nil {
		t.Fatal(err)
	}
	if r.Has("d#h1") {
		t.Error("h1 not collected")
	}
	if !r.Has("d#i") {
		t.Error("shared closure resource collected while still referenced")
	}
	if err := r.ApplyChangeset(&core.Changeset{Removals: []core.Removal{{URIRef: "d#h2", SubID: 2}}}); err != nil {
		t.Fatal(err)
	}
	if r.Has("d#i") {
		t.Error("orphaned closure resource survived")
	}
}

func TestGCCycleCollected(t *testing.T) {
	s := testSchema()
	s.MustAddProperty("ServerInformation", rdf.PropertyDef{
		Name: "twin", Type: rdf.TypeResource, RefClass: "ServerInformation", RefKind: rdf.StrongRef})
	r, err := New("lmr", s)
	if err != nil {
		t.Fatal(err)
	}
	a := infoResource("d#a", 1)
	a.Add("twin", rdf.Ref("d#b"))
	b := infoResource("d#b", 2)
	b.Add("twin", rdf.Ref("d#a"))
	cs := &core.Changeset{Upserts: []core.Upsert{{Resource: a, SubIDs: []int64{1}, Closure: []*rdf.Resource{b}}}}
	if err := r.ApplyChangeset(cs); err != nil {
		t.Fatal(err)
	}
	if err := r.ApplyChangeset(&core.Changeset{Removals: []core.Removal{{URIRef: "d#a", SubID: 1}}}); err != nil {
		t.Fatal(err)
	}
	if r.Has("d#a") || r.Has("d#b") {
		t.Error("strong-reference cycle leaked (mark-and-sweep should reclaim it)")
	}
}

func TestForcedDelete(t *testing.T) {
	r := newRepo(t)
	cs := &core.Changeset{Upserts: []core.Upsert{{Resource: hostResource("d#h", 80), SubIDs: []int64{1}}}}
	if err := r.ApplyChangeset(cs); err != nil {
		t.Fatal(err)
	}
	if err := r.ApplyChangeset(&core.Changeset{ForcedDeletes: []string{"d#h", "d#unknown"}}); err != nil {
		t.Fatal(err)
	}
	if r.Has("d#h") {
		t.Error("forced delete ignored")
	}
	if r.Stats().ForcedDeletes != 1 {
		t.Errorf("ForcedDeletes = %d", r.Stats().ForcedDeletes)
	}
}

func TestClosureUpsertRefreshesOnlyCached(t *testing.T) {
	r := newRepo(t)
	host := hostResource("d#h", 80)
	host.Add("serverInformation", rdf.Ref("d#i"))
	cs := &core.Changeset{Upserts: []core.Upsert{{
		Resource: host, SubIDs: []int64{1},
		Closure: []*rdf.Resource{infoResource("d#i", 92)},
	}}}
	if err := r.ApplyChangeset(cs); err != nil {
		t.Fatal(err)
	}
	// Refresh the cached closure resource.
	if err := r.ApplyChangeset(&core.Changeset{
		ClosureUpserts: []*rdf.Resource{infoResource("d#i", 128)},
	}); err != nil {
		t.Fatal(err)
	}
	got, _, _ := r.Get("d#i")
	if v, _ := got.Get("memory"); v.String() != "128" {
		t.Errorf("memory = %s after closure upsert", v.String())
	}
	// A closure upsert for an uncached resource is ignored (no phantom
	// cache entries).
	if err := r.ApplyChangeset(&core.Changeset{
		ClosureUpserts: []*rdf.Resource{infoResource("d#other", 1)},
	}); err != nil {
		t.Fatal(err)
	}
	if r.Has("d#other") {
		t.Error("uncached closure upsert created a cache entry")
	}
}

func TestLocalMetadata(t *testing.T) {
	r := newRepo(t)
	doc := rdf.NewDocument("local.rdf")
	res := doc.NewResource("svc", "CycleProvider")
	res.Add("serverHost", rdf.Lit("intranet.local"))
	if err := r.RegisterLocalDocument(doc); err != nil {
		t.Fatal(err)
	}
	if !r.Has("local.rdf#svc") {
		t.Fatal("local resource not stored")
	}
	// Local resources are GC roots.
	if _, err := r.GC(); err != nil {
		t.Fatal(err)
	}
	if !r.Has("local.rdf#svc") {
		t.Error("GC collected a local resource")
	}
	// Schema violations rejected.
	bad := rdf.NewDocument("bad.rdf")
	bad.NewResource("x", "Mystery")
	if err := r.RegisterLocalDocument(bad); err == nil {
		t.Error("schema violation accepted for local metadata")
	}
	// Deletion.
	if err := r.DeleteLocalResource("local.rdf#svc"); err != nil {
		t.Fatal(err)
	}
	if r.Has("local.rdf#svc") {
		t.Error("local resource survived deletion")
	}
	if err := r.DeleteLocalResource("local.rdf#svc"); err == nil {
		t.Error("double local delete accepted")
	}
	// Global resources cannot be deleted through the local path.
	cs := &core.Changeset{Upserts: []core.Upsert{{Resource: hostResource("d#h", 80), SubIDs: []int64{1}}}}
	r.ApplyChangeset(cs)
	if err := r.DeleteLocalResource("d#h"); err == nil {
		t.Error("global resource deleted through local path")
	}
}

func TestDropSubscriptionCredits(t *testing.T) {
	r := newRepo(t)
	cs := &core.Changeset{Upserts: []core.Upsert{
		{Resource: hostResource("d#h1", 80), SubIDs: []int64{1}},
		{Resource: hostResource("d#h2", 81), SubIDs: []int64{1, 2}},
	}}
	if err := r.ApplyChangeset(cs); err != nil {
		t.Fatal(err)
	}
	if err := r.DropSubscriptionCredits(1); err != nil {
		t.Fatal(err)
	}
	if r.Has("d#h1") {
		t.Error("h1 survived subscription drop")
	}
	if !r.Has("d#h2") {
		t.Error("h2 dropped despite second subscription")
	}
}

func TestUpsertIdempotent(t *testing.T) {
	r := newRepo(t)
	cs := &core.Changeset{Upserts: []core.Upsert{{Resource: hostResource("d#h", 80), SubIDs: []int64{1}}}}
	if err := r.ApplyChangeset(cs); err != nil {
		t.Fatal(err)
	}
	// Same upsert again (e.g. refreshed content) must not duplicate
	// credits or statements.
	cs2 := &core.Changeset{Upserts: []core.Upsert{{Resource: hostResource("d#h", 90), SubIDs: []int64{1}}}}
	if err := r.ApplyChangeset(cs2); err != nil {
		t.Fatal(err)
	}
	credits, _ := r.CreditsOf("d#h")
	if len(credits) != 1 {
		t.Errorf("credits duplicated: %v", credits)
	}
	got, _, _ := r.Get("d#h")
	if len(got.GetAll("serverPort")) != 1 {
		t.Error("statements duplicated on re-upsert")
	}
	if v, _ := got.Get("serverPort"); v.String() != "90" {
		t.Errorf("content not refreshed: %v", v)
	}
}

func TestResourcesListing(t *testing.T) {
	r := newRepo(t)
	cs := &core.Changeset{Upserts: []core.Upsert{
		{Resource: hostResource("d#h1", 80), SubIDs: []int64{1}},
		{Resource: infoResource("d#i1", 92), SubIDs: []int64{2}},
	}}
	if err := r.ApplyChangeset(cs); err != nil {
		t.Fatal(err)
	}
	all, err := r.Resources("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Errorf("all resources = %d", len(all))
	}
	cps, err := r.Resources("CycleProvider")
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) != 1 || cps[0].URIRef != "d#h1" {
		t.Errorf("class listing = %v", cps)
	}
}

// TestQueryOverCache evaluates the MDV query language against the cache
// (the LMR's whole purpose: local query processing, §2.2).
func TestQueryOverCache(t *testing.T) {
	r := newRepo(t)
	var ups []core.Upsert
	for i := 1; i <= 10; i++ {
		h := hostResource(fmt.Sprintf("d#h%d", i), 8000+i)
		h.Add("serverInformation", rdf.Ref(fmt.Sprintf("d#i%d", i)))
		ups = append(ups, core.Upsert{
			Resource: h,
			SubIDs:   []int64{1},
			Closure:  []*rdf.Resource{infoResource(fmt.Sprintf("d#i%d", i), i*32)},
		})
	}
	if err := r.ApplyChangeset(&core.Changeset{Upserts: ups}); err != nil {
		t.Fatal(err)
	}
	ev := query.NewEvaluator(r.DB(), r.Schema())

	// Simple property comparison.
	res, err := ev.Evaluate(`search CycleProvider c register c where c.serverPort = 8003`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].URIRef != "d#h3" {
		t.Errorf("port query = %v", uriList(res))
	}

	// Path expression (join against the closure resources).
	res, err = ev.Evaluate(`search CycleProvider c register c where c.serverInformation.memory > 256`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 { // i9 = 288, i10 = 320
		t.Errorf("path query = %v", uriList(res))
	}

	// contains.
	res, err = ev.Evaluate(`search CycleProvider c register c where c.serverHost contains 'uni-passau'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 10 {
		t.Errorf("contains query = %d results", len(res))
	}

	// Explicit join with register of the joined side.
	res, err = ev.Evaluate(`search CycleProvider c, ServerInformation s register s
		where c.serverInformation = s and c.serverPort <= 8002`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Errorf("join register-s query = %v", uriList(res))
	}

	// OR union.
	res, err = ev.Evaluate(`search CycleProvider c register c
		where c.serverPort = 8001 or c.serverPort = 8002`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Errorf("OR query = %v", uriList(res))
	}

	// Constant on the left.
	res, err = ev.Evaluate(`search CycleProvider c register c where 8008 < c.serverPort`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Errorf("const-left query = %v", uriList(res))
	}

	// OID-style query.
	res, err = ev.Evaluate(`search CycleProvider c register c where c = 'd#h7'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].URIRef != "d#h7" {
		t.Errorf("OID query = %v", uriList(res))
	}

	// No matches.
	res, err = ev.Evaluate(`search CycleProvider c register c where c.serverPort = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("empty query = %v", uriList(res))
	}

	// Unknown class is an error.
	if _, err := ev.Evaluate(`search Mystery m register m`); err == nil {
		t.Error("unknown class accepted")
	}
}

func uriList(rs []*rdf.Resource) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.URIRef
	}
	return out
}

// TestTombstonedSubscriptionCredits: a changeset published before an
// unsubscribe but applied after it must not resurrect cache entries for
// the dead subscription.
func TestTombstonedSubscriptionCredits(t *testing.T) {
	r := newRepo(t)
	cs := &core.Changeset{Upserts: []core.Upsert{{Resource: hostResource("d#h", 80), SubIDs: []int64{1}}}}
	if err := r.ApplyChangeset(cs); err != nil {
		t.Fatal(err)
	}
	if err := r.DropSubscriptionCredits(1); err != nil {
		t.Fatal(err)
	}
	if r.Has("d#h") {
		t.Fatal("resource survived unsubscribe")
	}
	// Late-arriving changeset for the dead subscription.
	late := &core.Changeset{Upserts: []core.Upsert{{Resource: hostResource("d#h", 81), SubIDs: []int64{1}}}}
	if err := r.ApplyChangeset(late); err != nil {
		t.Fatal(err)
	}
	if r.Has("d#h") {
		t.Error("dead subscription resurrected a cache entry")
	}
	// A live subscription sharing the upsert still works.
	mixed := &core.Changeset{Upserts: []core.Upsert{{Resource: hostResource("d#h2", 82), SubIDs: []int64{1, 2}}}}
	if err := r.ApplyChangeset(mixed); err != nil {
		t.Fatal(err)
	}
	if !r.Has("d#h2") {
		t.Fatal("live subscription's upsert dropped")
	}
	credits, _ := r.CreditsOf("d#h2")
	if len(credits) != 1 || credits[0] != 2 {
		t.Errorf("credits = %v, want only the live subscription", credits)
	}
}

// TestApplyPushDeduplicatesBySequence: sequenced pushes at or below the
// cursor are duplicates from an at-least-once replay and must be skipped.
func TestApplyPushDeduplicatesBySequence(t *testing.T) {
	r := newRepo(t)
	up := func(uri string, port int) *core.Changeset {
		return &core.Changeset{Upserts: []core.Upsert{{Resource: hostResource(uri, port), SubIDs: []int64{1}}}}
	}
	if err := r.ApplyPush(5, false, up("d#a", 80)); err != nil {
		t.Fatal(err)
	}
	if r.LastSeq() != 5 {
		t.Fatalf("LastSeq = %d, want 5", r.LastSeq())
	}
	// Re-delivery of seq 5 and an older seq 3: both skipped.
	if err := r.ApplyPush(5, false, up("d#b", 80)); err != nil {
		t.Fatal(err)
	}
	if err := r.ApplyPush(3, false, up("d#c", 80)); err != nil {
		t.Fatal(err)
	}
	if r.Has("d#b") || r.Has("d#c") {
		t.Error("duplicate push was applied")
	}
	if got := r.Stats().DuplicatesSkipped; got != 2 {
		t.Errorf("DuplicatesSkipped = %d, want 2", got)
	}
	// Unsequenced pushes (seq 0, non-durable provider) always apply.
	if err := r.ApplyPush(0, false, up("d#d", 80)); err != nil {
		t.Fatal(err)
	}
	if !r.Has("d#d") {
		t.Error("unsequenced push was skipped")
	}
	if r.LastSeq() != 5 {
		t.Errorf("LastSeq = %d after unsequenced push, want 5", r.LastSeq())
	}
	// A newer sequence applies and advances the cursor.
	if err := r.ApplyPush(6, false, up("d#e", 80)); err != nil {
		t.Fatal(err)
	}
	if !r.Has("d#e") || r.LastSeq() != 6 {
		t.Errorf("seq 6: Has=%v LastSeq=%d", r.Has("d#e"), r.LastSeq())
	}
}

// TestApplyPushResetDropsGlobalKeepsLocal: a reset push replaces the cached
// global metadata wholesale but leaves LMR-private resources alone.
func TestApplyPushResetDropsGlobalKeepsLocal(t *testing.T) {
	r := newRepo(t)
	stale := &core.Changeset{Upserts: []core.Upsert{
		{Resource: hostResource("d#old1", 80), SubIDs: []int64{1}},
		{Resource: hostResource("d#old2", 80), SubIDs: []int64{1}},
	}}
	if err := r.ApplyPush(2, false, stale); err != nil {
		t.Fatal(err)
	}
	doc := rdf.NewDocument("local.rdf")
	doc.NewResource("mine", "CycleProvider").Add("serverPort", rdf.Lit("99"))
	if err := r.RegisterLocalDocument(doc); err != nil {
		t.Fatal(err)
	}
	fresh := &core.Changeset{Upserts: []core.Upsert{
		{Resource: hostResource("d#new", 81), SubIDs: []int64{1}},
	}}
	if err := r.ApplyPush(9, true, fresh); err != nil {
		t.Fatal(err)
	}
	if r.Has("d#old1") || r.Has("d#old2") {
		t.Error("stale global resources survived the reset")
	}
	if !r.Has("d#new") {
		t.Error("reset changeset content missing")
	}
	if !r.Has("local.rdf#mine") {
		t.Error("local resource dropped by reset")
	}
	if r.LastSeq() != 9 {
		t.Errorf("LastSeq = %d, want 9", r.LastSeq())
	}
	if got := r.Stats().Resets; got != 1 {
		t.Errorf("Resets = %d, want 1", got)
	}
}

// TestApplyPushResetRewindsCursor: a reset push with a sequence below the
// cursor (the provider restarted with a shorter, recovered log) rebases
// the cursor backwards; live pushes in the reused sequence range must then
// apply instead of being skipped as duplicates.
func TestApplyPushResetRewindsCursor(t *testing.T) {
	r := newRepo(t)
	up := func(uri string, port int) *core.Changeset {
		return &core.Changeset{Upserts: []core.Upsert{{Resource: hostResource(uri, port), SubIDs: []int64{1}}}}
	}
	if err := r.ApplyPush(50, false, up("d#pre", 80)); err != nil {
		t.Fatal(err)
	}
	if r.LastSeq() != 50 {
		t.Fatalf("LastSeq = %d, want 50", r.LastSeq())
	}
	// The provider crashed, lost its log tail, and restarted numbering at a
	// lower sequence: the reset arrives with seq 3 < cursor 50.
	if err := r.ApplyPush(3, true, up("d#base", 81)); err != nil {
		t.Fatal(err)
	}
	if r.Has("d#pre") {
		t.Error("stale global resource survived the reset")
	}
	if r.LastSeq() != 3 {
		t.Fatalf("LastSeq = %d after reset at seq 3, want 3 (cursor must rewind)", r.LastSeq())
	}
	// Live pushes in the sequence range the old cursor already covered.
	if err := r.ApplyPush(4, false, up("d#live", 82)); err != nil {
		t.Fatal(err)
	}
	if !r.Has("d#live") {
		t.Error("live push after reset skipped as duplicate (lost update)")
	}
	if r.LastSeq() != 4 {
		t.Errorf("LastSeq = %d, want 4", r.LastSeq())
	}
	if got := r.Stats().DuplicatesSkipped; got != 0 {
		t.Errorf("DuplicatesSkipped = %d, want 0", got)
	}
}
