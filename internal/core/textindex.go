package core

import (
	"sort"
	"sync/atomic"
)

// Sub-linear text triggering: a multi-pattern substring index over the
// `contains` rule constants.
//
// The FilterRulesCON triggering query joins every FilterData atom against
// every contains rule of its (class, property) cohort with a per-rule
// `fd.value CONTAINS fr.value` probe — Θ(R_CON) strings.Contains calls per
// atom, the last linear scan left after PR 3 made the numeric operators
// O(log R). Following "Full-text Support for Publish/Subscribe Ontology
// Systems", the index inverts the roles: the *rule constants* are compiled
// into one Aho-Corasick automaton per (class, property) cohort, so a single
// left-to-right pass over an atom value finds every rule whose constant
// occurs in it — O(|value| + matches) per atom, independent of the rule
// base.
//
// The index is derived state, exactly like the PR 9 shard mirrors: the
// canonical FilterRulesCON table stays authoritative for persistence,
// snapshots, and the -no-text-index ablation; the index is maintained
// incrementally on subscribe/unsubscribe under the exclusive engine lock
// and rebuilt from the canonical table on LoadWithOptions. Snapshots never
// contain index state, so save/load determinism is untouched.
//
// Semantics are pinned to the SQL CONTAINS baseline (internal/rdb/sql
// expr.go): byte-wise, case-sensitive strings.Contains. Matching raw bytes
// reproduces it exactly — multi-byte UTF-8 constants match byte sequences,
// and the empty constant matches every value (strings.Contains(s, "") is
// true), which the index models with a per-cohort empty-rule list since an
// automaton has no useful empty pattern.
//
// Concurrency: mutation (insert/remove/rebuild) happens only under the
// exclusive engine lock with no filter run active. During a sharded filter
// run, shard workers read the index concurrently — but an atom's cohort key
// is exactly its (class, property) routing key, so each cohort is only ever
// touched by its home shard's worker, and the lazy automaton rebuild inside
// collect is single-writer per cohort. The cohorts map itself is read-only
// during runs. The scan/match counters are atomics so workers can bump them
// without touching engine state (they are deliberately NOT part of
// core.Stats: indexed and ablation engines must produce identical Stats for
// the differential tests).

// conTrigIdx is the position of the CON operator in trigOpNames /
// prepared.trig — the triggering slot the text index replaces.
const conTrigIdx = 5

// textCohortKey identifies one (class, property) cohort of contains rules.
// Bare-variable rules (`where c contains 'x'`, matching the URIref) carry
// property == rdf.SubjectProperty like their FilterData subject atoms, so
// they form an ordinary cohort and route to the same shard as the atoms
// that trigger them.
type textCohortKey struct {
	class    string
	property string
}

// textCohort holds one cohort's rules. patterns is authoritative within the
// index (constant -> sorted rule ids); the automaton is compiled from it
// lazily on the first scan after a mutation, so a burst of subscribes costs
// one rebuild instead of one per rule.
type textCohort struct {
	patterns map[string][]int64 // non-empty constant -> sorted rule ids
	empty    []int64            // rules with the empty constant: match every value
	ac       *textAutomaton     // nil = stale; compiled before the next scan
	nodes    int                // states of the compiled automaton (0 while stale)
}

// textIndex is the engine-wide contains-rule index, one cohort per
// (class, property); nil on an engine with Options.DisableTextIndex.
type textIndex struct {
	cohorts map[textCohortKey]*textCohort
	rules   int // live (rule, constant) entries across all cohorts

	// scans counts atom values run through a cohort automaton; matches
	// counts the candidate (rule, atom) pairs emitted. Atomics: bumped by
	// shard workers during parallel triggering.
	scans   atomic.Int64
	matches atomic.Int64
}

func newTextIndex() *textIndex {
	return &textIndex{cohorts: make(map[textCohortKey]*textCohort)}
}

// insertSortedID inserts id into a sorted id slice, keeping it sorted.
// Rule ids are unique per constant (internTrigger dedups by rule text), so
// duplicates cannot occur.
func insertSortedID(ids []int64, id int64) []int64 {
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	ids = append(ids, 0)
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	return ids
}

// removeID removes id from an id slice, returning nil when it empties.
func removeID(ids []int64, id int64) []int64 {
	for i, v := range ids {
		if v == id {
			ids = append(ids[:i], ids[i+1:]...)
			break
		}
	}
	if len(ids) == 0 {
		return nil
	}
	return ids
}

// insert adds one contains rule's constant to its cohort and marks the
// cohort's automaton stale. Caller holds the exclusive engine lock.
func (t *textIndex) insert(class, property, value string, id int64) {
	k := textCohortKey{class: class, property: property}
	c := t.cohorts[k]
	if c == nil {
		c = &textCohort{patterns: make(map[string][]int64)}
		t.cohorts[k] = c
	}
	if value == "" {
		c.empty = insertSortedID(c.empty, id)
	} else {
		c.patterns[value] = insertSortedID(c.patterns[value], id)
	}
	c.ac, c.nodes = nil, 0
	t.rules++
}

// remove drops one swept rule from its cohort, releasing the pattern when
// it was the last rule sharing the constant and the cohort when it empties
// — the no-leak contract of the unsubscribe churn test. Caller holds the
// exclusive engine lock.
func (t *textIndex) remove(class, property, value string, id int64) {
	k := textCohortKey{class: class, property: property}
	c := t.cohorts[k]
	if c == nil {
		return
	}
	if value == "" {
		c.empty = removeID(c.empty, id)
	} else if ids := removeID(c.patterns[value], id); ids == nil {
		delete(c.patterns, value)
	} else {
		c.patterns[value] = ids
	}
	c.ac, c.nodes = nil, 0
	t.rules--
	if len(c.patterns) == 0 && len(c.empty) == 0 {
		delete(t.cohorts, k)
	}
}

// collect appends, for every atom in part, the (rule, uri) candidate pairs
// its cohort's contains rules derive — the exact pair set the
// FilterRulesCON triggering query would emit (one pair per matching rule,
// regardless of how often the constant occurs). Rule ids are emitted sorted
// per atom, so the pair order is a deterministic function of the atom
// order. scratch grows across atoms and is reused.
func (t *textIndex) collect(part []preparedAtom, pairs []matchPair) []matchPair {
	var scratch []int64
	for i := range part {
		a := &part[i].stmt
		c := t.cohorts[textCohortKey{class: a.Class, property: a.Property}]
		if c == nil {
			continue
		}
		t.scans.Add(1)
		scratch = append(scratch[:0], c.empty...)
		if len(c.patterns) > 0 {
			if c.ac == nil {
				c.ac = compileTextAutomaton(c.patterns)
				c.nodes = len(c.ac.nodes)
			}
			scratch = c.ac.scan(a.Value, scratch)
		}
		if len(scratch) == 0 {
			continue
		}
		scratch = dedupeSortedIDs(scratch)
		t.matches.Add(int64(len(scratch)))
		for _, id := range scratch {
			pairs = append(pairs, matchPair{rule: id, uri: a.URIRef})
		}
	}
	return pairs
}

// dedupeSortedIDs sorts ids and drops duplicates in place (a value
// containing a constant several times reports its rules once, like the SQL
// join's one row per (atom, rule) pair).
func dedupeSortedIDs(ids []int64) []int64 {
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	out := ids[:0]
	for i, v := range ids {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// ruleCount reports the live (rule, constant) entries (mdv_text_index_rules).
func (t *textIndex) ruleCount() int { return t.rules }

// nodeCount sums the states of every compiled cohort automaton
// (mdv_text_index_nodes). Cohorts mutated since their last scan report 0
// until the next filter run recompiles them.
func (t *textIndex) nodeCount() int {
	n := 0
	for _, c := range t.cohorts {
		n += c.nodes
	}
	return n
}

// textAutomaton is a byte-level Aho-Corasick automaton over one cohort's
// constants. States form the trie of the patterns; fail links point to the
// longest proper suffix of a state that is itself a trie prefix; dict links
// shortcut the fail chain to the nearest state with output, so the per-byte
// output walk touches only states that actually end a pattern.
type textAutomaton struct {
	nodes []textNode
}

type textNode struct {
	next map[byte]int32
	fail int32
	dict int32   // nearest fail-ancestor with output; -1 = none
	out  []int64 // rule ids of the patterns ending at this state
}

// compileTextAutomaton builds the automaton. Patterns are inserted in
// sorted order so state numbering — and therefore scan emission order
// before the per-atom sort — is deterministic across rebuilds.
func compileTextAutomaton(patterns map[string][]int64) *textAutomaton {
	keys := make([]string, 0, len(patterns))
	for p := range patterns {
		keys = append(keys, p)
	}
	sort.Strings(keys)
	a := &textAutomaton{nodes: []textNode{{dict: -1}}}
	for _, p := range keys {
		cur := int32(0)
		for i := 0; i < len(p); i++ {
			b := p[i]
			nxt, ok := a.nodes[cur].next[b]
			if !ok {
				a.nodes = append(a.nodes, textNode{dict: -1})
				nxt = int32(len(a.nodes) - 1)
				if a.nodes[cur].next == nil {
					a.nodes[cur].next = make(map[byte]int32)
				}
				a.nodes[cur].next[b] = nxt
			}
			cur = nxt
		}
		a.nodes[cur].out = append(a.nodes[cur].out, patterns[p]...)
	}
	// Breadth-first fail/dict links; parents are always processed before
	// their children, which is all the fail recurrence needs.
	queue := make([]int32, 0, len(a.nodes))
	for b := 0; b < 256; b++ {
		if v, ok := a.nodes[0].next[byte(b)]; ok {
			queue = append(queue, v) // depth 1: fail = root (zero value)
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		un := &a.nodes[u]
		if f := un.fail; len(a.nodes[f].out) > 0 {
			un.dict = f
		} else {
			un.dict = a.nodes[f].dict
		}
		for b := 0; b < 256; b++ {
			v, ok := un.next[byte(b)]
			if !ok {
				continue
			}
			f := un.fail
			for {
				if w, ok := a.nodes[f].next[byte(b)]; ok {
					a.nodes[v].fail = w
					break
				}
				if f == 0 {
					a.nodes[v].fail = 0
					break
				}
				f = a.nodes[f].fail
			}
			queue = append(queue, v)
		}
	}
	return a
}

// scan runs value through the automaton, appending the rule ids of every
// pattern occurrence to out (duplicates possible across occurrences; the
// caller dedupes). Amortized O(len(value) + occurrences): each byte
// advances the state or walks fail links paid for by earlier advances, and
// the dict chain visits only output states.
func (a *textAutomaton) scan(value string, out []int64) []int64 {
	cur := int32(0)
	for i := 0; i < len(value); i++ {
		b := value[i]
		for {
			if nxt, ok := a.nodes[cur].next[b]; ok {
				cur = nxt
				break
			}
			if cur == 0 {
				break
			}
			cur = a.nodes[cur].fail
		}
		for n := cur; n != -1; n = a.nodes[n].dict {
			out = append(out, a.nodes[n].out...)
		}
	}
	return out
}

// initTextIndex builds the engine's contains-rule index from the canonical
// FilterRulesCON table — empty at bootstrap, populated after a snapshot
// load. The ablation (Options.DisableTextIndex) leaves e.text nil and the
// CON triggering query in charge.
func (e *Engine) initTextIndex() error {
	if e.opts.DisableTextIndex {
		return nil
	}
	e.text = newTextIndex()
	rows, err := e.db.Query(`SELECT rule_id, class, property, value FROM FilterRulesCON`)
	if err != nil {
		return err
	}
	for _, r := range rows.Data {
		e.text.insert(r[1].Str, r[2].Str, r[3].Str, r[0].Int)
	}
	return nil
}
