package core_test

import (
	"fmt"
	"sync"
	"testing"

	"mdv/internal/lmr"
	"mdv/internal/provider"
	"mdv/internal/rdf"
)

// TestConcurrentRegistrationsAndQueries hammers one provider with parallel
// registrations, subscriptions, and repository queries. The engine
// serializes internally; the test asserts nothing is lost and nothing
// races (run with -race).
func TestConcurrentRegistrationsAndQueries(t *testing.T) {
	schema := soundnessSchema()
	prov, err := provider.New("mdp", schema)
	if err != nil {
		t.Fatal(err)
	}
	node, err := lmr.New("lmr", schema, prov)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.AddSubscription(
		`search CycleProvider c register c where c.serverPort >= 0`); err != nil {
		t.Fatal(err)
	}

	const writers = 4
	const docsPerWriter = 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < docsPerWriter; i++ {
				doc := rdf.NewDocument(fmt.Sprintf("c%d-%d.rdf", w, i))
				cp := doc.NewResource("cp", "CycleProvider")
				cp.Add("serverHost", rdf.Lit("h.example.org"))
				cp.Add("serverPort", rdf.Lit(fmt.Sprint(i)))
				cp.Add("synthValue", rdf.Lit("1"))
				if err := prov.RegisterDocument(doc); err != nil {
					t.Errorf("register: %v", err)
					return
				}
			}
		}(w)
	}
	// Concurrent readers.
	stop := make(chan struct{})
	var rg sync.WaitGroup
	for r := 0; r < 2; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := node.Query(`search CycleProvider c register c where c.serverPort > 10`); err != nil {
					t.Errorf("query: %v", err)
					return
				}
			}
		}()
	}
	// Concurrent engine readers: the RW-locked read surface (browse,
	// stats, subscription listings, match evaluation) must run in parallel
	// with the writers without torn reads.
	engine := prov.Engine()
	for r := 0; r < 2; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := engine.Browse("CycleProvider", "h.example"); err != nil {
					t.Errorf("browse: %v", err)
					return
				}
				st := engine.Stats()
				if st.DocumentsRegistered < 0 {
					t.Error("stats: negative counter")
					return
				}
				subs, err := engine.Subscriptions()
				if err != nil {
					t.Errorf("subscriptions: %v", err)
					return
				}
				for _, s := range subs {
					if _, err := engine.MatchingResources(s.ID); err != nil {
						t.Errorf("matching resources: %v", err)
						return
					}
				}
				if _, err := engine.DocumentURIs(); err != nil {
					t.Errorf("document uris: %v", err)
					return
				}
			}
		}()
	}
	// Concurrent subscriber churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			id, _, err := prov.Subscribe("lmr2", fmt.Sprintf(
				`search CycleProvider c register c where c.serverPort = %d`, i))
			if err != nil {
				t.Errorf("subscribe: %v", err)
				return
			}
			if err := prov.Unsubscribe(id); err != nil {
				t.Errorf("unsubscribe: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()

	if got := node.Repository().Len(); got != writers*docsPerWriter {
		t.Errorf("cache holds %d resources, want %d", got, writers*docsPerWriter)
	}
	rs, err := node.Query(`search CycleProvider c register c`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != writers*docsPerWriter {
		t.Errorf("query sees %d resources, want %d", len(rs), writers*docsPerWriter)
	}
}
