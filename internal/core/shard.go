package core

import (
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"time"

	"mdv/internal/rdb"
	"mdv/internal/rdb/sql"
	"mdv/internal/rdf"
)

// Sharded triggering: the partition-parallel phase 1 of the filter run.
//
// Every one of the nine predicate triggering queries equates the filter
// rule's (class, property) with the FilterData atom's (class, property); the
// ANY query has no property column but only ever consumes subject atoms
// (fd.property = rdf.SubjectProperty). (class, property) is therefore an
// exact join-key partition of the triggering join: hashing atoms and rules
// by that pair sends every derivable (rule, atom) match to exactly one
// shard, so evaluating the shards independently and concatenating their
// candidate sets in shard order reproduces the serial result — the
// dedup/fixpoint downstream is a set computation, and everything
// buildPublishSet emits is sorted, so the merged run's output is
// byte-identical to the serial engine's.
//
// Each shard owns a private database holding only its slice of the
// FilterData scratch and the ten FilterRules tables. A private database
// means a private statement lock, so shard sections run truly concurrently;
// the canonical filter tables in the engine database stay authoritative for
// persistence, snapshots, and the serial ablation. Shards never read engine
// state, which keeps the lock hierarchy a strict rdb < shard < engine <
// provider.

// numTrigOps is the number of triggering operators (ANY plus the nine
// predicate forms of paper §3.3.4).
const numTrigOps = 10

// maxShards bounds the configured shard count: beyond the point where every
// core has a section, more shards only add fixed per-shard costs and metric
// cardinality.
const maxShards = 64

// trigOpNames are the triggering operators in the engine's canonical
// evaluation order (the order prepare() builds their queries and runFilter
// executes them).
var trigOpNames = [numTrigOps]string{"ANY", "EQ", "EQN", "NE", "NEN", "CON", "LT", "LE", "GT", "GE"}

// trigTableNames are the per-operator filter tables, index-aligned with
// trigOpNames.
var trigTableNames = [numTrigOps]string{
	"FilterRulesANY", "FilterRulesEQ", "FilterRulesEQN", "FilterRulesNE", "FilterRulesNEN",
	"FilterRulesCON", "FilterRulesLT", "FilterRulesLE", "FilterRulesGT", "FilterRulesGE",
}

// trigQueryTexts renders the ten triggering queries (paper §3.4,
// "Determination of Affected Triggering Rules"): FilterData joined against
// each filter table. Shared by the engine's serial path and the per-shard
// sections so both compile exactly the same plans. The typed form compares
// the parsed num_value columns through the ordered (class, property,
// num_value) indexes; the CAST form is the paper's string-reconverting scan,
// kept as an ablation.
func trigQueryTexts(disableTyped bool) [numTrigOps]string {
	numCmp := func(op string) string {
		if disableTyped {
			return "CAST(fd.value AS FLOAT) " + op + " CAST(fr.value AS FLOAT)"
		}
		return "fd.num_value " + op + " fr.num_value"
	}
	sel := func(table, cond string) string {
		return `
		SELECT fr.rule_id, fd.uri_reference FROM FilterData fd, ` + table + ` fr
		WHERE ` + cond
	}
	cp := "fr.class = fd.class AND fr.property = fd.property"
	return [numTrigOps]string{
		sel("FilterRulesANY", "fd.property = '"+rdf.SubjectProperty+"' AND fr.class = fd.class"),
		sel("FilterRulesEQ", cp+" AND fr.value = fd.value"),
		sel("FilterRulesEQN", cp+" AND "+numCmp("=")),
		sel("FilterRulesNE", cp+" AND fd.value != fr.value"),
		sel("FilterRulesNEN", cp+" AND "+numCmp("!=")),
		sel("FilterRulesCON", cp+" AND fd.value CONTAINS fr.value"),
		sel("FilterRulesLT", cp+" AND "+numCmp("<")),
		sel("FilterRulesLE", cp+" AND "+numCmp("<=")),
		sel("FilterRulesGT", cp+" AND "+numCmp(">")),
		sel("FilterRulesGE", cp+" AND "+numCmp(">=")),
	}
}

// engineShard is one partition of the triggering phase: a private database
// with this shard's slice of the scratch and filter tables and its own
// prepared statement set.
type engineShard struct {
	db            *sql.DB
	insFilterData *sql.Stmt
	clearFilter   *sql.Stmt
	trig          [numTrigOps]*sql.Stmt
}

// shardSet is the engine's partitioned triggering machinery; nil on a
// serial engine.
type shardSet struct {
	shards []*engineShard
}

// shardDDL is the slice of the engine schema a shard owns: the FilterData
// scratch and the ten FilterRules tables with their indexes, filtered out of
// the canonical ddl so the two schemas cannot drift.
func shardDDL() []string {
	var out []string
	for _, stmt := range ddl {
		if strings.Contains(stmt, "FilterData") || strings.Contains(stmt, "FilterRules") {
			out = append(out, stmt)
		}
	}
	return out
}

// newShardSet bootstraps n shard databases and prepares their statements.
func newShardSet(n int, disableTyped bool) (*shardSet, error) {
	texts := trigQueryTexts(disableTyped)
	s := &shardSet{shards: make([]*engineShard, n)}
	for i := range s.shards {
		db := sql.Open()
		for _, stmt := range shardDDL() {
			if _, err := db.Exec(stmt); err != nil {
				return nil, fmt.Errorf("core: shard bootstrap: %w", err)
			}
		}
		sh := &engineShard{db: db}
		sh.insFilterData = db.MustPrepare(
			`INSERT INTO FilterData (uri_reference, class, property, value, num_value, is_ref) VALUES (?, ?, ?, ?, ?, ?)`)
		sh.clearFilter = db.MustPrepare(`DELETE FROM FilterData`)
		for j, text := range texts {
			sh.trig[j] = db.MustPrepare(text)
		}
		s.shards[i] = sh
	}
	return s, nil
}

// shardIndexFor routes a (class, property) pair to its shard: FNV-1a over
// class, a zero separator, and property. The hash is stable across runs, so
// a snapshot load rebuilds the same shard map.
func shardIndexFor(n int, class, property string) int {
	h := fnv.New32a()
	h.Write([]byte(class))
	h.Write([]byte{0})
	h.Write([]byte(property))
	return int(h.Sum32() % uint32(n))
}

// ruleShardProperty is the routing property of a triggering rule: ANY rules
// carry no property and only ever match subject atoms, so they are routed
// as (class, rdf.SubjectProperty) — the key of the atoms that trigger them.
func ruleShardProperty(spec triggerSpec) string {
	if spec.any {
		return rdf.SubjectProperty
	}
	return spec.property
}

// insertTriggerRule mirrors a freshly interned triggering rule into its
// owning shard's filter table. Callers hold the engine lock exclusively
// (subscription changes never race a filter run).
func (s *shardSet) insertTriggerRule(spec triggerSpec, table string, id int64) error {
	sh := s.shards[shardIndexFor(len(s.shards), spec.class, ruleShardProperty(spec))]
	switch {
	case spec.any:
		_, err := sh.db.Exec(`INSERT INTO FilterRulesANY (rule_id, class) VALUES (?, ?)`,
			rdb.NewInt(id), rdb.NewText(spec.class))
		return err
	case numericFilterTable(table):
		_, err := sh.db.Exec(
			`INSERT INTO `+table+` (rule_id, class, property, value, num_value) VALUES (?, ?, ?, ?, ?)`,
			rdb.NewInt(id), rdb.NewText(spec.class), rdb.NewText(spec.property),
			rdb.NewText(spec.value.Lexical()), numValue(spec.value.Lexical()))
		return err
	default:
		_, err := sh.db.Exec(
			`INSERT INTO `+table+` (rule_id, class, property, value) VALUES (?, ?, ?, ?)`,
			rdb.NewInt(id), rdb.NewText(spec.class), rdb.NewText(spec.property),
			rdb.NewText(spec.value.Lexical()))
		return err
	}
}

// deleteRule removes a swept triggering rule from every shard. The
// unsubscribe sweep does not know which operator table or shard holds the
// rule, and it is a cold path, so probing all of them is fine.
func (s *shardSet) deleteRule(id int64) error {
	for _, sh := range s.shards {
		for _, table := range trigTableNames {
			if _, err := sh.db.Exec(`DELETE FROM `+table+` WHERE rule_id = ?`, rdb.NewInt(id)); err != nil {
				return err
			}
		}
	}
	return nil
}

// initShards builds the per-shard triggering sections when the options ask
// for them, mirroring any canonical filter rules already present (snapshot
// loads). Serial engines leave e.shards nil — the zero-cost degenerate path.
func (e *Engine) initShards() error {
	n := e.opts.effectiveShards()
	if n <= 1 {
		return nil
	}
	s, err := newShardSet(n, e.opts.DisableTypedIndexes)
	if err != nil {
		return err
	}
	e.shards = s
	return e.rebuildShardRules()
}

// rebuildShardRules repopulates every shard's filter tables from the
// canonical tables (after a snapshot load).
func (e *Engine) rebuildShardRules() error {
	n := len(e.shards.shards)
	for ti, table := range trigTableNames {
		cols := "rule_id, class, property, value"
		switch {
		case table == "FilterRulesANY":
			cols = "rule_id, class"
		case numericFilterTable(table):
			cols += ", num_value"
		}
		rows, err := e.db.Query(`SELECT ` + cols + ` FROM ` + table)
		if err != nil {
			return err
		}
		ins := `INSERT INTO ` + table + ` (` + cols + `) VALUES (?` +
			strings.Repeat(", ?", strings.Count(cols, ",")) + `)`
		for _, r := range rows.Data {
			prop := rdf.SubjectProperty // ANY rules route by the subject key
			if ti != 0 {
				prop = r[2].Str
			}
			sh := e.shards.shards[shardIndexFor(n, r[1].Str, prop)]
			if _, err := sh.db.Exec(ins, r...); err != nil {
				return err
			}
		}
	}
	return nil
}

// ShardCount reports the engine's triggering parallelism (1 = serial path).
func (e *Engine) ShardCount() int {
	if e.shards == nil {
		return 1
	}
	return len(e.shards.shards)
}

// shardRun is the output of one shard's triggering section.
type shardRun struct {
	pairs []matchPair
	trig  [numTrigOps]time.Duration
	wait  time.Duration // dispatch-to-start delay (core/lock queueing)
	busy  time.Duration // wall time of the section itself
	atoms int
	err   error
}

// runTriggering is one shard's section: load the routed atoms into the
// shard's FilterData, run the ten triggering queries in canonical order,
// and clear the scratch. It touches only shard-local state plus the
// caller-owned run record — never the engine. text is the engine's shared
// contains-rule index (nil under the ablation): reading it from a worker is
// safe because an atom's cohort key is its (class, property) routing key,
// so this shard's part only ever touches cohorts no other worker sees.
func (sh *engineShard) runTriggering(text *textIndex, part []preparedAtom, run *shardRun) error {
	rows := make([][]rdb.Value, len(part))
	for i, pa := range part {
		a := pa.stmt
		rows[i] = []rdb.Value{rdb.NewText(a.URIRef), rdb.NewText(a.Class), rdb.NewText(a.Property),
			rdb.NewText(a.Value), pa.num, rdb.NewBool(a.IsRef)}
	}
	if _, err := sh.insFilterData.ExecBatch(rows); err != nil {
		return err
	}
	for j, st := range sh.trig {
		tq := time.Now()
		if j == conTrigIdx && text != nil {
			run.pairs = text.collect(part, run.pairs)
			run.trig[j] = time.Since(tq)
			continue
		}
		err := st.QueryFunc(nil, func(row []rdb.Value) error {
			run.pairs = append(run.pairs, matchPair{rule: row[0].Int, uri: row[1].Str})
			return nil
		})
		if err != nil {
			return err
		}
		run.trig[j] = time.Since(tq)
	}
	_, err := sh.clearFilter.Exec()
	return err
}

// collectTriggeringSharded partitions the prepared atoms by shard, runs
// every non-empty shard section concurrently, and merges the shard-local
// candidate sets in shard order. The merge is deterministic: shard order is
// fixed by the hash, per-shard statement order is the canonical operator
// order, and per-statement row order is the plan's scan order — and the
// downstream dedup/fixpoint is order-insensitive anyway.
func (e *Engine) collectTriggeringSharded(atoms []preparedAtom) ([]matchPair, error) {
	n := len(e.shards.shards)
	parts := make([][]preparedAtom, n)
	for _, pa := range atoms {
		i := shardIndexFor(n, pa.stmt.Class, pa.stmt.Property)
		parts[i] = append(parts[i], pa)
	}
	runs := make([]shardRun, n)
	t0 := time.Now()
	var wg sync.WaitGroup
	for i := range parts {
		if len(parts[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			run := &runs[i]
			start := time.Now()
			run.wait = start.Sub(t0)
			run.atoms = len(parts[i])
			run.err = e.shards.shards[i].runTriggering(e.text, parts[i], run)
			run.busy = time.Since(start)
		}(i)
	}
	wg.Wait()

	// Merge on the coordinator, in shard order. Stats, metrics, and the
	// slow-publish trace are only touched here — never inside the workers —
	// so the engine's single-writer counter discipline holds.
	var pairs []matchPair
	sections := 0
	for i := range runs {
		run := &runs[i]
		if run.atoms == 0 {
			continue
		}
		if run.err != nil {
			return nil, fmt.Errorf("core: shard %d: %w", i, run.err)
		}
		sections++
		pairs = append(pairs, run.pairs...)
		for j, d := range run.trig {
			if d > 0 {
				e.traceTrig(trigOpNames[j], d)
			}
		}
	}
	e.stats.ShardedFilterRuns++
	e.stats.ShardSectionsRun += sections
	e.observeShards(runs)
	return pairs, nil
}
