package core_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"mdv/internal/core"
	"mdv/internal/rdf"
)

// Differential test for the typed operator indexes (§3.3.4): the engine with
// typed num_value columns and ordered-index range scans must produce exactly
// the matches of the ablated engine that reconverts string-stored constants
// via CAST at match time, over randomized operator/constant mixes that lean
// on the awkward numeric lexicals — leading zeros ("007" vs "7"), trailing
// decimals ("7.0"), scientific notation ("1e2"), signed zero ("-0"),
// negatives, NaN and the infinities — plus non-numeric string constants on
// numeric properties (which must route to the lexical EQ/NE tables in both
// engines) and all four workload rule shapes (OID, PATH, COMP, JOIN).

func typedDiffSchema() *rdf.Schema {
	s := rdf.NewSchema()
	s.MustAddProperty("Host", rdf.PropertyDef{Name: "load", Type: rdf.TypeFloat})
	s.MustAddProperty("Host", rdf.PropertyDef{Name: "peak", Type: rdf.TypeFloat})
	s.MustAddProperty("Host", rdf.PropertyDef{Name: "mem", Type: rdf.TypeInteger})
	s.MustAddProperty("Host", rdf.PropertyDef{Name: "tag", Type: rdf.TypeString})
	s.MustAddProperty("Host", rdf.PropertyDef{
		Name: "info", Type: rdf.TypeResource, RefClass: "Info", RefKind: rdf.StrongRef})
	s.MustAddProperty("Info", rdf.PropertyDef{Name: "cpu", Type: rdf.TypeInteger})
	s.MustAddProperty("Info", rdf.PropertyDef{Name: "temp", Type: rdf.TypeFloat})
	return s
}

// Lexical pools. Every entry must pass schema validation for its type; the
// float pool deliberately contains several spellings of the same number so
// that typed parsing and CAST reconversion must agree on coercion, and the
// non-finite values so that both paths must agree on the NaN/±Inf total
// order.
var (
	diffFloats = []string{
		"007", "7", "7.0", "7.25", "0", "-0", "-3.5", "40", "1e2", "NaN", "Inf", "-Inf"}
	diffInts = []string{"-3", "0", "7", "007", "12", "40"}
	diffTags = []string{"abc", "007", "xylophone", "ab"}
)

func typedDiffRule(rng *rand.Rand) string {
	op := randomOp(rng)
	switch rng.Intn(12) {
	case 0: // OID point rule
		return fmt.Sprintf(`search Host h register h where h = 'doc%d.rdf#host'`, rng.Intn(12))
	case 1: // COMP on a float property, integer constant
		return fmt.Sprintf(`search Host h register h where h.load %s %d`, op, rng.Intn(40))
	case 2: // COMP on a float property, decimal constant
		return fmt.Sprintf(`search Host h register h where h.load %s %d.25`, op, rng.Intn(40))
	case 3: // COMP on an integer property
		return fmt.Sprintf(`search Host h register h where h.mem %s %d`, op, rng.Intn(40))
	case 4: // PATH through a reference
		return fmt.Sprintf(`search Host h register h where h.info.cpu %s %d`, op, rng.Intn(40))
	case 5: // PATH to a float property
		return fmt.Sprintf(`search Host h register h where h.info.temp %s %d`, op, rng.Intn(40))
	case 6: // string constant on a numeric property: lexical EQ/NE semantics
		eq := []string{"=", "!="}[rng.Intn(2)]
		consts := append([]string{"abc", "", " 7"}, diffInts...)
		return fmt.Sprintf(`search Host h register h where h.mem %s '%s'`,
			eq, consts[rng.Intn(len(consts))])
	case 7: // plain string matching
		return fmt.Sprintf(`search Host h register h where h.tag contains '%s'`,
			diffTags[rng.Intn(len(diffTags))])
	case 8: // reference join with a numeric side predicate
		return fmt.Sprintf(
			`search Host h, Info i register i where h.info = i and h.mem %s %d`,
			op, rng.Intn(40))
	case 9: // float-vs-float range JOIN: the only way a non-finite bound
		// reaches a range comparison (the grammar rejects non-finite
		// constants), probing the ordered index with NaN/±Inf values.
		return fmt.Sprintf(`search Host h, Info i register i where h.load %s i.temp`, op)
	case 10: // float-vs-float range SELF predicate, same non-finite exposure
		return fmt.Sprintf(`search Host h register h where h.load %s h.peak`, op)
	default: // conjunction mixing float and integer comparisons
		return fmt.Sprintf(
			`search Host h register h where h.load %s %d and h.info.cpu %s %d`,
			op, rng.Intn(40), randomOp(rng), rng.Intn(40))
	}
}

func typedDiffDoc(rng *rand.Rand, i int) *rdf.Document {
	doc := rdf.NewDocument(fmt.Sprintf("doc%d.rdf", i))
	host := doc.NewResource("host", "Host")
	host.Add("load", rdf.Lit(diffFloats[rng.Intn(len(diffFloats))]))
	host.Add("peak", rdf.Lit(diffFloats[rng.Intn(len(diffFloats))]))
	host.Add("mem", rdf.Lit(diffInts[rng.Intn(len(diffInts))]))
	host.Add("tag", rdf.Lit(diffTags[rng.Intn(len(diffTags))]))
	if rng.Intn(4) > 0 {
		if rng.Intn(4) == 0 { // cross-document reference, possibly dangling
			host.Add("info", rdf.Ref(fmt.Sprintf("doc%d.rdf#info", rng.Intn(12))))
		} else {
			host.Add("info", rdf.Ref(doc.QualifyID("info")))
		}
		info := doc.NewResource("info", "Info")
		info.Add("cpu", rdf.Lit(diffInts[rng.Intn(len(diffInts))]))
		info.Add("temp", rdf.Lit(diffFloats[rng.Intn(len(diffFloats))]))
	}
	return doc
}

// TestTypedIndexDifferential runs identical randomized workloads through a
// typed-index engine and a CAST-ablated engine and requires identical match
// sets for every subscription after every mutation.
func TestTypedIndexDifferential(t *testing.T) {
	seeds := []int64{3, 11, 42, 271, 9001, 123456}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			schema := typedDiffSchema()
			typed, err := core.NewEngine(schema)
			if err != nil {
				t.Fatal(err)
			}
			cast, err := core.NewEngineWithOptions(schema, core.Options{DisableTypedIndexes: true})
			if err != nil {
				t.Fatal(err)
			}

			type sub struct {
				typedID, castID int64
				rule            string
			}
			var subs []sub
			addSub := func() {
				rule := typedDiffRule(rng)
				tid, _, err := typed.Subscribe("lmr", rule)
				if err != nil {
					t.Fatalf("typed subscribe %q: %v", rule, err)
				}
				cid, _, err := cast.Subscribe("lmr", rule)
				if err != nil {
					t.Fatalf("cast subscribe %q: %v", rule, err)
				}
				subs = append(subs, sub{typedID: tid, castID: cid, rule: rule})
			}
			for i := 0; i < 10; i++ {
				addSub()
			}

			check := func(step string) {
				t.Helper()
				for _, s := range subs {
					got := engineMatches(t, typed, s.typedID)
					want := engineMatches(t, cast, s.castID)
					if strings.Join(got, ",") != strings.Join(want, ",") {
						t.Fatalf("%s: rule %q:\n typed %v\n cast  %v",
							step, s.rule, got, want)
					}
				}
			}

			live := map[int]bool{}
			nextDoc := 0
			for step := 0; step < 25; step++ {
				switch op := rng.Intn(10); {
				case op < 5 || len(live) == 0: // register a fresh batch
					n := 1 + rng.Intn(3)
					var docs []*rdf.Document
					for i := 0; i < n; i++ {
						docs = append(docs, typedDiffDoc(rng, nextDoc))
						live[nextDoc] = true
						nextDoc++
					}
					if _, err := typed.RegisterDocuments(docs); err != nil {
						t.Fatal(err)
					}
					if _, err := cast.RegisterDocuments(docs); err != nil {
						t.Fatal(err)
					}
					check(fmt.Sprintf("step %d register %d", step, n))
				case op < 8: // rewrite an existing document with new values
					num := pickLive(rng, live)
					d := typedDiffDoc(rng, num)
					if _, err := typed.RegisterDocument(d); err != nil {
						t.Fatal(err)
					}
					if _, err := cast.RegisterDocument(d); err != nil {
						t.Fatal(err)
					}
					check(fmt.Sprintf("step %d update doc%d", step, num))
				case op < 9: // delete a document
					num := pickLive(rng, live)
					delete(live, num)
					uri := fmt.Sprintf("doc%d.rdf", num)
					if _, err := typed.DeleteDocument(uri); err != nil {
						t.Fatal(err)
					}
					if _, err := cast.DeleteDocument(uri); err != nil {
						t.Fatal(err)
					}
					check(fmt.Sprintf("step %d delete %s", step, uri))
				default: // subscribe mid-stream (exercises initializeTrigger)
					addSub()
					check(fmt.Sprintf("step %d subscribe", step))
				}
			}
		})
	}
}

// TestTypedIndexNonFiniteRanges pins down the NaN/±Inf total-order contract
// exhaustively rather than probabilistically: every ordered operator over
// every pair of non-finite and boundary-finite float values, compared
// between the typed ordered indexes and the CAST ablation, both for rules
// subscribed before the data arrives (the delta path through the operator
// index) and after (initializeJoin over materialized results). The rule
// grammar rejects non-finite constants, so the self predicate
// h.load OP h.peak is the direct route to a range comparison with
// non-finite operands on both sides.
func TestTypedIndexNonFiniteRanges(t *testing.T) {
	values := []string{"NaN", "Inf", "-Inf", "0", "-0", "7.25", "-3.5", "1e2"}
	ops := []string{"<", "<=", ">", ">=", "=", "!="}
	schema := typedDiffSchema()
	typed, err := core.NewEngine(schema)
	if err != nil {
		t.Fatal(err)
	}
	cast, err := core.NewEngineWithOptions(schema, core.Options{DisableTypedIndexes: true})
	if err != nil {
		t.Fatal(err)
	}

	// Rules subscribed before any data: matches flow through the delta path.
	type sub struct {
		typedID, castID int64
		rule            string
	}
	var subs []sub
	subscribe := func(rule string) {
		t.Helper()
		tid, _, err := typed.Subscribe("lmr", rule)
		if err != nil {
			t.Fatalf("typed subscribe %q: %v", rule, err)
		}
		cid, _, err := cast.Subscribe("lmr", rule)
		if err != nil {
			t.Fatalf("cast subscribe %q: %v", rule, err)
		}
		subs = append(subs, sub{typedID: tid, castID: cid, rule: rule})
	}
	for _, op := range ops {
		subscribe(fmt.Sprintf(`search Host h register h where h.load %s h.peak`, op))
		subscribe(fmt.Sprintf(`search Host h, Info i register i where h.load %s i.temp`, op))
	}

	// One document per value pair: load=a, peak=b, plus an Info resource
	// with temp=b reached by reference, covering self and join shapes.
	n := 0
	for _, a := range values {
		for _, b := range values {
			doc := rdf.NewDocument(fmt.Sprintf("doc%d.rdf", n))
			host := doc.NewResource("host", "Host")
			host.Add("load", rdf.Lit(a))
			host.Add("peak", rdf.Lit(b))
			host.Add("mem", rdf.Lit("1"))
			host.Add("tag", rdf.Lit("t"))
			host.Add("info", rdf.Ref(doc.QualifyID("info")))
			info := doc.NewResource("info", "Info")
			info.Add("cpu", rdf.Lit("1"))
			info.Add("temp", rdf.Lit(b))
			if _, err := typed.RegisterDocument(doc); err != nil {
				t.Fatal(err)
			}
			if _, err := cast.RegisterDocument(doc); err != nil {
				t.Fatal(err)
			}
			n++
		}
	}

	// Rules subscribed after the data: matches come from initializeTrigger/
	// initializeJoin scans over the stored values.
	for _, op := range ops {
		subscribe(fmt.Sprintf(`search Host h register h where h.peak %s h.load`, op))
		subscribe(fmt.Sprintf(`search Host h, Info i register i where i.temp %s h.load`, op))
	}

	for _, s := range subs {
		got := engineMatches(t, typed, s.typedID)
		want := engineMatches(t, cast, s.castID)
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Errorf("rule %q:\n typed %v\n cast  %v", s.rule, got, want)
		}
	}

	// Non-finite range constants must be rejected at the language level by
	// both engines alike (quoted strings fail the numeric-operand check;
	// bare NaN/Inf are not number tokens).
	for _, rule := range []string{
		`search Host h register h where h.load < 'NaN'`,
		`search Host h register h where h.load >= 'Inf'`,
		`search Host h register h where h.load > NaN`,
	} {
		if _, _, err := typed.Subscribe("lmr", rule); err == nil {
			t.Errorf("typed engine accepted %q, want rejection", rule)
		}
		if _, _, err := cast.Subscribe("lmr", rule); err == nil {
			t.Errorf("cast engine accepted %q, want rejection", rule)
		}
	}
}

func pickLive(rng *rand.Rand, live map[int]bool) int {
	nums := make([]int, 0, len(live))
	for n := range live {
		nums = append(nums, n)
	}
	// Deterministic order so the rng draw is reproducible.
	for i := 1; i < len(nums); i++ {
		for j := i; j > 0 && nums[j] < nums[j-1]; j-- {
			nums[j], nums[j-1] = nums[j-1], nums[j]
		}
	}
	return nums[rng.Intn(len(nums))]
}
